// Vendorstudy: the fleet-operations scenario from the paper's
// evaluation — train one per-vendor model (MFPA is vendor-portable) and
// compare the seven SFWB feature groups on the vendor with the most
// failures, reproducing the shape of Figs. 9 and 11.
//
//	go run ./examples/vendorstudy
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/features"
)

func main() {
	log.SetFlags(0)

	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.FailureScale = 0.08
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Portability across vendors (SFWB + RF) ==")
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "Vendor", "TPR", "FPR", "AUC", "Failures")
	for _, st := range fleet.Stats {
		cfg := mfpa.DefaultConfig(st.Name)
		_, report, err := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
		if err != nil {
			log.Fatalf("vendor %s: %v", st.Name, err)
		}
		fmt.Printf("%-8s %7.2f%% %7.2f%% %8.4f %8d\n",
			st.Name, report.Eval.TPR()*100, report.Eval.FPR()*100, report.Eval.AUC, st.Failures)
	}
	fmt.Println("\nVendor IV has the fewest faulty drives; like the paper's, its")
	fmt.Println("model is the least reliable — portability needs failure mass.")

	fmt.Println("\n== Feature groups on vendor I (Table V / Fig 9) ==")
	fmt.Printf("%-6s %8s %8s %8s\n", "Group", "TPR", "FPR", "AUC")
	for _, group := range features.AllGroups() {
		cfg := mfpa.DefaultConfig("I")
		cfg.Group = group
		_, report, err := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
		if err != nil {
			log.Fatalf("group %s: %v", group, err)
		}
		fmt.Printf("%-6s %7.2f%% %7.2f%% %8.4f\n",
			group, report.Eval.TPR()*100, report.Eval.FPR()*100, report.Eval.AUC)
	}
	fmt.Println("\nSFWB should lead on both axes: the system-level W/B channels")
	fmt.Println("reject the SMART scares that fool the S-only baseline.")
}
