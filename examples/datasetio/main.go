// Datasetio: the data-pipeline scenario — export a fleet's telemetry
// in both hand-off formats (CSV and the MFPAC binary columnar
// container), compare their sizes, read both back through the
// format-sniffing loader, and verify a model trained on the
// re-imported data matches one trained in-memory.
//
//	go run ./examples/datasetio
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.Days = 150
	fleetCfg.FailureScale = 0.05
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Export to both interchange formats. The MFPAC writer streams
	// straight from columnar frame slabs, so convert once.
	frame, err := dataset.FrameFromDataset(fleet.Data)
	if err != nil {
		log.Fatal(err)
	}
	var csvBuf, pacBuf bytes.Buffer
	if err := dataset.WriteTelemetry(&csvBuf, frame, dataset.FormatCSV); err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteTelemetry(&pacBuf, frame, dataset.FormatMFPAC); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d records (%d drives): %.1f MB CSV, %.1f MB MFPAC (%.1fx smaller)\n",
		fleet.Data.Len(), fleet.Data.Drives(),
		float64(csvBuf.Len())/1e6, float64(pacBuf.Len())/1e6,
		float64(csvBuf.Len())/float64(pacBuf.Len()))

	// Re-import through the format-sniffing loader: both payloads go
	// through the same call, detected by their leading bytes.
	restoredFrame, err := dataset.ReadTelemetry(&pacBuf)
	if err != nil {
		log.Fatal(err)
	}
	restored := restoredFrame.ToDataset()
	fromCSVFrame, err := dataset.ReadTelemetry(&csvBuf)
	if err != nil {
		log.Fatal(err)
	}
	fromCSV := fromCSVFrame.ToDataset()
	fmt.Printf("re-imported %d records (%d drives) from MFPAC, %d from CSV\n",
		restored.Len(), restored.Drives(), fromCSV.Len())
	if restored.Len() != fleet.Data.Len() || fromCSV.Len() != fleet.Data.Len() {
		log.Fatalf("round trip lost records: %d/%d vs %d", restored.Len(), fromCSV.Len(), fleet.Data.Len())
	}

	// Train on all three copies; the results must be identical because
	// every pipeline stage is deterministic and both containers
	// round-trip values bit-exactly.
	cfg := mfpa.DefaultConfig("I")
	_, repA, err := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, repB, err := mfpa.Train(restored, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, repC, err := mfpa.Train(fromCSV, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nin-memory:    TPR %.4f FPR %.4f AUC %.4f\n", repA.Eval.TPR(), repA.Eval.FPR(), repA.Eval.AUC)
	fmt.Printf("via MFPAC:    TPR %.4f FPR %.4f AUC %.4f\n", repB.Eval.TPR(), repB.Eval.FPR(), repB.Eval.AUC)
	fmt.Printf("via CSV:      TPR %.4f FPR %.4f AUC %.4f\n", repC.Eval.TPR(), repC.Eval.FPR(), repC.Eval.AUC)
	if repA.Eval.Confusion != repB.Eval.Confusion || repA.Eval.Confusion != repC.Eval.Confusion {
		log.Fatal("round-tripped data changed the model!")
	}
	fmt.Println("\nboth round trips preserved the model exactly ✓")
}
