// Datasetio: the data-pipeline scenario — export a fleet's telemetry to
// CSV (the hand-off format between the collection agent and the
// training side), read it back, and verify a model trained on the
// re-imported data matches one trained in-memory.
//
//	go run ./examples/datasetio
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.Days = 150
	fleetCfg.FailureScale = 0.05
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Export to the CSV interchange format.
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, fleet.Data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d records (%d drives) as %.1f MB of CSV\n",
		fleet.Data.Len(), fleet.Data.Drives(), float64(buf.Len())/1e6)

	// Re-import.
	restored, err := dataset.ReadCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported %d records (%d drives)\n", restored.Len(), restored.Drives())
	if restored.Len() != fleet.Data.Len() {
		log.Fatalf("round trip lost records: %d vs %d", restored.Len(), fleet.Data.Len())
	}

	// Train on both copies; the results must be identical because every
	// pipeline stage is deterministic.
	cfg := mfpa.DefaultConfig("I")
	_, repA, err := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, repB, err := mfpa.Train(restored, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nin-memory:    TPR %.4f FPR %.4f AUC %.4f\n", repA.Eval.TPR(), repA.Eval.FPR(), repA.Eval.AUC)
	fmt.Printf("via CSV:      TPR %.4f FPR %.4f AUC %.4f\n", repB.Eval.TPR(), repB.Eval.FPR(), repB.Eval.AUC)
	if repA.Eval.Confusion != repB.Eval.Confusion {
		log.Fatal("round-tripped data changed the model!")
	}
	fmt.Println("\nround trip preserved the model exactly ✓")
}
