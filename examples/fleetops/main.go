// Fleetops: the operations scenario behind the paper's Figs. 12/16 —
// a fleet service owns the per-vendor models, re-iterates them on the
// paper's two-month cadence using only data visible at each date, and
// publishes each iteration for the client agents. Run against the
// drifting fleet, the history shows why iteration matters.
//
//	go run ./examples/fleetops
package main

import (
	"fmt"
	"log"

	"repro/internal/fleetops"
	"repro/internal/simfleet"
)

func main() {
	log.SetFlags(0)

	// The nine-month fleet whose background Windows-event rates drift
	// after day 165 (an OS update).
	cfg := simfleet.DriftConfig()
	cfg.FailureScale = 0.08
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d drives, %d records, drift begins day %d\n\n",
		fleet.Data.Drives(), fleet.Data.Len(), cfg.DriftStartDay)

	svc, err := fleetops.New(fleetops.Options{IterationDays: 60})
	if err != nil {
		log.Fatal(err)
	}

	// Walk the calendar in 30-day review steps; the service decides
	// when each vendor's model is due.
	fmt.Println("day   action")
	for today := 100; today <= cfg.Days-1; today += 30 {
		retrained, err := svc.Step(fleet.Data, fleet.Tickets, []string{"I"}, today)
		if err != nil {
			log.Fatal(err)
		}
		if len(retrained) > 0 {
			hist := svc.History("I")
			last := hist[len(hist)-1]
			fmt.Printf("%3d   re-iterated vendor I (#%d): TPR %.4f FPR %.4f (threshold %.3f, %d train samples)\n",
				today, len(hist), last.Eval.TPR(), last.Eval.FPR(), last.Threshold, last.TrainSamples)

			blob, err := svc.Publish("I")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("      published %.1f KB model envelope to clients\n", float64(len(blob))/1024)
		} else {
			fmt.Printf("%3d   model fresh; no action\n", today)
		}
	}

	fmt.Println("\nEach iteration sees only telemetry and tickets visible at its")
	fmt.Println("date, so the service never trains on the future — and the 60-day")
	fmt.Println("cadence keeps the model ahead of the drift that inflates FPR in")
	fmt.Println("Fig 12 when iteration is skipped.")
}
