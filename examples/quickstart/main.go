// Quickstart: simulate a consumer SSD fleet, train the paper's best
// configuration (SFWB features + random forest) for one vendor, and
// print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. A fleet: telemetry records, trouble tickets, ground truth.
	//    (With real data you would fill a dataset.Dataset and a
	//    ticket.Store instead.)
	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.FailureScale = 0.08 // keep the demo quick
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d drives, %d telemetry records, %d failures\n",
		fleet.Data.Drives(), fleet.Data.Len(), fleet.FaultyCount())

	// 2. Train MFPA for vendor I: discontinuity optimisation →
	//    failure-time identification → SFWB features → RF.
	cfg := mfpa.DefaultConfig("I")
	model, report, err := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the held-out evaluation.
	fmt.Printf("\nMFPA (%s on %s, vendor I)\n", model.TrainerName, cfg.Group)
	fmt.Printf("  decision threshold: %.3f (calibrated on TS-CV folds)\n", model.Threshold)
	fmt.Printf("  TPR: %6.2f%%   (paper: 98.18%%)\n", report.Eval.TPR()*100)
	fmt.Printf("  FPR: %6.2f%%   (paper: 0.56%%)\n", report.Eval.FPR()*100)
	fmt.Printf("  AUC: %6.4f\n", report.Eval.AUC)
	fmt.Printf("  PDR: %6.2f%%\n", report.Eval.PDR()*100)
	fmt.Printf("  drive-level: TPR %.2f%% / FPR %.2f%%\n",
		report.Eval.DriveConfusion.TPR()*100, report.Eval.DriveConfusion.FPR()*100)
}
