// Agent: the paper's deployment scenario end to end — the fleet side
// trains an MFPA model and serialises it; the client side loads it into
// a lightweight agent that scores each day's telemetry locally
// (microsecond predictions), raises a backup alarm with hysteresis, and
// accepts a pushed model update (the paper re-iterates every two
// months).
//
//	go run ./examples/agent
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/agent"
	"repro/internal/modelio"
)

func main() {
	log.SetFlags(0)

	// ---- Fleet side: train and publish. ----
	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.FailureScale = 0.06
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	model, report, err := mfpa.Train(fleet.Data, fleet.Tickets, mfpa.DefaultConfig("I"))
	if err != nil {
		log.Fatal(err)
	}
	blob, err := modelio.Marshal(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet side: trained %s (TPR %.1f%%, FPR %.2f%%), model blob %.1f KB\n",
		model.TrainerName, report.Eval.TPR()*100, report.Eval.FPR()*100, float64(len(blob))/1024)

	// ---- Client side: load the published model into an agent. ----
	deployed, err := modelio.Unmarshal(blob)
	if err != nil {
		log.Fatal(err)
	}
	ag, err := agent.New(deployed, agent.Options{AlarmAfter: 2, Explain: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client side: agent ready (threshold %.3f, alarm after 2 consecutive flags)\n\n", ag.Threshold())

	// Replay one failing drive's daily telemetry through the agent, as
	// the on-machine monitor would see it.
	var sn string
	var failDay int
	sns := make([]string, 0, len(fleet.Truth))
	for candidate := range fleet.Truth {
		sns = append(sns, candidate)
	}
	sort.Strings(sns)
	for _, candidate := range sns {
		truth := fleet.Truth[candidate]
		if truth.Vendor == "I" && truth.Kind == "faulty" {
			sn, failDay = candidate, truth.FailDay
			break
		}
	}
	series, _ := fleet.Data.Series(sn)
	fmt.Printf("replaying drive %s (dies day %d):\n", sn, failDay)
	alarmDay := -1
	for i := range series.Records {
		as, err := ag.Observe(series.Records[i])
		if err != nil {
			log.Fatal(err)
		}
		if as.Alarmed && alarmDay == -1 {
			alarmDay = as.Day
			fmt.Printf("  day %3d: P(faulty)=%.3f  ALARM — start backup & RMA (%d days before failure)\n",
				as.Day, as.Probability, failDay-as.Day)
			for _, f := range as.TopFactors {
				fmt.Printf("           because %-8s contributed +%.3f\n", f.Feature, f.Contribution)
			}
		}
	}
	if alarmDay == -1 {
		fmt.Println("  (no alarm — this drive failed without precursors)")
	}

	// ---- Two months later: the server pushes a re-iterated model. ----
	refreshCfg := mfpa.DefaultConfig("I")
	refreshCfg.Seed = 2
	refreshed, _, err := mfpa.Train(fleet.Data, fleet.Tickets, refreshCfg)
	if err != nil {
		log.Fatal(err)
	}
	blob2, err := modelio.Marshal(refreshed)
	if err != nil {
		log.Fatal(err)
	}
	pushed, err := modelio.Unmarshal(blob2)
	if err != nil {
		log.Fatal(err)
	}
	if err := ag.UpdateModel(pushed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel update pushed and applied (new threshold %.3f)\n", ag.Threshold())
}
