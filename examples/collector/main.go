// Collector: the data-collection scenario — on a consumer machine, the
// only raw artefacts are the Windows Event Viewer log (including
// BugCheck records with blue-screen stop codes) and the drive's NVMe
// SMART/Health log page. This example parses both, assembles daily
// telemetry records, and scores them with a deployed model.
//
//	go run ./examples/collector
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
	"repro/internal/agent"
	"repro/internal/ingest"
	"repro/internal/smartattr"
)

// eventLog is what an Event Viewer CSV export of a degrading machine
// looks like over four days: paging errors and controller errors ramp
// up, then the machine blue-screens with storage stop codes.
const eventLog = `Level,Date and Time,Source,Event ID,Task Category
Error,3/1/2021 10:23:11 AM,disk,51,None
Error,3/2/2021 09:10:00 AM,disk,51,None
Error,3/2/2021 11:45:31 AM,disk,11,None
Error,3/3/2021 08:05:00 AM,disk,51,None
Error,3/3/2021 08:55:12 AM,disk,11,None
Error,3/3/2021 10:14:02 AM,disk,51,None
Error,3/3/2021 11:37:55 AM,disk,11,None
Error,3/3/2021 02:20:45 PM,Ntfs,161,None
Error,3/3/2021 03:18:09 PM,disk,51,None
Critical,3/3/2021 04:01:00 PM,BugCheck,1001,None,"The computer has rebooted from a bugcheck. The bugcheck was: 0x00000050 (0xfffff803, 0x0, 0x0, 0x0)."
Error,3/4/2021 09:12:00 AM,disk,51,None
Error,3/4/2021 09:31:40 AM,disk,11,None
Error,3/4/2021 09:55:21 AM,disk,51,None
Error,3/4/2021 10:02:13 AM,Ntfs,161,None
Error,3/4/2021 10:44:08 AM,disk,11,None
Error,3/4/2021 11:21:30 AM,disk,51,None
Error,3/4/2021 12:02:11 PM,disk,51,None
Error,3/4/2021 12:40:03 PM,disk,11,None
Error,3/4/2021 01:15:27 PM,Ntfs,161,None
Error,3/4/2021 01:58:44 PM,disk,51,None
Error,3/4/2021 02:26:18 PM,disk,51,None
Error,3/4/2021 02:59:51 PM,Ntfs,161,None
Critical,3/4/2021 11:55:00 AM,BugCheck,1001,None,"The computer has rebooted from a bugcheck. The bugcheck was: 0x0000007a (0xfffff803, 0x0, 0x0, 0x0)."
Critical,3/4/2021 03:35:00 PM,BugCheck,1001,None,"The computer has rebooted from a bugcheck. The bugcheck was: 0x00000050 (0xfffff803, 0x0, 0x0, 0x0)."
Error,3/5/2021 08:30:00 AM,disk,51,None
Error,3/5/2021 08:52:10 AM,disk,11,None
Error,3/5/2021 09:15:42 AM,disk,51,None
Error,3/5/2021 09:48:33 AM,Ntfs,161,None
Error,3/5/2021 10:12:57 AM,disk,51,None
Error,3/5/2021 10:40:21 AM,disk,11,None
Critical,3/5/2021 11:02:00 AM,BugCheck,1001,None,"The computer has rebooted from a bugcheck. The bugcheck was: 0x0000007a (0xfffff803, 0x0, 0x0, 0x0)."
Critical,3/5/2021 02:47:00 PM,BugCheck,1001,None,"The computer has rebooted from a bugcheck. The bugcheck was: 0x00000024 (0xfffff803, 0x0, 0x0, 0x0)."
`

func main() {
	log.SetFlags(0)

	// Train a model fleet-side (in production this arrives via modelio).
	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.FailureScale = 0.05
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := mfpa.Train(fleet.Data, fleet.Tickets, mfpa.DefaultConfig("I"))
	if err != nil {
		log.Fatal(err)
	}
	ag, err := agent.New(model, agent.Options{AlarmAfter: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Parse the event log.
	events, skipped, err := ingest.ParseEventCSV(strings.NewReader(eventLog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d events (%d rows skipped)\n", len(events), skipped)

	epoch := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	col, err := ingest.NewCollector(epoch, "SN-LOCAL-1", "I", "I-B256", "IFW1200")
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events {
		col.AddEvent(ev)
	}

	// Each evening the collector snapshots the NVMe health log and
	// hands the assembled record to the agent. The SMART state below
	// degrades in step with the event log.
	type daySmart struct {
		spare, media, errlog, hours float64
		warn                        float64
	}
	days := []daySmart{
		{spare: 96, media: 3, errlog: 9, hours: 9100},
		{spare: 95, media: 12, errlog: 29, hours: 9107},
		{spare: 90, media: 41, errlog: 93, hours: 9115},
		{spare: 76, media: 124, errlog: 266, hours: 9121, warn: 1},
		{spare: 68, media: 197, errlog: 430, hours: 9126, warn: 1},
	}
	fmt.Println("\nday  P(faulty)  status")
	for i, d := range days {
		var v smartattr.Values
		v.Set(smartattr.CriticalWarning, d.warn)
		v.Set(smartattr.CompositeTemperature, 312)
		v.Set(smartattr.AvailableSpare, d.spare)
		v.Set(smartattr.AvailableSpareThreshold, 10)
		v.Set(smartattr.PercentageUsed, 21)
		v.Set(smartattr.DataUnitsRead, 5.2e9)
		v.Set(smartattr.DataUnitsWritten, 3.1e9)
		v.Set(smartattr.HostReadCommands, 1.6e11)
		v.Set(smartattr.HostWriteCommands, 9.4e10)
		v.Set(smartattr.ControllerBusyTime, 31000+float64(i)*90)
		v.Set(smartattr.PowerCycles, 1480+float64(i))
		v.Set(smartattr.PowerOnHours, d.hours)
		v.Set(smartattr.UnsafeShutdowns, 11+float64(i))
		v.Set(smartattr.MediaErrors, d.media)
		v.Set(smartattr.ErrorLogEntries, d.errlog)
		page := smartattr.MarshalHealthLog(&v)

		ts := epoch.Add(time.Duration(i)*24*time.Hour + 20*time.Hour)
		rec, err := col.Snapshot(ts, page, 256)
		if err != nil {
			log.Fatal(err)
		}
		as, err := ag.Observe(rec)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if as.Flagged {
			status = "flagged"
		}
		if as.Alarmed {
			status = "ALARM — back up now"
		}
		fmt.Printf("%3d  %9.3f  %s\n", as.Day, as.Probability, status)
	}
}
