// Lookahead: the client-side early-warning scenario — how many days
// before an SSD dies can MFPA raise the alarm (Fig. 19), and what does
// live scoring of one drive's record stream look like?
//
//	go run ./examples/lookahead
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
	"repro/internal/features"
)

func main() {
	log.SetFlags(0)

	fleetCfg := mfpa.DefaultFleetConfig()
	fleetCfg.FailureScale = 0.08
	fleet, err := mfpa.SimulateFleet(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := mfpa.DefaultConfig("I")
	prep, err := mfpa.Prepare(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the lookahead window: probe each faulty drive exactly N
	// days before its labelled failure.
	fmt.Println("== TPR vs lookahead window (Fig 19) ==")
	fmt.Printf("%-10s %8s %8s\n", "N (days)", "TPR", "probes")
	for n := 1; n <= 21; n += 4 {
		probes := features.PositiveSamplesAt(prep.Data, prep.Labels, prep.Extractor, n, 1)
		flagged := 0
		for _, p := range probes {
			if model.Predict(p.X) >= model.Threshold {
				flagged++
			}
		}
		tpr := 0.0
		if len(probes) > 0 {
			tpr = float64(flagged) / float64(len(probes))
		}
		bar := strings.Repeat("#", int(tpr*30))
		fmt.Printf("%-10d %7.2f%% %8d  %s\n", n, tpr*100, len(probes), bar)
	}

	// Live scoring: replay one faulty drive's record stream through the
	// model, as the on-client agent would.
	var faultySN string
	var failDay int
	sns := make([]string, 0, len(prep.Labels))
	for sn := range prep.Labels {
		sns = append(sns, sn)
	}
	sort.Strings(sns)
	for _, sn := range sns {
		if _, ok := prep.Data.Series(sn); ok {
			faultySN = sn
			failDay = prep.Labels[sn].FailDay
			break
		}
	}
	if faultySN == "" {
		log.Fatal("no labelled faulty drive with telemetry")
	}
	series, _ := prep.Data.Series(faultySN)
	fmt.Printf("\n== Live scoring of drive %s (fails day %d) ==\n", faultySN, failDay)
	fmt.Printf("%-6s %-12s %s\n", "Day", "P(faulty)", "")
	start := len(series.Records) - 12
	if start < 0 {
		start = 0
	}
	for _, rec := range series.Records[start:] {
		p := model.Predict(prep.Extractor.Extract(&rec))
		marker := ""
		if p >= model.Threshold {
			marker = "  << ALARM"
		}
		fmt.Printf("%-6d %-12.4f %s%s\n", rec.Day, p, strings.Repeat("*", int(p*20)), marker)
	}
}
