// Package mfpa is the public entry point of this repository: a Go
// implementation of MFPA, the multidimensional-feature SSD failure
// prediction approach for consumer storage systems from "Multidimensional
// Features Helping Predict Failures in Production SSD-Based Consumer
// Storage Systems" (DATE 2023).
//
// The package re-exports the pipeline pieces a downstream user needs:
//
//   - simulate a consumer fleet (or ingest your own telemetry as a
//     dataset.Dataset + ticket.Store),
//   - prepare it (discontinuity optimisation, cumulative counters,
//     failure-time identification),
//   - train a per-vendor failure predictor over any SFWB feature group
//     with any of the five supported algorithms,
//   - evaluate with the paper's metrics (TPR/FPR/ACC/AUC/PDR) or score
//     live records.
//
// Quick start:
//
//	fleet, _ := mfpa.SimulateFleet(mfpa.DefaultFleetConfig())
//	cfg := mfpa.DefaultConfig("I")
//	model, report, _ := mfpa.Train(fleet.Data, fleet.Tickets, cfg)
//	fmt.Printf("TPR %.4f FPR %.4f\n", report.Eval.TPR(), report.Eval.FPR())
//
// The internal packages remain importable within this module for
// fine-grained control; this façade keeps the common path to one
// import.
package mfpa

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/simfleet"
	"repro/internal/ticket"
)

// Re-exported pipeline types. See the internal packages for full
// documentation of each.
type (
	// Config parameterises an MFPA pipeline run.
	Config = core.Config
	// Model is a trained failure predictor.
	Model = core.Model
	// TrainReport carries the held-out evaluation and stage overheads.
	TrainReport = core.TrainReport
	// Evaluation bundles the paper's metrics at sample and drive level.
	Evaluation = core.Evaluation
	// Algorithm names one of the five supported learners.
	Algorithm = core.Algorithm
	// FeatureGroup selects the SFWB feature families (Table V).
	FeatureGroup = features.Group
	// FleetConfig parameterises the consumer-fleet simulator.
	FleetConfig = simfleet.Config
	// Fleet is a simulated consumer population.
	Fleet = simfleet.Result
	// Dataset is the drive telemetry collection.
	Dataset = dataset.Dataset
	// TicketStore holds the after-sales RaSRF tickets.
	TicketStore = ticket.Store
)

// The five candidate algorithms (Figs. 10/14).
const (
	Bayes   = core.AlgoBayes
	SVM     = core.AlgoSVM
	RF      = core.AlgoRF
	GBDT    = core.AlgoGBDT
	CNNLSTM = core.AlgoCNNLSTM
)

// The seven feature groups of Table V.
var (
	SFWB = features.GroupSFWB
	SFW  = features.GroupSFW
	SFB  = features.GroupSFB
	SF   = features.GroupSF
	S    = features.GroupS
	W    = features.GroupW
	B    = features.GroupB
)

// DefaultConfig returns the paper's best configuration (SFWB + RF,
// θ=7, 7-day positive window, 3:1 under-sampling) for one vendor.
func DefaultConfig(vendor string) Config { return core.DefaultConfig(vendor) }

// DefaultFleetConfig returns the fleet configuration used by the
// repository's experiments: a Table VI-proportioned population over a
// seven-month window.
func DefaultFleetConfig() FleetConfig { return simfleet.DefaultConfig() }

// SimulateFleet generates a synthetic consumer fleet: telemetry,
// trouble tickets, and ground truth. Deterministic in cfg.Seed.
func SimulateFleet(cfg FleetConfig) (*Fleet, error) { return simfleet.Simulate(cfg) }

// Train runs the full MFPA pipeline (prepare + train + held-out
// evaluation) on a fleet's telemetry and tickets.
func Train(data *Dataset, tickets *TicketStore, cfg Config) (*Model, *TrainReport, error) {
	return core.TrainOnFleet(data, tickets, cfg)
}

// Prepare runs only the data stages, for callers who want to train
// several models on one prepared dataset.
func Prepare(data *Dataset, tickets *TicketStore, cfg Config) (*core.Prepared, error) {
	return core.Prepare(data, tickets, cfg)
}
