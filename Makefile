GO ?= go

.PHONY: build test vet race bench report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises every parallelised stage (the parallel engine, fleet
# simulation, cleaning, extraction, training, search) under the race
# detector; determinism tests double as ordering checks.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/parallel ./internal/simfleet ./internal/ml/... ./internal/dataset ./internal/features

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/parallel ./internal/simfleet ./internal/dataset ./internal/features ./internal/ml/search

report:
	$(GO) run ./cmd/mfpareport -scale 0.2
