GO ?= go

.PHONY: build test vet lint race chaos verify bench report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint gates on vet plus gofmt: any file gofmt would rewrite fails the
# target and is listed.
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# race exercises every parallelised stage (the parallel engine, fleet
# simulation, cleaning, the fused frame pipeline, the MFPAC block
# codec, labelling, extraction, training, sampling views, the pipeline
# front-end, search, the sharded serving engine, and the batched
# agent) under the race detector; determinism tests double as ordering
# checks.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/parallel ./internal/simfleet ./internal/ml/... ./internal/dataset ./internal/labeling ./internal/ingest ./internal/features ./internal/sampling ./internal/core ./internal/serve ./internal/agent ./internal/fleetops ./internal/atomicio ./internal/faultinject

# chaos runs the fault-tolerance suite under the race detector: seeded
# record corruption, scorer/swap/observe fault seams, crash-safe
# persistence, and quarantine determinism across worker/shard counts.
chaos:
	$(GO) test -race -run 'Chaos|Corrupt|Fault|Quarantine|Revive|Degraded|Retr|Crash|Torn|KillMidWrite|StateFile|Atomic|WriteFile|Open|Hooks' \
		./internal/atomicio ./internal/faultinject ./internal/serve ./internal/fleetops ./internal/agent ./internal/ingest ./internal/dataset ./internal/modelio

# verify is the full local gate: build, lint, unit tests, chaos suite.
verify: build lint test chaos

# Seed-commit BenchmarkForestTrain numbers (pre histogram engine),
# measured with `git worktree add <dir> <ref>` + `go test -bench
# BenchmarkForestTrain -benchmem -benchtime 2s ./internal/ml/forest`.
# Re-measure on new hardware before comparing.
BASELINE_REF    ?= 0e00b81
BASELINE_NS     ?= 77893883
BASELINE_BYTES  ?= 21106284
BASELINE_ALLOCS ?= 34346

# bench writes BENCH_train.json (training: histogram vs exact split
# finding), BENCH_predict.json (scoring: flattened batch kernel vs the
# per-row interface path), BENCH_search.json (bin-once SampleSet views
# vs the per-candidate slice-copy representation), BENCH_pipeline.json
# (columnar frame data plane vs the record path), BENCH_serve.json
# (incremental sharded fleet scoring vs the full-replay seed serving
# path), and BENCH_io.json (MFPAC binary telemetry container vs the
# CSV compat format, gated on a bit-exact load equivalence check) via
# cmd/mfpabench.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/parallel ./internal/simfleet ./internal/dataset ./internal/features ./internal/ml/search ./internal/ml/predict ./internal/ml/forest ./internal/ml/gbdt
	$(GO) run ./cmd/mfpabench -out BENCH_train.json -predict-out BENCH_predict.json -search-out BENCH_search.json -pipeline-out BENCH_pipeline.json -serve-out BENCH_serve.json -io-out BENCH_io.json -benchtime 2s \
		-baseline-ref $(BASELINE_REF) -baseline-ns $(BASELINE_NS) \
		-baseline-bytes $(BASELINE_BYTES) -baseline-allocs $(BASELINE_ALLOCS)

report:
	$(GO) run ./cmd/mfpareport -scale 0.2
