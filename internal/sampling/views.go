package sampling

// Index-based counterparts of the slice-copy sampling primitives:
// every function here selects *rows* of a shared ml.SampleSet instead
// of copying sample structs, so a grid-search candidate, an SFS step,
// or a CV fold costs one int32 slice rather than a sample-set copy.
//
// Equivalence contract: each view function selects exactly the rows
// its slice counterpart would return, in the same order, for the same
// seed — the shuffle and stable-sort primitives consume the same
// random streams and compare the same keys. views_test.go pins this
// down across seeds and datasets.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ml"
)

// sortedByDay returns the view's arena rows stably ordered by day —
// the index counterpart of ml.SortByDay.
func sortedByDay(v ml.View) []int32 {
	idx := v.Indices()
	set := v.Set()
	sort.SliceStable(idx, func(a, b int) bool { return set.Day(int(idx[a])) < set.Day(int(idx[b])) })
	return idx
}

// SplitFractionView segments chronologically by row count, like
// SplitFraction: the earliest frac of rows (after stable day ordering)
// train, the rest test. No feature data is copied.
func SplitFractionView(v ml.View, frac float64) (train, test ml.View) {
	idx := sortedByDay(v)
	cut := int(float64(len(idx)) * frac)
	return v.WithRows(idx[:cut:cut]), v.WithRows(idx[cut:])
}

// SplitAtDayView implements timepoint-based segmentation on row
// indexes: rows observed on or before learnEndDay train, strictly
// later rows test (input order preserved on both sides).
func SplitAtDayView(v ml.View, learnEndDay int) (train, test ml.View) {
	n := v.Len()
	// Non-nil even when empty: a nil row slice would mean "all rows".
	tr := make([]int32, 0, n)
	te := make([]int32, 0)
	for i := 0; i < n; i++ {
		if v.Day(i) <= learnEndDay {
			tr = append(tr, v.RowIndex(i))
		} else {
			te = append(te, v.RowIndex(i))
		}
	}
	return v.WithRows(tr), v.WithRows(te)
}

// RandomSplitView is the conventional (non-time-aware) split on row
// indexes, consuming the same random stream as RandomSplit.
func RandomSplitView(v ml.View, testFrac float64, seed int64) (train, test ml.View) {
	idx := v.Indices()
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := len(idx) - int(float64(len(idx))*testFrac)
	return v.WithRows(idx[:cut:cut]), v.WithRows(idx[cut:])
}

// UnderSampleView balances classes exactly as UnderSample does — every
// positive row survives plus a seeded uniform subset of negatives,
// input order preserved — but selects indexes instead of copying.
func UnderSampleView(v ml.View, ratio float64, seed int64) (ml.View, error) {
	if ratio <= 0 {
		return ml.View{}, fmt.Errorf("sampling: ratio %g must be > 0", ratio)
	}
	neg, pos := v.ClassCounts()
	target := int(float64(pos) * ratio)
	n := v.Len()
	if pos == 0 || neg <= target {
		return v.WithRows(v.Indices()), nil
	}
	// Choose the surviving negative positions without replacement,
	// consuming the same stream as the slice implementation.
	negPositions := make([]int, 0, neg)
	for i := 0; i < n; i++ {
		if v.Y(i) == 0 {
			negPositions = append(negPositions, i)
		}
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(negPositions), func(i, j int) {
		negPositions[i], negPositions[j] = negPositions[j], negPositions[i]
	})
	keep := make(map[int]bool, target)
	for _, p := range negPositions[:target] {
		keep[p] = true
	}
	out := make([]int32, 0, pos+target)
	for i := 0; i < n; i++ {
		if v.Y(i) == 1 || keep[i] {
			out = append(out, v.RowIndex(i))
		}
	}
	return v.WithRows(out), nil
}

// FoldView is one cross-validation iteration over views.
type FoldView struct {
	Train ml.View
	Val   ml.View
}

// TimeSeriesCVView is TimeSeriesCV on row indexes: the day-ordered
// rows divide into 2k contiguous subsets and iteration i trains on
// subsets [i, i+k) and validates on subset i+k. Because each training
// window is contiguous in the sorted order, every fold is a pair of
// subslices of one shared index array — k folds cost one sort and one
// index copy in total.
func TimeSeriesCVView(v ml.View, k int) ([]FoldView, error) {
	if k < 1 {
		return nil, fmt.Errorf("sampling: k %d must be ≥ 1", k)
	}
	if v.Len() < 2*k {
		return nil, fmt.Errorf("sampling: %d samples cannot form 2k=%d subsets", v.Len(), 2*k)
	}
	idx := sortedByDay(v)
	bounds := chunkBounds(len(idx), 2*k)
	folds := make([]FoldView, 0, k)
	for i := 0; i < k; i++ {
		trLo, trHi := bounds[i], bounds[i+k]
		vaLo, vaHi := bounds[i+k], bounds[i+k+1]
		folds = append(folds, FoldView{
			Train: v.WithRows(idx[trLo:trHi:trHi]),
			Val:   v.WithRows(idx[vaLo:vaHi:vaHi]),
		})
	}
	return folds, nil
}

// KFoldCVView is the conventional k-fold CV on row indexes, consuming
// the same shuffle stream as KFoldCV.
func KFoldCVView(v ml.View, k int, seed int64) ([]FoldView, error) {
	if k < 2 {
		return nil, fmt.Errorf("sampling: k %d must be ≥ 2", k)
	}
	if v.Len() < k {
		return nil, fmt.Errorf("sampling: %d samples cannot form %d folds", v.Len(), k)
	}
	idx := v.Indices()
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	bounds := chunkBounds(len(idx), k)
	folds := make([]FoldView, 0, k)
	for i := 0; i < k; i++ {
		tr := make([]int32, 0, len(idx)-(bounds[i+1]-bounds[i]))
		for j := 0; j < k; j++ {
			if j != i {
				tr = append(tr, idx[bounds[j]:bounds[j+1]]...)
			}
		}
		folds = append(folds, FoldView{
			Train: v.WithRows(tr),
			Val:   v.WithRows(idx[bounds[i]:bounds[i+1]:bounds[i+1]]),
		})
	}
	return folds, nil
}

// chunkBounds returns the n+1 boundaries dividing length rows into n
// contiguous near-equal subsets — the same arithmetic as chunk.
func chunkBounds(length, n int) []int {
	bounds := make([]int, n+1)
	base := length / n
	rem := length % n
	start := 0
	for i := 0; i < n; i++ {
		bounds[i] = start
		size := base
		if i < rem {
			size++
		}
		start += size
	}
	bounds[n] = start
	return bounds
}
