// Package sampling implements the paper's time-series-based training
// optimisations (Section III-C(3), Fig. 8): RandomUnderSampler for
// class imbalance, timepoint-based train/test segmentation, and
// time-series cross-validation in which no fold ever trains on data
// newer than its validation data.
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/ml"
)

// UnderSample balances classes by keeping every positive sample and a
// uniform random subset of negatives sized ratio× the positive count
// (the paper uses 3:1 or 5:1). When there are fewer negatives than the
// target, all are kept. The input order of the survivors is preserved,
// keeping downstream time-based splits valid.
func UnderSample(samples []ml.Sample, ratio float64, seed int64) ([]ml.Sample, error) {
	if ratio <= 0 {
		return nil, fmt.Errorf("sampling: ratio %g must be > 0", ratio)
	}
	neg, pos := ml.ClassCounts(samples)
	target := int(float64(pos) * ratio)
	if pos == 0 || neg <= target {
		out := make([]ml.Sample, len(samples))
		copy(out, samples)
		return out, nil
	}
	// Choose the surviving negative positions without replacement.
	negPositions := make([]int, 0, neg)
	for i := range samples {
		if samples[i].Y == 0 {
			negPositions = append(negPositions, i)
		}
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(negPositions), func(i, j int) {
		negPositions[i], negPositions[j] = negPositions[j], negPositions[i]
	})
	keep := make(map[int]bool, target)
	for _, p := range negPositions[:target] {
		keep[p] = true
	}
	out := make([]ml.Sample, 0, pos+target)
	for i := range samples {
		if samples[i].Y == 1 || keep[i] {
			out = append(out, samples[i])
		}
	}
	return out, nil
}

// SplitAtDay implements timepoint-based sample segmentation
// (Fig. 8(a)(2)): samples observed on or before learnEndDay form the
// training set (the learning time window LW), strictly later samples
// form the test set. This guarantees the training set contains no
// future data relative to any test sample.
func SplitAtDay(samples []ml.Sample, learnEndDay int) (train, test []ml.Sample) {
	for i := range samples {
		if samples[i].Day <= learnEndDay {
			train = append(train, samples[i])
		} else {
			test = append(test, samples[i])
		}
	}
	return train, test
}

// SplitFraction segments chronologically by sample count: the earliest
// frac of samples (after stable day ordering) train, the rest test.
func SplitFraction(samples []ml.Sample, frac float64) (train, test []ml.Sample) {
	sorted := make([]ml.Sample, len(samples))
	copy(sorted, samples)
	ml.SortByDay(sorted)
	cut := int(float64(len(sorted)) * frac)
	return sorted[:cut], sorted[cut:]
}

// RandomSplit is the conventional (non-time-aware) m:n split the paper
// argues against; it is kept for the segmentation ablation bench.
func RandomSplit(samples []ml.Sample, testFrac float64, seed int64) (train, test []ml.Sample) {
	shuffled := make([]ml.Sample, len(samples))
	copy(shuffled, samples)
	ml.Shuffle(shuffled, seed)
	cut := len(shuffled) - int(float64(len(shuffled))*testFrac)
	return shuffled[:cut], shuffled[cut:]
}

// Fold is one cross-validation iteration.
type Fold struct {
	Train []ml.Sample
	Val   []ml.Sample
}

// TimeSeriesCV implements the paper's time-series cross-validation
// (Fig. 8(b)(2)): samples are ordered chronologically and divided into
// 2k contiguous subsets; iteration i trains on subsets [i, i+k) and
// validates on subset i+k, so training data always precedes validation
// data. It returns k folds.
func TimeSeriesCV(samples []ml.Sample, k int) ([]Fold, error) {
	if k < 1 {
		return nil, fmt.Errorf("sampling: k %d must be ≥ 1", k)
	}
	if len(samples) < 2*k {
		return nil, fmt.Errorf("sampling: %d samples cannot form 2k=%d subsets", len(samples), 2*k)
	}
	sorted := make([]ml.Sample, len(samples))
	copy(sorted, samples)
	ml.SortByDay(sorted)

	subsets := chunk(sorted, 2*k)
	folds := make([]Fold, 0, k)
	for i := 0; i < k; i++ {
		var tr []ml.Sample
		for j := i; j < i+k; j++ {
			tr = append(tr, subsets[j]...)
		}
		folds = append(folds, Fold{Train: tr, Val: subsets[i+k]})
	}
	return folds, nil
}

// KFoldCV is the conventional k-fold cross-validation the paper argues
// against (training folds may contain future data); kept for the
// cross-validation ablation bench.
func KFoldCV(samples []ml.Sample, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("sampling: k %d must be ≥ 2", k)
	}
	if len(samples) < k {
		return nil, fmt.Errorf("sampling: %d samples cannot form %d folds", len(samples), k)
	}
	shuffled := make([]ml.Sample, len(samples))
	copy(shuffled, samples)
	ml.Shuffle(shuffled, seed)

	subsets := chunk(shuffled, k)
	folds := make([]Fold, 0, k)
	for i := 0; i < k; i++ {
		var tr []ml.Sample
		for j := 0; j < k; j++ {
			if j != i {
				tr = append(tr, subsets[j]...)
			}
		}
		folds = append(folds, Fold{Train: tr, Val: subsets[i]})
	}
	return folds, nil
}

// chunk divides samples into n contiguous near-equal subsets.
func chunk(samples []ml.Sample, n int) [][]ml.Sample {
	out := make([][]ml.Sample, n)
	base := len(samples) / n
	rem := len(samples) % n
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = samples[start : start+size]
		start += size
	}
	return out
}
