package sampling

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// synthPop builds a population with repeated days (exercising the
// stable-sort tie-break), imbalanced classes, and recurring serials —
// the shapes the view/slice equivalence must survive.
func synthPop(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	samples := make([]ml.Sample, n)
	for i := range samples {
		y := 0
		if r.Float64() < 0.2 {
			y = 1
		}
		samples[i] = ml.Sample{
			X:   []float64{float64(r.Intn(40)), r.Float64(), float64(i % 7)},
			Y:   y,
			Day: r.Intn(30),
			SN:  fmt.Sprintf("d%03d", r.Intn(25)),
		}
	}
	return samples
}

// assertViewEquals requires the view to select exactly the given
// samples, in order, bit-for-bit.
func assertViewEquals(t *testing.T, name string, v ml.View, want []ml.Sample) {
	t.Helper()
	if v.Len() != len(want) {
		t.Fatalf("%s: view has %d rows, slice has %d", name, v.Len(), len(want))
	}
	for i := range want {
		if v.Y(i) != want[i].Y || v.Day(i) != want[i].Day || v.SN(i) != want[i].SN {
			t.Fatalf("%s: row %d is (y=%d day=%d sn=%s), want (y=%d day=%d sn=%s)",
				name, i, v.Y(i), v.Day(i), v.SN(i), want[i].Y, want[i].Day, want[i].SN)
		}
		x := v.Row(i)
		for j := range want[i].X {
			if x[j] != want[i].X[j] {
				t.Fatalf("%s: row %d feature %d: %v, want %v", name, i, j, x[j], want[i].X[j])
			}
		}
	}
}

func TestSplitFractionViewMatchesSlice(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		samples := synthPop(237, seed)
		set, err := ml.FromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0, 0.5, 0.75, 1} {
			trS, teS := SplitFraction(samples, frac)
			trV, teV := SplitFractionView(set.All(), frac)
			assertViewEquals(t, fmt.Sprintf("seed=%d frac=%g train", seed, frac), trV, trS)
			assertViewEquals(t, fmt.Sprintf("seed=%d frac=%g test", seed, frac), teV, teS)
		}
	}
}

func TestSplitAtDayViewMatchesSlice(t *testing.T) {
	samples := synthPop(200, 3)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []int{-1, 0, 15, 29, 100} {
		trS, teS := SplitAtDay(samples, day)
		trV, teV := SplitAtDayView(set.All(), day)
		assertViewEquals(t, fmt.Sprintf("day=%d train", day), trV, trS)
		assertViewEquals(t, fmt.Sprintf("day=%d test", day), teV, teS)
	}
}

func TestRandomSplitViewMatchesSlice(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		samples := synthPop(311, seed)
		set, err := ml.FromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		trS, teS := RandomSplit(samples, 0.3, seed+5)
		trV, teV := RandomSplitView(set.All(), 0.3, seed+5)
		assertViewEquals(t, fmt.Sprintf("seed=%d train", seed), trV, trS)
		assertViewEquals(t, fmt.Sprintf("seed=%d test", seed), teV, teS)
	}
}

func TestUnderSampleViewMatchesSlice(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		samples := synthPop(301, seed)
		set, err := ml.FromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		for _, ratio := range []float64{0.5, 1, 3, 100} {
			us, err := UnderSample(samples, ratio, seed+9)
			if err != nil {
				t.Fatal(err)
			}
			uv, err := UnderSampleView(set.All(), ratio, seed+9)
			if err != nil {
				t.Fatal(err)
			}
			assertViewEquals(t, fmt.Sprintf("seed=%d ratio=%g", seed, ratio), uv, us)
		}
	}
}

func TestUnderSampleViewRejectsBadRatio(t *testing.T) {
	set, err := ml.FromSamples(synthPop(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnderSampleView(set.All(), 0, 1); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	if _, err := UnderSampleView(set.All(), -2, 1); err == nil {
		t.Fatal("negative ratio accepted")
	}
}

func TestTimeSeriesCVViewMatchesSlice(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		samples := synthPop(263, seed)
		set, err := ml.FromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 5} {
			foldsS, err := TimeSeriesCV(samples, k)
			if err != nil {
				t.Fatal(err)
			}
			foldsV, err := TimeSeriesCVView(set.All(), k)
			if err != nil {
				t.Fatal(err)
			}
			if len(foldsS) != len(foldsV) {
				t.Fatalf("k=%d: %d view folds, %d slice folds", k, len(foldsV), len(foldsS))
			}
			for i := range foldsS {
				assertViewEquals(t, fmt.Sprintf("k=%d fold=%d train", k, i), foldsV[i].Train, foldsS[i].Train)
				assertViewEquals(t, fmt.Sprintf("k=%d fold=%d val", k, i), foldsV[i].Val, foldsS[i].Val)
			}
		}
	}
}

func TestTimeSeriesCVViewErrors(t *testing.T) {
	set, err := ml.FromSamples(synthPop(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TimeSeriesCVView(set.All(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TimeSeriesCVView(set.All(), 3); err == nil {
		t.Fatal("5 samples into 2k=6 subsets accepted")
	}
}

func TestKFoldCVViewMatchesSlice(t *testing.T) {
	samples := synthPop(149, 11)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 7} {
		foldsS, err := KFoldCV(samples, k, 23)
		if err != nil {
			t.Fatal(err)
		}
		foldsV, err := KFoldCVView(set.All(), k, 23)
		if err != nil {
			t.Fatal(err)
		}
		if len(foldsS) != len(foldsV) {
			t.Fatalf("k=%d: %d view folds, %d slice folds", k, len(foldsV), len(foldsS))
		}
		for i := range foldsS {
			assertViewEquals(t, fmt.Sprintf("k=%d fold=%d train", k, i), foldsV[i].Train, foldsS[i].Train)
			assertViewEquals(t, fmt.Sprintf("k=%d fold=%d val", k, i), foldsV[i].Val, foldsS[i].Val)
		}
	}
}

// TestViewCompositionMatchesSliceComposition chains the primitives the
// way core.Train does — chronological split, then under-sampling, then
// CV on the training window — and requires the final row selections to
// match the slice pipeline exactly. This exercises views whose row
// index is already non-nil (views of views).
func TestViewCompositionMatchesSliceComposition(t *testing.T) {
	samples := synthPop(400, 13)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}

	trS, teS := SplitFraction(samples, 0.75)
	usS, err := UnderSample(trS, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	foldsS, err := TimeSeriesCV(trS, 3)
	if err != nil {
		t.Fatal(err)
	}

	trV, teV := SplitFractionView(set.All(), 0.75)
	usV, err := UnderSampleView(trV, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	foldsV, err := TimeSeriesCVView(trV, 3)
	if err != nil {
		t.Fatal(err)
	}

	assertViewEquals(t, "train", trV, trS)
	assertViewEquals(t, "test", teV, teS)
	assertViewEquals(t, "undersampled", usV, usS)
	for i := range foldsS {
		assertViewEquals(t, fmt.Sprintf("fold=%d train", i), foldsV[i].Train, foldsS[i].Train)
		assertViewEquals(t, fmt.Sprintf("fold=%d val", i), foldsV[i].Val, foldsS[i].Val)
		usFS, err := UnderSample(foldsS[i].Train, 3, 29)
		if err != nil {
			t.Fatal(err)
		}
		usFV, err := UnderSampleView(foldsV[i].Train, 3, 29)
		if err != nil {
			t.Fatal(err)
		}
		assertViewEquals(t, fmt.Sprintf("fold=%d undersampled", i), usFV, usFS)
	}
}
