package sampling

import (
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

// mk builds a sample with the given label and day.
func mk(y, day int) ml.Sample {
	return ml.Sample{X: []float64{float64(day)}, Y: y, Day: day, SN: "sn"}
}

func series(pos, neg int) []ml.Sample {
	var out []ml.Sample
	for i := 0; i < pos; i++ {
		out = append(out, mk(1, i))
	}
	for i := 0; i < neg; i++ {
		out = append(out, mk(0, pos+i))
	}
	return out
}

func TestUnderSampleRatio(t *testing.T) {
	out, err := UnderSample(series(10, 100), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	neg, pos := ml.ClassCounts(out)
	if pos != 10 {
		t.Fatalf("positives = %d, want all 10", pos)
	}
	if neg != 30 {
		t.Fatalf("negatives = %d, want 30", neg)
	}
}

func TestUnderSampleKeepsOrder(t *testing.T) {
	out, err := UnderSample(series(5, 50), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Day < out[i-1].Day {
			t.Fatal("under-sampling reordered samples")
		}
	}
}

func TestUnderSampleFewNegatives(t *testing.T) {
	out, err := UnderSample(series(10, 5), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 15 {
		t.Fatalf("len = %d, want all 15 when negatives are scarce", len(out))
	}
}

func TestUnderSampleDeterministic(t *testing.T) {
	a, _ := UnderSample(series(10, 100), 3, 42)
	b, _ := UnderSample(series(10, 100), 3, 42)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Day != b[i].Day {
			t.Fatal("same seed produced different subsets")
		}
	}
	c, _ := UnderSample(series(10, 100), 3, 43)
	same := true
	for i := range a {
		if a[i].Day != c[i].Day {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical subsets")
	}
}

func TestUnderSampleRejectsBadRatio(t *testing.T) {
	if _, err := UnderSample(series(1, 1), 0, 1); err == nil {
		t.Fatal("zero ratio accepted")
	}
}

func TestSplitAtDay(t *testing.T) {
	samples := []ml.Sample{mk(0, 1), mk(0, 5), mk(1, 6), mk(0, 9)}
	train, test := SplitAtDay(samples, 5)
	if len(train) != 2 || len(test) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	for _, s := range train {
		if s.Day > 5 {
			t.Fatal("future sample in training set")
		}
	}
}

func TestSplitFractionChronological(t *testing.T) {
	samples := []ml.Sample{mk(0, 9), mk(0, 1), mk(0, 5), mk(0, 3)}
	train, test := SplitFraction(samples, 0.5)
	if len(train) != 2 || len(test) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	maxTrain := 0
	for _, s := range train {
		if s.Day > maxTrain {
			maxTrain = s.Day
		}
	}
	for _, s := range test {
		if s.Day < maxTrain {
			t.Fatalf("test sample day %d before train max %d", s.Day, maxTrain)
		}
	}
}

func TestRandomSplitSizes(t *testing.T) {
	train, test := RandomSplit(series(10, 10), 0.25, 1)
	if len(test) != 5 || len(train) != 15 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
}

func TestTimeSeriesCVNeverTrainsOnFuture(t *testing.T) {
	samples := series(20, 20)
	folds, err := TimeSeriesCV(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("folds = %d, want 4", len(folds))
	}
	for fi, fold := range folds {
		maxTrain := -1
		for _, s := range fold.Train {
			if s.Day > maxTrain {
				maxTrain = s.Day
			}
		}
		for _, s := range fold.Val {
			if s.Day < maxTrain {
				t.Fatalf("fold %d: validation day %d before training day %d", fi, s.Day, maxTrain)
			}
		}
	}
}

func TestTimeSeriesCVErrors(t *testing.T) {
	if _, err := TimeSeriesCV(series(1, 1), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TimeSeriesCV(series(1, 1), 5); err == nil {
		t.Fatal("too few samples accepted")
	}
}

func TestKFoldCVPartitions(t *testing.T) {
	samples := series(6, 6)
	folds, err := KFoldCV(samples, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	totalVal := 0
	for _, f := range folds {
		totalVal += len(f.Val)
		if len(f.Train)+len(f.Val) != len(samples) {
			t.Fatal("fold does not cover the sample set")
		}
	}
	if totalVal != len(samples) {
		t.Fatalf("validation folds cover %d samples, want %d", totalVal, len(samples))
	}
}

func TestKFoldCVErrors(t *testing.T) {
	if _, err := KFoldCV(series(1, 1), 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := KFoldCV(series(1, 0), 3, 1); err == nil {
		t.Fatal("too few samples accepted")
	}
}

func TestChunkProperty(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := int(rawN)%200 + 10
		k := int(rawK)%8 + 2
		if n < k {
			n = k
		}
		subsets := chunk(series(n/2, n-n/2), k)
		total := 0
		for i, sub := range subsets {
			total += len(sub)
			if i > 0 && len(sub) > len(subsets[i-1]) {
				return false // earlier chunks must be at least as large
			}
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
