package ticket

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the interchange layout shared by mfpagen and mfpatrain.
var csvHeader = []string{"sn", "imt", "cause", "description"}

// WriteCSV writes the store's tickets, drives in S/N order and each
// drive's tickets in IMT order.
func WriteCSV(w io.Writer, s *Store) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("ticket: write header: %w", err)
	}
	for _, sn := range s.SerialNumbers() {
		for _, t := range s.Lookup(sn) {
			row := []string{t.SerialNumber, strconv.Itoa(t.IMT), strconv.Itoa(t.Cause), t.Description}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("ticket: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a ticket store previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Store, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ticket: read header: %w", err)
	}
	for i := range csvHeader {
		if header[i] != csvHeader[i] {
			return nil, fmt.Errorf("ticket: header column %d is %q, want %q", i, header[i], csvHeader[i])
		}
	}
	store := NewStore()
	nCauses := len(AllCauses())
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ticket: line %d: %w", line, err)
		}
		imt, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("ticket: line %d: bad IMT %q: %w", line, row[1], err)
		}
		cause, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("ticket: line %d: bad cause %q: %w", line, row[2], err)
		}
		if cause < 0 || cause >= nCauses {
			return nil, fmt.Errorf("ticket: line %d: cause %d out of [0,%d)", line, cause, nCauses)
		}
		store.Add(Ticket{SerialNumber: row[0], IMT: imt, Cause: cause, Description: row[3]})
	}
	return store, nil
}
