// Package ticket models after-sales trouble tickets and the RaSRF
// ("Replaced as SSD_Related Failures") taxonomy the paper mines from
// them (Table I). Tickets are how consumer storage systems learn that a
// drive failed: the user brings the machine in some days after the
// actual failure, so a ticket records the *initial maintenance time*
// (IMT), not the failure time — the gap is the "ti" interval that the
// labelling layer's θ threshold compensates for.
package ticket

import (
	"fmt"
	"sort"
)

// Level is the coarse failure level of a RaSRF entry.
type Level int

const (
	// DriveLevel failures name the SSD directly (31.62% in Table I).
	DriveLevel Level = iota
	// SystemLevel failures surface as boot/shutdown or runtime system
	// errors (68.38% in Table I).
	SystemLevel
)

// String returns the level's name as used in Table I.
func (l Level) String() string {
	switch l {
	case DriveLevel:
		return "Drive Level"
	case SystemLevel:
		return "System Level"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Category is the mid-level RaSRF category of Table I.
type Category int

const (
	ComponentsFailure Category = iota
	BootShutdownFailure
	SystemRunningFailure
	ApplicationError
)

// String returns the category's name as used in Table I.
func (c Category) String() string {
	switch c {
	case ComponentsFailure:
		return "Components failure"
	case BootShutdownFailure:
		return "Boot/Shutdown failure"
	case SystemRunningFailure:
		return "System running failure"
	case ApplicationError:
		return "Application error"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Cause is one row of Table I: a concrete RaSRF failure cause with its
// observed share of all SSD-related replacements.
type Cause struct {
	Level    Level
	Category Category
	Name     string
	// Share is the fraction of RaSRF tickets attributed to this cause
	// (Table I's Pct. column, as a fraction). Shares sum to 1.
	Share float64
}

// Causes lists Table I in row order. The paper prints a single 21.44%
// against "Blue/Black screen after startup" and leaves the next two
// boot/shutdown rows blank while stating that 48.21% of failures occur
// during startup/shutdown; the two blank rows are split so the group
// totals match the text (boot/shutdown 48.22%, running incl. app
// errors 20.16%, drive level 31.62%).
var causes = []Cause{
	{DriveLevel, ComponentsFailure, "Storage drive failure", 0.3113},
	{DriveLevel, ComponentsFailure, "Firmware upgrade failure", 0.0042},
	{DriveLevel, ComponentsFailure, "Overtemperature", 0.0007},
	{SystemLevel, BootShutdownFailure, "Blue/Black screen after startup", 0.2144},
	{SystemLevel, BootShutdownFailure, "Unable to boot/shutdown", 0.1500},
	{SystemLevel, BootShutdownFailure, "Bootloop", 0.0858},
	{SystemLevel, BootShutdownFailure, "Stuck startup icon", 0.0320},
	{SystemLevel, SystemRunningFailure, "Response delay/blue screen", 0.0866},
	{SystemLevel, SystemRunningFailure, "Unauthorized system installation", 0.0543},
	{SystemLevel, SystemRunningFailure, "System partition damage", 0.0258},
	{SystemLevel, SystemRunningFailure, "Automatic shutdown/restart", 0.0194},
	{SystemLevel, SystemRunningFailure, "System upgrade/recovery failure", 0.0078},
	{SystemLevel, ApplicationError, "Apps crash/report errors/stuck", 0.0077},
}

// AllCauses returns the RaSRF taxonomy in Table I row order. The slice
// is a copy.
func AllCauses() []Cause {
	out := make([]Cause, len(causes))
	copy(out, causes)
	return out
}

// LevelShare returns the total share of causes at level l.
func LevelShare(l Level) float64 {
	var s float64
	for _, c := range causes {
		if c.Level == l {
			s += c.Share
		}
	}
	return s
}

// CategoryShare returns the total share of causes in category c.
func CategoryShare(cat Category) float64 {
	var s float64
	for _, c := range causes {
		if c.Category == cat {
			s += c.Share
		}
	}
	return s
}

// Ticket is one after-sales trouble ticket identifying a replaced SSD.
type Ticket struct {
	// SerialNumber identifies the replaced drive (the S/N joined
	// against telemetry when labelling).
	SerialNumber string
	// IMT is the initial maintenance time as a day index on the same
	// axis as telemetry timestamps.
	IMT int
	// Cause indexes into AllCauses().
	Cause int
	// Description is the free-text symptom from the ticket.
	Description string
}

// Store is an in-memory RaSRF ticket store with S/N lookup, the
// interface the labelling layer consumes.
type Store struct {
	bySN map[string][]Ticket
	n    int
}

// NewStore returns an empty ticket store.
func NewStore() *Store {
	return &Store{bySN: make(map[string][]Ticket)}
}

// Add inserts t into the store. Tickets for the same S/N are kept
// sorted by IMT.
func (s *Store) Add(t Ticket) {
	list := s.bySN[t.SerialNumber]
	list = append(list, t)
	sort.Slice(list, func(i, j int) bool { return list[i].IMT < list[j].IMT })
	s.bySN[t.SerialNumber] = list
	s.n++
}

// Len returns the number of stored tickets.
func (s *Store) Len() int { return s.n }

// Lookup returns all tickets filed for sn, earliest first. The slice is
// shared with the store; callers must not modify it.
func (s *Store) Lookup(sn string) []Ticket {
	return s.bySN[sn]
}

// First returns the earliest ticket for sn, if any.
func (s *Store) First(sn string) (Ticket, bool) {
	list := s.bySN[sn]
	if len(list) == 0 {
		return Ticket{}, false
	}
	return list[0], true
}

// SerialNumbers returns the distinct drive serial numbers with at least
// one ticket, in sorted order.
func (s *Store) SerialNumbers() []string {
	sns := make([]string, 0, len(s.bySN))
	for sn := range s.bySN {
		sns = append(sns, sn)
	}
	sort.Strings(sns)
	return sns
}

// CountByLevel tallies stored tickets by failure level.
func (s *Store) CountByLevel() map[Level]int {
	out := make(map[Level]int)
	for _, list := range s.bySN {
		for _, t := range list {
			out[causes[t.Cause].Level]++
		}
	}
	return out
}

// CountByCause tallies stored tickets by cause index.
func (s *Store) CountByCause() []int {
	out := make([]int, len(causes))
	for _, list := range s.bySN {
		for _, t := range list {
			out[t.Cause]++
		}
	}
	return out
}

// Until returns a new store containing only tickets with IMT on or
// before day — what the after-sales pipeline has seen as of that date.
func (s *Store) Until(day int) *Store {
	out := NewStore()
	for _, list := range s.bySN {
		for _, t := range list {
			if t.IMT <= day {
				out.Add(t)
			}
		}
	}
	return out
}
