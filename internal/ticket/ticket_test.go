package ticket

import (
	"math"
	"strings"
	"testing"
)

func TestSharesSumToOne(t *testing.T) {
	var sum float64
	for _, c := range AllCauses() {
		if c.Share <= 0 {
			t.Errorf("cause %q has non-positive share %g", c.Name, c.Share)
		}
		sum += c.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
}

func TestLevelSharesMatchTableI(t *testing.T) {
	drive := LevelShare(DriveLevel)
	system := LevelShare(SystemLevel)
	if math.Abs(drive-0.3162) > 1e-9 {
		t.Errorf("drive-level share = %g, want 0.3162", drive)
	}
	if math.Abs(system-0.6838) > 1e-9 {
		t.Errorf("system-level share = %g, want 0.6838", system)
	}
}

func TestCategorySharesMatchTableI(t *testing.T) {
	cases := []struct {
		cat  Category
		want float64
	}{
		{ComponentsFailure, 0.3162},
		{BootShutdownFailure, 0.4822}, // the paper's "48.21% during startup/shutdown"
		{SystemRunningFailure, 0.1939},
		{ApplicationError, 0.0077},
	}
	for _, tc := range cases {
		if got := CategoryShare(tc.cat); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("CategoryShare(%v) = %g, want %g", tc.cat, got, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if DriveLevel.String() != "Drive Level" || SystemLevel.String() != "System Level" {
		t.Error("level names wrong")
	}
	if Level(9).String() == "" || Category(9).String() == "" {
		t.Error("unknown enum values must still render")
	}
}

func TestStoreAddAndLookup(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Add(Ticket{SerialNumber: "A", IMT: 20, Cause: 0})
	s.Add(Ticket{SerialNumber: "A", IMT: 10, Cause: 1})
	s.Add(Ticket{SerialNumber: "B", IMT: 5, Cause: 2})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	list := s.Lookup("A")
	if len(list) != 2 || list[0].IMT != 10 || list[1].IMT != 20 {
		t.Fatalf("Lookup(A) not IMT-sorted: %+v", list)
	}
	first, ok := s.First("A")
	if !ok || first.IMT != 10 {
		t.Fatalf("First(A) = %+v, %v", first, ok)
	}
	if _, ok := s.First("missing"); ok {
		t.Fatal("First(missing) should fail")
	}
	if got := s.SerialNumbers(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("SerialNumbers = %v", got)
	}
}

func TestStoreCounts(t *testing.T) {
	s := NewStore()
	s.Add(Ticket{SerialNumber: "A", IMT: 1, Cause: 0})  // drive level
	s.Add(Ticket{SerialNumber: "B", IMT: 2, Cause: 3})  // system level
	s.Add(Ticket{SerialNumber: "C", IMT: 3, Cause: 3})  // system level
	s.Add(Ticket{SerialNumber: "D", IMT: 4, Cause: 12}) // app error (system)
	byLevel := s.CountByLevel()
	if byLevel[DriveLevel] != 1 || byLevel[SystemLevel] != 3 {
		t.Fatalf("CountByLevel = %v", byLevel)
	}
	byCause := s.CountByCause()
	if byCause[3] != 2 || byCause[0] != 1 || byCause[12] != 1 {
		t.Fatalf("CountByCause = %v", byCause)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(Ticket{SerialNumber: "B", IMT: 9, Cause: 3, Description: "blue screen"})
	s.Add(Ticket{SerialNumber: "A", IMT: 5, Cause: 0, Description: "drive, with comma"})
	s.Add(Ticket{SerialNumber: "A", IMT: 2, Cause: 12, Description: `quoted "text"`})

	var buf strings.Builder
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip lost tickets: %d", got.Len())
	}
	list := got.Lookup("A")
	if len(list) != 2 || list[0].IMT != 2 || list[0].Description != `quoted "text"` {
		t.Fatalf("lookup(A) = %+v", list)
	}
	if first, _ := got.First("B"); first.Cause != 3 || first.Description != "blue screen" {
		t.Fatalf("B = %+v", first)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"wrong,header,layout,x\n",
		"sn,imt,cause,description\nA,notanint,0,d\n",
		"sn,imt,cause,description\nA,1,notanint,d\n",
		"sn,imt,cause,description\nA,1,999,d\n", // cause out of range
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStoreUntil(t *testing.T) {
	s := NewStore()
	s.Add(Ticket{SerialNumber: "A", IMT: 5, Cause: 0})
	s.Add(Ticket{SerialNumber: "B", IMT: 20, Cause: 0})
	cut := s.Until(10)
	if cut.Len() != 1 {
		t.Fatalf("len = %d, want 1", cut.Len())
	}
	if _, ok := cut.First("B"); ok {
		t.Fatal("future ticket leaked")
	}
	if s.Len() != 2 {
		t.Fatal("Until mutated the source")
	}
}
