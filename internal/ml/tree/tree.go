// Package tree implements CART decision trees from scratch: a gini
// classification tree (the base learner of the random forest) and a
// squared-error regression tree with externally adjustable leaf values
// (the base learner of the gradient-boosted ensemble).
//
// Two split engines share the growth logic and node layout: the exact
// sort-based splitter below (GrowClassifier/GrowRegressor), and the
// histogram splitter over a columnar binned matrix in hist.go
// (GrowClassifierBinned/GrowRegressorBinned), which the ensembles use
// by default.
package tree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ml"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds tree depth; 0 selects 12.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf; 0 selects 1.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum samples to attempt a split;
	// 0 selects 2.
	MinSamplesSplit int
	// MaxFeatures is how many features are examined per split; 0 means
	// all, -1 means √width (the forest default).
	MaxFeatures int
	// Seed drives the per-split feature subsampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinSamplesLeaf == 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit == 0 {
		c.MinSamplesSplit = 2
	}
	return c
}

func (c Config) featuresPerSplit(width int) int {
	switch {
	case c.MaxFeatures > 0:
		if c.MaxFeatures > width {
			return width
		}
		return c.MaxFeatures
	case c.MaxFeatures < 0:
		k := int(math.Sqrt(float64(width)))
		if k < 1 {
			k = 1
		}
		return k
	default:
		return width
	}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // child indexes into the node arena
	right     int
	// value is the leaf output: positive-class probability for
	// classification trees, regression value for regression trees.
	value float64
	// leafID numbers leaves in creation order (regression trees only).
	leafID int
	// gain is the SSE reduction achieved by this node's split; it feeds
	// the mean-decrease-in-impurity feature importance.
	gain float64
}

// Classifier is a fitted gini classification tree.
type Classifier struct {
	nodes []node
	width int
}

// Trainer builds classification trees; it implements ml.Trainer.
type Trainer struct {
	Config Config
}

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "CART" }

// Train implements ml.Trainer.
func (t *Trainer) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, false); err != nil {
		return nil, err
	}
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
		ys[i] = float64(samples[i].Y)
	}
	return GrowClassifier(xs, ys, t.Config), nil
}

// GrowClassifier fits a gini tree on raw matrices: ys must be 0/1.
func GrowClassifier(xs [][]float64, ys []float64, cfg Config) *Classifier {
	cfg = cfg.withDefaults()
	g := &grower{
		xs:      xs,
		ys:      ys,
		cfg:     cfg,
		sampler: newFeatureSampler(rand.New(rand.NewSource(cfg.Seed+17)), len(xs[0])),
		idx:     orderedIndex(len(xs)),
		scratch: make([]int, len(xs)),
		sorted:  make([]int, len(xs)),
		// Gini impurity of a 0/1 target equals 2p(1-p), which is
		// monotone in the variance p(1-p); minimising weighted child
		// variance therefore minimises weighted gini, so one split
		// criterion serves both tree kinds.
	}
	g.grow(0, len(xs), 0) // the root is always arena index 0
	return &Classifier{nodes: g.nodes, width: len(xs[0])}
}

// PredictProba implements ml.Classifier: the positive fraction of the
// leaf x falls into.
func (t *Classifier) PredictProba(x []float64) float64 {
	return t.nodes[descend(t.nodes, x)].value
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Classifier) Depth() int { return depthOf(t.nodes, 0, 0) }

// NodeCount returns the number of nodes.
func (t *Classifier) NodeCount() int { return len(t.nodes) }

// Regressor is a fitted squared-error regression tree whose leaf
// values can be overwritten by an ensemble (GBDT's Newton step).
type Regressor struct {
	nodes []node
	// leafIndex maps leafID → node arena index, so SetLeafValue is
	// O(1) instead of a linear scan over the arena.
	leafIndex []int
}

// GrowRegressor fits a regression tree to targets ys.
func GrowRegressor(xs [][]float64, ys []float64, cfg Config) *Regressor {
	cfg = cfg.withDefaults()
	g := &grower{
		xs:         xs,
		ys:         ys,
		cfg:        cfg,
		sampler:    newFeatureSampler(rand.New(rand.NewSource(cfg.Seed+17)), len(xs[0])),
		idx:        orderedIndex(len(xs)),
		scratch:    make([]int, len(xs)),
		sorted:     make([]int, len(xs)),
		regression: true,
	}
	g.grow(0, len(xs), 0)
	return &Regressor{nodes: g.nodes, leafIndex: g.leafIdx}
}

// Predict returns the leaf value for x.
func (t *Regressor) Predict(x []float64) float64 {
	return t.nodes[descend(t.nodes, x)].value
}

// Apply returns the leaf index (0-based, dense) x falls into.
func (t *Regressor) Apply(x []float64) int {
	return t.nodes[descend(t.nodes, x)].leafID
}

// NumLeaves returns the number of leaves.
func (t *Regressor) NumLeaves() int { return len(t.leafIndex) }

// SetLeafValue overwrites the output of leaf id.
func (t *Regressor) SetLeafValue(id int, v float64) {
	if id < 0 || id >= len(t.leafIndex) || t.leafIndex[id] < 0 {
		panic(fmt.Sprintf("tree: no leaf %d", id))
	}
	t.nodes[t.leafIndex[id]].value = v
}

func descend(nodes []node, x []float64) int {
	i := 0
	for nodes[i].feature != -1 {
		if x[nodes[i].feature] <= nodes[i].threshold {
			i = nodes[i].left
		} else {
			i = nodes[i].right
		}
	}
	return i
}

func depthOf(nodes []node, i, d int) int {
	if nodes[i].feature == -1 {
		return d
	}
	l := depthOf(nodes, nodes[i].left, d+1)
	r := depthOf(nodes, nodes[i].right, d+1)
	if l > r {
		return l
	}
	return r
}

// orderedIndex returns [0, 1, …, n-1].
func orderedIndex(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// featureSampler draws k-feature subsets with a reusable partial
// Fisher–Yates buffer, replacing the per-split rng.Perm allocation.
// The buffer persists across draws (the partial shuffle keeps it a
// permutation of 0..width-1), so sampling allocates nothing.
type featureSampler struct {
	rng *rand.Rand
	buf []int
}

func newFeatureSampler(rng *rand.Rand, width int) *featureSampler {
	return &featureSampler{rng: rng, buf: orderedIndex(width)}
}

// sample returns k features without replacement. When k covers every
// feature, the current buffer order is returned without consuming any
// randomness — both split engines share this convention, which keeps
// their rng streams aligned node for node.
func (s *featureSampler) sample(k int) []int {
	n := len(s.buf)
	if k >= n {
		return s.buf
	}
	for j := 0; j < k; j++ {
		r := j + s.rng.Intn(n-j)
		s.buf[j], s.buf[r] = s.buf[r], s.buf[j]
	}
	return s.buf[:k]
}

// grower holds the exact (sort-based) split engine's growth state.
type grower struct {
	xs         [][]float64
	ys         []float64
	cfg        Config
	sampler    *featureSampler
	regression bool
	nodes      []node
	leafCount  int
	leafIdx    []int
	// idx is the single index arena: grow(lo, hi) owns idx[lo:hi] and
	// partitions it in place, spilling the right side through scratch,
	// instead of append-growing two fresh slices per node.
	idx     []int
	scratch []int
	sorted  []int
}

// grow builds the subtree over idx[lo:hi] and returns its arena index.
func (g *grower) grow(lo, hi, depth int) int {
	idx := g.idx[lo:hi]
	mean, sse := meanSSE(g.ys, idx)
	self := len(g.nodes)
	g.nodes = append(g.nodes, node{feature: -1, value: mean})

	if depth >= g.cfg.MaxDepth || len(idx) < g.cfg.MinSamplesSplit || sse <= 1e-12 {
		g.sealLeaf(self)
		return self
	}
	feat, thr, gain, ok := g.bestSplit(idx, sse)
	if !ok {
		g.sealLeaf(self)
		return self
	}
	mid := g.partition(lo, hi, feat, thr)
	if mid-lo < g.cfg.MinSamplesLeaf || hi-mid < g.cfg.MinSamplesLeaf {
		g.sealLeaf(self)
		return self
	}
	g.nodes[self].feature = feat
	g.nodes[self].threshold = thr
	g.nodes[self].gain = gain
	l := g.grow(lo, mid, depth+1)
	r := g.grow(mid, hi, depth+1)
	g.nodes[self].left = l
	g.nodes[self].right = r
	return self
}

// partition stably splits idx[lo:hi] around x[feat] <= thr in place:
// kept rows compact to the front, spilled rows pass through scratch.
// It returns the boundary index. Relative order is preserved on both
// sides, matching what two append-grown slices would contain.
func (g *grower) partition(lo, hi, feat int, thr float64) int {
	k, t := lo, 0
	for p := lo; p < hi; p++ {
		i := g.idx[p]
		if g.xs[i][feat] <= thr {
			g.idx[k] = i
			k++
		} else {
			g.scratch[t] = i
			t++
		}
	}
	copy(g.idx[k:hi], g.scratch[:t])
	return k
}

func (g *grower) sealLeaf(i int) {
	g.nodes[i].leafID = g.leafCount
	g.leafIdx = append(g.leafIdx, i)
	g.leafCount++
}

// bestSplit scans a feature subsample for the split minimising the
// children's summed squared error. parentSSE gates on actual gain.
func (g *grower) bestSplit(idx []int, parentSSE float64) (feat int, thr, bestGainOut float64, ok bool) {
	width := len(g.xs[0])
	k := g.cfg.featuresPerSplit(width)
	feats := g.sampler.sample(k)

	bestGain := 1e-10
	sorted := g.sorted[:len(idx)]
	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return g.xs[sorted[a]][f] < g.xs[sorted[b]][f] })

		var sumL, sumL2 float64
		var sumR, sumR2 float64
		for _, i := range sorted {
			sumR += g.ys[i]
			sumR2 += g.ys[i] * g.ys[i]
		}
		nL, nR := 0, len(sorted)
		for pos := 0; pos < len(sorted)-1; pos++ {
			y := g.ys[sorted[pos]]
			sumL += y
			sumL2 += y * y
			sumR -= y
			sumR2 -= y * y
			nL++
			nR--
			xCur := g.xs[sorted[pos]][f]
			xNext := g.xs[sorted[pos+1]][f]
			if xCur == xNext {
				continue
			}
			if nL < g.cfg.MinSamplesLeaf || nR < g.cfg.MinSamplesLeaf {
				continue
			}
			sseL := sumL2 - sumL*sumL/float64(nL)
			sseR := sumR2 - sumR*sumR/float64(nR)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (xCur + xNext) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

func meanSSE(ys []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += ys[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := ys[i] - mean
		sse += d * d
	}
	return mean, sse
}
