package tree

// Per-prediction explanation by decision-path attribution (the Saabas
// method): walking from the root to a leaf, each split changes the
// expected prediction from the parent node's mean to the child's; that
// change is attributed to the split's feature. Contributions plus the
// root bias reconstruct the leaf value exactly, giving the operator a
// "why was this drive flagged" answer — the interpretability need the
// paper's related work (DFPE, MSST'19) calls out.

// Explain returns the per-feature contributions for x and the bias
// (the root node's mean). bias + Σ contributions == PredictProba(x).
func (t *Classifier) Explain(x []float64) (contributions []float64, bias float64) {
	return explainNodes(t.nodes, t.width, x)
}

func explainNodes(nodes []node, width int, x []float64) ([]float64, float64) {
	contrib := make([]float64, width)
	i := 0
	bias := nodes[0].value
	for nodes[i].feature != -1 {
		n := &nodes[i]
		var next int
		if x[n.feature] <= n.threshold {
			next = n.left
		} else {
			next = n.right
		}
		if n.feature < width {
			contrib[n.feature] += nodes[next].value - n.value
		}
		i = next
	}
	return contrib, bias
}
