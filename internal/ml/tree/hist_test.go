package tree

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ml/matrix"
)

// gridData draws n rows over width features, each feature taking one
// of `levels` distinct values, with 0/1 labels correlated to the first
// feature. With levels ≤ the bin budget the histogram engine is in
// its exactness regime; 0/1 labels keep every accumulated statistic
// integer-valued, hence bit-exact in float64.
func gridData(n, width, levels int, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, width)
		for f := range xs[i] {
			xs[i][f] = float64(r.Intn(levels)) * 0.25
		}
		if xs[i][0] > float64(levels-1)*0.25/2 != (r.Float64() < 0.1) {
			ys[i] = 1
		}
	}
	return xs, ys
}

// TestHistogramMatchesExactClassifier is the headline equivalence
// guarantee: with one bin per distinct value and integer-valued
// targets, the histogram engine grows trees bit-identical to the
// exact sort-based engine — same structure, thresholds, leaf values,
// and gains.
func TestHistogramMatchesExactClassifier(t *testing.T) {
	cfgs := []Config{
		{MaxDepth: 6},
		{MaxDepth: 12, MinSamplesLeaf: 5},
		{MaxDepth: 8, MaxFeatures: 2, Seed: 9},
		{MaxDepth: 8, MaxFeatures: -1, Seed: 4, MinSamplesSplit: 10},
	}
	for ci, cfg := range cfgs {
		for seed := int64(1); seed <= 3; seed++ {
			xs, ys := gridData(500, 6, 17, seed)
			m, err := matrix.Build(xs, 0)
			if err != nil {
				t.Fatal(err)
			}
			exact := GrowClassifier(xs, ys, cfg)
			hist := GrowClassifierBinned(m, ys, nil, cfg)
			if !reflect.DeepEqual(exact.Export(), hist.Export()) {
				t.Fatalf("cfg %d seed %d: histogram tree differs from exact tree", ci, seed)
			}
		}
	}
}

func TestHistogramMatchesExactRegressor(t *testing.T) {
	// Integer targets keep sums exact; the equivalence is bit-level.
	r := rand.New(rand.NewSource(11))
	xs, _ := gridData(400, 4, 23, 12)
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = float64(r.Intn(7) - 3)
	}
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{{MaxDepth: 5}, {MaxDepth: 9, MinSamplesLeaf: 4, MaxFeatures: 2, Seed: 2}} {
		exact := GrowRegressor(xs, ys, cfg)
		hist := GrowRegressorBinned(m, ys, nil, cfg)
		if !reflect.DeepEqual(exact.Export(), hist.Export()) {
			t.Fatal("histogram regression tree differs from exact tree")
		}
		if exact.NumLeaves() != hist.NumLeaves() {
			t.Fatalf("leaf counts differ: %d vs %d", exact.NumLeaves(), hist.NumLeaves())
		}
	}
}

// TestWeightedMatchesDuplicated checks the weight-based bagging
// identity: growing on per-row integer weights is the same tree as
// growing the exact engine on a physically duplicated sample set.
func TestWeightedMatchesDuplicated(t *testing.T) {
	xs, ys := gridData(300, 4, 13, 21)
	r := rand.New(rand.NewSource(22))
	w := make([]int, len(xs))
	var dupXs [][]float64
	var dupYs []float64
	for i := 0; i < len(xs); i++ {
		j := r.Intn(len(xs))
		w[j]++
	}
	for i := range xs {
		for k := 0; k < w[i]; k++ {
			dupXs = append(dupXs, xs[i])
			dupYs = append(dupYs, ys[i])
		}
	}
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxDepth: 7, MinSamplesLeaf: 3}
	exact := GrowClassifier(dupXs, dupYs, cfg)
	hist := GrowClassifierBinned(m, ys, w, cfg)

	ee, he := exact.Export(), hist.Export()
	if len(ee.Nodes) != len(he.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(ee.Nodes), len(he.Nodes))
	}
	for i := range ee.Nodes {
		a, b := ee.Nodes[i], he.Nodes[i]
		// Gains may differ by float ulps (duplicate-row summation order
		// vs weighted multiplication); everything else must match.
		a.Gain, b.Gain = 0, 0
		if a != b {
			t.Fatalf("node %d differs: %+v vs %+v", i, ee.Nodes[i], he.Nodes[i])
		}
	}
}

func TestHistogramQuantizedStillLearns(t *testing.T) {
	// Far more distinct values than bins: thresholds are quantised but
	// the tree must still separate an easy threshold pattern.
	r := rand.New(rand.NewSource(31))
	xs := make([][]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = []float64{r.NormFloat64(), r.NormFloat64()}
		if xs[i][0] > 0.3 {
			ys[i] = 1
		}
	}
	m, err := matrix.Build(xs, 64)
	if err != nil {
		t.Fatal(err)
	}
	tree := GrowClassifierBinned(m, ys, nil, Config{MaxDepth: 6})
	correct := 0
	for i := range xs {
		pred := 0.0
		if tree.PredictProba(xs[i]) >= 0.5 {
			pred = 1
		}
		if pred == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.97 {
		t.Fatalf("quantised accuracy = %g", acc)
	}
}

func TestHistogramConstantFeaturesLeafOnly(t *testing.T) {
	// Every feature constant: no split exists, the root is a leaf with
	// the class prior.
	xs := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	ys := []float64{1, 0, 1, 1}
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := GrowClassifierBinned(m, ys, nil, Config{})
	if tree.NodeCount() != 1 {
		t.Fatalf("constant matrix grew %d nodes", tree.NodeCount())
	}
	if got := tree.PredictProba([]float64{1, 2}); got != 0.75 {
		t.Fatalf("leaf value = %g, want 0.75", got)
	}
}

func TestHistogramSingleSampleNode(t *testing.T) {
	// One row: immediate leaf, no split search, no panic.
	m, err := matrix.Build([][]float64{{3, 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := GrowClassifierBinned(m, []float64{1}, nil, Config{})
	if tree.NodeCount() != 1 || tree.PredictProba([]float64{3, 1}) != 1 {
		t.Fatal("single-sample tree wrong")
	}
	reg := GrowRegressorBinned(m, []float64{2.5}, nil, Config{})
	if reg.NumLeaves() != 1 || reg.Predict([]float64{0, 0}) != 2.5 {
		t.Fatal("single-sample regression tree wrong")
	}
}

func TestHistogramAllZeroWeights(t *testing.T) {
	m, err := matrix.Build([][]float64{{1}, {2}, {3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := GrowClassifierBinned(m, []float64{1, 1, 1}, []int{0, 0, 0}, Config{})
	if tree.NodeCount() != 1 || tree.PredictProba([]float64{1}) != 0 {
		t.Fatal("all-zero weights should yield a degenerate zero leaf")
	}
}

func TestHistogramZeroWeightRowsExcluded(t *testing.T) {
	// Rows with weight 0 must not influence the tree: growing with
	// half the rows zero-weighted equals growing on the kept half.
	xs, ys := gridData(400, 3, 11, 41)
	w := make([]int, len(xs))
	var keptXs [][]float64
	var keptYs []float64
	for i := range xs {
		if i%2 == 0 {
			w[i] = 1
			keptXs = append(keptXs, xs[i])
			keptYs = append(keptYs, ys[i])
		}
	}
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxDepth: 6, MinSamplesLeaf: 2}
	weighted := GrowClassifierBinned(m, ys, w, cfg)
	exact := GrowClassifier(keptXs, keptYs, cfg)
	for i := range keptXs {
		if weighted.PredictProba(keptXs[i]) != exact.PredictProba(keptXs[i]) {
			t.Fatal("zero-weight rows leaked into the tree")
		}
	}
}

func TestHistogramMinSamplesLeafWeighted(t *testing.T) {
	// A weight-3 row counts as 3 samples toward the leaf floor, just
	// as three physical copies would.
	xs, ys := gridData(200, 3, 9, 51)
	w := make([]int, len(xs))
	for i := range w {
		w[i] = 3
	}
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	big := GrowClassifierBinned(m, ys, w, Config{MaxDepth: 20, MinSamplesLeaf: 90})
	// 200 rows × weight 3 = 600 weighted samples; a 90-sample floor
	// keeps the tree tiny, as with 600 physical rows.
	if big.NodeCount() > 13 {
		t.Fatalf("tree has %d nodes despite weighted MinSamplesLeaf", big.NodeCount())
	}
}

func TestHistogramDeterministicSubsampling(t *testing.T) {
	xs, ys := gridData(300, 8, 15, 61)
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxDepth: 8, MaxFeatures: 3, Seed: 7}
	a := GrowClassifierBinned(m, ys, nil, cfg)
	b := GrowClassifierBinned(m, ys, nil, cfg)
	if !reflect.DeepEqual(a.Export(), b.Export()) {
		t.Fatal("same seed produced different histogram trees")
	}
}

func TestHistogramRegressorSetLeafValue(t *testing.T) {
	xs, _ := gridData(100, 2, 7, 71)
	r := rand.New(rand.NewSource(72))
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = float64(r.Intn(5))
	}
	m, err := matrix.Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := GrowRegressorBinned(m, ys, nil, Config{MaxDepth: 3})
	leaf := reg.Apply(xs[0])
	reg.SetLeafValue(leaf, -42)
	if got := reg.Predict(xs[0]); got != -42 {
		t.Fatalf("Predict after SetLeafValue = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad leaf id should panic")
		}
	}()
	reg.SetLeafValue(reg.NumLeaves(), 0)
}

func TestHistogramMismatchedShapesPanic(t *testing.T) {
	m, err := matrix.Build([][]float64{{1}, {2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { GrowClassifierBinned(m, []float64{1}, nil, Config{}) },
		func() { GrowClassifierBinned(m, []float64{1, 0}, []int{1}, Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("shape mismatch accepted")
				}
			}()
			f()
		}()
	}
}
