package tree

// Histogram-based split finding over a columnar binned matrix
// (internal/ml/matrix). Instead of re-sorting the node's rows for
// every candidate feature — O(n log n) per feature per node — the
// engine accumulates per-bin (weighted count, Σwy, Σwy²) in one O(n)
// pass per feature and scans at most 256 bins for the best gain; the
// right-hand statistics come from parent-minus-left subtraction, so
// each candidate costs O(1).
//
// Bootstrap bagging is expressed as per-row integer weights on the
// shared matrix: a row drawn w times contributes w to every count and
// w·y to every sum, which reproduces exactly what w physical copies
// would contribute, without copying any row.
//
// Exactness: when every feature has one bin per distinct value
// (bins ≥ distinct values), the candidate thresholds, the candidate
// order, and — for integer-valued targets, whose partial sums are
// exact in float64 — every accumulated statistic coincide with the
// exact sort-based engine's, so the two engines grow bit-identical
// trees. The equivalence tests in hist_test.go pin this down.

import (
	"fmt"
	"math/rand"

	"repro/internal/ml/matrix"
)

// GrowClassifierBinned fits a gini tree on the binned matrix: ys must
// be 0/1, indexed by matrix row. weights are per-row bootstrap
// multiplicities (nil means one each); rows with weight 0 are left
// out of growth entirely.
func GrowClassifierBinned(m *matrix.BinnedMatrix, ys []float64, weights []int, cfg Config) *Classifier {
	return GrowClassifierBinnedView(m, ys, weights, nil, nil, cfg)
}

// GrowRegressorBinned fits a squared-error regression tree on the
// binned matrix. The same matrix can back every boosting round: only
// ys (the per-round gradients) and weights change.
func GrowRegressorBinned(m *matrix.BinnedMatrix, ys []float64, weights []int, cfg Config) *Regressor {
	return GrowRegressorBinnedView(m, ys, weights, nil, nil, cfg)
}

// GrowClassifierBinnedView is GrowClassifierBinned restricted to a
// view of the shared matrix, the bin-once training primitive:
//
//   - rows, when non-nil, lists the candidate matrix rows in *growth
//     order*. Passing the subset's rows in subset order makes every
//     accumulated statistic — and therefore the grown tree —
//     identical to binning the subset into its own matrix, without
//     copying or re-binning. rows must not contain duplicates.
//     weights then runs PARALLEL to rows (weights[i] is rows[i]'s
//     bootstrap multiplicity; nil means one each; zero-weight rows are
//     skipped), so growth state stays O(len(rows)) no matter how large
//     the shared matrix is.
//   - features, when non-nil, restricts split search to those feature
//     columns (the SFS/SBS column sub-view). The per-split sampler
//     draws from the subset exactly as it would from a masked matrix,
//     and grown nodes keep global feature indexes, so the tree
//     predicts on full-width arena rows directly.
//
// Nil rows selects every positive-weight row in matrix order (weights
// then indexed by matrix row); nil features selects all columns —
// together reproducing GrowClassifierBinned exactly.
func GrowClassifierBinnedView(m *matrix.BinnedMatrix, ys []float64, weights []int, rows, features []int, cfg Config) *Classifier {
	g := newHistGrower(m, ys, weights, rows, features, cfg)
	g.growRoot()
	return &Classifier{nodes: g.nodes, width: m.Cols()}
}

// GrowRegressorBinnedView is GrowRegressorBinned restricted to a view
// of the shared matrix; see GrowClassifierBinnedView for the rows and
// features contract.
func GrowRegressorBinnedView(m *matrix.BinnedMatrix, ys []float64, weights []int, rows, features []int, cfg Config) *Regressor {
	g := newHistGrower(m, ys, weights, rows, features, cfg)
	g.growRoot()
	return &Regressor{nodes: g.nodes, leafIndex: g.leafIdx}
}

// histGrower holds the histogram split engine's growth state. All
// scratch buffers are allocated once per tree and reused at every
// node, so growth allocates little beyond the node arena itself.
type histGrower struct {
	m   *matrix.BinnedMatrix
	cfg Config
	// Compact per-active-row state, one slot per positive-weight row in
	// growth order: row is the global matrix row, wc the bootstrap
	// weight, yv the target, and wy/wy2 cache w·y and w·y² so histogram
	// accumulation costs one add per statistic per row. Sizing these to
	// the active rows rather than the matrix keeps per-tree cost O(view)
	// even when the view is a sliver of a huge shared matrix.
	row     []int
	wc      []int
	yv      []float64
	wy, wy2 []float64
	// featU is the feature universe split search draws from: the
	// caller's column sub-view, or the identity over all columns. The
	// sampler permutes *positions* in this universe, so a sub-view
	// consumes the rng exactly as a masked matrix of the same width.
	featU   []int
	sampler *featureSampler

	nodes     []node
	leafCount int
	leafIdx   []int

	// idx is the single position arena (indexes into the compact state)
	// partitioned in place (hi spills through scratch); counts/sums/
	// sums2 are the per-feature bin histogram, sized to the matrix bin
	// ceiling.
	idx     []int
	scratch []int
	counts  []int
	sums    []float64
	sums2   []float64
}

func newHistGrower(m *matrix.BinnedMatrix, ys []float64, weights []int, rows, features []int, cfg Config) *histGrower {
	if len(ys) != m.Rows() {
		panic(fmt.Sprintf("tree: %d targets for %d matrix rows", len(ys), m.Rows()))
	}
	if weights != nil {
		if rows == nil && len(weights) != m.Rows() {
			panic(fmt.Sprintf("tree: %d weights for %d matrix rows", len(weights), m.Rows()))
		}
		if rows != nil && len(weights) != len(rows) {
			panic(fmt.Sprintf("tree: %d weights for %d view rows", len(weights), len(rows)))
		}
	}
	cfg = cfg.withDefaults()
	if features == nil {
		features = orderedIndex(m.Cols())
	}
	g := &histGrower{
		m:       m,
		cfg:     cfg,
		featU:   features,
		sampler: newFeatureSampler(rand.New(rand.NewSource(cfg.Seed+17)), len(features)),
		counts:  make([]int, matrix.MaxBins),
		sums:    make([]float64, matrix.MaxBins),
		sums2:   make([]float64, matrix.MaxBins),
	}
	// Compact the positive-weight rows, in growth order. weights is
	// indexed by matrix row when rows is nil and parallel to rows
	// otherwise (see GrowClassifierBinnedView).
	hint := m.Rows()
	if rows != nil {
		hint = len(rows)
	}
	g.row = make([]int, 0, hint)
	g.wc = make([]int, 0, hint)
	if rows == nil {
		for i := 0; i < m.Rows(); i++ {
			w := 1
			if weights != nil {
				w = weights[i]
			}
			if w > 0 {
				g.row = append(g.row, i)
				g.wc = append(g.wc, w)
			}
		}
	} else {
		for j, i := range rows {
			w := 1
			if weights != nil {
				w = weights[j]
			}
			if w > 0 {
				g.row = append(g.row, i)
				g.wc = append(g.wc, w)
			}
		}
	}
	n := len(g.row)
	g.yv = make([]float64, n)
	g.wy = make([]float64, n)
	g.wy2 = make([]float64, n)
	for p, i := range g.row {
		w := float64(g.wc[p])
		y := ys[i]
		g.yv[p] = y
		g.wy[p] = w * y
		g.wy2[p] = w * y * y
	}
	g.idx = make([]int, n)
	for p := range g.idx {
		g.idx[p] = p
	}
	g.scratch = make([]int, n)
	return g
}

func (g *histGrower) growRoot() {
	if len(g.idx) == 0 {
		// All-zero weights: degenerate single leaf predicting 0.
		g.nodes = append(g.nodes, node{feature: -1})
		g.sealLeaf(0)
		return
	}
	g.grow(0, len(g.idx), 0)
}

// grow builds the subtree over idx[lo:hi] and returns its arena index.
func (g *histGrower) grow(lo, hi, depth int) int {
	rows := g.idx[lo:hi]
	wn, mean, sse, wsum, wsum2 := g.nodeStats(rows)
	self := len(g.nodes)
	g.nodes = append(g.nodes, node{feature: -1, value: mean})

	if depth >= g.cfg.MaxDepth || wn < g.cfg.MinSamplesSplit || sse <= 1e-12 {
		g.sealLeaf(self)
		return self
	}
	feat, splitBin, thr, gain, ok := g.bestSplit(rows, wn, sse, wsum, wsum2)
	if !ok {
		g.sealLeaf(self)
		return self
	}
	mid := g.partition(lo, hi, feat, splitBin)
	g.nodes[self].feature = feat
	g.nodes[self].threshold = thr
	g.nodes[self].gain = gain
	l := g.grow(lo, mid, depth+1)
	r := g.grow(mid, hi, depth+1)
	g.nodes[self].left = l
	g.nodes[self].right = r
	return self
}

// nodeStats returns the node's weighted count, mean, SSE (two-pass,
// arithmetic-compatible with the exact engine's meanSSE at unit
// weights), and the weighted Σy / Σy² the split scan subtracts from.
func (g *histGrower) nodeStats(rows []int) (wn int, mean, sse, wsum, wsum2 float64) {
	for _, p := range rows {
		wn += g.wc[p]
		wsum += g.wy[p]
		wsum2 += g.wy2[p]
	}
	mean = wsum / float64(wn)
	for _, p := range rows {
		d := g.yv[p] - mean
		sse += float64(g.wc[p]) * d * d
	}
	return wn, mean, sse, wsum, wsum2
}

// partition stably splits idx[lo:hi] around bin(feat) <= splitBin in
// place, preserving relative order on both sides, and returns the
// boundary. Both children are guaranteed non-empty by bestSplit.
func (g *histGrower) partition(lo, hi, feat, splitBin int) int {
	col := g.m.Column(feat)
	bound := uint8(splitBin)
	k, t := lo, 0
	for q := lo; q < hi; q++ {
		p := g.idx[q]
		if col[g.row[p]] <= bound {
			g.idx[k] = p
			k++
		} else {
			g.scratch[t] = p
			t++
		}
	}
	copy(g.idx[k:hi], g.scratch[:t])
	return k
}

func (g *histGrower) sealLeaf(i int) {
	g.nodes[i].leafID = g.leafCount
	g.leafIdx = append(g.leafIdx, i)
	g.leafCount++
}

// bestSplit scans a feature subsample for the bin boundary minimising
// the children's summed squared error. Per feature it accumulates the
// bin histogram in O(rows) and walks the populated bins in ascending
// order; the right child's statistics are parent minus left. The
// returned threshold is the midpoint between the adjacent populated
// bins' build-time value bounds, and splitBin is the last left-side
// bin (the partition key).
func (g *histGrower) bestSplit(rows []int, wn int, parentSSE, wsum, wsum2 float64) (feat, splitBin int, thr, bestGainOut float64, ok bool) {
	k := g.cfg.featuresPerSplit(len(g.featU))
	feats := g.sampler.sample(k)
	minLeaf := g.cfg.MinSamplesLeaf

	bestGain := 1e-10
	for _, fp := range feats {
		f := g.featU[fp]
		nb := g.m.NumBins(f)
		if nb < 2 {
			continue // constant feature: nothing to split
		}
		col := g.m.Column(f)
		counts := g.counts[:nb]
		sums := g.sums[:nb]
		sums2 := g.sums2[:nb]
		for b := range counts {
			counts[b] = 0
			sums[b] = 0
			sums2[b] = 0
		}
		for _, p := range rows {
			b := col[g.row[p]]
			counts[b] += g.wc[p]
			sums[b] += g.wy[p]
			sums2[b] += g.wy2[p]
		}

		nL := 0
		var sumL, sumL2 float64
		lastB := -1
		for b := 0; b < nb; b++ {
			if counts[b] == 0 {
				continue
			}
			if lastB >= 0 {
				nR := wn - nL
				if nL >= minLeaf && nR >= minLeaf {
					sseL := sumL2 - sumL*sumL/float64(nL)
					sumR := wsum - sumL
					sumR2 := wsum2 - sumL2
					sseR := sumR2 - sumR*sumR/float64(nR)
					gain := parentSSE - sseL - sseR
					if gain > bestGain {
						bestGain = gain
						feat = f
						splitBin = lastB
						thr = g.m.CutBetween(f, lastB, b)
						ok = true
					}
				}
			}
			nL += counts[b]
			sumL += sums[b]
			sumL2 += sums2[b]
			lastB = b
		}
	}
	return feat, splitBin, thr, bestGain, ok
}
