package tree

// Histogram-based split finding over a columnar binned matrix
// (internal/ml/matrix). Instead of re-sorting the node's rows for
// every candidate feature — O(n log n) per feature per node — the
// engine accumulates per-bin (weighted count, Σwy, Σwy²) in one O(n)
// pass per feature and scans at most 256 bins for the best gain; the
// right-hand statistics come from parent-minus-left subtraction, so
// each candidate costs O(1).
//
// Bootstrap bagging is expressed as per-row integer weights on the
// shared matrix: a row drawn w times contributes w to every count and
// w·y to every sum, which reproduces exactly what w physical copies
// would contribute, without copying any row.
//
// Exactness: when every feature has one bin per distinct value
// (bins ≥ distinct values), the candidate thresholds, the candidate
// order, and — for integer-valued targets, whose partial sums are
// exact in float64 — every accumulated statistic coincide with the
// exact sort-based engine's, so the two engines grow bit-identical
// trees. The equivalence tests in hist_test.go pin this down.

import (
	"fmt"
	"math/rand"

	"repro/internal/ml/matrix"
)

// GrowClassifierBinned fits a gini tree on the binned matrix: ys must
// be 0/1, indexed by matrix row. weights are per-row bootstrap
// multiplicities (nil means one each); rows with weight 0 are left
// out of growth entirely.
func GrowClassifierBinned(m *matrix.BinnedMatrix, ys []float64, weights []int, cfg Config) *Classifier {
	g := newHistGrower(m, ys, weights, cfg)
	g.growRoot()
	return &Classifier{nodes: g.nodes, width: m.Cols()}
}

// GrowRegressorBinned fits a squared-error regression tree on the
// binned matrix. The same matrix can back every boosting round: only
// ys (the per-round gradients) and weights change.
func GrowRegressorBinned(m *matrix.BinnedMatrix, ys []float64, weights []int, cfg Config) *Regressor {
	g := newHistGrower(m, ys, weights, cfg)
	g.growRoot()
	return &Regressor{nodes: g.nodes, leafIndex: g.leafIdx}
}

// histGrower holds the histogram split engine's growth state. All
// scratch buffers are allocated once per tree and reused at every
// node, so growth allocates little beyond the node arena itself.
type histGrower struct {
	m   *matrix.BinnedMatrix
	ys  []float64
	w   []int
	cfg Config
	// wy, wy2 cache w·y and w·y² per row; histogram accumulation then
	// costs one add per statistic per row.
	wy, wy2 []float64
	sampler *featureSampler

	nodes     []node
	leafCount int
	leafIdx   []int

	// idx is the single index arena partitioned in place (hi spills
	// through scratch); counts/sums/sums2 are the per-feature bin
	// histogram, sized to the matrix bin ceiling.
	idx     []int
	scratch []int
	counts  []int
	sums    []float64
	sums2   []float64
}

func newHistGrower(m *matrix.BinnedMatrix, ys []float64, weights []int, cfg Config) *histGrower {
	if len(ys) != m.Rows() {
		panic(fmt.Sprintf("tree: %d targets for %d matrix rows", len(ys), m.Rows()))
	}
	if weights != nil && len(weights) != m.Rows() {
		panic(fmt.Sprintf("tree: %d weights for %d matrix rows", len(weights), m.Rows()))
	}
	cfg = cfg.withDefaults()
	g := &histGrower{
		m:       m,
		ys:      ys,
		cfg:     cfg,
		wy:      make([]float64, m.Rows()),
		wy2:     make([]float64, m.Rows()),
		sampler: newFeatureSampler(rand.New(rand.NewSource(cfg.Seed+17)), m.Cols()),
		scratch: make([]int, 0, m.Rows()),
		counts:  make([]int, matrix.MaxBins),
		sums:    make([]float64, matrix.MaxBins),
		sums2:   make([]float64, matrix.MaxBins),
	}
	if weights == nil {
		g.w = make([]int, m.Rows())
		for i := range g.w {
			g.w[i] = 1
		}
	} else {
		g.w = weights
	}
	g.idx = make([]int, 0, m.Rows())
	for i, w := range g.w {
		if w > 0 {
			g.idx = append(g.idx, i)
			g.wy[i] = float64(w) * ys[i]
			g.wy2[i] = float64(w) * ys[i] * ys[i]
		}
	}
	g.scratch = g.scratch[:len(g.idx)]
	return g
}

func (g *histGrower) growRoot() {
	if len(g.idx) == 0 {
		// All-zero weights: degenerate single leaf predicting 0.
		g.nodes = append(g.nodes, node{feature: -1})
		g.sealLeaf(0)
		return
	}
	g.grow(0, len(g.idx), 0)
}

// grow builds the subtree over idx[lo:hi] and returns its arena index.
func (g *histGrower) grow(lo, hi, depth int) int {
	rows := g.idx[lo:hi]
	wn, mean, sse, wsum, wsum2 := g.nodeStats(rows)
	self := len(g.nodes)
	g.nodes = append(g.nodes, node{feature: -1, value: mean})

	if depth >= g.cfg.MaxDepth || wn < g.cfg.MinSamplesSplit || sse <= 1e-12 {
		g.sealLeaf(self)
		return self
	}
	feat, splitBin, thr, gain, ok := g.bestSplit(rows, wn, sse, wsum, wsum2)
	if !ok {
		g.sealLeaf(self)
		return self
	}
	mid := g.partition(lo, hi, feat, splitBin)
	g.nodes[self].feature = feat
	g.nodes[self].threshold = thr
	g.nodes[self].gain = gain
	l := g.grow(lo, mid, depth+1)
	r := g.grow(mid, hi, depth+1)
	g.nodes[self].left = l
	g.nodes[self].right = r
	return self
}

// nodeStats returns the node's weighted count, mean, SSE (two-pass,
// arithmetic-compatible with the exact engine's meanSSE at unit
// weights), and the weighted Σy / Σy² the split scan subtracts from.
func (g *histGrower) nodeStats(rows []int) (wn int, mean, sse, wsum, wsum2 float64) {
	for _, i := range rows {
		wn += g.w[i]
		wsum += g.wy[i]
		wsum2 += g.wy2[i]
	}
	mean = wsum / float64(wn)
	for _, i := range rows {
		d := g.ys[i] - mean
		sse += float64(g.w[i]) * d * d
	}
	return wn, mean, sse, wsum, wsum2
}

// partition stably splits idx[lo:hi] around bin(feat) <= splitBin in
// place, preserving relative order on both sides, and returns the
// boundary. Both children are guaranteed non-empty by bestSplit.
func (g *histGrower) partition(lo, hi, feat, splitBin int) int {
	col := g.m.Column(feat)
	bound := uint8(splitBin)
	k, t := lo, 0
	for p := lo; p < hi; p++ {
		i := g.idx[p]
		if col[i] <= bound {
			g.idx[k] = i
			k++
		} else {
			g.scratch[t] = i
			t++
		}
	}
	copy(g.idx[k:hi], g.scratch[:t])
	return k
}

func (g *histGrower) sealLeaf(i int) {
	g.nodes[i].leafID = g.leafCount
	g.leafIdx = append(g.leafIdx, i)
	g.leafCount++
}

// bestSplit scans a feature subsample for the bin boundary minimising
// the children's summed squared error. Per feature it accumulates the
// bin histogram in O(rows) and walks the populated bins in ascending
// order; the right child's statistics are parent minus left. The
// returned threshold is the midpoint between the adjacent populated
// bins' build-time value bounds, and splitBin is the last left-side
// bin (the partition key).
func (g *histGrower) bestSplit(rows []int, wn int, parentSSE, wsum, wsum2 float64) (feat, splitBin int, thr, bestGainOut float64, ok bool) {
	k := g.cfg.featuresPerSplit(g.m.Cols())
	feats := g.sampler.sample(k)
	minLeaf := g.cfg.MinSamplesLeaf

	bestGain := 1e-10
	for _, f := range feats {
		nb := g.m.NumBins(f)
		if nb < 2 {
			continue // constant feature: nothing to split
		}
		col := g.m.Column(f)
		counts := g.counts[:nb]
		sums := g.sums[:nb]
		sums2 := g.sums2[:nb]
		for b := range counts {
			counts[b] = 0
			sums[b] = 0
			sums2[b] = 0
		}
		for _, i := range rows {
			b := col[i]
			counts[b] += g.w[i]
			sums[b] += g.wy[i]
			sums2[b] += g.wy2[i]
		}

		nL := 0
		var sumL, sumL2 float64
		lastB := -1
		for b := 0; b < nb; b++ {
			if counts[b] == 0 {
				continue
			}
			if lastB >= 0 {
				nR := wn - nL
				if nL >= minLeaf && nR >= minLeaf {
					sseL := sumL2 - sumL*sumL/float64(nL)
					sumR := wsum - sumL
					sumR2 := wsum2 - sumL2
					sseR := sumR2 - sumR*sumR/float64(nR)
					gain := parentSSE - sseL - sseR
					if gain > bestGain {
						bestGain = gain
						feat = f
						splitBin = lastB
						thr = g.m.CutBetween(f, lastB, b)
						ok = true
					}
				}
			}
			nL += counts[b]
			sumL += sums[b]
			sumL2 += sums2[b]
			lastB = b
		}
	}
	return feat, splitBin, thr, bestGain, ok
}
