package tree

// Feature importance by mean decrease in impurity (Breiman): each
// split's weighted SSE reduction is credited to its feature. The grower
// records per-node gains during growth so importance costs nothing at
// prediction time.

// FeatureImportance returns the total impurity decrease credited to
// each feature by this tree, indexed by feature. The vector is NOT
// normalised; ensemble callers sum across trees and normalise once.
func (t *Classifier) FeatureImportance() []float64 {
	return importanceOf(t.nodes, t.width)
}

// FeatureImportance returns the regression tree's per-feature impurity
// decrease.
func (t *Regressor) FeatureImportance() []float64 {
	width := 0
	for _, n := range t.nodes {
		if n.feature >= width {
			width = n.feature + 1
		}
	}
	return importanceOf(t.nodes, width)
}

func importanceOf(nodes []node, width int) []float64 {
	imp := make([]float64, width)
	for i := range nodes {
		if nodes[i].feature >= 0 {
			imp[nodes[i].feature] += nodes[i].gain
		}
	}
	return imp
}
