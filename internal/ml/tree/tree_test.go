package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

func xorData(n int, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, 0, n)
	ys := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		y := 0.0
		if (a > 0.5) != (b > 0.5) {
			y = 1
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	return xs, ys
}

func TestClassifierLearnsXOR(t *testing.T) {
	// XOR needs at least depth 2 and defeats any single linear split —
	// a good smoke test that recursive splitting works.
	xs, ys := xorData(600, 1)
	// The root split of XOR is uninformative, so a greedy tree with
	// MinSamplesLeaf=1 wastes its depth trimming pure edge slivers; a
	// modest leaf floor forces the central splits that unlock the
	// pattern (the forest uses the same mechanism via bagging).
	tree := GrowClassifier(xs, ys, Config{MaxDepth: 6, MinSamplesLeaf: 20})
	testXs, testYs := xorData(300, 2)
	correct := 0
	for i := range testXs {
		pred := 0.0
		if tree.PredictProba(testXs[i]) >= 0.5 {
			pred = 1
		}
		if pred == testYs[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testXs)); acc < 0.95 {
		t.Fatalf("XOR accuracy = %g", acc)
	}
}

func TestPureLeafShortCircuit(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	ys := []float64{1, 1, 1}
	tree := GrowClassifier(xs, ys, Config{})
	if tree.NodeCount() != 1 {
		t.Fatalf("pure node grew %d nodes, want 1", tree.NodeCount())
	}
	if tree.PredictProba([]float64{5}) != 1 {
		t.Fatal("pure leaf should predict 1")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	xs, ys := xorData(500, 3)
	for _, depth := range []int{1, 2, 4} {
		tree := GrowClassifier(xs, ys, Config{MaxDepth: depth})
		if got := tree.Depth(); got > depth {
			t.Errorf("depth = %d, limit %d", got, depth)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	xs, ys := xorData(100, 4)
	tree := GrowClassifier(xs, ys, Config{MaxDepth: 20, MinSamplesLeaf: 30})
	// With a 30-sample leaf floor on 100 samples, the tree stays small.
	if tree.NodeCount() > 9 {
		t.Fatalf("tree has %d nodes despite MinSamplesLeaf", tree.NodeCount())
	}
}

func TestTrainerInterface(t *testing.T) {
	var samples []ml.Sample
	xs, ys := xorData(300, 5)
	for i := range xs {
		samples = append(samples, ml.Sample{X: xs[i], Y: int(ys[i])})
	}
	tr := &Trainer{Config: Config{MaxDepth: 6}}
	if tr.Name() != "CART" {
		t.Fatal("wrong name")
	}
	clf, err := tr.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range samples {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(samples)); acc < 0.95 {
		t.Fatalf("training accuracy = %g", acc)
	}
}

func TestRegressorFitsStep(t *testing.T) {
	xs := make([][]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = []float64{float64(i)}
		if i >= 50 {
			ys[i] = 10
		}
	}
	reg := GrowRegressor(xs, ys, Config{MaxDepth: 2})
	if got := reg.Predict([]float64{10}); got != 0 {
		t.Errorf("left side = %g, want 0", got)
	}
	if got := reg.Predict([]float64{90}); got != 10 {
		t.Errorf("right side = %g, want 10", got)
	}
}

func TestRegressorLeafIDsDense(t *testing.T) {
	xs, ys := xorData(200, 6)
	reg := GrowRegressor(xs, ys, Config{MaxDepth: 4})
	seen := make(map[int]bool)
	for _, x := range xs {
		id := reg.Apply(x)
		if id < 0 || id >= reg.NumLeaves() {
			t.Fatalf("leaf id %d out of [0,%d)", id, reg.NumLeaves())
		}
		seen[id] = true
	}
	if len(seen) != reg.NumLeaves() {
		t.Fatalf("only %d of %d leaves reachable", len(seen), reg.NumLeaves())
	}
}

func TestSetLeafValue(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 1}
	reg := GrowRegressor(xs, ys, Config{MaxDepth: 1})
	leaf := reg.Apply([]float64{0})
	reg.SetLeafValue(leaf, 42)
	if got := reg.Predict([]float64{0}); got != 42 {
		t.Fatalf("Predict after SetLeafValue = %g", got)
	}
}

func TestSetLeafValuePanicsOnBadID(t *testing.T) {
	reg := GrowRegressor([][]float64{{0}}, []float64{0}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("bad leaf id should panic")
		}
	}()
	reg.SetLeafValue(99, 1)
}

func TestFeatureSubsampling(t *testing.T) {
	// With MaxFeatures=1 of 2 and a fixed seed, growth is deterministic.
	xs, ys := xorData(300, 7)
	a := GrowClassifier(xs, ys, Config{MaxDepth: 6, MaxFeatures: 1, Seed: 3})
	b := GrowClassifier(xs, ys, Config{MaxDepth: 6, MaxFeatures: 1, Seed: 3})
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 50, float64(50-i) / 50}
		if a.PredictProba(x) != b.PredictProba(x) {
			t.Fatal("same seed produced different trees")
		}
	}
}

func TestSqrtFeatures(t *testing.T) {
	cfg := Config{MaxFeatures: -1}
	if got := cfg.featuresPerSplit(45); got != 6 {
		t.Fatalf("√45 features = %d, want 6", got)
	}
	cfg = Config{MaxFeatures: 100}
	if got := cfg.featuresPerSplit(10); got != 10 {
		t.Fatalf("clamped features = %d, want 10", got)
	}
	cfg = Config{}
	if got := cfg.featuresPerSplit(10); got != 10 {
		t.Fatalf("all features = %d, want 10", got)
	}
}

func TestTrainerValidates(t *testing.T) {
	if _, err := (&Trainer{}).Train(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestRegressorPredictionsWithinTargetRange(t *testing.T) {
	// A regression tree's leaf values are means of target subsets, so
	// predictions can never escape the target range.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = []float64{r.NormFloat64(), r.NormFloat64()}
			ys[i] = r.NormFloat64() * 10
			lo = math.Min(lo, ys[i])
			hi = math.Max(hi, ys[i])
		}
		reg := GrowRegressor(xs, ys, Config{MaxDepth: 5, Seed: seed})
		for trial := 0; trial < 20; trial++ {
			p := reg.Predict([]float64{r.NormFloat64() * 3, r.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierProbabilityWithinUnitRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(80)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{r.NormFloat64()}
			ys[i] = float64(r.Intn(2))
		}
		tree := GrowClassifier(xs, ys, Config{MaxDepth: 6, Seed: seed})
		for trial := 0; trial < 20; trial++ {
			p := tree.PredictProba([]float64{r.NormFloat64() * 5})
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExportRoundTrip(t *testing.T) {
	xs, ys := xorData(300, 8)
	orig := GrowClassifier(xs, ys, Config{MaxDepth: 6, MinSamplesLeaf: 20})
	restored, err := ImportClassifier(orig.Export())
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if orig.PredictProba(xs[i]) != restored.PredictProba(xs[i]) {
			t.Fatal("classifier round trip changed predictions")
		}
	}
	reg := GrowRegressor(xs, ys, Config{MaxDepth: 4})
	regBack, err := ImportRegressor(reg.Export())
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if reg.Predict(xs[i]) != regBack.Predict(xs[i]) {
			t.Fatal("regressor round trip changed predictions")
		}
		if reg.Apply(xs[i]) != regBack.Apply(xs[i]) {
			t.Fatal("regressor round trip changed leaf ids")
		}
	}
}

func TestImportRejectsCorruptTrees(t *testing.T) {
	if _, err := ImportClassifier(Exported{}); err == nil {
		t.Fatal("empty export accepted")
	}
	bad := Exported{Nodes: []ExportedNode{{Feature: 0, Left: 5, Right: 1}}}
	if _, err := ImportClassifier(bad); err == nil {
		t.Fatal("out-of-range child accepted")
	}
	selfRef := Exported{Nodes: []ExportedNode{{Feature: 0, Left: 0, Right: 0}}}
	if _, err := ImportRegressor(selfRef); err == nil {
		t.Fatal("self-referential node accepted")
	}
}

func TestExplainReconstructsPrediction(t *testing.T) {
	xs, ys := xorData(400, 9)
	tree := GrowClassifier(xs, ys, Config{MaxDepth: 6, MinSamplesLeaf: 20})
	for i := 0; i < 50; i++ {
		x := xs[i]
		contrib, bias := tree.Explain(x)
		sum := bias
		for _, c := range contrib {
			sum += c
		}
		if math.Abs(sum-tree.PredictProba(x)) > 1e-12 {
			t.Fatalf("bias+contributions = %g, prediction = %g", sum, tree.PredictProba(x))
		}
	}
}

func TestExplainAttributesToUsedFeaturesOnly(t *testing.T) {
	// Feature 1 is constant, so no split can use it; its contribution
	// must be exactly zero.
	xs := make([][]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = []float64{float64(i), 42}
		if i >= 50 {
			ys[i] = 1
		}
	}
	tree := GrowClassifier(xs, ys, Config{MaxDepth: 3})
	contrib, _ := tree.Explain([]float64{75, 42})
	if contrib[1] != 0 {
		t.Fatalf("constant feature got contribution %g", contrib[1])
	}
	if contrib[0] <= 0 {
		t.Fatalf("splitting feature contribution = %g, want positive toward class 1", contrib[0])
	}
}
