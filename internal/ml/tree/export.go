package tree

import "fmt"

// Exported is the serialisation form of a tree, shared by the
// classification and regression kinds. Fields are exported for
// encoding/json and encoding/gob.
type Exported struct {
	Nodes []ExportedNode
	Width int
	// Leaves is the regression tree's leaf count (0 for classifiers).
	Leaves int
}

// ExportedNode mirrors the internal node layout.
type ExportedNode struct {
	Feature   int
	Threshold float64
	Left      int
	Right     int
	Value     float64
	LeafID    int
	Gain      float64
}

// Export returns the classifier's serialisation form.
func (t *Classifier) Export() Exported {
	return Exported{Nodes: exportNodes(t.nodes), Width: t.width}
}

// Export returns the regressor's serialisation form.
func (t *Regressor) Export() Exported {
	return Exported{Nodes: exportNodes(t.nodes), Leaves: len(t.leafIndex)}
}

func exportNodes(nodes []node) []ExportedNode {
	out := make([]ExportedNode, len(nodes))
	for i, n := range nodes {
		out[i] = ExportedNode{
			Feature:   n.feature,
			Threshold: n.threshold,
			Left:      n.left,
			Right:     n.right,
			Value:     n.value,
			LeafID:    n.leafID,
			Gain:      n.gain,
		}
	}
	return out
}

func importNodes(nodes []ExportedNode) ([]node, error) {
	out := make([]node, len(nodes))
	for i, n := range nodes {
		if n.Feature >= 0 {
			if n.Left < 0 || n.Left >= len(nodes) || n.Right < 0 || n.Right >= len(nodes) {
				return nil, fmt.Errorf("tree: node %d has child out of range", i)
			}
			if n.Left == i || n.Right == i {
				return nil, fmt.Errorf("tree: node %d is its own child", i)
			}
		}
		out[i] = node{
			feature:   n.Feature,
			threshold: n.Threshold,
			left:      n.Left,
			right:     n.Right,
			value:     n.Value,
			leafID:    n.LeafID,
			gain:      n.Gain,
		}
	}
	return out, nil
}

// ImportClassifier reconstructs a classification tree.
func ImportClassifier(e Exported) (*Classifier, error) {
	if len(e.Nodes) == 0 {
		return nil, fmt.Errorf("tree: empty export")
	}
	nodes, err := importNodes(e.Nodes)
	if err != nil {
		return nil, err
	}
	return &Classifier{nodes: nodes, width: e.Width}, nil
}

// ImportRegressor reconstructs a regression tree, rebuilding the
// leafID → arena-index table that backs O(1) SetLeafValue.
func ImportRegressor(e Exported) (*Regressor, error) {
	if len(e.Nodes) == 0 {
		return nil, fmt.Errorf("tree: empty export")
	}
	nodes, err := importNodes(e.Nodes)
	if err != nil {
		return nil, err
	}
	leafIndex := make([]int, e.Leaves)
	for i := range leafIndex {
		leafIndex[i] = -1
	}
	for i := range nodes {
		if nodes[i].feature == -1 && nodes[i].leafID >= 0 && nodes[i].leafID < len(leafIndex) {
			leafIndex[nodes[i].leafID] = i
		}
	}
	return &Regressor{nodes: nodes, leafIndex: leafIndex}, nil
}
