// Package predict implements the flattened batch inference engine for
// the tree ensembles. Training-time tree arenas are laid out for
// growing — one []node per tree, each node a struct of mixed-width
// fields — which is the wrong shape for the steady-state cost of a
// deployed predictor: scoring millions of rows, fleet-wide, every day.
//
// Compile* translate a fitted forest or GBDT into one contiguous
// structure-of-arrays arena (int32 feature ids, float64 thresholds,
// int32 child indexes, float64 leaf values; all trees concatenated,
// with per-tree root offsets), and the batch kernel walks rows in
// cache-sized blocks with trees on the outer loop, so one tree's nodes
// stay hot while a whole block of rows descends it. Blocks fan out
// across goroutines via internal/parallel under the repository's
// Workers convention (0 = GOMAXPROCS, 1 = serial).
//
// Scores are bit-exact against the per-row pointer-walking path at any
// worker count: per row, leaf contributions accumulate in tree order
// with exactly the arithmetic the per-row path uses (raw sum then one
// divide for the forest mean; bias plus per-tree lr·leaf then one
// sigmoid for GBDT), and blocking only changes which rows are in
// flight, never the order of additions within a row.
package predict

import (
	"fmt"
	"math"

	"repro/internal/ml/tree"
	"repro/internal/parallel"
)

// blockRows is the batch kernel's row-block size. A block's accumulator
// slice (8 B/row) stays resident in L1 while every tree of the ensemble
// streams over it; the value trades accumulator locality against how
// often the ensemble's node arrays are re-streamed.
const blockRows = 512

// directNodes is the arena size below which the kernel walks rows
// outer, trees inner (each row loaded once, every tree's true path
// walked to its leaf) instead of the padded tree-outer block walk. A
// small arena is cache-resident either way, so re-streaming it per row
// costs nothing, while the padded walk would still pay max-depth steps
// per tree — a pure loss on the shallow skewed trees the fleet models
// actually grow. Past this size the node arrays fall out of L2 and the
// tree-outer blocked walk's locality dominates.
const directNodes = 16384

// kind selects the ensemble's accumulation arithmetic.
type kind uint8

const (
	// kindForestMean averages raw leaf probabilities: sum in tree
	// order, one divide by the tree count at the end.
	kindForestMean kind = iota
	// kindGBDTLogit starts at the bias, adds lr·leaf per tree in tree
	// order, and applies the sigmoid once at the end.
	kindGBDTLogit
)

// Ensemble is a compiled, read-only inference form of a tree ensemble.
// All trees live in one structure-of-arrays node arena; children are
// absolute arena indexes. It is safe for concurrent use.
//
// The arena is laid out so a descent step never takes a data-dependent
// branch: children are interleaved (kids[2i], kids[2i+1]) and selected
// with a 0/1 compare outcome, and leaves are compiled as self-loops
// (feature 0, threshold +Inf, both kids pointing back at the leaf) so a
// walk can run for a tree's full depth with a fixed trip count instead
// of testing for a leaf at every step. Landing on a leaf early just
// spins in place — the compare against +Inf keeps selecting the leaf
// itself — and the row still reads the same leaf value the pointer walk
// would.
type Ensemble struct {
	// feature[i] is the split feature of node i; leaves hold 0.
	feature []int32
	// threshold[i] is the split threshold (x[feature] <= threshold
	// goes left); leaves hold +Inf so every row stays put.
	threshold []float64
	// kids holds the children of node i as absolute arena indexes at
	// kids[2i] (left) and kids[2i+1] (right); a leaf's kids are both i.
	kids []int32
	// value[i] is the leaf output, meaningful only for leaves.
	value []float64
	// roots[t] is the arena index of tree t's root.
	roots []int32
	// depths[t] is the maximum leaf depth of tree t — the fixed trip
	// count of a padded walk from roots[t].
	depths []int32
	// aos mirrors the arena as one packed 32-byte node per entry, built
	// only for arenas at or under directNodes: a small ensemble's walk
	// is latency-bound on single steps, and one cache line per node
	// beats four parallel arrays there.
	aos []aosNode

	kind kind
	// bias and rate are the GBDT intercept and learning rate.
	bias, rate float64
	// invTrees caches the forest divisor.
	trees float64
	// width is the minimum feature-vector length the arena can consume
	// (max referenced feature id + 1).
	width int
}

// CompileForest flattens a random forest's exported trees into a batch
// inference arena whose PredictProbaBatch reproduces the mean of the
// trees' leaf probabilities bit for bit.
func CompileForest(trees []tree.Exported) (*Ensemble, error) {
	e := &Ensemble{kind: kindForestMean}
	if err := e.append(trees); err != nil {
		return nil, err
	}
	e.trees = float64(len(trees))
	return e, nil
}

// CompileGBDT flattens a boosted ensemble's exported regression trees
// into a batch inference arena whose PredictProbaBatch reproduces
// sigmoid(bias + Σ lr·leaf) bit for bit. An empty tree list is valid
// (a bias-only model).
func CompileGBDT(trees []tree.Exported, bias, learningRate float64) (*Ensemble, error) {
	if learningRate <= 0 {
		return nil, fmt.Errorf("predict: non-positive learning rate %g", learningRate)
	}
	e := &Ensemble{kind: kindGBDTLogit, bias: bias, rate: learningRate}
	if err := e.append(trees); err != nil {
		return nil, err
	}
	return e, nil
}

// append concatenates each tree's nodes onto the arena, rebasing child
// indexes to absolute arena positions and validating the node graph the
// same way tree.Import* does (children in range, no self-loops, no
// cycles). Leaves are rewritten into the self-looping padded form the
// kernel walks (see the Ensemble doc).
func (e *Ensemble) append(trees []tree.Exported) error {
	var total int
	for _, t := range trees {
		total += len(t.Nodes)
	}
	e.feature = make([]int32, 0, total)
	e.threshold = make([]float64, 0, total)
	e.kids = make([]int32, 0, 2*total)
	e.value = make([]float64, 0, total)
	e.roots = make([]int32, 0, len(trees))
	e.depths = make([]int32, 0, len(trees))

	for ti, t := range trees {
		if len(t.Nodes) == 0 {
			return fmt.Errorf("predict: tree %d is empty", ti)
		}
		base := len(e.feature)
		e.roots = append(e.roots, int32(base))
		for ni, n := range t.Nodes {
			if n.Feature >= 0 {
				if n.Left < 0 || n.Left >= len(t.Nodes) || n.Right < 0 || n.Right >= len(t.Nodes) {
					return fmt.Errorf("predict: tree %d node %d has child out of range", ti, ni)
				}
				if n.Left == ni || n.Right == ni {
					return fmt.Errorf("predict: tree %d node %d is its own child", ti, ni)
				}
				if n.Feature+1 > e.width {
					e.width = n.Feature + 1
				}
				e.feature = append(e.feature, int32(n.Feature))
				e.threshold = append(e.threshold, n.Threshold)
				e.kids = append(e.kids, int32(base+n.Left), int32(base+n.Right))
			} else {
				e.feature = append(e.feature, 0)
				e.threshold = append(e.threshold, math.Inf(1))
				e.kids = append(e.kids, int32(base+ni), int32(base+ni))
			}
			e.value = append(e.value, n.Value)
		}
		d, err := maxLeafDepth(t.Nodes)
		if err != nil {
			return fmt.Errorf("predict: tree %d: %w", ti, err)
		}
		e.depths = append(e.depths, d)
	}
	if len(e.feature) <= directNodes {
		e.buildAOS()
	}
	return nil
}

// aosNode is the packed per-node form of the small-arena mirror. A
// leaf's children both point at the leaf itself, same as kids.
type aosNode struct {
	feature     int32
	left, right int32
	_           int32 // pad to 8-byte alignment
	threshold   float64
	value       float64
}

// buildAOS fills the small-arena mirror from the flat arrays.
func (e *Ensemble) buildAOS() {
	e.aos = make([]aosNode, len(e.feature))
	for i := range e.aos {
		e.aos[i] = aosNode{
			feature:   e.feature[i],
			left:      e.kids[2*i],
			right:     e.kids[2*i+1],
			threshold: e.threshold[i],
			value:     e.value[i],
		}
	}
}

// maxLeafDepth walks a tree's reachable nodes from the root and returns
// the deepest leaf. A well-formed binary tree pops each node at most
// once; exceeding that bound means the child graph has a cycle or a
// shared child, which the padded kernel (and the pointer walk) cannot
// terminate on.
func maxLeafDepth(nodes []tree.ExportedNode) (int32, error) {
	type frame struct{ node, depth int32 }
	stack := []frame{{0, 0}}
	var maxd int32
	pops := 0
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pops++; pops > len(nodes) {
			return 0, fmt.Errorf("child graph is not a tree")
		}
		n := nodes[f.node]
		if n.Feature < 0 {
			if f.depth > maxd {
				maxd = f.depth
			}
			continue
		}
		stack = append(stack, frame{int32(n.Left), f.depth + 1}, frame{int32(n.Right), f.depth + 1})
	}
	return maxd, nil
}

// Trees returns the number of compiled trees.
func (e *Ensemble) Trees() int { return len(e.roots) }

// Nodes returns the total node count of the arena.
func (e *Ensemble) Nodes() int { return len(e.feature) }

// Width returns the minimum feature-vector length the ensemble reads
// (one past the highest referenced feature index; 0 for leaf-only
// ensembles).
func (e *Ensemble) Width() int { return e.width }

// PredictProba implements ml.Classifier on the flattened arena, for
// callers that hold only the compiled form.
func (e *Ensemble) PredictProba(x []float64) float64 {
	var out [1]float64
	e.scoreBlock([][]float64{x}, out[:])
	return out[0]
}

// PredictProbaBatch scores xs into out (len(out) must equal len(xs)),
// fanning row blocks across workers (0 = GOMAXPROCS, 1 = serial).
// Scores are identical at any worker count and bit-exact against the
// ensemble's per-row prediction path.
func (e *Ensemble) PredictProbaBatch(xs [][]float64, out []float64, workers int) {
	if len(xs) != len(out) {
		panic(fmt.Sprintf("predict: %d rows but %d outputs", len(xs), len(out)))
	}
	if len(xs) == 0 {
		return
	}
	blocks := (len(xs) + blockRows - 1) / blockRows
	// Each block owns a disjoint slice of out, so the fan-out is
	// write-disjoint and needs no synchronisation beyond Do's join.
	_ = parallel.Do(blocks, workers, func(b int) error {
		lo := b * blockRows
		hi := lo + blockRows
		if hi > len(xs) {
			hi = len(xs)
		}
		e.scoreBlock(xs[lo:hi], out[lo:hi])
		return nil
	})
}

// scoreBlock accumulates every tree's contribution for one row block:
// trees outer, rows inner, so a single tree's node arrays stay cached
// while the whole block descends it.
//
// The inner walk is branch-free: each step selects a child with the 0/1
// outcome of the split compare (kids[2i+b], a flag-set instruction
// rather than a jump), and the self-looping leaf encoding lets four
// interleaved rows run a tree's full depth with one fixed trip count —
// no per-step leaf test, no data-dependent branches, so out-of-order
// execution keeps four dependent-load chains in flight at once.
//
// The select keeps the pointer walk's exact NaN semantics: b starts at
// 1 (right) and is cleared only when x[f] <= threshold, so an
// unordered compare falls right exactly like the per-row path's
// "x[f] <= threshold goes left" test.
func (e *Ensemble) scoreBlock(xs [][]float64, out []float64) {
	acc := out
	// mul folds the two accumulation rules into one kernel: the forest
	// adds raw leaf values (mul = 1, bit-exact — multiplying a float by
	// 1 is the identity), GBDT adds rate-scaled ones.
	init, mul := 0.0, 1.0
	if e.kind == kindGBDTLogit {
		init, mul = e.bias, e.rate
	}
	for r := range acc {
		acc[r] = init
	}
	feature, threshold := e.feature, e.threshold
	kids, value := e.kids, e.value
	if e.aos != nil {
		// Small cache-resident arena: rows outer, trees inner, walking
		// each true path to its leaf (a self-pointing child marks it)
		// over the packed one-line-per-node mirror. Here the select
		// stays a predicted branch on purpose: small fleet models see
		// heavily skewed row distributions (almost every drive is
		// healthy and follows the same few paths), so the predictor is
		// nearly always right and speculation beats the conditional-
		// move dependency chain. Same compares, same accumulation
		// order — bit-exact with the padded walk and the per-row path.
		nodes := e.aos
		for r, x := range xs {
			a := acc[r]
			for _, root := range e.roots {
				i := root
				n := &nodes[i]
				for n.left != i {
					if x[n.feature] <= n.threshold {
						i = n.left
					} else {
						i = n.right
					}
					n = &nodes[i]
				}
				a += mul * n.value
			}
			acc[r] = a
		}
		e.finish(acc)
		return
	}
	for t, root := range e.roots {
		d := int(e.depths[t])
		n := len(xs)
		r := 0
		for ; r+4 <= n; r += 4 {
			x0, x1, x2, x3 := xs[r], xs[r+1], xs[r+2], xs[r+3]
			i0, i1, i2, i3 := root, root, root, root
			for k := 0; k < d; k++ {
				b0, b1, b2, b3 := int32(1), int32(1), int32(1), int32(1)
				if x0[feature[i0]] <= threshold[i0] {
					b0 = 0
				}
				if x1[feature[i1]] <= threshold[i1] {
					b1 = 0
				}
				if x2[feature[i2]] <= threshold[i2] {
					b2 = 0
				}
				if x3[feature[i3]] <= threshold[i3] {
					b3 = 0
				}
				i0, i1, i2, i3 = kids[2*i0+b0], kids[2*i1+b1], kids[2*i2+b2], kids[2*i3+b3]
			}
			acc[r] += mul * value[i0]
			acc[r+1] += mul * value[i1]
			acc[r+2] += mul * value[i2]
			acc[r+3] += mul * value[i3]
		}
		for ; r < n; r++ {
			x := xs[r]
			i := root
			for k := 0; k < d; k++ {
				b := int32(1)
				if x[feature[i]] <= threshold[i] {
					b = 0
				}
				i = kids[2*i+b]
			}
			acc[r] += mul * value[i]
		}
	}
	e.finish(acc)
}

// finish applies the ensemble's final transform to the accumulated raw
// scores: the forest mean's divide, or GBDT's sigmoid.
func (e *Ensemble) finish(acc []float64) {
	switch e.kind {
	case kindForestMean:
		for r := range acc {
			acc[r] /= e.trees
		}
	case kindGBDTLogit:
		for r := range acc {
			acc[r] = 1 / (1 + math.Exp(-acc[r]))
		}
	}
}
