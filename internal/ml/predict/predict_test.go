package predict

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/tree"
)

// randTree grows a random but structurally valid exported tree in the
// same arena layout the growers emit: parent appended before children,
// children rebased within the tree.
func randTree(r *rand.Rand, width, maxDepth int) tree.Exported {
	var nodes []tree.ExportedNode
	var grow func(depth int) int
	grow = func(depth int) int {
		self := len(nodes)
		nodes = append(nodes, tree.ExportedNode{Feature: -1, Value: r.NormFloat64()})
		if depth >= maxDepth || r.Float64() < 0.3 {
			return self
		}
		nodes[self].Feature = r.Intn(width)
		nodes[self].Threshold = r.NormFloat64()
		l := grow(depth + 1)
		rr := grow(depth + 1)
		nodes[self].Left = l
		nodes[self].Right = rr
		return self
	}
	grow(0)
	return tree.Exported{Nodes: nodes, Width: width}
}

func randRows(r *rand.Rand, n, width int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, width)
		for j := range xs[i] {
			xs[i][j] = r.NormFloat64()
		}
	}
	return xs
}

// walk is the pointer-chasing oracle: the plain per-row descent the
// training-time representation performs.
func walk(t tree.Exported, x []float64) float64 {
	i := 0
	for t.Nodes[i].Feature >= 0 {
		if x[t.Nodes[i].Feature] <= t.Nodes[i].Threshold {
			i = t.Nodes[i].Left
		} else {
			i = t.Nodes[i].Right
		}
	}
	return t.Nodes[i].Value
}

// forestRef reproduces forest.Model.PredictProba's arithmetic exactly:
// sum in tree order, one divide.
func forestRef(trees []tree.Exported, x []float64) float64 {
	var s float64
	for _, t := range trees {
		s += walk(t, x)
	}
	return s / float64(len(trees))
}

// gbdtRef reproduces gbdt.Model.PredictProba's arithmetic exactly:
// bias, plus lr·leaf per tree in order, then the sigmoid.
func gbdtRef(trees []tree.Exported, bias, lr float64, x []float64) float64 {
	s := bias
	for _, t := range trees {
		s += lr * walk(t, x)
	}
	return 1 / (1 + math.Exp(-s))
}

func checkExact(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] { // exact equality, not a tolerance
			t.Fatalf("%s: row %d: flattened %v != pointer-walk %v", name, i, got[i], want[i])
		}
	}
}

// TestFlatMatchesPointerWalk is the engine's core property: for random
// ensembles and random rows, the flattened batch kernel equals the
// pointer-walking per-row path bit for bit, at several worker counts
// and at batch sizes that straddle the block boundary.
func TestFlatMatchesPointerWalk(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(8)
		nTrees := 1 + r.Intn(12)
		trees := make([]tree.Exported, nTrees)
		for i := range trees {
			trees[i] = randTree(r, width, 1+r.Intn(6))
		}
		nRows := r.Intn(2*blockRows + 3)
		xs := randRows(r, nRows, width)

		fe, err := CompileForest(trees)
		if err != nil {
			t.Fatalf("seed %d: CompileForest: %v", seed, err)
		}
		ge, err := CompileGBDT(trees, r.NormFloat64(), 0.1+r.Float64())
		if err != nil {
			t.Fatalf("seed %d: CompileGBDT: %v", seed, err)
		}
		wantF := make([]float64, nRows)
		wantG := make([]float64, nRows)
		for i, x := range xs {
			wantF[i] = forestRef(trees, x)
			wantG[i] = gbdtRef(trees, ge.bias, ge.rate, x)
		}
		for _, workers := range []int{1, 2, 0} {
			got := make([]float64, nRows)
			fe.PredictProbaBatch(xs, got, workers)
			checkExact(t, "forest", got, wantF)
			ge.PredictProbaBatch(xs, got, workers)
			checkExact(t, "gbdt", got, wantG)
		}
		for i, x := range xs {
			if p := fe.PredictProba(x); p != wantF[i] {
				t.Fatalf("seed %d: per-row PredictProba %v != %v", seed, p, wantF[i])
			}
		}
	}
}

// TestLargeArenaMatchesPointerWalk pins the same bit-exactness property
// on an arena big enough to cross the directNodes dispatch threshold,
// so the padded tree-outer block kernel (not just the small-arena
// rows-direct walk) is exercised against the oracle.
func TestLargeArenaMatchesPointerWalk(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const width = 6
	trees := make([]tree.Exported, 400)
	for i := range trees {
		trees[i] = randTree(r, width, 10)
	}
	fe, err := CompileForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	if fe.Nodes() <= directNodes {
		t.Fatalf("arena has %d nodes; grow the test ensemble past directNodes=%d", fe.Nodes(), directNodes)
	}
	ge, err := CompileGBDT(trees, -0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	xs := randRows(r, blockRows+7, width) // straddles a block boundary and the 4-row unroll
	wantF := make([]float64, len(xs))
	wantG := make([]float64, len(xs))
	for i, x := range xs {
		wantF[i] = forestRef(trees, x)
		wantG[i] = gbdtRef(trees, ge.bias, ge.rate, x)
	}
	for _, workers := range []int{1, 0} {
		got := make([]float64, len(xs))
		fe.PredictProbaBatch(xs, got, workers)
		checkExact(t, "forest/large", got, wantF)
		ge.PredictProbaBatch(xs, got, workers)
		checkExact(t, "gbdt/large", got, wantG)
	}
}

// FuzzFlatVsPointer drives the same property from fuzzed seeds; `go
// test` runs the seed corpus, `go test -fuzz` explores further.
func FuzzFlatVsPointer(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(0))
	f.Add(int64(-7), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(6)
		trees := []tree.Exported{randTree(r, width, 1+r.Intn(5)), randTree(r, width, 1+r.Intn(5))}
		xs := randRows(r, int(n), width)
		e, err := CompileForest(trees)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(xs))
		e.PredictProbaBatch(xs, got, 0)
		for i, x := range xs {
			if want := forestRef(trees, x); got[i] != want {
				t.Fatalf("row %d: %v != %v", i, got[i], want)
			}
		}
	})
}

// TestSingleNodeTrees covers leaf-only ensembles: every row gets the
// mean of the constants.
func TestSingleNodeTrees(t *testing.T) {
	trees := []tree.Exported{
		{Nodes: []tree.ExportedNode{{Feature: -1, Value: 0.25}}},
		{Nodes: []tree.ExportedNode{{Feature: -1, Value: 0.75}}},
	}
	e, err := CompileForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	if e.Width() != 0 {
		t.Fatalf("leaf-only width = %d, want 0", e.Width())
	}
	out := make([]float64, 3)
	e.PredictProbaBatch([][]float64{{}, {1}, {2, 3}}, out, 1)
	for i, p := range out {
		if p != 0.5 {
			t.Fatalf("row %d: %v, want 0.5", i, p)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	e, err := CompileForest([]tree.Exported{{Nodes: []tree.ExportedNode{{Feature: -1, Value: 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	e.PredictProbaBatch(nil, nil, 0) // must not panic or spin up workers
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	e, err := CompileForest([]tree.Exported{{Nodes: []tree.ExportedNode{{Feature: -1, Value: 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched out length accepted")
		}
	}()
	e.PredictProbaBatch(make([][]float64, 2), make([]float64, 1), 1)
}

func TestCompileRejectsMalformedTrees(t *testing.T) {
	cases := map[string][]tree.Exported{
		"empty tree":         {{Nodes: nil}},
		"child out of range": {{Nodes: []tree.ExportedNode{{Feature: 0, Left: 0, Right: 5}}}},
		"self child": {{Nodes: []tree.ExportedNode{
			{Feature: 0, Left: 0, Right: 1}, {Feature: -1},
		}}},
		// A two-node cycle passes the per-node checks but would never
		// terminate a walk; the depth pass must reject it.
		"cycle": {{Nodes: []tree.ExportedNode{
			{Feature: 0, Left: 1, Right: 1},
			{Feature: 0, Left: 0, Right: 0},
		}}},
		// A diamond (shared child) is acyclic but still not a tree.
		"shared child": {{Nodes: []tree.ExportedNode{
			{Feature: 0, Left: 1, Right: 2},
			{Feature: 0, Left: 3, Right: 3},
			{Feature: 0, Left: 3, Right: 3},
			{Feature: -1},
		}}},
	}
	for name, trees := range cases {
		if _, err := CompileForest(trees); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
	if _, err := CompileGBDT(nil, 0, 0); err == nil {
		t.Error("non-positive learning rate accepted")
	}
}

func TestArenaAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	trees := []tree.Exported{randTree(r, 4, 4), randTree(r, 4, 4), randTree(r, 4, 4)}
	e, err := CompileForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	if e.Trees() != 3 {
		t.Fatalf("Trees() = %d, want 3", e.Trees())
	}
	total := 0
	for _, tr := range trees {
		total += len(tr.Nodes)
	}
	if e.Nodes() != total {
		t.Fatalf("Nodes() = %d, want %d", e.Nodes(), total)
	}
	if e.Width() < 1 || e.Width() > 4 {
		t.Fatalf("Width() = %d out of range", e.Width())
	}
}
