package predict

import (
	"math/rand"
	"testing"

	"repro/internal/ml/tree"
)

// benchEnsemble compiles a synthetic forest-shaped arena plus a scoring
// matrix. The small configuration (~10 k nodes) lands on the AoS
// rows-direct path, the large one (> directNodes) on the padded blocked
// kernel, so both dispatch arms are benchmarked.
func benchEnsemble(b *testing.B, nTrees, maxDepth, rows int) (*Ensemble, [][]float64) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	const width = 32
	trees := make([]tree.Exported, nTrees)
	for i := range trees {
		trees[i] = randTree(r, width, maxDepth)
	}
	e, err := CompileForest(trees)
	if err != nil {
		b.Fatal(err)
	}
	return e, randRows(r, rows, width)
}

func benchBatch(b *testing.B, nTrees, maxDepth, workers int) {
	e, xs := benchEnsemble(b, nTrees, maxDepth, 20000)
	out := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PredictProbaBatch(xs, out, workers)
	}
}

func BenchmarkBatchPredict(b *testing.B) {
	b.Run("small", func(b *testing.B) { benchBatch(b, 100, 10, 0) })
	b.Run("large", func(b *testing.B) { benchBatch(b, 400, 12, 0) })
}

func BenchmarkBatchPredictSerial(b *testing.B) {
	b.Run("small", func(b *testing.B) { benchBatch(b, 100, 10, 1) })
	b.Run("large", func(b *testing.B) { benchBatch(b, 400, 12, 1) })
}

// BenchmarkPerRowPredict walks the same arenas one row at a time — the
// cost of skipping the batch kernel, with the arena's layout advantage
// already granted.
func BenchmarkPerRowPredict(b *testing.B) {
	for _, cfg := range []struct {
		name             string
		nTrees, maxDepth int
	}{{"small", 100, 10}, {"large", 400, 12}} {
		b.Run(cfg.name, func(b *testing.B) {
			e, xs := benchEnsemble(b, cfg.nTrees, cfg.maxDepth, 20000)
			out := make([]float64, len(xs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r, x := range xs {
					out[r] = e.PredictProba(x)
				}
			}
		})
	}
}
