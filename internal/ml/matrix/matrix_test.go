package matrix

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ml"
)

func TestConstantFeatureSingleBin(t *testing.T) {
	xs := [][]float64{{7, 1}, {7, 2}, {7, 3}}
	m, err := Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBins(0) != 1 {
		t.Fatalf("constant feature has %d bins, want 1", m.NumBins(0))
	}
	if m.NumBins(1) != 3 {
		t.Fatalf("3-distinct feature has %d bins, want 3", m.NumBins(1))
	}
	for _, b := range m.Column(0) {
		if b != 0 {
			t.Fatalf("constant feature binned to %d", b)
		}
	}
}

func TestFewerDistinctThanBinsIsLossless(t *testing.T) {
	// 5 distinct values, 256-bin budget: one bin per value, and the
	// cut between adjacent bins is the midpoint between the values —
	// the exact splitter's threshold.
	vals := []float64{-2, -0.5, 0, 1.25, 9}
	r := rand.New(rand.NewSource(1))
	xs := make([][]float64, 200)
	for i := range xs {
		xs[i] = []float64{vals[r.Intn(len(vals))]}
	}
	m, err := Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBins(0) != len(vals) {
		t.Fatalf("bins = %d, want %d", m.NumBins(0), len(vals))
	}
	for i := range xs {
		b := int(m.Column(0)[i])
		if vals[b] != xs[i][0] {
			t.Fatalf("row %d value %g binned to bin %d (value %g)", i, xs[i][0], b, vals[b])
		}
	}
	for b := 0; b < len(vals)-1; b++ {
		want := (vals[b] + vals[b+1]) / 2
		if got := m.CutBetween(0, b, b+1); got != want {
			t.Fatalf("cut %d = %g, want %g", b, got, want)
		}
	}
}

func TestQuantileBinningCapsBins(t *testing.T) {
	// 10k distinct values must compress into at most maxBins bins,
	// monotonically: higher values never land in lower bins.
	r := rand.New(rand.NewSource(2))
	xs := make([][]float64, 10000)
	for i := range xs {
		xs[i] = []float64{r.NormFloat64()}
	}
	for _, maxBins := range []int{16, 255, 256, 1000} {
		m, err := Build(xs, maxBins)
		if err != nil {
			t.Fatal(err)
		}
		limit := maxBins
		if limit > MaxBins {
			limit = MaxBins
		}
		if nb := m.NumBins(0); nb > limit || nb < 2 {
			t.Fatalf("maxBins %d produced %d bins", maxBins, nb)
		}
		type pair struct {
			v float64
			b uint8
		}
		pairs := make([]pair, len(xs))
		for i := range xs {
			pairs[i] = pair{xs[i][0], m.Column(0)[i]}
		}
		for i := range pairs {
			for j := range pairs {
				if pairs[i].v < pairs[j].v && pairs[i].b > pairs[j].b {
					t.Fatalf("binning not monotone: %g→%d but %g→%d",
						pairs[i].v, pairs[i].b, pairs[j].v, pairs[j].b)
				}
			}
			if i > 50 { // O(n²) check on a prefix is plenty
				break
			}
		}
	}
}

func TestQuantileBinsRoughlyBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 8192
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{r.Float64()}
	}
	m, err := Build(xs, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.NumBins(0))
	for _, b := range m.Column(0) {
		counts[b]++
	}
	per := n / 64
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bin %d empty at build time", b)
		}
		if c > 4*per {
			t.Fatalf("bin %d holds %d rows (target %d)", b, c, per)
		}
	}
}

func TestBuildRejectsNaN(t *testing.T) {
	xs := [][]float64{{1, 2}, {3, math.NaN()}}
	if _, err := Build(xs, 0); err == nil {
		t.Fatal("NaN input accepted")
	}
}

func TestBuildRejectsEmptyAndRagged(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Build([][]float64{{}}, 0); err == nil {
		t.Fatal("zero-width input accepted")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}, 0); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestBuildWorkersDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs := make([][]float64, 500)
	for i := range xs {
		xs[i] = []float64{r.NormFloat64(), r.NormFloat64() * 10, float64(r.Intn(5))}
	}
	serial, err := BuildWorkers(xs, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelM, err := BuildWorkers(xs, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < serial.Cols(); f++ {
		if serial.NumBins(f) != parallelM.NumBins(f) {
			t.Fatalf("feature %d: bins differ across worker counts", f)
		}
		for i := range xs {
			if serial.Column(f)[i] != parallelM.Column(f)[i] {
				t.Fatalf("feature %d row %d: bin differs across worker counts", f, i)
			}
		}
	}
}

func TestFromSamples(t *testing.T) {
	samples := []ml.Sample{
		{X: []float64{1, 5}, Y: 0},
		{X: []float64{2, 5}, Y: 1},
		{X: []float64{3, 5}, Y: 0},
	}
	m, err := FromSamples(samples, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %d×%d", m.Rows(), m.Cols())
	}
	if m.NumBins(1) != 1 {
		t.Fatalf("constant column bins = %d", m.NumBins(1))
	}
}

// TestDenseCensusMatchesSort pins the dense-histogram fast path to the
// sort-based general path: integer columns (narrow and budget-
// exceeding cardinality alike) must produce identical bins and cuts,
// and fractional or wide-range columns must fall back.
func TestDenseCensusMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cases := map[string][]float64{
		"narrow":   make([]float64, 5000),
		"manyVals": make([]float64, 5000),
		"negative": make([]float64, 3000),
	}
	for i := range cases["narrow"] {
		cases["narrow"][i] = float64(r.Intn(12))
	}
	for i := range cases["manyVals"] {
		cases["manyVals"][i] = float64(r.Intn(2000)) // > 256 distinct: quantile regime
	}
	for i := range cases["negative"] {
		cases["negative"][i] = float64(r.Intn(40) - 20)
	}
	cases["halves"] = make([]float64, 4000)
	for i := range cases["halves"] {
		cases["halves"][i] = float64(r.Intn(50)) / 2 // the cleaner's window-mean grid
	}
	for name, col := range cases {
		gotBins, gotLo, gotHi, ok := binColumnDense(col, MaxBins)
		if !ok {
			t.Fatalf("%s: dense path refused an integer column", name)
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		var vals []float64
		var cnts []int
		for i := 0; i < len(sorted); {
			j := i
			for j < len(sorted) && sorted[j] == sorted[i] {
				j++
			}
			vals = append(vals, sorted[i])
			cnts = append(cnts, j-i)
			i = j
		}
		wantLo, wantHi := cutsFrom(vals, cnts, len(col), MaxBins)
		if !reflect.DeepEqual(gotLo, wantLo) || !reflect.DeepEqual(gotHi, wantHi) {
			t.Fatalf("%s: dense cuts differ: lo %v vs %v, hi %v vs %v", name, gotLo, wantLo, gotHi, wantHi)
		}
		for i, v := range col {
			want := uint8(sort.SearchFloat64s(wantHi, v))
			if gotBins[i] != want {
				t.Fatalf("%s: row %d (value %v): dense bin %d, sort bin %d", name, i, v, gotBins[i], want)
			}
		}
	}

	if _, _, _, ok := binColumnDense([]float64{0.3, 1, 2}, MaxBins); ok {
		t.Fatal("off-grid fractional column took the dense path")
	}
	if _, _, _, ok := binColumnDense([]float64{0, 1 << 20}, MaxBins); ok {
		t.Fatal("wide-range column took the dense path")
	}
}

// TestRadixSortMatchesComparisonSort exercises the radix path above
// and below the pass-skipping shortcut, including negatives and
// duplicated values.
func TestRadixSortMatchesComparisonSort(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cases := [][]float64{
		make([]float64, 5000),
		make([]float64, 5000),
		make([]float64, 3000),
	}
	for i := range cases[0] {
		cases[0][i] = r.NormFloat64() * 1e6
	}
	for i := range cases[1] {
		cases[1][i] = float64(r.Intn(64)) // heavy duplication, many constant bytes
	}
	for i := range cases[2] {
		cases[2][i] = r.Float64() - 0.5
	}
	for ci, col := range cases {
		want := append([]float64(nil), col...)
		sort.Float64s(want)
		got := append([]float64(nil), col...)
		radixSortFloats(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: radix order diverges from comparison sort", ci)
		}
	}
}
