// Package matrix provides the columnar binned feature matrix behind
// the histogram-based tree training engine. Each feature column is
// quantile-binned once into at most 256 uint8 bins; the binned matrix
// is then shared read-only by every tree of an ensemble, so the
// per-node split search degrades from O(n log n) re-sorting per
// feature to an O(n) histogram accumulation plus an O(bins) scan —
// the standard trick (LightGBM-style) that lets disk-failure studies
// train tree ensembles on millions of drive-days.
//
// Exactness guarantee: when a feature has no more distinct values
// than the bin budget, every distinct value receives its own bin and
// the per-bin value bounds make the candidate thresholds (midpoints
// between adjacent populated bins) identical to the exact sort-based
// splitter's midpoints between adjacent present values. The histogram
// engine then grows bit-identical trees to the exact engine for
// integer-valued targets (see tree's equivalence tests).
package matrix

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/parallel"
)

// MaxBins is the hard per-feature bin ceiling imposed by the uint8
// bin index representation.
const MaxBins = 256

// DefaultBins is the bin budget selected by a zero Bins configuration
// in the ensemble trainers.
const DefaultBins = 256

// BinnedMatrix is a column-major quantile-binned view of a training
// matrix. It is immutable after Build and safe for concurrent readers.
type BinnedMatrix struct {
	rows, cols int
	// cols[f][row] is the bin index of row's value of feature f.
	bins [][]uint8
	// lo[f][b] / hi[f][b] bound the raw values observed in bin b of
	// feature f at build time; candidate split thresholds are midpoints
	// between adjacent populated bins' hi and lo.
	lo, hi [][]float64
}

// Rows returns the number of rows (samples).
func (m *BinnedMatrix) Rows() int { return m.rows }

// Cols returns the number of feature columns.
func (m *BinnedMatrix) Cols() int { return m.cols }

// NumBins returns the number of bins of feature f.
func (m *BinnedMatrix) NumBins(f int) int { return len(m.lo[f]) }

// Column returns feature f's per-row bin indexes. The slice is shared
// and must not be mutated.
func (m *BinnedMatrix) Column(f int) []uint8 { return m.bins[f] }

// CutBetween returns the split threshold separating leftBin from
// rightBin of feature f: the midpoint between the highest value seen
// in leftBin and the lowest seen in rightBin. With one bin per
// distinct value this is exactly the exact splitter's midpoint
// between adjacent present values.
func (m *BinnedMatrix) CutBetween(f, leftBin, rightBin int) float64 {
	return (m.hi[f][leftBin] + m.lo[f][rightBin]) / 2
}

// Build bins the row-major matrix xs into at most maxBins quantile
// bins per feature. maxBins 0 selects DefaultBins; values are clamped
// to [2, MaxBins]. Build rejects NaN inputs — the growers rely on a
// NaN-free matrix, since NaN defeats both ordering and binning.
func Build(xs [][]float64, maxBins int) (*BinnedMatrix, error) {
	return BuildWorkers(xs, maxBins, 1)
}

// BuildWorkers is Build with the feature columns binned on at most
// workers goroutines (the repository convention: 0 = GOMAXPROCS,
// 1 = serial). Output is identical at any worker count.
func BuildWorkers(xs [][]float64, maxBins, workers int) (*BinnedMatrix, error) {
	if len(xs) == 0 || len(xs[0]) == 0 {
		return nil, fmt.Errorf("matrix: empty input")
	}
	switch {
	case maxBins == 0:
		maxBins = DefaultBins
	case maxBins < 2:
		maxBins = 2
	case maxBins > MaxBins:
		maxBins = MaxBins
	}
	rows, cols := len(xs), len(xs[0])
	m := &BinnedMatrix{
		rows: rows,
		cols: cols,
		bins: make([][]uint8, cols),
		lo:   make([][]float64, cols),
		hi:   make([][]float64, cols),
	}
	if err := parallel.Do(cols, workers, func(f int) error {
		col := make([]float64, rows)
		for i := range xs {
			if len(xs[i]) != cols {
				return fmt.Errorf("matrix: row %d has width %d, want %d", i, len(xs[i]), cols)
			}
			v := xs[i][f]
			if math.IsNaN(v) {
				return fmt.Errorf("matrix: NaN at row %d, feature %d", i, f)
			}
			col[i] = v
		}
		m.bins[f], m.lo[f], m.hi[f] = binColumn(col, maxBins)
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// FromSamples builds the binned matrix over the samples' feature
// vectors. The samples are not retained.
func FromSamples(samples []ml.Sample, maxBins, workers int) (*BinnedMatrix, error) {
	xs := make([][]float64, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
	}
	return BuildWorkers(xs, maxBins, workers)
}

// binColumn quantile-bins one feature column: if the column has at
// most maxBins distinct values each gets its own bin (the exactness
// regime); otherwise greedy quantile boundaries target rows/maxBins
// rows per bin, never splitting equal values across bins.
func binColumn(col []float64, maxBins int) (bins []uint8, lo, hi []float64) {
	n := len(col)
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)

	// Distinct values with multiplicities.
	var vals []float64
	cnts := make([]int, 0, 16)
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		vals = append(vals, sorted[i])
		cnts = append(cnts, j-i)
		i = j
	}

	if len(vals) <= maxBins {
		lo = append([]float64(nil), vals...)
		hi = append([]float64(nil), vals...)
	} else {
		per := float64(n) / float64(maxBins)
		acc, start := 0, 0
		for i := range vals {
			acc += cnts[i]
			if i < len(vals)-1 && len(lo) < maxBins-1 &&
				float64(acc) >= float64(len(lo)+1)*per {
				lo = append(lo, vals[start])
				hi = append(hi, vals[i])
				start = i + 1
			}
		}
		lo = append(lo, vals[start])
		hi = append(hi, vals[len(vals)-1])
	}

	// Map every row value to its bin by binary search on the bin upper
	// bounds; every value was observed at build time, so it lands in
	// the bin whose [lo, hi] range contains it.
	bins = make([]uint8, n)
	for i, v := range col {
		bins[i] = uint8(sort.SearchFloat64s(hi, v))
	}
	return bins, lo, hi
}
