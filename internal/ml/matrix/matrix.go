// Package matrix provides the columnar binned feature matrix behind
// the histogram-based tree training engine. Each feature column is
// quantile-binned once into at most 256 uint8 bins; the binned matrix
// is then shared read-only by every tree of an ensemble, so the
// per-node split search degrades from O(n log n) re-sorting per
// feature to an O(n) histogram accumulation plus an O(bins) scan —
// the standard trick (LightGBM-style) that lets disk-failure studies
// train tree ensembles on millions of drive-days.
//
// Exactness guarantee: when a feature has no more distinct values
// than the bin budget, every distinct value receives its own bin and
// the per-bin value bounds make the candidate thresholds (midpoints
// between adjacent populated bins) identical to the exact sort-based
// splitter's midpoints between adjacent present values. The histogram
// engine then grows bit-identical trees to the exact engine for
// integer-valued targets (see tree's equivalence tests).
package matrix

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/ml"
	"repro/internal/parallel"
)

// MaxBins is the hard per-feature bin ceiling imposed by the uint8
// bin index representation.
const MaxBins = 256

// DefaultBins is the bin budget selected by a zero Bins configuration
// in the ensemble trainers.
const DefaultBins = 256

// BinnedMatrix is a column-major quantile-binned view of a training
// matrix. It is immutable after Build and safe for concurrent readers.
type BinnedMatrix struct {
	rows, cols int
	// cols[f][row] is the bin index of row's value of feature f.
	bins [][]uint8
	// lo[f][b] / hi[f][b] bound the raw values observed in bin b of
	// feature f at build time; candidate split thresholds are midpoints
	// between adjacent populated bins' hi and lo.
	lo, hi [][]float64
}

// Rows returns the number of rows (samples).
func (m *BinnedMatrix) Rows() int { return m.rows }

// Cols returns the number of feature columns.
func (m *BinnedMatrix) Cols() int { return m.cols }

// NumBins returns the number of bins of feature f.
func (m *BinnedMatrix) NumBins(f int) int { return len(m.lo[f]) }

// Column returns feature f's per-row bin indexes. The slice is shared
// and must not be mutated.
func (m *BinnedMatrix) Column(f int) []uint8 { return m.bins[f] }

// CutBetween returns the split threshold separating leftBin from
// rightBin of feature f: the midpoint between the highest value seen
// in leftBin and the lowest seen in rightBin. With one bin per
// distinct value this is exactly the exact splitter's midpoint
// between adjacent present values.
func (m *BinnedMatrix) CutBetween(f, leftBin, rightBin int) float64 {
	return (m.hi[f][leftBin] + m.lo[f][rightBin]) / 2
}

// Build bins the row-major matrix xs into at most maxBins quantile
// bins per feature. maxBins 0 selects DefaultBins; values are clamped
// to [2, MaxBins]. Build rejects NaN inputs — the growers rely on a
// NaN-free matrix, since NaN defeats both ordering and binning.
func Build(xs [][]float64, maxBins int) (*BinnedMatrix, error) {
	return BuildWorkers(xs, maxBins, 1)
}

// BuildWorkers is Build with the feature columns binned on at most
// workers goroutines (the repository convention: 0 = GOMAXPROCS,
// 1 = serial). Output is identical at any worker count.
func BuildWorkers(xs [][]float64, maxBins, workers int) (*BinnedMatrix, error) {
	if len(xs) == 0 || len(xs[0]) == 0 {
		return nil, fmt.Errorf("matrix: empty input")
	}
	maxBins = NormBins(maxBins)
	rows, cols := len(xs), len(xs[0])
	m := &BinnedMatrix{
		rows: rows,
		cols: cols,
		bins: make([][]uint8, cols),
		lo:   make([][]float64, cols),
		hi:   make([][]float64, cols),
	}
	if err := parallel.Do(cols, workers, func(f int) error {
		col := make([]float64, rows)
		for i := range xs {
			if len(xs[i]) != cols {
				return fmt.Errorf("matrix: row %d has width %d, want %d", i, len(xs[i]), cols)
			}
			v := xs[i][f]
			if math.IsNaN(v) {
				return fmt.Errorf("matrix: NaN at row %d, feature %d", i, f)
			}
			col[i] = v
		}
		m.bins[f], m.lo[f], m.hi[f] = binColumn(col, maxBins)
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// FromSamples builds the binned matrix over the samples' feature
// vectors. The samples are not retained.
func FromSamples(samples []ml.Sample, maxBins, workers int) (*BinnedMatrix, error) {
	xs := make([][]float64, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
	}
	return BuildWorkers(xs, maxBins, workers)
}

// NormBins maps a bin budget to its effective value: 0 selects
// DefaultBins, other values clamp to [2, MaxBins]. Negative budgets
// (the exact-engine sentinel in the trainers) are the caller's
// business and must not reach the binning layer.
func NormBins(maxBins int) int {
	switch {
	case maxBins == 0:
		return DefaultBins
	case maxBins < 2:
		return 2
	case maxBins > MaxBins:
		return MaxBins
	}
	return maxBins
}

// gatherBlock is the number of feature columns transposed per pass
// over the arena: per-column strided gathers would stream the whole
// arena once per feature, so blocking cuts memory traffic cols/
// gatherBlock-fold while capping the transpose buffer at
// gatherBlock×rows values.
const gatherBlock = 8

// BuildStrided bins a row-major arena of rows×cols values — the
// columnar SampleSet layout — without materialising per-row slices.
// Binning semantics are identical to BuildWorkers.
func BuildStrided(x []float64, rows, cols, maxBins, workers int) (*BinnedMatrix, error) {
	if rows == 0 || cols == 0 || len(x) != rows*cols {
		return nil, fmt.Errorf("matrix: arena holds %d values, want %d rows × %d", len(x), rows, cols)
	}
	maxBins = NormBins(maxBins)
	m := &BinnedMatrix{
		rows: rows,
		cols: cols,
		bins: make([][]uint8, cols),
		lo:   make([][]float64, cols),
		hi:   make([][]float64, cols),
	}
	blocks := (cols + gatherBlock - 1) / gatherBlock
	if err := parallel.Do(blocks, workers, func(bi int) error {
		f0 := bi * gatherBlock
		f1 := f0 + gatherBlock
		if f1 > cols {
			f1 = cols
		}
		nf := f1 - f0
		buf := make([]float64, nf*rows)
		for i := 0; i < rows; i++ {
			base := i * cols
			for k := 0; k < nf; k++ {
				v := x[base+f0+k]
				if math.IsNaN(v) {
					return fmt.Errorf("matrix: NaN at row %d, feature %d", i, f0+k)
				}
				buf[k*rows+i] = v
			}
		}
		for k := 0; k < nf; k++ {
			f := f0 + k
			m.bins[f], m.lo[f], m.hi[f] = binColumn(buf[k*rows:(k+1)*rows], maxBins)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// SharedFromSet returns the set-wide binned matrix of a SampleSet,
// building it at most once per effective bin budget and caching it on
// the set — the bin-once contract behind grid search, SFS/SBS, and
// walk-forward folds: candidate subsets are realised as row-masked
// views (per-row weights or index lists) of this one matrix instead of
// re-binning per candidate. Safe for concurrent callers; every caller
// with the same budget shares one build.
func SharedFromSet(set *ml.SampleSet, maxBins, workers int) (*BinnedMatrix, error) {
	nb := NormBins(maxBins)
	v, err := set.Cached(int64(nb), func() (any, error) {
		return BuildStrided(set.Arena(), set.Len(), set.Width(), nb, workers)
	})
	if err != nil {
		return nil, err
	}
	return v.(*BinnedMatrix), nil
}

// binColumn quantile-bins one feature column: if the column has at
// most maxBins distinct values each gets its own bin (the exactness
// regime); otherwise greedy quantile boundaries target rows/maxBins
// rows per bin, never splitting equal values across bins.
//
// Columns of small integers — SMART counters, event and BSOD counts,
// firmware codes, i.e. most of this repository's features — take a
// dense-histogram path that skips the O(n log n) sort entirely; its
// distinct-value census is identical to the sorted scan's, so the
// resulting bins are bit-for-bit the same.
func binColumn(col []float64, maxBins int) (bins []uint8, lo, hi []float64) {
	if bins, lo, hi, ok := binColumnDense(col, maxBins); ok {
		return bins, lo, hi
	}
	n := len(col)
	sorted := append([]float64(nil), col...)
	sortFloats(sorted)

	// Distinct values with multiplicities.
	var vals []float64
	cnts := make([]int, 0, 16)
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		vals = append(vals, sorted[i])
		cnts = append(cnts, j-i)
		i = j
	}

	lo, hi = cutsFrom(vals, cnts, n, maxBins)

	// Map every row value to its bin by binary search on the bin upper
	// bounds; every value was observed at build time, so it lands in
	// the bin whose [lo, hi] range contains it.
	bins = make([]uint8, n)
	for i, v := range col {
		bins[i] = uint8(sort.SearchFloat64s(hi, v))
	}
	return bins, lo, hi
}

// sortFloats sorts a NaN-free column ascending: comparison sort below
// the radix break-even, 8-pass LSD radix above it. Radix runs in O(n)
// against the comparison sort's O(n log n), which matters because
// binning a fleet-wide arena sorts a few hundred thousand values per
// continuous column.
func sortFloats(col []float64) {
	if len(col) < 2048 {
		slices.Sort(col)
		return
	}
	radixSortFloats(col)
}

// radixSortFloats sorts via the order-preserving uint64 transform of
// float64 (flip all bits of negatives, flip the sign bit of
// non-negatives), 8 bits per pass, skipping passes whose byte is
// constant. The caller guarantees no NaNs; ±0 compare equal before and
// after, so the ascending value sequence is identical to a comparison
// sort's.
func radixSortFloats(col []float64) {
	n := len(col)
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i, v := range col {
		u := math.Float64bits(v)
		if u&(1<<63) != 0 {
			u = ^u
		} else {
			u |= 1 << 63
		}
		a[i] = u
	}
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, u := range a {
			counts[(u>>shift)&0xff]++
		}
		if counts[(a[0]>>shift)&0xff] == n {
			continue // constant byte: pass is the identity
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, u := range a {
			k := (u >> shift) & 0xff
			b[counts[k]] = u
			counts[k]++
		}
		a, b = b, a
	}
	for i, u := range a {
		if u&(1<<63) != 0 {
			u &^= 1 << 63
		} else {
			u = ^u
		}
		col[i] = math.Float64frombits(u)
	}
}

// cutsFrom derives the bin value bounds from the ascending distinct
// values and their multiplicities: one bin per value when they fit the
// budget, greedy quantile boundaries otherwise.
func cutsFrom(vals []float64, cnts []int, n, maxBins int) (lo, hi []float64) {
	if len(vals) <= maxBins {
		lo = append([]float64(nil), vals...)
		hi = append([]float64(nil), vals...)
		return lo, hi
	}
	per := float64(n) / float64(maxBins)
	acc, start := 0, 0
	for i := range vals {
		acc += cnts[i]
		if i < len(vals)-1 && len(lo) < maxBins-1 &&
			float64(acc) >= float64(len(lo)+1)*per {
			lo = append(lo, vals[start])
			hi = append(hi, vals[i])
			start = i + 1
		}
	}
	lo = append(lo, vals[start])
	hi = append(hi, vals[len(vals)-1])
	return lo, hi
}

// denseRange is the widest integer value range the dense census
// handles; beyond it the histogram's footprint would rival the sort it
// replaces.
const denseRange = 1 << 16

// binColumnDense bins a column whose values sit on a narrow integer or
// half-integer grid using a dense histogram: one O(n) census pass
// replaces the sort, and a value-offset lookup table replaces the
// per-row binary search. Half-integer grids arise from the cleaning
// stage's window means, so together the two scales cover nearly every
// counter-derived feature. The census yields exactly the sorted scan's
// ascending distinct values with multiplicities and the LUT assigns
// each value the bin whose [lo, hi] range contains it, so output is
// identical to the general path. ok reports whether the column
// qualifies.
func binColumnDense(col []float64, maxBins int) (bins []uint8, lo, hi []float64, ok bool) {
	if len(col) == 0 {
		return nil, nil, nil, false
	}
	// scale maps values onto an integer grid: v*scale must be integral
	// for every row. Detected in one pass; 2 covers the half-integer
	// values the cleaner's window means produce.
	scale := 1.0
	minV, maxV := col[0], col[0]
	for _, v := range col {
		if v-v != 0 {
			return nil, nil, nil, false // NaN or ±Inf
		}
		s := v * scale
		if s != math.Trunc(s) {
			scale *= 2
			s = v * scale
			if s != math.Trunc(s) || scale > 2 {
				return nil, nil, nil, false
			}
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := (maxV - minV) * scale
	if span >= denseRange {
		return nil, nil, nil, false
	}
	base := minV * scale
	width := int(span) + 1
	counts := make([]int, width)
	for _, v := range col {
		counts[int(v*scale-base)]++
	}
	vals := make([]float64, 0, 16)
	cnts := make([]int, 0, 16)
	for off, c := range counts {
		if c > 0 {
			vals = append(vals, (base+float64(off))/scale)
			cnts = append(cnts, c)
		}
	}
	lo, hi = cutsFrom(vals, cnts, len(col), maxBins)

	// lut maps grid offset → bin, walking the ascending distinct
	// values against the ascending upper bounds (the first bound ≥ v,
	// as the binary search would find).
	lut := make([]uint8, width)
	b := 0
	for _, v := range vals {
		for v > hi[b] {
			b++
		}
		lut[int(v*scale-base)] = uint8(b)
	}
	bins = make([]uint8, len(col))
	for i, v := range col {
		bins[i] = lut[int(v*scale-base)]
	}
	return bins, lo, hi, true
}
