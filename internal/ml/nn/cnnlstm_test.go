package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// newTinyNet builds a small network with identity input scaling, for
// white-box gradient checks.
func newTinyNet(seed int64) *Model {
	cfg := CNNLSTMTrainer{SeqLen: 4, Features: 3, Filters: 2, Kernel: 3, Hidden: 3}
	r := rand.New(rand.NewSource(seed))
	m := newModel(&cfg, r)
	m.mean = make([]float64, cfg.Features)
	m.std = []float64{1, 1, 1}
	return m
}

// bceLoss evaluates the network's binary cross-entropy on one sample.
func bceLoss(m *Model, x []float64, y float64) float64 {
	p := m.forward(x).prob
	p = math.Min(math.Max(p, 1e-12), 1-1e-12)
	if y == 1 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// TestGradientCheck compares the analytic backprop gradients against
// central finite differences for every parameter tensor. This is the
// strongest possible unit test of the conv + BPTT implementation.
func TestGradientCheck(t *testing.T) {
	m := newTinyNet(1)
	r := rand.New(rand.NewSource(2))
	x := make([]float64, m.cfg.SeqLen*m.cfg.Features)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	const y = 1.0
	const eps = 1e-5

	for _, p := range m.params() {
		p.zeroGrad()
	}
	m.backward(x, y)

	params := m.params()
	names := []string{"convW", "convB", "lstmW", "lstmB", "outW", "outB"}
	for pi, p := range params {
		for i := range p.w {
			orig := p.w[i]
			p.w[i] = orig + eps
			lossPlus := bceLoss(m, x, y)
			p.w[i] = orig - eps
			lossMinus := bceLoss(m, x, y)
			p.w[i] = orig

			numeric := (lossPlus - lossMinus) / (2 * eps)
			analytic := p.g[i]
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 1e-4 {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", names[pi], i, analytic, numeric)
			}
		}
	}
}

func TestGradientCheckNegativeLabel(t *testing.T) {
	m := newTinyNet(3)
	r := rand.New(rand.NewSource(4))
	x := make([]float64, m.cfg.SeqLen*m.cfg.Features)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	const eps = 1e-5
	m.backward(x, 0)
	p := m.lstmW
	for _, i := range []int{0, 7, len(p.w) / 2, len(p.w) - 1} {
		orig := p.w[i]
		p.w[i] = orig + eps
		lp := bceLoss(m, x, 0)
		p.w[i] = orig - eps
		lm := bceLoss(m, x, 0)
		p.w[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-p.g[i]) > 1e-4*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("lstmW[%d]: analytic %g vs numeric %g", i, p.g[i], numeric)
		}
	}
}

// seqBlobs builds sequence samples whose class is encoded in the trend
// of the first feature over time.
func seqBlobs(n, seqLen, features int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		for _, y := range []int{0, 1} {
			x := make([]float64, seqLen*features)
			for tstep := 0; tstep < seqLen; tstep++ {
				for f := 0; f < features; f++ {
					v := r.NormFloat64() * 0.3
					if f == 0 && y == 1 {
						v += float64(tstep) // rising trend for positives
					}
					x[tstep*features+f] = v
				}
			}
			out = append(out, ml.Sample{X: x, Y: y})
		}
	}
	return out
}

func TestCNNLSTMLearnsTrend(t *testing.T) {
	trainer := &CNNLSTMTrainer{
		SeqLen: 5, Features: 3, Filters: 8, Kernel: 3, Hidden: 12,
		Epochs: 20, Batch: 16, Seed: 1,
	}
	train := seqBlobs(150, 5, 3, 1)
	test := seqBlobs(80, 5, 3, 2)
	clf, err := trainer.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Fatalf("trend accuracy = %g", acc)
	}
}

func TestTrainerValidation(t *testing.T) {
	good := seqBlobs(5, 2, 2, 3)
	if _, err := (&CNNLSTMTrainer{SeqLen: 0, Features: 2}).Train(good); err == nil {
		t.Error("zero SeqLen accepted")
	}
	if _, err := (&CNNLSTMTrainer{SeqLen: 3, Features: 2}).Train(good); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := (&CNNLSTMTrainer{SeqLen: 2, Features: 2}).Train(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestPredictProbaBounds(t *testing.T) {
	trainer := &CNNLSTMTrainer{SeqLen: 3, Features: 2, Epochs: 2, Seed: 1}
	train := seqBlobs(30, 3, 2, 5)
	clf, err := trainer.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqBlobs(30, 3, 2, 6) {
		p := clf.PredictProba(s.X)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("probability %g out of bounds", p)
		}
	}
}

func TestAdamStepReducesLoss(t *testing.T) {
	m := newTinyNet(7)
	r := rand.New(rand.NewSource(8))
	x := make([]float64, m.cfg.SeqLen*m.cfg.Features)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	opt := newAdam(1e-2)
	before := bceLoss(m, x, 1)
	for i := 0; i < 50; i++ {
		m.backward(x, 1)
		opt.update(m.params(), 1)
	}
	after := bceLoss(m, x, 1)
	if after >= before {
		t.Fatalf("loss did not decrease: %g → %g", before, after)
	}
}

func TestScalerFitsTrainingData(t *testing.T) {
	trainer := &CNNLSTMTrainer{SeqLen: 2, Features: 2}
	samples := []ml.Sample{
		{X: []float64{1000, 1, 2000, 3}, Y: 0},
		{X: []float64{3000, 5, 4000, 7}, Y: 1},
	}
	r := rand.New(rand.NewSource(1))
	m := newModel(trainer, r)
	m.fitScaler(samples)
	// Feature 0 sees values {1000, 2000, 3000, 4000} → mean 2500.
	if math.Abs(m.mean[0]-2500) > 1e-9 {
		t.Fatalf("mean[0] = %g, want 2500", m.mean[0])
	}
	if m.std[0] <= 0 {
		t.Fatal("std must be positive")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	trainer := &CNNLSTMTrainer{SeqLen: 3, Features: 4, Filters: 4, Kernel: 3, Hidden: 5, Epochs: 3, Seed: 1}
	train := seqBlobs(40, 3, 4, 40)
	clf, err := trainer.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	restored, err := Import(m.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqBlobs(20, 3, 4, 41) {
		if restored.PredictProba(s.X) != m.PredictProba(s.X) {
			t.Fatal("round trip changed predictions")
		}
	}
}

func TestImportRejectsCorrupt(t *testing.T) {
	if _, err := Import(Exported{}); err == nil {
		t.Error("zero architecture accepted")
	}
	e := Exported{SeqLen: 2, Features: 2, Filters: 2, Kernel: 3, Hidden: 2,
		ConvW: make([]float64, 1), // wrong size
	}
	if _, err := Import(e); err == nil {
		t.Error("wrong tensor size accepted")
	}
	// Correct sizes but non-positive scaler std.
	good := Exported{
		SeqLen: 2, Features: 2, Filters: 2, Kernel: 3, Hidden: 2,
		ConvW: make([]float64, 2*3*2), ConvB: make([]float64, 2),
		LSTMW: make([]float64, 4*2*(2+2)), LSTMB: make([]float64, 4*2),
		OutW: make([]float64, 2), OutB: make([]float64, 1),
		Mean: make([]float64, 2), Std: make([]float64, 2), // zero std
	}
	if _, err := Import(good); err == nil {
		t.Error("zero scaler std accepted")
	}
}
