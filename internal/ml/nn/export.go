package nn

import "fmt"

// Exported is the CNN_LSTM's serialisation form: the architecture
// hyper-parameters, all weight tensors flattened, and the fitted input
// scaler.
type Exported struct {
	SeqLen   int
	Features int
	Filters  int
	Kernel   int
	Hidden   int

	ConvW, ConvB []float64
	LSTMW, LSTMB []float64
	OutW, OutB   []float64

	Mean, Std []float64
}

// Export returns the network's serialisation form.
func (m *Model) Export() Exported {
	cp := func(p *param) []float64 { return append([]float64(nil), p.w...) }
	return Exported{
		SeqLen:   m.cfg.SeqLen,
		Features: m.cfg.Features,
		Filters:  m.cfg.Filters,
		Kernel:   m.cfg.Kernel,
		Hidden:   m.cfg.Hidden,
		ConvW:    cp(m.convW),
		ConvB:    cp(m.convB),
		LSTMW:    cp(m.lstmW),
		LSTMB:    cp(m.lstmB),
		OutW:     cp(m.outW),
		OutB:     cp(m.outB),
		Mean:     append([]float64(nil), m.mean...),
		Std:      append([]float64(nil), m.std...),
	}
}

// Import reconstructs a CNN_LSTM from its serialisation form.
func Import(e Exported) (*Model, error) {
	if e.SeqLen < 1 || e.Features < 1 || e.Filters < 1 || e.Kernel < 1 || e.Hidden < 1 {
		return nil, fmt.Errorf("nn: invalid architecture %d/%d/%d/%d/%d",
			e.SeqLen, e.Features, e.Filters, e.Kernel, e.Hidden)
	}
	wants := map[string][2]int{
		"ConvW": {len(e.ConvW), e.Filters * e.Kernel * e.Features},
		"ConvB": {len(e.ConvB), e.Filters},
		"LSTMW": {len(e.LSTMW), 4 * e.Hidden * (e.Filters + e.Hidden)},
		"LSTMB": {len(e.LSTMB), 4 * e.Hidden},
		"OutW":  {len(e.OutW), e.Hidden},
		"OutB":  {len(e.OutB), 1},
		"Mean":  {len(e.Mean), e.Features},
		"Std":   {len(e.Std), e.Features},
	}
	for name, v := range wants {
		if v[0] != v[1] {
			return nil, fmt.Errorf("nn: %s has %d values, want %d", name, v[0], v[1])
		}
	}
	cfg := CNNLSTMTrainer{
		SeqLen: e.SeqLen, Features: e.Features,
		Filters: e.Filters, Kernel: e.Kernel, Hidden: e.Hidden,
	}
	m := &Model{
		cfg:   cfg,
		convW: paramFrom(e.ConvW),
		convB: paramFrom(e.ConvB),
		lstmW: paramFrom(e.LSTMW),
		lstmB: paramFrom(e.LSTMB),
		outW:  paramFrom(e.OutW),
		outB:  paramFrom(e.OutB),
		mean:  append([]float64(nil), e.Mean...),
		std:   append([]float64(nil), e.Std...),
	}
	for i, s := range m.std {
		if s <= 0 {
			return nil, fmt.Errorf("nn: non-positive scaler std at %d", i)
		}
	}
	return m, nil
}

func paramFrom(w []float64) *param {
	p := newParam(len(w))
	copy(p.w, w)
	return p
}
