// Package nn implements the small neural-network stack needed for the
// paper's CNN_LSTM candidate model: a 1-D convolution over the time
// axis, an LSTM layer, a dense sigmoid head, binary cross-entropy loss,
// and the Adam optimiser — all from scratch with full backpropagation
// through time.
package nn

import (
	"math"
	"math/rand"
)

// param is one learnable tensor flattened to a vector, with its
// gradient accumulator and Adam moment estimates.
type param struct {
	w, g, m, v []float64
}

func newParam(n int) *param {
	return &param{
		w: make([]float64, n),
		g: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
	}
}

// initUniform fills the weights with U(−scale, +scale).
func (p *param) initUniform(r *rand.Rand, scale float64) {
	for i := range p.w {
		p.w[i] = (2*r.Float64() - 1) * scale
	}
}

// zeroGrad clears the gradient accumulator.
func (p *param) zeroGrad() {
	for i := range p.g {
		p.g[i] = 0
	}
}

// adam holds optimiser state shared across parameters.
type adam struct {
	lr, beta1, beta2, eps float64
	step                  int
}

func newAdam(lr float64) *adam {
	return &adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
}

// update applies one Adam step to every parameter, scaling gradients by
// 1/batchSize, then clears them.
func (a *adam) update(params []*param, batchSize int) {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	inv := 1 / float64(batchSize)
	for _, p := range params {
		for i := range p.w {
			g := p.g[i] * inv
			p.m[i] = a.beta1*p.m[i] + (1-a.beta1)*g
			p.v[i] = a.beta2*p.v[i] + (1-a.beta2)*g*g
			mHat := p.m[i] / bc1
			vHat := p.v[i] / bc2
			p.w[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
		p.zeroGrad()
	}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func tanh(z float64) float64 { return math.Tanh(z) }
