package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ml"
)

// CNNLSTMTrainer trains the paper's CNN_LSTM model: conv1d over the
// time axis → ReLU → LSTM → dense sigmoid head. Samples carry a window
// of SeqLen consecutive observations flattened time-major into X
// (len(X) == SeqLen*Features); the sampling layer produces exactly this
// layout.
type CNNLSTMTrainer struct {
	// SeqLen is the number of timesteps per sample. Required.
	SeqLen int
	// Features is the per-timestep feature count. Required.
	Features int
	// Filters is the number of conv1d output channels; 0 selects 16.
	Filters int
	// Kernel is the conv window length in timesteps; 0 selects 3.
	Kernel int
	// Hidden is the LSTM state size; 0 selects 32.
	Hidden int
	// Epochs is the number of training passes; 0 selects 30.
	Epochs int
	// Batch is the minibatch size; 0 selects 32.
	Batch int
	// LearningRate for Adam; 0 selects 1e-3.
	LearningRate float64
	// Seed drives initialisation and shuffling.
	Seed int64
}

// Name implements ml.Trainer.
func (t *CNNLSTMTrainer) Name() string { return "CNN_LSTM" }

// Train implements ml.Trainer.
func (t *CNNLSTMTrainer) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, true); err != nil {
		return nil, err
	}
	if t.SeqLen <= 0 || t.Features <= 0 {
		return nil, fmt.Errorf("nn: SeqLen and Features must be set (have %d, %d)", t.SeqLen, t.Features)
	}
	if want := t.SeqLen * t.Features; len(samples[0].X) != want {
		return nil, fmt.Errorf("nn: sample width %d, want SeqLen*Features = %d", len(samples[0].X), want)
	}
	cfg := *t
	if cfg.Filters == 0 {
		cfg.Filters = 16
	}
	if cfg.Kernel == 0 {
		cfg.Kernel = 3
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 30
	}
	if cfg.Batch == 0 {
		cfg.Batch = 32
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1e-3
	}

	r := rand.New(rand.NewSource(cfg.Seed + 42))
	m := newModel(&cfg, r)
	m.fitScaler(samples)

	opt := newAdam(cfg.LearningRate)
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(order) {
				end = len(order)
			}
			for _, i := range order[start:end] {
				m.backward(samples[i].X, float64(samples[i].Y))
			}
			opt.update(m.params(), end-start)
		}
	}
	return m, nil
}

// Model is a fitted CNN_LSTM network.
type Model struct {
	cfg CNNLSTMTrainer

	// Conv1d: convW[c][k*F+f], convB[c].
	convW, convB *param
	// LSTM packed gates in i,f,o,g order: lstmW[gate*H+h][C+H], lstmB.
	lstmW, lstmB *param
	// Dense head.
	outW, outB *param

	// Input z-score scaler, fitted on training data.
	mean, std []float64
}

func newModel(cfg *CNNLSTMTrainer, r *rand.Rand) *Model {
	F, C, K, H := cfg.Features, cfg.Filters, cfg.Kernel, cfg.Hidden
	m := &Model{
		cfg:   *cfg,
		convW: newParam(C * K * F),
		convB: newParam(C),
		lstmW: newParam(4 * H * (C + H)),
		lstmB: newParam(4 * H),
		outW:  newParam(H),
		outB:  newParam(1),
	}
	m.convW.initUniform(r, math.Sqrt(2/float64(K*F)))
	m.lstmW.initUniform(r, math.Sqrt(1/float64(C+H)))
	m.outW.initUniform(r, math.Sqrt(1/float64(H)))
	// Forget-gate bias starts at 1 so early training retains memory.
	for h := 0; h < H; h++ {
		m.lstmB.w[H+h] = 1
	}
	return m
}

func (m *Model) params() []*param {
	return []*param{m.convW, m.convB, m.lstmW, m.lstmB, m.outW, m.outB}
}

func (m *Model) fitScaler(samples []ml.Sample) {
	F := m.cfg.Features
	m.mean = make([]float64, F)
	m.std = make([]float64, F)
	n := 0
	for i := range samples {
		for j, v := range samples[i].X {
			m.mean[j%F] += v
		}
		n += m.cfg.SeqLen
	}
	for f := range m.mean {
		m.mean[f] /= float64(n)
	}
	for i := range samples {
		for j, v := range samples[i].X {
			d := v - m.mean[j%F]
			m.std[j%F] += d * d
		}
	}
	for f := range m.std {
		m.std[f] = math.Sqrt(m.std[f] / float64(n))
		if m.std[f] < 1e-12 {
			m.std[f] = 1
		}
	}
}

// scale returns the z-scored input as a T×F matrix.
func (m *Model) scale(x []float64) [][]float64 {
	T, F := m.cfg.SeqLen, m.cfg.Features
	out := make([][]float64, T)
	for t := 0; t < T; t++ {
		row := make([]float64, F)
		for f := 0; f < F; f++ {
			row[f] = (x[t*F+f] - m.mean[f]) / m.std[f]
		}
		out[t] = row
	}
	return out
}

// forwardState captures the activations needed for backprop.
type forwardState struct {
	x     [][]float64 // scaled input T×F
	convZ [][]float64 // pre-activation T×C
	convA [][]float64 // ReLU output T×C
	// LSTM internals, all T×H.
	gi, gf, go_, gg [][]float64
	cell, cellTanh  [][]float64
	hidden          [][]float64
	logit           float64
	prob            float64
}

// forward runs the network on raw input x.
func (m *Model) forward(x []float64) *forwardState {
	T, F, C, K, H := m.cfg.SeqLen, m.cfg.Features, m.cfg.Filters, m.cfg.Kernel, m.cfg.Hidden
	st := &forwardState{x: m.scale(x)}

	// Conv1d, zero ("same") padding.
	st.convZ = make2d(T, C)
	st.convA = make2d(T, C)
	half := K / 2
	for t := 0; t < T; t++ {
		for c := 0; c < C; c++ {
			z := m.convB.w[c]
			for k := 0; k < K; k++ {
				tt := t + k - half
				if tt < 0 || tt >= T {
					continue
				}
				wOff := c*K*F + k*F
				row := st.x[tt]
				for f := 0; f < F; f++ {
					z += m.convW.w[wOff+f] * row[f]
				}
			}
			st.convZ[t][c] = z
			if z > 0 {
				st.convA[t][c] = z
			}
		}
	}

	// LSTM over T steps.
	st.gi, st.gf, st.go_, st.gg = make2d(T, H), make2d(T, H), make2d(T, H), make2d(T, H)
	st.cell, st.cellTanh, st.hidden = make2d(T, H), make2d(T, H), make2d(T, H)
	in := C + H
	prevH := make([]float64, H)
	prevC := make([]float64, H)
	for t := 0; t < T; t++ {
		a := st.convA[t]
		for h := 0; h < H; h++ {
			var zi, zf, zo, zg float64
			rowI := (0*H + h) * in
			rowF := (1*H + h) * in
			rowO := (2*H + h) * in
			rowG := (3*H + h) * in
			for j := 0; j < C; j++ {
				v := a[j]
				zi += m.lstmW.w[rowI+j] * v
				zf += m.lstmW.w[rowF+j] * v
				zo += m.lstmW.w[rowO+j] * v
				zg += m.lstmW.w[rowG+j] * v
			}
			for j := 0; j < H; j++ {
				v := prevH[j]
				zi += m.lstmW.w[rowI+C+j] * v
				zf += m.lstmW.w[rowF+C+j] * v
				zo += m.lstmW.w[rowO+C+j] * v
				zg += m.lstmW.w[rowG+C+j] * v
			}
			gi := sigmoid(zi + m.lstmB.w[0*H+h])
			gf := sigmoid(zf + m.lstmB.w[1*H+h])
			gout := sigmoid(zo + m.lstmB.w[2*H+h])
			gg := tanh(zg + m.lstmB.w[3*H+h])
			cell := gf*prevC[h] + gi*gg
			ct := tanh(cell)
			st.gi[t][h], st.gf[t][h], st.go_[t][h], st.gg[t][h] = gi, gf, gout, gg
			st.cell[t][h], st.cellTanh[t][h] = cell, ct
			st.hidden[t][h] = gout * ct
		}
		copy(prevH, st.hidden[t])
		copy(prevC, st.cell[t])
	}

	// Dense sigmoid head on the final hidden state.
	z := m.outB.w[0]
	last := st.hidden[T-1]
	for h := 0; h < H; h++ {
		z += m.outW.w[h] * last[h]
	}
	st.logit = z
	st.prob = sigmoid(z)
	return st
}

// backward accumulates gradients of the BCE loss for one sample.
func (m *Model) backward(x []float64, y float64) {
	T, F, C, K, H := m.cfg.SeqLen, m.cfg.Features, m.cfg.Filters, m.cfg.Kernel, m.cfg.Hidden
	st := m.forward(x)

	// dL/dlogit for BCE + sigmoid.
	dz := st.prob - y
	m.outB.g[0] += dz
	last := st.hidden[T-1]
	dH := make2d(T, H) // dL/dh_t (accumulated)
	for h := 0; h < H; h++ {
		m.outW.g[h] += dz * last[h]
		dH[T-1][h] += dz * m.outW.w[h]
	}

	// BPTT.
	in := C + H
	dA := make2d(T, C) // dL/d convA
	dCNext := make([]float64, H)
	for t := T - 1; t >= 0; t-- {
		var prevH, prevC []float64
		if t > 0 {
			prevH = st.hidden[t-1]
			prevC = st.cell[t-1]
		} else {
			prevH = make([]float64, H)
			prevC = make([]float64, H)
		}
		for h := 0; h < H; h++ {
			dh := dH[t][h]
			ct := st.cellTanh[t][h]
			gout := st.go_[t][h]
			dc := dCNext[h] + dh*gout*(1-ct*ct)

			gi, gf, gg := st.gi[t][h], st.gf[t][h], st.gg[t][h]
			dzo := dh * ct * gout * (1 - gout)
			dzi := dc * gg * gi * (1 - gi)
			dzf := dc * prevC[h] * gf * (1 - gf)
			dzg := dc * gi * (1 - gg*gg)
			dCNext[h] = dc * gf

			m.lstmB.g[0*H+h] += dzi
			m.lstmB.g[1*H+h] += dzf
			m.lstmB.g[2*H+h] += dzo
			m.lstmB.g[3*H+h] += dzg

			rowI := (0*H + h) * in
			rowF := (1*H + h) * in
			rowO := (2*H + h) * in
			rowG := (3*H + h) * in
			a := st.convA[t]
			for j := 0; j < C; j++ {
				v := a[j]
				m.lstmW.g[rowI+j] += dzi * v
				m.lstmW.g[rowF+j] += dzf * v
				m.lstmW.g[rowO+j] += dzo * v
				m.lstmW.g[rowG+j] += dzg * v
				dA[t][j] += dzi*m.lstmW.w[rowI+j] + dzf*m.lstmW.w[rowF+j] +
					dzo*m.lstmW.w[rowO+j] + dzg*m.lstmW.w[rowG+j]
			}
			for j := 0; j < H; j++ {
				v := prevH[j]
				m.lstmW.g[rowI+C+j] += dzi * v
				m.lstmW.g[rowF+C+j] += dzf * v
				m.lstmW.g[rowO+C+j] += dzo * v
				m.lstmW.g[rowG+C+j] += dzg * v
				if t > 0 {
					dH[t-1][j] += dzi*m.lstmW.w[rowI+C+j] + dzf*m.lstmW.w[rowF+C+j] +
						dzo*m.lstmW.w[rowO+C+j] + dzg*m.lstmW.w[rowG+C+j]
				}
			}
		}
	}

	// Conv backward (ReLU mask; input gradient not needed).
	half := K / 2
	for t := 0; t < T; t++ {
		for c := 0; c < C; c++ {
			if st.convZ[t][c] <= 0 {
				continue
			}
			g := dA[t][c]
			if g == 0 {
				continue
			}
			m.convB.g[c] += g
			for k := 0; k < K; k++ {
				tt := t + k - half
				if tt < 0 || tt >= T {
					continue
				}
				wOff := c*K*F + k*F
				row := st.x[tt]
				for f := 0; f < F; f++ {
					m.convW.g[wOff+f] += g * row[f]
				}
			}
		}
	}
}

// PredictProba implements ml.Classifier.
func (m *Model) PredictProba(x []float64) float64 {
	return m.forward(x).prob
}

func make2d(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols]
	}
	return out
}
