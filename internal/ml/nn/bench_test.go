package nn

import (
	"math/rand"
	"testing"
)

func benchNet(b *testing.B) (*Model, []float64) {
	b.Helper()
	cfg := CNNLSTMTrainer{SeqLen: 5, Features: 45, Filters: 16, Kernel: 3, Hidden: 32}
	r := rand.New(rand.NewSource(1))
	m := newModel(&cfg, r)
	m.mean = make([]float64, cfg.Features)
	m.std = make([]float64, cfg.Features)
	for i := range m.std {
		m.std[i] = 1
	}
	x := make([]float64, cfg.SeqLen*cfg.Features)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return m, x
}

func BenchmarkCNNLSTMForward(b *testing.B) {
	m, x := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.forward(x)
	}
}

func BenchmarkCNNLSTMBackward(b *testing.B) {
	m, x := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.backward(x, 1)
	}
}
