package ml

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func setSamples(n, width int, seed int64) []Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		x := make([]float64, width)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		out[i] = Sample{X: x, Y: r.Intn(2), Day: r.Intn(60), SN: fmt.Sprintf("sn%02d", i%9)}
	}
	return out
}

func TestFromSamplesRoundTrip(t *testing.T) {
	samples := setSamples(57, 4, 1)
	set, err := FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != len(samples) || set.Width() != 4 {
		t.Fatalf("set is %d×%d, want %d×4", set.Len(), set.Width(), len(samples))
	}
	back := set.All().Materialize()
	for i := range samples {
		if back[i].Y != samples[i].Y || back[i].Day != samples[i].Day || back[i].SN != samples[i].SN {
			t.Fatalf("row %d metadata mismatch: %+v vs %+v", i, back[i], samples[i])
		}
		for j := range samples[i].X {
			if back[i].X[j] != samples[i].X[j] {
				t.Fatalf("row %d feature %d: %v, want %v", i, j, back[i].X[j], samples[i].X[j])
			}
		}
	}
}

func TestNewSampleSetValidates(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if _, err := NewSampleSet(0, x, []int8{0, 0}, []int32{1, 2}, []string{"a", "b"}); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := NewSampleSet(2, x, nil, nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSampleSet(2, x[:3], []int8{0, 0}, []int32{1, 2}, []string{"a", "b"}); err == nil {
		t.Fatal("short arena accepted")
	}
	if _, err := NewSampleSet(2, x, []int8{0, 2}, []int32{1, 2}, []string{"a", "b"}); err == nil {
		t.Fatal("label 2 accepted")
	}
	if _, err := NewSampleSet(2, x, []int8{0, 0}, []int32{1}, []string{"a", "b"}); err == nil {
		t.Fatal("short day column accepted")
	}
}

// TestRowIsCapped asserts appending to one row's vector cannot clobber
// the next row in the shared arena.
func TestRowIsCapped(t *testing.T) {
	set, err := FromSamples(setSamples(5, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	r0 := set.Row(0)
	if cap(r0) != set.Width() {
		t.Fatalf("row cap %d, want %d", cap(r0), set.Width())
	}
	next := set.Row(1)[0]
	_ = append(r0, 999)
	if set.Row(1)[0] != next {
		t.Fatal("append to row 0 clobbered row 1")
	}
}

func TestViewRowsAndCols(t *testing.T) {
	samples := setSamples(20, 4, 3)
	set, err := FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	v := set.All().WithRows([]int32{7, 2, 11})
	if v.Len() != 3 || v.Width() != 4 {
		t.Fatalf("view is %d×%d, want 3×4", v.Len(), v.Width())
	}
	for i, r := range []int{7, 2, 11} {
		if v.Y(i) != samples[r].Y || v.Day(i) != samples[r].Day || v.SN(i) != samples[r].SN {
			t.Fatalf("position %d does not select arena row %d", i, r)
		}
	}

	// Column sub-views keep full-width Row access (trees index features
	// globally) but materialise masked copies.
	cv := v.WithCols([]int{3, 1})
	if cv.Width() != 2 {
		t.Fatalf("column view width %d, want 2", cv.Width())
	}
	if len(cv.Row(0)) != 4 {
		t.Fatalf("column view Row is masked; want full-width arena row")
	}
	masked := cv.Materialize()
	for i, r := range []int{7, 2, 11} {
		want := []float64{samples[r].X[3], samples[r].X[1]}
		if masked[i].X[0] != want[0] || masked[i].X[1] != want[1] {
			t.Fatalf("masked row %d = %v, want %v", i, masked[i].X, want)
		}
	}
}

// TestXsAliasesArena asserts batch-scoring headers point into the
// arena rather than copying feature data.
func TestXsAliasesArena(t *testing.T) {
	set, err := FromSamples(setSamples(6, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	xs := set.All().WithRows([]int32{4, 1}).Xs()
	if &xs[0][0] != &set.Arena()[4*3] || &xs[1][0] != &set.Arena()[1*3] {
		t.Fatal("Xs copied feature data instead of aliasing the arena")
	}
}

func TestMaterializeHeaderOnly(t *testing.T) {
	set, err := FromSamples(setSamples(6, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	out := set.All().Materialize()
	if &out[2].X[0] != &set.Arena()[2*3] {
		t.Fatal("full-width Materialize copied feature data")
	}
}

func TestLabelsFloatSharedAndCorrect(t *testing.T) {
	set, err := FromSamples(setSamples(40, 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	yf := set.LabelsFloat()
	for i := range yf {
		if yf[i] != float64(set.Y(i)) {
			t.Fatalf("label %d: %v != %d", i, yf[i], set.Y(i))
		}
	}
	if &yf[0] != &set.LabelsFloat()[0] {
		t.Fatal("LabelsFloat rebuilt instead of caching")
	}
}

func TestCachedBuildsOncePerKey(t *testing.T) {
	set, err := FromSamples(setSamples(10, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int32
	var wg sync.WaitGroup
	results := make([]any, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := set.Cached(42, func() (any, error) {
				builds.Add(1)
				return &struct{ int }{42}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for g := 1; g < 16; g++ {
		if results[g] != results[0] {
			t.Fatal("concurrent callers saw different cached values")
		}
	}
	// A different key builds separately.
	if _, err := set.Cached(43, func() (any, error) { builds.Add(1); return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("second key reused first key's artefact")
	}
}

func TestCachedPropagatesErrorWithoutCaching(t *testing.T) {
	set, err := FromSamples(setSamples(10, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Cached(1, func() (any, error) { return nil, fmt.Errorf("boom") }); err == nil {
		t.Fatal("build error swallowed")
	}
	v, err := set.Cached(1, func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("failed build was cached: %v %v", v, err)
	}
}

func TestValidateView(t *testing.T) {
	if err := ValidateView(View{}, false); err == nil {
		t.Fatal("zero view accepted")
	}
	onlyNeg := []Sample{{X: []float64{1}, Y: 0}, {X: []float64{2}, Y: 0}}
	set, err := FromSamples(onlyNeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateView(set.All(), false); err != nil {
		t.Fatalf("single-class view rejected without requireBothClasses: %v", err)
	}
	if err := ValidateView(set.All(), true); err == nil {
		t.Fatal("single-class view accepted with requireBothClasses")
	}
	if err := ValidateView(set.All().WithRows([]int32{}), false); err == nil {
		t.Fatal("empty row selection accepted")
	}
}

func TestTrainOnFallsBackForNonViewTrainers(t *testing.T) {
	samples := setSamples(60, 3, 9)
	set, err := FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	tr := &recordingTrainer{}
	if _, err := TrainOn(tr, set.All().WithRows([]int32{3, 1, 8})); err != nil {
		t.Fatal(err)
	}
	if tr.got != 3 {
		t.Fatalf("fallback trained on %d samples, want 3", tr.got)
	}
}

type recordingTrainer struct{ got int }

func (r *recordingTrainer) Train(s []Sample) (Classifier, error) {
	r.got = len(s)
	return constClassifier(0.5), nil
}

func (r *recordingTrainer) Name() string { return "recording" }
