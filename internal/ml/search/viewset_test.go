package search

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/forest"
)

// discreteTrend draws features from small integer alphabets (the
// exactness regime: set-wide binning + row masks ≡ per-subset binning)
// with the signal concentrated in feature 0.
func discreteTrend(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]ml.Sample, n)
	for i := range out {
		a := float64(r.Intn(16))
		x := []float64{a, float64(r.Intn(6)), float64(r.Intn(4)), float64(r.Intn(3))}
		y := 0
		if a > 8 {
			y = 1
		}
		if r.Float64() < 0.1 {
			y = 1 - y
		}
		out[i] = ml.Sample{X: x, Y: y, Day: i, SN: "sn"}
	}
	return out
}

func forestFactory(seed int64) Factory {
	return func(params map[string]float64) ml.Trainer {
		return &forest.Trainer{
			Trees:    12,
			MaxDepth: int(params["depth"]),
			Seed:     seed,
		}
	}
}

// TestGridSearchSetMatchesSlice requires the bin-once view sweep to
// reproduce the slice sweep's candidates and scores exactly, at any
// worker count.
func TestGridSearchSetMatchesSlice(t *testing.T) {
	samples := discreteTrend(420, 3)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{"depth": {2, 4, 6}}
	want, wantBest, err := GridSearchWorkers(forestFactory(11), grid, samples, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 0, 3} {
		got, gotBest, err := GridSearchSet(forestFactory(11), grid, set.All(), 3, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: candidates = %v, want %v", w, got, want)
		}
		if !reflect.DeepEqual(gotBest, wantBest) {
			t.Fatalf("workers=%d: best = %v, want %v", w, gotBest, wantBest)
		}
	}
}

// TestGridSearchSetFallbackTrainer covers the non-ViewTrainer path:
// candidates materialise their folds (header-only) and must still
// match the slice sweep — here even on continuous features, since the
// fallback trains on exactly the fold's rows.
func TestGridSearchSetFallbackTrainer(t *testing.T) {
	samples := wideTrendData(300, 5, 9)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{"depth": {1, 3, 5}}
	want, _, err := GridSearchWorkers(treeFactory, grid, samples, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := GridSearchSet(treeFactory, grid, set.All(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
}

// TestGridSearchSetEmptyGrid mirrors the slice path's error contract:
// a parameter with no candidate values enumerates to nothing.
func TestGridSearchSetEmptyGrid(t *testing.T) {
	set, err := ml.FromSamples(discreteTrend(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := GridSearchSet(forestFactory(1), Grid{"depth": {}}, set.All(), 2, 1); err == nil {
		t.Fatal("valueless grid accepted")
	}
}

// TestForwardSelectSetMatchesSlice requires the column-sub-view SFS to
// walk the same greedy trajectory as the masked-copy implementation.
func TestForwardSelectSetMatchesSlice(t *testing.T) {
	train := discreteTrend(400, 5)
	val := discreteTrend(200, 6)
	names := []string{"a", "b", "c", "d"}
	trainer := &forest.Trainer{Trees: 12, MaxDepth: 5, Seed: 3, Parallelism: 1}

	want, err := ForwardSelectWorkers(trainer, train, val, names, 0, 1e-4, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, err := ml.FromSamples(train)
	if err != nil {
		t.Fatal(err)
	}
	valSet, err := ml.FromSamples(val)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 0, 4} {
		got, err := ForwardSelectSet(trainer, trainSet.All(), valSet.All(), names, 0, 1e-4, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: trajectory = %+v, want %+v", w, got, want)
		}
	}
}

// TestBackwardEliminateSetMatchesSlice requires the view SBS to drop
// the same features in the same order as the slice implementation.
func TestBackwardEliminateSetMatchesSlice(t *testing.T) {
	train := discreteTrend(400, 7)
	val := discreteTrend(200, 8)
	names := []string{"a", "b", "c", "d"}
	trainer := &forest.Trainer{Trees: 12, MaxDepth: 5, Seed: 3, Parallelism: 1}

	want, err := BackwardEliminateWorkers(trainer, train, val, names, 1, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, err := ml.FromSamples(train)
	if err != nil {
		t.Fatal(err)
	}
	valSet, err := ml.FromSamples(val)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3} {
		got, err := BackwardEliminateSet(trainer, trainSet.All(), valSet.All(), names, 1, 0.02, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result = %+v, want %+v", w, got, want)
		}
	}
}

// TestForwardSelectSetValidates mirrors the slice path's input checks.
func TestForwardSelectSetValidates(t *testing.T) {
	set, err := ml.FromSamples(discreteTrend(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	trainer := &forest.Trainer{Trees: 4, Seed: 1}
	if _, err := ForwardSelectSet(trainer, set.All(), set.All(), []string{"just-one"}, 0, 0, 1); err == nil {
		t.Fatal("name/width mismatch accepted")
	}
	if _, err := ForwardSelectSet(trainer, set.All().WithRows([]int32{}), set.All(), []string{"a", "b", "c", "d"}, 0, 0, 1); err == nil {
		t.Fatal("empty train view accepted")
	}
}
