package search

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/metrics"
)

// BackwardEliminate is the mirror image of ForwardSelect: starting from
// the full feature set, it greedily removes the feature whose removal
// *least* hurts (or most helps) validation AUC, stopping when any
// further removal would cost more than maxLoss of AUC or when
// minFeatures is reached. Where SFS answers "which few features carry
// the signal", SBS answers "which features can a deployment drop" —
// useful when client-side collection of a channel (say, BSOD parsing)
// has a real cost.
func BackwardEliminate(trainer ml.Trainer, train, val []ml.Sample, names []string, minFeatures int, maxLoss float64) (*SFSResult, error) {
	if err := ml.ValidateSamples(train, true); err != nil {
		return nil, fmt.Errorf("search: train: %w", err)
	}
	if err := ml.ValidateSamples(val, true); err != nil {
		return nil, fmt.Errorf("search: val: %w", err)
	}
	width := len(train[0].X)
	if len(names) != width {
		return nil, fmt.Errorf("search: %d names for width %d", len(names), width)
	}
	if minFeatures < 1 {
		minFeatures = 1
	}
	if minFeatures > width {
		return nil, fmt.Errorf("search: minFeatures %d exceeds width %d", minFeatures, width)
	}

	current := make([]int, width)
	for i := range current {
		current[i] = i
	}
	evalSubset := func(subset []int) (metrics.Confusion, float64, error) {
		clf, err := trainer.Train(features.Mask(train, subset))
		if err != nil {
			return metrics.Confusion{}, 0, err
		}
		masked := features.Mask(val, subset)
		return metrics.Evaluate(clf, masked), metrics.AUCScore(clf, masked), nil
	}

	_, baseAUC, err := evalSubset(current)
	if err != nil {
		return nil, fmt.Errorf("search: full set: %w", err)
	}

	res := &SFSResult{}
	for len(current) > minFeatures {
		bestAUC := -1.0
		bestDrop := -1
		var bestCM metrics.Confusion
		for di := range current {
			subset := make([]int, 0, len(current)-1)
			subset = append(subset, current[:di]...)
			subset = append(subset, current[di+1:]...)
			cm, auc, err := evalSubset(subset)
			if err != nil {
				return nil, fmt.Errorf("search: dropping %s: %w", names[current[di]], err)
			}
			if auc > bestAUC {
				bestAUC = auc
				bestDrop = di
				bestCM = cm
			}
		}
		if bestDrop == -1 || bestAUC < baseAUC-maxLoss {
			break
		}
		dropped := current[bestDrop]
		current = append(current[:bestDrop], current[bestDrop+1:]...)
		res.Steps = append(res.Steps, SFSStep{
			FeatureIndex: dropped,
			FeatureName:  names[dropped],
			TPR:          bestCM.TPR(),
			FPR:          bestCM.FPR(),
			AUC:          bestAUC,
		})
		if bestAUC > baseAUC {
			baseAUC = bestAUC
		}
	}
	res.Selected = append([]int(nil), current...)
	for _, i := range current {
		res.Names = append(res.Names, names[i])
	}
	return res, nil
}
