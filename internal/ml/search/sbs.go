package search

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/parallel"
)

// BackwardEliminate is the mirror image of ForwardSelect: starting from
// the full feature set, it greedily removes the feature whose removal
// *least* hurts (or most helps) validation AUC, stopping when any
// further removal would cost more than maxLoss of AUC or when
// minFeatures is reached. Where SFS answers "which few features carry
// the signal", SBS answers "which features can a deployment drop" —
// useful when client-side collection of a channel (say, BSOD parsing)
// has a real cost. Drop candidates are evaluated on GOMAXPROCS
// goroutines; use BackwardEliminateWorkers to pin the worker count.
func BackwardEliminate(trainer ml.Trainer, train, val []ml.Sample, names []string, minFeatures int, maxLoss float64) (*SFSResult, error) {
	return BackwardEliminateWorkers(trainer, train, val, names, minFeatures, maxLoss, 0)
}

// BackwardEliminateSet is BackwardEliminateWorkers on zero-copy
// SampleSet views: every drop candidate trains on a column sub-view of
// the shared binned arena (see ForwardSelectSet). The elimination
// order is identical to the slice implementation at any worker count.
func BackwardEliminateSet(trainer ml.Trainer, train, val ml.View, names []string, minFeatures int, maxLoss float64, workers int) (*SFSResult, error) {
	if err := ml.ValidateView(train, true); err != nil {
		return nil, fmt.Errorf("search: train: %w", err)
	}
	if err := ml.ValidateView(val, true); err != nil {
		return nil, fmt.Errorf("search: val: %w", err)
	}
	width := train.Width()
	if len(names) != width {
		return nil, fmt.Errorf("search: %d names for width %d", len(names), width)
	}
	if minFeatures < 1 {
		minFeatures = 1
	}
	if minFeatures > width {
		return nil, fmt.Errorf("search: minFeatures %d exceeds width %d", minFeatures, width)
	}

	current := make([]int, width)
	for i := range current {
		current[i] = i
	}

	full, err := scoreSubsetView(trainer, train, val, current)
	if err != nil {
		return nil, fmt.Errorf("search: full set: %w", err)
	}
	baseAUC := full.auc

	res := &SFSResult{}
	for len(current) > minFeatures {
		scored, err := parallel.Map(len(current), workers, func(di int) (subsetScore, error) {
			subset := make([]int, 0, len(current)-1)
			subset = append(subset, current[:di]...)
			subset = append(subset, current[di+1:]...)
			s, err := scoreSubsetView(trainer, train, val, subset)
			if err != nil {
				return subsetScore{}, fmt.Errorf("search: dropping %s: %w", names[current[di]], err)
			}
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		bestDrop := 0
		for i := 1; i < len(scored); i++ {
			if scored[i].auc > scored[bestDrop].auc {
				bestDrop = i
			}
		}
		if scored[bestDrop].auc < baseAUC-maxLoss {
			break
		}
		bestAUC := scored[bestDrop].auc
		bestCM := scored[bestDrop].cm
		dropped := current[bestDrop]
		current = append(current[:bestDrop], current[bestDrop+1:]...)
		res.Steps = append(res.Steps, SFSStep{
			FeatureIndex: dropped,
			FeatureName:  names[dropped],
			TPR:          bestCM.TPR(),
			FPR:          bestCM.FPR(),
			AUC:          bestAUC,
		})
		if bestAUC > baseAUC {
			baseAUC = bestAUC
		}
	}
	res.Selected = append([]int(nil), current...)
	for _, i := range current {
		res.Names = append(res.Names, names[i])
	}
	return res, nil
}

// BackwardEliminateWorkers is BackwardEliminate with an explicit worker
// count (0 = GOMAXPROCS, 1 = serial). Each step's drop candidates train
// and score concurrently; ties break toward the earliest candidate, so
// the elimination order is identical at any worker count.
func BackwardEliminateWorkers(trainer ml.Trainer, train, val []ml.Sample, names []string, minFeatures int, maxLoss float64, workers int) (*SFSResult, error) {
	if err := ml.ValidateSamples(train, true); err != nil {
		return nil, fmt.Errorf("search: train: %w", err)
	}
	if err := ml.ValidateSamples(val, true); err != nil {
		return nil, fmt.Errorf("search: val: %w", err)
	}
	width := len(train[0].X)
	if len(names) != width {
		return nil, fmt.Errorf("search: %d names for width %d", len(names), width)
	}
	if minFeatures < 1 {
		minFeatures = 1
	}
	if minFeatures > width {
		return nil, fmt.Errorf("search: minFeatures %d exceeds width %d", minFeatures, width)
	}

	current := make([]int, width)
	for i := range current {
		current[i] = i
	}

	full, err := scoreSubset(trainer, train, val, current)
	if err != nil {
		return nil, fmt.Errorf("search: full set: %w", err)
	}
	baseAUC := full.auc

	res := &SFSResult{}
	for len(current) > minFeatures {
		scored, err := parallel.Map(len(current), workers, func(di int) (subsetScore, error) {
			subset := make([]int, 0, len(current)-1)
			subset = append(subset, current[:di]...)
			subset = append(subset, current[di+1:]...)
			s, err := scoreSubset(trainer, train, val, subset)
			if err != nil {
				return subsetScore{}, fmt.Errorf("search: dropping %s: %w", names[current[di]], err)
			}
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		bestDrop := 0
		for i := 1; i < len(scored); i++ {
			if scored[i].auc > scored[bestDrop].auc {
				bestDrop = i
			}
		}
		if scored[bestDrop].auc < baseAUC-maxLoss {
			break
		}
		bestAUC := scored[bestDrop].auc
		bestCM := scored[bestDrop].cm
		dropped := current[bestDrop]
		current = append(current[:bestDrop], current[bestDrop+1:]...)
		res.Steps = append(res.Steps, SFSStep{
			FeatureIndex: dropped,
			FeatureName:  names[dropped],
			TPR:          bestCM.TPR(),
			FPR:          bestCM.FPR(),
			AUC:          bestAUC,
		})
		if bestAUC > baseAUC {
			baseAUC = bestAUC
		}
	}
	res.Selected = append([]int(nil), current...)
	for _, i := range current {
		res.Names = append(res.Names, names[i])
	}
	return res, nil
}
