// Package search implements hyper-parameter grid search driven by
// time-series cross-validation, and the sequential forward feature
// selection (Whitney, 1971) the paper uses to pick the optimal feature
// subset per vendor.
package search

import (
	"fmt"
	"sort"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/parallel"
	"repro/internal/sampling"
)

// Factory builds a trainer from one grid point. Keys absent from the
// grid never appear in params.
type Factory func(params map[string]float64) ml.Trainer

// Grid maps parameter names to candidate values.
type Grid map[string][]float64

// Candidate is one evaluated grid point.
type Candidate struct {
	Params map[string]float64
	// Score is the mean validation AUC across time-series CV folds.
	Score float64
}

// GridSearch evaluates every combination in grid with k-fold
// time-series cross-validation and returns all candidates (best first)
// plus the winner. It follows the paper's Section III-C(4): grid search
// combined with time-series-based cross-validation. The (combination ×
// fold) pairs fan out across GOMAXPROCS goroutines; use
// GridSearchWorkers to pin the worker count.
func GridSearch(factory Factory, grid Grid, samples []ml.Sample, k int) ([]Candidate, Candidate, error) {
	return GridSearchWorkers(factory, grid, samples, k, 0)
}

// GridSearchWorkers is GridSearch with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Each (combination, fold) pair trains
// and scores independently — the factory is invoked once per pair so
// trainers are never shared across goroutines — and fold AUCs are
// averaged in fold order, so candidates and scores are identical at
// any worker count.
func GridSearchWorkers(factory Factory, grid Grid, samples []ml.Sample, k, workers int) ([]Candidate, Candidate, error) {
	combos := enumerate(grid)
	if len(combos) == 0 {
		return nil, Candidate{}, fmt.Errorf("search: empty grid")
	}
	folds, err := sampling.TimeSeriesCV(samples, k)
	if err != nil {
		return nil, Candidate{}, err
	}
	usable := make([]int, 0, len(folds))
	for fi := range folds {
		if bothClasses(folds[fi].Train) && bothClasses(folds[fi].Val) {
			usable = append(usable, fi)
		}
	}

	// Flatten to combo-major (combination, fold) pairs so a slow fold
	// of one combination overlaps with other work.
	type pair struct{ combo, fold int }
	pairs := make([]pair, 0, len(combos)*len(usable))
	for ci := range combos {
		for _, fi := range usable {
			pairs = append(pairs, pair{ci, fi})
		}
	}
	aucs, err := parallel.Map(len(pairs), workers, func(i int) (float64, error) {
		p := pairs[i]
		trainer := factory(combos[p.combo])
		clf, err := trainer.Train(folds[p.fold].Train)
		if err != nil {
			return 0, fmt.Errorf("search: %s on %v: %w", trainer.Name(), combos[p.combo], err)
		}
		return metrics.AUCScore(clf, folds[p.fold].Val), nil
	})
	if err != nil {
		return nil, Candidate{}, err
	}

	candidates := make([]Candidate, len(combos))
	for ci, params := range combos {
		var sum float64
		// Pairs are combo-major, so this slice walks the combo's folds
		// in fold order — the same summation order as a serial run.
		for pi := ci * len(usable); pi < (ci+1)*len(usable); pi++ {
			sum += aucs[pi]
		}
		score := 0.0
		if len(usable) > 0 {
			score = sum / float64(len(usable))
		}
		candidates[ci] = Candidate{Params: params, Score: score}
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Score > candidates[j].Score })
	return candidates, candidates[0], nil
}

// GridSearchSet is GridSearchWorkers on a zero-copy SampleSet view:
// CV folds are index views of the shared arena (no sample copies), a
// ViewTrainer candidate trains on row-masked views of the set-wide
// binned matrix (bin-once — quantile binning happens once for the
// whole sweep instead of once per combination × fold), and validation
// rows are scored straight out of the arena. Candidate enumeration,
// fold arithmetic, and AUC aggregation are identical to the slice
// implementation, so both return the same ranking at any worker count.
func GridSearchSet(factory Factory, grid Grid, v ml.View, k, workers int) ([]Candidate, Candidate, error) {
	combos := enumerate(grid)
	if len(combos) == 0 {
		return nil, Candidate{}, fmt.Errorf("search: empty grid")
	}
	folds, err := sampling.TimeSeriesCVView(v, k)
	if err != nil {
		return nil, Candidate{}, err
	}
	usable := make([]int, 0, len(folds))
	valXs := make([][][]float64, len(folds))
	valYs := make([][]int, len(folds))
	for fi := range folds {
		if bothClassesView(folds[fi].Train) && bothClassesView(folds[fi].Val) {
			usable = append(usable, fi)
			// Materialise each usable fold's validation rows once —
			// header-only — and share them across every combination.
			val := folds[fi].Val
			valXs[fi] = val.Xs()
			ys := make([]int, val.Len())
			for i := range ys {
				ys[i] = val.Y(i)
			}
			valYs[fi] = ys
		}
	}

	type pair struct{ combo, fold int }
	pairs := make([]pair, 0, len(combos)*len(usable))
	for ci := range combos {
		for _, fi := range usable {
			pairs = append(pairs, pair{ci, fi})
		}
	}
	aucs, err := parallel.Map(len(pairs), workers, func(i int) (float64, error) {
		p := pairs[i]
		trainer := factory(combos[p.combo])
		clf, err := ml.TrainOn(trainer, folds[p.fold].Train)
		if err != nil {
			return 0, fmt.Errorf("search: %s on %v: %w", trainer.Name(), combos[p.combo], err)
		}
		scores := make([]float64, len(valXs[p.fold]))
		ml.ScoreBatch(clf, valXs[p.fold], scores, 1)
		return metrics.AUC(metrics.ROCFromScores(scores, valYs[p.fold])), nil
	})
	if err != nil {
		return nil, Candidate{}, err
	}

	candidates := make([]Candidate, len(combos))
	for ci, params := range combos {
		var sum float64
		for pi := ci * len(usable); pi < (ci+1)*len(usable); pi++ {
			sum += aucs[pi]
		}
		score := 0.0
		if len(usable) > 0 {
			score = sum / float64(len(usable))
		}
		candidates[ci] = Candidate{Params: params, Score: score}
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Score > candidates[j].Score })
	return candidates, candidates[0], nil
}

// enumerate expands the grid into the Cartesian product of its values,
// with deterministic ordering (keys sorted).
func enumerate(grid Grid) []map[string]float64 {
	keys := make([]string, 0, len(grid))
	for k := range grid {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	combos := []map[string]float64{{}}
	for _, key := range keys {
		var next []map[string]float64
		for _, base := range combos {
			for _, v := range grid[key] {
				m := make(map[string]float64, len(base)+1)
				for kk, vv := range base {
					m[kk] = vv
				}
				m[key] = v
				next = append(next, m)
			}
		}
		combos = next
	}
	return combos
}

func bothClasses(samples []ml.Sample) bool {
	neg, pos := ml.ClassCounts(samples)
	return neg > 0 && pos > 0
}

func bothClassesView(v ml.View) bool {
	neg, pos := v.ClassCounts()
	return neg > 0 && pos > 0
}
