// Package search implements hyper-parameter grid search driven by
// time-series cross-validation, and the sequential forward feature
// selection (Whitney, 1971) the paper uses to pick the optimal feature
// subset per vendor.
package search

import (
	"fmt"
	"sort"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/sampling"
)

// Factory builds a trainer from one grid point. Keys absent from the
// grid never appear in params.
type Factory func(params map[string]float64) ml.Trainer

// Grid maps parameter names to candidate values.
type Grid map[string][]float64

// Candidate is one evaluated grid point.
type Candidate struct {
	Params map[string]float64
	// Score is the mean validation AUC across time-series CV folds.
	Score float64
}

// GridSearch evaluates every combination in grid with k-fold
// time-series cross-validation and returns all candidates (best first)
// plus the winner. It follows the paper's Section III-C(4): grid search
// combined with time-series-based cross-validation.
func GridSearch(factory Factory, grid Grid, samples []ml.Sample, k int) ([]Candidate, Candidate, error) {
	combos := enumerate(grid)
	folds, err := sampling.TimeSeriesCV(samples, k)
	if err != nil {
		return nil, Candidate{}, err
	}
	candidates := make([]Candidate, 0, len(combos))
	for _, params := range combos {
		trainer := factory(params)
		var sum float64
		n := 0
		for _, fold := range folds {
			if !bothClasses(fold.Train) || !bothClasses(fold.Val) {
				continue
			}
			clf, err := trainer.Train(fold.Train)
			if err != nil {
				return nil, Candidate{}, fmt.Errorf("search: %s on %v: %w", trainer.Name(), params, err)
			}
			sum += metrics.AUCScore(clf, fold.Val)
			n++
		}
		score := 0.0
		if n > 0 {
			score = sum / float64(n)
		}
		candidates = append(candidates, Candidate{Params: params, Score: score})
	}
	if len(candidates) == 0 {
		return nil, Candidate{}, fmt.Errorf("search: empty grid")
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Score > candidates[j].Score })
	return candidates, candidates[0], nil
}

// enumerate expands the grid into the Cartesian product of its values,
// with deterministic ordering (keys sorted).
func enumerate(grid Grid) []map[string]float64 {
	keys := make([]string, 0, len(grid))
	for k := range grid {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	combos := []map[string]float64{{}}
	for _, key := range keys {
		var next []map[string]float64
		for _, base := range combos {
			for _, v := range grid[key] {
				m := make(map[string]float64, len(base)+1)
				for kk, vv := range base {
					m[kk] = vv
				}
				m[key] = v
				next = append(next, m)
			}
		}
		combos = next
	}
	return combos
}

func bothClasses(samples []ml.Sample) bool {
	neg, pos := ml.ClassCounts(samples)
	return neg > 0 && pos > 0
}
