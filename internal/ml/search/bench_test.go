package search

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

// BenchmarkGridSearchWorkers compares the serial (combo × fold) sweep
// against the full fan-out.
func BenchmarkGridSearchWorkers(b *testing.B) {
	samples := trendData(600, 31)
	factory := func(params map[string]float64) ml.Trainer {
		return &tree.Trainer{Config: tree.Config{
			MaxDepth:       int(params["depth"]),
			MinSamplesLeaf: int(params["leaf"]),
		}}
	}
	grid := Grid{"depth": {2, 4, 6}, "leaf": {5, 10}}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := GridSearchWorkers(factory, grid, samples, 3, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
