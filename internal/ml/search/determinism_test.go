package search

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

// wideTrendData is trendData with a configurable width: feature 0
// carries the signal, the rest are noise.
func wideTrendData(n, width int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]ml.Sample, 0, n)
	for i := 0; i < n; i++ {
		x := make([]float64, width)
		v := r.NormFloat64()
		x[0] = v + 0.2*r.NormFloat64()
		for j := 1; j < width; j++ {
			x[j] = r.NormFloat64()
		}
		y := 0
		if v > 0 {
			y = 1
		}
		out = append(out, ml.Sample{X: x, Y: y, Day: i, SN: "sn"})
	}
	return out
}

func treeFactory(params map[string]float64) ml.Trainer {
	return &tree.Trainer{Config: tree.Config{
		MaxDepth:       int(params["depth"]),
		MinSamplesLeaf: 10,
	}}
}

// TestGridSearchWorkersIdentical asserts the (combo × fold) fan-out
// reproduces the serial sweep exactly, including candidate order and
// floating-point scores.
func TestGridSearchWorkersIdentical(t *testing.T) {
	samples := trendData(400, 21)
	grid := Grid{"depth": {1, 2, 4, 6}}
	want, wantBest, err := GridSearchWorkers(treeFactory, grid, samples, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8} {
		got, gotBest, err := GridSearchWorkers(treeFactory, grid, samples, 3, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: candidates = %v, want %v", w, got, want)
		}
		if !reflect.DeepEqual(gotBest, wantBest) {
			t.Fatalf("workers=%d: best = %v, want %v", w, gotBest, wantBest)
		}
	}
}

// failingTrainer fails training whenever its marker is set, standing in
// for a hyper-parameter combination that cannot fit.
type failingTrainer struct {
	fail  bool
	inner ml.Trainer
}

func (f *failingTrainer) Train(s []ml.Sample) (ml.Classifier, error) {
	if f.fail {
		return nil, errors.New("unfittable combination")
	}
	return f.inner.Train(s)
}

func (f *failingTrainer) Name() string { return "failing" }

// TestGridSearchWorkersErrorIdentical asserts a mid-fan-out training
// failure surfaces the same error at every worker count: the one the
// serial left-to-right sweep would hit first.
func TestGridSearchWorkersErrorIdentical(t *testing.T) {
	samples := trendData(200, 22)
	factory := func(params map[string]float64) ml.Trainer {
		return &failingTrainer{fail: params["depth"] >= 4, inner: treeFactory(params)}
	}
	grid := Grid{"depth": {1, 2, 4, 6}}
	_, _, err := GridSearchWorkers(factory, grid, samples, 3, 1)
	if err == nil {
		t.Fatal("failing combination accepted")
	}
	want := err.Error()
	for _, w := range []int{0, 2, 3, 8} {
		_, _, err := GridSearchWorkers(factory, grid, samples, 3, w)
		if err == nil {
			t.Fatalf("workers=%d: failing combination accepted", w)
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", w, err, want)
		}
	}
}

// TestForwardSelectWorkersIdentical asserts the candidate fan-out of
// SFS reproduces the serial trajectory exactly.
func TestForwardSelectWorkersIdentical(t *testing.T) {
	samples := wideTrendData(600, 5, 23)
	train, val := samples[:400], samples[400:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	names := []string{"signal", "n1", "n2", "n3", "n4"}
	want, err := ForwardSelectWorkers(trainer, train, val, names, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8} {
		got, err := ForwardSelectWorkers(trainer, train, val, names, 3, 0, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: selection differs: %v vs %v", w, got.Names, want.Names)
		}
	}
}

// TestForwardSelectWorkersErrorIdentical asserts a candidate failing
// mid-step yields the serial error at every worker count.
func TestForwardSelectWorkersErrorIdentical(t *testing.T) {
	samples := wideTrendData(200, 3, 24)
	train, val := samples[:150], samples[150:]
	trainer := &failingTrainer{fail: true}
	names := []string{"a", "b", "c"}
	_, err := ForwardSelectWorkers(trainer, train, val, names, 0, 0, 1)
	if err == nil {
		t.Fatal("failing trainer accepted")
	}
	want := err.Error()
	for _, w := range []int{0, 2, 8} {
		_, err := ForwardSelectWorkers(trainer, train, val, names, 0, 0, w)
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: error %v, want %q", w, err, want)
		}
	}
}

// TestBackwardEliminateWorkersIdentical asserts the drop-candidate
// fan-out of SBS reproduces the serial trajectory exactly.
func TestBackwardEliminateWorkersIdentical(t *testing.T) {
	samples := wideTrendData(600, 5, 25)
	train, val := samples[:400], samples[400:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	names := []string{"signal", "n1", "n2", "n3", "n4"}
	want, err := BackwardEliminateWorkers(trainer, train, val, names, 1, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8} {
		got, err := BackwardEliminateWorkers(trainer, train, val, names, 1, 0.05, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: elimination differs: %v vs %v", w, got.Names, want.Names)
		}
	}
}
