package search

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

// trendData labels samples by feature 0 with noise; feature 1 is pure
// noise. Days are assigned chronologically so TS-CV applies.
func trendData(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		y := 0
		v := r.NormFloat64()
		if v > 0 {
			y = 1
		}
		out = append(out, ml.Sample{
			X:   []float64{v + 0.2*r.NormFloat64(), r.NormFloat64()},
			Y:   y,
			Day: i,
			SN:  "sn",
		})
	}
	return out
}

func TestEnumerate(t *testing.T) {
	grid := Grid{"a": {1, 2}, "b": {10, 20, 30}}
	combos := enumerate(grid)
	if len(combos) != 6 {
		t.Fatalf("enumerated %d combos, want 6", len(combos))
	}
	seen := make(map[[2]float64]bool)
	for _, c := range combos {
		if len(c) != 2 {
			t.Fatalf("combo %v missing keys", c)
		}
		seen[[2]float64{c["a"], c["b"]}] = true
	}
	if len(seen) != 6 {
		t.Fatal("duplicate combos")
	}
}

func TestEnumerateEmpty(t *testing.T) {
	combos := enumerate(Grid{})
	if len(combos) != 1 || len(combos[0]) != 0 {
		t.Fatalf("empty grid → %v", combos)
	}
}

func TestGridSearchPicksSensibleDepth(t *testing.T) {
	samples := trendData(400, 1)
	factory := func(params map[string]float64) ml.Trainer {
		return &tree.Trainer{Config: tree.Config{
			MaxDepth:       int(params["depth"]),
			MinSamplesLeaf: 10,
		}}
	}
	grid := Grid{"depth": {1, 4}}
	candidates, best, err := GridSearch(factory, grid, samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(candidates) != 2 {
		t.Fatalf("candidates = %d", len(candidates))
	}
	if candidates[0].Score < candidates[1].Score {
		t.Fatal("candidates not sorted best-first")
	}
	if best.Score <= 0.5 {
		t.Fatalf("best score %g is no better than chance", best.Score)
	}
}

func TestGridSearchErrorsOnTinyData(t *testing.T) {
	factory := func(map[string]float64) ml.Trainer { return &tree.Trainer{} }
	if _, _, err := GridSearch(factory, Grid{"x": {1}}, trendData(3, 2), 5); err == nil {
		t.Fatal("too-small sample set accepted")
	}
}

func TestForwardSelectFindsInformativeFeature(t *testing.T) {
	samples := trendData(600, 3)
	train, val := samples[:400], samples[400:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	res, err := ForwardSelect(trainer, train, val, []string{"signal", "noise"}, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 {
		t.Fatal("nothing selected")
	}
	if res.Selected[0] != 0 {
		t.Fatalf("first selected feature = %q, want the signal", res.Names[0])
	}
	if res.Steps[0].AUC < 0.9 {
		t.Fatalf("signal-only AUC = %g", res.Steps[0].AUC)
	}
}

func TestForwardSelectStopsWithoutGain(t *testing.T) {
	samples := trendData(600, 4)
	train, val := samples[:400], samples[400:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	// The noise feature cannot add minGain=0.05 of AUC, so selection
	// should stop after the signal.
	res, err := ForwardSelect(trainer, train, val, []string{"signal", "noise"}, 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("selected %v, want just the signal", res.Names)
	}
}

func TestForwardSelectMaxFeatures(t *testing.T) {
	samples := trendData(400, 5)
	train, val := samples[:300], samples[300:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	res, err := ForwardSelect(trainer, train, val, []string{"a", "b"}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("selected %d features despite maxFeatures=1", len(res.Selected))
	}
}

func TestForwardSelectValidation(t *testing.T) {
	samples := trendData(100, 6)
	trainer := &tree.Trainer{}
	if _, err := ForwardSelect(trainer, samples, samples, []string{"one"}, 0, 0); err == nil {
		t.Fatal("name/width mismatch accepted")
	}
	onlyPos := []ml.Sample{{X: []float64{1, 2}, Y: 1}}
	if _, err := ForwardSelect(trainer, onlyPos, samples, []string{"a", "b"}, 0, 0); err == nil {
		t.Fatal("single-class training set accepted")
	}
}

func TestBackwardEliminateDropsNoiseFirst(t *testing.T) {
	samples := trendData(600, 11)
	train, val := samples[:400], samples[400:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	res, err := BackwardEliminate(trainer, train, val, []string{"signal", "noise"}, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The noise feature goes first; the signal survives.
	if len(res.Steps) == 0 {
		t.Fatal("nothing eliminated")
	}
	if res.Steps[0].FeatureName != "noise" {
		t.Fatalf("first drop = %q, want the noise", res.Steps[0].FeatureName)
	}
	if len(res.Names) != 1 || res.Names[0] != "signal" {
		t.Fatalf("survivors = %v", res.Names)
	}
}

func TestBackwardEliminateRespectsMaxLoss(t *testing.T) {
	samples := trendData(600, 12)
	train, val := samples[:400], samples[400:]
	trainer := &tree.Trainer{Config: tree.Config{MaxDepth: 4, MinSamplesLeaf: 10}}
	// With zero tolerated loss and minFeatures 1, the signal feature
	// must never be eliminated (dropping it collapses AUC).
	res, err := BackwardEliminate(trainer, train, val, []string{"signal", "noise"}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		if s.FeatureName == "signal" {
			t.Fatal("signal eliminated despite zero loss budget")
		}
	}
}

func TestBackwardEliminateValidation(t *testing.T) {
	samples := trendData(100, 13)
	trainer := &tree.Trainer{}
	if _, err := BackwardEliminate(trainer, samples, samples, []string{"one"}, 1, 0); err == nil {
		t.Fatal("name/width mismatch accepted")
	}
	if _, err := BackwardEliminate(trainer, samples, samples, []string{"a", "b"}, 5, 0); err == nil {
		t.Fatal("minFeatures > width accepted")
	}
}
