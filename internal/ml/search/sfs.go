package search

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/metrics"
)

// SFSStep records the state after adding one feature during sequential
// forward selection.
type SFSStep struct {
	// FeatureIndex is the selected feature's index in the full vector.
	FeatureIndex int
	// FeatureName is its human-readable name.
	FeatureName string
	// TPR, FPR, AUC are the validation metrics of the model trained on
	// the subset selected so far.
	TPR float64
	FPR float64
	AUC float64
}

// SFSResult is the outcome of a forward-selection run.
type SFSResult struct {
	// Steps is the selection trajectory, one entry per added feature
	// (the series behind the paper's Fig. 17).
	Steps []SFSStep
	// Selected is the chosen feature index subset, in selection order.
	Selected []int
	// Names are the chosen features' names.
	Names []string
}

// ForwardSelect implements the sequential forward selection algorithm
// the paper cites (Whitney 1971): starting from the empty subset, it
// greedily adds the feature whose addition maximises validation AUC,
// stopping when no candidate improves it by more than minGain or when
// maxFeatures is reached (0 = no limit).
func ForwardSelect(trainer ml.Trainer, train, val []ml.Sample, names []string, maxFeatures int, minGain float64) (*SFSResult, error) {
	if err := ml.ValidateSamples(train, true); err != nil {
		return nil, fmt.Errorf("search: train: %w", err)
	}
	if err := ml.ValidateSamples(val, true); err != nil {
		return nil, fmt.Errorf("search: val: %w", err)
	}
	width := len(train[0].X)
	if len(names) != width {
		return nil, fmt.Errorf("search: %d names for width %d", len(names), width)
	}
	if maxFeatures <= 0 || maxFeatures > width {
		maxFeatures = width
	}

	res := &SFSResult{}
	inSubset := make([]bool, width)
	bestAUC := 0.0

	for len(res.Selected) < maxFeatures {
		bestIdx := -1
		var bestStep SFSStep
		for f := 0; f < width; f++ {
			if inSubset[f] {
				continue
			}
			subset := append(append([]int(nil), res.Selected...), f)
			clf, err := trainer.Train(features.Mask(train, subset))
			if err != nil {
				return nil, fmt.Errorf("search: training with %v: %w", subset, err)
			}
			maskedVal := features.Mask(val, subset)
			auc := metrics.AUCScore(clf, maskedVal)
			if bestIdx == -1 || auc > bestStep.AUC {
				cm := metrics.Evaluate(clf, maskedVal)
				bestIdx = f
				bestStep = SFSStep{
					FeatureIndex: f,
					FeatureName:  names[f],
					TPR:          cm.TPR(),
					FPR:          cm.FPR(),
					AUC:          auc,
				}
			}
		}
		if bestIdx == -1 || bestStep.AUC <= bestAUC+minGain {
			break
		}
		bestAUC = bestStep.AUC
		inSubset[bestIdx] = true
		res.Selected = append(res.Selected, bestIdx)
		res.Names = append(res.Names, names[bestIdx])
		res.Steps = append(res.Steps, bestStep)
	}
	if len(res.Selected) == 0 {
		return nil, fmt.Errorf("search: forward selection selected nothing")
	}
	return res, nil
}
