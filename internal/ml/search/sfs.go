package search

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/parallel"
)

// SFSStep records the state after adding one feature during sequential
// forward selection.
type SFSStep struct {
	// FeatureIndex is the selected feature's index in the full vector.
	FeatureIndex int
	// FeatureName is its human-readable name.
	FeatureName string
	// TPR, FPR, AUC are the validation metrics of the model trained on
	// the subset selected so far.
	TPR float64
	FPR float64
	AUC float64
}

// SFSResult is the outcome of a forward-selection run.
type SFSResult struct {
	// Steps is the selection trajectory, one entry per added feature
	// (the series behind the paper's Fig. 17).
	Steps []SFSStep
	// Selected is the chosen feature index subset, in selection order.
	Selected []int
	// Names are the chosen features' names.
	Names []string
}

// subsetScore is one candidate subset's validation result.
type subsetScore struct {
	auc float64
	cm  metrics.Confusion
}

// scoreSubset trains on the masked training set and scores the masked
// validation set once, deriving both the AUC and the 0.5-threshold
// confusion matrix from a single prediction pass.
func scoreSubset(trainer ml.Trainer, train, val []ml.Sample, subset []int) (subsetScore, error) {
	clf, err := trainer.Train(features.Mask(train, subset))
	if err != nil {
		return subsetScore{}, err
	}
	masked := features.Mask(val, subset)
	scores := make([]float64, len(masked))
	labels := make([]int, len(masked))
	var cm metrics.Confusion
	for i := range masked {
		scores[i] = clf.PredictProba(masked[i].X)
		labels[i] = masked[i].Y
		pred := 0
		if scores[i] >= 0.5 {
			pred = 1
		}
		cm.Add(pred, masked[i].Y)
	}
	return subsetScore{auc: metrics.AUC(metrics.ROCFromScores(scores, labels)), cm: cm}, nil
}

// scoreSubsetView is scoreSubset on zero-copy views: the candidate
// subset is a *column* sub-view of the shared arena. A ViewTrainer
// trains on row-masked, column-masked views of the set-wide binned
// matrix (bin-once, no re-extraction) and its model indexes features
// globally, so validation rows are scored straight out of the arena;
// other trainers fall back to a masked materialisation. Scores — and
// therefore the selection trajectory — match the slice implementation.
func scoreSubsetView(trainer ml.Trainer, train, val ml.View, subset []int) (subsetScore, error) {
	sub := train.WithCols(subset)
	var clf ml.Classifier
	var err error
	vt, fullWidth := trainer.(ml.ViewTrainer)
	if fullWidth {
		clf, err = vt.TrainView(sub)
	} else {
		clf, err = trainer.Train(sub.Materialize())
	}
	if err != nil {
		return subsetScore{}, err
	}
	n := val.Len()
	scores := make([]float64, n)
	labels := make([]int, n)
	var masked []float64
	if !fullWidth {
		masked = make([]float64, len(subset))
	}
	var cm metrics.Confusion
	for i := 0; i < n; i++ {
		x := val.Row(i)
		if !fullWidth {
			for j, c := range subset {
				masked[j] = x[c]
			}
			x = masked
		}
		scores[i] = clf.PredictProba(x)
		labels[i] = val.Y(i)
		pred := 0
		if scores[i] >= 0.5 {
			pred = 1
		}
		cm.Add(pred, labels[i])
	}
	return subsetScore{auc: metrics.AUC(metrics.ROCFromScores(scores, labels)), cm: cm}, nil
}

// ForwardSelectSet is ForwardSelectWorkers on zero-copy SampleSet
// views: every candidate subset trains on a column sub-view of the
// same binned arena instead of re-extracting a masked copy of train
// and validation per feature subset. The greedy trajectory is
// identical to the slice implementation at any worker count.
func ForwardSelectSet(trainer ml.Trainer, train, val ml.View, names []string, maxFeatures int, minGain float64, workers int) (*SFSResult, error) {
	if err := ml.ValidateView(train, true); err != nil {
		return nil, fmt.Errorf("search: train: %w", err)
	}
	if err := ml.ValidateView(val, true); err != nil {
		return nil, fmt.Errorf("search: val: %w", err)
	}
	width := train.Width()
	if len(names) != width {
		return nil, fmt.Errorf("search: %d names for width %d", len(names), width)
	}
	if maxFeatures <= 0 || maxFeatures > width {
		maxFeatures = width
	}

	res := &SFSResult{}
	inSubset := make([]bool, width)
	bestAUC := 0.0

	for len(res.Selected) < maxFeatures {
		cands := make([]int, 0, width-len(res.Selected))
		for f := 0; f < width; f++ {
			if !inSubset[f] {
				cands = append(cands, f)
			}
		}
		if len(cands) == 0 {
			break
		}
		scored, err := parallel.Map(len(cands), workers, func(i int) (subsetScore, error) {
			subset := append(append(make([]int, 0, len(res.Selected)+1), res.Selected...), cands[i])
			s, err := scoreSubsetView(trainer, train, val, subset)
			if err != nil {
				return subsetScore{}, fmt.Errorf("search: training with %v: %w", subset, err)
			}
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		best := 0
		for i := 1; i < len(scored); i++ {
			if scored[i].auc > scored[best].auc {
				best = i
			}
		}
		if scored[best].auc <= bestAUC+minGain {
			break
		}
		bestAUC = scored[best].auc
		f := cands[best]
		inSubset[f] = true
		res.Selected = append(res.Selected, f)
		res.Names = append(res.Names, names[f])
		res.Steps = append(res.Steps, SFSStep{
			FeatureIndex: f,
			FeatureName:  names[f],
			TPR:          scored[best].cm.TPR(),
			FPR:          scored[best].cm.FPR(),
			AUC:          scored[best].auc,
		})
	}
	if len(res.Selected) == 0 {
		return nil, fmt.Errorf("search: forward selection selected nothing")
	}
	return res, nil
}

// ForwardSelect implements the sequential forward selection algorithm
// the paper cites (Whitney 1971): starting from the empty subset, it
// greedily adds the feature whose addition maximises validation AUC,
// stopping when no candidate improves it by more than minGain or when
// maxFeatures is reached (0 = no limit). Candidate features are
// evaluated on GOMAXPROCS goroutines; use ForwardSelectWorkers to pin
// the worker count.
func ForwardSelect(trainer ml.Trainer, train, val []ml.Sample, names []string, maxFeatures int, minGain float64) (*SFSResult, error) {
	return ForwardSelectWorkers(trainer, train, val, names, maxFeatures, minGain, 0)
}

// ForwardSelectWorkers is ForwardSelect with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Each step's candidate features train
// and score concurrently; ties break toward the lowest feature index,
// so the trajectory is identical at any worker count.
func ForwardSelectWorkers(trainer ml.Trainer, train, val []ml.Sample, names []string, maxFeatures int, minGain float64, workers int) (*SFSResult, error) {
	if err := ml.ValidateSamples(train, true); err != nil {
		return nil, fmt.Errorf("search: train: %w", err)
	}
	if err := ml.ValidateSamples(val, true); err != nil {
		return nil, fmt.Errorf("search: val: %w", err)
	}
	width := len(train[0].X)
	if len(names) != width {
		return nil, fmt.Errorf("search: %d names for width %d", len(names), width)
	}
	if maxFeatures <= 0 || maxFeatures > width {
		maxFeatures = width
	}

	res := &SFSResult{}
	inSubset := make([]bool, width)
	bestAUC := 0.0

	for len(res.Selected) < maxFeatures {
		cands := make([]int, 0, width-len(res.Selected))
		for f := 0; f < width; f++ {
			if !inSubset[f] {
				cands = append(cands, f)
			}
		}
		if len(cands) == 0 {
			break
		}
		scored, err := parallel.Map(len(cands), workers, func(i int) (subsetScore, error) {
			subset := append(append(make([]int, 0, len(res.Selected)+1), res.Selected...), cands[i])
			s, err := scoreSubset(trainer, train, val, subset)
			if err != nil {
				return subsetScore{}, fmt.Errorf("search: training with %v: %w", subset, err)
			}
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		best := 0
		for i := 1; i < len(scored); i++ {
			if scored[i].auc > scored[best].auc {
				best = i
			}
		}
		if scored[best].auc <= bestAUC+minGain {
			break
		}
		bestAUC = scored[best].auc
		f := cands[best]
		inSubset[f] = true
		res.Selected = append(res.Selected, f)
		res.Names = append(res.Names, names[f])
		res.Steps = append(res.Steps, SFSStep{
			FeatureIndex: f,
			FeatureName:  names[f],
			TPR:          scored[best].cm.TPR(),
			FPR:          scored[best].cm.FPR(),
			AUC:          scored[best].auc,
		})
	}
	if len(res.Selected) == 0 {
		return nil, fmt.Errorf("search: forward selection selected nothing")
	}
	return res, nil
}
