package ml

import (
	"fmt"
	"sync"
)

// SampleSet is the columnar in-memory sample representation: one flat
// row-major float64 arena plus parallel label/day/serial columns. It
// is built once per prepared fleet (features.BuildSampleSet fills the
// arena with no per-row allocations) and then shared read-only by
// every downstream consumer — splits, under-sampling, CV folds, grid
// search, and feature selection all operate on Views (int32 row-index
// slices) instead of copying sample data per candidate.
//
// A SampleSet is immutable after construction and safe for concurrent
// readers; the Cached hook lets derived artefacts (notably the
// quantile-binned matrix, see internal/ml/matrix.SharedFromSet) be
// computed once and shared across candidates.
type SampleSet struct {
	width int
	x     []float64 // len = rows*width, row-major
	y     []int8    // 0 or 1
	day   []int32
	sn    []string

	yfOnce sync.Once
	yf     []float64

	cacheMu sync.Mutex
	cache   map[int64]any
}

// NewSampleSet assembles a set from pre-filled parallel columns. The
// arena x must hold len(y)*width values row-major; labels must be 0/1.
// The slices are retained (not copied) and must not be mutated after.
func NewSampleSet(width int, x []float64, y []int8, day []int32, sn []string) (*SampleSet, error) {
	if width <= 0 {
		return nil, fmt.Errorf("ml: sample set width %d must be > 0", width)
	}
	rows := len(y)
	if rows == 0 {
		return nil, fmt.Errorf("ml: empty sample set")
	}
	if len(x) != rows*width {
		return nil, fmt.Errorf("ml: arena holds %d values, want %d rows × %d", len(x), rows, width)
	}
	if len(day) != rows || len(sn) != rows {
		return nil, fmt.Errorf("ml: column lengths %d/%d/%d disagree", rows, len(day), len(sn))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("ml: sample %d has label %d, want 0 or 1", i, v)
		}
	}
	return &SampleSet{width: width, x: x, y: y, day: day, sn: sn}, nil
}

// FromSamples copies a legacy []Sample slice into columnar form — the
// compatibility adapter for call sites that still build row-structs.
func FromSamples(samples []Sample) (*SampleSet, error) {
	if err := ValidateSamples(samples, false); err != nil {
		return nil, err
	}
	width := len(samples[0].X)
	x := make([]float64, 0, len(samples)*width)
	y := make([]int8, len(samples))
	day := make([]int32, len(samples))
	sn := make([]string, len(samples))
	for i := range samples {
		x = append(x, samples[i].X...)
		y[i] = int8(samples[i].Y)
		day[i] = int32(samples[i].Day)
		sn[i] = samples[i].SN
	}
	return NewSampleSet(width, x, y, day, sn)
}

// Len returns the number of rows.
func (s *SampleSet) Len() int { return len(s.y) }

// Width returns the feature vector length.
func (s *SampleSet) Width() int { return s.width }

// Arena returns the shared row-major feature arena. Read-only.
func (s *SampleSet) Arena() []float64 { return s.x }

// Row returns row i's feature vector: a capped subslice of the arena
// (appending to it cannot clobber the next row). Read-only.
func (s *SampleSet) Row(i int) []float64 {
	return s.x[i*s.width : (i+1)*s.width : (i+1)*s.width]
}

// Y returns row i's label.
func (s *SampleSet) Y(i int) int { return int(s.y[i]) }

// Day returns row i's observation day.
func (s *SampleSet) Day(i int) int { return int(s.day[i]) }

// SN returns row i's drive serial number.
func (s *SampleSet) SN(i int) string { return s.sn[i] }

// LabelsFloat returns (building once) the labels as float64 training
// targets, indexed by arena row. The slice is shared; read-only.
func (s *SampleSet) LabelsFloat() []float64 {
	s.yfOnce.Do(func() {
		s.yf = make([]float64, len(s.y))
		for i, v := range s.y {
			s.yf[i] = float64(v)
		}
	})
	return s.yf
}

// Cached returns (computing once per key) a derived artefact of the
// set, such as the set-wide binned matrix. Concurrent callers with the
// same key share a single build; build must not call Cached itself.
func (s *SampleSet) Cached(key int64, build func() (any, error)) (any, error) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if v, ok := s.cache[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	if s.cache == nil {
		s.cache = make(map[int64]any)
	}
	s.cache[key] = v
	return v, nil
}

// All returns the view over every row and feature.
func (s *SampleSet) All() View { return View{set: s} }

// View is a zero-copy selection of a SampleSet: a row-index slice
// (nil = all rows, in arena order) and an optional feature-column
// subset (nil = all features). Views are values — cheap to pass and
// slice — and never copy feature data; the sampling package's split,
// under-sample, and CV primitives all produce Views, so every search
// candidate shares one arena. A View must not contain duplicate rows.
type View struct {
	set  *SampleSet
	rows []int32
	cols []int
}

// Set returns the underlying SampleSet.
func (v View) Set() *SampleSet { return v.set }

// Len returns the number of selected rows.
func (v View) Len() int {
	if v.rows == nil {
		return v.set.Len()
	}
	return len(v.rows)
}

// Width returns the selected feature count.
func (v View) Width() int {
	if v.cols == nil {
		return v.set.Width()
	}
	return len(v.cols)
}

// Cols returns the feature-column subset (nil = all). Read-only.
func (v View) Cols() []int { return v.cols }

// RowIndex maps view position i to its arena row.
func (v View) RowIndex(i int) int32 {
	if v.rows == nil {
		return int32(i)
	}
	return v.rows[i]
}

// Row returns position i's full-width feature vector straight from the
// arena. Column subsets are not applied — consumers that honour Cols
// (the tree growers) index it by global feature id.
func (v View) Row(i int) []float64 { return v.set.Row(int(v.RowIndex(i))) }

// Y returns position i's label.
func (v View) Y(i int) int { return v.set.Y(int(v.RowIndex(i))) }

// Day returns position i's observation day.
func (v View) Day(i int) int { return v.set.Day(int(v.RowIndex(i))) }

// SN returns position i's drive serial number.
func (v View) SN(i int) string { return v.set.SN(int(v.RowIndex(i))) }

// Indices returns a fresh copy of the selected arena rows, in view
// order.
func (v View) Indices() []int32 {
	out := make([]int32, v.Len())
	for i := range out {
		out[i] = v.RowIndex(i)
	}
	return out
}

// WithRows returns a view over the given arena rows (view order =
// slice order), keeping the column subset. The slice is retained.
func (v View) WithRows(rows []int32) View { return View{set: v.set, rows: rows, cols: v.cols} }

// WithCols returns a view restricted to the feature columns in keep,
// keeping the row selection. The slice is retained.
func (v View) WithCols(keep []int) View { return View{set: v.set, rows: v.rows, cols: keep} }

// ClassCounts returns the number of negative and positive rows.
func (v View) ClassCounts() (neg, pos int) {
	n := v.Len()
	for i := 0; i < n; i++ {
		if v.Y(i) == 1 {
			pos++
		} else {
			neg++
		}
	}
	return neg, pos
}

// MaxDay returns the latest observation day in the view (0 if empty).
func (v View) MaxDay() int {
	last := 0
	n := v.Len()
	for i := 0; i < n; i++ {
		if d := v.Day(i); d > last {
			last = d
		}
	}
	return last
}

// Xs returns the selected rows as full-width vector headers into the
// arena — one pointer-slice allocation, no feature copies. It is the
// batch-scoring adapter; column subsets are not applied.
func (v View) Xs() [][]float64 {
	out := make([][]float64, v.Len())
	for i := range out {
		out[i] = v.Row(i)
	}
	return out
}

// Materialize converts the view to the legacy []Sample representation.
// Without a column subset the X vectors are capped arena subslices
// (header-only — no feature data is copied), honouring the Trainer
// contract that inputs are never mutated; with a column subset each X
// is a fresh masked copy.
func (v View) Materialize() []Sample {
	n := v.Len()
	out := make([]Sample, n)
	if v.cols == nil {
		for i := 0; i < n; i++ {
			r := int(v.RowIndex(i))
			out[i] = Sample{X: v.set.Row(r), Y: v.set.Y(r), SN: v.set.SN(r), Day: v.set.Day(r)}
		}
		return out
	}
	flat := make([]float64, n*len(v.cols))
	for i := 0; i < n; i++ {
		r := int(v.RowIndex(i))
		x := flat[i*len(v.cols) : (i+1)*len(v.cols) : (i+1)*len(v.cols)]
		row := v.set.Row(r)
		for j, c := range v.cols {
			x[j] = row[c]
		}
		out[i] = Sample{X: x, Y: v.set.Y(r), SN: v.set.SN(r), Day: v.set.Day(r)}
	}
	return out
}

// ValidateView checks that a view forms a usable training set:
// non-empty and, when requireBothClasses is set, holding at least one
// row of each class (the columnar counterpart of ValidateSamples; the
// arena representation makes width and label checks structural).
func ValidateView(v View, requireBothClasses bool) error {
	if v.Set() == nil || v.Len() == 0 {
		return fmt.Errorf("ml: empty sample view")
	}
	if requireBothClasses {
		neg, pos := v.ClassCounts()
		if pos == 0 || neg == 0 {
			return fmt.Errorf("ml: need both classes, have %d positive and %d negative", pos, neg)
		}
	}
	return nil
}

// ViewTrainer is implemented by trainers that can consume a zero-copy
// View directly — the tree ensembles train on row-masked views of the
// set-wide binned matrix (bin-once), and honour the view's column
// subset without re-extracting features.
type ViewTrainer interface {
	Trainer
	// TrainView fits a model on the view's rows (and, when set, only
	// its feature columns). The view and its set must stay unmutated.
	TrainView(v View) (Classifier, error)
}

// TrainOn trains t on v through the fastest path it offers: the
// zero-copy view path when t implements ViewTrainer, otherwise the
// legacy slice path on a materialised (header-only, or masked when the
// view has a column subset) sample slice.
func TrainOn(t Trainer, v View) (Classifier, error) {
	if vt, ok := t.(ViewTrainer); ok {
		return vt.TrainView(v)
	}
	return t.Train(v.Materialize())
}
