package ml

import "repro/internal/parallel"

// BatchScores scores every sample with clf, fanning the PredictProba
// calls out across workers (0 = GOMAXPROCS, 1 = serial) and returning
// the scores in sample order. Every classifier in this repository is
// read-only during prediction, which is what makes the fan-out safe;
// external Classifier implementations used with this helper must be
// too. Scores are identical at any worker count.
func BatchScores(clf Classifier, samples []Sample, workers int) []float64 {
	return parallel.Collect(len(samples), workers, func(i int) float64 {
		return clf.PredictProba(samples[i].X)
	})
}
