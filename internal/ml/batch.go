package ml

import "repro/internal/parallel"

// BatchClassifier is the fast-path scoring interface: classifiers that
// can score a whole matrix of rows at once (typically through a
// compiled, flattened form) implement it in addition to Classifier.
// PredictProbaBatch must write exactly the per-row PredictProba scores
// into out (len(out) == len(xs)), must be safe for concurrent use, and
// must honour the repository Workers convention (0 = GOMAXPROCS,
// 1 = serial) with results identical at any worker count.
type BatchClassifier interface {
	Classifier
	PredictProbaBatch(xs [][]float64, out []float64, workers int)
}

// ScoreBatch scores raw feature vectors into out through the fastest
// path clf offers: the flattened batch kernel when clf implements
// BatchClassifier, otherwise a per-row fan-out via internal/parallel.
// Both paths produce identical scores at any worker count.
func ScoreBatch(clf Classifier, xs [][]float64, out []float64, workers int) {
	if len(xs) != len(out) {
		panic("ml: ScoreBatch rows and outputs differ in length")
	}
	if bc, ok := clf.(BatchClassifier); ok {
		bc.PredictProbaBatch(xs, out, workers)
		return
	}
	// Every classifier in this repository is read-only during
	// prediction, which is what makes the fan-out safe; external
	// Classifier implementations used with this helper must be too.
	_ = parallel.Do(len(xs), workers, func(i int) error {
		out[i] = clf.PredictProba(xs[i])
		return nil
	})
}

// BatchScores scores every sample with clf and returns the scores in
// sample order, preferring the BatchClassifier fast path when clf
// provides one and falling back to fanning PredictProba calls across
// workers (0 = GOMAXPROCS, 1 = serial) otherwise. Scores are identical
// across paths and at any worker count.
func BatchScores(clf Classifier, samples []Sample, workers int) []float64 {
	out := make([]float64, len(samples))
	if len(samples) == 0 {
		return out
	}
	xs := make([][]float64, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
	}
	ScoreBatch(clf, xs, out, workers)
	return out
}

// ScoreView scores a view's rows into out (len(out) == v.Len()) through
// ScoreBatch, reading full-width vectors straight out of the arena —
// only the row-header slice is allocated. Views with a column subset
// are rejected: models trained through the view path index features
// globally, so masked scoring is never needed on this path.
func ScoreView(clf Classifier, v View, out []float64, workers int) {
	if v.Cols() != nil {
		panic("ml: ScoreView on a column-subset view")
	}
	if len(out) != v.Len() {
		panic("ml: ScoreView rows and outputs differ in length")
	}
	if v.Len() == 0 {
		return
	}
	ScoreBatch(clf, v.Xs(), out, workers)
}

// BatchScoresView is ScoreView with a freshly allocated output slice.
func BatchScoresView(clf Classifier, v View, workers int) []float64 {
	out := make([]float64, v.Len())
	ScoreView(clf, v, out, workers)
	return out
}
