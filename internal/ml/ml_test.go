package ml

import "testing"

func TestValidateSamples(t *testing.T) {
	good := []Sample{
		{X: []float64{1, 2}, Y: 0},
		{X: []float64{3, 4}, Y: 1},
	}
	if err := ValidateSamples(good, true); err != nil {
		t.Fatal(err)
	}

	if err := ValidateSamples(nil, false); err == nil {
		t.Error("empty set accepted")
	}
	if err := ValidateSamples([]Sample{{X: nil, Y: 0}}, false); err == nil {
		t.Error("zero-width accepted")
	}
	ragged := []Sample{{X: []float64{1}, Y: 0}, {X: []float64{1, 2}, Y: 1}}
	if err := ValidateSamples(ragged, false); err == nil {
		t.Error("ragged widths accepted")
	}
	badLabel := []Sample{{X: []float64{1}, Y: 2}}
	if err := ValidateSamples(badLabel, false); err == nil {
		t.Error("label 2 accepted")
	}
	onlyPos := []Sample{{X: []float64{1}, Y: 1}}
	if err := ValidateSamples(onlyPos, true); err == nil {
		t.Error("single-class set accepted with requireBothClasses")
	}
	if err := ValidateSamples(onlyPos, false); err != nil {
		t.Errorf("single-class set rejected without requireBothClasses: %v", err)
	}
}

func TestClassCounts(t *testing.T) {
	neg, pos := ClassCounts([]Sample{
		{X: []float64{0}, Y: 0},
		{X: []float64{0}, Y: 1},
		{X: []float64{0}, Y: 1},
	})
	if neg != 1 || pos != 2 {
		t.Fatalf("counts = %d/%d", neg, pos)
	}
}

func TestSortByDayStable(t *testing.T) {
	s := []Sample{
		{X: []float64{0}, Day: 2, SN: "a"},
		{X: []float64{0}, Day: 1, SN: "b"},
		{X: []float64{0}, Day: 2, SN: "c"},
	}
	SortByDay(s)
	if s[0].SN != "b" || s[1].SN != "a" || s[2].SN != "c" {
		t.Fatalf("order = %s %s %s", s[0].SN, s[1].SN, s[2].SN)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []Sample {
		var out []Sample
		for i := 0; i < 20; i++ {
			out = append(out, Sample{X: []float64{0}, Day: i})
		}
		return out
	}
	a, b := mk(), mk()
	Shuffle(a, 7)
	Shuffle(b, 7)
	for i := range a {
		if a[i].Day != b[i].Day {
			t.Fatal("same seed produced different shuffles")
		}
	}
}

func TestCloneVectors(t *testing.T) {
	orig := []Sample{{X: []float64{1, 2}, Y: 1, SN: "a"}}
	c := CloneVectors(orig)
	c[0].X[0] = 99
	if orig[0].X[0] == 99 {
		t.Fatal("CloneVectors shares backing arrays")
	}
	if c[0].SN != "a" || c[0].Y != 1 {
		t.Fatal("metadata lost")
	}
}

type constClassifier float64

func (c constClassifier) PredictProba([]float64) float64 { return float64(c) }

func TestPredictThreshold(t *testing.T) {
	if Predict(constClassifier(0.4), nil) != 0 {
		t.Error("0.4 should predict 0")
	}
	if Predict(constClassifier(0.5), nil) != 1 {
		t.Error("0.5 should predict 1")
	}
}
