package bayes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// gaussians draws n samples per class from two separated Gaussians.
func gaussians(n int, sep float64, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		out = append(out, ml.Sample{
			X: []float64{r.NormFloat64(), r.NormFloat64()},
			Y: 0,
		})
		out = append(out, ml.Sample{
			X: []float64{r.NormFloat64() + sep, r.NormFloat64() + sep},
			Y: 1,
		})
	}
	return out
}

func TestSeparableAccuracy(t *testing.T) {
	train := gaussians(300, 4, 1)
	test := gaussians(200, 4, 2)
	clf, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.98 {
		t.Fatalf("accuracy = %g on well-separated Gaussians", acc)
	}
}

func TestProbabilitiesAreCalibratedAtCenter(t *testing.T) {
	train := gaussians(2000, 2, 3)
	clf, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Halfway between the class means both classes are equally likely.
	p := clf.PredictProba([]float64{1, 1})
	if math.Abs(p-0.5) > 0.1 {
		t.Fatalf("midpoint probability = %g, want ≈0.5", p)
	}
	// Deep inside each class the probability saturates.
	if p := clf.PredictProba([]float64{-3, -3}); p > 0.01 {
		t.Fatalf("negative-class point scored %g", p)
	}
	if p := clf.PredictProba([]float64{5, 5}); p < 0.99 {
		t.Fatalf("positive-class point scored %g", p)
	}
}

func TestConstantFeatureDoesNotBreak(t *testing.T) {
	// A constant column (like AvailableSpareThreshold) must not produce
	// NaN or infinite likelihoods.
	var train []ml.Sample
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		train = append(train,
			ml.Sample{X: []float64{10, r.NormFloat64()}, Y: 0},
			ml.Sample{X: []float64{10, r.NormFloat64() + 3}, Y: 1},
		)
	}
	clf, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	p := clf.PredictProba([]float64{10, 1.5})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("probability = %g", p)
	}
}

func TestPriorsMatter(t *testing.T) {
	// With identical likelihoods, the prior decides.
	var train []ml.Sample
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 900; i++ {
		train = append(train, ml.Sample{X: []float64{r.NormFloat64()}, Y: 0})
	}
	for i := 0; i < 100; i++ {
		train = append(train, ml.Sample{X: []float64{r.NormFloat64()}, Y: 1})
	}
	clf, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if p := clf.PredictProba([]float64{0}); p > 0.25 {
		t.Fatalf("probability %g ignores the 9:1 prior", p)
	}
}

func TestTrainRequiresBothClasses(t *testing.T) {
	onlyPos := []ml.Sample{{X: []float64{1}, Y: 1}}
	if _, err := (&Trainer{}).Train(onlyPos); err == nil {
		t.Fatal("single-class training accepted")
	}
}

func TestName(t *testing.T) {
	if (&Trainer{}).Name() != "Bayes" {
		t.Fatal("wrong name")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	train := gaussians(200, 3, 9)
	clf, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	restored, err := Import(m.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gaussians(30, 3, 10) {
		if restored.PredictProba(s.X) != m.PredictProba(s.X) {
			t.Fatal("round trip changed predictions")
		}
	}
}

func TestImportRejectsCorrupt(t *testing.T) {
	if _, err := Import(Exported{}); err == nil {
		t.Error("empty export accepted")
	}
	bad := Exported{
		Mean:     [2][]float64{{1}, {1}},
		Variance: [2][]float64{{0}, {1}}, // zero variance
	}
	if _, err := Import(bad); err == nil {
		t.Error("zero variance accepted")
	}
	ragged := Exported{
		Mean:     [2][]float64{{1, 2}, {1}},
		Variance: [2][]float64{{1, 1}, {1}},
	}
	if _, err := Import(ragged); err == nil {
		t.Error("ragged widths accepted")
	}
}

func TestVarSmoothingOverride(t *testing.T) {
	train := gaussians(100, 2, 11)
	a, err := (&Trainer{VarSmoothing: 0.5}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy smoothing flattens the posterior toward the prior.
	pa := a.PredictProba([]float64{5, 5})
	pb := b.PredictProba([]float64{5, 5})
	if pa >= pb {
		t.Fatalf("smoothing did not soften the posterior: %g vs %g", pa, pb)
	}
}
