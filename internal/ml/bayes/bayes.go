// Package bayes implements Gaussian naive Bayes, one of the paper's
// five candidate algorithms for MFPA. Each feature is modelled as an
// independent Gaussian per class; degenerate (zero-variance) features
// receive a small variance floor so constant columns — common in SMART
// data, e.g. AvailableSpareThreshold — do not produce infinities.
package bayes

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// Trainer fits a Gaussian naive Bayes model.
type Trainer struct {
	// VarSmoothing is added to every per-feature variance as a fraction
	// of the largest feature variance (sklearn-style). Zero selects the
	// default 1e-9.
	VarSmoothing float64
}

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "Bayes" }

// Train implements ml.Trainer.
func (t *Trainer) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, true); err != nil {
		return nil, err
	}
	smoothing := t.VarSmoothing
	if smoothing == 0 {
		smoothing = 1e-9
	}
	width := len(samples[0].X)
	m := &Model{
		mean: [2][]float64{make([]float64, width), make([]float64, width)},
		vari: [2][]float64{make([]float64, width), make([]float64, width)},
	}
	var count [2]float64
	for i := range samples {
		y := samples[i].Y
		count[y]++
		for j, v := range samples[i].X {
			m.mean[y][j] += v
		}
	}
	for y := 0; y < 2; y++ {
		for j := range m.mean[y] {
			m.mean[y][j] /= count[y]
		}
	}
	for i := range samples {
		y := samples[i].Y
		for j, v := range samples[i].X {
			d := v - m.mean[y][j]
			m.vari[y][j] += d * d
		}
	}
	// Variance floor: fraction of the largest overall feature variance.
	var maxVar float64
	for y := 0; y < 2; y++ {
		for j := range m.vari[y] {
			m.vari[y][j] /= count[y]
			if m.vari[y][j] > maxVar {
				maxVar = m.vari[y][j]
			}
		}
	}
	eps := smoothing * maxVar
	if eps == 0 {
		eps = smoothing
	}
	for y := 0; y < 2; y++ {
		for j := range m.vari[y] {
			m.vari[y][j] += eps
		}
	}
	total := count[0] + count[1]
	m.logPrior[0] = math.Log(count[0] / total)
	m.logPrior[1] = math.Log(count[1] / total)
	return m, nil
}

// Model is a fitted Gaussian naive Bayes classifier.
type Model struct {
	mean     [2][]float64
	vari     [2][]float64
	logPrior [2]float64
}

// PredictProba implements ml.Classifier: P(y=1 | x) via Bayes' rule on
// the two class log-likelihoods.
func (m *Model) PredictProba(x []float64) float64 {
	var logp [2]float64
	for y := 0; y < 2; y++ {
		lp := m.logPrior[y]
		for j, v := range x {
			d := v - m.mean[y][j]
			lp += -0.5*math.Log(2*math.Pi*m.vari[y][j]) - d*d/(2*m.vari[y][j])
		}
		logp[y] = lp
	}
	// Normalise in log space to avoid under/overflow.
	max := math.Max(logp[0], logp[1])
	p0 := math.Exp(logp[0] - max)
	p1 := math.Exp(logp[1] - max)
	return p1 / (p0 + p1)
}

// Exported is the model's serialisation form.
type Exported struct {
	Mean     [2][]float64
	Variance [2][]float64
	LogPrior [2]float64
}

// Export returns the model's serialisation form.
func (m *Model) Export() Exported {
	var e Exported
	for y := 0; y < 2; y++ {
		e.Mean[y] = append([]float64(nil), m.mean[y]...)
		e.Variance[y] = append([]float64(nil), m.vari[y]...)
	}
	e.LogPrior = m.logPrior
	return e
}

// Import reconstructs a model from its serialisation form.
func Import(e Exported) (*Model, error) {
	if len(e.Mean[0]) == 0 || len(e.Mean[0]) != len(e.Mean[1]) ||
		len(e.Mean[0]) != len(e.Variance[0]) || len(e.Mean[0]) != len(e.Variance[1]) {
		return nil, fmt.Errorf("bayes: inconsistent export widths")
	}
	for y := 0; y < 2; y++ {
		for _, v := range e.Variance[y] {
			if v <= 0 {
				return nil, fmt.Errorf("bayes: non-positive variance in export")
			}
		}
	}
	m := &Model{logPrior: e.LogPrior}
	for y := 0; y < 2; y++ {
		m.mean[y] = append([]float64(nil), e.Mean[y]...)
		m.vari[y] = append([]float64(nil), e.Variance[y]...)
	}
	return m, nil
}
