package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2, TN: 88}
	if got := c.TPR(); got != 0.8 {
		t.Errorf("TPR = %g, want 0.8", got)
	}
	if got := c.FPR(); math.Abs(got-2.0/90) > 1e-12 {
		t.Errorf("FPR = %g", got)
	}
	if got := c.Accuracy(); got != 0.96 {
		t.Errorf("ACC = %g", got)
	}
	if got := c.PDR(); got != 0.10 {
		t.Errorf("PDR = %g", got)
	}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %g", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("F1 = %g", got)
	}
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionNaNWhenUndefined(t *testing.T) {
	var c Confusion
	for _, v := range []float64{c.TPR(), c.FPR(), c.Accuracy(), c.Precision(), c.PDR(), c.F1()} {
		if !math.IsNaN(v) {
			t.Fatalf("empty confusion yielded %g, want NaN", v)
		}
	}
}

func TestConfusionAdd(t *testing.T) {
	var c Confusion
	c.Add(1, 1)
	c.Add(1, 0)
	c.Add(0, 1)
	c.Add(0, 0)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.String() == "" {
		t.Fatal("String should render")
	}
}

type scoreByFirst struct{}

func (scoreByFirst) PredictProba(x []float64) float64 { return x[0] }

func mkSamples(scores []float64, labels []int) []ml.Sample {
	out := make([]ml.Sample, len(scores))
	for i := range scores {
		out[i] = ml.Sample{X: []float64{scores[i]}, Y: labels[i]}
	}
	return out
}

func TestEvaluate(t *testing.T) {
	samples := mkSamples(
		[]float64{0.9, 0.8, 0.3, 0.1},
		[]int{1, 0, 1, 0},
	)
	c := Evaluate(scoreByFirst{}, samples)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	strict := EvaluateAt(scoreByFirst{}, samples, 0.85)
	if strict.TP != 1 || strict.FP != 0 {
		t.Fatalf("strict confusion = %+v", strict)
	}
}

func TestPerfectAUC(t *testing.T) {
	samples := mkSamples(
		[]float64{0.9, 0.8, 0.2, 0.1},
		[]int{1, 1, 0, 0},
	)
	if got := AUCScore(scoreByFirst{}, samples); got != 1 {
		t.Fatalf("perfect ranking AUC = %g, want 1", got)
	}
}

func TestReversedAUC(t *testing.T) {
	samples := mkSamples(
		[]float64{0.9, 0.8, 0.2, 0.1},
		[]int{0, 0, 1, 1},
	)
	if got := AUCScore(scoreByFirst{}, samples); got != 0 {
		t.Fatalf("reversed ranking AUC = %g, want 0", got)
	}
}

func TestTiedScoresAUC(t *testing.T) {
	// All samples share one score: AUC must be exactly 0.5 (diagonal),
	// not optimistic.
	samples := mkSamples(
		[]float64{0.5, 0.5, 0.5, 0.5},
		[]int{1, 0, 1, 0},
	)
	if got := AUCScore(scoreByFirst{}, samples); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %g, want 0.5", got)
	}
}

func TestRandomScoresAUCNearHalf(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Intn(2)
	}
	auc := AUC(ROCFromScores(scores, labels))
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %g, want ≈0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	scores := make([]float64, 500)
	labels := make([]int, 500)
	for i := range scores {
		scores[i] = r.NormFloat64() + float64(labels[i])
		labels[i] = i % 2
	}
	roc := ROCFromScores(scores, labels)
	for i := 1; i < len(roc); i++ {
		if roc[i].TPR < roc[i-1].TPR || roc[i].FPR < roc[i-1].FPR {
			t.Fatal("ROC not monotone")
		}
		if roc[i].Threshold > roc[i-1].Threshold {
			t.Fatal("thresholds not descending")
		}
	}
	last := roc[len(roc)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
}

func TestAUCBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(100)
		scores := make([]float64, n)
		labels := make([]int, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = r.Float64()
			labels[i] = r.Intn(2)
			if labels[i] == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		auc := AUC(ROCFromScores(scores, labels))
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestROCFromScoresPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	ROCFromScores([]float64{1}, []int{1, 0})
}

func TestPRCurvePerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	pts := PRFromScores(scores, labels)
	if ap := AveragePrecision(pts); ap != 1 {
		t.Fatalf("perfect AP = %g, want 1", ap)
	}
	last := pts[len(pts)-1]
	if last.Recall != 1 {
		t.Fatalf("curve does not reach recall 1: %+v", last)
	}
}

func TestPRCurveRecallMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	scores := make([]float64, 300)
	labels := make([]int, 300)
	for i := range scores {
		labels[i] = i % 2
		scores[i] = r.Float64() + 0.3*float64(labels[i])
	}
	pts := PRFromScores(scores, labels)
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall {
			t.Fatal("recall not monotone")
		}
	}
	ap := AveragePrecision(pts)
	if ap <= 0.5 || ap > 1 {
		t.Fatalf("AP = %g for a mildly informative scorer", ap)
	}
}

func TestAveragePrecisionBaseRate(t *testing.T) {
	// An uninformative scorer's AP approaches the positive base rate.
	r := rand.New(rand.NewSource(6))
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	pos := 0
	for i := range scores {
		scores[i] = r.Float64()
		if r.Float64() < 0.2 {
			labels[i] = 1
			pos++
		}
	}
	ap := AveragePrecision(PRFromScores(scores, labels))
	base := float64(pos) / float64(n)
	if math.Abs(ap-base) > 0.05 {
		t.Fatalf("random AP = %g, base rate %g", ap, base)
	}
}
