package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestCostModelValidate(t *testing.T) {
	good := CostModel{MissCost: 100, FalseAlarmCost: 2, TruePositiveCost: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CostModel{
		{},
		{MissCost: 100, FalseAlarmCost: -1},
		{MissCost: 10, TruePositiveCost: 10},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestExpectedCost(t *testing.T) {
	m := CostModel{MissCost: 100, FalseAlarmCost: 2, TruePositiveCost: 5}
	c := Confusion{TP: 3, FP: 4, FN: 2, TN: 91}
	want := 2.0*100 + 4*2 + 3*5
	if got := m.Expected(c); got != want {
		t.Fatalf("Expected = %g, want %g", got, want)
	}
}

// informativeROC builds a ROC from a scorer whose score separates the
// classes with some overlap.
func informativeROC(t *testing.T) ([]ROCPoint, int, int) {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	n := 5000
	scores := make([]float64, n)
	labels := make([]int, n)
	pos := 0
	for i := range scores {
		if r.Float64() < 0.05 {
			labels[i] = 1
			pos++
			scores[i] = 0.6 + 0.4*r.Float64() - 0.3*r.Float64()
		} else {
			scores[i] = 0.4 * r.Float64()
		}
	}
	return ROCFromScores(scores, labels), pos, n - pos
}

func TestOptimalThresholdMovesWithCosts(t *testing.T) {
	roc, pos, neg := informativeROC(t)
	missHeavy := CostModel{MissCost: 1000, FalseAlarmCost: 1, TruePositiveCost: 1}
	alarmHeavy := CostModel{MissCost: 10, FalseAlarmCost: 8, TruePositiveCost: 1}

	tMiss, cMiss, err := missHeavy.OptimalThreshold(roc, pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	tAlarm, cAlarm, err := alarmHeavy.OptimalThreshold(roc, pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	// Expensive misses push the threshold down (flag more); expensive
	// false alarms push it up.
	if !(tMiss < tAlarm) {
		t.Fatalf("thresholds did not order by cost: miss-heavy %g, alarm-heavy %g", tMiss, tAlarm)
	}
	if cMiss <= 0 || cAlarm <= 0 {
		t.Fatalf("degenerate optimal costs %g, %g", cMiss, cAlarm)
	}
}

func TestOptimalThresholdBeatsFixedPoint(t *testing.T) {
	roc, pos, neg := informativeROC(t)
	m := CostModel{MissCost: 50, FalseAlarmCost: 2, TruePositiveCost: 1}
	_, best, err := m.OptimalThreshold(roc, pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	// The optimum can be no worse than any particular curve point.
	for _, pt := range roc {
		tp := pt.TPR * float64(pos)
		fp := pt.FPR * float64(neg)
		c := (float64(pos)-tp)*m.MissCost + fp*m.FalseAlarmCost + tp*m.TruePositiveCost
		if best > c+1e-9 {
			t.Fatalf("optimal cost %g worse than curve point %g", best, c)
		}
	}
}

func TestOptimalThresholdErrors(t *testing.T) {
	m := CostModel{MissCost: 10, FalseAlarmCost: 1}
	if _, _, err := m.OptimalThreshold(nil, 1, 1); err == nil {
		t.Error("empty ROC accepted")
	}
	if _, _, err := m.OptimalThreshold([]ROCPoint{{}}, 0, 0); err == nil {
		t.Error("empty population accepted")
	}
	bad := CostModel{}
	if _, _, err := bad.OptimalThreshold([]ROCPoint{{}}, 1, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestNeverFlagCorner(t *testing.T) {
	// When false alarms cost more than misses save, the optimum is the
	// (0,0) corner — never flag.
	roc := []ROCPoint{
		{Threshold: math.Inf(1), TPR: 0, FPR: 0},
		{Threshold: 0.5, TPR: 0.5, FPR: 0.5},
	}
	m := CostModel{MissCost: 1, FalseAlarmCost: 100, TruePositiveCost: 0.5}
	thr, _, err := m.OptimalThreshold(roc, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(thr, 1) {
		t.Fatalf("threshold = %g, want +Inf (never flag)", thr)
	}
}
