package metrics

import (
	"fmt"
	"math"
)

// Cost-sensitive evaluation. The paper motivates proactive prediction
// with downtime cost ($8,851/minute across 63 data centres) and
// introduces PDR precisely because acting on a prediction is not free:
// a false alarm triggers pointless migration and service interruption,
// a miss costs data recovery. CostModel makes that trade-off explicit,
// following the cost-sensitive treatment of the first author's earlier
// CSLE work (DATE'22).
type CostModel struct {
	// MissCost is the cost of an undetected failure (data loss,
	// recovery, downtime).
	MissCost float64
	// FalseAlarmCost is the cost of flagging a healthy drive
	// (migration, interruption, needless replacement).
	FalseAlarmCost float64
	// TruePositiveCost is the residual cost of a correctly predicted
	// failure (planned migration); usually far below MissCost.
	TruePositiveCost float64
}

// Validate reports model errors.
func (m CostModel) Validate() error {
	if m.MissCost <= 0 {
		return fmt.Errorf("metrics: MissCost %g must be > 0", m.MissCost)
	}
	if m.FalseAlarmCost < 0 || m.TruePositiveCost < 0 {
		return fmt.Errorf("metrics: costs must be ≥ 0")
	}
	if m.TruePositiveCost >= m.MissCost {
		return fmt.Errorf("metrics: TruePositiveCost %g must be below MissCost %g (otherwise prediction is pointless)",
			m.TruePositiveCost, m.MissCost)
	}
	return nil
}

// Expected returns the total expected cost of operating at the given
// confusion matrix.
func (m CostModel) Expected(c Confusion) float64 {
	return float64(c.FN)*m.MissCost +
		float64(c.FP)*m.FalseAlarmCost +
		float64(c.TP)*m.TruePositiveCost
}

// OptimalThreshold walks a ROC curve built over n samples with pos
// positives and returns the threshold minimising the model's expected
// cost, along with that cost. It lets an operator turn "a miss costs
// 50× a false alarm" directly into an operating point instead of the
// default Youden calibration.
func (m CostModel) OptimalThreshold(points []ROCPoint, pos, neg int) (threshold, cost float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	if len(points) == 0 || pos < 0 || neg < 0 || pos+neg == 0 {
		return 0, 0, fmt.Errorf("metrics: empty ROC or population")
	}
	best := math.Inf(1)
	threshold = 0.5
	for _, pt := range points {
		tp := pt.TPR * float64(pos)
		fn := float64(pos) - tp
		fp := pt.FPR * float64(neg)
		c := fn*m.MissCost + fp*m.FalseAlarmCost + tp*m.TruePositiveCost
		if c < best {
			best = c
			threshold = pt.Threshold
		}
	}
	if math.IsInf(threshold, 1) {
		// The (0,0) corner won: never flag anything.
		threshold = math.Inf(1)
	}
	return threshold, best, nil
}
