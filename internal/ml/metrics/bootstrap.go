package metrics

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a two-sided confidence interval for a rate
// metric by resampling (score, label) pairs with replacement. The
// paper's vendor-IV instability (Fig 11) is exactly the phenomenon this
// quantifies: with few failures the interval is enormous.
//
// metric receives the confusion matrix of one resample at the given
// threshold; iters resamples are drawn; level is the coverage (e.g.
// 0.95). Deterministic in seed.
func BootstrapCI(scores []float64, labels []int, threshold float64,
	metric func(Confusion) float64, iters int, level float64, seed int64) (lo, hi float64, err error) {
	if len(scores) != len(labels) {
		return 0, 0, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return 0, 0, fmt.Errorf("metrics: empty sample")
	}
	if iters < 10 {
		return 0, 0, fmt.Errorf("metrics: iters %d must be ≥ 10", iters)
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("metrics: level %g must be in (0,1)", level)
	}
	r := rand.New(rand.NewSource(seed))
	stats := make([]float64, 0, iters)
	n := len(scores)
	for it := 0; it < iters; it++ {
		var c Confusion
		for i := 0; i < n; i++ {
			j := r.Intn(n)
			pred := 0
			if scores[j] >= threshold {
				pred = 1
			}
			c.Add(pred, labels[j])
		}
		v := metric(c)
		if v == v { // skip NaN resamples (e.g. no positives drawn)
			stats = append(stats, v)
		}
	}
	if len(stats) == 0 {
		return 0, 0, fmt.Errorf("metrics: every resample was degenerate")
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	lo = quantile(stats, alpha)
	hi = quantile(stats, 1-alpha)
	return lo, hi, nil
}

// quantile returns the q-th empirical quantile of sorted xs.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
