package metrics

import (
	"math/rand"
	"testing"
)

func BenchmarkROCFromScores(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 100000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Intn(2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AUC(ROCFromScores(scores, labels))
	}
}
