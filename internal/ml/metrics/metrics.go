// Package metrics implements the evaluation metrics of the paper's
// Section IV: the confusion matrix, accuracy, true/false positive
// rates, the newly introduced positive detection rate (PDR), and the
// ROC curve with its AUC.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add records one (prediction, truth) pair.
func (c *Confusion) Add(predicted, actual int) {
	switch {
	case predicted == 1 && actual == 1:
		c.TP++
	case predicted == 1 && actual == 0:
		c.FP++
	case predicted == 0 && actual == 1:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded cases.
func (c *Confusion) Total() int { return c.TP + c.FP + c.FN + c.TN }

// Accuracy is (TP+TN) / all cases; NaN when empty.
func (c *Confusion) Accuracy() float64 {
	return ratio(float64(c.TP+c.TN), float64(c.Total()))
}

// TPR is TP / (TP+FN), the proportion of faulty cases correctly
// predicted; NaN when there are no positives.
func (c *Confusion) TPR() float64 {
	return ratio(float64(c.TP), float64(c.TP+c.FN))
}

// FPR is FP / (FP+TN), the false alarm expectancy; NaN when there are
// no negatives.
func (c *Confusion) FPR() float64 {
	return ratio(float64(c.FP), float64(c.FP+c.TN))
}

// Precision is TP / (TP+FP); NaN when nothing was predicted positive.
func (c *Confusion) Precision() float64 {
	return ratio(float64(c.TP), float64(c.TP+c.FP))
}

// F1 is the harmonic mean of precision and TPR.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// PDR is the paper's positive detection rate (TP+FP) / all cases: the
// share of the fleet the model would flag for migration, a direct proxy
// for the operational cost of acting on predictions.
func (c *Confusion) PDR() float64 {
	return ratio(float64(c.TP+c.FP), float64(c.Total()))
}

// String formats the matrix and headline rates for reports.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d TPR=%.4f FPR=%.4f ACC=%.4f PDR=%.4f",
		c.TP, c.FP, c.FN, c.TN, c.TPR(), c.FPR(), c.Accuracy(), c.PDR())
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Evaluate scores every sample with clf at the 0.5 threshold and
// returns the confusion matrix.
func Evaluate(clf ml.Classifier, samples []ml.Sample) Confusion {
	return EvaluateAt(clf, samples, 0.5)
}

// EvaluateAt scores samples with a custom probability threshold. The
// scoring pass fans out across GOMAXPROCS goroutines; the matrix is
// identical at any parallelism because aggregation happens in sample
// order.
func EvaluateAt(clf ml.Classifier, samples []ml.Sample, threshold float64) Confusion {
	scores := ml.BatchScores(clf, samples, 0)
	var c Confusion
	for i := range samples {
		pred := 0
		if scores[i] >= threshold {
			pred = 1
		}
		c.Add(pred, samples[i].Y)
	}
	return c
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC computes the ROC curve of clf over samples, one point per
// distinct score, ordered from the (0,0) corner to (1,1). Scoring fans
// out across GOMAXPROCS goroutines with order-stable results.
func ROC(clf ml.Classifier, samples []ml.Sample) []ROCPoint {
	scores := ml.BatchScores(clf, samples, 0)
	labels := make([]int, len(samples))
	for i := range samples {
		labels[i] = samples[i].Y
	}
	return ROCFromScores(scores, labels)
}

// ROCFromScores builds a ROC curve from precomputed scores.
func ROCFromScores(scores []float64, labels []int) []ROCPoint {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores but %d labels", len(scores), len(labels)))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var pos, neg int
	for _, y := range labels {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	points := []ROCPoint{{Threshold: math.Inf(1)}}
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		// Consume all samples sharing one score so ties move the curve
		// diagonally rather than optimistically.
		s := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == s {
			if labels[idx[i]] == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, ROCPoint{
			Threshold: s,
			TPR:       safeDiv(tp, pos),
			FPR:       safeDiv(fp, neg),
		})
	}
	return points
}

func safeDiv(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// AUC returns the area under the ROC curve by trapezoidal rule.
func AUC(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// AUCScore computes the AUC of clf over samples directly.
func AUCScore(clf ml.Classifier, samples []ml.Sample) float64 {
	return AUC(ROC(clf, samples))
}

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRFromScores builds the precision-recall curve from precomputed
// scores, ordered from high thresholds (low recall) to low.
func PRFromScores(scores []float64, labels []int) []PRPoint {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores but %d labels", len(scores), len(labels)))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var pos int
	for _, y := range labels {
		if y == 1 {
			pos++
		}
	}
	var points []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		s := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == s {
			if labels[idx[i]] == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		if tp+fp == 0 {
			continue
		}
		points = append(points, PRPoint{
			Threshold: s,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    safeDiv(tp, pos),
		})
	}
	return points
}

// AveragePrecision computes the area under the precision-recall curve
// by the step-wise (sklearn-style) rule: Σ (R_i − R_{i−1}) · P_i.
func AveragePrecision(points []PRPoint) float64 {
	var ap, prevRecall float64
	for _, p := range points {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap
}
