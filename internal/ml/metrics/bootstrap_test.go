package metrics

import (
	"math/rand"
	"testing"
)

func TestBootstrapCIShrinksWithSampleSize(t *testing.T) {
	mk := func(n int, seed int64) ([]float64, []int) {
		r := rand.New(rand.NewSource(seed))
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			labels[i] = r.Intn(2)
			// 90%-accurate scorer.
			if r.Float64() < 0.9 {
				scores[i] = float64(labels[i])
			} else {
				scores[i] = float64(1 - labels[i])
			}
		}
		return scores, labels
	}
	tpr := func(c Confusion) float64 { return c.TPR() }

	sSmall, lSmall := mk(30, 1)
	loS, hiS, err := BootstrapCI(sSmall, lSmall, 0.5, tpr, 300, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	sBig, lBig := mk(3000, 2)
	loB, hiB, err := BootstrapCI(sBig, lBig, 0.5, tpr, 300, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hiS-loS <= hiB-loB {
		t.Fatalf("CI did not shrink: small %g, big %g", hiS-loS, hiB-loB)
	}
	// Both intervals cover the true 0.9.
	if loB > 0.9 || hiB < 0.9 {
		t.Fatalf("big-sample CI [%g, %g] misses 0.9", loB, hiB)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	scores := []float64{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	labels := []int{1, 0, 1, 0, 0, 1, 1, 0, 1, 1}
	tpr := func(c Confusion) float64 { return c.TPR() }
	lo1, hi1, _ := BootstrapCI(scores, labels, 0.5, tpr, 100, 0.9, 7)
	lo2, hi2, _ := BootstrapCI(scores, labels, 0.5, tpr, 100, 0.9, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("same seed produced different intervals")
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	tpr := func(c Confusion) float64 { return c.TPR() }
	if _, _, err := BootstrapCI([]float64{1}, []int{1, 0}, 0.5, tpr, 100, 0.9, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := BootstrapCI(nil, nil, 0.5, tpr, 100, 0.9, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := BootstrapCI([]float64{1}, []int{1}, 0.5, tpr, 5, 0.9, 1); err == nil {
		t.Error("too few iters accepted")
	}
	if _, _, err := BootstrapCI([]float64{1}, []int{1}, 0.5, tpr, 100, 1.5, 1); err == nil {
		t.Error("bad level accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %g", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %g", q)
	}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("q0.5 = %g", q)
	}
	if q := quantile([]float64{7}, 0.3); q != 7 {
		t.Fatalf("single-element quantile = %g", q)
	}
}
