// Package ml defines the shared sample, classifier, and trainer types
// used by every learning algorithm in the repository. The concrete
// algorithms live in subpackages (bayes, svm, tree, forest, gbdt, nn)
// and are all stdlib-only, from-scratch implementations.
package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sample is one labelled observation: a dense feature vector plus the
// binary health label.
type Sample struct {
	// X is the feature vector; all samples in a set share one length.
	X []float64
	// Y is the label: 1 for faulty (positive), 0 for healthy.
	Y int
	// SN identifies the drive the sample came from, for drive-level
	// aggregation and leakage-free splitting.
	SN string
	// Day is the observation day, for time-based segmentation.
	Day int
}

// Classifier scores feature vectors.
type Classifier interface {
	// PredictProba returns the estimated probability that x is a
	// positive (faulty) sample, in [0, 1].
	PredictProba(x []float64) float64
}

// Predict applies the conventional 0.5 threshold to c's probability.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Trainer builds a classifier from labelled samples.
type Trainer interface {
	// Train fits a model. Implementations must not retain or mutate
	// the samples slice or the vectors inside it.
	Train(samples []Sample) (Classifier, error)
	// Name identifies the algorithm (e.g. "RF", "GBDT").
	Name() string
}

// ValidateSamples checks that samples form a consistent training set:
// non-empty, uniform feature width, labels in {0, 1}, and at least one
// sample of each class when requireBothClasses is set.
func ValidateSamples(samples []Sample, requireBothClasses bool) error {
	if len(samples) == 0 {
		return fmt.Errorf("ml: empty sample set")
	}
	width := len(samples[0].X)
	if width == 0 {
		return fmt.Errorf("ml: zero-width feature vectors")
	}
	var pos, neg int
	for i := range samples {
		if len(samples[i].X) != width {
			return fmt.Errorf("ml: sample %d has width %d, want %d", i, len(samples[i].X), width)
		}
		switch samples[i].Y {
		case 0:
			neg++
		case 1:
			pos++
		default:
			return fmt.Errorf("ml: sample %d has label %d, want 0 or 1", i, samples[i].Y)
		}
	}
	if requireBothClasses && (pos == 0 || neg == 0) {
		return fmt.Errorf("ml: need both classes, have %d positive and %d negative", pos, neg)
	}
	return nil
}

// ClassCounts returns the number of negative and positive samples.
func ClassCounts(samples []Sample) (neg, pos int) {
	for i := range samples {
		if samples[i].Y == 1 {
			pos++
		} else {
			neg++
		}
	}
	return neg, pos
}

// SortByDay orders samples chronologically (stable on equal days), as
// required by the time-series segmentation and cross-validation.
func SortByDay(samples []Sample) {
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Day < samples[j].Day })
}

// Shuffle permutes samples deterministically with the given seed.
func Shuffle(samples []Sample, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
}

// CloneVectors deep-copies the feature vectors of samples, for trainers
// that need to mutate their inputs (e.g. in-place scaling).
func CloneVectors(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i := range samples {
		out[i] = samples[i]
		out[i].X = append([]float64(nil), samples[i].X...)
	}
	return out
}
