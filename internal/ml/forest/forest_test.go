package forest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// rings draws two concentric ring-ish classes — non-linear, solvable by
// axis-aligned ensembles.
func rings(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		x := r.Float64()*4 - 2
		y := r.Float64()*4 - 2
		label := 0
		if x*x+y*y < 1.2 {
			label = 1
		}
		out = append(out, ml.Sample{X: []float64{x, y}, Y: label})
	}
	return out
}

func TestForestAccuracy(t *testing.T) {
	train := rings(1500, 1)
	test := rings(600, 2)
	clf, err := (&Trainer{Trees: 60, MaxDepth: 10, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.93 {
		t.Fatalf("ring accuracy = %g", acc)
	}
}

func TestForestDeterministicDespiteParallelism(t *testing.T) {
	train := rings(400, 3)
	probe := rings(100, 4)
	run := func(workers int) []float64 {
		clf, err := (&Trainer{Trees: 16, Seed: 5, Parallelism: workers}).Train(train)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(probe))
		for i, s := range probe {
			out[i] = clf.PredictProba(s.X)
		}
		return out
	}
	a := run(1)
	b := run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallelism changed the model")
		}
	}
}

func TestForestExactFallbackDeterministicAndAccurate(t *testing.T) {
	// Bins: -1 selects the exact sort-based splitter; it must remain a
	// working, parallel-deterministic engine.
	train := rings(1000, 30)
	test := rings(400, 31)
	run := func(workers int) ml.Classifier {
		clf, err := (&Trainer{Trees: 30, MaxDepth: 10, Seed: 1, Bins: -1, Parallelism: workers}).Train(train)
		if err != nil {
			t.Fatal(err)
		}
		return clf
	}
	serial, parallelClf := run(1), run(8)
	correct := 0
	for _, s := range test {
		if serial.PredictProba(s.X) != parallelClf.PredictProba(s.X) {
			t.Fatal("exact engine: parallelism changed the model")
		}
		if ml.Predict(serial, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Fatalf("exact engine accuracy = %g", acc)
	}
}

func TestForestHistogramMatchesExactOnDiscreteFeatures(t *testing.T) {
	// With fewer distinct values than bins the histogram engine's
	// split search is exact, and weight-based bagging reproduces what
	// bootstrap row copies would: the two engines agree prediction for
	// prediction.
	r := rand.New(rand.NewSource(40))
	var train []ml.Sample
	for i := 0; i < 600; i++ {
		x := float64(r.Intn(20))
		y := 0
		if x > 9 {
			y = 1
		}
		train = append(train, ml.Sample{X: []float64{x, float64(r.Intn(6))}, Y: y})
	}
	hist, err := (&Trainer{Trees: 12, MaxDepth: 8, Seed: 3}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&Trainer{Trees: 12, MaxDepth: 8, Seed: 3, Bins: -1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x := []float64{float64(r.Intn(20)), float64(r.Intn(6))}
		if hist.PredictProba(x) != exact.PredictProba(x) {
			t.Fatalf("engines disagree at %v: %g vs %g", x, hist.PredictProba(x), exact.PredictProba(x))
		}
	}
}

func TestForestRejectsNaNFeatures(t *testing.T) {
	train := rings(50, 32)
	train[7].X[1] = math.NaN()
	if _, err := (&Trainer{Trees: 3, Seed: 1}).Train(train); err == nil {
		t.Fatal("NaN features accepted by the histogram engine")
	}
}

func TestForestSmallBinBudgetStillLearns(t *testing.T) {
	train := rings(1500, 33)
	test := rings(600, 34)
	clf, err := (&Trainer{Trees: 40, MaxDepth: 10, Seed: 1, Bins: 16}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Fatalf("16-bin accuracy = %g", acc)
	}
}

func TestForestSeedMatters(t *testing.T) {
	train := rings(400, 6)
	a, _ := (&Trainer{Trees: 8, Seed: 1}).Train(train)
	b, _ := (&Trainer{Trees: 8, Seed: 2}).Train(train)
	same := true
	for _, s := range rings(50, 7) {
		if a.PredictProba(s.X) != b.PredictProba(s.X) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical forests")
	}
}

func TestForestSize(t *testing.T) {
	clf, err := (&Trainer{Trees: 7, Seed: 1}).Train(rings(100, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := clf.(*Model).Size(); got != 7 {
		t.Fatalf("Size = %d, want 7", got)
	}
}

func TestForestProbabilityBounds(t *testing.T) {
	clf, err := (&Trainer{Trees: 10, Seed: 1}).Train(rings(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rings(200, 10) {
		p := clf.PredictProba(s.X)
		if p < 0 || p > 1 {
			t.Fatalf("probability %g out of bounds", p)
		}
	}
}

func TestForestValidates(t *testing.T) {
	if _, err := (&Trainer{}).Train(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestForestBeatsSingleTreeOnNoise(t *testing.T) {
	// Flip 15% of training labels; the bagged ensemble should
	// generalise at least as well as one fully grown tree.
	r := rand.New(rand.NewSource(11))
	train := rings(1200, 12)
	for i := range train {
		if r.Float64() < 0.15 {
			train[i].Y = 1 - train[i].Y
		}
	}
	test := rings(600, 13)
	acc := func(clf ml.Classifier) float64 {
		correct := 0
		for _, s := range test {
			if ml.Predict(clf, s.X) == s.Y {
				correct++
			}
		}
		return float64(correct) / float64(len(test))
	}
	forest, err := (&Trainer{Trees: 50, MaxDepth: 12, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&Trainer{Trees: 1, MaxDepth: 12, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc(forest) < acc(single)-0.01 {
		t.Fatalf("forest %.3f worse than single tree %.3f on noisy data", acc(forest), acc(single))
	}
}

func TestFeatureImportance(t *testing.T) {
	// Feature 0 carries the whole signal; feature 1 is noise.
	r := rand.New(rand.NewSource(20))
	var train []ml.Sample
	for i := 0; i < 600; i++ {
		v := r.NormFloat64()
		y := 0
		if v > 0 {
			y = 1
		}
		train = append(train, ml.Sample{X: []float64{v, r.NormFloat64()}, Y: y})
	}
	clf, err := (&Trainer{Trees: 30, MaxDepth: 6, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	imp := clf.(*Model).FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance width = %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %g", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importances sum to %g", sum)
	}
	if imp[0] < 0.7 {
		t.Fatalf("signal feature importance = %g, want dominant", imp[0])
	}
}

func TestForestExplainFaithful(t *testing.T) {
	train := rings(800, 21)
	clf, err := (&Trainer{Trees: 20, MaxDepth: 8, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	for _, s := range rings(50, 22) {
		contrib, bias := m.Explain(s.X)
		sum := bias
		for _, c := range contrib {
			sum += c
		}
		if diff := sum - m.PredictProba(s.X); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("explanation off by %g", diff)
		}
	}
}

func TestForestBatchMatchesPerRowExactly(t *testing.T) {
	clf, err := (&Trainer{Trees: 40, MaxDepth: 10, Seed: 1}).Train(rings(800, 40))
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	probe := rings(700, 41) // straddles the batch kernel's block size
	xs := make([][]float64, len(probe))
	want := make([]float64, len(probe))
	for i := range probe {
		xs[i] = probe[i].X
		want[i] = m.PredictProba(probe[i].X)
	}
	for _, workers := range []int{1, 3, 0} {
		out := make([]float64, len(xs))
		m.PredictProbaBatch(xs, out, workers)
		for i := range out {
			if out[i] != want[i] { // bit-exact, not approximate
				t.Fatalf("workers=%d row %d: batch %v != per-row %v", workers, i, out[i], want[i])
			}
		}
	}
	// The model must surface the fast path through the ml interface.
	var _ ml.BatchClassifier = m
	scores := ml.BatchScores(m, probe, 0)
	for i := range scores {
		if scores[i] != want[i] {
			t.Fatalf("BatchScores row %d: %v != %v", i, scores[i], want[i])
		}
	}
}
