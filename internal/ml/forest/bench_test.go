package forest

import (
	"testing"

	"repro/internal/ml"
)

func benchData(n int) []ml.Sample { return rings(n, 1) }

func BenchmarkForestTrain(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrainExact measures the legacy sort-based splitter
// (Bins: -1) on the same workload, the denominator of the histogram
// engine's speedup.
func BenchmarkForestTrainExact(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Bins: -1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrainSerial pins training to one goroutine, isolating
// the per-tree cost of the histogram engine from the parallel speedup.
func BenchmarkForestTrainSerial(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Parallelism: 1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestTrainSerialExact(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Parallelism: 1, Bins: -1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	train := benchData(2000)
	clf, err := (&Trainer{Trees: 100, MaxDepth: 12, Seed: 1}).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	x := train[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.PredictProba(x)
	}
}

func BenchmarkForestExplain(b *testing.B) {
	train := benchData(2000)
	clf, err := (&Trainer{Trees: 100, MaxDepth: 12, Seed: 1}).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	m := clf.(*Model)
	x := train[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Explain(x)
	}
}
