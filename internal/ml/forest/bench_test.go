package forest

import (
	"testing"

	"repro/internal/ml"
)

func benchData(n int) []ml.Sample { return rings(n, 1) }

func BenchmarkForestTrain(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrainExact measures the legacy sort-based splitter
// (Bins: -1) on the same workload, the denominator of the histogram
// engine's speedup.
func BenchmarkForestTrainExact(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Bins: -1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrainSerial pins training to one goroutine, isolating
// the per-tree cost of the histogram engine from the parallel speedup.
func BenchmarkForestTrainSerial(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Parallelism: 1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestTrainSerialExact(b *testing.B) {
	train := benchData(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Parallelism: 1, Bins: -1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	train := benchData(2000)
	clf, err := (&Trainer{Trees: 100, MaxDepth: 12, Seed: 1}).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	x := train[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.PredictProba(x)
	}
}

func BenchmarkForestExplain(b *testing.B) {
	train := benchData(2000)
	clf, err := (&Trainer{Trees: 100, MaxDepth: 12, Seed: 1}).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	m := clf.(*Model)
	x := train[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Explain(x)
	}
}

// perRowOnly hides the model's BatchClassifier implementation so
// benchmarks can measure the legacy per-row interface path.
type perRowOnly struct{ ml.Classifier }

// BenchmarkForestScoreBatch measures fleet-style scoring through the
// flattened batch kernel at GOMAXPROCS workers.
func BenchmarkForestScoreBatch(b *testing.B) {
	clf, err := (&Trainer{Trees: 100, MaxDepth: 12, Seed: 1}).Train(benchData(2000))
	if err != nil {
		b.Fatal(err)
	}
	probe := rings(10000, 2)
	clf.(*Model).flatten() // compile outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.BatchScores(clf, probe, 0)
	}
}

// BenchmarkForestScorePerRow is the same workload through the per-row
// interface path (batch detection suppressed), the speedup denominator.
func BenchmarkForestScorePerRow(b *testing.B) {
	clf, err := (&Trainer{Trees: 100, MaxDepth: 12, Seed: 1}).Train(benchData(2000))
	if err != nil {
		b.Fatal(err)
	}
	probe := rings(10000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.BatchScores(perRowOnly{clf}, probe, 0)
	}
}
