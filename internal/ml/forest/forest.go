// Package forest implements a random forest of CART gini trees with
// bootstrap bagging and per-split feature subsampling — the algorithm
// the paper finds best for MFPA (98.18% TPR / 0.56% FPR with SFWB
// features; "the tree-based model is superior to other models for
// discontinuous data"). Trees are grown in parallel across goroutines.
//
// By default training runs on the histogram engine: the features are
// quantile-binned once into a shared columnar matrix, each bootstrap
// is expressed as per-row integer weights on that matrix (no row
// copies), and every tree finds splits by histogram accumulation
// instead of per-node sorting. Bins: -1 falls back to the exact
// sort-based splitter.
package forest

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ml"
	"repro/internal/ml/matrix"
	"repro/internal/ml/predict"
	"repro/internal/ml/tree"
	"repro/internal/parallel"
)

// Trainer configures random forest training.
type Trainer struct {
	// Trees is the ensemble size; 0 selects 100.
	Trees int
	// MaxDepth bounds each tree; 0 selects 12.
	MaxDepth int
	// MinSamplesLeaf is per-leaf minimum; 0 selects 1.
	MinSamplesLeaf int
	// MaxFeatures per split; 0 selects √width.
	MaxFeatures int
	// Bins is the histogram engine's per-feature bin budget: 0 selects
	// matrix.DefaultBins (256), positive values are clamped to at most
	// 256, and any negative value selects the exact sort-based
	// splitter instead (the legacy engine; bit-identical to the
	// histogram engine when bins cover every distinct value).
	Bins int
	// Seed drives bootstrap sampling and per-tree feature subsampling.
	Seed int64
	// Parallelism bounds the training goroutines; 0 selects GOMAXPROCS.
	Parallelism int
}

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "RF" }

// Train implements ml.Trainer.
func (t *Trainer) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, false); err != nil {
		return nil, err
	}
	nTrees := t.Trees
	if nTrees == 0 {
		nTrees = 100
	}
	maxFeatures := t.MaxFeatures
	if maxFeatures == 0 {
		maxFeatures = -1 // tree.Config: √width
	}
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
		ys[i] = float64(samples[i].Y)
	}

	// Pre-draw one bootstrap seed per tree from a master source so the
	// result does not depend on goroutine scheduling.
	master := rand.New(rand.NewSource(t.Seed + 101))
	seeds := make([]int64, nTrees)
	for i := range seeds {
		seeds[i] = master.Int63()
	}

	cfg := func(ti int) tree.Config {
		return tree.Config{
			MaxDepth:       t.MaxDepth,
			MinSamplesLeaf: t.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
			Seed:           seeds[ti],
		}
	}
	m := &Model{trees: make([]*tree.Classifier, nTrees)}

	if t.Bins < 0 {
		// Exact fallback: per-tree bootstrap copies and sort-based
		// split finding on the raw matrix.
		if err := parallel.Do(nTrees, t.Parallelism, func(ti int) error {
			r := rand.New(rand.NewSource(seeds[ti]))
			bootXs := make([][]float64, len(xs))
			bootYs := make([]float64, len(xs))
			for i := range bootXs {
				j := r.Intn(len(xs))
				bootXs[i] = xs[j]
				bootYs[i] = ys[j]
			}
			m.trees[ti] = tree.GrowClassifier(bootXs, bootYs, cfg(ti))
			return nil
		}); err != nil {
			return nil, err
		}
		return m, nil
	}

	// Histogram engine: bin once, share the matrix read-only across
	// all trees, and express each bootstrap as integer row weights.
	bm, err := matrix.BuildWorkers(xs, t.Bins, t.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	if err := parallel.Do(nTrees, t.Parallelism, func(ti int) error {
		r := rand.New(rand.NewSource(seeds[ti]))
		w := make([]int, len(xs))
		for i := 0; i < len(xs); i++ {
			w[r.Intn(len(xs))]++
		}
		m.trees[ti] = tree.GrowClassifierBinned(bm, ys, w, cfg(ti))
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// TrainView implements ml.ViewTrainer: it trains on a zero-copy view
// of a columnar SampleSet, reusing the *set-wide* binned matrix
// (built once per set and cached there — the bin-once contract), so a
// grid-search candidate or CV fold costs only tree growth. Bootstraps
// are drawn over the view's rows and expressed as per-row weights on
// the shared matrix; the candidate rows are handed to the grower in
// view order, which makes every tree identical to one grown on a
// privately binned copy of the subset whenever the bin budget covers
// each feature's distinct values (the exactness regime — see
// internal/ml/matrix). A column sub-view (v.Cols) restricts split
// search without re-extracting features; grown trees keep global
// feature indexes and predict on full-width rows.
func (t *Trainer) TrainView(v ml.View) (ml.Classifier, error) {
	if t.Bins < 0 {
		// Exact engine: no shared binned matrix to reuse; fall back to
		// the slice path on a materialised (header-only or masked) view.
		return t.Train(v.Materialize())
	}
	if err := ml.ValidateView(v, false); err != nil {
		return nil, err
	}
	set := v.Set()
	bm, err := matrix.SharedFromSet(set, t.Bins, t.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	ys := set.LabelsFloat()
	n := v.Len()

	nTrees := t.Trees
	if nTrees == 0 {
		nTrees = 100
	}
	maxFeatures := t.MaxFeatures
	if maxFeatures == 0 {
		maxFeatures = -1 // tree.Config: √width
	}
	master := rand.New(rand.NewSource(t.Seed + 101))
	seeds := make([]int64, nTrees)
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	m := &Model{trees: make([]*tree.Classifier, nTrees)}
	if err := parallel.Do(nTrees, t.Parallelism, func(ti int) error {
		r := rand.New(rand.NewSource(seeds[ti]))
		// Bootstrap counts by view position — O(view), never O(set) —
		// then compacted to surviving rows in view order (weights
		// parallel to rows, the GrowClassifierBinnedView contract), so
		// histogram accumulation visits them exactly as the subset
		// engine would.
		w := make([]int, n)
		for i := 0; i < n; i++ {
			w[r.Intn(n)]++
		}
		rows := make([]int, 0, n)
		wts := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if w[i] > 0 {
				rows = append(rows, int(v.RowIndex(i)))
				wts = append(wts, w[i])
			}
		}
		m.trees[ti] = tree.GrowClassifierBinnedView(bm, ys, wts, rows, v.Cols(), tree.Config{
			MaxDepth:       t.MaxDepth,
			MinSamplesLeaf: t.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
			Seed:           seeds[ti],
		})
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// Model is a fitted random forest.
type Model struct {
	trees []*tree.Classifier

	// flat is the compiled batch inference form, built lazily on the
	// first batch call so training and Import stay cheap; models
	// reconstructed by modelio therefore rebuild it automatically.
	flatOnce sync.Once
	flat     *predict.Ensemble
}

// PredictProba implements ml.Classifier: the mean of the trees' leaf
// probabilities.
func (m *Model) PredictProba(x []float64) float64 {
	var s float64
	for _, t := range m.trees {
		s += t.PredictProba(x)
	}
	return s / float64(len(m.trees))
}

// flatten compiles (once) the flattened inference arena. Compilation
// from a fitted model's own trees cannot fail; a nil return covers the
// degenerate empty model.
func (m *Model) flatten() *predict.Ensemble {
	m.flatOnce.Do(func() {
		exported := make([]tree.Exported, len(m.trees))
		for i, t := range m.trees {
			exported[i] = t.Export()
		}
		if e, err := predict.CompileForest(exported); err == nil {
			m.flat = e
		}
	})
	return m.flat
}

// PredictProbaBatch implements ml.BatchClassifier on the flattened
// arena: scores are bit-exact against PredictProba at any worker count
// (0 = GOMAXPROCS, 1 = serial).
func (m *Model) PredictProbaBatch(xs [][]float64, out []float64, workers int) {
	if e := m.flatten(); e != nil {
		e.PredictProbaBatch(xs, out, workers)
		return
	}
	_ = parallel.Do(len(xs), workers, func(i int) error {
		out[i] = m.PredictProba(xs[i])
		return nil
	})
}

// Size returns the ensemble size.
func (m *Model) Size() int { return len(m.trees) }

// FeatureImportance returns the normalised mean-decrease-in-impurity
// importance of each feature across the ensemble. The vector sums to 1
// (or is all-zero for stump-only forests).
func (m *Model) FeatureImportance() []float64 {
	if len(m.trees) == 0 {
		return nil
	}
	var imp []float64
	for _, t := range m.trees {
		ti := t.FeatureImportance()
		if imp == nil {
			imp = make([]float64, len(ti))
		}
		for i, v := range ti {
			imp[i] += v
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Exported is the forest's serialisation form.
type Exported struct {
	Trees []tree.Exported
}

// Export returns the model's serialisation form.
func (m *Model) Export() Exported {
	out := Exported{Trees: make([]tree.Exported, len(m.trees))}
	for i, t := range m.trees {
		out.Trees[i] = t.Export()
	}
	return out
}

// Import reconstructs a forest from its serialisation form.
func Import(e Exported) (*Model, error) {
	if len(e.Trees) == 0 {
		return nil, fmt.Errorf("forest: empty export")
	}
	m := &Model{trees: make([]*tree.Classifier, len(e.Trees))}
	for i, te := range e.Trees {
		t, err := tree.ImportClassifier(te)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		m.trees[i] = t
	}
	return m, nil
}

// Explain returns the per-feature contributions for x averaged across
// the ensemble, plus the mean bias. bias + Σ contributions equals
// PredictProba(x) exactly, so the decomposition is faithful.
func (m *Model) Explain(x []float64) (contributions []float64, bias float64) {
	if len(m.trees) == 0 {
		return nil, 0
	}
	var sum []float64
	for _, t := range m.trees {
		c, b := t.Explain(x)
		if sum == nil {
			sum = make([]float64, len(c))
		}
		for i, v := range c {
			sum[i] += v
		}
		bias += b
	}
	n := float64(len(m.trees))
	for i := range sum {
		sum[i] /= n
	}
	return sum, bias / n
}
