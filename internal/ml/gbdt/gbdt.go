// Package gbdt implements gradient-boosted decision trees for binary
// classification with logistic loss (Friedman's TreeBoost with Newton
// leaf updates), one of the paper's five candidate algorithms.
//
// By default each round's regression tree is grown by the histogram
// engine on a columnar binned matrix built once per training run —
// the feature geometry never changes across rounds, only the gradient
// targets do — with stochastic-gradient-boosting row subsampling
// expressed as 0/1 row weights. Bins: -1 falls back to the exact
// sort-based splitter.
package gbdt

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/ml"
	"repro/internal/ml/matrix"
	"repro/internal/ml/predict"
	"repro/internal/ml/tree"
	"repro/internal/parallel"
)

// Trainer configures boosting.
type Trainer struct {
	// Rounds is the number of boosting iterations; 0 selects 100.
	Rounds int
	// LearningRate shrinks each tree's contribution; 0 selects 0.1.
	LearningRate float64
	// MaxDepth bounds each regression tree; 0 selects 4.
	MaxDepth int
	// MinSamplesLeaf is per-leaf minimum; 0 selects 5.
	MinSamplesLeaf int
	// Subsample is the stochastic-gradient-boosting row fraction per
	// round; 0 selects 1 (no subsampling).
	Subsample float64
	// Bins is the histogram engine's per-feature bin budget: 0 selects
	// matrix.DefaultBins (256), positive values are clamped to at most
	// 256, and any negative value selects the exact sort-based
	// splitter instead.
	Bins int
	// Seed drives subsampling.
	Seed int64
}

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "GBDT" }

// Train implements ml.Trainer.
func (t *Trainer) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, true); err != nil {
		return nil, err
	}
	rounds := t.Rounds
	if rounds == 0 {
		rounds = 100
	}
	lr := t.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	maxDepth := t.MaxDepth
	if maxDepth == 0 {
		maxDepth = 4
	}
	minLeaf := t.MinSamplesLeaf
	if minLeaf == 0 {
		minLeaf = 5
	}
	sub := t.Subsample
	if sub == 0 {
		sub = 1
	}

	n := len(samples)
	xs := make([][]float64, n)
	ys := make([]float64, n) // {0,1}
	for i := range samples {
		xs[i] = samples[i].X
		ys[i] = float64(samples[i].Y)
	}

	// F0 = log-odds of the base rate.
	pos := 0.0
	for _, y := range ys {
		pos += y
	}
	p0 := clampP(pos / float64(n))
	m := &Model{bias: math.Log(p0 / (1 - p0)), lr: lr}

	f := make([]float64, n) // current raw scores
	for i := range f {
		f[i] = m.bias
	}
	grad := make([]float64, n)
	r := rand.New(rand.NewSource(t.Seed + 7))

	// Histogram engine: the binned matrix depends only on the feature
	// matrix, so it is built once and reused by every boosting round.
	var bm *matrix.BinnedMatrix
	var weights []int
	if t.Bins >= 0 {
		var err error
		bm, err = matrix.Build(xs, t.Bins)
		if err != nil {
			return nil, fmt.Errorf("gbdt: %w", err)
		}
		weights = make([]int, n)
	}

	for round := 0; round < rounds; round++ {
		// Negative gradient of logistic loss: y − p.
		for i := range grad {
			grad[i] = ys[i] - sigmoid(f[i])
		}
		rowIdx := allIdx(n)
		if sub < 1 {
			k := int(sub * float64(n))
			if k < 2 {
				k = 2
			}
			rowIdx = r.Perm(n)[:k]
		}
		treeCfg := tree.Config{
			MaxDepth:       maxDepth,
			MinSamplesLeaf: minLeaf,
			Seed:           t.Seed + int64(round)*9973,
		}
		var tr *tree.Regressor
		if bm != nil {
			for i := range weights {
				weights[i] = 0
			}
			for _, i := range rowIdx {
				weights[i] = 1
			}
			tr = tree.GrowRegressorBinned(bm, grad, weights, treeCfg)
		} else {
			rowXs := make([][]float64, len(rowIdx))
			rowGrad := make([]float64, len(rowIdx))
			for j, i := range rowIdx {
				rowXs[j] = xs[i]
				rowGrad[j] = grad[i]
			}
			tr = tree.GrowRegressor(rowXs, rowGrad, treeCfg)
		}

		// Newton leaf values: γ = Σ(y−p) / Σ p(1−p) over leaf members.
		nl := tr.NumLeaves()
		num := make([]float64, nl)
		den := make([]float64, nl)
		for _, i := range rowIdx {
			leaf := tr.Apply(xs[i])
			p := sigmoid(f[i])
			num[leaf] += grad[i]
			den[leaf] += p * (1 - p)
		}
		for leaf := 0; leaf < nl; leaf++ {
			gamma := 0.0
			if den[leaf] > 1e-12 {
				gamma = num[leaf] / den[leaf]
			}
			// Clip extreme Newton steps for numerical stability.
			if gamma > 4 {
				gamma = 4
			} else if gamma < -4 {
				gamma = -4
			}
			tr.SetLeafValue(leaf, gamma)
		}
		m.trees = append(m.trees, tr)
		for i := range f {
			f[i] += lr * tr.Predict(xs[i])
		}
	}
	return m, nil
}

// TrainView implements ml.ViewTrainer: boosting on a zero-copy view
// of a columnar SampleSet. The binned matrix is the *set-wide* one
// (built once per set, cached there — the bin-once contract), so a
// grid-search candidate or CV fold pays only for tree growth: each
// round's subsample is expressed as 0/1 weights on the shared matrix
// with the selected rows handed to the grower in view order, making
// every round identical to boosting on a privately binned subset copy
// in the exactness regime (see internal/ml/matrix). A column sub-view
// restricts split search; trees keep global feature indexes and read
// their rows straight out of the arena.
func (t *Trainer) TrainView(v ml.View) (ml.Classifier, error) {
	if t.Bins < 0 {
		return t.Train(v.Materialize())
	}
	if err := ml.ValidateView(v, true); err != nil {
		return nil, err
	}
	rounds := t.Rounds
	if rounds == 0 {
		rounds = 100
	}
	lr := t.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	maxDepth := t.MaxDepth
	if maxDepth == 0 {
		maxDepth = 4
	}
	minLeaf := t.MinSamplesLeaf
	if minLeaf == 0 {
		minLeaf = 5
	}
	sub := t.Subsample
	if sub == 0 {
		sub = 1
	}

	set := v.Set()
	bm, err := matrix.SharedFromSet(set, t.Bins, 1)
	if err != nil {
		return nil, fmt.Errorf("gbdt: %w", err)
	}
	n := v.Len()
	ysv := make([]float64, n) // view-space {0,1} targets
	pos := 0.0
	for i := 0; i < n; i++ {
		ysv[i] = float64(v.Y(i))
		pos += ysv[i]
	}
	p0 := clampP(pos / float64(n))
	m := &Model{bias: math.Log(p0 / (1 - p0)), lr: lr}

	f := make([]float64, n) // current raw scores, view space
	for i := range f {
		f[i] = m.bias
	}
	grad := make([]float64, n)
	r := rand.New(rand.NewSource(t.Seed + 7))

	// Matrix-space gradient targets, reused across rounds: written only
	// at the selected rows each round, so per-round cost stays O(view).
	// Subsample membership is the rows list itself — every selected row
	// has weight 1, which nil weights expresses without O(set) scratch.
	gradFull := make([]float64, set.Len())
	mark := make([]bool, n)
	rows := make([]int, 0, n)

	for round := 0; round < rounds; round++ {
		for i := range grad {
			grad[i] = ysv[i] - sigmoid(f[i])
		}
		rowIdx := allIdx(n)
		if sub < 1 {
			k := int(sub * float64(n))
			if k < 2 {
				k = 2
			}
			rowIdx = r.Perm(n)[:k]
		}
		for _, p := range rowIdx {
			mark[p] = true
		}
		rows = rows[:0]
		for p := 0; p < n; p++ {
			if mark[p] {
				gi := int(v.RowIndex(p))
				rows = append(rows, gi)
				gradFull[gi] = grad[p]
			}
		}
		tr := tree.GrowRegressorBinnedView(bm, gradFull, nil, rows, v.Cols(), tree.Config{
			MaxDepth:       maxDepth,
			MinSamplesLeaf: minLeaf,
			Seed:           t.Seed + int64(round)*9973,
		})
		for _, p := range rowIdx {
			mark[p] = false
		}

		// Newton leaf values, iterated in subsample order exactly as the
		// slice engine does.
		nl := tr.NumLeaves()
		num := make([]float64, nl)
		den := make([]float64, nl)
		for _, p := range rowIdx {
			leaf := tr.Apply(v.Row(p))
			pp := sigmoid(f[p])
			num[leaf] += grad[p]
			den[leaf] += pp * (1 - pp)
		}
		for leaf := 0; leaf < nl; leaf++ {
			gamma := 0.0
			if den[leaf] > 1e-12 {
				gamma = num[leaf] / den[leaf]
			}
			if gamma > 4 {
				gamma = 4
			} else if gamma < -4 {
				gamma = -4
			}
			tr.SetLeafValue(leaf, gamma)
		}
		m.trees = append(m.trees, tr)
		for i := range f {
			f[i] += lr * tr.Predict(v.Row(i))
		}
	}
	return m, nil
}

// Model is a fitted gradient-boosted ensemble.
type Model struct {
	bias  float64
	lr    float64
	trees []*tree.Regressor

	// flat is the compiled batch inference form, built lazily on the
	// first batch call so training and Import stay cheap; models
	// reconstructed by modelio therefore rebuild it automatically.
	flatOnce sync.Once
	flat     *predict.Ensemble
}

// RawScore returns the additive log-odds score of x.
func (m *Model) RawScore(x []float64) float64 {
	s := m.bias
	for _, t := range m.trees {
		s += m.lr * t.Predict(x)
	}
	return s
}

// PredictProba implements ml.Classifier.
func (m *Model) PredictProba(x []float64) float64 { return sigmoid(m.RawScore(x)) }

// flatten compiles (once) the flattened inference arena. Compilation
// from a fitted model's own trees cannot fail; a nil return covers
// defensive failure.
func (m *Model) flatten() *predict.Ensemble {
	m.flatOnce.Do(func() {
		exported := make([]tree.Exported, len(m.trees))
		for i, t := range m.trees {
			exported[i] = t.Export()
		}
		if e, err := predict.CompileGBDT(exported, m.bias, m.lr); err == nil {
			m.flat = e
		}
	})
	return m.flat
}

// PredictProbaBatch implements ml.BatchClassifier on the flattened
// arena: scores are bit-exact against PredictProba at any worker count
// (0 = GOMAXPROCS, 1 = serial).
func (m *Model) PredictProbaBatch(xs [][]float64, out []float64, workers int) {
	if e := m.flatten(); e != nil {
		e.PredictProbaBatch(xs, out, workers)
		return
	}
	_ = parallel.Do(len(xs), workers, func(i int) error {
		out[i] = m.PredictProba(xs[i])
		return nil
	})
}

// Rounds returns the number of boosted trees.
func (m *Model) Rounds() int { return len(m.trees) }

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func clampP(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Exported is the ensemble's serialisation form.
type Exported struct {
	Bias         float64
	LearningRate float64
	Trees        []tree.Exported
}

// Export returns the model's serialisation form.
func (m *Model) Export() Exported {
	e := Exported{Bias: m.bias, LearningRate: m.lr, Trees: make([]tree.Exported, len(m.trees))}
	for i, t := range m.trees {
		e.Trees[i] = t.Export()
	}
	return e
}

// Import reconstructs an ensemble from its serialisation form.
func Import(e Exported) (*Model, error) {
	if e.LearningRate <= 0 {
		return nil, fmt.Errorf("gbdt: non-positive learning rate in export")
	}
	m := &Model{bias: e.Bias, lr: e.LearningRate, trees: make([]*tree.Regressor, len(e.Trees))}
	for i, te := range e.Trees {
		t, err := tree.ImportRegressor(te)
		if err != nil {
			return nil, fmt.Errorf("gbdt: tree %d: %w", i, err)
		}
		m.trees[i] = t
	}
	return m, nil
}
