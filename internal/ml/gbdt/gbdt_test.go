package gbdt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func moons(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		t := r.Float64() * math.Pi
		noise := func() float64 { return 0.15 * r.NormFloat64() }
		out = append(out,
			ml.Sample{X: []float64{math.Cos(t) + noise(), math.Sin(t) + noise()}, Y: 0},
			ml.Sample{X: []float64{1 - math.Cos(t) + noise(), 0.5 - math.Sin(t) + noise()}, Y: 1},
		)
	}
	return out
}

func TestGBDTAccuracy(t *testing.T) {
	train := moons(500, 1)
	test := moons(300, 2)
	clf, err := (&Trainer{Rounds: 80, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.95 {
		t.Fatalf("moons accuracy = %g", acc)
	}
}

func TestMoreRoundsReduceTrainingLoss(t *testing.T) {
	train := moons(300, 3)
	logloss := func(clf ml.Classifier) float64 {
		var sum float64
		for _, s := range train {
			p := clf.PredictProba(s.X)
			p = math.Min(math.Max(p, 1e-9), 1-1e-9)
			if s.Y == 1 {
				sum -= math.Log(p)
			} else {
				sum -= math.Log(1 - p)
			}
		}
		return sum / float64(len(train))
	}
	few, err := (&Trainer{Rounds: 5, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	many, err := (&Trainer{Rounds: 100, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if logloss(many) >= logloss(few) {
		t.Fatalf("loss did not decrease: %g → %g", logloss(few), logloss(many))
	}
}

func TestBiasMatchesBaseRate(t *testing.T) {
	// With zero-information features, the prediction should collapse to
	// the base rate.
	var train []ml.Sample
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 800; i++ {
		y := 0
		if i%4 == 0 { // 25% positive
			y = 1
		}
		train = append(train, ml.Sample{X: []float64{r.Float64()}, Y: y})
	}
	clf, err := (&Trainer{Rounds: 10, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 100; i++ {
		sum += clf.PredictProba([]float64{r.Float64()})
	}
	if mean := sum / 100; math.Abs(mean-0.25) > 0.12 {
		t.Fatalf("mean probability %g far from base rate 0.25", mean)
	}
}

func TestSubsampleStillLearns(t *testing.T) {
	train := moons(500, 5)
	clf, err := (&Trainer{Rounds: 80, Subsample: 0.6, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range train {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(train)); acc < 0.93 {
		t.Fatalf("stochastic GBDT accuracy = %g", acc)
	}
}

func TestRoundsAccessor(t *testing.T) {
	clf, err := (&Trainer{Rounds: 17, Seed: 1}).Train(moons(100, 6))
	if err != nil {
		t.Fatal(err)
	}
	if got := clf.(*Model).Rounds(); got != 17 {
		t.Fatalf("Rounds = %d, want 17", got)
	}
}

func TestProbabilityBounds(t *testing.T) {
	clf, err := (&Trainer{Rounds: 40, Seed: 1}).Train(moons(200, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range moons(200, 8) {
		p := clf.PredictProba(s.X)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("probability %g out of bounds", p)
		}
	}
}

func TestDeterministic(t *testing.T) {
	train := moons(200, 9)
	a, _ := (&Trainer{Rounds: 20, Subsample: 0.7, Seed: 3}).Train(train)
	b, _ := (&Trainer{Rounds: 20, Subsample: 0.7, Seed: 3}).Train(train)
	for _, s := range moons(50, 10) {
		if a.PredictProba(s.X) != b.PredictProba(s.X) {
			t.Fatal("same seed produced different ensembles")
		}
	}
}

func TestExactFallbackStillLearns(t *testing.T) {
	// Bins: -1 selects the exact sort-based splitter.
	train := moons(500, 40)
	test := moons(300, 41)
	clf, err := (&Trainer{Rounds: 80, Seed: 1, Bins: -1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.95 {
		t.Fatalf("exact-engine moons accuracy = %g", acc)
	}
}

func TestHistogramMatchesExactOnDiscreteFeatures(t *testing.T) {
	// On features with fewer distinct values than bins the histogram
	// split search evaluates the same candidates at the same
	// thresholds as the exact engine, so the boosted ensembles agree
	// score for score.
	r := rand.New(rand.NewSource(42))
	var train []ml.Sample
	for i := 0; i < 400; i++ {
		x := float64(r.Intn(15))
		y := 0
		if x > 7 {
			y = 1
		}
		train = append(train, ml.Sample{X: []float64{x, float64(r.Intn(4))}, Y: y})
	}
	hist, err := (&Trainer{Rounds: 30, Seed: 5, Subsample: 0.8}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&Trainer{Rounds: 30, Seed: 5, Subsample: 0.8, Bins: -1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		x := []float64{float64(r.Intn(15)), float64(r.Intn(4))}
		if hist.PredictProba(x) != exact.PredictProba(x) {
			t.Fatalf("engines disagree at %v: %g vs %g", x, hist.PredictProba(x), exact.PredictProba(x))
		}
	}
}

func TestRejectsNaNFeatures(t *testing.T) {
	train := moons(50, 43)
	train[3].X[0] = math.NaN()
	if _, err := (&Trainer{Rounds: 5, Seed: 1}).Train(train); err == nil {
		t.Fatal("NaN features accepted by the histogram engine")
	}
}

func TestRequiresBothClasses(t *testing.T) {
	if _, err := (&Trainer{}).Train([]ml.Sample{{X: []float64{1}, Y: 1}}); err == nil {
		t.Fatal("single-class training accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	train := moons(150, 30)
	clf, err := (&Trainer{Rounds: 20, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	restored, err := Import(m.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range moons(40, 31) {
		if restored.PredictProba(s.X) != m.PredictProba(s.X) {
			t.Fatal("round trip changed predictions")
		}
	}
	if restored.Rounds() != m.Rounds() {
		t.Fatal("round count changed")
	}
}

func TestImportRejectsCorrupt(t *testing.T) {
	if _, err := Import(Exported{LearningRate: 0}); err == nil {
		t.Error("zero learning rate accepted")
	}
}

func TestGBDTBatchMatchesPerRowExactly(t *testing.T) {
	clf, err := (&Trainer{Rounds: 40, MaxDepth: 4, Subsample: 0.8, Seed: 1}).Train(moons(400, 50))
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	probe := moons(350, 51) // 700 rows straddle the batch kernel's block size
	xs := make([][]float64, len(probe))
	want := make([]float64, len(probe))
	for i := range probe {
		xs[i] = probe[i].X
		want[i] = m.PredictProba(probe[i].X)
	}
	for _, workers := range []int{1, 3, 0} {
		out := make([]float64, len(xs))
		m.PredictProbaBatch(xs, out, workers)
		for i := range out {
			if out[i] != want[i] { // bit-exact, not approximate
				t.Fatalf("workers=%d row %d: batch %v != per-row %v", workers, i, out[i], want[i])
			}
		}
	}
	var _ ml.BatchClassifier = m
	scores := ml.BatchScores(m, probe, 0)
	for i := range scores {
		if scores[i] != want[i] {
			t.Fatalf("BatchScores row %d: %v != %v", i, scores[i], want[i])
		}
	}
}
