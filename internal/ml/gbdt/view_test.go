package gbdt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/sampling"
)

// discreteData draws features from small integer alphabets so the bin
// budget covers every distinct value (the exactness regime — set-wide
// binning plus row masks equals privately re-binning each subset).
func discreteData(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]ml.Sample, n)
	for i := range out {
		a := float64(r.Intn(12))
		b := float64(r.Intn(8))
		c := float64(r.Intn(5))
		d := float64(r.Intn(3))
		y := 0
		if a+b > 12 || (c > 2 && a > 6) {
			y = 1
		}
		if r.Float64() < 0.08 {
			y = 1 - y
		}
		out[i] = ml.Sample{X: []float64{a, b, c, d}, Y: y, Day: i / 7, SN: fmt.Sprintf("s%d", i%37)}
	}
	return out
}

func assertSamePredictions(t *testing.T, name string, a, b ml.Classifier, probes []ml.Sample) {
	t.Helper()
	for i := range probes {
		pa := a.PredictProba(probes[i].X)
		pb := b.PredictProba(probes[i].X)
		if pa != pb {
			t.Fatalf("%s: probe %d: %v vs %v", name, i, pa, pb)
		}
	}
}

// TestGBDTTrainViewMatchesTrainOnFullSet: on the full set the view
// path and slice path bin the same input, so boosting — including the
// per-round Newton updates — must be bit-exact even with subsampling.
func TestGBDTTrainViewMatchesTrainOnFullSet(t *testing.T) {
	samples := discreteData(500, 3)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []float64{1, 0.7} {
		tr := &Trainer{Rounds: 25, MaxDepth: 4, Seed: 7, Subsample: sub}
		sliceClf, err := tr.Train(samples)
		if err != nil {
			t.Fatal(err)
		}
		viewClf, err := tr.TrainView(set.All())
		if err != nil {
			t.Fatal(err)
		}
		assertSamePredictions(t, fmt.Sprintf("subsample=%g", sub), sliceClf, viewClf, discreteData(250, 4))
	}
}

// TestGBDTTrainViewSubsetMatchesSliceSubset trains on an under-sampled
// row subset both ways on discrete data.
func TestGBDTTrainViewSubsetMatchesSliceSubset(t *testing.T) {
	samples := discreteData(700, 5)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 9} {
		subSlice, err := sampling.UnderSample(samples, 1.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		subView, err := sampling.UnderSampleView(set.All(), 1.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		tr := &Trainer{Rounds: 20, MaxDepth: 4, Seed: seed + 31, Subsample: 0.8}
		sliceClf, err := tr.Train(subSlice)
		if err != nil {
			t.Fatal(err)
		}
		viewClf, err := tr.TrainView(subView)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePredictions(t, fmt.Sprintf("seed=%d", seed), sliceClf, viewClf, discreteData(300, seed+77))
	}
}

// TestGBDTTrainViewColsMatchesMaskedSlice trains on a feature sub-view
// and on a hand-masked copy; probabilities must agree bit-for-bit.
func TestGBDTTrainViewColsMatchesMaskedSlice(t *testing.T) {
	samples := discreteData(600, 11)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	subset := []int{2, 0, 3}
	masked := make([]ml.Sample, len(samples))
	for i := range samples {
		x := make([]float64, len(subset))
		for j, c := range subset {
			x[j] = samples[i].X[c]
		}
		masked[i] = ml.Sample{X: x, Y: samples[i].Y, Day: samples[i].Day, SN: samples[i].SN}
	}
	tr := &Trainer{Rounds: 20, MaxDepth: 4, Seed: 13}
	maskClf, err := tr.Train(masked)
	if err != nil {
		t.Fatal(err)
	}
	viewClf, err := tr.TrainView(set.All().WithCols(subset))
	if err != nil {
		t.Fatal(err)
	}
	probes := discreteData(250, 21)
	for i := range probes {
		mx := make([]float64, len(subset))
		for j, c := range subset {
			mx[j] = probes[i].X[c]
		}
		pm := maskClf.PredictProba(mx)
		pv := viewClf.PredictProba(probes[i].X)
		if pm != pv {
			t.Fatalf("probe %d: masked %v vs view %v", i, pm, pv)
		}
	}
}

// TestGBDTTrainViewExactFallback asserts Bins<0 routes through the
// exact engine via materialisation and still matches the slice path.
func TestGBDTTrainViewExactFallback(t *testing.T) {
	samples := discreteData(300, 14)
	set, err := ml.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{Rounds: 10, MaxDepth: 3, Seed: 5, Bins: -1}
	sliceClf, err := tr.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	viewClf, err := tr.TrainView(set.All())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, "exact fallback", sliceClf, viewClf, discreteData(150, 15))
}
