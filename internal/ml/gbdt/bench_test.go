package gbdt

import "testing"

func BenchmarkGBDTTrain(b *testing.B) {
	train := moons(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBDTTrainExact measures the legacy sort-based splitter
// (Bins: -1) on the same workload, the denominator of the histogram
// engine's speedup.
func BenchmarkGBDTTrainExact(b *testing.B) {
	train := moons(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1, Bins: -1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTPredict(b *testing.B) {
	train := moons(1000, 1)
	clf, err := (&Trainer{Rounds: 60, MaxDepth: 4, Seed: 1}).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	x := train[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.PredictProba(x)
	}
}
