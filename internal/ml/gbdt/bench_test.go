package gbdt

import (
	"testing"

	"repro/internal/ml"
)

func BenchmarkGBDTTrain(b *testing.B) {
	train := moons(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBDTTrainExact measures the legacy sort-based splitter
// (Bins: -1) on the same workload, the denominator of the histogram
// engine's speedup.
func BenchmarkGBDTTrainExact(b *testing.B) {
	train := moons(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1, Bins: -1}).Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTPredict(b *testing.B) {
	train := moons(1000, 1)
	clf, err := (&Trainer{Rounds: 60, MaxDepth: 4, Seed: 1}).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	x := train[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.PredictProba(x)
	}
}

// perRowOnly hides the model's BatchClassifier implementation so
// benchmarks can measure the legacy per-row interface path.
type perRowOnly struct{ ml.Classifier }

// BenchmarkGBDTScoreBatch measures fleet-style scoring through the
// flattened batch kernel at GOMAXPROCS workers.
func BenchmarkGBDTScoreBatch(b *testing.B) {
	clf, err := (&Trainer{Rounds: 100, MaxDepth: 4, Seed: 1}).Train(moons(500, 1))
	if err != nil {
		b.Fatal(err)
	}
	probe := moons(5000, 2)
	clf.(*Model).flatten() // compile outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.BatchScores(clf, probe, 0)
	}
}

// BenchmarkGBDTScorePerRow is the same workload through the per-row
// interface path (batch detection suppressed), the speedup denominator.
func BenchmarkGBDTScorePerRow(b *testing.B) {
	clf, err := (&Trainer{Rounds: 100, MaxDepth: 4, Seed: 1}).Train(moons(500, 1))
	if err != nil {
		b.Fatal(err)
	}
	probe := moons(5000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.BatchScores(perRowOnly{clf}, probe, 0)
	}
}
