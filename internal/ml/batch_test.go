package ml

import "testing"

// constClf scores rows per-row only.
type constClf struct{}

func (constClf) PredictProba(x []float64) float64 { return x[0] / 2 }

// recordingBatch implements BatchClassifier and records whether the
// batch path was taken.
type recordingBatch struct {
	constClf
	batchCalls int
	gotWorkers int
}

func (r *recordingBatch) PredictProbaBatch(xs [][]float64, out []float64, workers int) {
	r.batchCalls++
	r.gotWorkers = workers
	for i := range xs {
		out[i] = r.PredictProba(xs[i])
	}
}

func batchSamples() []Sample {
	return []Sample{
		{X: []float64{0.2}}, {X: []float64{0.8}}, {X: []float64{1.4}},
	}
}

func TestBatchScoresPrefersBatchClassifier(t *testing.T) {
	rb := &recordingBatch{}
	scores := BatchScores(rb, batchSamples(), 3)
	if rb.batchCalls != 1 {
		t.Fatalf("batch path taken %d times, want 1", rb.batchCalls)
	}
	if rb.gotWorkers != 3 {
		t.Fatalf("workers = %d, want 3 threaded through", rb.gotWorkers)
	}
	want := BatchScores(constClf{}, batchSamples(), 1)
	for i := range scores {
		if scores[i] != want[i] {
			t.Fatalf("row %d: batch %v != per-row %v", i, scores[i], want[i])
		}
	}
}

func TestBatchScoresEmptyAndFallback(t *testing.T) {
	if got := BatchScores(constClf{}, nil, 0); len(got) != 0 {
		t.Fatalf("empty sample set scored %d rows", len(got))
	}
	scores := BatchScores(constClf{}, batchSamples(), 0)
	for i, s := range batchSamples() {
		if scores[i] != s.X[0]/2 {
			t.Fatalf("row %d: %v", i, scores[i])
		}
	}
}

func TestScoreBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths accepted")
		}
	}()
	ScoreBatch(constClf{}, make([][]float64, 2), make([]float64, 3), 1)
}
