// Package svm implements a linear support vector machine trained with
// the Pegasos stochastic sub-gradient algorithm (Shalev-Shwartz et al.),
// one of the paper's five candidate algorithms. Probability outputs use
// a fixed logistic link on the margin (a lightweight stand-in for Platt
// scaling that keeps scores monotonic in the margin, which is all the
// ROC/AUC machinery needs).
//
// Inputs should be standardised (see the features package's Scaler);
// the trainer standardises internally when Standardize is set, so raw
// SMART counters spanning ten orders of magnitude remain usable.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Trainer configures Pegasos training.
type Trainer struct {
	// Lambda is the L2 regularisation strength. Zero selects 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data. Zero selects 20.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
	// ClassWeight scales the loss of positive samples; useful on
	// imbalanced sets. Zero selects 1 (no reweighting).
	ClassWeight float64
	// Standardize fits a per-feature z-score transform on the training
	// data and applies it at prediction time.
	Standardize bool
}

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "SVM" }

// Train implements ml.Trainer.
func (t *Trainer) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, true); err != nil {
		return nil, err
	}
	lambda := t.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	epochs := t.Epochs
	if epochs == 0 {
		epochs = 20
	}
	posWeight := t.ClassWeight
	if posWeight == 0 {
		posWeight = 1
	}
	width := len(samples[0].X)

	m := &Model{w: make([]float64, width)}
	xs := make([][]float64, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
	}
	if t.Standardize {
		m.mean, m.std = fitScaler(xs)
		scaled := make([][]float64, len(xs))
		for i, x := range xs {
			scaled[i] = m.apply(x)
		}
		xs = scaled
	}

	r := rand.New(rand.NewSource(t.Seed + 1))
	step := 0
	// Averaged Pegasos: the average of the iterates over the second
	// half of training converges far more stably than the final
	// iterate.
	avgW := make([]float64, width)
	var avgB float64
	avgCount := 0
	halfway := epochs * len(samples) / 2
	for e := 0; e < epochs; e++ {
		order := r.Perm(len(samples))
		for _, i := range order {
			step++
			eta := 1 / (lambda * float64(step))
			y := float64(2*samples[i].Y - 1) // {-1, +1}
			weight := 1.0
			if samples[i].Y == 1 {
				weight = posWeight
			}
			margin := y * (dot(m.w, xs[i]) + m.b)
			// w ← (1 − ηλ)w, plus the hinge sub-gradient when violated.
			scale := 1 - eta*lambda
			for j := range m.w {
				m.w[j] *= scale
			}
			if margin < 1 {
				for j := range m.w {
					m.w[j] += eta * weight * y * xs[i][j]
				}
				m.b += eta * weight * y
			}
			if step > halfway {
				for j := range m.w {
					avgW[j] += m.w[j]
				}
				avgB += m.b
				avgCount++
			}
		}
	}
	if avgCount > 0 {
		for j := range m.w {
			m.w[j] = avgW[j] / float64(avgCount)
		}
		m.b = avgB / float64(avgCount)
	}
	return m, nil
}

// Model is a fitted linear SVM.
type Model struct {
	w    []float64
	b    float64
	mean []float64 // nil when the trainer did not standardise
	std  []float64
}

// Margin returns the signed distance-like score w·x + b.
func (m *Model) Margin(x []float64) float64 {
	if m.mean != nil {
		x = m.apply(x)
	}
	return dot(m.w, x) + m.b
}

// PredictProba implements ml.Classifier with a logistic link on the
// margin.
func (m *Model) PredictProba(x []float64) float64 {
	return 1 / (1 + math.Exp(-2*m.Margin(x)))
}

// Weights returns a copy of the weight vector (post-standardisation
// space when Standardize was set).
func (m *Model) Weights() []float64 {
	return append([]float64(nil), m.w...)
}

func (m *Model) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - m.mean[j]) / m.std[j]
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func fitScaler(xs [][]float64) (mean, std []float64) {
	width := len(xs[0])
	mean = make([]float64, width)
	std = make([]float64, width)
	n := float64(len(xs))
	for _, x := range xs {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for _, x := range xs {
		for j, v := range x {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	return mean, std
}

// Exported is the model's serialisation form.
type Exported struct {
	Weights []float64
	Bias    float64
	// Mean/Std are the internal scaler (nil when not standardised).
	Mean []float64
	Std  []float64
}

// Export returns the model's serialisation form.
func (m *Model) Export() Exported {
	return Exported{
		Weights: append([]float64(nil), m.w...),
		Bias:    m.b,
		Mean:    append([]float64(nil), m.mean...),
		Std:     append([]float64(nil), m.std...),
	}
}

// Import reconstructs a model from its serialisation form.
func Import(e Exported) (*Model, error) {
	if len(e.Weights) == 0 {
		return nil, fmt.Errorf("svm: empty export")
	}
	if len(e.Mean) != len(e.Std) {
		return nil, fmt.Errorf("svm: scaler length mismatch")
	}
	if len(e.Mean) > 0 && len(e.Mean) != len(e.Weights) {
		return nil, fmt.Errorf("svm: scaler width %d != weights %d", len(e.Mean), len(e.Weights))
	}
	m := &Model{
		w: append([]float64(nil), e.Weights...),
		b: e.Bias,
	}
	if len(e.Mean) > 0 {
		m.mean = append([]float64(nil), e.Mean...)
		m.std = append([]float64(nil), e.Std...)
	}
	return m, nil
}
