package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func blobs(n int, sep float64, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		out = append(out,
			ml.Sample{X: []float64{r.NormFloat64() - sep, r.NormFloat64()}, Y: 0},
			ml.Sample{X: []float64{r.NormFloat64() + sep, r.NormFloat64()}, Y: 1},
		)
	}
	return out
}

func TestLinearlySeparable(t *testing.T) {
	train := blobs(300, 3, 1)
	test := blobs(200, 3, 2)
	// Standardize matches the production configuration (core.Config);
	// raw Pegasos on unscaled data converges noticeably slower.
	clf, err := (&Trainer{Seed: 1, Standardize: true}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.97 {
		t.Fatalf("accuracy = %g", acc)
	}
}

func TestMarginSign(t *testing.T) {
	train := blobs(300, 3, 3)
	clf, err := (&Trainer{Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	if m.Margin([]float64{5, 0}) <= 0 {
		t.Error("positive-side margin should be > 0")
	}
	if m.Margin([]float64{-5, 0}) >= 0 {
		t.Error("negative-side margin should be < 0")
	}
	// Probability is a monotone map of the margin.
	if m.PredictProba([]float64{5, 0}) <= m.PredictProba([]float64{1, 0}) {
		t.Error("probability not monotone in margin")
	}
}

func TestStandardizeHandlesHugeScales(t *testing.T) {
	// Without standardisation the 1e9-scaled feature swamps SGD; the
	// trainer must cope because SMART counters look exactly like this.
	r := rand.New(rand.NewSource(4))
	var train []ml.Sample
	for i := 0; i < 400; i++ {
		train = append(train,
			ml.Sample{X: []float64{1e9 + 1e7*r.NormFloat64(), r.NormFloat64()}, Y: 0},
			ml.Sample{X: []float64{2e9 + 1e7*r.NormFloat64(), r.NormFloat64()}, Y: 1},
		)
	}
	clf, err := (&Trainer{Seed: 1, Standardize: true}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range train {
		if ml.Predict(clf, s.X) == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(train)); acc < 0.95 {
		t.Fatalf("accuracy with huge scales = %g", acc)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	train := blobs(100, 2, 5)
	a, err := (&Trainer{Seed: 9}).Train(ml.CloneVectors(train))
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Trainer{Seed: 9}).Train(ml.CloneVectors(train))
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.(*Model).Weights(), b.(*Model).Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestClassWeightShiftsBoundary(t *testing.T) {
	// Overlapping classes: upweighting positives must increase recall.
	train := blobs(400, 0.5, 6)
	plain, err := (&Trainer{Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := (&Trainer{Seed: 1, ClassWeight: 5}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	test := blobs(300, 0.5, 7)
	recall := func(clf ml.Classifier) float64 {
		tp, fn := 0, 0
		for _, s := range test {
			if s.Y != 1 {
				continue
			}
			if ml.Predict(clf, s.X) == 1 {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	if recall(weighted) <= recall(plain)-0.01 {
		t.Fatalf("class weighting did not raise recall: %g vs %g", recall(weighted), recall(plain))
	}
}

func TestProbabilityBounds(t *testing.T) {
	train := blobs(50, 2, 8)
	clf, err := (&Trainer{Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {100, -100}, {-100, 100}} {
		p := clf.PredictProba(x)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("probability %g out of bounds", p)
		}
	}
}

func TestTrainRequiresBothClasses(t *testing.T) {
	if _, err := (&Trainer{}).Train([]ml.Sample{{X: []float64{1}, Y: 0}}); err == nil {
		t.Fatal("single-class training accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	train := blobs(150, 3, 30)
	clf, err := (&Trainer{Seed: 1, Standardize: true}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)
	restored, err := Import(m.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range blobs(30, 3, 31) {
		if restored.PredictProba(s.X) != m.PredictProba(s.X) {
			t.Fatal("round trip changed predictions")
		}
	}
}

func TestImportRejectsCorrupt(t *testing.T) {
	if _, err := Import(Exported{}); err == nil {
		t.Error("empty export accepted")
	}
	if _, err := Import(Exported{Weights: []float64{1}, Mean: []float64{1}, Std: []float64{1, 2}}); err == nil {
		t.Error("scaler length mismatch accepted")
	}
	if _, err := Import(Exported{Weights: []float64{1, 2}, Mean: []float64{1}, Std: []float64{1}}); err == nil {
		t.Error("scaler width mismatch accepted")
	}
}
