package serve

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/firmware"
)

// runDaysStats is runDays plus aggregated sweep stats.
func runDaysStats(t *testing.T, s *Scorer, batches [][]dataset.Record) ([]Assessment, SweepStats) {
	t.Helper()
	var out []Assessment
	var total SweepStats
	for _, batch := range batches {
		as, st, err := s.ObserveDay(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Records; got != len(batch) {
			t.Fatalf("stats.Records = %d for a %d-record batch", got, len(batch))
		}
		out = append(out, as...)
		total.Records += st.Records
		total.Scored += st.Scored
		total.Dropped += st.Dropped
		total.Quarantined += st.Quarantined
		total.Skipped += st.Skipped
		total.Degraded += st.Degraded
	}
	return out, total
}

// corruptBatches applies a seeded campaign to every day batch.
func corruptBatches(batches [][]dataset.Record, seed int64, rate float64) ([][]dataset.Record, []faultinject.Corruption) {
	c := faultinject.NewRecordCorruptor(faultinject.CorruptorConfig{Seed: seed, Rate: rate})
	out := make([][]dataset.Record, len(batches))
	var log []faultinject.Corruption
	for i, b := range batches {
		var l []faultinject.Corruption
		out[i], l = c.Corrupt(b)
		log = append(log, l...)
	}
	return out, log
}

// TestCorruptionCampaignIsolatesDrives is the tentpole acceptance
// test: a seeded corruption campaign over the whole collection window
// completes without a single batch error, quarantines exactly the
// touched drives, leaves every untouched drive's assessments
// bit-identical to a clean run, and produces the same ledger at every
// worker/shard combination.
func TestCorruptionCampaignIsolatesDrives(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")

	clean, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	cleanAs := runDays(t, clean, batches)
	cleanBySN := make(map[string][]Assessment)
	for _, a := range cleanAs {
		cleanBySN[a.SerialNumber] = append(cleanBySN[a.SerialNumber], a)
	}

	const seed, rate = 17, 0.02
	dirty, clog := corruptBatches(batches, seed, rate)
	if len(clog) == 0 {
		t.Fatal("campaign injected nothing; raise the rate")
	}
	touched := make(map[string]bool)
	for _, c := range clog {
		touched[c.SerialNumber] = true
	}
	if len(touched) == len(cleanBySN) {
		t.Fatal("campaign touched every drive; nothing left to prove isolation with")
	}

	var firstLedger []QuarantineEntry
	var firstAs []Assessment
	for _, tc := range []struct{ workers, shards int }{{1, 1}, {0, 32}, {3, 5}} {
		s, err := New(model, Options{Workers: tc.workers, Shards: tc.shards, Registries: regs})
		if err != nil {
			t.Fatal(err)
		}
		// Run the batches by hand so quarantine can be tracked per
		// batch: once a drive has produced a Quarantined entry, no
		// later batch may score it.
		var got []Assessment
		var stats SweepStats
		quarSet := make(map[string]bool)
		for bi, batch := range dirty {
			as, st, err := s.ObserveDay(batch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range as {
				a := &as[i]
				if quarSet[a.SerialNumber] && !a.Quarantined {
					t.Fatalf("workers=%d shards=%d: batch %d scored drive %s after quarantine: %+v", tc.workers, tc.shards, bi, a.SerialNumber, *a)
				}
			}
			for i := range as {
				if as[i].Quarantined {
					quarSet[as[i].SerialNumber] = true
				}
			}
			got = append(got, as...)
			stats.Records += st.Records
			stats.Scored += st.Scored
			stats.Dropped += st.Dropped
			stats.Quarantined += st.Quarantined
			stats.Skipped += st.Skipped
			stats.Degraded += st.Degraded
		}

		// Every quarantined drive must have been touched by the
		// campaign, and the sweep must have quarantined at least one.
		ledger := s.QuarantineReasons()
		if len(ledger) == 0 {
			t.Fatalf("workers=%d shards=%d: campaign quarantined nothing", tc.workers, tc.shards)
		}
		for _, e := range ledger {
			if !touched[e.SerialNumber] {
				t.Fatalf("workers=%d shards=%d: untouched drive %s quarantined: %+v", tc.workers, tc.shards, e.SerialNumber, e)
			}
		}
		if stats.Quarantined != len(ledger) {
			t.Fatalf("workers=%d shards=%d: stats counted %d quarantines, ledger holds %d", tc.workers, tc.shards, stats.Quarantined, len(ledger))
		}

		// Untouched drives score bit-identically to the clean run.
		gotBySN := make(map[string][]Assessment)
		for _, a := range got {
			gotBySN[a.SerialNumber] = append(gotBySN[a.SerialNumber], a)
		}
		for sn, want := range cleanBySN {
			if touched[sn] {
				continue
			}
			gotSN := gotBySN[sn]
			if len(gotSN) != len(want) {
				t.Fatalf("workers=%d shards=%d: healthy drive %s: %d assessments, clean run had %d", tc.workers, tc.shards, sn, len(gotSN), len(want))
			}
			for i := range want {
				a, b := gotSN[i], want[i]
				if a.Day != b.Day || a.Flagged != b.Flagged || a.Dropped != b.Dropped ||
					math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
					t.Fatalf("workers=%d shards=%d: healthy drive %s assessment %d: %+v vs clean %+v", tc.workers, tc.shards, sn, i, a, b)
				}
			}
		}

		// Ledger and full output replay identically across
		// concurrency settings.
		if firstLedger == nil {
			firstLedger, firstAs = ledger, got
			continue
		}
		if !reflect.DeepEqual(ledger, firstLedger) {
			t.Fatalf("workers=%d shards=%d: ledger differs from first run", tc.workers, tc.shards)
		}
		if len(got) != len(firstAs) {
			t.Fatalf("workers=%d shards=%d: %d assessments, first run had %d", tc.workers, tc.shards, len(got), len(firstAs))
		}
		for i := range got {
			a, b := got[i], firstAs[i]
			if a != b {
				t.Fatalf("workers=%d shards=%d: assessment %d differs: %+v vs %+v", tc.workers, tc.shards, i, a, b)
			}
		}
	}
}

// TestDegradedFallbackAndRecovery: a scoring-backend fault swings the
// day onto the SMART-threshold detector — flagged rows carry Degraded
// — and the next healthy day recovers with scores bit-identical to a
// never-faulted run (the rolling feature state advances regardless of
// how the day was scored).
func TestDegradedFallbackAndRecovery(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")

	clean, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	want := runDays(t, clean, batches[:3])

	faults := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 1, ScoreFirst: 1})
	s, err := New(model, Options{Registries: regs, Faults: FaultHooks{Score: faults.Score}})
	if err != nil {
		t.Fatal(err)
	}

	day0, st0, err := s.ObserveDay(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("scorer not degraded after a score fault")
	}
	if st0.Degraded != st0.Scored || st0.Scored == 0 {
		t.Fatalf("degraded day stats: %+v", st0)
	}
	for i := range day0 {
		if day0[i].Dropped || day0[i].Quarantined {
			continue
		}
		if !day0[i].Degraded {
			t.Fatalf("assessment %d of degraded day not marked: %+v", i, day0[i])
		}
		if p := day0[i].Probability; p != 0 && p != 1 {
			t.Fatalf("fallback detector emitted non-binary probability %v", p)
		}
	}

	// Recovery: subsequent days score exactly as the clean run did.
	rest, _ := runDaysStats(t, s, batches[1:3])
	if s.Degraded() {
		t.Fatal("scorer still degraded after a healthy batch")
	}
	wantRest := want[len(want)-len(rest):]
	for i := range rest {
		a, b := rest[i], wantRest[i]
		if a.Degraded {
			t.Fatalf("post-recovery assessment still degraded: %+v", a)
		}
		if a.SerialNumber != b.SerialNumber || a.Day != b.Day ||
			math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
			t.Fatalf("post-recovery assessment %d: %+v vs clean %+v", i, a, b)
		}
	}
}

// TestObserveFaultIsRetrySafe: a transient observe fault fires before
// any state mutates, so retrying the same batch converges on output
// bit-identical to a never-faulted run.
func TestObserveFaultIsRetrySafe(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")[:5]

	clean, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	want := runDays(t, clean, batches)

	faults := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 3, ObserveFirst: 2, ObserveP: 0.3})
	s, err := New(model, Options{Registries: regs, Faults: FaultHooks{Observe: faults.Observe}})
	if err != nil {
		t.Fatal(err)
	}
	var got []Assessment
	retries := 0
	for _, batch := range batches {
		for {
			as, _, err := s.ObserveDay(batch)
			if err == nil {
				got = append(got, as...)
				break
			}
			if !faultinject.IsTransient(err) {
				t.Fatalf("observe fault not transient: %v", err)
			}
			retries++
			if retries > 100 {
				t.Fatal("retry loop did not converge")
			}
		}
	}
	if retries < 2 {
		t.Fatalf("only %d retries; forced faults did not fire", retries)
	}
	if len(got) != len(want) {
		t.Fatalf("%d assessments after retries, clean run had %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("assessment %d: %+v vs clean %+v", i, got[i], want[i])
		}
	}
}

// TestSwapFaultKeepsModelServing: a failed UpdateModel leaves the old
// model scoring and a later push succeeds.
func TestSwapFaultKeepsModelServing(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")

	faults := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 5, SwapFirst: 1})
	s, err := New(model, Options{Registries: regs, Faults: FaultHooks{Swap: faults.Swap}})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	want := runDays(t, clean, batches[:2])

	got := runDays(t, s, batches[:1])
	if err := s.UpdateModel(model); err == nil {
		t.Fatal("injected swap fault did not surface")
	} else if !faultinject.IsTransient(err) {
		t.Fatalf("swap fault not transient: %v", err)
	}
	got = append(got, runDays(t, s, batches[1:2])...)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("assessment %d after failed swap: %+v vs %+v", i, got[i], want[i])
		}
	}
	if err := s.UpdateModel(model); err != nil {
		t.Fatalf("retried swap failed: %v", err)
	}
}

// TestReviveDrive: quarantine a drive via a duplicate day, revive it,
// and watch it score again as a fresh series while ReviveDrive refuses
// healthy or unknown drives.
func TestReviveDrive(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")
	s, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ObserveDay(batches[0]); err != nil {
		t.Fatal(err)
	}
	sn := batches[0][0].SerialNumber
	if s.ReviveDrive(sn) {
		t.Fatal("ReviveDrive accepted a healthy drive")
	}
	if s.ReviveDrive("no-such-drive") {
		t.Fatal("ReviveDrive accepted an unknown drive")
	}

	// Re-feed the drive's day-0 record: duplicate day, quarantine.
	_, st, err := s.ObserveDay(batches[0][:1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 1 {
		t.Fatalf("duplicate day did not quarantine: %+v", st)
	}
	if e, ok := s.Quarantined(sn); !ok || e.Reason != QuarantineRollingError {
		t.Fatalf("Quarantined(%s) = %+v, %v", sn, e, ok)
	}

	// While quarantined, its records are skipped.
	var next dataset.Record
	found := false
	for _, b := range batches[1:] {
		for i := range b {
			if b[i].SerialNumber == sn {
				next, found = b[i], true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatalf("fixture has no later record for %s", sn)
	}
	as, st, err := s.ObserveDay([]dataset.Record{next})
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || !as[0].Quarantined {
		t.Fatalf("quarantined drive's record not skipped: %+v %+v", st, as)
	}

	if !s.ReviveDrive(sn) {
		t.Fatal("ReviveDrive refused a quarantined drive")
	}
	if _, ok := s.Quarantined(sn); ok {
		t.Fatal("revived drive still in ledger")
	}
	// The revived drive starts a fresh series: its next record is
	// accepted and scored.
	as, st, err = s.ObserveDay([]dataset.Record{next})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scored == 0 || as[0].Quarantined || as[0].Dropped {
		t.Fatalf("revived drive did not score: %+v %+v", st, as)
	}
}

// TestStrictFirmwareQuarantine: under StrictFirmware a version missing
// from the vendor registry quarantines the drive; the permissive
// default mints a first-seen code and scores it.
func TestStrictFirmwareQuarantine(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")
	bad := make([]dataset.Record, len(batches[0]))
	copy(bad, batches[0])
	bad[0] = bad[0].Clone()
	bad[0].Firmware = firmware.Version("99.99.99-bogus")

	strict, err := New(model, Options{Registries: regs, StrictFirmware: true})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := strict.ObserveDay(bad)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 1 {
		t.Fatalf("strict scorer stats: %+v", st)
	}
	if e, ok := strict.Quarantined(bad[0].SerialNumber); !ok || e.Reason != QuarantineUnknownFirmware {
		t.Fatalf("ledger entry %+v, %v", e, ok)
	}

	lax, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err = lax.ObserveDay(bad)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 0 {
		t.Fatalf("permissive scorer quarantined: %+v", st)
	}
}

// TestReplayFrameQuarantinesBadDrive: a drive whose history conflicts
// with already-ingested state quarantines during replay instead of
// failing the whole bootstrap.
func TestReplayFrameQuarantinesBadDrive(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")
	splitIdx := len(batches) - 7
	splitDay := batches[splitIdx][0].Day
	hist, err := dataset.FrameFromDataset(fleet.Data.Until(splitDay - 1))
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	// Observe one drive at the split day first; its replay rows are now
	// out of order while every other drive replays cleanly.
	var probe []dataset.Record
	for i := range batches[splitIdx] {
		probe = append(probe[:0], batches[splitIdx][i])
		break
	}
	if _, _, err := s.ObserveDay(probe); err != nil {
		t.Fatal(err)
	}
	stats, err := s.ReplayFrame(hist.FilterVendor("I"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Quarantined != 1 {
		t.Fatalf("replay stats %+v, want exactly the probe drive quarantined", stats)
	}
	if e, ok := s.Quarantined(probe[0].SerialNumber); !ok || e.Reason != QuarantineRollingError {
		t.Fatalf("probe drive ledger entry %+v, %v", e, ok)
	}
	if stats.Drives < 2 || stats.Records == 0 {
		t.Fatalf("other drives did not replay: %+v", stats)
	}
}

// TestMidSessionOpsDeterministic pins the satellite contract: model
// swaps, drive resets, and revives issued mid-session produce
// identical output at every worker/shard combination.
func TestMidSessionOpsDeterministic(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")
	half := len(batches) / 2
	resetSN := batches[0][0].SerialNumber

	swapped := *model
	swapped.Threshold = model.Threshold * 0.5

	run := func(workers, shards int) []Assessment {
		s, err := New(model, Options{Workers: workers, Shards: shards, Registries: regs})
		if err != nil {
			t.Fatal(err)
		}
		out := runDays(t, s, batches[:half])
		if err := s.UpdateModel(&swapped); err != nil {
			t.Fatal(err)
		}
		if !s.ResetDrive(resetSN) {
			t.Fatalf("ResetDrive(%s) found nothing", resetSN)
		}
		return append(out, runDays(t, s, batches[half:])...)
	}

	first := run(1, 1)
	for _, tc := range []struct{ workers, shards int }{{0, 32}, {3, 5}} {
		got := run(tc.workers, tc.shards)
		if len(got) != len(first) {
			t.Fatalf("workers=%d shards=%d: %d assessments, serial run had %d", tc.workers, tc.shards, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("workers=%d shards=%d: assessment %d differs: %+v vs %+v", tc.workers, tc.shards, i, got[i], first[i])
			}
		}
	}
}
