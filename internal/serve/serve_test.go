package serve

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/labeling"
	"repro/internal/ml"
	"repro/internal/simfleet"
)

// The serving equivalence fixture: one simulated fleet and one trained
// vendor-I model per test binary. Registries come from the simulator's
// vendor specs, so firmware encoding is order-independent between the
// offline pipeline and the day-major serving feed.
var (
	cachedFleet *simfleet.Result
	cachedModel *core.Model
	cachedRegs  map[string]*firmware.Registry
)

func setup(t *testing.T) (*simfleet.Result, *core.Model, map[string]*firmware.Registry) {
	t.Helper()
	if cachedFleet == nil {
		cfg := simfleet.TinyConfig()
		cfg.FailureScale = 0.04
		fleet, err := simfleet.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		regs := make(map[string]*firmware.Registry)
		for _, v := range fleet.Config.Vendors {
			regs[v.Name] = v.Firmware
		}
		mcfg := core.DefaultConfig("I")
		mcfg.Registries = regs
		model, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, mcfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedFleet, cachedModel, cachedRegs = fleet, model, regs
	}
	return cachedFleet, cachedModel, cachedRegs
}

type key struct {
	sn  string
	day int
}

// offlineScores runs the full offline pipeline over the vendor's
// drives — clean, cumulate, extract every surviving drive-day, batch
// score — and returns the per-(drive, day) probabilities.
func offlineScores(t *testing.T, fleet *simfleet.Result, model *core.Model, regs map[string]*firmware.Registry) map[key]float64 {
	t.Helper()
	cfg := model.Config
	cfg.Registries = regs
	raw, err := dataset.FrameFromDataset(fleet.Data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.PrepareFrame(raw, fleet.Tickets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := features.NewExtractor(cfg.Group, regs)
	if err != nil {
		t.Fatal(err)
	}
	set, err := features.BuildSampleSetFrame(p.Frame, labeling.Labels{}, ext, features.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	scores := ml.BatchScoresView(model.Classifier, set.All(), 0)
	out := make(map[key]float64, set.Len())
	for i := 0; i < set.Len(); i++ {
		out[key{set.SN(i), set.Day(i)}] = scores[i]
	}
	return out
}

// dayBatches groups the vendor's raw records day-major (drive order
// within a day), the serving arrival order.
func dayBatches(fleet *simfleet.Result, vendor string) [][]dataset.Record {
	byDay := make(map[int][]dataset.Record)
	var days []int
	fleet.Data.Each(func(s *dataset.DriveSeries) {
		if s.Vendor != vendor {
			return
		}
		for i := range s.Records {
			d := s.Records[i].Day
			if len(byDay[d]) == 0 {
				days = append(days, d)
			}
			byDay[d] = append(byDay[d], s.Records[i])
		}
	})
	sort.Ints(days)
	out := make([][]dataset.Record, 0, len(days))
	for _, d := range days {
		out = append(out, byDay[d])
	}
	return out
}

func runDays(t *testing.T, s *Scorer, batches [][]dataset.Record) []Assessment {
	t.Helper()
	var out []Assessment
	for _, batch := range batches {
		as, _, err := s.ObserveDay(batch)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, as...)
	}
	return out
}

// TestObserveDayMatchesOfflinePipeline is the serving half of the
// equivalence suite: a day-major sharded ObserveDay feed over the whole
// collection window produces exactly the drive-day scores of the
// offline pipeline + ml.BatchScores, bit-identical, at every tested
// worker/shard combination, with the same set of surviving drive-days.
func TestObserveDayMatchesOfflinePipeline(t *testing.T) {
	fleet, model, regs := setup(t)
	offline := offlineScores(t, fleet, model, regs)
	batches := dayBatches(fleet, "I")

	var first []Assessment
	for _, tc := range []struct{ workers, shards int }{{1, 1}, {1, 32}, {0, 32}, {3, 5}} {
		s, err := New(model, Options{Workers: tc.workers, Shards: tc.shards, Registries: regs})
		if err != nil {
			t.Fatal(err)
		}
		got := runDays(t, s, batches)

		online := make(map[key]float64, len(got))
		droppedSN := make(map[string]bool)
		for _, as := range got {
			if as.Dropped {
				droppedSN[as.SerialNumber] = true
				continue
			}
			online[key{as.SerialNumber, as.Day}] = as.Probability
		}
		// Every offline drive-day must score bit-identically online.
		for k, want := range offline {
			gotP, ok := online[k]
			if !ok {
				t.Fatalf("workers=%d shards=%d: offline row (%s, %d) missing online", tc.workers, tc.shards, k.sn, k.day)
			}
			if math.Float64bits(gotP) != math.Float64bits(want) {
				t.Fatalf("workers=%d shards=%d: (%s, %d): online %v, offline %v", tc.workers, tc.shards, k.sn, k.day, gotP, want)
			}
		}
		// The offline clean drops an over-gapped drive retroactively,
		// so its whole series vanishes from the offline set; online the
		// same drive scores up to the gap and is dropped from there.
		// Any online row absent offline must belong to such a drive.
		for k := range online {
			if _, ok := offline[k]; ok {
				continue
			}
			if !droppedSN[k.sn] {
				t.Fatalf("workers=%d shards=%d: online row (%s, %d) missing offline but drive never dropped", tc.workers, tc.shards, k.sn, k.day)
			}
		}
		if len(droppedSN) == 0 {
			t.Fatalf("workers=%d shards=%d: fixture produced no dropped drives; equivalence under drop untested", tc.workers, tc.shards)
		}

		// Full output (order, hysteresis, drop markers) must be
		// identical at every concurrency setting.
		if first == nil {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("workers=%d shards=%d: %d assessments, first run had %d", tc.workers, tc.shards, len(got), len(first))
		}
		for i := range got {
			a, b := got[i], first[i]
			if a.SerialNumber != b.SerialNumber || a.Day != b.Day || a.Dropped != b.Dropped ||
				a.Flagged != b.Flagged || a.Alarmed != b.Alarmed || a.Interpolated != b.Interpolated ||
				a.ConsecutiveFlags != b.ConsecutiveFlags ||
				math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
				t.Fatalf("workers=%d shards=%d: assessment %d differs from first run: %+v vs %+v", tc.workers, tc.shards, i, a, b)
			}
		}
	}
}

// TestReplayFrameBootstrapMatchesFromScratch: catching up from a
// historical frame and then serving the remaining days must be
// indistinguishable from having served every day — same scores, same
// hysteresis, bit-identical.
func TestReplayFrameBootstrapMatchesFromScratch(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")
	if len(batches) < 20 {
		t.Fatalf("only %d day batches", len(batches))
	}
	splitIdx := len(batches) - 7
	splitDay := batches[splitIdx][0].Day

	full, err := New(model, Options{Workers: 0, Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, full, batches[:splitIdx])
	// Assessments produced while serving the tail — including
	// mean-filled rows dated before the split.
	wantTail := runDays(t, full, batches[splitIdx:])

	hist, err := dataset.FrameFromDataset(fleet.Data.Until(splitDay - 1))
	if err != nil {
		t.Fatal(err)
	}
	boot, err := New(model, Options{Workers: 0, Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := boot.ReplayFrame(hist.FilterVendor("I"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Drives == 0 || stats.Records == 0 || stats.Rows < stats.Records-stats.Drives {
		t.Fatalf("implausible replay stats: %+v", stats)
	}
	got := runDays(t, boot, batches[splitIdx:])

	// The bootstrapped run has no flag history, so ConsecutiveFlags can
	// legitimately differ on the first serve days for drives that were
	// mid-run at the split; scores, days and drop markers cannot.
	if len(got) != len(wantTail) {
		t.Fatalf("bootstrapped run: %d assessments, from-scratch tail has %d", len(got), len(wantTail))
	}
	for i := range got {
		a, b := got[i], wantTail[i]
		if a.SerialNumber != b.SerialNumber || a.Day != b.Day || a.Dropped != b.Dropped ||
			a.Interpolated != b.Interpolated ||
			math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
			t.Fatalf("assessment %d: bootstrapped %+v vs from-scratch %+v", i, a, b)
		}
	}
}

// TestReplayFrameRejectsCumulated pins the raw-frame contract.
func TestReplayFrameRejectsCumulated(t *testing.T) {
	fleet, model, regs := setup(t)
	cum := fleet.Data.Clone()
	if err := dataset.Cumulate(cum); err != nil {
		t.Fatal(err)
	}
	f, err := dataset.FrameFromDataset(cum)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReplayFrame(f); err == nil {
		t.Fatal("cumulated frame accepted")
	}
}

// TestScorerLifecycle covers model swap, drive listing, reset, and the
// out-of-order contract (now fail-soft: a replayed day quarantines the
// affected drives instead of failing the batch).
func TestScorerLifecycle(t *testing.T) {
	fleet, model, regs := setup(t)
	batches := dayBatches(fleet, "I")
	s, err := New(model, Options{Registries: regs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ObserveDay(batches[0]); err != nil {
		t.Fatal(err)
	}
	if len(s.Drives()) == 0 {
		t.Fatal("no drives tracked")
	}
	if err := s.UpdateModel(model); err != nil {
		t.Fatal(err)
	}
	bad := *model
	badCfg := model.Config
	badCfg.Group = features.GroupS
	bad.Config = badCfg
	if err := s.UpdateModel(&bad); err == nil {
		t.Fatal("group change accepted")
	}
	// Re-feeding day 0 violates day ordering for every drive in the
	// batch: each must be quarantined with a rolling-error reason, not
	// fail the sweep.
	as, st, err := s.ObserveDay(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != len(batches[0]) {
		t.Fatalf("replayed day: %d quarantined, want %d", st.Quarantined, len(batches[0]))
	}
	for i := range as {
		if !as[i].Quarantined {
			t.Fatalf("assessment %d of replayed day not marked quarantined: %+v", i, as[i])
		}
	}
	ledger := s.QuarantineReasons()
	if len(ledger) != len(batches[0]) {
		t.Fatalf("ledger holds %d drives, want %d", len(ledger), len(batches[0]))
	}
	for _, e := range ledger {
		if e.Reason != QuarantineRollingError {
			t.Fatalf("ledger entry %+v: want reason %v", e, QuarantineRollingError)
		}
	}
	sn := s.Drives()[0]
	if e, ok := s.Quarantined(sn); !ok || e.SerialNumber != sn {
		t.Fatalf("Quarantined(%s) = %+v, %v", sn, e, ok)
	}
	if !s.ResetDrive(sn) || s.ResetDrive(sn) {
		t.Fatal("ResetDrive bookkeeping wrong")
	}
	if _, ok := s.Quarantined(sn); ok {
		t.Fatal("ResetDrive left a quarantine entry behind")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
}
