// Package serve is the fleet-side daily scoring engine — the serving
// counterpart of the offline pipeline speedups. Where the client agent
// scores one record at a time, the Scorer ingests a whole day of fleet
// telemetry at once: drives are sharded by serial hash across
// internal/parallel workers, each shard advances its drives'
// RollingStates and accumulates the day's feature rows into a pooled
// flat arena, the whole day is scored through ml.ScoreBatch in one
// call (hitting the flattened batch kernel), and per-shard results are
// merged back into input order deterministically. Feature rows and
// scores are bit-identical to the offline
// CleanDiscontinuity→Cumulate→extract pipeline at any worker or shard
// count.
package serve

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/ml"
	"repro/internal/parallel"
)

// Options configures a Scorer.
type Options struct {
	// Workers bounds the goroutines of the shard fan-out and the batch
	// scoring kernel: 0 = GOMAXPROCS, 1 = serial. Outputs are identical
	// at any setting.
	Workers int
	// Shards is the number of drive shards; 0 selects 32. More shards
	// than workers keeps the fan-out balanced when drive populations
	// are skewed.
	Shards int
	// AlarmAfter is how many consecutive flagged rows latch a drive's
	// alarm; 0 selects 2.
	AlarmAfter int
	// GapPolicy is the discontinuity optimisation applied online; the
	// zero value selects the model's own pipeline policy
	// (model.Config.GapPolicy), keeping serving faithful to training.
	GapPolicy dataset.GapPolicy
	// Registries supplies per-vendor firmware ladders; nil falls back
	// to first-seen-order encoding.
	Registries map[string]*firmware.Registry
}

// Assessment is the outcome of scoring one emitted drive-day row (or
// one consumed record of a dropped drive).
type Assessment struct {
	SerialNumber string
	Day          int
	// Probability is the model's P(faulty); meaningless when Dropped.
	Probability float64
	// Flagged reports Probability ≥ the model's threshold.
	Flagged bool
	// Interpolated marks rows synthesised by mean-fill.
	Interpolated bool
	// ConsecutiveFlags counts the current run of flagged rows.
	ConsecutiveFlags int
	// Alarmed reports the hysteresis criterion has latched.
	Alarmed bool
	// Dropped reports the drive was excluded by the gap policy (the
	// offline pipeline would not score it); no probability is attached.
	Dropped bool
}

// driveRoll is one drive's serving state: the rolling feature state
// plus alarm hysteresis.
type driveRoll struct {
	roll        *features.RollingState
	consecutive int
	alarmed     bool
}

// shard owns a disjoint subset of the fleet's drives plus the pooled
// per-day scratch its worker fills: the feature-row arena, row
// metadata, and the record indexes routed to it.
type shard struct {
	drives map[string]*driveRoll
	recIdx []int32 // input indexes of today's records, in input order
	x      []float64
	meta   []features.EmittedRow
	rowOff int // row offset of this shard within the day's arena
}

// recPlan locates one input record's emitted rows inside its shard.
type recPlan struct {
	shard  int32
	rowOff int32 // rows before this record within the shard
	rows   int32 // emitted rows (0 = dropped drive)
	outOff int32 // offset into the output slice
}

// Scorer scores fleet telemetry day batches against a deployed model.
// Methods are safe for concurrent use, but days must be ingested in
// order, so callers typically drive it from one goroutine.
type Scorer struct {
	mu         sync.Mutex
	model      *core.Model
	ext        *features.Extractor
	policy     dataset.GapPolicy
	alarmAfter int
	workers    int
	registries map[string]*firmware.Registry

	seed   maphash.Seed
	shards []shard

	// Pooled per-call scratch.
	plans  []recPlan
	xs     [][]float64
	scores []float64
	errIdx []int // per-shard index of the first failing record, -1 = none
	errs   []error
}

// New builds a scorer around a deployed model.
func New(model *core.Model, opts Options) (*Scorer, error) {
	if model == nil || model.Classifier == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return nil, fmt.Errorf("serve: sequence models (%s) are not supported; deploy a flat model", model.Config.Algorithm)
	}
	alarmAfter := opts.AlarmAfter
	if alarmAfter == 0 {
		alarmAfter = 2
	}
	if alarmAfter < 1 {
		return nil, fmt.Errorf("serve: AlarmAfter %d must be ≥ 1", alarmAfter)
	}
	nshards := opts.Shards
	if nshards == 0 {
		nshards = 32
	}
	if nshards < 1 {
		return nil, fmt.Errorf("serve: Shards %d must be ≥ 1", nshards)
	}
	policy := opts.GapPolicy
	if policy == (dataset.GapPolicy{}) {
		policy = model.Config.GapPolicy
	}
	if policy == (dataset.GapPolicy{}) {
		policy = dataset.DefaultGapPolicy()
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	ext, err := features.NewExtractor(model.Config.Group, opts.Registries)
	if err != nil {
		return nil, err
	}
	if model.Width != 0 && ext.Width() != model.Width {
		return nil, fmt.Errorf("serve: model width %d does not match group %s width %d",
			model.Width, model.Config.Group, ext.Width())
	}
	s := &Scorer{
		model:      model,
		ext:        ext,
		policy:     policy,
		alarmAfter: alarmAfter,
		workers:    opts.Workers,
		registries: opts.Registries,
		seed:       maphash.MakeSeed(),
		shards:     make([]shard, nshards),
		errIdx:     make([]int, nshards),
		errs:       make([]error, nshards),
	}
	for i := range s.shards {
		s.shards[i].drives = make(map[string]*driveRoll)
		// Non-nil from the start: a nil x tells Advance to skip
		// extraction, which ObserveDay never wants.
		s.shards[i].x = make([]float64, 0, ext.Width())
	}
	return s, nil
}

// shardOf hashes a serial number to its shard. The seed is per-Scorer,
// so shard contents are an implementation detail; outputs never depend
// on the assignment.
func (s *Scorer) shardOf(sn string) int {
	return int(maphash.String(s.seed, sn) % uint64(len(s.shards)))
}

// roll returns (creating if needed) a shard's state for sn.
func (sh *shard) rollFor(sn string) *driveRoll {
	dr, ok := sh.drives[sn]
	if !ok {
		dr = &driveRoll{roll: features.NewRollingState()}
		sh.drives[sn] = dr
	}
	return dr
}

// ObserveDay ingests one day of raw (daily-count) fleet telemetry and
// returns one assessment per emitted feature row — mean-filled days
// precede their record's own day — plus one Dropped entry per record
// whose drive the gap policy has excluded. Results are in input-record
// order and identical at any Workers/Shards setting.
//
// The batch does not need to share a literal calendar day; any set of
// records is accepted as long as each drive's records arrive in
// chronological order (within and across calls). On error, records
// preceding the failure (and records of other shards) may already have
// advanced their drives' state, exactly as a serial per-record loop
// that failed midway would have.
func (s *Scorer) ObserveDay(recs []dataset.Record) ([]Assessment, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Serial pre-pass: validate, register firmware versions with the
	// encoders (the only extractor mutation — after this, extraction is
	// read-only and safe to fan out), and route records to shards.
	for i := range s.shards {
		s.shards[i].recIdx = s.shards[i].recIdx[:0]
		s.errIdx[i] = -1
		s.errs[i] = nil
	}
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return nil, err
		}
		s.ext.PrimeVersion(recs[i].Vendor, recs[i].Firmware)
		si := s.shardOf(recs[i].SerialNumber)
		s.shards[si].recIdx = append(s.shards[si].recIdx, int32(i))
	}
	if cap(s.plans) < len(recs) {
		s.plans = make([]recPlan, len(recs))
	}
	s.plans = s.plans[:len(recs)]

	// Fan out: each shard advances its drives in input order and
	// accumulates feature rows into its pooled arena slab.
	width := s.ext.Width()
	nsh := len(s.shards)
	_ = parallel.Do(nsh, s.workers, func(si int) error {
		sh := &s.shards[si]
		sh.x = sh.x[:0]
		sh.meta = sh.meta[:0]
		for _, ri := range sh.recIdx {
			rec := &recs[ri]
			dr := sh.rollFor(rec.SerialNumber)
			before := len(sh.meta)
			x, meta, err := dr.roll.Advance(s.ext, s.policy, rec, sh.x, sh.meta)
			sh.x, sh.meta = x, meta
			if err != nil {
				s.errIdx[si] = int(ri)
				s.errs[si] = err
				return nil // surfaced after the join, lowest index wins
			}
			s.plans[ri] = recPlan{shard: int32(si), rowOff: int32(before), rows: int32(len(sh.meta) - before)}
		}
		return nil
	})
	first := -1
	for si := 0; si < nsh; si++ {
		if s.errIdx[si] >= 0 && (first < 0 || s.errIdx[si] < s.errIdx[first]) {
			first = si
		}
	}
	if first >= 0 {
		return nil, s.errs[first]
	}

	// Stitch the shard slabs into one row-pointer batch and score it
	// through the flattened kernel in a single call.
	totalRows := 0
	for si := range s.shards {
		s.shards[si].rowOff = totalRows
		totalRows += len(s.shards[si].meta)
	}
	entries := 0
	for i := range recs {
		p := &s.plans[i]
		n := int32(1) // dropped records still produce one entry
		if p.rows > 0 {
			n = p.rows
		}
		p.outOff = int32(entries)
		entries += int(n)
	}
	s.xs = s.xs[:0]
	for si := range s.shards {
		sh := &s.shards[si]
		for r := 0; r < len(sh.meta); r++ {
			s.xs = append(s.xs, sh.x[r*width:(r+1)*width:(r+1)*width])
		}
	}
	if cap(s.scores) < totalRows {
		s.scores = make([]float64, totalRows)
	}
	s.scores = s.scores[:totalRows]
	ml.ScoreBatch(s.model.Classifier, s.xs, s.scores, s.workers)

	// Merge: each shard applies hysteresis to its own drives (disjoint,
	// so no locking) and writes assessments at precomputed offsets.
	out := make([]Assessment, entries)
	threshold := s.model.Threshold
	_ = parallel.Do(nsh, s.workers, func(si int) error {
		sh := &s.shards[si]
		for _, ri := range sh.recIdx {
			rec := &recs[ri]
			p := &s.plans[ri]
			if p.rows == 0 {
				out[p.outOff] = Assessment{SerialNumber: rec.SerialNumber, Day: rec.Day, Dropped: true}
				continue
			}
			dr := sh.drives[rec.SerialNumber]
			for k := int32(0); k < p.rows; k++ {
				m := sh.meta[p.rowOff+k]
				score := s.scores[sh.rowOff+int(p.rowOff+k)]
				flagged := score >= threshold
				if flagged {
					dr.consecutive++
				} else {
					dr.consecutive = 0
				}
				if dr.consecutive >= s.alarmAfter {
					dr.alarmed = true
				}
				out[p.outOff+k] = Assessment{
					SerialNumber:     rec.SerialNumber,
					Day:              int(m.Day),
					Probability:      score,
					Flagged:          flagged,
					Interpolated:     m.Interpolated,
					ConsecutiveFlags: dr.consecutive,
					Alarmed:          dr.alarmed,
				}
			}
		}
		return nil
	})
	return out, nil
}

// ReplayStats summarises a ReplayFrame pass.
type ReplayStats struct {
	// Drives is the number of drives touched.
	Drives int
	// Records is the number of frame rows consumed.
	Records int
	// Rows is the number of feature rows the offline pipeline would
	// have produced for them (mean-filled days included).
	Rows int
	// Dropped is how many drives the gap policy excluded.
	Dropped int
}

// ReplayFrame bootstraps per-drive state from historical telemetry in
// one frame-native bulk pass: every drive's rows advance its
// RollingState without materialising records, extracting features, or
// scoring — catch-up only needs the cumulates, so it runs at memory
// speed. The frame must hold raw daily counts (running totals cannot
// be split back into the exact daily vectors a future mean-fill
// needs). Scoring then resumes with ObserveDay for subsequent days.
func (s *Scorer) ReplayFrame(f *dataset.Frame) (ReplayStats, error) {
	if f.Cumulated() {
		return ReplayStats{}, fmt.Errorf("serve: ReplayFrame needs raw daily counts, got a cumulated frame")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Serial pre-pass: register firmware versions (drive-major, the
	// offline priming order) and route drives to shards.
	s.ext.PrimeFrame(f)
	lists := make([][]int32, len(s.shards))
	for di := 0; di < f.Drives(); di++ {
		si := s.shardOf(f.Drive(di).SerialNumber)
		lists[si] = append(lists[si], int32(di))
	}
	for si := range s.shards {
		s.errIdx[si] = -1
		s.errs[si] = nil
	}
	stats := parallel.Collect(len(s.shards), s.workers, func(si int) ReplayStats {
		var st ReplayStats
		sh := &s.shards[si]
		for _, di := range lists[si] {
			d := f.Drive(int(di))
			dr := sh.rollFor(d.SerialNumber)
			st.Drives++
			wasDropped := dr.roll.Dropped()
			rows0 := dr.roll.Rows()
			for r := int(d.Start); r < int(d.End); r++ {
				_, meta, err := dr.roll.AdvanceRow(s.ext, s.policy, d.SerialNumber, d.Vendor, int(f.Day(r)),
					f.SmartRow(r), f.FirmwareAt(r), f.WRow(r), f.BRow(r), nil, sh.meta[:0])
				sh.meta = meta[:0]
				if err != nil {
					s.errIdx[si] = int(di)
					s.errs[si] = err
					return st
				}
				st.Records++
			}
			st.Rows += dr.roll.Rows() - rows0
			if dr.roll.Dropped() && !wasDropped {
				st.Dropped++
			}
		}
		return st
	})
	first := -1
	for si := range s.shards {
		if s.errIdx[si] >= 0 && (first < 0 || s.errIdx[si] < s.errIdx[first]) {
			first = si
		}
	}
	if first >= 0 {
		return ReplayStats{}, s.errs[first]
	}
	var total ReplayStats
	for _, st := range stats {
		total.Drives += st.Drives
		total.Records += st.Records
		total.Rows += st.Rows
		total.Dropped += st.Dropped
	}
	return total, nil
}

// UpdateModel swaps in a newly pushed model. The feature group must
// match so the accumulated per-drive state stays valid.
func (s *Scorer) UpdateModel(model *core.Model) error {
	if model == nil || model.Classifier == nil {
		return fmt.Errorf("serve: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return fmt.Errorf("serve: sequence models are not supported")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if model.Config.Group != s.model.Config.Group {
		return fmt.Errorf("serve: pushed model uses group %s, scorer runs %s",
			model.Config.Group, s.model.Config.Group)
	}
	ext, err := features.NewExtractor(model.Config.Group, s.registries)
	if err != nil {
		return err
	}
	s.model = model
	s.ext = ext
	return nil
}

// Threshold returns the active model's decision threshold.
func (s *Scorer) Threshold() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Threshold
}

// Drives lists the serial numbers observed so far, sorted.
func (s *Scorer) Drives() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for i := range s.shards {
		for sn := range s.shards[i].drives {
			out = append(out, sn)
		}
	}
	sort.Strings(out)
	return out
}

// Alarmed reports whether a drive's alarm has latched.
func (s *Scorer) Alarmed(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	return ok && dr.alarmed
}

// Dropped reports whether the gap policy has excluded a drive.
func (s *Scorer) Dropped(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	return ok && dr.roll.Dropped()
}

// ResetDrive clears a drive's state (e.g. after replacement). It
// reports whether the drive was known.
func (s *Scorer) ResetDrive(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := &s.shards[s.shardOf(sn)]
	if _, ok := sh.drives[sn]; !ok {
		return false
	}
	delete(sh.drives, sn)
	return true
}

// Window returns a drive's trailing-window diagnostics.
func (s *Scorer) Window(sn string) (features.WindowStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	if !ok {
		return features.WindowStats{}, false
	}
	return dr.roll.Window(), true
}
