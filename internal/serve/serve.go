// Package serve is the fleet-side daily scoring engine — the serving
// counterpart of the offline pipeline speedups. Where the client agent
// scores one record at a time, the Scorer ingests a whole day of fleet
// telemetry at once: drives are sharded by serial hash across
// internal/parallel workers, each shard advances its drives'
// RollingStates and accumulates the day's feature rows into a pooled
// flat arena, the whole day is scored through ml.ScoreBatch in one
// call (hitting the flattened batch kernel), and per-shard results are
// merged back into input order deterministically. Feature rows and
// scores are bit-identical to the offline
// CleanDiscontinuity→Cumulate→extract pipeline at any worker or shard
// count.
//
// Production telemetry is messy, so the scorer is fail-soft, not
// fail-stop. A record that fails validation or feature extraction
// quarantines that drive — with a typed reason — instead of aborting
// the fleet sweep; the rest of the day scores bit-identically to a run
// that never saw the bad record. A scoring-backend failure degrades
// the day onto the vendor SMART-threshold detector instead of losing
// it, and the scorer recovers by itself on the next healthy sweep.
// Quarantine decisions are made per drive in input order, so the
// ledger is deterministic at any worker or shard count.
package serve

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/ml"
	"repro/internal/parallel"
)

// FaultHooks are the scorer's error seams for deterministic fault
// injection (see internal/faultinject). All fields are optional; the
// zero value disables injection and restores the exact production
// path.
type FaultHooks struct {
	// Observe runs at the top of ObserveDay, before any state mutates;
	// an error fails the whole batch transiently (safe to retry).
	Observe func() error
	// Score runs before the day's batch-scoring call; an error forces
	// the day onto the degraded fallback detector.
	Score func() error
	// Swap runs at the top of UpdateModel; an error fails the swap and
	// keeps the current model serving.
	Swap func() error
}

// Options configures a Scorer.
type Options struct {
	// Workers bounds the goroutines of the shard fan-out and the batch
	// scoring kernel: 0 = GOMAXPROCS, 1 = serial. Outputs are identical
	// at any setting.
	Workers int
	// Shards is the number of drive shards; 0 selects 32. More shards
	// than workers keeps the fan-out balanced when drive populations
	// are skewed.
	Shards int
	// AlarmAfter is how many consecutive flagged rows latch a drive's
	// alarm; 0 selects 2.
	AlarmAfter int
	// GapPolicy is the discontinuity optimisation applied online; the
	// zero value selects the model's own pipeline policy
	// (model.Config.GapPolicy), keeping serving faithful to training.
	GapPolicy dataset.GapPolicy
	// Registries supplies per-vendor firmware ladders; nil falls back
	// to first-seen-order encoding.
	Registries map[string]*firmware.Registry
	// StrictFirmware quarantines records whose firmware version is
	// absent from their vendor's registry instead of minting a
	// first-seen code — the right setting when registries are complete
	// and an unknown version means a corrupt or spoofed record.
	// Vendors without a registry are never strict-checked.
	StrictFirmware bool
	// Faults injects deterministic failures for chaos testing; the
	// zero value disables injection.
	Faults FaultHooks
}

// QuarantineReason classifies why a drive was quarantined.
type QuarantineReason uint8

const (
	// QuarantineNone marks a healthy drive.
	QuarantineNone QuarantineReason = iota
	// QuarantineBadRecord is a malformed record: empty serial, negative
	// day, or wrong counter widths.
	QuarantineBadRecord
	// QuarantineBadValue is value-level corruption: NaN/Inf telemetry
	// or feature values, or negative event counters.
	QuarantineBadValue
	// QuarantineRollingError is a rolling-state failure: out-of-order
	// or duplicate days, changed counter widths, or an unfillable gap.
	QuarantineRollingError
	// QuarantineUnknownFirmware is a firmware version absent from the
	// vendor's registry under Options.StrictFirmware.
	QuarantineUnknownFirmware
)

// String names the reason for ledgers and logs.
func (r QuarantineReason) String() string {
	switch r {
	case QuarantineNone:
		return "none"
	case QuarantineBadRecord:
		return "bad-record"
	case QuarantineBadValue:
		return "bad-value"
	case QuarantineRollingError:
		return "rolling-error"
	case QuarantineUnknownFirmware:
		return "unknown-firmware"
	default:
		return "unknown"
	}
}

// QuarantineEntry is one drive's quarantine ledger entry.
type QuarantineEntry struct {
	// SerialNumber identifies the quarantined drive.
	SerialNumber string
	// Day is the day of the record that triggered the quarantine.
	Day int
	// Reason classifies the trigger.
	Reason QuarantineReason
	// Err is the underlying error text.
	Err string
}

// SweepStats summarises one ObserveDay batch.
type SweepStats struct {
	// Records is how many input records the batch carried.
	Records int
	// Scored is how many feature rows were scored (mean-filled days
	// included).
	Scored int
	// Dropped counts records of gap-policy-excluded drives.
	Dropped int
	// Quarantined counts records that newly quarantined their drive
	// this batch.
	Quarantined int
	// Skipped counts records consumed while their drive was already
	// quarantined.
	Skipped int
	// Degraded is how many rows were scored by the fallback detector
	// because the scoring backend failed (0 on healthy days).
	Degraded int
}

// Assessment is the outcome of scoring one emitted drive-day row (or
// one consumed record of a dropped or quarantined drive).
type Assessment struct {
	SerialNumber string
	Day          int
	// Probability is the model's P(faulty); meaningless when Dropped
	// or Quarantined.
	Probability float64
	// Flagged reports Probability ≥ the model's threshold.
	Flagged bool
	// Interpolated marks rows synthesised by mean-fill.
	Interpolated bool
	// ConsecutiveFlags counts the current run of flagged rows.
	ConsecutiveFlags int
	// Alarmed reports the hysteresis criterion has latched.
	Alarmed bool
	// Dropped reports the drive was excluded by the gap policy (the
	// offline pipeline would not score it); no probability is attached.
	Dropped bool
	// Quarantined reports the record was rejected (or its drive was
	// already quarantined); no probability is attached. The scorer's
	// ledger carries the typed reason.
	Quarantined bool
	// Degraded reports the probability came from the fallback
	// SMART-threshold detector because the scoring backend failed.
	Degraded bool
}

// driveRoll is one drive's serving state: the rolling feature state,
// alarm hysteresis, and its quarantine entry (Reason ==
// QuarantineNone while healthy).
type driveRoll struct {
	roll        *features.RollingState
	consecutive int
	alarmed     bool
	q           QuarantineEntry
}

// shard owns a disjoint subset of the fleet's drives plus the pooled
// per-day scratch its worker fills: the feature-row arena, row
// metadata, and the record indexes routed to it.
type shard struct {
	drives map[string]*driveRoll
	recIdx []int32 // input indexes of today's records, in input order
	x      []float64
	meta   []features.EmittedRow
	rowOff int // row offset of this shard within the day's arena
	stats  SweepStats
}

// planKind classifies one input record's outcome.
type planKind int8

const (
	planRows    planKind = iota // emitted ≥1 scored feature rows
	planDropped                 // gap-policy-excluded drive
	planQuar                    // record newly quarantined its drive
	planSkip                    // drive was already quarantined
)

// recPlan locates one input record's emitted rows inside its shard.
type recPlan struct {
	shard  int32
	rowOff int32 // rows before this record within the shard
	rows   int32 // emitted rows
	outOff int32 // offset into the output slice
	kind   planKind
}

// Scorer scores fleet telemetry day batches against a deployed model.
// Methods are safe for concurrent use, but days must be ingested in
// order, so callers typically drive it from one goroutine.
type Scorer struct {
	mu         sync.Mutex
	model      *core.Model
	ext        *features.Extractor
	policy     dataset.GapPolicy
	alarmAfter int
	workers    int
	registries map[string]*firmware.Registry
	strictFW   bool
	faults     FaultHooks
	fallback   ml.Classifier // degraded-mode detector; nil when the group lacks SMART
	degraded   bool          // last scored batch used the fallback

	seed   maphash.Seed
	shards []shard

	// Pooled per-call scratch.
	plans  []recPlan
	xs     [][]float64
	scores []float64
}

// New builds a scorer around a deployed model.
func New(model *core.Model, opts Options) (*Scorer, error) {
	if model == nil || model.Classifier == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return nil, fmt.Errorf("serve: sequence models (%s) are not supported; deploy a flat model", model.Config.Algorithm)
	}
	alarmAfter := opts.AlarmAfter
	if alarmAfter == 0 {
		alarmAfter = 2
	}
	if alarmAfter < 1 {
		return nil, fmt.Errorf("serve: AlarmAfter %d must be ≥ 1", alarmAfter)
	}
	nshards := opts.Shards
	if nshards == 0 {
		nshards = 32
	}
	if nshards < 1 {
		return nil, fmt.Errorf("serve: Shards %d must be ≥ 1", nshards)
	}
	policy := opts.GapPolicy
	if policy == (dataset.GapPolicy{}) {
		policy = model.Config.GapPolicy
	}
	if policy == (dataset.GapPolicy{}) {
		policy = dataset.DefaultGapPolicy()
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	ext, err := features.NewExtractor(model.Config.Group, opts.Registries)
	if err != nil {
		return nil, err
	}
	if model.Width != 0 && ext.Width() != model.Width {
		return nil, fmt.Errorf("serve: model width %d does not match group %s width %d",
			model.Width, model.Config.Group, ext.Width())
	}
	s := &Scorer{
		model:      model,
		ext:        ext,
		policy:     policy,
		alarmAfter: alarmAfter,
		workers:    opts.Workers,
		registries: opts.Registries,
		strictFW:   opts.StrictFirmware,
		faults:     opts.Faults,
		seed:       maphash.MakeSeed(),
		shards:     make([]shard, nshards),
	}
	if model.Config.Group.SMART {
		// Feature rows lead with the 16 SMART attributes, exactly the
		// view the vendor threshold detector expects.
		s.fallback = baselines.ThresholdDetector{}
	}
	for i := range s.shards {
		s.shards[i].drives = make(map[string]*driveRoll)
		// Non-nil from the start: a nil x tells Advance to skip
		// extraction, which ObserveDay never wants.
		s.shards[i].x = make([]float64, 0, ext.Width())
	}
	return s, nil
}

// shardOf hashes a serial number to its shard. The seed is per-Scorer,
// so shard contents are an implementation detail; outputs never depend
// on the assignment.
func (s *Scorer) shardOf(sn string) int {
	return int(maphash.String(s.seed, sn) % uint64(len(s.shards)))
}

// roll returns (creating if needed) a shard's state for sn.
func (sh *shard) rollFor(sn string) *driveRoll {
	dr, ok := sh.drives[sn]
	if !ok {
		dr = &driveRoll{roll: features.NewRollingState()}
		sh.drives[sn] = dr
	}
	return dr
}

// quarantineReasonFor classifies a validation error: value-level
// corruption carries the dataset sentinels, everything else is a
// malformed record.
func quarantineReasonFor(err error) QuarantineReason {
	if errors.Is(err, dataset.ErrNonFinite) || errors.Is(err, dataset.ErrNegativeCounter) {
		return QuarantineBadValue
	}
	return QuarantineBadRecord
}

// finiteRows reports whether every value in rows is finite. NaN and
// ±Inf compare unequal to themselves under subtraction tricks, but the
// plain self-comparison plus range check is clearest.
func finiteRows(rows []float64) bool {
	for _, v := range rows {
		if v != v || v > maxFinite || v < -maxFinite {
			return false
		}
	}
	return true
}

const maxFinite = 1.7976931348623157e308 // math.MaxFloat64

// ObserveDay ingests one day of raw (daily-count) fleet telemetry and
// returns one assessment per emitted feature row — mean-filled days
// precede their record's own day — plus one entry per record whose
// drive was dropped by the gap policy, quarantined, or skipped because
// its drive was already quarantined. Results are in input-record order
// and identical at any Workers/Shards setting, and the per-batch
// SweepStats account for every input record.
//
// The batch does not need to share a literal calendar day; any set of
// records is accepted as long as each drive's records arrive in
// chronological order (within and across calls). A record that fails
// validation or extraction quarantines that drive only — the rest of
// the fleet scores bit-identically to a batch that never carried the
// bad record. The only error return is the injected transient observe
// fault, which fires before any state mutates, so a failed call is
// safe to retry with the same batch.
func (s *Scorer) ObserveDay(recs []dataset.Record) ([]Assessment, SweepStats, error) {
	var stats SweepStats
	if len(recs) == 0 {
		return nil, stats, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faults.Observe != nil {
		if err := s.faults.Observe(); err != nil {
			return nil, stats, fmt.Errorf("serve: observe batch: %w", err)
		}
	}
	stats.Records = len(recs)

	// Serial pre-pass: skip records of quarantined drives, validate,
	// quarantine corrupt records, register firmware versions with the
	// encoders (the only extractor mutation — after this, extraction is
	// read-only and safe to fan out), and route healthy records to
	// shards. Quarantine decisions happen here in input order, so the
	// ledger never depends on worker or shard count.
	for i := range s.shards {
		s.shards[i].recIdx = s.shards[i].recIdx[:0]
		s.shards[i].stats = SweepStats{}
	}
	if cap(s.plans) < len(recs) {
		s.plans = make([]recPlan, len(recs))
	}
	s.plans = s.plans[:len(recs)]
	for i := range recs {
		rec := &recs[i]
		si := s.shardOf(rec.SerialNumber)
		sh := &s.shards[si]
		if dr, ok := sh.drives[rec.SerialNumber]; ok && dr.q.Reason != QuarantineNone {
			s.plans[i] = recPlan{shard: int32(si), kind: planSkip}
			stats.Skipped++
			continue
		}
		if err := rec.Validate(); err != nil {
			dr := sh.rollFor(rec.SerialNumber)
			dr.q = QuarantineEntry{SerialNumber: rec.SerialNumber, Day: rec.Day,
				Reason: quarantineReasonFor(err), Err: err.Error()}
			s.plans[i] = recPlan{shard: int32(si), kind: planQuar}
			stats.Quarantined++
			continue
		}
		if s.strictFW {
			if reg, ok := s.registries[rec.Vendor]; ok {
				if _, known := reg.ByVersion(rec.Firmware); !known {
					dr := sh.rollFor(rec.SerialNumber)
					dr.q = QuarantineEntry{SerialNumber: rec.SerialNumber, Day: rec.Day,
						Reason: QuarantineUnknownFirmware,
						Err:    fmt.Sprintf("serve: drive %s firmware %q not in vendor %s registry", rec.SerialNumber, rec.Firmware, rec.Vendor)}
					s.plans[i] = recPlan{shard: int32(si), kind: planQuar}
					stats.Quarantined++
					continue
				}
			}
		}
		s.ext.PrimeVersion(rec.Vendor, rec.Firmware)
		sh.recIdx = append(sh.recIdx, int32(i))
	}

	// Fan out: each shard advances its drives in input order and
	// accumulates feature rows into its pooled arena slab. A failing
	// record quarantines its drive and the shard moves on; quarantine
	// is still deterministic because each drive lives in exactly one
	// shard and its records process in input order.
	width := s.ext.Width()
	nsh := len(s.shards)
	_ = parallel.Do(nsh, s.workers, func(si int) error {
		sh := &s.shards[si]
		sh.x = sh.x[:0]
		sh.meta = sh.meta[:0]
		for _, ri := range sh.recIdx {
			rec := &recs[ri]
			dr := sh.rollFor(rec.SerialNumber)
			if dr.q.Reason != QuarantineNone {
				// Quarantined earlier in this very batch.
				s.plans[ri] = recPlan{shard: int32(si), kind: planSkip}
				sh.stats.Skipped++
				continue
			}
			before := len(sh.meta)
			x, meta, err := dr.roll.Advance(s.ext, s.policy, rec, sh.x, sh.meta)
			sh.x, sh.meta = x, meta
			if err != nil {
				sh.x = sh.x[:before*width]
				sh.meta = sh.meta[:before]
				dr.q = QuarantineEntry{SerialNumber: rec.SerialNumber, Day: rec.Day,
					Reason: QuarantineRollingError, Err: err.Error()}
				s.plans[ri] = recPlan{shard: int32(si), kind: planQuar}
				sh.stats.Quarantined++
				continue
			}
			if !finiteRows(sh.x[before*width:]) {
				sh.x = sh.x[:before*width]
				sh.meta = sh.meta[:before]
				dr.q = QuarantineEntry{SerialNumber: rec.SerialNumber, Day: rec.Day,
					Reason: QuarantineBadValue,
					Err:    fmt.Sprintf("serve: drive %s day %d produced a non-finite feature", rec.SerialNumber, rec.Day)}
				s.plans[ri] = recPlan{shard: int32(si), kind: planQuar}
				sh.stats.Quarantined++
				continue
			}
			rows := int32(len(sh.meta) - before)
			kind := planRows
			if rows == 0 {
				kind = planDropped
				sh.stats.Dropped++
			}
			s.plans[ri] = recPlan{shard: int32(si), rowOff: int32(before), rows: rows, kind: kind}
		}
		return nil
	})
	for si := range s.shards {
		st := &s.shards[si].stats
		stats.Quarantined += st.Quarantined
		stats.Skipped += st.Skipped
		stats.Dropped += st.Dropped
	}

	// Stitch the shard slabs into one row-pointer batch and score it
	// through the flattened kernel in a single call. A scoring-backend
	// failure degrades the day onto the SMART-threshold detector
	// instead of losing it; the next healthy batch recovers.
	totalRows := 0
	for si := range s.shards {
		s.shards[si].rowOff = totalRows
		totalRows += len(s.shards[si].meta)
	}
	entries := 0
	for i := range recs {
		p := &s.plans[i]
		n := int32(1) // dropped/quarantined/skipped records still produce one entry
		if p.kind == planRows {
			n = p.rows
		}
		p.outOff = int32(entries)
		entries += int(n)
	}
	s.xs = s.xs[:0]
	for si := range s.shards {
		sh := &s.shards[si]
		for r := 0; r < len(sh.meta); r++ {
			s.xs = append(s.xs, sh.x[r*width:(r+1)*width:(r+1)*width])
		}
	}
	if cap(s.scores) < totalRows {
		s.scores = make([]float64, totalRows)
	}
	s.scores = s.scores[:totalRows]
	dayDegraded := false
	if totalRows > 0 {
		if s.faults.Score != nil {
			if err := s.faults.Score(); err != nil {
				dayDegraded = true
			}
		}
		if dayDegraded {
			for r, x := range s.xs {
				if s.fallback != nil {
					s.scores[r] = s.fallback.PredictProba(x)
				} else {
					s.scores[r] = 0
				}
			}
			stats.Degraded = totalRows
		} else {
			ml.ScoreBatch(s.model.Classifier, s.xs, s.scores, s.workers)
		}
		s.degraded = dayDegraded
	}
	stats.Scored = totalRows

	// Merge: each shard applies hysteresis to its own drives (disjoint,
	// so no locking) and writes assessments at precomputed offsets.
	out := make([]Assessment, entries)
	threshold := s.model.Threshold
	_ = parallel.Do(nsh, s.workers, func(si int) error {
		sh := &s.shards[si]
		for _, ri := range sh.recIdx {
			rec := &recs[ri]
			p := &s.plans[ri]
			switch p.kind {
			case planDropped:
				out[p.outOff] = Assessment{SerialNumber: rec.SerialNumber, Day: rec.Day, Dropped: true}
				continue
			case planQuar, planSkip:
				// Written by the serial quarantine pass below.
				continue
			}
			dr := sh.drives[rec.SerialNumber]
			for k := int32(0); k < p.rows; k++ {
				m := sh.meta[p.rowOff+k]
				score := s.scores[sh.rowOff+int(p.rowOff+k)]
				flagged := score >= threshold
				if flagged {
					dr.consecutive++
				} else {
					dr.consecutive = 0
				}
				if dr.consecutive >= s.alarmAfter {
					dr.alarmed = true
				}
				out[p.outOff+k] = Assessment{
					SerialNumber:     rec.SerialNumber,
					Day:              int(m.Day),
					Probability:      score,
					Flagged:          flagged,
					Interpolated:     m.Interpolated,
					ConsecutiveFlags: dr.consecutive,
					Alarmed:          dr.alarmed,
					Degraded:         dayDegraded,
				}
			}
		}
		return nil
	})
	// Serial pass for the records the fan-out never routed or the
	// shards rejected: one Quarantined entry each.
	for i := range recs {
		if k := s.plans[i].kind; k == planQuar || k == planSkip {
			out[s.plans[i].outOff] = Assessment{SerialNumber: recs[i].SerialNumber, Day: recs[i].Day, Quarantined: true}
		}
	}
	return out, stats, nil
}

// ReplayStats summarises a ReplayFrame pass.
type ReplayStats struct {
	// Drives is the number of drives touched.
	Drives int
	// Records is the number of frame rows consumed.
	Records int
	// Rows is the number of feature rows the offline pipeline would
	// have produced for them (mean-filled days included).
	Rows int
	// Dropped is how many drives the gap policy excluded.
	Dropped int
	// Quarantined is how many drives a rolling-state error quarantined
	// mid-replay (their remaining rows are skipped).
	Quarantined int
}

// ReplayFrame bootstraps per-drive state from historical telemetry in
// one frame-native bulk pass: every drive's rows advance its
// RollingState without materialising records, extracting features, or
// scoring — catch-up only needs the cumulates, so it runs at memory
// speed. The frame must hold raw daily counts (running totals cannot
// be split back into the exact daily vectors a future mean-fill
// needs). Scoring then resumes with ObserveDay for subsequent days.
//
// A drive whose history fails to advance is quarantined (ledger reason
// rolling-error) and its remaining rows skipped; the other drives
// replay unaffected.
func (s *Scorer) ReplayFrame(f *dataset.Frame) (ReplayStats, error) {
	if f.Cumulated() {
		return ReplayStats{}, fmt.Errorf("serve: ReplayFrame needs raw daily counts, got a cumulated frame")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Serial pre-pass: register firmware versions (drive-major, the
	// offline priming order) and route drives to shards.
	s.ext.PrimeFrame(f)
	lists := make([][]int32, len(s.shards))
	for di := 0; di < f.Drives(); di++ {
		si := s.shardOf(f.Drive(di).SerialNumber)
		lists[si] = append(lists[si], int32(di))
	}
	stats := parallel.Collect(len(s.shards), s.workers, func(si int) ReplayStats {
		var st ReplayStats
		sh := &s.shards[si]
		for _, di := range lists[si] {
			d := f.Drive(int(di))
			dr := sh.rollFor(d.SerialNumber)
			if dr.q.Reason != QuarantineNone {
				continue
			}
			st.Drives++
			wasDropped := dr.roll.Dropped()
			rows0 := dr.roll.Rows()
			for r := int(d.Start); r < int(d.End); r++ {
				_, meta, err := dr.roll.AdvanceRow(s.ext, s.policy, d.SerialNumber, d.Vendor, int(f.Day(r)),
					f.SmartRow(r), f.FirmwareAt(r), f.WRow(r), f.BRow(r), nil, sh.meta[:0])
				sh.meta = meta[:0]
				if err != nil {
					dr.q = QuarantineEntry{SerialNumber: d.SerialNumber, Day: int(f.Day(r)),
						Reason: QuarantineRollingError, Err: err.Error()}
					st.Quarantined++
					break
				}
				st.Records++
			}
			st.Rows += dr.roll.Rows() - rows0
			if dr.roll.Dropped() && !wasDropped {
				st.Dropped++
			}
		}
		return st
	})
	var total ReplayStats
	for _, st := range stats {
		total.Drives += st.Drives
		total.Records += st.Records
		total.Rows += st.Rows
		total.Dropped += st.Dropped
		total.Quarantined += st.Quarantined
	}
	return total, nil
}

// UpdateModel swaps in a newly pushed model. The feature group must
// match so the accumulated per-drive state stays valid. A failed swap
// (including an injected one) leaves the current model serving.
func (s *Scorer) UpdateModel(model *core.Model) error {
	if model == nil || model.Classifier == nil {
		return fmt.Errorf("serve: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return fmt.Errorf("serve: sequence models are not supported")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faults.Swap != nil {
		if err := s.faults.Swap(); err != nil {
			return fmt.Errorf("serve: model swap: %w", err)
		}
	}
	if model.Config.Group != s.model.Config.Group {
		return fmt.Errorf("serve: pushed model uses group %s, scorer runs %s",
			model.Config.Group, s.model.Config.Group)
	}
	ext, err := features.NewExtractor(model.Config.Group, s.registries)
	if err != nil {
		return err
	}
	s.model = model
	s.ext = ext
	return nil
}

// Threshold returns the active model's decision threshold.
func (s *Scorer) Threshold() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Threshold
}

// Degraded reports whether the most recent scored batch fell back to
// the SMART-threshold detector. It clears by itself on the next
// healthy batch.
func (s *Scorer) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Drives lists the serial numbers observed so far, sorted.
func (s *Scorer) Drives() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for i := range s.shards {
		for sn := range s.shards[i].drives {
			out = append(out, sn)
		}
	}
	sort.Strings(out)
	return out
}

// Alarmed reports whether a drive's alarm has latched.
func (s *Scorer) Alarmed(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	return ok && dr.alarmed
}

// Dropped reports whether the gap policy has excluded a drive.
func (s *Scorer) Dropped(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	return ok && dr.roll.Dropped()
}

// Quarantined returns a drive's quarantine ledger entry, if any.
func (s *Scorer) Quarantined(sn string) (QuarantineEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	if !ok || dr.q.Reason == QuarantineNone {
		return QuarantineEntry{}, false
	}
	return dr.q, true
}

// QuarantineReasons returns the full quarantine ledger, sorted by
// serial number. The ledger is deterministic: the same telemetry feed
// produces the same entries at any worker or shard count.
func (s *Scorer) QuarantineReasons() []QuarantineEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []QuarantineEntry
	for i := range s.shards {
		for _, dr := range s.shards[i].drives {
			if dr.q.Reason != QuarantineNone {
				out = append(out, dr.q)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SerialNumber < out[j].SerialNumber })
	return out
}

// ReviveDrive lifts a drive's quarantine and resets its state, so the
// next record starts a fresh series — the operator's path after
// re-imaging or replacing a corrupt collector. It reports whether the
// drive was quarantined.
func (s *Scorer) ReviveDrive(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := &s.shards[s.shardOf(sn)]
	dr, ok := sh.drives[sn]
	if !ok || dr.q.Reason == QuarantineNone {
		return false
	}
	sh.drives[sn] = &driveRoll{roll: features.NewRollingState()}
	return true
}

// ResetDrive clears a drive's state (e.g. after replacement),
// quarantine entry included. It reports whether the drive was known.
func (s *Scorer) ResetDrive(sn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := &s.shards[s.shardOf(sn)]
	if _, ok := sh.drives[sn]; !ok {
		return false
	}
	delete(sh.drives, sn)
	return true
}

// Window returns a drive's trailing-window diagnostics.
func (s *Scorer) Window(sn string) (features.WindowStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.shards[s.shardOf(sn)].drives[sn]
	if !ok {
		return features.WindowStats{}, false
	}
	return dr.roll.Window(), true
}
