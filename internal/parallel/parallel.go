// Package parallel provides the bounded-worker fan-out primitive shared
// by the repository's hot paths: fleet simulation, discontinuity
// cleaning, feature extraction, hyper-parameter search, forest
// training, and batch scoring.
//
// The package exists to make concurrency boring. Every helper follows
// one convention:
//
//   - results come back in input order, regardless of scheduling;
//   - a workers value of 0 (or below) selects runtime.GOMAXPROCS(0);
//   - workers == 1 runs the loop inline on the calling goroutine with
//     no synchronisation at all, reproducing serial behaviour exactly —
//     the debugging escape hatch;
//   - on failure, the error produced at the lowest index wins, which is
//     the same error a serial left-to-right loop would have returned,
//     so error identity is deterministic across worker counts.
//
// Work items must be independent: fn is called at most once per index,
// possibly concurrently, and must not assume any inter-index ordering.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count configuration value: 0 or negative
// selects runtime.GOMAXPROCS(0); positive values are used as-is. The
// repository-wide convention is that 0 means "as parallel as the
// hardware allows" and 1 means "today's serial behaviour".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the n results in index order. Scheduling never affects
// the output: result i is always fn(i)'s value.
//
// If any call fails, Map returns the error raised at the lowest
// failing index — exactly the error a serial loop would surface — and
// a nil slice. Indexes above the lowest known failure may be skipped;
// indexes below it are always attempted, so the winning error cannot
// depend on goroutine timing.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next index to claim
		minFail atomic.Int64 // lowest failing index so far (n = none)
		mu      sync.Mutex
		errs    map[int]error
		wg      sync.WaitGroup
	)
	minFail.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// A failure at a lower index already decides the
				// outcome; anything above it cannot win, so skip the
				// work but keep draining indexes below the failure.
				if int64(i) > minFail.Load() {
					continue
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if errs == nil {
						errs = make(map[int]error)
					}
					errs[i] = err
					mu.Unlock()
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if f := int(minFail.Load()); f < n {
		return nil, errs[f]
	}
	return out, nil
}

// Do is Map without results: it runs fn(i) for every i in [0, n) on at
// most workers goroutines and returns the lowest-index error, if any.
func Do(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Collect is Map for infallible work: it fans fn out across workers
// and returns the results in index order.
func Collect[T any](n, workers int, fn func(i int) T) []T {
	out, _ := Map(n, workers, func(i int) (T, error) {
		return fn(i), nil
	})
	return out
}
