package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersConvention(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64, n + 5} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := Map(n, workers, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("len = %d, want %d", len(got), n)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { t.Fatal("fn called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	// Several indexes fail; the serial answer is the lowest one. The
	// parallel runs must return the identical error value.
	failAt := map[int]bool{40: true, 7: true, 93: true}
	fn := func(i int) (int, error) {
		if failAt[i] {
			return 0, fmt.Errorf("item %d broke", i)
		}
		return i, nil
	}
	serial, err1 := Map(100, 1, fn)
	if serial != nil || err1 == nil || err1.Error() != "item 7 broke" {
		t.Fatalf("serial = %v, %v", serial, err1)
	}
	for _, workers := range []int{2, 4, 16} {
		for rep := 0; rep < 20; rep++ {
			got, err := Map(100, workers, fn)
			if got != nil {
				t.Fatalf("workers=%d: results returned despite error", workers)
			}
			if err == nil || err.Error() != err1.Error() {
				t.Fatalf("workers=%d: err = %v, want %v", workers, err, err1)
			}
		}
	}
}

func TestMapErrorSkipsHigherWork(t *testing.T) {
	// After index 0 fails, indexes above it may be skipped but the
	// call must still terminate and report index 0's error.
	sentinel := errors.New("first")
	var calls atomic.Int64
	_, err := Map(1000, 8, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls.Load() == 0 {
		t.Fatal("fn never called")
	}
}

func TestDo(t *testing.T) {
	hits := make([]int32, 64)
	if err := Do(64, 0, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	want := errors.New("boom")
	if err := Do(8, 4, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Fatalf("Do error = %v", err)
	}
}

func TestCollect(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Collect(10, workers, func(i int) string { return fmt.Sprintf("#%d", i) })
		for i, v := range got {
			if v != fmt.Sprintf("#%d", i) {
				t.Fatalf("workers=%d: got[%d] = %q", workers, i, v)
			}
		}
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", Workers(workers)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Map(1024, workers, func(j int) (int, error) { return j, nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
