package dataset

import (
	"testing"

	"repro/internal/smartattr"
	"repro/internal/winevent"
)

func buildSet(t *testing.T, days map[string][]int) *Dataset {
	t.Helper()
	d := New()
	for sn, list := range days {
		for _, day := range list {
			r := rec(sn, day)
			r.WCounts[0] = 1 // one W_7 per observed day, for cumulate checks
			mustAppend(t, d, r)
		}
	}
	return d
}

func TestGapPolicyValidate(t *testing.T) {
	if err := DefaultGapPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GapPolicy{
		{DropGap: 1, FillGap: 0},
		{DropGap: 10, FillGap: 0},
		{DropGap: 5, FillGap: 6},
		{DropGap: 5, FillGap: 5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %+v should be invalid", p)
		}
	}
}

func TestCleanDropsLongGaps(t *testing.T) {
	d := buildSet(t, map[string][]int{
		"keep": {0, 1, 2, 3},
		"drop": {0, 1, 15}, // gap of 14 ≥ 10
	})
	out, stats, err := CleanDiscontinuity(d, DefaultGapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Series("drop"); ok {
		t.Fatal("drive with ≥10 day gap survived")
	}
	if _, ok := out.Series("keep"); !ok {
		t.Fatal("continuous drive was dropped")
	}
	if stats.DrivesDropped != 1 || stats.DrivesIn != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCleanFillsShortGaps(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 3}}) // gap of 3 → fill days 1, 2
	out, stats, err := CleanDiscontinuity(d, DefaultGapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := out.Series("A")
	if len(s.Records) != 4 {
		t.Fatalf("filled series has %d records, want 4", len(s.Records))
	}
	if stats.RecordsFilled != 2 {
		t.Fatalf("RecordsFilled = %d, want 2", stats.RecordsFilled)
	}
	for _, day := range []int{1, 2} {
		r, ok := s.At(day)
		if !ok {
			t.Fatalf("day %d not filled", day)
		}
		if !r.Interpolated {
			t.Errorf("day %d not marked interpolated", day)
		}
		// Mean of the adjacent PowerOnHours values (0*8 and 3*8).
		if got := r.Smart.Get(smartattr.PowerOnHours); got != 12 {
			t.Errorf("day %d PowerOnHours = %g, want mean 12", day, got)
		}
		if got := r.Firmware; got != "FW1" {
			t.Errorf("day %d firmware = %q, want carried FW1", day, got)
		}
	}
}

func TestCleanLeavesMediumGaps(t *testing.T) {
	// A gap of 5 is between FillGap (3) and DropGap (10): the drive
	// survives but keeps its hole.
	d := buildSet(t, map[string][]int{"A": {0, 5}})
	out, stats, err := CleanDiscontinuity(d, DefaultGapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := out.Series("A")
	if len(s.Records) != 2 {
		t.Fatalf("records = %d, want 2 (no fill)", len(s.Records))
	}
	if stats.RecordsFilled != 0 || stats.DrivesDropped != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCleanDoesNotMutateInput(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 3}})
	before := d.Len()
	if _, _, err := CleanDiscontinuity(d, DefaultGapPolicy()); err != nil {
		t.Fatal(err)
	}
	if d.Len() != before {
		t.Fatal("CleanDiscontinuity mutated its input")
	}
}

func TestCleanRejectsBadPolicy(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 1}})
	if _, _, err := CleanDiscontinuity(d, GapPolicy{DropGap: 3, FillGap: 5}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestCumulate(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 1, 2}})
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	s, _ := d.Series("A")
	want := []float64{1, 2, 3}
	for i, r := range s.Records {
		if got := r.WCounts.Get(winevent.BadBlock); got != want[i] {
			t.Errorf("record %d cumulative W_7 = %g, want %g", i, got, want[i])
		}
	}
}

func TestCumulateMonotone(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 1, 2, 3, 4, 5}})
	// Vary daily counts.
	s, _ := d.Series("A")
	for i := range s.Records {
		s.Records[i].WCounts[1] = float64(i % 3)
		s.Records[i].BCounts[0] = float64((i + 1) % 2)
	}
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Records); i++ {
		for j := range s.Records[i].WCounts {
			if s.Records[i].WCounts[j] < s.Records[i-1].WCounts[j] {
				t.Fatalf("W counts not monotone at record %d", i)
			}
		}
		for j := range s.Records[i].BCounts {
			if s.Records[i].BCounts[j] < s.Records[i-1].BCounts[j] {
				t.Fatalf("B counts not monotone at record %d", i)
			}
		}
	}
}

func TestGapHistogram(t *testing.T) {
	d := buildSet(t, map[string][]int{
		"A": {0, 1, 3}, // gaps 1, 2
		"B": {0, 20},   // gap 20 → clamped to maxGap
		"C": {0, 1, 2}, // gaps 1, 1
	})
	hist := GapHistogram(d, 5)
	if hist[1] != 3 {
		t.Errorf("hist[1] = %d, want 3", hist[1])
	}
	if hist[2] != 1 {
		t.Errorf("hist[2] = %d, want 1", hist[2])
	}
	if hist[5] != 1 {
		t.Errorf("hist[5] (clamped) = %d, want 1", hist[5])
	}
}
