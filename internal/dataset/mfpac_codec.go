package dataset

// The MFPAC block codec. A block is up to blockRows drive-day rows,
// encoded column-major so every slab compresses against its own
// history: days as zigzag-varint deltas, the interpolated flags as a
// bitmap, firmware codes as uvarints, and each float64 SMART/W/B
// column in whichever of three encodings is smallest for that column
// in that block —
//
//	modeRaw       8 bytes per value, the fallback for noisy columns;
//	modeXor       uvarint of the value's bits XOR the previous row's
//	              bits in the same column (slow-moving gauges XOR to
//	              mostly-zero low words);
//	modeIntDelta  zigzag uvarint of the int64 delta, only when every
//	              value round-trips float64→int64→float64 bit-exactly
//	              (event counters and integer-valued SMART attributes
//	              collapse to ~1 byte per value).
//
// Mode choice is by exact encoded size, computed before encoding, so
// output is deterministic; every value reproduces its original bits
// exactly, which is what lets the bench equivalence gate compare MFPAC
// loads against the CSV twin with math.Float64bits.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

const (
	mfpacModeRaw      = 0
	mfpacModeXor      = 1
	mfpacModeIntDelta = 2
)

// zigzag folds signed deltas into uvarint-friendly magnitudes.
func mfpacZigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func mfpacUnzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen is the encoded size of v without encoding it.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// mfpacEncoder is the reusable per-block scratch.
type mfpacEncoder struct {
	col []float64 // gathered column values
}

// encodeMFPACBlock appends the block payload for the packed rows src
// (arena row indexes) to dst and returns it.
func encodeMFPACBlock(dst []byte, enc *mfpacEncoder, f *Frame, src []int32) []byte {
	n := len(src)

	// Days: zigzag deltas, previous value starting at zero so each
	// block decodes independently.
	prev := int64(0)
	for _, row := range src {
		d := int64(f.day[row])
		dst = binary.AppendUvarint(dst, mfpacZigzag(d-prev))
		prev = d
	}

	// Interpolated flags: bitmap.
	bitmapLen := (n + 7) / 8
	base := len(dst)
	dst = append(dst, make([]byte, bitmapLen)...)
	for i, row := range src {
		if f.interp[row] {
			dst[base+i/8] |= 1 << (i % 8)
		}
	}

	// Firmware codes.
	for _, row := range src {
		dst = binary.AppendUvarint(dst, uint64(f.fw[row]))
	}

	// Float slabs, column by column within each section.
	if cap(enc.col) < n {
		enc.col = make([]float64, n)
	}
	col := enc.col[:n]
	for _, sec := range [3]struct {
		slab  []float64
		width int
	}{{f.smart, smartWidth}, {f.w, wWidth}, {f.b, bWidth}} {
		for c := 0; c < sec.width; c++ {
			for i, row := range src {
				col[i] = sec.slab[int(row)*sec.width+c]
			}
			dst = appendMFPACColumn(dst, col)
		}
	}
	return dst
}

// appendMFPACColumn picks the smallest of the three column encodings
// and appends a mode byte plus the encoded slab.
func appendMFPACColumn(dst []byte, col []float64) []byte {
	rawSize := 8 * len(col)

	xorSize := 0
	prevBits := uint64(0)
	for _, v := range col {
		b := math.Float64bits(v)
		xorSize += uvarintLen(b ^ prevBits)
		prevBits = b
	}

	intSize := 0
	intOK := true
	prevInt := int64(0)
	for _, v := range col {
		// Conversion of out-of-range floats to int64 is not portable,
		// so bound first; the bit-exactness test then rejects -0, NaN,
		// infinities, and fractions in one comparison.
		if !(v >= -9.2e18 && v <= 9.2e18) {
			intOK = false
			break
		}
		iv := int64(v)
		if math.Float64bits(float64(iv)) != math.Float64bits(v) {
			intOK = false
			break
		}
		intSize += uvarintLen(mfpacZigzag(int64(uint64(iv) - uint64(prevInt))))
		prevInt = iv
	}

	switch {
	case intOK && intSize <= xorSize && intSize <= rawSize:
		dst = append(dst, mfpacModeIntDelta)
		prevInt = 0
		for _, v := range col {
			iv := int64(v)
			dst = binary.AppendUvarint(dst, mfpacZigzag(int64(uint64(iv)-uint64(prevInt))))
			prevInt = iv
		}
	case xorSize <= rawSize:
		dst = append(dst, mfpacModeXor)
		prevBits = 0
		for _, v := range col {
			b := math.Float64bits(v)
			dst = binary.AppendUvarint(dst, b^prevBits)
			prevBits = b
		}
	default:
		dst = append(dst, mfpacModeRaw)
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// mfpacCursor is a bounds-checked reader over one payload; every
// decode path reports malformed input as an error, never a panic.
type mfpacCursor struct {
	b   []byte
	off int
}

func (c *mfpacCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *mfpacCursor) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(c.b)-c.off {
		return nil, fmt.Errorf("%d bytes wanted at offset %d, %d remain", n, c.off, len(c.b)-c.off)
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, nil
}

// decodeMFPACBlock decodes one block payload into arena rows
// [rowStart, rowStart+n) of f. nfw bounds the firmware codes the block
// may reference.
func decodeMFPACBlock(payload []byte, f *Frame, rowStart, n, nfw int) error {
	c := mfpacCursor{b: payload}

	prev := int64(0)
	for i := 0; i < n; i++ {
		u, err := c.uvarint()
		if err != nil {
			return fmt.Errorf("day column: %w", err)
		}
		prev += mfpacUnzigzag(u)
		if prev < 0 || prev > math.MaxInt32 {
			return fmt.Errorf("day column: day %d out of range", prev)
		}
		f.day[rowStart+i] = int32(prev)
	}

	bitmap, err := c.bytes((n + 7) / 8)
	if err != nil {
		return fmt.Errorf("interpolated bitmap: %w", err)
	}
	for i := 0; i < n; i++ {
		f.interp[rowStart+i] = bitmap[i/8]&(1<<(i%8)) != 0
	}

	for i := 0; i < n; i++ {
		u, err := c.uvarint()
		if err != nil {
			return fmt.Errorf("firmware column: %w", err)
		}
		if u >= uint64(nfw) {
			return fmt.Errorf("firmware column: code %d out of table (%d entries)", u, nfw)
		}
		f.fw[rowStart+i] = int32(u)
	}

	for _, sec := range [3]struct {
		slab  []float64
		width int
	}{{f.smart, smartWidth}, {f.w, wWidth}, {f.b, bWidth}} {
		for col := 0; col < sec.width; col++ {
			if err := decodeMFPACColumn(&c, sec.slab, sec.width, col, rowStart, n); err != nil {
				return fmt.Errorf("float column: %w", err)
			}
		}
	}
	if c.off != len(payload) {
		return fmt.Errorf("%d trailing bytes", len(payload)-c.off)
	}
	return nil
}

// decodeMFPACColumn decodes one float column slab into rows
// [rowStart, rowStart+n) of column col of the strided slab.
func decodeMFPACColumn(c *mfpacCursor, slab []float64, width, col, rowStart, n int) error {
	mode, err := c.bytes(1)
	if err != nil {
		return err
	}
	switch mode[0] {
	case mfpacModeRaw:
		raw, err := c.bytes(8 * n)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			slab[(rowStart+i)*width+col] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	case mfpacModeXor:
		prev := uint64(0)
		for i := 0; i < n; i++ {
			u, err := c.uvarint()
			if err != nil {
				return err
			}
			prev ^= u
			slab[(rowStart+i)*width+col] = math.Float64frombits(prev)
		}
	case mfpacModeIntDelta:
		prev := int64(0)
		for i := 0; i < n; i++ {
			u, err := c.uvarint()
			if err != nil {
				return err
			}
			prev = int64(uint64(prev) + uint64(mfpacUnzigzag(u)))
			slab[(rowStart+i)*width+col] = float64(prev)
		}
	default:
		return fmt.Errorf("unknown column mode %d", mode[0])
	}
	return nil
}
