package dataset

import (
	"fmt"
	"sort"
)

// DriveSeries is the chronologically ordered telemetry of one drive.
type DriveSeries struct {
	SerialNumber string
	Vendor       string
	Model        string
	Records      []Record // sorted by Day, one per day at most
}

// Days returns the observation day indexes of the series in order.
func (s *DriveSeries) Days() []int {
	days := make([]int, len(s.Records))
	for i := range s.Records {
		days[i] = s.Records[i].Day
	}
	return days
}

// FirstDay returns the earliest observation day, or -1 when empty.
func (s *DriveSeries) FirstDay() int {
	if len(s.Records) == 0 {
		return -1
	}
	return s.Records[0].Day
}

// LastDay returns the latest observation day, or -1 when empty.
func (s *DriveSeries) LastDay() int {
	if len(s.Records) == 0 {
		return -1
	}
	return s.Records[len(s.Records)-1].Day
}

// MaxGap returns the largest interval (in days) between consecutive
// observations, or 0 for series with fewer than two records. A gap of 1
// means consecutive days.
func (s *DriveSeries) MaxGap() int {
	max := 0
	for i := 1; i < len(s.Records); i++ {
		if g := s.Records[i].Day - s.Records[i-1].Day; g > max {
			max = g
		}
	}
	return max
}

// At returns the record observed on day, if any.
func (s *DriveSeries) At(day int) (*Record, bool) {
	i := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day >= day })
	if i < len(s.Records) && s.Records[i].Day == day {
		return &s.Records[i], true
	}
	return nil, false
}

// ClosestAtOrBefore returns the latest record with Day ≤ day, if any.
func (s *DriveSeries) ClosestAtOrBefore(day int) (*Record, bool) {
	i := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day > day })
	if i == 0 {
		return nil, false
	}
	return &s.Records[i-1], true
}

// Closest returns the record whose Day is nearest to day (earlier wins
// ties), if the series is non-empty.
func (s *DriveSeries) Closest(day int) (*Record, bool) {
	if len(s.Records) == 0 {
		return nil, false
	}
	i := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day >= day })
	switch {
	case i == 0:
		return &s.Records[0], true
	case i == len(s.Records):
		return &s.Records[len(s.Records)-1], true
	}
	before, after := &s.Records[i-1], &s.Records[i]
	if day-before.Day <= after.Day-day {
		return before, true
	}
	return after, true
}

// Window returns the records with from ≤ Day ≤ to. The returned slice
// aliases the series' backing array.
func (s *DriveSeries) Window(from, to int) []Record {
	lo := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day >= from })
	hi := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day > to })
	return s.Records[lo:hi]
}

// Clone returns a deep copy of the series.
func (s *DriveSeries) Clone() *DriveSeries {
	c := &DriveSeries{SerialNumber: s.SerialNumber, Vendor: s.Vendor, Model: s.Model}
	c.Records = make([]Record, len(s.Records))
	for i := range s.Records {
		c.Records[i] = s.Records[i].Clone()
	}
	return c
}

// Dataset is a collection of drive series keyed by serial number; it is
// the unit the MFPA preprocessing and sampling stages operate on.
type Dataset struct {
	bySN  map[string]*DriveSeries
	order []string // serial numbers in insertion order

	// cumulated marks datasets whose W/B counts hold running totals
	// (set by Cumulate); a second Cumulate call errors instead of
	// silently double-applying.
	cumulated bool
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{bySN: make(map[string]*DriveSeries)}
}

// Append adds r to the drive's series, keeping records sorted by day.
// Appending a second record for the same (drive, day) replaces the
// earlier one: re-observations within a day supersede.
func (d *Dataset) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s, ok := d.bySN[r.SerialNumber]
	if !ok {
		s = &DriveSeries{SerialNumber: r.SerialNumber, Vendor: r.Vendor, Model: r.Model}
		d.bySN[r.SerialNumber] = s
		d.order = append(d.order, r.SerialNumber)
	}
	if s.Vendor != r.Vendor || s.Model != r.Model {
		return fmt.Errorf("dataset: drive %s changes identity: have %s/%s, got %s/%s",
			r.SerialNumber, s.Vendor, s.Model, r.Vendor, r.Model)
	}
	i := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day >= r.Day })
	if i < len(s.Records) && s.Records[i].Day == r.Day {
		s.Records[i] = r
		return nil
	}
	s.Records = append(s.Records, Record{})
	copy(s.Records[i+1:], s.Records[i:])
	s.Records[i] = r
	return nil
}

// Drives returns the number of drives in the dataset.
func (d *Dataset) Drives() int { return len(d.bySN) }

// Cumulated reports whether Cumulate has converted the W/B counts to
// running totals.
func (d *Dataset) Cumulated() bool { return d.cumulated }

// Len returns the total number of records across all drives.
func (d *Dataset) Len() int {
	n := 0
	for _, s := range d.bySN {
		n += len(s.Records)
	}
	return n
}

// Series returns the series of drive sn, if present.
func (d *Dataset) Series(sn string) (*DriveSeries, bool) {
	s, ok := d.bySN[sn]
	return s, ok
}

// SerialNumbers returns all drive serial numbers in insertion order.
// The slice is a copy.
func (d *Dataset) SerialNumbers() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Each calls fn for every drive series in insertion order. fn must not
// add or remove drives.
func (d *Dataset) Each(fn func(*DriveSeries)) {
	for _, sn := range d.order {
		fn(d.bySN[sn])
	}
}

// Remove deletes drive sn from the dataset and reports whether it was
// present.
func (d *Dataset) Remove(sn string) bool {
	if _, ok := d.bySN[sn]; !ok {
		return false
	}
	delete(d.bySN, sn)
	for i, v := range d.order {
		if v == sn {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// Filter returns a new dataset containing only the drives for which
// keep returns true. Series are shared, not copied.
func (d *Dataset) Filter(keep func(*DriveSeries) bool) *Dataset {
	out := New()
	out.cumulated = d.cumulated
	for _, sn := range d.order {
		s := d.bySN[sn]
		if keep(s) {
			out.bySN[sn] = s
			out.order = append(out.order, sn)
		}
	}
	return out
}

// Vendors returns the distinct vendor names present, sorted.
func (d *Dataset) Vendors() []string {
	set := make(map[string]bool)
	for _, s := range d.bySN {
		set[s.Vendor] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DayRange returns the minimum and maximum observation days across the
// dataset. ok is false for an empty dataset.
func (d *Dataset) DayRange() (min, max int, ok bool) {
	first := true
	for _, s := range d.bySN {
		if len(s.Records) == 0 {
			continue
		}
		lo, hi := s.FirstDay(), s.LastDay()
		if first {
			min, max, first = lo, hi, false
			continue
		}
		if lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	return min, max, !first
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := New()
	out.cumulated = d.cumulated
	for _, sn := range d.order {
		out.bySN[sn] = d.bySN[sn].Clone()
		out.order = append(out.order, sn)
	}
	return out
}

// Until returns a new dataset containing only records observed on or
// before day — the fleet's knowledge as of that date. Series views
// share backing arrays with d; callers that mutate records (Cumulate)
// must operate on cleaned or cloned data, which the core pipeline does.
func (d *Dataset) Until(day int) *Dataset {
	out := New()
	out.cumulated = d.cumulated
	for _, sn := range d.order {
		s := d.bySN[sn]
		hi := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].Day > day })
		if hi == 0 {
			continue
		}
		out.bySN[sn] = &DriveSeries{
			SerialNumber: s.SerialNumber,
			Vendor:       s.Vendor,
			Model:        s.Model,
			Records:      s.Records[:hi],
		}
		out.order = append(out.order, sn)
	}
	return out
}
