package dataset

import (
	"fmt"
	"sync"

	"repro/internal/parallel"
)

// PipelineOptions configures the fused preprocessing pass.
type PipelineOptions struct {
	// Policy is the discontinuity policy applied unless SkipClean.
	Policy GapPolicy
	// SkipClean disables gap drop/fill (ablation: every drive is kept
	// verbatim and no rows are synthesised).
	SkipClean bool
	// SkipCumulate leaves the W/B counters as daily values.
	SkipCumulate bool
	// Workers bounds the per-drive fan-out (0 = GOMAXPROCS, 1 =
	// serial). The output is bit-identical at any setting.
	Workers int
}

// cumScratch holds one worker's running-total vectors, pooled so the
// per-drive pass allocates nothing after warm-up.
type cumScratch struct {
	w, b []float64
}

var cumPool = sync.Pool{New: func() any {
	return &cumScratch{w: make([]float64, wWidth), b: make([]float64, bWidth)}
}}

// PreparePipeline runs the record path's CleanDiscontinuity+Cumulate
// preprocessing as one fused traversal of each drive's row range: gap
// analysis, drop, mean-fill, and cumulation happen in a single pass
// that writes survivors and synthesised fill rows straight into a
// pre-sized output arena. No intermediate cleaned dataset exists and
// the counters are never swept twice.
//
// The result is bit-identical to CleanDiscontinuity followed by
// Cumulate on the equivalent Dataset: fills average the two adjacent
// daily observations element-wise, running totals accumulate in day
// order, and the first observed row's counter bits are copied, not
// recomputed. Per-drive work fans out over opts.Workers with a
// deterministic ordered merge.
//
// With both SkipClean and SkipCumulate set, f itself is returned.
// Cleaning statistics are reported only when the clean stage runs,
// matching the record path.
func PreparePipeline(f *Frame, opts PipelineOptions) (*Frame, CleanStats, error) {
	if f.cumulated && !opts.SkipCumulate {
		return nil, CleanStats{}, fmt.Errorf("dataset: PreparePipeline on cumulated frame: counts are already running totals")
	}
	if opts.SkipClean && opts.SkipCumulate {
		return f, CleanStats{}, nil
	}
	if !opts.SkipClean {
		if err := opts.Policy.Validate(); err != nil {
			return nil, CleanStats{}, err
		}
	}

	// Pass A (parallel, day column only): decide each drive's fate and
	// size its output range.
	type plan struct {
		drop  bool
		extra int // fill rows to synthesise
	}
	plans, err := parallel.Map(f.Drives(), opts.Workers, func(i int) (plan, error) {
		if opts.SkipClean {
			return plan{}, nil
		}
		d := f.Drive(i)
		var p plan
		for r := int(d.Start) + 1; r < int(d.End); r++ {
			g := int(f.day[r] - f.day[r-1])
			if g >= opts.Policy.DropGap {
				return plan{drop: true}, nil
			}
			if g >= 2 && g <= opts.Policy.FillGap {
				p.extra += g - 1
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, CleanStats{}, err
	}

	// Serial prefix sums over the kept drives give every worker a
	// disjoint output range, so the merge order never depends on
	// scheduling.
	var stats CleanStats
	if !opts.SkipClean {
		stats.DrivesIn = f.Drives()
		stats.RecordsIn = f.Len()
	}
	kept := make([]int, 0, f.Drives())
	outStart := make([]int, 0, f.Drives())
	total := 0
	for i := range plans {
		if plans[i].drop {
			stats.DrivesDropped++
			continue
		}
		kept = append(kept, i)
		outStart = append(outStart, total)
		total += f.Drive(i).Rows() + plans[i].extra
		stats.RecordsFilled += plans[i].extra
	}
	if opts.SkipClean {
		stats = CleanStats{}
	}

	out := NewFrameArena(total)
	out.shareFirmwareTable(f)
	out.cumulated = !opts.SkipCumulate || f.cumulated
	fill := !opts.SkipClean
	cumulate := !opts.SkipCumulate

	// Pass B: each kept drive streams through clean+cumulate into its
	// output range. Running totals live in pooled scratch; the first
	// observed row is copied bit-for-bit (accumulating into a zeroed
	// vector would quietly turn -0 counters into +0).
	if err := parallel.Do(len(kept), opts.Workers, func(k int) error {
		d := f.Drive(kept[k])
		sc := cumPool.Get().(*cumScratch)
		defer cumPool.Put(sc)
		cw, cb := sc.w, sc.b
		row := outStart[k]
		for r := int(d.Start); r < int(d.End); r++ {
			if r > int(d.Start) && fill {
				if g := int(f.day[r] - f.day[r-1]); g >= 2 && g <= opts.Policy.FillGap {
					aS, bS := f.SmartRow(r-1), f.SmartRow(r)
					aW, bW := f.WRow(r-1), f.WRow(r)
					aB, bB := f.BRow(r-1), f.BRow(r)
					fwID := f.fw[r-1] // firmware cannot change while off
					for dd := f.day[r-1] + 1; dd < f.day[r]; dd++ {
						oS := out.SmartRow(row)
						for j := range oS {
							oS[j] = (aS[j] + bS[j]) / 2
						}
						oW, oB := out.WRow(row), out.BRow(row)
						if cumulate {
							for j := range oW {
								cw[j] += (aW[j] + bW[j]) / 2
								oW[j] = cw[j]
							}
							for j := range oB {
								cb[j] += (aB[j] + bB[j]) / 2
								oB[j] = cb[j]
							}
						} else {
							for j := range oW {
								oW[j] = (aW[j] + bW[j]) / 2
							}
							for j := range oB {
								oB[j] = (aB[j] + bB[j]) / 2
							}
						}
						out.day[row] = dd
						out.interp[row] = true
						out.fw[row] = fwID
						row++
					}
				}
			}
			out.day[row] = f.day[r]
			out.interp[row] = f.interp[r]
			out.fw[row] = f.fw[r]
			copy(out.SmartRow(row), f.SmartRow(r))
			oW, oB := out.WRow(row), out.BRow(row)
			srcW, srcB := f.WRow(r), f.BRow(r)
			switch {
			case !cumulate:
				copy(oW, srcW)
				copy(oB, srcB)
			case r == int(d.Start):
				copy(oW, srcW)
				copy(oB, srcB)
				copy(cw, oW)
				copy(cb, oB)
			default:
				for j := range oW {
					cw[j] += srcW[j]
					oW[j] = cw[j]
				}
				for j := range oB {
					cb[j] += srcB[j]
					oB[j] = cb[j]
				}
			}
			row++
		}
		return nil
	}); err != nil {
		return nil, CleanStats{}, err
	}

	// Ordered merge: register drives serially in dataset order. This is
	// also the once-per-build day-monotonicity validation point.
	for k, i := range kept {
		d := f.Drive(i)
		end := outStart[k] + d.Rows() + plans[i].extra
		if err := out.AddDrive(d.SerialNumber, d.Vendor, d.Model, outStart[k], end); err != nil {
			return nil, CleanStats{}, err
		}
	}
	return out, stats, nil
}
