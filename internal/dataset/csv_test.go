package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bsod"
	"repro/internal/winevent"
)

func TestCSVRoundTrip(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 2, 5}, "B": {1, 3}})
	s, _ := d.Series("A")
	s.Records[1].Interpolated = true
	s.Records[1].BCounts[3] = 2.5

	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Drives() != d.Drives() || got.Len() != d.Len() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", got.Drives(), got.Len(), d.Drives(), d.Len())
	}
	gs, _ := got.Series("A")
	if !gs.Records[1].Interpolated {
		t.Error("interpolated flag lost")
	}
	if gs.Records[1].BCounts[3] != 2.5 {
		t.Error("B count lost precision")
	}
	if gs.Records[0].Firmware != "FW1" {
		t.Error("firmware lost")
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New()
		for drive := 0; drive < 1+r.Intn(4); drive++ {
			sn := string(rune('A' + drive))
			day := 0
			for i := 0; i < 1+r.Intn(6); i++ {
				day += 1 + r.Intn(4)
				rr := rec(sn, day)
				for j := range rr.Smart {
					rr.Smart[j] = float64(r.Intn(1000)) / 8
				}
				for j := range rr.WCounts {
					rr.WCounts[j] = float64(r.Intn(5))
				}
				for j := range rr.BCounts {
					rr.BCounts[j] = float64(r.Intn(3))
				}
				if err := d.Append(rr); err != nil {
					return false
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() || got.Drives() != d.Drives() {
			return false
		}
		equal := true
		d.Each(func(s *DriveSeries) {
			gs, ok := got.Series(s.SerialNumber)
			if !ok || len(gs.Records) != len(s.Records) {
				equal = false
				return
			}
			for i := range s.Records {
				a, b := &s.Records[i], &gs.Records[i]
				if a.Day != b.Day || a.Firmware != b.Firmware || a.Smart != b.Smart {
					equal = false
					return
				}
				for j := range a.WCounts {
					if a.WCounts[j] != b.WCounts[j] {
						equal = false
						return
					}
				}
				for j := range a.BCounts {
					if a.BCounts[j] != b.BCounts[j] {
						equal = false
						return
					}
				}
			}
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	in := "nope,header\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadCSVRejectsBadValues(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Corrupt the day column of the data row.
	cells := strings.Split(lines[1], ",")
	cells[3] = "notaday"
	corrupted := lines[0] + "\n" + strings.Join(cells, ",") + "\n"
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Fatal("bad day value accepted")
	}
}

func TestHeaderShape(t *testing.T) {
	h := Header()
	want := 6 + 16 + winevent.Count() + bsod.Count()
	if len(h) != want {
		t.Fatalf("header has %d columns, want %d", len(h), want)
	}
	if h[0] != "sn" || h[6] != "S_1" {
		t.Fatalf("unexpected header layout: %v", h[:7])
	}
}
