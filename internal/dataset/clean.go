package dataset

import (
	"fmt"

	"repro/internal/bsod"
	"repro/internal/parallel"
	"repro/internal/winevent"
)

// GapPolicy configures the discontinuity optimisation of the paper's
// Section III-C(1): consumer machines are powered on irregularly, so
// telemetry has day gaps that hurt model quality.
type GapPolicy struct {
	// DropGap removes a drive whose series contains an interval of
	// DropGap days or more between consecutive observations (the paper
	// uses 10).
	DropGap int
	// FillGap mean-fills intervals of up to FillGap days: for a gap of
	// g days (g ≤ FillGap), g−1 synthetic records are inserted carrying
	// the mean of the two adjacent observations (the paper uses 3).
	FillGap int
}

// DefaultGapPolicy is the paper's configuration: drop ≥ 10, fill ≤ 3.
func DefaultGapPolicy() GapPolicy { return GapPolicy{DropGap: 10, FillGap: 3} }

// Validate checks the policy's internal consistency.
func (p GapPolicy) Validate() error {
	if p.DropGap < 2 {
		return fmt.Errorf("dataset: gap policy DropGap %d must be ≥ 2", p.DropGap)
	}
	if p.FillGap < 1 {
		return fmt.Errorf("dataset: gap policy FillGap %d must be ≥ 1", p.FillGap)
	}
	if p.FillGap >= p.DropGap {
		return fmt.Errorf("dataset: gap policy FillGap %d must be < DropGap %d", p.FillGap, p.DropGap)
	}
	return nil
}

// CleanStats summarises what a CleanDiscontinuity pass did.
type CleanStats struct {
	DrivesIn      int
	DrivesDropped int
	RecordsIn     int
	RecordsFilled int
}

// CleanDiscontinuity applies the discontinuity optimisation to d and
// returns a new dataset plus statistics. Drives containing any interval
// ≥ policy.DropGap are removed entirely; remaining intervals of
// 2..policy.FillGap days are filled with synthetic records carrying the
// mean of the adjacent observations (marked Interpolated). Intervals
// between FillGap and DropGap are left as-is — the series survives but
// keeps its hole, which is exactly the data-quality hazard the paper
// notes for time-series models such as CNN_LSTM.
//
// Per-drive gap analysis and filling fan out across GOMAXPROCS
// goroutines; use CleanDiscontinuityWorkers to pin the worker count
// (1 = serial). Output is identical at any setting.
func CleanDiscontinuity(d *Dataset, policy GapPolicy) (*Dataset, CleanStats, error) {
	return CleanDiscontinuityWorkers(d, policy, 0)
}

// CleanDiscontinuityWorkers is CleanDiscontinuity with an explicit
// worker count (0 = GOMAXPROCS, 1 = serial). Drives are filtered and
// filled independently and merged in dataset order, so the result does
// not depend on workers.
func CleanDiscontinuityWorkers(d *Dataset, policy GapPolicy, workers int) (*Dataset, CleanStats, error) {
	if err := policy.Validate(); err != nil {
		return nil, CleanStats{}, err
	}
	stats := CleanStats{DrivesIn: d.Drives(), RecordsIn: d.Len()}
	// Cleaning a cumulated dataset is unusual (mean-fill of running
	// totals) but well-defined; carry the marker through.
	cumulated := d.cumulated

	type cleaned struct {
		dropped bool
		series  *DriveSeries
		filled  int
	}
	outs, err := parallel.Map(len(d.order), workers, func(i int) (cleaned, error) {
		s := d.bySN[d.order[i]]
		if s.MaxGap() >= policy.DropGap {
			return cleaned{dropped: true}, nil
		}
		filled, n := fillSeries(s, policy.FillGap)
		return cleaned{series: filled, filled: n}, nil
	})
	if err != nil {
		return nil, CleanStats{}, err
	}

	out := New()
	out.cumulated = cumulated
	for i := range outs {
		c := &outs[i]
		if c.dropped {
			stats.DrivesDropped++
			continue
		}
		stats.RecordsFilled += c.filled
		for _, r := range c.series.Records {
			if err := out.Append(r); err != nil {
				return nil, CleanStats{}, err
			}
		}
	}
	return out, stats, nil
}

// fillSeries mean-fills gaps of at most fillGap days in s and returns
// the filled series plus the number of records synthesised.
func fillSeries(s *DriveSeries, fillGap int) (*DriveSeries, int) {
	out := &DriveSeries{SerialNumber: s.SerialNumber, Vendor: s.Vendor, Model: s.Model}
	// Size the output exactly: one slot per record plus one per filled
	// day, so the append loop never reallocates.
	extra := 0
	for i := 1; i < len(s.Records); i++ {
		if g := s.Records[i].Day - s.Records[i-1].Day; g >= 2 && g <= fillGap {
			extra += g - 1
		}
	}
	out.Records = make([]Record, 0, len(s.Records)+extra)
	filled := 0
	for i := range s.Records {
		if i > 0 {
			prev := &s.Records[i-1]
			cur := &s.Records[i]
			gap := cur.Day - prev.Day
			if gap >= 2 && gap <= fillGap {
				for day := prev.Day + 1; day < cur.Day; day++ {
					out.Records = append(out.Records, meanRecord(prev, cur, day))
					filled++
				}
			}
		}
		out.Records = append(out.Records, s.Records[i].Clone())
	}
	return out, filled
}

// meanRecord synthesises the mean of two adjacent observations for the
// missing day. Counts and SMART values are averaged element-wise; the
// firmware version is carried from the earlier record (firmware cannot
// change while the machine is off).
func meanRecord(a, b *Record, day int) Record {
	r := Record{
		SerialNumber: a.SerialNumber,
		Vendor:       a.Vendor,
		Model:        a.Model,
		Day:          day,
		Firmware:     a.Firmware,
		WCounts:      winevent.NewCounts(),
		BCounts:      bsod.NewCounts(),
		Interpolated: true,
	}
	for i := range r.Smart {
		r.Smart[i] = (a.Smart[i] + b.Smart[i]) / 2
	}
	for i := range r.WCounts {
		r.WCounts[i] = (a.WCounts[i] + b.WCounts[i]) / 2
	}
	for i := range r.BCounts {
		r.BCounts[i] = (a.BCounts[i] + b.BCounts[i]) / 2
	}
	return r
}

// Cumulate converts the daily W and B counts of every series into
// running per-drive totals, in place. The paper uses accumulated values
// as model input because daily counts are too sparse to show trends.
// The dataset is marked, and a second Cumulate call errors instead of
// silently double-applying the transform.
func Cumulate(d *Dataset) error {
	if d.cumulated {
		return fmt.Errorf("dataset: Cumulate called twice: counts are already running totals")
	}
	d.Each(func(s *DriveSeries) {
		for i := 1; i < len(s.Records); i++ {
			prev, cur := &s.Records[i-1], &s.Records[i]
			for j := range cur.WCounts {
				cur.WCounts[j] += prev.WCounts[j]
			}
			for j := range cur.BCounts {
				cur.BCounts[j] += prev.BCounts[j]
			}
		}
	})
	d.cumulated = true
	return nil
}

// GapHistogram tallies, over all drives, how many consecutive-record
// intervals have each length in days (index = gap length; index 1
// counts one-day steps). Used by the Fig. 6 experiment to show the
// discontinuity structure of CSS telemetry. Non-positive gaps — only
// possible on hand-built series with duplicate or unsorted days, which
// Dataset.Append and the frame builders reject — are clamped into the
// index-0 bucket instead of panicking on a negative index.
func GapHistogram(d *Dataset, maxGap int) []int {
	hist := make([]int, maxGap+1)
	d.Each(func(s *DriveSeries) {
		for i := 1; i < len(s.Records); i++ {
			g := s.Records[i].Day - s.Records[i-1].Day
			if g < 0 {
				g = 0
			}
			if g > maxGap {
				g = maxGap
			}
			hist[g]++
		}
	})
	return hist
}
