// Package dataset defines the telemetry records collected from
// consumer SSDs and the dataset-level preprocessing the paper's MFPA
// pipeline applies before modelling: gap analysis, discontinuity
// optimisation (drop drives with intervals ≥ 10 days, mean-fill
// intervals ≤ 3 days), and the cumulative transform of the daily
// WindowsEvent/BSOD counters.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bsod"
	"repro/internal/firmware"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// Interface is the drive interface of the studied population; the paper
// studies M.2 (2280) NVMe drives on PCIe 3.0 x4 exclusively.
const Interface = "PCIe 3.0x4"

// Record is one telemetry observation of one drive on one day: the
// tuple (S/N, model, timestamp, interface, capacity, S{1..16}, F,
// W{1..i}, B{1..j}) of the paper's Section III-C.
type Record struct {
	// SerialNumber identifies the drive.
	SerialNumber string
	// Vendor is the drive manufacturer ("I".."IV" in the paper).
	Vendor string
	// Model is the drive model within the vendor.
	Model string
	// Day is the observation timestamp as a day index from the start
	// of the collection window.
	Day int
	// Smart holds the 16 SMART attribute values of Table II.
	Smart smartattr.Values
	// Firmware is the raw vendor firmware version string; the feature
	// layer label-encodes it.
	Firmware firmware.Version
	// WCounts holds the per-day counts of the Table III Windows
	// events. After Dataset.Cumulate they hold running totals.
	WCounts winevent.Counts
	// BCounts holds the per-day counts of the Table IV stop codes.
	// After Dataset.Cumulate they hold running totals.
	BCounts bsod.Counts
	// Interpolated marks records synthesised by the discontinuity
	// optimisation (mean fill) rather than observed.
	Interpolated bool
}

// CapacityGB returns the drive capacity recorded in the SMART vector.
func (r *Record) CapacityGB() float64 { return r.Smart.Get(smartattr.Capacity) }

// Clone returns a deep copy of the record (count vectors included).
func (r *Record) Clone() Record {
	c := *r
	c.WCounts = append(winevent.Counts(nil), r.WCounts...)
	c.BCounts = append(bsod.Counts(nil), r.BCounts...)
	return c
}

// ErrNonFinite reports a NaN or ±Inf telemetry value. Collectors feed
// raw bytes from flaky firmware and transport layers, so a non-finite
// value is treated as corruption, never as data.
var ErrNonFinite = errors.New("dataset: non-finite telemetry value")

// ErrNegativeCounter reports a negative daily event count — counts are
// tallies, so a negative value can only be corruption (bit flips,
// truncated parses, integer underflow upstream).
var ErrNegativeCounter = errors.New("dataset: negative event counter")

// validateValues scans one observation's numeric payload: SMART values
// must be finite, W/B daily counts must be finite and non-negative.
// Errors wrap the typed sentinels so callers can classify corruption
// without string matching.
func validateValues(sn string, smart, w, b []float64) error {
	for i, v := range smart {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: record %s SMART[%d] = %v", ErrNonFinite, sn, i, v)
		}
	}
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: record %s W[%d] = %v", ErrNonFinite, sn, i, v)
		}
		if v < 0 {
			return fmt.Errorf("%w: record %s W[%d] = %v", ErrNegativeCounter, sn, i, v)
		}
	}
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: record %s B[%d] = %v", ErrNonFinite, sn, i, v)
		}
		if v < 0 {
			return fmt.Errorf("%w: record %s B[%d] = %v", ErrNegativeCounter, sn, i, v)
		}
	}
	return nil
}

// Validate performs sanity checks on a record: identity and shape, plus
// value-level corruption checks (no NaN/Inf SMART or event values, no
// negative event counters). Value errors wrap ErrNonFinite /
// ErrNegativeCounter.
func (r *Record) Validate() error {
	if r.SerialNumber == "" {
		return fmt.Errorf("dataset: record has empty serial number")
	}
	if r.Day < 0 {
		return fmt.Errorf("dataset: record %s has negative day %d", r.SerialNumber, r.Day)
	}
	if len(r.WCounts) != winevent.Count() {
		return fmt.Errorf("dataset: record %s has %d W counters, want %d", r.SerialNumber, len(r.WCounts), winevent.Count())
	}
	if len(r.BCounts) != bsod.Count() {
		return fmt.Errorf("dataset: record %s has %d B counters, want %d", r.SerialNumber, len(r.BCounts), bsod.Count())
	}
	return validateValues(r.SerialNumber, r.Smart[:], r.WCounts, r.BCounts)
}
