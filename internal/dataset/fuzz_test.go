package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the dataset reader never panics and either errors
// or returns a structurally valid dataset.
func FuzzReadCSV(f *testing.F) {
	d := New()
	r := rec("A", 1)
	_ = d.Append(r)
	var sb strings.Builder
	_ = WriteCSV(&sb, d)
	f.Add(sb.String())
	f.Add("")
	f.Add("sn,vendor\n")
	f.Add(strings.Repeat("x,", 53) + "x\n")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must satisfy the dataset invariants.
		got.Each(func(s *DriveSeries) {
			for i := 1; i < len(s.Records); i++ {
				if s.Records[i].Day <= s.Records[i-1].Day {
					t.Fatal("records not strictly day-ordered")
				}
			}
			for i := range s.Records {
				if err := s.Records[i].Validate(); err != nil {
					t.Fatalf("invalid record survived parsing: %v", err)
				}
			}
		})
	})
}
