package dataset

// MFPAC (Multidimensional-Features-PAper Container) is the repository's
// binary columnar telemetry interchange format — the durable twin of
// the in-memory Frame arena. Where the CSV path pays per-field strconv
// on ~90 columns per drive-day, an .mfpac file stores each column as a
// compact block slab (delta+varint for int-like columns, raw or
// XOR/int-delta float64 slabs for SMART/W/B) so a fleet loads straight
// into pre-sized Frame columns with no intermediate []Record, and the
// independent blocks encode and decode in parallel through
// internal/parallel (byte-identical output at any worker count).
//
// File layout (all little-endian):
//
//	header   magic, version, flags, column widths, block geometry,
//	         row/drive/block counts, header CRC32
//	blocks   per block: u32 payload length, u32 payload CRC32, payload
//	footer   drive table (string-table refs + row counts), firmware
//	         table, string table, per-block payload sizes
//	trailer  u32 footer length, u32 footer CRC32, closing magic
//
// Within a block payload the sections are: day (zigzag-varint deltas),
// interpolated (bitmap), firmware codes (uvarint), then one slab per
// SMART/W/B column, each tagged with the encoding mode that was
// smallest for that column in that block (see mfpac_codec.go).
//
// The trailer makes the footer locatable from the end of the file, so
// the reader knows every drive range and block offset before touching
// a single row: it pre-sizes the arena once and decodes blocks into
// disjoint row ranges concurrently.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/firmware"
	"repro/internal/parallel"
)

// mfpacMagic opens and closes every .mfpac file. The PNG-style prefix
// byte keeps the file from ever being mistaken for CSV (or surviving a
// text-mode transfer unnoticed).
var mfpacMagic = [8]byte{0x89, 'M', 'F', 'P', 'A', 'C', 0x1A, 0x0A}

const (
	mfpacVersion = 1

	// mfpacHeaderLen is the fixed on-disk header size; see writeHeader.
	mfpacHeaderLen = 44
	// mfpacTrailerLen is footer length + footer CRC + closing magic.
	mfpacTrailerLen = 4 + 4 + 8

	// mfpacBlockRows is the default rows-per-block. 4096 drive-days
	// keep a block's slabs (~90 columns) inside a few hundred KB of
	// scratch while leaving fleet-scale files with hundreds of blocks
	// to fan out across workers.
	mfpacBlockRows = 4096

	// flag bits of the header flags field.
	mfpacFlagCumulated = 1 << 0
)

// Format names a telemetry container format.
type Format string

// The supported telemetry container formats.
const (
	FormatCSV   Format = "csv"
	FormatMFPAC Format = "mfpac"
)

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, bool) {
	switch Format(strings.ToLower(s)) {
	case FormatCSV:
		return FormatCSV, true
	case FormatMFPAC:
		return FormatMFPAC, true
	}
	return "", false
}

// FormatForPath picks the container format a path implies: .mfpac
// means the binary container, anything else the CSV compat path.
func FormatForPath(path string) Format {
	if strings.EqualFold(filepath.Ext(path), ".mfpac") {
		return FormatMFPAC
	}
	return FormatCSV
}

// WriteTelemetry writes the frame in the given format.
func WriteTelemetry(w io.Writer, f *Frame, format Format) error {
	switch format {
	case FormatMFPAC:
		return WriteMFPAC(w, f)
	case FormatCSV, "":
		return WriteCSVFrame(w, f)
	}
	return fmt.Errorf("dataset: unknown telemetry format %q", format)
}

// ReadTelemetry loads telemetry of either format, sniffing the MFPAC
// magic bytes: .mfpac containers decode through the block-parallel
// codec, anything else goes through the CSV compat reader.
func ReadTelemetry(r io.Reader) (*Frame, error) {
	return ReadTelemetryWorkers(r, 0)
}

// ReadTelemetryWorkers is ReadTelemetry with an explicit decode
// worker count (0 = GOMAXPROCS, 1 = serial; the frame is identical).
func ReadTelemetryWorkers(r io.Reader, workers int) (*Frame, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(mfpacMagic))
	if err == nil && bytes.Equal(head, mfpacMagic[:]) {
		return ReadMFPACWorkers(br, workers)
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("dataset: detect telemetry format: %w", err)
	}
	return ReadCSVFrame(br)
}

// WriteMFPAC serialises the frame as an MFPAC container. Drives are
// written in registration order; arena slack rows are not stored, so
// the file always describes a dense frame.
func WriteMFPAC(w io.Writer, f *Frame) error {
	return WriteMFPACWorkers(w, f, 0)
}

// WriteMFPACWorkers is WriteMFPAC with an explicit encode worker count
// (0 = GOMAXPROCS, 1 = serial). The bytes written are identical at any
// worker count: workers encode independent blocks into pooled buffers
// and the stream is assembled in block order.
func WriteMFPACWorkers(w io.Writer, f *Frame, workers int) error {
	return writeMFPAC(w, f, workers, mfpacBlockRows)
}

func writeMFPAC(w io.Writer, f *Frame, workers, blockRows int) error {
	if blockRows <= 0 {
		blockRows = mfpacBlockRows
	}
	total := f.Len()
	nBlocks := (total + blockRows - 1) / blockRows

	// Dense row map: packed row -> arena row, drive by drive. For
	// slack-free frames this is the identity, but simulator arenas and
	// vendor-filtered views leave gaps the file must not carry.
	src := make([]int32, 0, total)
	for i := range f.drives {
		d := &f.drives[i]
		for row := d.Start; row < d.End; row++ {
			src = append(src, row)
		}
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeMFPACHeader(bw, f, blockRows, total, nBlocks); err != nil {
		return err
	}

	// Encode blocks in parallel, a bounded window at a time, into
	// per-slot buffers that are reused across windows (the pooled block
	// buffers); the stream itself is written serially in block order so
	// the bytes never depend on scheduling.
	nw := parallel.Workers(workers)
	window := nw * 4
	if window > nBlocks {
		window = nBlocks
	}
	slots := make([][]byte, window)
	blockSizes := make([]uint32, nBlocks)
	var lenCRC [8]byte
	for base := 0; base < nBlocks; base += window {
		n := window
		if base+n > nBlocks {
			n = nBlocks - base
		}
		err := parallel.Do(n, workers, func(i int) error {
			bi := base + i
			lo := bi * blockRows
			hi := lo + blockRows
			if hi > total {
				hi = total
			}
			enc := mfpacEncPool.Get().(*mfpacEncoder)
			slots[i] = encodeMFPACBlock(slots[i][:0], enc, f, src[lo:hi])
			mfpacEncPool.Put(enc)
			return nil
		})
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			payload := slots[i]
			if len(payload) > math.MaxUint32 {
				return fmt.Errorf("dataset: mfpac block %d payload too large", base+i)
			}
			blockSizes[base+i] = uint32(len(payload))
			binary.LittleEndian.PutUint32(lenCRC[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(lenCRC[4:8], crc32.ChecksumIEEE(payload))
			if _, err := bw.Write(lenCRC[:]); err != nil {
				return fmt.Errorf("dataset: write mfpac block: %w", err)
			}
			if _, err := bw.Write(payload); err != nil {
				return fmt.Errorf("dataset: write mfpac block: %w", err)
			}
		}
	}

	footer := encodeMFPACFooter(f, blockSizes)
	if _, err := bw.Write(footer); err != nil {
		return fmt.Errorf("dataset: write mfpac footer: %w", err)
	}
	var trailer [mfpacTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[0:4], uint32(len(footer)))
	binary.LittleEndian.PutUint32(trailer[4:8], crc32.ChecksumIEEE(footer))
	copy(trailer[8:], mfpacMagic[:])
	if _, err := bw.Write(trailer[:]); err != nil {
		return fmt.Errorf("dataset: write mfpac trailer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: write mfpac: %w", err)
	}
	return nil
}

func writeMFPACHeader(w io.Writer, f *Frame, blockRows, total, nBlocks int) error {
	var h [mfpacHeaderLen]byte
	copy(h[0:8], mfpacMagic[:])
	binary.LittleEndian.PutUint16(h[8:10], mfpacVersion)
	var flags uint16
	if f.cumulated {
		flags |= mfpacFlagCumulated
	}
	binary.LittleEndian.PutUint16(h[10:12], flags)
	binary.LittleEndian.PutUint16(h[12:14], uint16(smartWidth))
	binary.LittleEndian.PutUint16(h[14:16], uint16(wWidth))
	binary.LittleEndian.PutUint16(h[16:18], uint16(bWidth))
	binary.LittleEndian.PutUint16(h[18:20], 0) // reserved
	binary.LittleEndian.PutUint32(h[20:24], uint32(blockRows))
	binary.LittleEndian.PutUint64(h[24:32], uint64(total))
	binary.LittleEndian.PutUint32(h[32:36], uint32(len(f.drives)))
	binary.LittleEndian.PutUint32(h[36:40], uint32(nBlocks))
	binary.LittleEndian.PutUint32(h[40:44], crc32.ChecksumIEEE(h[:40]))
	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("dataset: write mfpac header: %w", err)
	}
	return nil
}

// encodeMFPACFooter lays out the drive table, firmware table, string
// table, and block index. Identity strings are interned in a footer
// string table (vendor and model names repeat across the fleet), and
// drive ranges are stored as row counts — starts are the running sum,
// which is also what pins the file to dense packing.
func encodeMFPACFooter(f *Frame, blockSizes []uint32) []byte {
	var strTab []string
	strIdx := make(map[string]uint64)
	intern := func(s string) uint64 {
		if id, ok := strIdx[s]; ok {
			return id
		}
		id := uint64(len(strTab))
		strTab = append(strTab, s)
		strIdx[s] = id
		return id
	}

	// Drive table first so its string refs populate the table in a
	// deterministic first-use order.
	var drives []byte
	for i := range f.drives {
		d := &f.drives[i]
		drives = binary.AppendUvarint(drives, intern(d.SerialNumber))
		drives = binary.AppendUvarint(drives, intern(d.Vendor))
		drives = binary.AppendUvarint(drives, intern(d.Model))
		drives = binary.AppendUvarint(drives, uint64(d.Rows()))
	}
	var fw []byte
	fw = binary.AppendUvarint(fw, uint64(len(f.fwTab)))
	for _, v := range f.fwTab {
		fw = binary.AppendUvarint(fw, intern(string(v)))
	}

	out := append([]byte(nil), drives...)
	out = append(out, fw...)
	out = binary.AppendUvarint(out, uint64(len(strTab)))
	for _, s := range strTab {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	for _, sz := range blockSizes {
		out = binary.AppendUvarint(out, uint64(sz))
	}
	return out
}

// ReadMFPAC loads an MFPAC container into a columnar frame: the footer
// pre-sizes the arena, blocks decode in parallel straight into the
// column slabs (no intermediate []Record), and drives register with
// the same day-monotonicity validation every frame build runs.
func ReadMFPAC(r io.Reader) (*Frame, error) {
	return ReadMFPACWorkers(r, 0)
}

// ReadMFPACWorkers is ReadMFPAC with an explicit decode worker count
// (0 = GOMAXPROCS, 1 = serial). The frame is identical at any count.
func ReadMFPACWorkers(r io.Reader, workers int) (*Frame, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: read mfpac: %w", err)
	}
	return decodeMFPAC(buf, workers)
}

// mfpacHeader is the parsed fixed header.
type mfpacHeader struct {
	flags     uint16
	blockRows int
	totalRows int
	drives    int
	blocks    int
}

func parseMFPACHeader(buf []byte) (mfpacHeader, error) {
	var h mfpacHeader
	if len(buf) < mfpacHeaderLen {
		return h, fmt.Errorf("dataset: mfpac file truncated: %d bytes", len(buf))
	}
	if !bytes.Equal(buf[0:8], mfpacMagic[:]) {
		return h, fmt.Errorf("dataset: not an mfpac file (bad magic)")
	}
	if got := binary.LittleEndian.Uint32(buf[40:44]); got != crc32.ChecksumIEEE(buf[:40]) {
		return h, fmt.Errorf("dataset: mfpac header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(buf[8:10]); v != mfpacVersion {
		return h, fmt.Errorf("dataset: mfpac version %d, want %d", v, mfpacVersion)
	}
	h.flags = binary.LittleEndian.Uint16(buf[10:12])
	if got := int(binary.LittleEndian.Uint16(buf[12:14])); got != smartWidth {
		return h, fmt.Errorf("dataset: mfpac file has %d SMART columns, catalogue has %d", got, smartWidth)
	}
	if got := int(binary.LittleEndian.Uint16(buf[14:16])); got != wWidth {
		return h, fmt.Errorf("dataset: mfpac file has %d W columns, catalogue has %d", got, wWidth)
	}
	if got := int(binary.LittleEndian.Uint16(buf[16:18])); got != bWidth {
		return h, fmt.Errorf("dataset: mfpac file has %d B columns, catalogue has %d", got, bWidth)
	}
	h.blockRows = int(binary.LittleEndian.Uint32(buf[20:24]))
	total := binary.LittleEndian.Uint64(buf[24:32])
	if total > math.MaxInt32 {
		return h, fmt.Errorf("dataset: mfpac row count %d too large", total)
	}
	h.totalRows = int(total)
	h.drives = int(binary.LittleEndian.Uint32(buf[32:36]))
	h.blocks = int(binary.LittleEndian.Uint32(buf[36:40]))
	if h.blockRows <= 0 {
		return h, fmt.Errorf("dataset: mfpac block size %d invalid", h.blockRows)
	}
	wantBlocks := (h.totalRows + h.blockRows - 1) / h.blockRows
	if h.blocks != wantBlocks {
		return h, fmt.Errorf("dataset: mfpac block count %d inconsistent with %d rows of %d",
			h.blocks, h.totalRows, h.blockRows)
	}
	return h, nil
}

// mfpacFooter is the parsed footer: identity strings resolved, block
// payload offsets relative to the start of the block region.
type mfpacFooter struct {
	driveSN     []string
	driveVendor []string
	driveModel  []string
	driveRows   []int
	fwTab       []firmware.Version
	blockOff    []int // payload offset of each block in the block region
	blockLen    []int
}

func parseMFPACFooter(h mfpacHeader, payload []byte, blockRegion int) (*mfpacFooter, error) {
	c := mfpacCursor{b: payload}
	ft := &mfpacFooter{
		driveSN:     make([]string, h.drives),
		driveVendor: make([]string, h.drives),
		driveModel:  make([]string, h.drives),
		driveRows:   make([]int, h.drives),
		blockOff:    make([]int, h.blocks),
		blockLen:    make([]int, h.blocks),
	}
	type ref struct{ sn, vendor, model uint64 }
	refs := make([]ref, h.drives)
	rowSum := 0
	for i := 0; i < h.drives; i++ {
		var r ref
		var rows uint64
		var err error
		if r.sn, err = c.uvarint(); err != nil {
			return nil, fmt.Errorf("dataset: mfpac drive table: %w", err)
		}
		if r.vendor, err = c.uvarint(); err != nil {
			return nil, fmt.Errorf("dataset: mfpac drive table: %w", err)
		}
		if r.model, err = c.uvarint(); err != nil {
			return nil, fmt.Errorf("dataset: mfpac drive table: %w", err)
		}
		if rows, err = c.uvarint(); err != nil {
			return nil, fmt.Errorf("dataset: mfpac drive table: %w", err)
		}
		if rows == 0 || rows > uint64(h.totalRows) {
			return nil, fmt.Errorf("dataset: mfpac drive %d has %d rows", i, rows)
		}
		refs[i] = r
		ft.driveRows[i] = int(rows)
		rowSum += int(rows)
	}
	if rowSum != h.totalRows {
		return nil, fmt.Errorf("dataset: mfpac drive rows sum to %d, header says %d", rowSum, h.totalRows)
	}

	nfw, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dataset: mfpac firmware table: %w", err)
	}
	if nfw > uint64(len(payload)) {
		return nil, fmt.Errorf("dataset: mfpac firmware table of %d entries implausible", nfw)
	}
	fwRefs := make([]uint64, nfw)
	for i := range fwRefs {
		if fwRefs[i], err = c.uvarint(); err != nil {
			return nil, fmt.Errorf("dataset: mfpac firmware table: %w", err)
		}
	}

	nstr, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dataset: mfpac string table: %w", err)
	}
	if nstr > uint64(len(payload)) {
		return nil, fmt.Errorf("dataset: mfpac string table of %d entries implausible", nstr)
	}
	strTab := make([]string, nstr)
	for i := range strTab {
		n, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dataset: mfpac string table: %w", err)
		}
		b, err := c.bytes(int(n))
		if err != nil {
			return nil, fmt.Errorf("dataset: mfpac string table: %w", err)
		}
		strTab[i] = string(b)
	}
	str := func(id uint64) (string, error) {
		if id >= uint64(len(strTab)) {
			return "", fmt.Errorf("dataset: mfpac string ref %d out of table (%d entries)", id, len(strTab))
		}
		return strTab[id], nil
	}
	for i, r := range refs {
		if ft.driveSN[i], err = str(r.sn); err != nil {
			return nil, err
		}
		if ft.driveVendor[i], err = str(r.vendor); err != nil {
			return nil, err
		}
		if ft.driveModel[i], err = str(r.model); err != nil {
			return nil, err
		}
	}
	ft.fwTab = make([]firmware.Version, nfw)
	for i, id := range fwRefs {
		s, err := str(id)
		if err != nil {
			return nil, err
		}
		ft.fwTab[i] = firmware.Version(s)
	}

	off := 0
	for i := 0; i < h.blocks; i++ {
		n, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dataset: mfpac block index: %w", err)
		}
		// Each stored block is prefixed by its length and CRC.
		ft.blockOff[i] = off + 8
		ft.blockLen[i] = int(n)
		off += 8 + int(n)
		if off > blockRegion {
			return nil, fmt.Errorf("dataset: mfpac block index overruns block region")
		}
	}
	if off != blockRegion {
		return nil, fmt.Errorf("dataset: mfpac block region is %d bytes, index covers %d", blockRegion, off)
	}
	if c.off != len(payload) {
		return nil, fmt.Errorf("dataset: mfpac footer has %d trailing bytes", len(payload)-c.off)
	}
	return ft, nil
}

func decodeMFPAC(buf []byte, workers int) (*Frame, error) {
	h, err := parseMFPACHeader(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < mfpacHeaderLen+mfpacTrailerLen {
		return nil, fmt.Errorf("dataset: mfpac file truncated: %d bytes", len(buf))
	}
	trailer := buf[len(buf)-mfpacTrailerLen:]
	if !bytes.Equal(trailer[8:], mfpacMagic[:]) {
		return nil, fmt.Errorf("dataset: mfpac file truncated (no closing magic)")
	}
	footerLen := int(binary.LittleEndian.Uint32(trailer[0:4]))
	footerEnd := len(buf) - mfpacTrailerLen
	footerStart := footerEnd - footerLen
	if footerLen < 0 || footerStart < mfpacHeaderLen {
		return nil, fmt.Errorf("dataset: mfpac footer length %d invalid", footerLen)
	}
	footer := buf[footerStart:footerEnd]
	if got := binary.LittleEndian.Uint32(trailer[4:8]); got != crc32.ChecksumIEEE(footer) {
		return nil, fmt.Errorf("dataset: mfpac footer checksum mismatch")
	}
	ft, err := parseMFPACFooter(h, footer, footerStart-mfpacHeaderLen)
	if err != nil {
		return nil, err
	}

	f := NewFrameArena(h.totalRows)
	for _, v := range ft.fwTab {
		if _, dup := f.fwIdx[v]; dup {
			return nil, fmt.Errorf("dataset: mfpac firmware table repeats %q", v)
		}
		f.fwIdx[v] = int32(len(f.fwTab))
		f.fwTab = append(f.fwTab, v)
	}

	blocks := buf[mfpacHeaderLen:footerStart]
	nfw := len(ft.fwTab)
	err = parallel.Do(h.blocks, workers, func(bi int) error {
		off, n := ft.blockOff[bi], ft.blockLen[bi]
		stored := int(binary.LittleEndian.Uint32(blocks[off-8 : off-4]))
		if stored != n {
			return fmt.Errorf("dataset: mfpac block %d length prefix %d disagrees with index %d", bi, stored, n)
		}
		payload := blocks[off : off+n]
		if got := binary.LittleEndian.Uint32(blocks[off-4 : off]); got != crc32.ChecksumIEEE(payload) {
			return fmt.Errorf("dataset: mfpac block %d checksum mismatch", bi)
		}
		lo := bi * h.blockRows
		hi := lo + h.blockRows
		if hi > h.totalRows {
			hi = h.totalRows
		}
		if err := decodeMFPACBlock(payload, f, lo, hi-lo, nfw); err != nil {
			return fmt.Errorf("dataset: mfpac block %d: %w", bi, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	row := 0
	for i := 0; i < h.drives; i++ {
		if err := f.AddDrive(ft.driveSN[i], ft.driveVendor[i], ft.driveModel[i], row, row+ft.driveRows[i]); err != nil {
			return nil, err
		}
		row += ft.driveRows[i]
	}
	f.cumulated = h.flags&mfpacFlagCumulated != 0
	return f, nil
}

// mfpacEncPool recycles the per-block encode scratch (column gather
// and candidate buffers) across blocks and writer calls.
var mfpacEncPool = sync.Pool{New: func() any { return new(mfpacEncoder) }}
