package dataset

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

// requireFramesEqualBits asserts two frames hold identical telemetry:
// same drives in order, same days/flags/firmware versions, and
// bit-identical floats. Interned firmware codes may differ between
// frames; versions must not.
func requireFramesEqualBits(t *testing.T, want, got *Frame) {
	t.Helper()
	if want.Cumulated() != got.Cumulated() {
		t.Fatalf("cumulated marker: want %v, got %v", want.Cumulated(), got.Cumulated())
	}
	if want.Drives() != got.Drives() {
		t.Fatalf("drive count: want %d, got %d", want.Drives(), got.Drives())
	}
	if want.Len() != got.Len() {
		t.Fatalf("row count: want %d, got %d", want.Len(), got.Len())
	}
	for di := 0; di < want.Drives(); di++ {
		wd, gd := want.Drive(di), got.Drive(di)
		if wd.SerialNumber != gd.SerialNumber || wd.Vendor != gd.Vendor || wd.Model != gd.Model {
			t.Fatalf("drive %d identity: want %s %s/%s, got %s %s/%s",
				di, wd.SerialNumber, wd.Vendor, wd.Model, gd.SerialNumber, gd.Vendor, gd.Model)
		}
		if wd.Rows() != gd.Rows() {
			t.Fatalf("drive %s: want %d rows, got %d", wd.SerialNumber, wd.Rows(), gd.Rows())
		}
		for k := 0; k < wd.Rows(); k++ {
			wr, gr := int(wd.Start)+k, int(gd.Start)+k
			if want.Day(wr) != got.Day(gr) || want.Interpolated(wr) != got.Interpolated(gr) {
				t.Fatalf("drive %s row %d: want day=%d interp=%v, got day=%d interp=%v",
					wd.SerialNumber, k, want.Day(wr), want.Interpolated(wr), got.Day(gr), got.Interpolated(gr))
			}
			if want.FirmwareAt(wr) != got.FirmwareAt(gr) {
				t.Fatalf("drive %s row %d firmware: want %s, got %s",
					wd.SerialNumber, k, want.FirmwareAt(wr), got.FirmwareAt(gr))
			}
			for name, cols := range map[string][2][]float64{
				"SMART": {want.SmartRow(wr), got.SmartRow(gr)},
				"W":     {want.WRow(wr), got.WRow(gr)},
				"B":     {want.BRow(wr), got.BRow(gr)},
			} {
				for j := range cols[0] {
					if math.Float64bits(cols[0][j]) != math.Float64bits(cols[1][j]) {
						t.Fatalf("drive %s row %d %s[%d]: want %x, got %x", wd.SerialNumber, k, name, j,
							math.Float64bits(cols[0][j]), math.Float64bits(cols[1][j]))
					}
				}
			}
		}
	}
}

func mfpacBytes(t *testing.T, f *Frame, workers, blockRows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeMFPAC(&buf, f, workers, blockRows); err != nil {
		t.Fatalf("writeMFPAC: %v", err)
	}
	return buf.Bytes()
}

// TestMFPACRoundTrip pins Frame→MFPAC→Frame bit-identity across seeds,
// block geometries, and reader/writer worker counts.
func TestMFPACRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		want, err := FrameFromDataset(randomDataset(seed, 12))
		if err != nil {
			t.Fatal(err)
		}
		for _, blockRows := range []int{1, 7, 64, mfpacBlockRows} {
			file := mfpacBytes(t, want, 1, blockRows)
			for _, workers := range []int{1, 0, 3} {
				got, err := ReadMFPACWorkers(bytes.NewReader(file), workers)
				if err != nil {
					t.Fatalf("seed %d blockRows %d workers %d: %v", seed, blockRows, workers, err)
				}
				requireFramesEqualBits(t, want, got)
				requireDatasetsEqualBits(t, want.ToDataset(), got.ToDataset())
			}
		}
	}
}

// TestMFPACRoundTripCumulated keeps the cumulated marker across the
// container, so a cumulated file cannot be cumulated twice downstream.
func TestMFPACRoundTripCumulated(t *testing.T) {
	d := randomDataset(3, 6)
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	want, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadMFPAC(bytes.NewReader(mfpacBytes(t, want, 0, 16)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cumulated() {
		t.Fatal("cumulated marker lost in round trip")
	}
	requireFramesEqualBits(t, want, got)
}

// TestMFPACRoundTripGapPolicies runs cleaned/cumulated pipeline output
// (the other frame shape tools persist) through the container across
// gap policies.
func TestMFPACRoundTripGapPolicies(t *testing.T) {
	raw, err := FrameFromDataset(randomDataset(11, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []GapPolicy{
		DefaultGapPolicy(),
		{DropGap: 8, FillGap: 5},
		{DropGap: 14, FillGap: 1},
	} {
		want, _, err := PreparePipeline(raw, PipelineOptions{Policy: policy, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want.Drives() == 0 {
			t.Fatalf("policy %+v dropped every drive; fixture too small", policy)
		}
		got, err := ReadMFPAC(bytes.NewReader(mfpacBytes(t, want, 0, 32)))
		if err != nil {
			t.Fatalf("policy %+v: %v", policy, err)
		}
		requireFramesEqualBits(t, want, got)
	}
}

// TestMFPACWriterDeterminism pins the container bytes across encode
// worker counts.
func TestMFPACWriterDeterminism(t *testing.T) {
	f, err := FrameFromDataset(randomDataset(5, 20))
	if err != nil {
		t.Fatal(err)
	}
	want := mfpacBytes(t, f, 1, 64)
	for _, workers := range []int{0, 2, 5} {
		if got := mfpacBytes(t, f, workers, 64); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d produced different bytes than workers=1", workers)
		}
	}
}

// TestMFPACMatchesCSVTwin is the equivalence gate the io benchmark
// relies on: the frame loaded from an .mfpac file is bit-identical to
// the frame loaded from the CSV written off the same source.
func TestMFPACMatchesCSVTwin(t *testing.T) {
	src, err := FrameFromDataset(randomDataset(9, 15))
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := WriteCSVFrame(&csvBuf, src); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSVFrame(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromMFPAC, err := ReadMFPAC(bytes.NewReader(mfpacBytes(t, src, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	requireFramesEqualBits(t, fromCSV, fromMFPAC)
}

// TestMFPACFilterVendorView writes a shared-arena vendor view; the
// file must describe only the view's drives, densely packed.
func TestMFPACFilterVendorView(t *testing.T) {
	full, err := FrameFromDataset(randomDataset(4, 18))
	if err != nil {
		t.Fatal(err)
	}
	view := full.FilterVendor("I")
	if view.Drives() == 0 || view.Drives() == full.Drives() {
		t.Fatalf("fixture: vendor I has %d of %d drives", view.Drives(), full.Drives())
	}
	got, err := ReadMFPAC(bytes.NewReader(mfpacBytes(t, view, 0, 16)))
	if err != nil {
		t.Fatal(err)
	}
	requireFramesEqualBits(t, view, got)
	if got.Len() != got.ArenaRows() {
		t.Fatalf("decoded frame not dense: %d rows in %d-row arena", got.Len(), got.ArenaRows())
	}
}

// TestMFPACEmptyFrame round-trips a frame with no drives.
func TestMFPACEmptyFrame(t *testing.T) {
	got, err := ReadMFPAC(bytes.NewReader(mfpacBytes(t, NewFrameArena(0), 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Drives() != 0 || got.Len() != 0 {
		t.Fatalf("empty round trip: %d drives, %d rows", got.Drives(), got.Len())
	}
}

// TestMFPACCorruption asserts malformed containers are rejected with
// errors — truncations, single-bit flips (every byte is covered by one
// of the three CRCs or the structural checks), bad magic, and a bad
// version — and never panic.
func TestMFPACCorruption(t *testing.T) {
	f, err := FrameFromDataset(randomDataset(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	file := mfpacBytes(t, f, 1, 16)

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(file); n += 1 + n/16 {
			if _, err := ReadMFPAC(bytes.NewReader(file[:n])); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		mut := make([]byte, len(file))
		for i := range file {
			copy(mut, file)
			mut[i] ^= 1 << (i % 8)
			if _, err := ReadMFPAC(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d of %d decoded successfully", i, len(file))
			}
		}
	})

	t.Run("badmagic", func(t *testing.T) {
		mut := append([]byte(nil), file...)
		mut[0] = 'X'
		if _, err := ReadMFPAC(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad magic: got %v", err)
		}
	})

	t.Run("badversion", func(t *testing.T) {
		mut := append([]byte(nil), file...)
		mut[8] = 99 // version field; refresh the header CRC so only the
		// version check can fire
		patchMFPACHeaderCRC(mut)
		if _, err := ReadMFPAC(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("bad version: got %v", err)
		}
	})

	t.Run("widthmismatch", func(t *testing.T) {
		mut := append([]byte(nil), file...)
		mut[12]++ // SMART width
		patchMFPACHeaderCRC(mut)
		if _, err := ReadMFPAC(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "SMART columns") {
			t.Fatalf("width mismatch: got %v", err)
		}
	})
}

// TestReadTelemetryAutoDetect routes by magic bytes: MFPAC containers
// to the block codec, anything else to the CSV reader.
func TestReadTelemetryAutoDetect(t *testing.T) {
	want, err := FrameFromDataset(randomDataset(8, 7))
	if err != nil {
		t.Fatal(err)
	}

	got, err := ReadTelemetry(bytes.NewReader(mfpacBytes(t, want, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	requireFramesEqualBits(t, want, got)

	var csvBuf bytes.Buffer
	if err := WriteCSVFrame(&csvBuf, want); err != nil {
		t.Fatal(err)
	}
	twin, err := ReadCSVFrame(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err = ReadTelemetry(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireFramesEqualBits(t, twin, got)

	if _, err := ReadTelemetry(strings.NewReader("not,a\nvalid,file\n")); err == nil {
		t.Fatal("junk input decoded successfully")
	}
	if _, err := ReadTelemetry(strings.NewReader("")); err == nil {
		t.Fatal("empty input decoded successfully")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f, ok := ParseFormat("CSV"); !ok || f != FormatCSV {
		t.Fatalf("ParseFormat CSV: %v %v", f, ok)
	}
	if f, ok := ParseFormat("mfpac"); !ok || f != FormatMFPAC {
		t.Fatalf("ParseFormat mfpac: %v %v", f, ok)
	}
	if _, ok := ParseFormat("parquet"); ok {
		t.Fatal("ParseFormat accepted parquet")
	}
	if f := FormatForPath("fleet.MFPAC"); f != FormatMFPAC {
		t.Fatalf("FormatForPath .MFPAC: %v", f)
	}
	if f := FormatForPath("fleet.csv"); f != FormatCSV {
		t.Fatalf("FormatForPath .csv: %v", f)
	}

	want, err := FrameFromDataset(randomDataset(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []Format{FormatCSV, FormatMFPAC} {
		var buf bytes.Buffer
		if err := WriteTelemetry(&buf, want, format); err != nil {
			t.Fatalf("WriteTelemetry %s: %v", format, err)
		}
		got, err := ReadTelemetry(&buf)
		if err != nil {
			t.Fatalf("ReadTelemetry %s: %v", format, err)
		}
		if got.Len() != want.Len() || got.Drives() != want.Drives() {
			t.Fatalf("%s round trip: %d/%d rows, %d/%d drives",
				format, got.Len(), want.Len(), got.Drives(), want.Drives())
		}
	}
	if err := WriteTelemetry(&bytes.Buffer{}, want, Format("parquet")); err == nil {
		t.Fatal("WriteTelemetry accepted unknown format")
	}
}

// patchMFPACHeaderCRC recomputes the header checksum after a
// deliberate header mutation, so tests can reach the checks behind it.
func patchMFPACHeaderCRC(file []byte) {
	binary.LittleEndian.PutUint32(file[40:44], crc32.ChecksumIEEE(file[:40]))
}
