package dataset

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bsod"
	"repro/internal/firmware"
	"repro/internal/winevent"
)

// randomDataset synthesises a fleet with irregular day coverage,
// negative zeros, fractional counts, and mid-life firmware changes —
// everything the bit-exactness comparisons need to be meaningful.
// (The dataset tests cannot import simfleet, which imports dataset.)
func randomDataset(seed int64, drives int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	vendors := []string{"I", "S", "T"}
	d := New()
	for dr := 0; dr < drives; dr++ {
		vendor := vendors[rng.Intn(len(vendors))]
		sn := fmt.Sprintf("%s-%04d", vendor, dr)
		fw := firmware.Version(fmt.Sprintf("FW%d", rng.Intn(3)))
		day := rng.Intn(3)
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r := Record{
				SerialNumber: sn,
				Vendor:       vendor,
				Model:        "M" + vendor,
				Day:          day,
				Firmware:     fw,
				WCounts:      winevent.NewCounts(),
				BCounts:      bsod.NewCounts(),
			}
			for j := range r.Smart {
				r.Smart[j] = randomValue(rng)
			}
			for j := range r.WCounts {
				r.WCounts[j] = randomValue(rng)
			}
			for j := range r.BCounts {
				r.BCounts[j] = randomValue(rng)
			}
			if err := d.Append(r); err != nil {
				panic(err)
			}
			if rng.Intn(10) == 0 {
				fw = firmware.Version(fmt.Sprintf("FW%d", rng.Intn(3)))
			}
			day += 1 + rng.Intn(12) // gaps from 1 (consecutive) to 12
		}
	}
	return d
}

// randomValue draws a value whose bit pattern can expose arithmetic
// reordering: small counts, fractions, and the occasional -0.
func randomValue(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return math.Copysign(0, -1)
	case 1:
		return 0
	case 2:
		return float64(rng.Intn(5))
	case 3:
		return rng.Float64() * 10
	default:
		return float64(rng.Intn(100)) / 3
	}
}

// requireDatasetsEqualBits asserts two datasets agree exactly,
// including the bit patterns of every float (so +0 vs -0 and any
// arithmetic reordering fail loudly).
func requireDatasetsEqualBits(t *testing.T, want, got *Dataset) {
	t.Helper()
	if want.Cumulated() != got.Cumulated() {
		t.Fatalf("cumulated marker: want %v, got %v", want.Cumulated(), got.Cumulated())
	}
	wantSNs, gotSNs := want.SerialNumbers(), got.SerialNumbers()
	if len(wantSNs) != len(gotSNs) {
		t.Fatalf("drive count: want %d, got %d", len(wantSNs), len(gotSNs))
	}
	for i := range wantSNs {
		if wantSNs[i] != gotSNs[i] {
			t.Fatalf("drive order at %d: want %s, got %s", i, wantSNs[i], gotSNs[i])
		}
	}
	for _, sn := range wantSNs {
		ws, _ := want.Series(sn)
		gs, ok := got.Series(sn)
		if !ok {
			t.Fatalf("drive %s missing", sn)
		}
		if ws.Vendor != gs.Vendor || ws.Model != gs.Model {
			t.Fatalf("drive %s identity: want %s/%s, got %s/%s", sn, ws.Vendor, ws.Model, gs.Vendor, gs.Model)
		}
		if len(ws.Records) != len(gs.Records) {
			t.Fatalf("drive %s: want %d records, got %d", sn, len(ws.Records), len(gs.Records))
		}
		for i := range ws.Records {
			a, b := &ws.Records[i], &gs.Records[i]
			if a.Day != b.Day || a.Firmware != b.Firmware || a.Interpolated != b.Interpolated {
				t.Fatalf("drive %s record %d: want day=%d fw=%s interp=%v, got day=%d fw=%s interp=%v",
					sn, i, a.Day, a.Firmware, a.Interpolated, b.Day, b.Firmware, b.Interpolated)
			}
			for j := range a.Smart {
				if math.Float64bits(a.Smart[j]) != math.Float64bits(b.Smart[j]) {
					t.Fatalf("drive %s record %d SMART[%d]: want %x, got %x",
						sn, i, j, math.Float64bits(a.Smart[j]), math.Float64bits(b.Smart[j]))
				}
			}
			for j := range a.WCounts {
				if math.Float64bits(a.WCounts[j]) != math.Float64bits(b.WCounts[j]) {
					t.Fatalf("drive %s record %d W[%d]: want %x, got %x",
						sn, i, j, math.Float64bits(a.WCounts[j]), math.Float64bits(b.WCounts[j]))
				}
			}
			for j := range a.BCounts {
				if math.Float64bits(a.BCounts[j]) != math.Float64bits(b.BCounts[j]) {
					t.Fatalf("drive %s record %d B[%d]: want %x, got %x",
						sn, i, j, math.Float64bits(a.BCounts[j]), math.Float64bits(b.BCounts[j]))
				}
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	d := randomDataset(1, 30)
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != d.Len() || f.Drives() != d.Drives() {
		t.Fatalf("frame shape %d rows/%d drives, dataset %d/%d", f.Len(), f.Drives(), d.Len(), d.Drives())
	}
	requireDatasetsEqualBits(t, d, f.ToDataset())
}

func TestFrameRoundTripCumulated(t *testing.T) {
	d := randomDataset(2, 10)
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Cumulated() {
		t.Fatal("cumulated marker lost in FrameFromDataset")
	}
	requireDatasetsEqualBits(t, d, f.ToDataset())
}

func TestFrameBuilderStream(t *testing.T) {
	d := randomDataset(3, 20)
	b := NewFrameBuilder()
	d.Each(func(s *DriveSeries) {
		for i := range s.Records {
			if err := b.Append(s.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
	})
	requireDatasetsEqualBits(t, d, b.Finish().ToDataset())
}

func TestFrameBuilderSameDayReplaces(t *testing.T) {
	b := NewFrameBuilder()
	r1 := rec("A", 3)
	r1.WCounts[0] = 1
	r2 := rec("A", 3)
	r2.WCounts[0] = 9
	if err := b.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(r2); err != nil {
		t.Fatal(err)
	}
	f := b.Finish()
	if f.Len() != 1 {
		t.Fatalf("want 1 row after same-day replace, got %d", f.Len())
	}
	if got := f.WRow(0)[0]; got != 9 {
		t.Fatalf("replacement not applied: W[0] = %g", got)
	}
}

func TestFrameBuilderRejectsOutOfOrder(t *testing.T) {
	b := NewFrameBuilder()
	if err := b.Append(rec("A", 5)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(rec("A", 4)); !errors.Is(err, ErrRowOrder) {
		t.Fatalf("day regression: got %v, want ErrRowOrder", err)
	}
}

func TestFrameBuilderRejectsReappearingDrive(t *testing.T) {
	b := NewFrameBuilder()
	for _, step := range []struct {
		sn  string
		day int
	}{{"A", 0}, {"B", 0}} {
		if err := b.Append(rec(step.sn, step.day)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Append(rec("A", 1)); !errors.Is(err, ErrRowOrder) {
		t.Fatalf("drive reappearance: got %v, want ErrRowOrder", err)
	}
}

func TestFrameBuilderRejectsIdentityChange(t *testing.T) {
	b := NewFrameBuilder()
	if err := b.Append(rec("A", 0)); err != nil {
		t.Fatal(err)
	}
	r := rec("A", 1)
	r.Model = "other"
	if err := b.Append(r); err == nil {
		t.Fatal("identity change accepted")
	}
}

func TestAddDriveValidatesDays(t *testing.T) {
	f := NewFrameArena(3)
	f.SetDay(0, 2)
	f.SetDay(1, 2) // duplicate day
	f.SetDay(2, 1) // regression
	if err := f.AddDrive("A", "I", "M", 0, 2); err == nil {
		t.Fatal("duplicate day accepted")
	}
	f2 := NewFrameArena(2)
	f2.SetDay(0, 5)
	f2.SetDay(1, 3)
	if err := f2.AddDrive("A", "I", "M", 0, 2); err == nil {
		t.Fatal("decreasing days accepted")
	}
	f3 := NewFrameArena(2)
	f3.SetDay(0, -1)
	if err := f3.AddDrive("A", "I", "M", 0, 1); err == nil {
		t.Fatal("negative day accepted")
	}
	f4 := NewFrameArena(2)
	f4.SetDay(0, 0)
	f4.SetDay(1, 1)
	if err := f4.AddDrive("A", "I", "M", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := f4.AddDrive("A", "I", "M", 0, 2); err == nil {
		t.Fatal("duplicate serial accepted")
	}
	if err := f4.AddDrive("B", "I", "M", 1, 1); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestFilterVendorView(t *testing.T) {
	d := randomDataset(4, 30)
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Filter(func(s *DriveSeries) bool { return s.Vendor == "I" })
	got := f.FilterVendor("I")
	requireDatasetsEqualBits(t, want, got.ToDataset())
	if f.FilterVendor("") != f {
		t.Fatal("empty vendor should return the frame itself")
	}
}

func TestWriteCSVFrameMatchesWriteCSV(t *testing.T) {
	d := randomDataset(5, 15)
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	var recBuf, frameBuf bytes.Buffer
	if err := WriteCSV(&recBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVFrame(&frameBuf, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recBuf.Bytes(), frameBuf.Bytes()) {
		t.Fatal("WriteCSVFrame output differs from WriteCSV")
	}
}

func TestReadCSVFrameRoundTrip(t *testing.T) {
	d := randomDataset(6, 15)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	f, err := ReadCSVFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireDatasetsEqualBits(t, d, f.ToDataset())
}

func TestReadCSVFrameFallbackOnInterleavedRows(t *testing.T) {
	// Interleave two drives' rows: the streaming builder cannot take
	// them, so the reader must fall back to Dataset ingestion and still
	// return the right frame.
	d := New()
	for day := 0; day < 4; day++ {
		mustAppend(t, d, rec("A", day))
		mustAppend(t, d, rec("B", day))
	}
	var interleaved bytes.Buffer
	cw := csv.NewWriter(&interleaved)
	if err := cw.Write(Header()); err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 4; day++ {
		for _, sn := range []string{"A", "B"} {
			s, _ := d.Series(sn)
			r, _ := s.At(day)
			if err := cw.Write(recordRow(r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	f, err := ReadCSVFrame(bytes.NewReader(interleaved.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireDatasetsEqualBits(t, d, f.ToDataset())
}

func TestCumulateTwiceErrors(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 1, 2}})
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	if !d.Cumulated() {
		t.Fatal("cumulated marker not set")
	}
	if err := Cumulate(d); err == nil {
		t.Fatal("second Cumulate accepted")
	}
}

func TestCumulatedMarkerPropagates(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 1, 2}, "B": {0, 1}})
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	if !d.Clone().Cumulated() {
		t.Fatal("Clone dropped the cumulated marker")
	}
	if !d.Filter(func(*DriveSeries) bool { return true }).Cumulated() {
		t.Fatal("Filter dropped the cumulated marker")
	}
	if !d.Until(1).Cumulated() {
		t.Fatal("Until dropped the cumulated marker")
	}
	cleaned, _, err := CleanDiscontinuity(d, DefaultGapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !cleaned.Cumulated() {
		t.Fatal("CleanDiscontinuity dropped the cumulated marker")
	}
}

func TestPreparePipelineRejectsCumulatedFrame(t *testing.T) {
	d := buildSet(t, map[string][]int{"A": {0, 1, 2}})
	if err := Cumulate(d); err != nil {
		t.Fatal(err)
	}
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PreparePipeline(f, PipelineOptions{Policy: DefaultGapPolicy()}); err == nil {
		t.Fatal("cumulating a cumulated frame accepted")
	}
	// With cumulation skipped the frame is only cleaned — no hazard.
	if _, _, err := PreparePipeline(f, PipelineOptions{Policy: DefaultGapPolicy(), SkipCumulate: true}); err != nil {
		t.Fatal(err)
	}
}

func TestGapHistogramGuardsNonPositiveGaps(t *testing.T) {
	// Hand-assemble a corrupt series (Append would reject it) to pin
	// the guard: duplicate and backwards days land in bucket 0.
	d := New()
	s := &DriveSeries{SerialNumber: "X", Vendor: "I", Model: "M"}
	for _, day := range []int{5, 5, 3, 9} {
		r := rec("X", day)
		s.Records = append(s.Records, r)
	}
	d.bySN["X"] = s
	d.order = append(d.order, "X")
	hist := GapHistogram(d, 10)
	if hist[0] != 2 {
		t.Fatalf("non-positive gaps in bucket 0 = %d, want 2", hist[0])
	}
	if hist[6] != 1 {
		t.Fatalf("gap 6 count = %d, want 1", hist[6])
	}
}

// preparedRecordPath runs the record-path pipeline (clean + cumulate)
// that PreparePipeline fuses.
func preparedRecordPath(t *testing.T, d *Dataset, policy GapPolicy, skipClean, skipCumulate bool, workers int) (*Dataset, CleanStats) {
	t.Helper()
	var stats CleanStats
	out := d
	if !skipClean {
		var err error
		out, stats, err = CleanDiscontinuityWorkers(d, policy, workers)
		if err != nil {
			t.Fatal(err)
		}
	} else if !skipCumulate {
		out = d.Clone()
	}
	if !skipCumulate {
		if err := Cumulate(out); err != nil {
			t.Fatal(err)
		}
	}
	return out, stats
}

func TestPreparePipelineMatchesRecordPath(t *testing.T) {
	policies := []GapPolicy{DefaultGapPolicy(), {DropGap: 5, FillGap: 2}, {DropGap: 13, FillGap: 9}}
	for seed := int64(0); seed < 4; seed++ {
		d := randomDataset(seed, 25)
		f, err := FrameFromDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range policies {
			for _, workers := range []int{1, 0, 3} {
				want, wantStats := preparedRecordPath(t, d, policy, false, false, 1)
				got, gotStats, err := PreparePipeline(f, PipelineOptions{Policy: policy, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if wantStats != gotStats {
					t.Fatalf("seed %d policy %+v workers %d: stats %+v, want %+v",
						seed, policy, workers, gotStats, wantStats)
				}
				requireDatasetsEqualBits(t, want, got.ToDataset())
			}
		}
	}
}

func TestPreparePipelineAblations(t *testing.T) {
	d := randomDataset(7, 20)
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ skipClean, skipCumulate bool }{
		{true, false}, {false, true}, {true, true},
	}
	for _, c := range cases {
		want, wantStats := preparedRecordPath(t, d, DefaultGapPolicy(), c.skipClean, c.skipCumulate, 1)
		got, gotStats, err := PreparePipeline(f, PipelineOptions{
			Policy: DefaultGapPolicy(), SkipClean: c.skipClean, SkipCumulate: c.skipCumulate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if wantStats != gotStats {
			t.Fatalf("case %+v: stats %+v, want %+v", c, gotStats, wantStats)
		}
		requireDatasetsEqualBits(t, want, got.ToDataset())
	}
}

func TestPreparePipelineWorkerDeterminism(t *testing.T) {
	d := randomDataset(8, 40)
	f, err := FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := PreparePipeline(f, PipelineOptions{Policy: DefaultGapPolicy(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 7} {
		got, _, err := PreparePipeline(f, PipelineOptions{Policy: DefaultGapPolicy(), Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		requireDatasetsEqualBits(t, base.ToDataset(), got.ToDataset())
	}
}

// FuzzPreparePipeline drives the fused pass with arbitrary fleet
// shapes and gap policies, always requiring bit-identity with the
// record path.
func FuzzPreparePipeline(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint8(2))
	f.Add(int64(2), uint8(2), uint8(1), uint8(0))
	f.Add(int64(99), uint8(13), uint8(9), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, dropGap, fillGap, workers uint8) {
		policy := GapPolicy{DropGap: int(dropGap), FillGap: int(fillGap)}
		if policy.Validate() != nil {
			t.Skip()
		}
		d := randomDataset(seed, 12)
		fr, err := FrameFromDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		want, wantStats := preparedRecordPath(t, d, policy, false, false, 1)
		got, gotStats, err := PreparePipeline(fr, PipelineOptions{Policy: policy, Workers: int(workers)})
		if err != nil {
			t.Fatal(err)
		}
		if wantStats != gotStats {
			t.Fatalf("stats %+v, want %+v", gotStats, wantStats)
		}
		requireDatasetsEqualBits(t, want, got.ToDataset())
	})
}

// FuzzReadCSVFrame mirrors FuzzReadCSV for the streaming frame reader:
// it must never panic, and whatever parses must match ReadCSV.
func FuzzReadCSVFrame(f *testing.F) {
	d := New()
	_ = d.Append(rec("A", 1))
	var sb strings.Builder
	_ = WriteCSV(&sb, d)
	f.Add(sb.String())
	f.Add("")
	f.Add(strings.Repeat("x,", 53) + "x\n")
	f.Fuzz(func(t *testing.T, input string) {
		fr, frameErr := ReadCSVFrame(strings.NewReader(input))
		ds, dsErr := ReadCSV(strings.NewReader(input))
		if (frameErr == nil) != (dsErr == nil) {
			t.Fatalf("reader disagreement: frame err %v, dataset err %v", frameErr, dsErr)
		}
		if frameErr != nil {
			return
		}
		requireDatasetsEqualBits(t, ds, fr.ToDataset())
	})
}
