package dataset

import (
	"fmt"
	"reflect"
	"testing"
)

// gapDataset builds a fleet whose drives exercise every cleaning
// outcome: contiguous series, fillable short gaps, and drop-worthy
// long gaps, in a mix that varies per drive.
func gapDataset(t *testing.T, drives int) *Dataset {
	t.Helper()
	d := New()
	for dr := 0; dr < drives; dr++ {
		sn := fmt.Sprintf("D%03d", dr)
		step := 1 + dr%4 // gap sizes 0..3 between observations
		for day := 0; day < 50; day += step {
			r := rec(sn, day)
			r.WCounts[0] = float64(day % 3)
			mustAppend(t, d, r)
		}
		if dr%7 == 0 { // every 7th drive earns a drop-worthy gap
			mustAppend(t, d, rec(sn, 80))
		}
	}
	return d
}

// TestCleanWorkersIdentical asserts the per-drive cleaning fan-out is
// bit-identical to the serial pass at every worker count.
func TestCleanWorkersIdentical(t *testing.T) {
	d := gapDataset(t, 40)
	policy := DefaultGapPolicy()
	want, wantStats, err := CleanDiscontinuityWorkers(d, policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.DrivesDropped == 0 || wantStats.RecordsFilled == 0 {
		t.Fatalf("fixture exercises nothing: stats = %+v", wantStats)
	}
	for _, w := range []int{0, 2, 3, 8} {
		got, stats, err := CleanDiscontinuityWorkers(d, policy, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if stats != wantStats {
			t.Fatalf("workers=%d: stats = %+v, want %+v", w, stats, wantStats)
		}
		if !reflect.DeepEqual(got.SerialNumbers(), want.SerialNumbers()) {
			t.Fatalf("workers=%d: drive order differs", w)
		}
		for _, sn := range want.SerialNumbers() {
			ws, _ := want.Series(sn)
			gs, _ := got.Series(sn)
			if !reflect.DeepEqual(gs, ws) {
				t.Fatalf("workers=%d: drive %s differs after cleaning", w, sn)
			}
		}
	}
}
