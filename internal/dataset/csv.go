package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/bsod"
	"repro/internal/firmware"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// The CSV layout is: sn, vendor, model, day, interpolated, firmware,
// S_1..S_16, one column per catalogued Windows event, one per
// catalogued stop code. Header names use the paper's compact labels.

// Header returns the CSV column names in write order.
func Header() []string {
	h := []string{"sn", "vendor", "model", "day", "interpolated", "firmware"}
	for id := smartattr.ID(1); id <= smartattr.Count; id++ {
		h = append(h, id.Label())
	}
	for _, info := range winevent.All() {
		h = append(h, info.ID.Label())
	}
	for _, info := range bsod.All() {
		h = append(h, info.Code.Label())
	}
	return h
}

// WriteCSV writes the dataset to w, one row per record, drives in
// insertion order.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	var err error
	d.Each(func(s *DriveSeries) {
		if err != nil {
			return
		}
		for i := range s.Records {
			if e := cw.Write(recordRow(&s.Records[i])); e != nil {
				err = fmt.Errorf("dataset: write record: %w", e)
				return
			}
		}
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func recordRow(r *Record) []string {
	row := make([]string, 0, 6+smartattr.Count+winevent.Count()+bsod.Count())
	row = append(row,
		r.SerialNumber,
		r.Vendor,
		r.Model,
		strconv.Itoa(r.Day),
		strconv.FormatBool(r.Interpolated),
		string(r.Firmware),
	)
	for _, v := range r.Smart {
		row = append(row, formatFloat(v))
	}
	for _, v := range r.WCounts {
		row = append(row, formatFloat(v))
	}
	for _, v := range r.BCounts {
		row = append(row, formatFloat(v))
	}
	return row
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header())
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	want := Header()
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, header[i], want[i])
		}
	}
	d := New()
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if err := d.Append(rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return d, nil
}

func parseRow(row []string) (Record, error) {
	rec := Record{
		SerialNumber: row[0],
		Vendor:       row[1],
		Model:        row[2],
		Firmware:     firmware.Version(row[5]),
		WCounts:      winevent.NewCounts(),
		BCounts:      bsod.NewCounts(),
	}
	day, err := strconv.Atoi(row[3])
	if err != nil {
		return Record{}, fmt.Errorf("bad day %q: %w", row[3], err)
	}
	rec.Day = day
	interp, err := strconv.ParseBool(row[4])
	if err != nil {
		return Record{}, fmt.Errorf("bad interpolated flag %q: %w", row[4], err)
	}
	rec.Interpolated = interp

	col := 6
	for i := 0; i < smartattr.Count; i++ {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad SMART value %q: %w", row[col], err)
		}
		rec.Smart[i] = v
		col++
	}
	for i := 0; i < winevent.Count(); i++ {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad W count %q: %w", row[col], err)
		}
		rec.WCounts[i] = v
		col++
	}
	for i := 0; i < bsod.Count(); i++ {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad B count %q: %w", row[col], err)
		}
		rec.BCounts[i] = v
		col++
	}
	return rec, nil
}
