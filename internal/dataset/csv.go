package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/bsod"
	"repro/internal/firmware"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// The CSV layout is: sn, vendor, model, day, interpolated, firmware,
// S_1..S_16, one column per catalogued Windows event, one per
// catalogued stop code. Header names use the paper's compact labels.

// Header returns the CSV column names in write order.
func Header() []string {
	h := []string{"sn", "vendor", "model", "day", "interpolated", "firmware"}
	for id := smartattr.ID(1); id <= smartattr.Count; id++ {
		h = append(h, id.Label())
	}
	for _, info := range winevent.All() {
		h = append(h, info.ID.Label())
	}
	for _, info := range bsod.All() {
		h = append(h, info.Code.Label())
	}
	return h
}

// WriteCSV writes the dataset to w, one row per record, drives in
// insertion order.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	var err error
	d.Each(func(s *DriveSeries) {
		if err != nil {
			return
		}
		for i := range s.Records {
			if e := cw.Write(recordRow(&s.Records[i])); e != nil {
				err = fmt.Errorf("dataset: write record: %w", e)
				return
			}
		}
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func recordRow(r *Record) []string {
	row := make([]string, 0, 6+smartattr.Count+winevent.Count()+bsod.Count())
	row = append(row,
		r.SerialNumber,
		r.Vendor,
		r.Model,
		strconv.Itoa(r.Day),
		strconv.FormatBool(r.Interpolated),
		string(r.Firmware),
	)
	for _, v := range r.Smart {
		row = append(row, formatFloat(v))
	}
	for _, v := range r.WCounts {
		row = append(row, formatFloat(v))
	}
	for _, v := range r.BCounts {
		row = append(row, formatFloat(v))
	}
	return row
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSVFrame writes the frame to w in the exact byte layout of
// WriteCSV on the equivalent dataset, without materialising records.
func WriteCSVFrame(w io.Writer, f *Frame) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, 0, 6+smartattr.Count+winevent.Count()+bsod.Count())
	for di := 0; di < f.Drives(); di++ {
		d := f.Drive(di)
		for r := int(d.Start); r < int(d.End); r++ {
			row = append(row[:0],
				d.SerialNumber,
				d.Vendor,
				d.Model,
				strconv.Itoa(int(f.Day(r))),
				strconv.FormatBool(f.Interpolated(r)),
				string(f.FirmwareAt(r)),
			)
			for _, v := range f.SmartRow(r) {
				row = append(row, formatFloat(v))
			}
			for _, v := range f.WRow(r) {
				row = append(row, formatFloat(v))
			}
			for _, v := range f.BRow(r) {
				row = append(row, formatFloat(v))
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("dataset: write record: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header())
	// One reused row slice for the whole file; every row is parsed into
	// a Record before the next Read, so nothing aliases it.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	want := Header()
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, header[i], want[i])
		}
	}
	d := New()
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if err := d.Append(rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return d, nil
}

// ReadCSVFrame parses telemetry written by WriteCSV/WriteCSVFrame
// straight into a columnar frame, one streamed row at a time — no
// []Record ever materialises. Files produced by the MFPA tools are
// grouped by drive in day order (the builder's fast path); anything
// else falls back to Dataset ingestion plus conversion, so the result
// is always the frame equivalent of ReadCSV.
func ReadCSVFrame(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header())
	// The scratch record below is refilled from each row before the
	// next Read, so the reader's row slice can be reused throughout.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	want := Header()
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, header[i], want[i])
		}
	}
	b := NewFrameBuilder()
	scratch := Record{WCounts: winevent.NewCounts(), BCounts: bsod.NewCounts()}
	var fallback *Dataset // non-nil once row order breaks the builder
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		if err := parseRowInto(&scratch, row); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if fallback == nil {
			err := b.AppendRow(scratch.SerialNumber, scratch.Vendor, scratch.Model,
				scratch.Day, scratch.Firmware, &scratch.Smart,
				scratch.WCounts, scratch.BCounts, scratch.Interpolated)
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrRowOrder) {
				return nil, fmt.Errorf("dataset: line %d: %w", line, err)
			}
			fallback = b.Finish().ToDataset()
		}
		if err := fallback.Append(scratch.Clone()); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	if fallback != nil {
		return FrameFromDataset(fallback)
	}
	return b.Finish(), nil
}

func parseRow(row []string) (Record, error) {
	rec := Record{
		WCounts: winevent.NewCounts(),
		BCounts: bsod.NewCounts(),
	}
	if err := parseRowInto(&rec, row); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// parseRowInto fills rec from a CSV row, reusing its count slices.
func parseRowInto(rec *Record, row []string) error {
	rec.SerialNumber = row[0]
	rec.Vendor = row[1]
	rec.Model = row[2]
	rec.Firmware = firmware.Version(row[5])
	rec.Interpolated = false
	day, err := strconv.Atoi(row[3])
	if err != nil {
		return fmt.Errorf("bad day %q: %w", row[3], err)
	}
	rec.Day = day
	interp, err := strconv.ParseBool(row[4])
	if err != nil {
		return fmt.Errorf("bad interpolated flag %q: %w", row[4], err)
	}
	rec.Interpolated = interp

	col := 6
	for i := 0; i < smartattr.Count; i++ {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return fmt.Errorf("bad SMART value %q: %w", row[col], err)
		}
		rec.Smart[i] = v
		col++
	}
	for i := 0; i < winevent.Count(); i++ {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return fmt.Errorf("bad W count %q: %w", row[col], err)
		}
		rec.WCounts[i] = v
		col++
	}
	for i := 0; i < bsod.Count(); i++ {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return fmt.Errorf("bad B count %q: %w", row[col], err)
		}
		rec.BCounts[i] = v
		col++
	}
	return nil
}
