package dataset

import (
	"errors"
	"fmt"

	"repro/internal/bsod"
	"repro/internal/firmware"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// Column widths of the frame arena. SMART is a compile-time constant;
// the W/B catalogue sizes are fixed at init.
var (
	wWidth = winevent.Count()
	bWidth = bsod.Count()
)

const smartWidth = smartattr.Count

// FrameDrive is one drive's identity and row range within a Frame.
// Rows [Start, End) of the arena belong to the drive, in strictly
// increasing day order.
type FrameDrive struct {
	SerialNumber string
	Vendor       string
	Model        string
	Start, End   int32
}

// Rows returns the drive's record count.
func (d *FrameDrive) Rows() int { return int(d.End - d.Start) }

// Frame is the columnar (structure-of-arrays) drive-day telemetry
// arena: one flat column per field — day index, the 16 SMART
// attributes, the W and B counters, an interned firmware code, and the
// interpolated flag — plus the per-drive row ranges and identity
// strings. It holds exactly the information of a Dataset, laid out so
// the preprocessing pipeline streams each drive's rows without
// touching per-record heap objects.
//
// A frame built by NewFrameArena is mutable while it is being filled
// (the Set*/AddDrive/Intern* methods); once handed to readers it must
// be treated as immutable. Drive row ranges do not have to cover the
// whole arena (the fleet simulator leaves slack rows between drives,
// and FilterVendor shares the arena of its parent), so all iteration
// goes through the drives' [Start, End) ranges, never over raw rows.
type Frame struct {
	drives []FrameDrive
	bySN   map[string]int32

	day    []int32
	interp []bool
	fw     []int32 // index into fwTab
	smart  []float64
	w      []float64
	b      []float64

	fwTab []firmware.Version
	fwIdx map[firmware.Version]int32

	length    int // total rows covered by drives
	cumulated bool
}

// NewFrameArena allocates a frame whose columns hold rows rows, with no
// drives registered yet. Builders fill columns (concurrently for
// disjoint row ranges) and then register each drive's range serially
// with AddDrive.
func NewFrameArena(rows int) *Frame {
	return &Frame{
		bySN:   make(map[string]int32),
		day:    make([]int32, rows),
		interp: make([]bool, rows),
		fw:     make([]int32, rows),
		smart:  make([]float64, rows*smartWidth),
		w:      make([]float64, rows*wWidth),
		b:      make([]float64, rows*bWidth),
		fwIdx:  make(map[firmware.Version]int32),
	}
}

// Drives returns the number of drives.
func (f *Frame) Drives() int { return len(f.drives) }

// Drive returns drive i in registration (dataset insertion) order. The
// pointer aliases frame state; callers must not modify it.
func (f *Frame) Drive(i int) *FrameDrive { return &f.drives[i] }

// DriveIndex returns the index of the drive with the given serial
// number, if present.
func (f *Frame) DriveIndex(sn string) (int, bool) {
	i, ok := f.bySN[sn]
	return int(i), ok
}

// Len returns the total number of records (rows covered by drives).
func (f *Frame) Len() int { return f.length }

// ArenaRows returns the arena capacity in rows, which can exceed Len
// when drive ranges leave slack between them.
func (f *Frame) ArenaRows() int { return len(f.day) }

// Cumulated reports whether the W/B columns hold running totals (the
// Cumulate marker of the record path, carried by the fused pipeline).
func (f *Frame) Cumulated() bool { return f.cumulated }

// Day returns the observation day of row.
func (f *Frame) Day(row int) int32 { return f.day[row] }

// SetDay records the observation day of row.
func (f *Frame) SetDay(row int, day int32) { f.day[row] = day }

// Interpolated reports whether row was synthesised by mean-fill.
func (f *Frame) Interpolated(row int) bool { return f.interp[row] }

// SetInterpolated marks row as synthesised.
func (f *Frame) SetInterpolated(row int, v bool) { f.interp[row] = v }

// SmartRow returns the 16 SMART values of row. The slice aliases the
// arena; builders write through it, readers must not.
func (f *Frame) SmartRow(row int) []float64 {
	off := row * smartWidth
	return f.smart[off : off+smartWidth : off+smartWidth]
}

// WRow returns the W counter vector of row (daily counts, or running
// totals after the cumulative transform). Aliases the arena.
func (f *Frame) WRow(row int) []float64 {
	off := row * wWidth
	return f.w[off : off+wWidth : off+wWidth]
}

// BRow returns the B counter vector of row. Aliases the arena.
func (f *Frame) BRow(row int) []float64 {
	off := row * bWidth
	return f.b[off : off+bWidth : off+bWidth]
}

// FirmwareID returns the interned firmware code of row. Codes are
// frame-local; use FirmwareByID to recover the version string.
func (f *Frame) FirmwareID(row int) int32 { return f.fw[row] }

// SetFirmwareID stamps row with an interned firmware code obtained
// from InternFirmware (or copied from another row of a frame sharing
// the same table). Safe to call concurrently for disjoint rows.
func (f *Frame) SetFirmwareID(row int, id int32) { f.fw[row] = id }

// FirmwareByID resolves an interned firmware code.
func (f *Frame) FirmwareByID(id int32) firmware.Version { return f.fwTab[id] }

// FirmwareAt returns the firmware version of row.
func (f *Frame) FirmwareAt(row int) firmware.Version { return f.fwTab[f.fw[row]] }

// InternFirmware returns the frame-local code of v, adding it to the
// table on first sight. Not safe for concurrent use: intern serially
// (or copy codes between frames sharing a table).
func (f *Frame) InternFirmware(v firmware.Version) int32 {
	if id, ok := f.fwIdx[v]; ok {
		return id
	}
	id := int32(len(f.fwTab))
	f.fwTab = append(f.fwTab, v)
	f.fwIdx[v] = id
	return id
}

// SetFirmware stamps row with version v, interning it. Serial-only.
func (f *Frame) SetFirmware(row int, v firmware.Version) {
	f.fw[row] = f.InternFirmware(v)
}

// FillFirmware stamps rows [start, end) with version v. Serial-only.
func (f *Frame) FillFirmware(start, end int, v firmware.Version) {
	id := f.InternFirmware(v)
	for row := start; row < end; row++ {
		f.fw[row] = id
	}
}

// shareFirmwareTable makes dst's firmware table (and intern index) a
// copy of src's, so workers filling dst can copy codes straight from
// src rows without interning.
func (dst *Frame) shareFirmwareTable(src *Frame) {
	dst.fwTab = append(dst.fwTab[:0], src.fwTab...)
	dst.fwIdx = make(map[firmware.Version]int32, len(src.fwIdx))
	for v, id := range src.fwIdx {
		dst.fwIdx[v] = id
	}
}

// AddDrive registers rows [start, end) as one drive's series. Must be
// called serially, in the intended drive order, after the rows are
// filled. The day column of the range is validated once here — strictly
// increasing days, non-negative — so every downstream pass (gap
// analysis, fill, labelling, windowed iteration) can assume
// monotonicity instead of re-checking it.
func (f *Frame) AddDrive(sn, vendor, model string, start, end int) error {
	if sn == "" {
		return errors.New("dataset: frame drive has empty serial number")
	}
	if start < 0 || end > len(f.day) || start >= end {
		return fmt.Errorf("dataset: frame drive %s has bad row range [%d, %d)", sn, start, end)
	}
	if _, dup := f.bySN[sn]; dup {
		return fmt.Errorf("dataset: frame drive %s registered twice", sn)
	}
	if f.day[start] < 0 {
		return fmt.Errorf("dataset: frame drive %s has negative day %d", sn, f.day[start])
	}
	for row := start + 1; row < end; row++ {
		if f.day[row] <= f.day[row-1] {
			return fmt.Errorf("dataset: frame drive %s days not strictly increasing at row %d (%d after %d)",
				sn, row, f.day[row], f.day[row-1])
		}
	}
	f.bySN[sn] = int32(len(f.drives))
	f.drives = append(f.drives, FrameDrive{
		SerialNumber: sn, Vendor: vendor, Model: model,
		Start: int32(start), End: int32(end),
	})
	f.length += end - start
	return nil
}

// FilterVendor returns a frame holding only the given vendor's drives.
// Columns are shared with f, not copied; the result is a read-only
// view. An empty vendor returns f itself.
func (f *Frame) FilterVendor(vendor string) *Frame {
	if vendor == "" {
		return f
	}
	out := &Frame{
		bySN:      make(map[string]int32),
		day:       f.day,
		interp:    f.interp,
		fw:        f.fw,
		smart:     f.smart,
		w:         f.w,
		b:         f.b,
		fwTab:     f.fwTab,
		fwIdx:     f.fwIdx,
		cumulated: f.cumulated,
	}
	for i := range f.drives {
		d := &f.drives[i]
		if d.Vendor != vendor {
			continue
		}
		out.bySN[d.SerialNumber] = int32(len(out.drives))
		out.drives = append(out.drives, *d)
		out.length += d.Rows()
	}
	return out
}

// Vendors returns the distinct vendor names present, in first-seen
// drive order.
func (f *Frame) Vendors() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range f.drives {
		if v := f.drives[i].Vendor; !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// FrameFromDataset converts record-form telemetry into a compact
// columnar frame, preserving drive insertion order and the cumulated
// marker. Drives with no records are skipped (Dataset cannot normally
// hold them).
func FrameFromDataset(d *Dataset) (*Frame, error) {
	f := NewFrameArena(d.Len())
	row := 0
	for _, sn := range d.order {
		s := d.bySN[sn]
		if len(s.Records) == 0 {
			continue
		}
		start := row
		for i := range s.Records {
			r := &s.Records[i]
			f.day[row] = int32(r.Day)
			copy(f.SmartRow(row), r.Smart[:])
			copy(f.WRow(row), r.WCounts)
			copy(f.BRow(row), r.BCounts)
			f.interp[row] = r.Interpolated
			f.SetFirmware(row, r.Firmware)
			row++
		}
		if err := f.AddDrive(sn, s.Vendor, s.Model, start, row); err != nil {
			return nil, err
		}
	}
	f.cumulated = d.cumulated
	return f, nil
}

// ToDataset materialises the frame as record-form telemetry — the
// compat adapter for consumers that still walk []Record slices. Count
// vectors are copied, so the dataset does not alias the arena.
func (f *Frame) ToDataset() *Dataset {
	d := New()
	for di := range f.drives {
		fd := &f.drives[di]
		s := &DriveSeries{SerialNumber: fd.SerialNumber, Vendor: fd.Vendor, Model: fd.Model}
		s.Records = make([]Record, 0, fd.Rows())
		wflat := make([]float64, fd.Rows()*wWidth)
		bflat := make([]float64, fd.Rows()*bWidth)
		for row := int(fd.Start); row < int(fd.End); row++ {
			k := row - int(fd.Start)
			wc := winevent.Counts(wflat[k*wWidth : (k+1)*wWidth : (k+1)*wWidth])
			bc := bsod.Counts(bflat[k*bWidth : (k+1)*bWidth : (k+1)*bWidth])
			copy(wc, f.WRow(row))
			copy(bc, f.BRow(row))
			rec := Record{
				SerialNumber: fd.SerialNumber,
				Vendor:       fd.Vendor,
				Model:        fd.Model,
				Day:          int(f.day[row]),
				Firmware:     f.fwTab[f.fw[row]],
				WCounts:      wc,
				BCounts:      bc,
				Interpolated: f.interp[row],
			}
			copy(rec.Smart[:], f.SmartRow(row))
			s.Records = append(s.Records, rec)
		}
		d.bySN[fd.SerialNumber] = s
		d.order = append(d.order, fd.SerialNumber)
	}
	d.cumulated = f.cumulated
	return d
}

// ErrRowOrder reports telemetry that is not grouped by drive in
// ascending day order — the streaming FrameBuilder's one requirement.
// Callers that cannot guarantee the order fall back to Dataset.Append
// plus FrameFromDataset.
var ErrRowOrder = errors.New("dataset: rows not grouped by drive in ascending day order")

// FrameBuilder assembles a frame from a stream of rows — the
// collection-agent and CSV ingest path. Rows must arrive grouped by
// drive with non-decreasing days (a repeated day replaces the previous
// row, matching Dataset.Append); anything else fails with ErrRowOrder.
type FrameBuilder struct {
	f   *Frame
	cur int // index of the open drive, -1 when none
}

// NewFrameBuilder returns an empty streaming builder.
func NewFrameBuilder() *FrameBuilder {
	return &FrameBuilder{f: NewFrameArena(0), cur: -1}
}

// AppendRow adds one observation without materialising a Record. The
// smart vector is required; nil w/b count vectors mean all-zero counts.
// Values are copied into the frame's columns.
func (b *FrameBuilder) AppendRow(sn, vendor, model string, day int, fw firmware.Version,
	smart *smartattr.Values, w winevent.Counts, bc bsod.Counts, interp bool) error {
	if sn == "" {
		return errors.New("dataset: record has empty serial number")
	}
	if day < 0 {
		return fmt.Errorf("dataset: record %s has negative day %d", sn, day)
	}
	if w != nil && len(w) != wWidth {
		return fmt.Errorf("dataset: record %s has %d W counters, want %d", sn, len(w), wWidth)
	}
	if bc != nil && len(bc) != bWidth {
		return fmt.Errorf("dataset: record %s has %d B counters, want %d", sn, len(bc), bWidth)
	}
	if err := validateValues(sn, smart[:], w, bc); err != nil {
		return err
	}
	f := b.f
	var row int
	if b.cur >= 0 && f.drives[b.cur].SerialNumber == sn {
		d := &f.drives[b.cur]
		if d.Vendor != vendor || d.Model != model {
			return fmt.Errorf("dataset: drive %s changes identity: have %s/%s, got %s/%s",
				sn, d.Vendor, d.Model, vendor, model)
		}
		last := int(f.day[d.End-1])
		switch {
		case day > last:
			row = int(d.End)
			b.grow()
			d.End++
		case day == last:
			row = int(d.End) - 1 // same-day re-observation supersedes
		default:
			return fmt.Errorf("%w: drive %s day %d after day %d", ErrRowOrder, sn, day, last)
		}
	} else {
		if _, seen := f.bySN[sn]; seen {
			return fmt.Errorf("%w: drive %s reappears after another drive", ErrRowOrder, sn)
		}
		row = len(f.day)
		b.grow()
		f.bySN[sn] = int32(len(f.drives))
		f.drives = append(f.drives, FrameDrive{
			SerialNumber: sn, Vendor: vendor, Model: model,
			Start: int32(row), End: int32(row) + 1,
		})
		b.cur = len(f.drives) - 1
	}
	f.day[row] = int32(day)
	f.interp[row] = interp
	f.SetFirmware(row, fw)
	copy(f.SmartRow(row), smart[:])
	wr, br := f.WRow(row), f.BRow(row)
	if w != nil {
		copy(wr, w)
	} else {
		clear(wr)
	}
	if bc != nil {
		copy(br, bc)
	} else {
		clear(br)
	}
	return nil
}

// grow extends every column by one row.
func (b *FrameBuilder) grow() {
	f := b.f
	f.day = append(f.day, 0)
	f.interp = append(f.interp, false)
	f.fw = append(f.fw, 0)
	f.smart = append(f.smart, make([]float64, smartWidth)...)
	f.w = append(f.w, make([]float64, wWidth)...)
	f.b = append(f.b, make([]float64, bWidth)...)
}

// Append adds a record (validated) to the stream.
func (b *FrameBuilder) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return b.AppendRow(r.SerialNumber, r.Vendor, r.Model, r.Day, r.Firmware,
		&r.Smart, r.WCounts, r.BCounts, r.Interpolated)
}

// Len returns the number of rows appended so far.
func (b *FrameBuilder) Len() int { return len(b.f.day) }

// Finish seals and returns the frame. The builder must not be used
// afterwards.
func (b *FrameBuilder) Finish() *Frame {
	f := b.f
	b.f = nil
	b.cur = -1
	f.length = len(f.day)
	return f
}
