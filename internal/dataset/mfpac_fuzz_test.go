package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadMFPAC asserts the container reader never panics: arbitrary
// input either errors or decodes to a frame satisfying the arena
// invariants (dense packing, registered drives covering every row,
// strictly increasing days — AddDrive enforces the latter).
func FuzzReadMFPAC(f *testing.F) {
	frame, err := FrameFromDataset(randomDataset(1, 4))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeMFPAC(&buf, frame, 1, 8); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:mfpacHeaderLen])
	f.Add(append([]byte(nil), mfpacMagic[:]...))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, input []byte) {
		got, err := ReadMFPACWorkers(bytes.NewReader(input), 1)
		if err != nil {
			return
		}
		rows := 0
		for i := 0; i < got.Drives(); i++ {
			d := got.Drive(i)
			if int(d.Start) != rows {
				t.Fatalf("drive %d starts at %d, expected dense packing at %d", i, d.Start, rows)
			}
			rows += d.Rows()
		}
		if rows != got.Len() || got.Len() != got.ArenaRows() {
			t.Fatalf("decoded frame not dense: %d drive rows, Len %d, arena %d",
				rows, got.Len(), got.ArenaRows())
		}
	})
}
