package dataset

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bsod"
	"repro/internal/firmware"
	"repro/internal/winevent"
)

func validRecord() Record {
	r := Record{
		SerialNumber: "V-001",
		Vendor:       "I",
		Model:        "M",
		Day:          3,
		Firmware:     firmware.Version("1.0.0"),
		WCounts:      make(winevent.Counts, winevent.Count()),
		BCounts:      make(bsod.Counts, bsod.Count()),
	}
	for i := range r.Smart {
		r.Smart[i] = float64(i + 1)
	}
	return r
}

// TestValidateRejectsCorruptValues is the table for the value-level
// hardening: non-finite telemetry and negative event counters must be
// rejected with their typed sentinels, on top of the existing shape
// checks.
func TestValidateRejectsCorruptValues(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Record)
		wantErr error // nil = any error acceptable, sentinel otherwise
		ok      bool
	}{
		{name: "valid", mutate: func(r *Record) {}, ok: true},
		{name: "zero counters valid", mutate: func(r *Record) {
			for i := range r.Smart {
				r.Smart[i] = 0
			}
		}, ok: true},
		{name: "nan smart", mutate: func(r *Record) { r.Smart[4] = math.NaN() }, wantErr: ErrNonFinite},
		{name: "+inf smart", mutate: func(r *Record) { r.Smart[0] = math.Inf(1) }, wantErr: ErrNonFinite},
		{name: "-inf smart", mutate: func(r *Record) { r.Smart[15] = math.Inf(-1) }, wantErr: ErrNonFinite},
		{name: "nan w count", mutate: func(r *Record) { r.WCounts[2] = math.NaN() }, wantErr: ErrNonFinite},
		{name: "inf b count", mutate: func(r *Record) { r.BCounts[1] = math.Inf(1) }, wantErr: ErrNonFinite},
		{name: "negative w count", mutate: func(r *Record) { r.WCounts[0] = -1 }, wantErr: ErrNegativeCounter},
		{name: "negative b count", mutate: func(r *Record) { r.BCounts[2] = -42 }, wantErr: ErrNegativeCounter},
		{name: "negative smart allowed", mutate: func(r *Record) { r.Smart[7] = -5 }, ok: true},
		{name: "empty serial", mutate: func(r *Record) { r.SerialNumber = "" }},
		{name: "negative day", mutate: func(r *Record) { r.Day = -1 }},
		{name: "short w counters", mutate: func(r *Record) { r.WCounts = r.WCounts[:2] }},
		{name: "short b counters", mutate: func(r *Record) { r.BCounts = r.BCounts[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validRecord()
			tc.mutate(&r)
			err := r.Validate()
			if tc.ok {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate() accepted a corrupt record")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want errors.Is %v", err, tc.wantErr)
			}
		})
	}
}

// TestFrameBuilderRejectsCorruptValues: the streaming ingest path must
// apply the same value screen, so corrupt telemetry cannot enter a
// frame through AppendRow either.
func TestFrameBuilderRejectsCorruptValues(t *testing.T) {
	appendRec := func(b *FrameBuilder, r Record) error {
		return b.AppendRow(r.SerialNumber, r.Vendor, r.Model, r.Day, r.Firmware,
			&r.Smart, r.WCounts, r.BCounts, false)
	}
	cases := []struct {
		name    string
		mutate  func(*Record)
		wantErr error
	}{
		{name: "nan smart", mutate: func(r *Record) { r.Smart[3] = math.NaN() }, wantErr: ErrNonFinite},
		{name: "inf w count", mutate: func(r *Record) { r.WCounts[1] = math.Inf(-1) }, wantErr: ErrNonFinite},
		{name: "negative b count", mutate: func(r *Record) { r.BCounts[0] = -7 }, wantErr: ErrNegativeCounter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewFrameBuilder()
			if err := appendRec(b, validRecord()); err != nil {
				t.Fatalf("valid row rejected: %v", err)
			}
			r := validRecord()
			r.Day++
			tc.mutate(&r)
			err := appendRec(b, r)
			if err == nil {
				t.Fatal("AppendRow accepted a corrupt row")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("AppendRow = %v, want errors.Is %v", err, tc.wantErr)
			}
			// The rejected row must not have entered the frame.
			if got := b.Len(); got != 1 {
				t.Fatalf("builder holds %d rows after rejection, want 1", got)
			}
		})
	}
}
