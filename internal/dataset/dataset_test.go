package dataset

import (
	"testing"

	"repro/internal/bsod"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// rec builds a minimal valid record for drive sn on day.
func rec(sn string, day int) Record {
	r := Record{
		SerialNumber: sn,
		Vendor:       "I",
		Model:        "M",
		Day:          day,
		Firmware:     "FW1",
		WCounts:      winevent.NewCounts(),
		BCounts:      bsod.NewCounts(),
	}
	r.Smart.Set(smartattr.PowerOnHours, float64(day*8))
	return r
}

func mustAppend(t *testing.T, d *Dataset, r Record) {
	t.Helper()
	if err := d.Append(r); err != nil {
		t.Fatal(err)
	}
}

func TestAppendKeepsDayOrder(t *testing.T) {
	d := New()
	for _, day := range []int{5, 1, 3, 2, 4} {
		mustAppend(t, d, rec("A", day))
	}
	s, ok := d.Series("A")
	if !ok {
		t.Fatal("series missing")
	}
	want := []int{1, 2, 3, 4, 5}
	got := s.Days()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Days = %v, want %v", got, want)
		}
	}
}

func TestAppendReplacesSameDay(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 3))
	r2 := rec("A", 3)
	r2.Smart.Set(smartattr.MediaErrors, 9)
	mustAppend(t, d, r2)
	s, _ := d.Series("A")
	if len(s.Records) != 1 {
		t.Fatalf("len = %d, want 1 after same-day replace", len(s.Records))
	}
	if got := s.Records[0].Smart.Get(smartattr.MediaErrors); got != 9 {
		t.Fatalf("replacement not applied: %g", got)
	}
}

func TestAppendRejectsIdentityChange(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 1))
	bad := rec("A", 2)
	bad.Vendor = "II"
	if err := d.Append(bad); err == nil {
		t.Fatal("vendor change should be rejected")
	}
}

func TestAppendValidates(t *testing.T) {
	d := New()
	bad := rec("", 1)
	if err := d.Append(bad); err == nil {
		t.Fatal("empty SN should be rejected")
	}
	bad2 := rec("A", -1)
	if err := d.Append(bad2); err == nil {
		t.Fatal("negative day should be rejected")
	}
	bad3 := rec("A", 1)
	bad3.WCounts = bad3.WCounts[:2]
	if err := d.Append(bad3); err == nil {
		t.Fatal("short W vector should be rejected")
	}
}

func TestSeriesQueries(t *testing.T) {
	d := New()
	for _, day := range []int{2, 5, 9} {
		mustAppend(t, d, rec("A", day))
	}
	s, _ := d.Series("A")

	if s.FirstDay() != 2 || s.LastDay() != 9 {
		t.Fatalf("FirstDay/LastDay = %d/%d", s.FirstDay(), s.LastDay())
	}
	if s.MaxGap() != 4 {
		t.Fatalf("MaxGap = %d, want 4", s.MaxGap())
	}
	if r, ok := s.At(5); !ok || r.Day != 5 {
		t.Fatal("At(5) failed")
	}
	if _, ok := s.At(4); ok {
		t.Fatal("At(4) should miss")
	}
	if r, ok := s.ClosestAtOrBefore(8); !ok || r.Day != 5 {
		t.Fatal("ClosestAtOrBefore(8) should be day 5")
	}
	if _, ok := s.ClosestAtOrBefore(1); ok {
		t.Fatal("ClosestAtOrBefore(1) should miss")
	}
	if r, ok := s.Closest(6); !ok || r.Day != 5 {
		t.Fatalf("Closest(6) = %v", r.Day)
	}
	if r, ok := s.Closest(8); !ok || r.Day != 9 {
		t.Fatalf("Closest(8) = %v", r.Day)
	}
	if r, ok := s.Closest(0); !ok || r.Day != 2 {
		t.Fatalf("Closest(0) = %v", r.Day)
	}
	if r, ok := s.Closest(100); !ok || r.Day != 9 {
		t.Fatalf("Closest(100) = %v", r.Day)
	}

	w := s.Window(3, 9)
	if len(w) != 2 || w[0].Day != 5 || w[1].Day != 9 {
		t.Fatalf("Window(3,9) = %v", len(w))
	}
	if got := s.Window(10, 20); len(got) != 0 {
		t.Fatalf("empty window returned %d", len(got))
	}
}

func TestClosestEmptySeries(t *testing.T) {
	s := &DriveSeries{}
	if _, ok := s.Closest(1); ok {
		t.Fatal("Closest on empty series should miss")
	}
	if s.FirstDay() != -1 || s.LastDay() != -1 {
		t.Fatal("empty series day bounds should be -1")
	}
}

func TestDatasetAccounting(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 1))
	mustAppend(t, d, rec("A", 2))
	mustAppend(t, d, rec("B", 1))
	if d.Drives() != 2 || d.Len() != 3 {
		t.Fatalf("Drives/Len = %d/%d", d.Drives(), d.Len())
	}
	if got := d.SerialNumbers(); len(got) != 2 || got[0] != "A" {
		t.Fatalf("SerialNumbers = %v", got)
	}
	min, max, ok := d.DayRange()
	if !ok || min != 1 || max != 2 {
		t.Fatalf("DayRange = %d..%d, %v", min, max, ok)
	}
	if !d.Remove("A") {
		t.Fatal("Remove(A) failed")
	}
	if d.Remove("A") {
		t.Fatal("second Remove(A) should fail")
	}
	if d.Drives() != 1 {
		t.Fatal("drive count after remove")
	}
}

func TestDayRangeEmpty(t *testing.T) {
	if _, _, ok := New().DayRange(); ok {
		t.Fatal("empty dataset should have no day range")
	}
}

func TestFilterShares(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 1))
	b := rec("B", 1)
	b.Vendor = "II"
	mustAppend(t, d, b)
	only := d.Filter(func(s *DriveSeries) bool { return s.Vendor == "I" })
	if only.Drives() != 1 {
		t.Fatalf("filtered drives = %d", only.Drives())
	}
	if _, ok := only.Series("B"); ok {
		t.Fatal("vendor II drive leaked through filter")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 1))
	c := d.Clone()
	s, _ := c.Series("A")
	s.Records[0].WCounts[0] = 99
	orig, _ := d.Series("A")
	if orig.Records[0].WCounts[0] == 99 {
		t.Fatal("Clone shares count vectors with the original")
	}
}

func TestVendors(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 1))
	b := rec("B", 1)
	b.Vendor = "II"
	mustAppend(t, d, b)
	got := d.Vendors()
	if len(got) != 2 || got[0] != "I" || got[1] != "II" {
		t.Fatalf("Vendors = %v", got)
	}
}

func TestEachOrder(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("B", 1))
	mustAppend(t, d, rec("A", 1))
	var order []string
	d.Each(func(s *DriveSeries) { order = append(order, s.SerialNumber) })
	if len(order) != 2 || order[0] != "B" || order[1] != "A" {
		t.Fatalf("Each order = %v, want insertion order", order)
	}
}

func TestUntil(t *testing.T) {
	d := New()
	mustAppend(t, d, rec("A", 1))
	mustAppend(t, d, rec("A", 5))
	mustAppend(t, d, rec("A", 9))
	mustAppend(t, d, rec("B", 7))
	cut := d.Until(5)
	if cut.Drives() != 1 {
		t.Fatalf("drives = %d, want 1 (B starts after the cut)", cut.Drives())
	}
	s, _ := cut.Series("A")
	if len(s.Records) != 2 || s.LastDay() != 5 {
		t.Fatalf("A after cut: %d records, last %d", len(s.Records), s.LastDay())
	}
	// The original is untouched.
	orig, _ := d.Series("A")
	if len(orig.Records) != 3 {
		t.Fatal("Until mutated the source")
	}
}
