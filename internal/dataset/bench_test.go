package dataset

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

func benchDataset(b *testing.B, drives, days int) *Dataset {
	b.Helper()
	d := New()
	for dr := 0; dr < drives; dr++ {
		sn := fmt.Sprintf("D%04d", dr)
		for day := 0; day < days; day += 1 + (dr+day)%3 {
			r := rec(sn, day)
			r.WCounts[0] = float64(day % 2)
			if err := d.Append(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	return d
}

func BenchmarkCleanDiscontinuity(b *testing.B) {
	d := benchDataset(b, 200, 120)
	policy := DefaultGapPolicy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CleanDiscontinuity(d, policy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCleanDiscontinuityWorkers compares the serial per-drive
// cleaning loop against the full fan-out.
func BenchmarkCleanDiscontinuityWorkers(b *testing.B) {
	d := benchDataset(b, 200, 120)
	policy := DefaultGapPolicy()
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := CleanDiscontinuityWorkers(d, policy, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCumulate(b *testing.B) {
	d := benchDataset(b, 200, 120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := d.Clone()
		if err := Cumulate(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryWrite compares the container encoders on the same
// frame; BenchmarkTelemetryRead compares the decoders on each
// format's own bytes.
func BenchmarkTelemetryWrite(b *testing.B) {
	f, err := FrameFromDataset(benchDataset(b, 200, 120))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteCSVFrame(io.Discard, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, bc := range []struct {
		name    string
		workers int
	}{{"mfpac/workers=1", 1}, {"mfpac/workers=gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := WriteMFPACWorkers(io.Discard, f, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTelemetryRead(b *testing.B) {
	f, err := FrameFromDataset(benchDataset(b, 200, 120))
	if err != nil {
		b.Fatal(err)
	}
	var csvBuf, pacBuf bytes.Buffer
	if err := WriteCSVFrame(&csvBuf, f); err != nil {
		b.Fatal(err)
	}
	if err := WriteMFPAC(&pacBuf, f); err != nil {
		b.Fatal(err)
	}
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadCSVFrame(bytes.NewReader(csvBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, bc := range []struct {
		name    string
		workers int
	}{{"mfpac/workers=1", 1}, {"mfpac/workers=gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ReadMFPACWorkers(bytes.NewReader(pacBuf.Bytes()), bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
