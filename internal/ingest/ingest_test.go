package ingest

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bsod"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

const sampleCSV = `Level,Date and Time,Source,Event ID,Task Category
Error,3/4/2021 10:23:11 AM,disk,51,None
Warning,3/4/2021 11:02:00 AM,disk,51,None
Error,3/5/2021 9:00:00 AM,Disk,11,None
Error,3/5/2021 9:30:00 AM,volmgr,49,None
Critical,3/5/2021 9:45:12 AM,BugCheck,1001,None,"The computer has rebooted from a bugcheck. The bugcheck was: 0x00000050 (0x0000000a, 0x00, 0x00, 0x00)."
Error,3/6/2021 8:00:00 AM,chkdsk,9999,None
Error,3/6/2021 8:30:00 AM,Cdrom,51,None
garbage line that is not really an event,x,y,z
`

func TestParseEventCSV(t *testing.T) {
	events, skipped, err := ParseEventCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	// 7 parsed (9999 and the Cdrom event parse fine; catalogue and
	// source filtering happen later), 1 skipped (garbage timestamp).
	if len(events) != 7 {
		t.Fatalf("events = %d, want 7", len(events))
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if events[0].ID != 51 || events[0].Source != "disk" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	bug := events[4]
	if bug.ID != 1001 || bug.StopCode != bsod.PageFaultInNonpagedArea {
		t.Fatalf("bugcheck = %+v", bug)
	}
}

func TestParseStopCode(t *testing.T) {
	cases := map[string]bsod.Code{
		"The bugcheck was: 0x00000050 (0x...)": bsod.PageFaultInNonpagedArea,
		"The bugcheck was: 0x0000007a (...)":   bsod.KernelDataInpageError,
		"no code here":                         0,
		"0x":                                   0,
	}
	for msg, want := range cases {
		if got := parseStopCode(msg); got != want {
			t.Errorf("parseStopCode(%q) = %#x, want %#x", msg, int(got), int(want))
		}
	}
}

func mustCollector(t *testing.T) *Collector {
	t.Helper()
	epoch := time.Date(2021, 3, 4, 0, 0, 0, 0, time.UTC)
	c, err := NewCollector(epoch, "SN123", "I", "I-B256", "IFW1300")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCollectorEndToEnd(t *testing.T) {
	c := mustCollector(t)
	events, _, err := ParseEventCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, ev := range events {
		if c.AddEvent(ev) {
			accepted++
		}
	}
	// Accepted: 2× W_51 (day 0), W_11 + W_49 + bugcheck (day 1).
	// Rejected: event 9999 (uncatalogued) and the CD-ROM event 51
	// (non-storage provider).
	if accepted != 5 {
		t.Fatalf("accepted = %d, want 5", accepted)
	}

	// Day-1 snapshot from a synthetic health log.
	var v smartattr.Values
	v.Set(smartattr.AvailableSpare, 97)
	v.Set(smartattr.CompositeTemperature, 310)
	v.Set(smartattr.PowerOnHours, 1234)
	page := smartattr.MarshalHealthLog(&v)
	rec, err := c.Snapshot(time.Date(2021, 3, 5, 20, 0, 0, 0, time.UTC), page, 256)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Day != 1 {
		t.Fatalf("day = %d, want 1", rec.Day)
	}
	if rec.SerialNumber != "SN123" || rec.Vendor != "I" || rec.Firmware != "IFW1300" {
		t.Fatalf("identity lost: %+v", rec)
	}
	if got := rec.WCounts.Get(winevent.ControllerError); got != 1 {
		t.Errorf("W_11 = %g, want 1", got)
	}
	if got := rec.WCounts.Get(winevent.CrashDumpPageFile); got != 1 {
		t.Errorf("W_49 = %g, want 1", got)
	}
	if got := rec.BCounts.Get(bsod.PageFaultInNonpagedArea); got != 1 {
		t.Errorf("B_50 = %g, want 1", got)
	}
	if got := rec.Smart.Get(smartattr.PowerOnHours); got != 1234 {
		t.Errorf("PowerOnHours = %g", got)
	}
	if got := rec.CapacityGB(); got != 256 {
		t.Errorf("capacity = %g", got)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}

	// Day 0's counts stayed separate.
	rec0, err := c.Snapshot(time.Date(2021, 3, 4, 23, 0, 0, 0, time.UTC), page, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec0.WCounts.Get(winevent.PagingError); got != 2 {
		t.Errorf("day-0 W_51 = %g, want 2", got)
	}
}

func TestCollectorRejectsPreEpoch(t *testing.T) {
	c := mustCollector(t)
	old := Event{Time: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), ID: 51}
	if c.AddEvent(old) {
		t.Fatal("pre-epoch event accepted")
	}
	var v smartattr.Values
	page := smartattr.MarshalHealthLog(&v)
	if _, err := c.Snapshot(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), page, 1); err == nil {
		t.Fatal("pre-epoch snapshot accepted")
	}
}

func TestNewCollectorValidates(t *testing.T) {
	if _, err := NewCollector(time.Now(), "", "I", "M", "FW"); err == nil {
		t.Fatal("empty serial accepted")
	}
}

func TestCollectorRejectsBadHealthLog(t *testing.T) {
	c := mustCollector(t)
	if _, err := c.Snapshot(c.Epoch.Add(24*time.Hour), []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("short health log accepted")
	}
}
