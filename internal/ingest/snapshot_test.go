package ingest

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/smartattr"
)

// collectFrame builds a small multi-day frame through the streaming
// collector path, the same way the agent accumulates a checkpoint.
func collectFrame(t *testing.T) *dataset.Frame {
	t.Helper()
	c := mustCollector(t)
	events, _, err := ParseEventCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		c.AddEvent(ev)
	}
	b := dataset.NewFrameBuilder()
	for day := 0; day < 5; day++ {
		var v smartattr.Values
		v.Set(smartattr.AvailableSpare, 97)
		v.Set(smartattr.PowerOnHours, float64(1000+day*13))
		v.Set(smartattr.MediaErrors, float64(day)/3)
		page := smartattr.MarshalHealthLog(&v)
		ts := c.Epoch.Add(time.Duration(day)*24*time.Hour + 20*time.Hour)
		if err := c.SnapshotInto(b, ts, page, 256); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// TestSnapshotRoundTrip pins Save/LoadSnapshot for both on-disk
// formats: the path extension picks the encoding, the loader detects
// it from the leading bytes, and every record survives exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	want := collectFrame(t)
	dir := t.TempDir()
	for _, name := range []string{"checkpoint.mfpac", "checkpoint.csv"} {
		path := filepath.Join(dir, name)
		if err := SaveSnapshot(path, want); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadSnapshot(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		wantD, gotD := want.ToDataset(), got.ToDataset()
		sns := wantD.SerialNumbers()
		if len(sns) == 0 {
			t.Fatalf("%s: collector produced no drives", name)
		}
		if !reflect.DeepEqual(sns, gotD.SerialNumbers()) {
			t.Fatalf("%s: drive sets differ after round trip", name)
		}
		for _, sn := range sns {
			ws, _ := wantD.Series(sn)
			gs, _ := gotD.Series(sn)
			if !reflect.DeepEqual(ws, gs) {
				t.Fatalf("%s: drive %s telemetry differs after round trip", name, sn)
			}
		}
	}
}
