package ingest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/atomicio"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/smartattr"
)

// collectFrame builds a small multi-day frame through the streaming
// collector path, the same way the agent accumulates a checkpoint.
func collectFrame(t *testing.T) *dataset.Frame {
	t.Helper()
	c := mustCollector(t)
	events, _, err := ParseEventCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		c.AddEvent(ev)
	}
	b := dataset.NewFrameBuilder()
	for day := 0; day < 5; day++ {
		var v smartattr.Values
		v.Set(smartattr.AvailableSpare, 97)
		v.Set(smartattr.PowerOnHours, float64(1000+day*13))
		v.Set(smartattr.MediaErrors, float64(day)/3)
		page := smartattr.MarshalHealthLog(&v)
		ts := c.Epoch.Add(time.Duration(day)*24*time.Hour + 20*time.Hour)
		if err := c.SnapshotInto(b, ts, page, 256); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// TestSnapshotRoundTrip pins Save/LoadSnapshot for both on-disk
// formats: the path extension picks the encoding, the loader detects
// it from the leading bytes, and every record survives exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	want := collectFrame(t)
	dir := t.TempDir()
	for _, name := range []string{"checkpoint.mfpac", "checkpoint.csv"} {
		path := filepath.Join(dir, name)
		if err := SaveSnapshot(path, want); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadSnapshot(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		wantD, gotD := want.ToDataset(), got.ToDataset()
		sns := wantD.SerialNumbers()
		if len(sns) == 0 {
			t.Fatalf("%s: collector produced no drives", name)
		}
		if !reflect.DeepEqual(sns, gotD.SerialNumbers()) {
			t.Fatalf("%s: drive sets differ after round trip", name)
		}
		for _, sn := range sns {
			ws, _ := wantD.Series(sn)
			gs, _ := gotD.Series(sn)
			if !reflect.DeepEqual(ws, gs) {
				t.Fatalf("%s: drive %s telemetry differs after round trip", name, sn)
			}
		}
	}
}

// bigFrame builds a checkpoint comfortably larger than the injector's
// short-write/truncation window (≤ 4 KiB), so every fault fires
// mid-payload.
func bigFrame(t *testing.T) *dataset.Frame {
	t.Helper()
	b := dataset.NewFrameBuilder()
	for d := 0; d < 40; d++ {
		sn := "T-" + strings.Repeat("0", 2) + string(rune('A'+d%26)) + string(rune('A'+d/26))
		for day := 0; day < 30; day++ {
			var v smartattr.Values
			v.Set(smartattr.PowerOnHours, float64(1000+day*13+d))
			v.Set(smartattr.MediaErrors, float64((day*7+d*3)%11))
			v.Set(smartattr.AvailableSpare, float64(100-day%5))
			if err := b.AppendRow(sn, "I", "M", day, "1.0.0", &v, nil, nil, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Finish()
}

// TestSnapshotKillMidWrite: a checkpoint write that dies partway —
// power loss mid-save, the normal consumer failure mode — must leave
// the previous checkpoint loadable and byte-for-byte intact.
func TestSnapshotKillMidWrite(t *testing.T) {
	frame := bigFrame(t)
	for _, name := range []string{"checkpoint.mfpac", "checkpoint.csv"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SaveSnapshot(path, frame); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		wantBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Kill every subsequent write partway with the seeded I/O
		// injector; whatever the cut-off point, the published file must
		// stay the good version.
		io := faultinject.NewIOFaults(faultinject.IOConfig{Seed: 7, ShortWriteP: 1})
		restore := atomicio.SetHooks(io.Hooks())
		for i := 0; i < 5; i++ {
			if err := SaveSnapshot(path, frame); err == nil {
				restore()
				t.Fatalf("%s: short write %d not surfaced", name, i)
			}
		}
		restore()
		if io.ShortWrites != 5 {
			t.Fatalf("%s: injector fired %d short writes, want 5", name, io.ShortWrites)
		}
		gotBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotBytes, wantBytes) {
			t.Fatalf("%s: checkpoint corrupted by killed writes", name)
		}
		if _, err := LoadSnapshot(path); err != nil {
			t.Fatalf("%s: surviving checkpoint unloadable: %v", name, err)
		}
	}
}

// TestSnapshotTornReadRecovers: a truncated read of a checkpoint must
// surface as an error, not a short silently-accepted frame.
func TestSnapshotTornReadRecovers(t *testing.T) {
	frame := bigFrame(t)
	for _, name := range []string{"checkpoint.mfpac", "checkpoint.csv"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SaveSnapshot(path, frame); err != nil {
			t.Fatal(err)
		}
		io := faultinject.NewIOFaults(faultinject.IOConfig{Seed: 11, TruncateReadP: 1})
		restore := atomicio.SetHooks(io.Hooks())
		_, err := LoadSnapshot(path)
		restore()
		if io.TruncatedReads != 1 {
			t.Fatalf("%s: injector truncated %d reads, want 1", name, io.TruncatedReads)
		}
		if err == nil {
			t.Fatalf("%s: torn read accepted", name)
		}
		// The file itself is fine: a retry without the fault succeeds.
		if _, err := LoadSnapshot(path); err != nil {
			t.Fatalf("%s: recovery load failed: %v", name, err)
		}
	}
}
