// Package ingest is the collection-agent data path: it turns the raw
// artefacts available on a consumer Windows machine — Event Viewer CSV
// exports (including BugCheck 1001 records that carry blue-screen stop
// codes) and NVMe SMART/Health log pages — into the telemetry records
// the MFPA pipeline and the client agent consume.
package ingest

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// Event is one parsed Windows event.
type Event struct {
	// Time is the event timestamp.
	Time time.Time
	// Source is the provider name (e.g. "disk", "BugCheck").
	Source string
	// ID is the Windows event identifier.
	ID int
	// StopCode is the blue-screen bug-check code carried by
	// BugCheck/1001 events; 0 otherwise.
	StopCode bsod.Code
}

// bugCheckEventID is the Windows event id of "the computer has
// rebooted from a bugcheck".
const bugCheckEventID = 1001

// timeLayouts are the timestamp formats Event Viewer CSV exports use.
var timeLayouts = []string{
	"1/2/2006 3:04:05 PM",
	"2006-01-02 15:04:05",
	time.RFC3339,
}

// ParseEventCSV reads an Event Viewer CSV export: the columns are
// Level, Date and Time, Source, Event ID, Task Category, and optionally
// Message. Unparseable rows are skipped and counted; a malformed CSV
// stream is an error.
func ParseEventCSV(r io.Reader) (events []Event, skipped int, err error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1 // message column is optional
	first := true
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(row[0]), "level") {
				continue // header row
			}
		}
		ev, ok := parseEventRow(row)
		if !ok {
			skipped++
			continue
		}
		events = append(events, ev)
	}
	return events, skipped, nil
}

func parseEventRow(row []string) (Event, bool) {
	if len(row) < 4 {
		return Event{}, false
	}
	var ts time.Time
	var err error
	for _, layout := range timeLayouts {
		ts, err = time.Parse(layout, strings.TrimSpace(row[1]))
		if err == nil {
			break
		}
	}
	if err != nil {
		return Event{}, false
	}
	id, err := strconv.Atoi(strings.TrimSpace(row[3]))
	if err != nil {
		return Event{}, false
	}
	ev := Event{Time: ts, Source: strings.TrimSpace(row[2]), ID: id}
	if ev.ID == bugCheckEventID && len(row) >= 6 {
		ev.StopCode = parseStopCode(row[5])
	}
	return ev, true
}

// parseStopCode extracts the bug-check code from a BugCheck 1001
// message: "The computer has rebooted from a bugcheck. The bugcheck
// was: 0x00000050 (0x..., ...)".
func parseStopCode(message string) bsod.Code {
	idx := strings.Index(message, "0x")
	if idx < 0 {
		return 0
	}
	hex := message[idx+2:]
	end := 0
	for end < len(hex) && isHexDigit(hex[end]) {
		end++
	}
	if end == 0 {
		return 0
	}
	v, err := strconv.ParseUint(hex[:end], 16, 32)
	if err != nil {
		return 0
	}
	return bsod.Code(v)
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// Collector accumulates a machine's daily event counts and assembles
// telemetry records when a SMART snapshot arrives.
type Collector struct {
	// Epoch anchors day indexes: day 0 is the calendar day of Epoch.
	Epoch time.Time
	// Drive identity stamped onto produced records.
	SerialNumber string
	Vendor       string
	Model        string
	Firmware     firmware.Version

	wByDay map[int]winevent.Counts
	bByDay map[int]bsod.Counts
}

// NewCollector builds a collector for one drive.
func NewCollector(epoch time.Time, sn, vendor, model string, fw firmware.Version) (*Collector, error) {
	if sn == "" {
		return nil, fmt.Errorf("ingest: empty serial number")
	}
	return &Collector{
		Epoch:        epoch,
		SerialNumber: sn,
		Vendor:       vendor,
		Model:        model,
		Firmware:     fw,
		wByDay:       make(map[int]winevent.Counts),
		bByDay:       make(map[int]bsod.Counts),
	}, nil
}

// dayIndex converts a timestamp to the collector's day axis.
func (c *Collector) dayIndex(ts time.Time) int {
	return int(ts.Sub(c.Epoch.Truncate(24*time.Hour)) / (24 * time.Hour))
}

// storageSources are the Windows providers whose events concern the
// storage stack; the same numeric event ID from another provider (e.g.
// event 51 from the CD-ROM class driver) must not be counted against
// the SSD.
var storageSources = map[string]bool{
	"disk":     true,
	"ntfs":     true,
	"volmgr":   true,
	"stornvme": true,
	"storahci": true,
	"partmgr":  true,
	"volsnap":  true,
	// The paper's W_161 comes from a database engine's file-system
	// error; accept the information-store provider it names.
	"msexchangeis": true,
}

// storageSource reports whether the provider belongs to the storage
// stack (case-insensitive).
func storageSource(source string) bool {
	return storageSources[strings.ToLower(strings.TrimSpace(source))]
}

// AddEvent records one Windows event. Events with uncatalogued IDs,
// events from non-storage providers, and pre-epoch events are ignored
// (reported false).
func (c *Collector) AddEvent(ev Event) bool {
	day := c.dayIndex(ev.Time)
	if day < 0 {
		return false
	}
	if ev.ID == bugCheckEventID {
		if !ev.StopCode.Valid() {
			return false
		}
		counts, ok := c.bByDay[day]
		if !ok {
			counts = bsod.NewCounts()
			c.bByDay[day] = counts
		}
		counts.Add(ev.StopCode, 1)
		return true
	}
	if !storageSource(ev.Source) {
		return false
	}
	id := winevent.ID(ev.ID)
	if !id.Valid() {
		return false
	}
	counts, ok := c.wByDay[day]
	if !ok {
		counts = winevent.NewCounts()
		c.wByDay[day] = counts
	}
	counts.Add(id, 1)
	return true
}

// Snapshot assembles the day's telemetry record from an NVMe health log
// page plus the day's accumulated event counts.
func (c *Collector) Snapshot(ts time.Time, healthLog []byte, capacityGB float64) (dataset.Record, error) {
	values, err := smartattr.ParseHealthLog(healthLog, capacityGB)
	if err != nil {
		return dataset.Record{}, err
	}
	day := c.dayIndex(ts)
	if day < 0 {
		return dataset.Record{}, fmt.Errorf("ingest: snapshot predates epoch")
	}
	rec := dataset.Record{
		SerialNumber: c.SerialNumber,
		Vendor:       c.Vendor,
		Model:        c.Model,
		Day:          day,
		Smart:        values,
		Firmware:     c.Firmware,
		WCounts:      winevent.NewCounts(),
		BCounts:      bsod.NewCounts(),
	}
	if w, ok := c.wByDay[day]; ok {
		copy(rec.WCounts, w)
	}
	if b, ok := c.bByDay[day]; ok {
		copy(rec.BCounts, b)
	}
	return rec, nil
}

// SnapshotInto is Snapshot appending straight to a streaming frame
// builder: the day's observation lands in the columnar arena without a
// Record or fresh count vectors. The builder row is identical to what
// Snapshot plus FrameBuilder.Append would produce.
func (c *Collector) SnapshotInto(b *dataset.FrameBuilder, ts time.Time, healthLog []byte, capacityGB float64) error {
	values, err := smartattr.ParseHealthLog(healthLog, capacityGB)
	if err != nil {
		return err
	}
	day := c.dayIndex(ts)
	if day < 0 {
		return fmt.Errorf("ingest: snapshot predates epoch")
	}
	// Absent maps hand the builder nil counts, which it zero-fills.
	return b.AppendRow(c.SerialNumber, c.Vendor, c.Model, day, c.Firmware,
		&values, c.wByDay[day], c.bByDay[day], false)
}
