package ingest

// Snapshot persistence: the collection agent accumulates telemetry in
// a streaming frame builder (SnapshotInto) and periodically checkpoints
// it to disk for upload. Checkpoints use the MFPAC binary columnar
// container when the path says so — at fleet-upload scale the container
// is both smaller and loads block-parallel on the training side — and
// the CSV compat format otherwise; loading sniffs the leading bytes, so
// either kind of file round-trips through the same call.

import (
	"io"

	"repro/internal/atomicio"
	"repro/internal/dataset"
)

// SaveSnapshot writes frame telemetry to path: the MFPAC container
// when the extension is .mfpac (case-insensitive), CSV otherwise. The
// write is atomic — staged in a same-directory temp file, fsynced, and
// renamed into place — so a crash mid-checkpoint leaves the previous
// snapshot intact instead of a torn file.
func SaveSnapshot(path string, f *dataset.Frame) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return dataset.WriteTelemetry(w, f, dataset.FormatForPath(path))
	})
}

// LoadSnapshot reads a telemetry checkpoint of either format, detected
// by its leading bytes.
func LoadSnapshot(path string) (*dataset.Frame, error) {
	in, err := atomicio.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return dataset.ReadTelemetry(in)
}
