package ingest

import (
	"strings"
	"testing"
)

// FuzzParseEventCSV asserts the parser never panics and that whatever
// it accepts has a sane shape, regardless of input bytes.
func FuzzParseEventCSV(f *testing.F) {
	f.Add(sampleCSV)
	f.Add("")
	f.Add("Level,Date and Time,Source,Event ID,Task Category\n")
	f.Add("Error,3/4/2021 10:23:11 AM,disk,51,None\n")
	f.Add(`Critical,3/5/2021 9:45:12 AM,BugCheck,1001,None,"bugcheck was: 0xDEAD"` + "\n")
	f.Add("a,b\nc\n\"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		events, skipped, err := ParseEventCSV(strings.NewReader(input))
		if err != nil {
			return // malformed CSV is a legal outcome
		}
		if skipped < 0 {
			t.Fatal("negative skip count")
		}
		for _, ev := range events {
			if ev.Time.IsZero() {
				t.Fatal("accepted event with zero time")
			}
		}
	})
}

// FuzzParseStopCode asserts total behaviour of the bug-check extractor.
func FuzzParseStopCode(f *testing.F) {
	f.Add("The bugcheck was: 0x00000050 (0x...)")
	f.Add("0x")
	f.Add("0xZZZ")
	f.Add(strings.Repeat("0xffffffffffffffffffffffff", 3))
	f.Fuzz(func(t *testing.T, msg string) {
		_ = parseStopCode(msg) // must not panic
	})
}
