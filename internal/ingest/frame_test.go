package ingest

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/smartattr"
)

// TestSnapshotIntoMatchesSnapshot pins the streaming collector path:
// SnapshotInto must land in the frame exactly what Snapshot plus
// FrameBuilder.Append would — across days with and without events.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	want := mustCollector(t)
	got := mustCollector(t)
	events, _, err := ParseEventCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		want.AddEvent(ev)
		got.AddEvent(ev)
	}
	wantB := dataset.NewFrameBuilder()
	gotB := dataset.NewFrameBuilder()
	for day := 0; day < 4; day++ {
		var v smartattr.Values
		v.Set(smartattr.AvailableSpare, 97)
		v.Set(smartattr.PowerOnHours, float64(1000+day*13))
		page := smartattr.MarshalHealthLog(&v)
		ts := want.Epoch.Add(time.Duration(day)*24*time.Hour + 20*time.Hour)
		rec, err := want.Snapshot(ts, page, 256)
		if err != nil {
			t.Fatal(err)
		}
		if err := wantB.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := got.SnapshotInto(gotB, ts, page, 256); err != nil {
			t.Fatal(err)
		}
	}
	wantD := wantB.Finish().ToDataset()
	gotD := gotB.Finish().ToDataset()
	if !reflect.DeepEqual(wantD.SerialNumbers(), gotD.SerialNumbers()) {
		t.Fatal("drive sets differ")
	}
	for _, sn := range wantD.SerialNumbers() {
		ws, _ := wantD.Series(sn)
		gs, _ := gotD.Series(sn)
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("drive %s telemetry differs", sn)
		}
	}
}

func TestSnapshotIntoRejectsPreEpoch(t *testing.T) {
	c := mustCollector(t)
	b := dataset.NewFrameBuilder()
	var v smartattr.Values
	page := smartattr.MarshalHealthLog(&v)
	if err := c.SnapshotInto(b, c.Epoch.Add(-48*time.Hour), page, 1); err == nil {
		t.Fatal("pre-epoch snapshot accepted")
	}
}

func TestSnapshotIntoRejectsBadHealthLog(t *testing.T) {
	c := mustCollector(t)
	b := dataset.NewFrameBuilder()
	if err := c.SnapshotInto(b, c.Epoch.Add(24*time.Hour), []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("short health log accepted")
	}
}
