package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/simfleet"
)

// testFleet simulates one small fleet per test binary run.
var testFleetCache *simfleet.Result

func testFleet(t *testing.T) *simfleet.Result {
	t.Helper()
	if testFleetCache == nil {
		cfg := simfleet.TinyConfig()
		cfg.FailureScale = 0.05
		res, err := simfleet.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testFleetCache = res
	}
	return testFleetCache
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Group: features.GroupS}
	d := cfg.withDefaults()
	if d.Algorithm != AlgoRF || d.Theta != 7 || d.PositiveWindowDays != 7 ||
		d.NegativeRatio != 3 || d.TrainFrac != 0.6 || d.SeqLen != 5 || d.CVFolds != 3 {
		t.Fatalf("defaults = %+v", d)
	}
	if d.GapPolicy != dataset.DefaultGapPolicy() {
		t.Fatal("gap policy default wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig("I")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{}, // empty group
		{Group: features.GroupS, TrainFrac: 1.5},
		{Group: features.GroupS, NegativeRatio: -1},
		{Group: features.GroupS, PositiveWindowDays: -3},
		{Group: features.GroupS, Theta: -1},
		{Group: features.GroupS, Algorithm: "nope"},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAlgorithms(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 5 {
		t.Fatalf("algorithms = %v", algos)
	}
	if !AlgoCNNLSTM.Sequential() || AlgoRF.Sequential() {
		t.Fatal("Sequential misclassifies")
	}
	for _, a := range algos {
		tr, err := a.newTrainer(1, 45, 5, 0, 0)
		if err != nil {
			t.Errorf("%s: %v", a, err)
			continue
		}
		if tr.Name() == "" {
			t.Errorf("%s trainer has empty name", a)
		}
	}
	if _, err := Algorithm("bogus").newTrainer(1, 4, 2, 0, 0); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestPrepare(t *testing.T) {
	fleet := testFleet(t)
	p, err := Prepare(fleet.Data, fleet.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Data.Drives() == 0 {
		t.Fatal("no drives after preparation")
	}
	for _, sn := range p.Data.SerialNumbers() {
		s, _ := p.Data.Series(sn)
		if s.Vendor != "I" {
			t.Fatalf("vendor filter leaked %s", s.Vendor)
		}
	}
	if p.LabelStats.Labelled == 0 {
		t.Fatal("no failures labelled")
	}
	if p.Extractor.Width() != 45 {
		t.Fatalf("SFWB width = %d, want 45", p.Extractor.Width())
	}
	// Cleaning must have dropped or filled something in a consumer fleet.
	if p.CleanStats.DrivesDropped == 0 && p.CleanStats.RecordsFilled == 0 {
		t.Fatal("discontinuity optimisation was a no-op on CSS data")
	}
}

func TestPrepareUnknownVendor(t *testing.T) {
	fleet := testFleet(t)
	if _, err := Prepare(fleet.Data, fleet.Tickets, DefaultConfig("XX")); err == nil {
		t.Fatal("unknown vendor accepted")
	}
}

func TestTrainEndToEnd(t *testing.T) {
	fleet := testFleet(t)
	m, rep, err := TrainOnFleet(fleet.Data, fleet.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainerName != "RF" {
		t.Fatalf("trainer = %s", m.TrainerName)
	}
	if rep.TrainSamples == 0 || rep.TestSamples == 0 {
		t.Fatal("empty splits")
	}
	if m.Threshold <= 0 || m.Threshold >= 1 {
		t.Fatalf("calibrated threshold = %g", m.Threshold)
	}
	tpr := rep.Eval.TPR()
	if math.IsNaN(tpr) || tpr < 0.5 {
		t.Fatalf("TPR = %g; the model should beat a coin on simulated data", tpr)
	}
	if fpr := rep.Eval.FPR(); fpr > 0.2 {
		t.Fatalf("FPR = %g is implausibly high", fpr)
	}
	// Training never sees the future: every test sample is at or after
	// the train end day.
	samples, err := rep.Prepared.BuildSamples()
	if err != nil {
		t.Fatal(err)
	}
	_ = samples
}

func TestTrainFixedThreshold(t *testing.T) {
	fleet := testFleet(t)
	cfg := DefaultConfig("I")
	cfg.FixedThreshold = true
	m, _, err := TrainOnFleet(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Threshold != 0.5 {
		t.Fatalf("fixed threshold = %g, want 0.5", m.Threshold)
	}
}

func TestEvaluateSamplesDriveAggregation(t *testing.T) {
	clf := scoreFirst{}
	samples := []ml.Sample{
		// Drive "bad": 2 of 3 samples flagged → drive predicted faulty.
		{X: []float64{0.9}, Y: 1, SN: "bad", Day: 1},
		{X: []float64{0.8}, Y: 1, SN: "bad", Day: 2},
		{X: []float64{0.1}, Y: 1, SN: "bad", Day: 3},
		// Drive "good": 1 of 3 flagged → drive predicted healthy.
		{X: []float64{0.7}, Y: 0, SN: "good", Day: 1},
		{X: []float64{0.2}, Y: 0, SN: "good", Day: 2},
		{X: []float64{0.3}, Y: 0, SN: "good", Day: 3},
	}
	ev := EvaluateSamples(clf, samples)
	if ev.Confusion.TP != 2 || ev.Confusion.FN != 1 || ev.Confusion.FP != 1 || ev.Confusion.TN != 2 {
		t.Fatalf("sample confusion = %+v", ev.Confusion)
	}
	if ev.DriveConfusion.TP != 1 || ev.DriveConfusion.TN != 1 ||
		ev.DriveConfusion.FP != 0 || ev.DriveConfusion.FN != 0 {
		t.Fatalf("drive confusion = %+v", ev.DriveConfusion)
	}
	if ev.AUC < 0 || ev.AUC > 1 {
		t.Fatalf("AUC = %g", ev.AUC)
	}
}

func TestEvaluateRangeFilters(t *testing.T) {
	clf := scoreFirst{}
	samples := []ml.Sample{
		{X: []float64{0.9}, Y: 1, SN: "a", Day: 10},
		{X: []float64{0.9}, Y: 1, SN: "a", Day: 20},
		{X: []float64{0.1}, Y: 0, SN: "b", Day: 30},
	}
	m := &Model{Classifier: clf, Threshold: 0.5}
	ev := m.EvaluateRange(samples, 15, 25)
	if ev.Confusion.Total() != 1 || ev.Confusion.TP != 1 {
		t.Fatalf("range confusion = %+v", ev.Confusion)
	}
}

func TestWalkForwardWindows(t *testing.T) {
	clf := scoreFirst{}
	var samples []ml.Sample
	for day := 0; day < 100; day++ {
		samples = append(samples, ml.Sample{X: []float64{0.1}, Y: 0, SN: "h", Day: day})
	}
	m := &Model{Classifier: clf, Threshold: 0.5, TrainEndDay: 9}
	months := m.WalkForward(samples, 30, 3)
	if len(months) != 3 {
		t.Fatalf("months = %d", len(months))
	}
	if months[0].FromDay != 10 || months[0].ToDay != 39 {
		t.Fatalf("month 1 range = %d..%d", months[0].FromDay, months[0].ToDay)
	}
	if months[2].FromDay != 70 {
		t.Fatalf("month 3 from = %d", months[2].FromDay)
	}
	if months[0].Negative != 30 {
		t.Fatalf("month 1 negatives = %d", months[0].Negative)
	}
}

func TestYoudenNaNSafe(t *testing.T) {
	var ev Evaluation
	if got := ev.Youden(); got != 0 {
		t.Fatalf("empty Youden = %g", got)
	}
}

func TestAblationSwitches(t *testing.T) {
	fleet := testFleet(t)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.SkipClean = true },
		func(c *Config) { c.SkipCumulate = true },
		func(c *Config) { c.RandomSegmentation = true },
	} {
		cfg := DefaultConfig("I")
		mutate(&cfg)
		if _, _, err := TrainOnFleet(fleet.Data, fleet.Tickets, cfg); err != nil {
			t.Fatalf("ablation variant failed: %v", err)
		}
	}
}

// scoreFirst scores by the first feature.
type scoreFirst struct{}

func (scoreFirst) PredictProba(x []float64) float64 { return x[0] }

func TestEvaluateRangeEmptyWindow(t *testing.T) {
	m := &Model{Classifier: scoreFirst{}, Threshold: 0.5}
	ev := m.EvaluateRange(nil, 0, 10)
	if ev.Confusion.Total() != 0 {
		t.Fatalf("empty window produced %d cases", ev.Confusion.Total())
	}
}

func TestCalibrationFallsBackOnTinyTraining(t *testing.T) {
	// With too few samples for TS-CV folds, calibration fails softly
	// and the pipeline keeps the 0.5 default.
	var train []ml.Sample
	for i := 0; i < 4; i++ {
		train = append(train, ml.Sample{X: []float64{float64(i)}, Y: i % 2, Day: i, SN: "s"})
	}
	trainer, err := AlgoRF.newTrainer(1, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := calibrateThreshold(trainer, train, Config{CVFolds: 30, NegativeRatio: 3}); err == nil {
		t.Fatal("impossible fold count accepted")
	}
}

func TestWalkForwardSkipsEmptyMonths(t *testing.T) {
	m := &Model{Classifier: scoreFirst{}, Threshold: 0.5, TrainEndDay: 0}
	samples := []ml.Sample{{X: []float64{0.1}, Y: 0, SN: "a", Day: 95}}
	months := m.WalkForward(samples, 30, 4)
	if len(months) != 1 || months[0].Month != 4 {
		t.Fatalf("months = %+v", months)
	}
}

func TestDayWindowsMatchFilterOnUnsortedInput(t *testing.T) {
	// Windows are binary-searched subslices of one chronological view;
	// arrival order of the input must not change any evaluation.
	r := rand.New(rand.NewSource(9))
	var samples []ml.Sample
	for i := 0; i < 300; i++ {
		samples = append(samples, ml.Sample{
			X:   []float64{r.Float64()},
			Y:   r.Intn(2),
			SN:  fmt.Sprintf("d%02d", r.Intn(20)),
			Day: r.Intn(120),
		})
	}
	shuffled := append([]ml.Sample(nil), samples...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	m := &Model{Classifier: scoreFirst{}, Threshold: 0.5, TrainEndDay: 20}

	evA := m.EvaluateRange(samples, 30, 60)
	evB := m.EvaluateRange(shuffled, 30, 60)
	if evA != evB {
		t.Fatalf("EvaluateRange depends on input order:\n%+v\n%+v", evA, evB)
	}
	moA := m.WalkForward(samples, 30, 3)
	moB := m.WalkForward(shuffled, 30, 3)
	if len(moA) != len(moB) {
		t.Fatalf("month counts differ: %d vs %d", len(moA), len(moB))
	}
	for i := range moA {
		if moA[i] != moB[i] {
			t.Fatalf("month %d depends on input order:\n%+v\n%+v", i, moA[i], moB[i])
		}
	}
}

func TestWalkForwardDoesNotMutateInput(t *testing.T) {
	samples := []ml.Sample{
		{X: []float64{0.2}, SN: "a", Day: 50},
		{X: []float64{0.3}, SN: "b", Day: 10},
		{X: []float64{0.4}, SN: "c", Day: 30},
	}
	orig := append([]ml.Sample(nil), samples...)
	m := &Model{Classifier: scoreFirst{}, Threshold: 0.5, TrainEndDay: 0}
	m.WalkForward(samples, 30, 2)
	m.EvaluateRange(samples, 0, 100)
	for i := range samples {
		if samples[i].SN != orig[i].SN || samples[i].Day != orig[i].Day {
			t.Fatalf("input reordered at %d: %+v", i, samples[i])
		}
	}
}
