package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simfleet"
)

// testFrame converts the shared test fleet's telemetry to a frame.
func testFrame(t *testing.T) *dataset.Frame {
	t.Helper()
	f, err := dataset.FrameFromDataset(testFleet(t).Data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// requirePreparedEquivalent asserts a frame-path preparation matches a
// record-path one: same stats, labels, and (bit-exactly) the same
// cleaned/cumulated telemetry and sample set.
func requirePreparedEquivalent(t *testing.T, want, got *Prepared) {
	t.Helper()
	if want.CleanStats != got.CleanStats {
		t.Fatalf("clean stats %+v, want %+v", got.CleanStats, want.CleanStats)
	}
	if want.LabelStats != got.LabelStats {
		t.Fatalf("label stats %+v, want %+v", got.LabelStats, want.LabelStats)
	}
	if !reflect.DeepEqual(want.Labels, got.Labels) {
		t.Fatal("labels differ")
	}
	if want.RecordCount != got.RecordCount {
		t.Fatalf("record count %d, want %d", got.RecordCount, want.RecordCount)
	}
	wd, gd := want.Dataset(), got.Dataset()
	if !reflect.DeepEqual(wd.SerialNumbers(), gd.SerialNumbers()) {
		t.Fatal("drive order differs")
	}
	for _, sn := range wd.SerialNumbers() {
		ws, _ := wd.Series(sn)
		gs, _ := gd.Series(sn)
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("drive %s telemetry differs", sn)
		}
	}
	wset, err := want.BuildSampleSet()
	if err != nil {
		t.Fatal(err)
	}
	gset, err := got.BuildSampleSet()
	if err != nil {
		t.Fatal(err)
	}
	if wset.Len() != gset.Len() || wset.Width() != gset.Width() {
		t.Fatalf("sample set %dx%d, want %dx%d", gset.Len(), gset.Width(), wset.Len(), wset.Width())
	}
	wx, gx := wset.Arena(), gset.Arena()
	for i := range wx {
		if math.Float64bits(wx[i]) != math.Float64bits(gx[i]) {
			t.Fatalf("sample arena differs at %d: %x vs %x", i, gx[i], wx[i])
		}
	}
	for i := 0; i < wset.Len(); i++ {
		if wset.Y(i) != gset.Y(i) || wset.Day(i) != gset.Day(i) || wset.SN(i) != gset.SN(i) {
			t.Fatalf("sample row %d metadata differs", i)
		}
	}
}

func TestPrepareFrameMatchesPrepare(t *testing.T) {
	fleet := testFleet(t)
	want, err := Prepare(fleet.Data, fleet.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := PrepareFrame(testFrame(t), fleet.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Frame == nil {
		t.Fatal("frame path did not keep its frame")
	}
	requirePreparedEquivalent(t, want, got)
}

func TestPrepareFrameAblations(t *testing.T) {
	fleet := testFleet(t)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.SkipClean = true },
		func(c *Config) { c.SkipCumulate = true },
		func(c *Config) { c.SkipClean = true; c.SkipCumulate = true },
		func(c *Config) { c.Workers = 3 },
	} {
		cfg := DefaultConfig("I")
		mutate(&cfg)
		want, err := Prepare(fleet.Data, fleet.Tickets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PrepareFrame(testFrame(t), fleet.Tickets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requirePreparedEquivalent(t, want, got)
	}
}

func TestPrepareFrameUnknownVendor(t *testing.T) {
	fleet := testFleet(t)
	if _, err := PrepareFrame(testFrame(t), fleet.Tickets, DefaultConfig("XX")); err == nil {
		t.Fatal("unknown vendor accepted")
	}
}

// TestTrainOnFrameMatchesTrainOnFleet is the end-to-end pin: the same
// fleet through simulate→frame→train equals the record path exactly,
// down to the calibrated threshold and every evaluation number.
func TestTrainOnFrameMatchesTrainOnFleet(t *testing.T) {
	fleet := testFleet(t)
	wantModel, wantRep, err := TrainOnFleet(fleet.Data, fleet.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	frameRes, err := simfleet.SimulateFrame(fleet.Config)
	if err != nil {
		t.Fatal(err)
	}
	gotModel, gotRep, err := TrainOnFrame(frameRes.Frame, frameRes.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	if gotModel.TrainerName != wantModel.TrainerName ||
		gotModel.Threshold != wantModel.Threshold ||
		gotModel.TrainEndDay != wantModel.TrainEndDay {
		t.Fatalf("model %s/%g/%d, want %s/%g/%d",
			gotModel.TrainerName, gotModel.Threshold, gotModel.TrainEndDay,
			wantModel.TrainerName, wantModel.Threshold, wantModel.TrainEndDay)
	}
	if gotRep.TrainSamples != wantRep.TrainSamples || gotRep.TestSamples != wantRep.TestSamples {
		t.Fatalf("splits %d/%d, want %d/%d",
			gotRep.TrainSamples, gotRep.TestSamples, wantRep.TrainSamples, wantRep.TestSamples)
	}
	if gotRep.Eval != wantRep.Eval {
		t.Fatalf("evaluation differs:\n%+v\n%+v", gotRep.Eval, wantRep.Eval)
	}
}
