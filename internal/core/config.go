// Package core implements MFPA, the paper's multidimensional-feature
// failure prediction approach, end to end: discontinuity optimisation,
// failure-time identification, time-series-aware sampling, feature
// extraction over the SFWB groups, model training across five ML
// algorithm families, and per-sample plus per-drive evaluation.
package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/labeling"
	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/forest"
	"repro/internal/ml/gbdt"
	"repro/internal/ml/nn"
	"repro/internal/ml/svm"
)

// Algorithm names one of the paper's five candidate ML algorithms.
type Algorithm string

// The algorithms evaluated in Figs. 10/14.
const (
	AlgoBayes   Algorithm = "Bayes"
	AlgoSVM     Algorithm = "SVM"
	AlgoRF      Algorithm = "RF"
	AlgoGBDT    Algorithm = "GBDT"
	AlgoCNNLSTM Algorithm = "CNN_LSTM"
)

// Algorithms returns the paper's five algorithms in Fig. 10 order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoBayes, AlgoSVM, AlgoRF, AlgoGBDT, AlgoCNNLSTM}
}

// Sequential reports whether the algorithm consumes sequence samples
// (windows of consecutive records) rather than flat per-record vectors.
func (a Algorithm) Sequential() bool { return a == AlgoCNNLSTM }

// newTrainer instantiates the algorithm with the repository's default
// hyper-parameters (chosen by the grid-search experiment). width and
// seqLen parameterise the CNN_LSTM input shape; workers bounds the
// training parallelism of the ensemble learners; bins selects the
// tree ensembles' histogram split engine (0 = 256 bins, negative =
// exact sort-based splitter).
func (a Algorithm) newTrainer(seed int64, width, seqLen, workers, bins int) (ml.Trainer, error) {
	switch a {
	case AlgoBayes:
		return &bayes.Trainer{}, nil
	case AlgoSVM:
		return &svm.Trainer{Lambda: 1e-4, Epochs: 30, Seed: seed, Standardize: true}, nil
	case AlgoRF:
		return &forest.Trainer{Trees: 100, MaxDepth: 12, Seed: seed, Parallelism: workers, Bins: bins}, nil
	case AlgoGBDT:
		return &gbdt.Trainer{Rounds: 120, LearningRate: 0.1, MaxDepth: 4, Subsample: 0.8, Seed: seed, Bins: bins}, nil
	case AlgoCNNLSTM:
		return &nn.CNNLSTMTrainer{
			SeqLen:   seqLen,
			Features: width,
			Filters:  16,
			Kernel:   3,
			Hidden:   32,
			Epochs:   25,
			Batch:    32,
			Seed:     seed,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", a)
	}
}

// Config parameterises one MFPA pipeline run.
type Config struct {
	// Vendor restricts the pipeline to one vendor's drives ("" = all).
	// The paper trains per-vendor models rather than per-series ones.
	Vendor string
	// Group is the feature-group set (Table V). Zero value is invalid;
	// use features.GroupSFWB for the paper's best configuration.
	Group features.Group
	// Algorithm selects the learner; empty selects RF (the winner).
	Algorithm Algorithm
	// Theta is the failure-time identification threshold in days;
	// 0 selects the paper's 7.
	Theta int
	// GapPolicy is the discontinuity optimisation; zero value selects
	// the paper's drop ≥ 10 / fill ≤ 3.
	GapPolicy dataset.GapPolicy
	// PositiveWindowDays is the faulty lookback window; 0 selects 7.
	PositiveWindowDays int
	// NegativeRatio is the training under-sampling ratio (negatives per
	// positive); 0 selects 3.
	NegativeRatio float64
	// TrainFrac is the chronological fraction of samples forming the
	// learning window LW; 0 selects 0.6.
	TrainFrac float64
	// SeqLen is the CNN_LSTM window length in records; 0 selects 5.
	SeqLen int
	// Seed drives all stochastic stages.
	Seed int64
	// Registries supplies per-vendor firmware ladders for label
	// encoding; nil falls back to first-seen-order encoding.
	Registries map[string]*firmware.Registry
	// SkipClean disables the discontinuity optimisation (ablation).
	SkipClean bool
	// SkipCumulate disables the cumulative W/B transform (ablation).
	SkipCumulate bool
	// RandomSegmentation replaces the timepoint-based split with the
	// conventional shuffled split (ablation, Fig. 8(a)(1)).
	RandomSegmentation bool
	// FixedThreshold disables validation-based threshold calibration
	// and uses the conventional 0.5 decision threshold. By default the
	// pipeline picks the Youden-optimal threshold on time-series
	// cross-validation folds of the training window.
	FixedThreshold bool
	// CVFolds is the k of the time-series cross-validation used for
	// threshold calibration (and exposed for grid search); 0 selects 3.
	CVFolds int
	// Workers bounds the goroutines of every parallelised pipeline
	// stage: discontinuity cleaning, feature extraction, batch scoring,
	// and tree-ensemble training. 0 selects GOMAXPROCS; 1 pins the
	// whole pipeline to serial execution for debugging. Outputs are
	// identical at any setting — every fan-out merges in deterministic
	// order and draws randomness from pre-assigned seeds.
	Workers int
	// Bins is the per-feature bin budget of the histogram training
	// engine behind the tree ensembles (RF, GBDT): 0 selects 256 (the
	// default engine), positive values are clamped to at most 256, and
	// any negative value falls back to the exact sort-based splitter.
	// Binning quantises split thresholds but leaves them exact while
	// features have no more distinct values than bins.
	Bins int
}

// DefaultConfig returns the paper's best configuration: per-vendor RF
// on SFWB with θ=7, 7-day positive window, 3:1 under-sampling.
func DefaultConfig(vendor string) Config {
	return Config{
		Vendor:    vendor,
		Group:     features.GroupSFWB,
		Algorithm: AlgoRF,
		Seed:      1,
	}
}

// withDefaults materialises the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgoRF
	}
	if c.Theta == 0 {
		c.Theta = labeling.DefaultTheta
	}
	if c.GapPolicy == (dataset.GapPolicy{}) {
		c.GapPolicy = dataset.DefaultGapPolicy()
	}
	if c.PositiveWindowDays == 0 {
		c.PositiveWindowDays = 7
	}
	if c.NegativeRatio == 0 {
		c.NegativeRatio = 3
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.6
	}
	if c.SeqLen == 0 {
		c.SeqLen = 5
	}
	if c.CVFolds == 0 {
		c.CVFolds = 3
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Group.Empty() {
		return fmt.Errorf("core: empty feature group")
	}
	if c.TrainFrac <= 0 || c.TrainFrac >= 1 {
		return fmt.Errorf("core: TrainFrac %g must be in (0,1)", c.TrainFrac)
	}
	if c.NegativeRatio <= 0 {
		return fmt.Errorf("core: NegativeRatio %g must be > 0", c.NegativeRatio)
	}
	if c.PositiveWindowDays < 1 {
		return fmt.Errorf("core: PositiveWindowDays %d must be ≥ 1", c.PositiveWindowDays)
	}
	if c.Theta < 0 {
		return fmt.Errorf("core: Theta %d must be ≥ 0", c.Theta)
	}
	switch c.Algorithm {
	case AlgoBayes, AlgoSVM, AlgoRF, AlgoGBDT, AlgoCNNLSTM:
	default:
		return fmt.Errorf("core: unknown algorithm %q", c.Algorithm)
	}
	return nil
}
