package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/forest"
)

// discreteCal draws features from small integer alphabets (the binning
// exactness regime) across a long day range so time-series CV folds
// are well-populated.
func discreteCal(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]ml.Sample, n)
	for i := range out {
		a := float64(r.Intn(14))
		b := float64(r.Intn(6))
		y := 0
		if a+b > 10 {
			y = 1
		}
		if r.Float64() < 0.1 {
			y = 1 - y
		}
		out[i] = ml.Sample{
			X:   []float64{a, b, float64(r.Intn(4))},
			Y:   y,
			Day: i / 4,
			SN:  fmt.Sprintf("d%d", i%31),
		}
	}
	return out
}

// TestCalibrateThresholdViewMatchesSlice pins satellite behaviour of
// the view rewrite: the preallocated, view-based calibration must pick
// exactly the threshold the append-growing slice implementation did.
func TestCalibrateThresholdViewMatchesSlice(t *testing.T) {
	for _, seed := range []int64{2, 19} {
		samples := discreteCal(600, seed)
		set, err := ml.FromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{CVFolds: 3, NegativeRatio: 3, Seed: seed, Workers: 2}
		trainer := &forest.Trainer{Trees: 15, MaxDepth: 6, Seed: seed}

		want, err := calibrateThreshold(trainer, samples, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := calibrateThresholdView(trainer, set.All(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed=%d: view threshold %v, slice threshold %v", seed, got, want)
		}
	}
}

// TestCalibrateThresholdViewNoUsableFolds mirrors the slice error
// contract when every fold is single-class.
func TestCalibrateThresholdViewNoUsableFolds(t *testing.T) {
	neg := make([]ml.Sample, 40)
	for i := range neg {
		neg[i] = ml.Sample{X: []float64{float64(i % 5)}, Y: 0, Day: i}
	}
	set, err := ml.FromSamples(neg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{CVFolds: 2, NegativeRatio: 3, Seed: 1, Workers: 1}
	if _, err := calibrateThresholdView(&forest.Trainer{Trees: 3}, set.All(), cfg); err == nil {
		t.Fatal("all-negative calibration accepted")
	}
}
