package core

import (
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
)

// Evaluation bundles the paper's Section IV metrics for one test set,
// at both sample and drive granularity.
type Evaluation struct {
	// Confusion is the per-sample confusion matrix at threshold 0.5.
	Confusion metrics.Confusion
	// AUC is the per-sample area under the ROC curve.
	AUC float64
	// DriveConfusion aggregates per drive: a drive counts as predicted
	// faulty when more than half of its test samples are flagged.
	DriveConfusion metrics.Confusion
}

// TPR returns the per-sample true positive rate.
func (e *Evaluation) TPR() float64 { return e.Confusion.TPR() }

// FPR returns the per-sample false positive rate.
func (e *Evaluation) FPR() float64 { return e.Confusion.FPR() }

// Accuracy returns the per-sample accuracy.
func (e *Evaluation) Accuracy() float64 { return e.Confusion.Accuracy() }

// PDR returns the per-sample positive detection rate.
func (e *Evaluation) PDR() float64 { return e.Confusion.PDR() }

// EvaluateSamples scores every sample at the conventional 0.5
// threshold and aggregates at both granularities.
func EvaluateSamples(clf ml.Classifier, samples []ml.Sample) Evaluation {
	return EvaluateSamplesAt(clf, samples, 0.5)
}

// EvaluateSamplesAt scores every sample at the given decision threshold
// and aggregates at both granularities. The scoring pass fans out
// across GOMAXPROCS goroutines; aggregation is serial and in sample
// order, so the evaluation is identical at any parallelism.
func EvaluateSamplesAt(clf ml.Classifier, samples []ml.Sample, threshold float64) Evaluation {
	var ev Evaluation
	scores := ml.BatchScores(clf, samples, 0)
	labels := make([]int, len(samples))

	type driveAgg struct {
		flagged, total int
		y              int
	}
	drives := make(map[string]*driveAgg)

	for i := range samples {
		p := scores[i]
		labels[i] = samples[i].Y
		pred := 0
		if p >= threshold {
			pred = 1
		}
		ev.Confusion.Add(pred, samples[i].Y)

		agg := drives[samples[i].SN]
		if agg == nil {
			agg = &driveAgg{}
			drives[samples[i].SN] = agg
		}
		agg.total++
		agg.flagged += pred
		if samples[i].Y == 1 {
			agg.y = 1
		}
	}
	ev.AUC = metrics.AUC(metrics.ROCFromScores(scores, labels))
	for _, agg := range drives {
		pred := 0
		if float64(agg.flagged) > float64(agg.total)/2 {
			pred = 1
		}
		ev.DriveConfusion.Add(pred, agg.y)
	}
	return ev
}

// Predict scores one feature vector with the trained model.
func (m *Model) Predict(x []float64) float64 { return m.Classifier.PredictProba(x) }

// Evaluate scores an arbitrary sample set with the trained model.
func (m *Model) Evaluate(samples []ml.Sample) Evaluation {
	return EvaluateSamplesAt(m.Classifier, samples, m.Threshold)
}

// EvaluateRange evaluates only the samples with fromDay ≤ Day ≤ toDay —
// the walk-forward primitive behind the Figs. 12/16 time-period study.
func (m *Model) EvaluateRange(samples []ml.Sample, fromDay, toDay int) Evaluation {
	window := dayWindow(byDay(samples), fromDay, toDay)
	return EvaluateSamplesAt(m.Classifier, window, m.Threshold)
}

// MonthlyEvaluation is one month of a walk-forward study.
type MonthlyEvaluation struct {
	Month    int // 1-based month index after the training window
	FromDay  int
	ToDay    int
	Eval     Evaluation
	Positive int
	Negative int
}

// WalkForward evaluates the model month by month after its training
// window without re-training, as in the paper's five-month portability
// study. monthDays is the month length (30 in the paper's framing).
func (m *Model) WalkForward(samples []ml.Sample, monthDays, months int) []MonthlyEvaluation {
	// One chronological view up front; each month is then a
	// binary-searched subslice instead of an O(n) filtered copy.
	sorted := byDay(samples)
	out := make([]MonthlyEvaluation, 0, months)
	for month := 1; month <= months; month++ {
		from := m.TrainEndDay + 1 + (month-1)*monthDays
		to := m.TrainEndDay + month*monthDays
		window := dayWindow(sorted, from, to)
		if len(window) == 0 {
			continue
		}
		neg, pos := ml.ClassCounts(window)
		out = append(out, MonthlyEvaluation{
			Month:    month,
			FromDay:  from,
			ToDay:    to,
			Eval:     EvaluateSamplesAt(m.Classifier, window, m.Threshold),
			Positive: pos,
			Negative: neg,
		})
	}
	return out
}

// daySorted reports whether samples are already in non-decreasing Day
// order, which is how the sampling pipeline emits them.
func daySorted(samples []ml.Sample) bool {
	for i := 1; i < len(samples); i++ {
		if samples[i].Day < samples[i-1].Day {
			return false
		}
	}
	return true
}

// byDay returns a chronologically ordered view of samples: the input
// itself when already sorted (the common case — zero copies), otherwise
// one stable-sorted copy shared by every window drawn from it.
func byDay(samples []ml.Sample) []ml.Sample {
	if daySorted(samples) {
		return samples
	}
	sorted := make([]ml.Sample, len(samples))
	copy(sorted, samples)
	ml.SortByDay(sorted)
	return sorted
}

// dayWindow returns the subslice of a day-sorted view holding
// fromDay ≤ Day ≤ toDay.
func dayWindow(sorted []ml.Sample, fromDay, toDay int) []ml.Sample {
	lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].Day >= fromDay })
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i].Day > toDay })
	if lo >= hi {
		return nil
	}
	return sorted[lo:hi]
}

// Youden returns the TPR−FPR Youden index of an evaluation, a single
// scalar for ablation comparisons; NaN-safe (missing classes yield 0).
func (e *Evaluation) Youden() float64 {
	t, f := e.TPR(), e.FPR()
	if math.IsNaN(t) {
		t = 0
	}
	if math.IsNaN(f) {
		f = 0
	}
	return t - f
}
