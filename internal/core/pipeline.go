package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/labeling"
	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/sampling"
	"repro/internal/ticket"
)

// Prepared is the output of the preprocessing stages: a cleaned,
// cumulated, vendor-filtered dataset with resolved failure labels and a
// fitted extractor — everything model training consumes. Preparing once
// and training several models on it is the normal experiment flow.
type Prepared struct {
	Config Config
	// Data is the record-form prepared telemetry. On the columnar
	// PrepareFrame path it starts nil and is materialised from Frame on
	// first use; call Dataset() instead of reading the field.
	Data *dataset.Dataset
	// Frame is the columnar prepared telemetry (PrepareFrame path
	// only); nil when Prepare ran on records.
	Frame      *dataset.Frame
	Labels     labeling.Labels
	Extractor  *features.Extractor
	CleanStats dataset.CleanStats
	LabelStats labeling.Stats
	// Timing of the preprocessing stages (the Fig. 20 overhead rows).
	CleanTime   time.Duration
	LabelTime   time.Duration
	RecordCount int
}

// Dataset returns the prepared telemetry in record form, converting
// from the columnar frame on first use (the compat adapter for sample
// builders that still walk []Record).
func (p *Prepared) Dataset() *dataset.Dataset {
	if p.Data == nil && p.Frame != nil {
		p.Data = p.Frame.ToDataset()
	}
	return p.Data
}

// Prepare runs MFPA's data stages: vendor filter → discontinuity
// optimisation → cumulative W/B transform → failure-time
// identification → extractor construction.
func Prepare(data *dataset.Dataset, tickets *ticket.Store, cfg Config) (*Prepared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	if cfg.Vendor != "" {
		data = data.Filter(func(s *dataset.DriveSeries) bool { return s.Vendor == cfg.Vendor })
		if data.Drives() == 0 {
			return nil, fmt.Errorf("core: no drives for vendor %q", cfg.Vendor)
		}
	}

	p := &Prepared{Config: cfg}
	start := time.Now()
	if cfg.SkipClean {
		if cfg.SkipCumulate {
			// Double-ablation path: with cleaning and cumulation both
			// off, nothing downstream mutates the dataset, so the
			// defensive copy would be pure overhead.
			p.Data = data
		} else {
			// Ablation path: keep gaps; work on a private copy because
			// Cumulate mutates records in place.
			p.Data = data.Clone()
		}
	} else {
		cleaned, stats, err := dataset.CleanDiscontinuityWorkers(data, cfg.GapPolicy, cfg.Workers)
		if err != nil {
			return nil, err
		}
		p.Data = cleaned
		p.CleanStats = stats
	}
	if !cfg.SkipCumulate {
		if err := dataset.Cumulate(p.Data); err != nil {
			return nil, err
		}
	}
	p.CleanTime = time.Since(start)
	p.RecordCount = p.Data.Len()

	start = time.Now()
	labels, err := labeling.Identify(p.Data, tickets, cfg.Theta)
	if err != nil {
		return nil, err
	}
	p.Labels = labels
	p.LabelStats = labeling.Summarise(labels)
	p.LabelTime = time.Since(start)

	ext, err := features.NewExtractor(cfg.Group, cfg.Registries)
	if err != nil {
		return nil, err
	}
	p.Extractor = ext
	return p, nil
}

// PrepareFrame is Prepare on the columnar data plane: vendor filter as
// a zero-copy drive-range view, then the fused clean+cumulate pass
// (one traversal per drive, no intermediate dataset), then label
// identification straight off the day column. The result is
// bit-identical to Prepare on the equivalent record-form fleet; sample
// construction dispatches to the frame extractor automatically.
func PrepareFrame(f *dataset.Frame, tickets *ticket.Store, cfg Config) (*Prepared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	if cfg.Vendor != "" {
		f = f.FilterVendor(cfg.Vendor)
		if f.Drives() == 0 {
			return nil, fmt.Errorf("core: no drives for vendor %q", cfg.Vendor)
		}
	}

	p := &Prepared{Config: cfg}
	start := time.Now()
	out, stats, err := dataset.PreparePipeline(f, dataset.PipelineOptions{
		Policy:       cfg.GapPolicy,
		SkipClean:    cfg.SkipClean,
		SkipCumulate: cfg.SkipCumulate,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	p.Frame = out
	if !cfg.SkipClean {
		p.CleanStats = stats
	}
	p.CleanTime = time.Since(start)
	p.RecordCount = out.Len()

	start = time.Now()
	labels, err := labeling.IdentifyFrame(out, tickets, cfg.Theta)
	if err != nil {
		return nil, err
	}
	p.Labels = labels
	p.LabelStats = labeling.Summarise(labels)
	p.LabelTime = time.Since(start)

	ext, err := features.NewExtractor(cfg.Group, cfg.Registries)
	if err != nil {
		return nil, err
	}
	p.Extractor = ext
	return p, nil
}

// BuildSamples extracts the labelled samples appropriate for the
// configured algorithm (flat, or sequence-shaped for CNN_LSTM).
func (p *Prepared) BuildSamples() ([]ml.Sample, error) {
	opts := features.DefaultBuildOptions()
	opts.PositiveWindowDays = p.Config.PositiveWindowDays
	opts.Workers = p.Config.Workers
	if p.Config.Algorithm.Sequential() {
		return features.BuildSeqSamples(p.Dataset(), p.Labels, p.Extractor, p.Config.SeqLen, opts)
	}
	return features.BuildSamples(p.Dataset(), p.Labels, p.Extractor, opts)
}

// BuildSampleSet extracts the flat labelled samples directly into a
// columnar ml.SampleSet — the representation the view-based training
// path shares across splits, calibration folds, and search candidates.
// Row content and order match BuildSamples exactly. The sequential
// CNN_LSTM representation (overlapping windows) has no flat-arena
// form; its call sites stay on BuildSamples.
func (p *Prepared) BuildSampleSet() (*ml.SampleSet, error) {
	opts := features.DefaultBuildOptions()
	opts.PositiveWindowDays = p.Config.PositiveWindowDays
	opts.Workers = p.Config.Workers
	if p.Frame != nil {
		return features.BuildSampleSetFrame(p.Frame, p.Labels, p.Extractor, opts)
	}
	return features.BuildSampleSet(p.Data, p.Labels, p.Extractor, opts)
}

// Model is a trained MFPA failure predictor.
type Model struct {
	Config      Config
	Classifier  ml.Classifier
	TrainerName string
	// TrainEndDay is the last day included in the learning window.
	TrainEndDay int
	// Width is the flat feature width; SeqLen*Width for CNN_LSTM input.
	Width int
	// Threshold is the calibrated decision threshold (0.5 when
	// FixedThreshold is set).
	Threshold float64
}

// TrainReport carries everything measured while training, including
// the held-out evaluation and the per-stage overheads of Fig. 20.
type TrainReport struct {
	Prepared *Prepared
	// TrainSamples/TestSamples are post-undersampling counts.
	TrainSamples int
	TestSamples  int
	TrainPos     int
	TestPos      int
	// Eval is the held-out (chronologically later) evaluation.
	Eval Evaluation
	// Stage timings.
	SampleTime time.Duration
	TrainTime  time.Duration
	EvalTime   time.Duration
}

// Train runs the modelling stages of MFPA on prepared data: sample
// construction → timepoint segmentation → under-sampling → training →
// held-out evaluation.
//
// Flat algorithms run on the columnar view path: samples are extracted
// once into a shared ml.SampleSet arena, and segmentation,
// under-sampling, threshold calibration, and training all operate on
// zero-copy row-index views of it (bin-once for the tree ensembles).
// The sequential CNN_LSTM representation has no flat-arena form and
// keeps the per-sample slice path.
func Train(p *Prepared, tests ...[]ml.Sample) (*Model, *TrainReport, error) {
	if p.Config.Algorithm.Sequential() {
		return trainSlices(p, tests...)
	}
	cfg := p.Config
	report := &TrainReport{Prepared: p}

	start := time.Now()
	set, err := p.BuildSampleSet()
	if err != nil {
		return nil, nil, err
	}
	report.SampleTime = time.Since(start)

	var train, test ml.View
	if cfg.RandomSegmentation {
		train, test = sampling.RandomSplitView(set.All(), 1-cfg.TrainFrac, cfg.Seed)
	} else {
		train, test = sampling.SplitFractionView(set.All(), cfg.TrainFrac)
	}
	// The held-out set is only read for evaluation, so a header-only
	// materialisation (vectors aliasing the arena) is safe and cheap.
	testSamples := test.Materialize()
	if len(tests) > 0 && tests[0] != nil {
		testSamples = tests[0]
	}
	trainFull := train
	train, err = sampling.UnderSampleView(train, cfg.NegativeRatio, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	if err := ml.ValidateView(train, true); err != nil {
		return nil, nil, fmt.Errorf("core: training set: %w", err)
	}
	report.TrainSamples = train.Len()
	report.TestSamples = len(testSamples)
	_, report.TrainPos = train.ClassCounts()
	_, report.TestPos = ml.ClassCounts(testSamples)

	width := p.Extractor.Width()
	trainer, err := cfg.Algorithm.newTrainer(cfg.Seed, width, cfg.SeqLen, cfg.Workers, cfg.Bins)
	if err != nil {
		return nil, nil, err
	}
	start = time.Now()
	threshold := 0.5
	if !cfg.FixedThreshold {
		if t, err := calibrateThresholdView(trainer, trainFull, cfg); err == nil {
			threshold = t
		}
	}
	clf, err := ml.TrainOn(trainer, train)
	if err != nil {
		return nil, nil, err
	}
	report.TrainTime = time.Since(start)

	m := &Model{
		Config:      cfg,
		Classifier:  clf,
		TrainerName: trainer.Name(),
		Width:       width,
		Threshold:   threshold,
	}
	if train.Len() > 0 {
		m.TrainEndDay = train.MaxDay()
	}

	start = time.Now()
	if len(testSamples) > 0 {
		report.Eval = EvaluateSamplesAt(clf, testSamples, threshold)
	}
	report.EvalTime = time.Since(start)
	return m, report, nil
}

// trainSlices is the legacy []ml.Sample training path, retained for
// the sequential CNN_LSTM whose overlapping windows cannot share a
// flat arena.
func trainSlices(p *Prepared, tests ...[]ml.Sample) (*Model, *TrainReport, error) {
	cfg := p.Config
	report := &TrainReport{Prepared: p}

	start := time.Now()
	samples, err := p.BuildSamples()
	if err != nil {
		return nil, nil, err
	}
	report.SampleTime = time.Since(start)

	var train, test []ml.Sample
	if cfg.RandomSegmentation {
		train, test = sampling.RandomSplit(samples, 1-cfg.TrainFrac, cfg.Seed)
	} else {
		train, test = sampling.SplitFraction(samples, cfg.TrainFrac)
	}
	if len(tests) > 0 && tests[0] != nil {
		test = tests[0]
	}
	trainFull := train
	train, err = sampling.UnderSample(train, cfg.NegativeRatio, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	if err := ml.ValidateSamples(train, true); err != nil {
		return nil, nil, fmt.Errorf("core: training set: %w", err)
	}
	report.TrainSamples = len(train)
	report.TestSamples = len(test)
	_, report.TrainPos = ml.ClassCounts(train)
	_, report.TestPos = ml.ClassCounts(test)

	width := p.Extractor.Width()
	trainer, err := cfg.Algorithm.newTrainer(cfg.Seed, width, cfg.SeqLen, cfg.Workers, cfg.Bins)
	if err != nil {
		return nil, nil, err
	}
	start = time.Now()
	threshold := 0.5
	if !cfg.FixedThreshold {
		if t, err := calibrateThreshold(trainer, trainFull, cfg); err == nil {
			threshold = t
		}
	}
	clf, err := trainer.Train(train)
	if err != nil {
		return nil, nil, err
	}
	report.TrainTime = time.Since(start)

	m := &Model{
		Config:      cfg,
		Classifier:  clf,
		TrainerName: trainer.Name(),
		Width:       width,
		Threshold:   threshold,
	}
	if len(train) > 0 {
		last := 0
		for i := range train {
			if train[i].Day > last {
				last = train[i].Day
			}
		}
		m.TrainEndDay = last
	}

	start = time.Now()
	if len(test) > 0 {
		report.Eval = EvaluateSamplesAt(clf, test, threshold)
	}
	report.EvalTime = time.Since(start)
	return m, report, nil
}

// calibrateThreshold picks the decision threshold on pooled time-series
// cross-validation folds of the *full-prevalence* training window: each
// fold's training part is under-sampled exactly as the final model's
// is, but validation keeps the natural class balance so the FPR
// estimate is trustworthy. The operating point is chosen without
// touching test data.
func calibrateThreshold(trainer ml.Trainer, trainFull []ml.Sample, cfg Config) (float64, error) {
	folds, err := sampling.TimeSeriesCV(trainFull, cfg.CVFolds)
	if err != nil {
		return 0, err
	}
	var scores []float64
	var labels []int
	for _, fold := range folds {
		tr, err := sampling.UnderSample(fold.Train, cfg.NegativeRatio, cfg.Seed)
		if err != nil {
			return 0, err
		}
		if !bothClasses(tr) || !bothClasses(fold.Val) {
			continue
		}
		clf, err := trainer.Train(tr)
		if err != nil {
			return 0, err
		}
		scores = append(scores, ml.BatchScores(clf, fold.Val, cfg.Workers)...)
		for i := range fold.Val {
			labels = append(labels, fold.Val[i].Y)
		}
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("core: no usable calibration folds")
	}
	return pickThreshold(scores, labels), nil
}

// calibrateThresholdView is calibrateThreshold on zero-copy SampleSet
// views: CV folds and their under-sampled training parts are row-index
// views of the shared arena, and the pooled score/label buffers are
// preallocated from the usable folds' validation sizes instead of
// growing by append — each fold scores straight into its slot.
func calibrateThresholdView(trainer ml.Trainer, trainFull ml.View, cfg Config) (float64, error) {
	folds, err := sampling.TimeSeriesCVView(trainFull, cfg.CVFolds)
	if err != nil {
		return 0, err
	}
	type calFold struct {
		train, val ml.View
		off        int
	}
	usable := make([]calFold, 0, len(folds))
	total := 0
	for _, fold := range folds {
		tr, err := sampling.UnderSampleView(fold.Train, cfg.NegativeRatio, cfg.Seed)
		if err != nil {
			return 0, err
		}
		if !bothClassesView(tr) || !bothClassesView(fold.Val) {
			continue
		}
		usable = append(usable, calFold{train: tr, val: fold.Val, off: total})
		total += fold.Val.Len()
	}
	if total == 0 {
		return 0, fmt.Errorf("core: no usable calibration folds")
	}
	scores := make([]float64, total)
	labels := make([]int, total)
	for _, f := range usable {
		clf, err := ml.TrainOn(trainer, f.train)
		if err != nil {
			return 0, err
		}
		n := f.val.Len()
		ml.ScoreView(clf, f.val, scores[f.off:f.off+n], cfg.Workers)
		for i := 0; i < n; i++ {
			labels[f.off+i] = f.val.Y(i)
		}
	}
	return pickThreshold(scores, labels), nil
}

// pickThreshold selects the operating point from pooled calibration
// scores by the weighted Youden index: a false alarm triggers
// pointless data migration and service interruption (the paper's
// motivation for PDR), so FPR is penalised more strongly than missed
// detections are rewarded.
func pickThreshold(scores []float64, labels []int) float64 {
	roc := metrics.ROCFromScores(scores, labels)
	best, bestJ := 0.5, -1.0
	for _, pt := range roc[1:] { // skip the +Inf corner
		if j := pt.TPR - fprPenalty*pt.FPR; j > bestJ {
			bestJ = j
			best = pt.Threshold
		}
	}
	return best
}

// fprPenalty is the false-positive weight of the calibration criterion.
const fprPenalty = 3

func bothClasses(samples []ml.Sample) bool {
	neg, pos := ml.ClassCounts(samples)
	return neg > 0 && pos > 0
}

func bothClassesView(v ml.View) bool {
	neg, pos := v.ClassCounts()
	return neg > 0 && pos > 0
}

// TrainOnFleet is the one-call convenience: Prepare followed by Train.
func TrainOnFleet(data *dataset.Dataset, tickets *ticket.Store, cfg Config) (*Model, *TrainReport, error) {
	p, err := Prepare(data, tickets, cfg)
	if err != nil {
		return nil, nil, err
	}
	return Train(p)
}

// TrainOnFrame is TrainOnFleet on the columnar data plane: PrepareFrame
// followed by Train, with no record-form dataset on the way to the
// SampleSet.
func TrainOnFrame(f *dataset.Frame, tickets *ticket.Store, cfg Config) (*Model, *TrainReport, error) {
	p, err := PrepareFrame(f, tickets, cfg)
	if err != nil {
		return nil, nil, err
	}
	return Train(p)
}
