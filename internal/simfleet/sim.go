package simfleet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/smartattr"
	"repro/internal/ticket"
)

// DriveTruth is the ground truth for one simulated drive, used by
// experiments to score predictions and by the figure generators.
type DriveTruth struct {
	SerialNumber string
	Vendor       string
	Model        string
	Firmware     string
	FirmwareSeq  int
	// Faulty reports whether the drive fails during the window.
	Faulty bool
	// Sudden reports a failure with no precursor signal.
	Sudden bool
	// FailDay is the window-relative failure day, -1 when healthy.
	FailDay int
	// FailPowerOnHours is the SMART power-on-hour age at failure
	// (0 when healthy).
	FailPowerOnHours float64
	// Kind is the simulator cohort ("healthy", "smart-noise", "burst",
	// "faulty", "faulty-sudden").
	Kind string
}

// VendorStats summarises one vendor's nominal population for the
// Table VI / Fig. 3 experiments.
type VendorStats struct {
	Name string
	// Population is the nominal fleet size.
	Population int
	// Failures is the number of faulty drives materialised in this run
	// (after Config.FailureScale).
	Failures int
	// NominalFailures is the vendor spec's unscaled failure count.
	NominalFailures int
	// SampledHealthy is the number of healthy drives materialised.
	SampledHealthy int
	// FailuresByFirmwareSeq maps a firmware release sequence number to
	// the count of failures on it.
	FailuresByFirmwareSeq map[int]int
	// PopulationByFirmwareSeq maps a firmware release sequence to the
	// nominal population share running it.
	PopulationByFirmwareSeq map[int]float64
}

// ReplacementRate returns the run's scaled replacement rate: failures
// scaled back to the nominal population.
func (s *VendorStats) ReplacementRate() float64 {
	if s.Population == 0 {
		return 0
	}
	return float64(s.NominalFailures) / float64(s.Population)
}

// Result is one simulated fleet.
type Result struct {
	// Data is the raw (daily-count, discontinuous) telemetry.
	Data *dataset.Dataset
	// Tickets is the after-sales RaSRF ticket store.
	Tickets *ticket.Store
	// Truth maps serial number to ground truth.
	Truth map[string]DriveTruth
	// Stats summarises each vendor in spec order.
	Stats []VendorStats
	// Config echoes the configuration that produced the result.
	Config Config
}

// FaultyCount returns the number of faulty drives in the run.
func (res *Result) FaultyCount() int {
	n := 0
	for _, t := range res.Truth {
		if t.Faulty {
			n++
		}
	}
	return n
}

// Simulate generates a fleet per cfg. The same cfg (including Seed)
// always yields the same result.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Vendors == nil {
		cfg.Vendors = DefaultVendors()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Data:    dataset.New(),
		Tickets: ticket.NewStore(),
		Truth:   make(map[string]DriveTruth),
		Config:  cfg,
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	causes := ticket.AllCauses()
	causeWeights := make([]float64, len(causes))
	for i, c := range causes {
		causeWeights[i] = c.Share
	}

	for _, v := range cfg.Vendors {
		nFaulty := int(math.Round(float64(v.Failures) * cfg.FailureScale))
		if nFaulty < 1 {
			nFaulty = 1
		}
		nHealthy := nFaulty * cfg.HealthyPerFaulty
		stats := VendorStats{
			Name:                    v.Name,
			Population:              v.Population,
			Failures:                nFaulty,
			NominalFailures:         v.Failures,
			SampledHealthy:          nHealthy,
			FailuresByFirmwareSeq:   make(map[int]int),
			PopulationByFirmwareSeq: make(map[int]float64),
		}
		for _, rel := range v.Firmware.Releases() {
			stats.PopulationByFirmwareSeq[rel.Seq] = rel.ShipShare * float64(v.Population)
		}

		for i := 0; i < nFaulty; i++ {
			sn := fmt.Sprintf("%s-F%06d", v.Name, i)
			k := kindFaulty
			if master.Float64() < cfg.SuddenShare {
				k = kindSudden
			}
			// Failures spread uniformly over the window, but not in
			// the first week: a drive must have some history to be
			// observable at all.
			failDay := 7 + master.Intn(cfg.Days-7)
			if err := simulateDrive(res, &stats, sn, &v, k, failDay, &cfg, causes, causeWeights); err != nil {
				return nil, err
			}
		}
		for i := 0; i < nHealthy; i++ {
			sn := fmt.Sprintf("%s-H%06d", v.Name, i)
			k := kindHealthy
			switch u := master.Float64(); {
			case u < cfg.SmartNoiseShare:
				k = kindSmartNoise
			case u < cfg.SmartNoiseShare+cfg.BurstShare:
				k = kindBurst
			}
			if err := simulateDrive(res, &stats, sn, &v, k, -1, &cfg, causes, causeWeights); err != nil {
				return nil, err
			}
		}
		res.Stats = append(res.Stats, stats)
	}
	return res, nil
}

// simulateDrive runs one drive through the window, appending its
// telemetry, ground truth, and (for faulty drives) its trouble ticket.
func simulateDrive(res *Result, stats *VendorStats, sn string, v *VendorSpec, k kind, failDay int, cfg *Config, causes []ticket.Cause, causeWeights []float64) error {
	r := driveRNG(cfg.Seed, sn)
	d := newDriveState(r, sn, v, k, failDay, cfg)
	if d.kind == kindBurst {
		d.burstStart = r.Intn(cfg.Days)
	}
	d.placeEpisodes(r, cfg.Days)

	lastDay := cfg.Days - 1
	if d.failDay >= 0 {
		lastDay = d.failDay
	}
	// Some users abandon a flaky machine before it dies outright, so
	// telemetry ends early and the gap to the eventual ticket widens.
	abandoned := false
	if d.failDay >= 0 && cfg.AbandonShare > 0 && r.Float64() < cfg.AbandonShare {
		abandoned = true
		lastDay -= 1 + r.Intn(cfg.AbandonMaxDays)
		if lastDay < 0 {
			lastDay = 0
		}
	}
	var failHours float64
	for day := 0; day <= lastDay; day++ {
		powered := r.Float64() < d.usage.onProb[day%7]
		// The machine is certainly on the day it dies: the failure is
		// what the user notices. (Unless the user already gave up on it.)
		if day == d.failDay && !abandoned {
			powered = true
		}
		if !powered {
			continue
		}
		rec := d.stepDay(r, day, cfg)
		if err := res.Data.Append(rec); err != nil {
			return err
		}
		if d.failDay >= 0 {
			// The age at the last observation approximates the age at
			// death (exact when the final record lands on the failure
			// day, which it does unless the user abandoned the machine).
			failHours = rec.Smart.Get(smartattr.PowerOnHours)
		}
	}

	truth := DriveTruth{
		SerialNumber:     sn,
		Vendor:           v.Name,
		Model:            d.model.Name,
		Firmware:         string(d.fw.Version),
		FirmwareSeq:      d.fw.Seq,
		Faulty:           k.Faulty(),
		Sudden:           k == kindSudden,
		FailDay:          d.failDay,
		FailPowerOnHours: failHours,
		Kind:             k.String(),
	}
	res.Truth[sn] = truth

	if k.Faulty() {
		stats.FailuresByFirmwareSeq[d.fw.Seq]++
		delay := geometricDelay(r, cfg.TicketDelayMeanDays, cfg.TicketDelayMaxDays)
		cause := weightedIndex(r, causeWeights)
		res.Tickets.Add(ticket.Ticket{
			SerialNumber: sn,
			IMT:          d.failDay + delay,
			Cause:        cause,
			Description:  causes[cause].Name,
		})
	}
	return nil
}
