package simfleet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/smartattr"
	"repro/internal/ticket"
)

// DriveTruth is the ground truth for one simulated drive, used by
// experiments to score predictions and by the figure generators.
type DriveTruth struct {
	SerialNumber string
	Vendor       string
	Model        string
	Firmware     string
	FirmwareSeq  int
	// Faulty reports whether the drive fails during the window.
	Faulty bool
	// Sudden reports a failure with no precursor signal.
	Sudden bool
	// FailDay is the window-relative failure day, -1 when healthy.
	FailDay int
	// FailPowerOnHours is the SMART power-on-hour age at failure
	// (0 when healthy).
	FailPowerOnHours float64
	// Kind is the simulator cohort ("healthy", "smart-noise", "burst",
	// "faulty", "faulty-sudden").
	Kind string
}

// VendorStats summarises one vendor's nominal population for the
// Table VI / Fig. 3 experiments.
type VendorStats struct {
	Name string
	// Population is the nominal fleet size.
	Population int
	// Failures is the number of faulty drives materialised in this run
	// (after Config.FailureScale).
	Failures int
	// NominalFailures is the vendor spec's unscaled failure count.
	NominalFailures int
	// SampledHealthy is the number of healthy drives materialised.
	SampledHealthy int
	// FailuresByFirmwareSeq maps a firmware release sequence number to
	// the count of failures on it.
	FailuresByFirmwareSeq map[int]int
	// PopulationByFirmwareSeq maps a firmware release sequence to the
	// nominal population share running it.
	PopulationByFirmwareSeq map[int]float64
}

// ReplacementRate returns the run's scaled replacement rate: failures
// scaled back to the nominal population.
func (s *VendorStats) ReplacementRate() float64 {
	if s.Population == 0 {
		return 0
	}
	return float64(s.NominalFailures) / float64(s.Population)
}

// Result is one simulated fleet.
type Result struct {
	// Data is the raw (daily-count, discontinuous) telemetry.
	Data *dataset.Dataset
	// Tickets is the after-sales RaSRF ticket store.
	Tickets *ticket.Store
	// Truth maps serial number to ground truth.
	Truth map[string]DriveTruth
	// Stats summarises each vendor in spec order.
	Stats []VendorStats
	// Config echoes the configuration that produced the result.
	Config Config
}

// FaultyCount returns the number of faulty drives in the run.
func (res *Result) FaultyCount() int {
	n := 0
	for _, t := range res.Truth {
		if t.Faulty {
			n++
		}
	}
	return n
}

// driveSpec is one drive's assignment, drawn serially from the master
// RNG so the spec sequence is identical at every worker count.
type driveSpec struct {
	sn      string
	vendor  int // index into cfg.Vendors
	stats   int // index into Result.Stats
	kind    kind
	failDay int
}

// driveOutput is everything one materialised drive contributes,
// produced by a worker and merged serially in spec order.
type driveOutput struct {
	records []dataset.Record
	truth   DriveTruth
	fwSeq   int
	ticket  ticket.Ticket
}

// Simulate generates a fleet per cfg. The same cfg (including Seed)
// always yields the same result: drive assignments come from a serial
// master-RNG pass, each drive's trajectory comes from its own
// serial-number-seeded RNG (order-independent by construction), and
// per-worker outputs are merged in spec order, so the output is
// bit-identical at any cfg.Workers setting.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Vendors == nil {
		cfg.Vendors = DefaultVendors()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Data:    dataset.New(),
		Tickets: ticket.NewStore(),
		Truth:   make(map[string]DriveTruth),
		Config:  cfg,
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	causes := ticket.AllCauses()
	causeWeights := make([]float64, len(causes))
	for i, c := range causes {
		causeWeights[i] = c.Share
	}

	// Pass 1 (serial): draw every drive's cohort assignment from the
	// master RNG in the fixed vendor/serial order.
	var specs []driveSpec
	specs, res.Stats = buildSpecs(&cfg, master)

	// Pass 2 (parallel): materialise each drive from its own RNG.
	outs, err := parallel.Map(len(specs), cfg.Workers, func(i int) (driveOutput, error) {
		s := specs[i]
		return simulateDrive(s.sn, &cfg.Vendors[s.vendor], s.kind, s.failDay, &cfg, causes, causeWeights), nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 3 (serial): merge in spec order so dataset insertion order,
	// ticket order, and stats are identical to a serial run.
	for i := range outs {
		out := &outs[i]
		for _, rec := range out.records {
			if err := res.Data.Append(rec); err != nil {
				return nil, err
			}
		}
		res.Truth[out.truth.SerialNumber] = out.truth
		if out.truth.Faulty {
			res.Stats[specs[i].stats].FailuresByFirmwareSeq[out.fwSeq]++
			res.Tickets.Add(out.ticket)
		}
	}
	return res, nil
}

// serialNumber mints "<vendor>-<tag>NNNNNN" with the index zero-padded
// to six digits — the exact layout fmt.Sprintf("%s-%c%06d", ...) would
// produce — without fmt's argument boxing, which was the single
// largest allocation source in fleet construction.
func serialNumber(vendor string, tag byte, i int) string {
	if i < 0 || i >= 1000000 {
		return fmt.Sprintf("%s-%c%06d", vendor, tag, i)
	}
	var arr [16]byte
	buf := append(arr[:0], vendor...)
	buf = append(buf, '-', tag)
	for div := 100000; div >= 1; div /= 10 {
		buf = append(buf, byte('0'+(i/div)%10))
	}
	return string(buf)
}

// buildSpecs draws every drive's cohort assignment from the master RNG
// in the fixed vendor/serial order, along with the per-vendor stats
// skeletons. The draw sequence is shared by Simulate and SimulateFrame,
// so the two produce identical fleets for a configuration.
func buildSpecs(cfg *Config, master *rand.Rand) ([]driveSpec, []VendorStats) {
	var specs []driveSpec
	var allStats []VendorStats
	for vi := range cfg.Vendors {
		v := &cfg.Vendors[vi]
		nFaulty := int(math.Round(float64(v.Failures) * cfg.FailureScale))
		if nFaulty < 1 {
			nFaulty = 1
		}
		nHealthy := nFaulty * cfg.HealthyPerFaulty
		stats := VendorStats{
			Name:                    v.Name,
			Population:              v.Population,
			Failures:                nFaulty,
			NominalFailures:         v.Failures,
			SampledHealthy:          nHealthy,
			FailuresByFirmwareSeq:   make(map[int]int),
			PopulationByFirmwareSeq: make(map[int]float64),
		}
		for _, rel := range v.Firmware.Releases() {
			stats.PopulationByFirmwareSeq[rel.Seq] = rel.ShipShare * float64(v.Population)
		}
		si := len(allStats)
		allStats = append(allStats, stats)

		for i := 0; i < nFaulty; i++ {
			k := kindFaulty
			if master.Float64() < cfg.SuddenShare {
				k = kindSudden
			}
			// Failures spread uniformly over the window, but not in
			// the first week: a drive must have some history to be
			// observable at all.
			specs = append(specs, driveSpec{
				sn:      serialNumber(v.Name, 'F', i),
				vendor:  vi,
				stats:   si,
				kind:    k,
				failDay: 7 + master.Intn(cfg.Days-7),
			})
		}
		for i := 0; i < nHealthy; i++ {
			k := kindHealthy
			switch u := master.Float64(); {
			case u < cfg.SmartNoiseShare:
				k = kindSmartNoise
			case u < cfg.SmartNoiseShare+cfg.BurstShare:
				k = kindBurst
			}
			specs = append(specs, driveSpec{
				sn:      serialNumber(v.Name, 'H', i),
				vendor:  vi,
				stats:   si,
				kind:    k,
				failDay: -1,
			})
		}
	}
	return specs, allStats
}

// simulateDrive runs one drive through the window and returns its
// telemetry, ground truth, and (for faulty drives) its trouble ticket.
// It draws only from the drive's own serial-number-seeded RNG, so it is
// safe to call concurrently for different drives.
func simulateDrive(sn string, v *VendorSpec, k kind, failDay int, cfg *Config, causes []ticket.Cause, causeWeights []float64) driveOutput {
	r := driveRNG(cfg.Seed, sn)
	d := newDriveState(r, sn, v, k, failDay, cfg)
	if d.kind == kindBurst {
		d.burstStart = r.Intn(cfg.Days)
	}
	d.placeEpisodes(r, cfg.Days)

	lastDay := cfg.Days - 1
	if d.failDay >= 0 {
		lastDay = d.failDay
	}
	// Some users abandon a flaky machine before it dies outright, so
	// telemetry ends early and the gap to the eventual ticket widens.
	abandoned := false
	if d.failDay >= 0 && cfg.AbandonShare > 0 && r.Float64() < cfg.AbandonShare {
		abandoned = true
		lastDay -= 1 + r.Intn(cfg.AbandonMaxDays)
		if lastDay < 0 {
			lastDay = 0
		}
	}
	out := driveOutput{records: make([]dataset.Record, 0, lastDay+1)}
	var failHours float64
	for day := 0; day <= lastDay; day++ {
		powered := r.Float64() < d.usage.onProb[day%7]
		// The machine is certainly on the day it dies: the failure is
		// what the user notices. (Unless the user already gave up on it.)
		if day == d.failDay && !abandoned {
			powered = true
		}
		if !powered {
			continue
		}
		rec := d.stepDay(r, day, cfg)
		out.records = append(out.records, rec)
		if d.failDay >= 0 {
			// The age at the last observation approximates the age at
			// death (exact when the final record lands on the failure
			// day, which it does unless the user abandoned the machine).
			failHours = rec.Smart.Get(smartattr.PowerOnHours)
		}
	}

	out.truth = DriveTruth{
		SerialNumber:     sn,
		Vendor:           v.Name,
		Model:            d.model.Name,
		Firmware:         string(d.fw.Version),
		FirmwareSeq:      d.fw.Seq,
		Faulty:           k.Faulty(),
		Sudden:           k == kindSudden,
		FailDay:          d.failDay,
		FailPowerOnHours: failHours,
		Kind:             k.String(),
	}

	if k.Faulty() {
		out.fwSeq = d.fw.Seq
		delay := geometricDelay(r, cfg.TicketDelayMeanDays, cfg.TicketDelayMaxDays)
		cause := weightedIndex(r, causeWeights)
		out.ticket = ticket.Ticket{
			SerialNumber: sn,
			IMT:          d.failDay + delay,
			Cause:        cause,
			Description:  causes[cause].Name,
		}
	}
	return out
}
