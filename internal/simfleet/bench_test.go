package simfleet

import "testing"

func BenchmarkSimulateTinyFleet(b *testing.B) {
	cfg := TinyConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Data.Len() == 0 {
			b.Fatal("empty fleet")
		}
	}
}

func BenchmarkDriveDay(b *testing.B) {
	cfg := TinyConfig()
	r := driveRNG(cfg.Seed, "bench-drive")
	v := cfg.Vendors[0]
	d := newDriveState(r, "bench-drive", &v, kindFaulty, 80, &cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.stepDay(r, i%cfg.Days, &cfg)
	}
}
