package simfleet

import "testing"

func BenchmarkSimulateTinyFleet(b *testing.B) {
	cfg := TinyConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Data.Len() == 0 {
			b.Fatal("empty fleet")
		}
	}
}

// BenchmarkSimulateWorkers compares the serial drive loop against the
// full fan-out; outputs are bit-identical, only wall-clock differs.
func BenchmarkSimulateWorkers(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := TinyConfig()
			cfg.Workers = bc.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Data.Len() == 0 {
					b.Fatal("empty fleet")
				}
			}
		})
	}
}

// BenchmarkSimulateFrameTinyFleet is the columnar counterpart of
// BenchmarkSimulateTinyFleet: telemetry lands directly in one arena.
func BenchmarkSimulateFrameTinyFleet(b *testing.B) {
	cfg := TinyConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateFrame(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Frame.Len() == 0 {
			b.Fatal("empty fleet")
		}
	}
}

func BenchmarkDriveDay(b *testing.B) {
	cfg := TinyConfig()
	r := driveRNG(cfg.Seed, "bench-drive")
	v := cfg.Vendors[0]
	d := newDriveState(r, "bench-drive", &v, kindFaulty, 80, &cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.stepDay(r, i%cfg.Days, &cfg)
	}
}
