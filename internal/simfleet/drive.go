package simfleet

import (
	"math"
	"math/rand"

	"repro/internal/firmware"
)

// kind classifies a simulated drive's trajectory.
type kind int

const (
	kindHealthy kind = iota
	// kindSmartNoise is a healthy drive that accumulates benign SMART
	// wear (media errors, mild spare depletion) but never fails.
	kindSmartNoise
	// kindBurst is a healthy drive that suffers one short transient
	// error burst (loose connector, OS bug).
	kindBurst
	// kindFaulty fails inside the window with a degradation ramp.
	kindFaulty
	// kindSudden fails inside the window with no precursor signal.
	kindSudden
)

// String names the kind for ground-truth reports.
func (k kind) String() string {
	switch k {
	case kindHealthy:
		return "healthy"
	case kindSmartNoise:
		return "smart-noise"
	case kindBurst:
		return "burst"
	case kindFaulty:
		return "faulty"
	case kindSudden:
		return "faulty-sudden"
	default:
		return "unknown"
	}
}

// Faulty reports whether the drive fails during the window.
func (k kind) Faulty() bool { return k == kindFaulty || k == kindSudden }

// userClass captures the power-on behaviour of the machine's owner —
// the source of telemetry discontinuity in consumer storage systems.
type userClass int

const (
	userOffice userClass = iota // weekday-heavy schedule
	userHome                    // sparse everyday use
	userHeavy                   // near-daily long sessions
)

// usageProfile is the realised schedule of one machine.
type usageProfile struct {
	class userClass
	// onProb[i] is the probability the machine powers on, for weekday
	// i (0..4 weekdays, 5..6 weekend).
	onProb [7]float64
	// hoursMean is the mean powered-on hours per active day.
	hoursMean float64
	// writeGBPerHour and readGBPerHour drive the workload counters.
	writeGBPerHour float64
	readGBPerHour  float64
}

// sampleUsage draws a usage profile. The class mix keeps roughly half
// the fleet on office-like weekday schedules, which produces the 2–3
// day weekend gaps and occasional long holes seen in Fig. 6.
func sampleUsage(r *rand.Rand) usageProfile {
	var p usageProfile
	switch u := r.Float64(); {
	case u < 0.45:
		p.class = userOffice
		wk := 0.82 + 0.13*r.Float64()
		we := 0.08 + 0.15*r.Float64()
		p.onProb = [7]float64{wk, wk, wk, wk, wk, we, we}
		p.hoursMean = 6 + 3*r.Float64()
		p.writeGBPerHour = 1.5 + r.Float64()
		p.readGBPerHour = 3 + 2*r.Float64()
	case u < 0.80:
		p.class = userHome
		on := 0.35 + 0.30*r.Float64()
		p.onProb = [7]float64{on, on, on, on, on, on + 0.1, on + 0.1}
		p.hoursMean = 2 + 2*r.Float64()
		p.writeGBPerHour = 0.8 + 0.8*r.Float64()
		p.readGBPerHour = 2 + 2*r.Float64()
	default:
		p.class = userHeavy
		on := 0.80 + 0.15*r.Float64()
		p.onProb = [7]float64{on, on, on, on, on, on, on}
		p.hoursMean = 5 + 4*r.Float64()
		p.writeGBPerHour = 3 + 3*r.Float64()
		p.readGBPerHour = 6 + 4*r.Float64()
	}
	return p
}

// expectedDailyHours returns the long-run mean powered hours per
// calendar day, used to reconcile power-on-hour ages with calendar time.
func (p *usageProfile) expectedDailyHours() float64 {
	var on float64
	for _, q := range p.onProb {
		on += q
	}
	return on / 7 * p.hoursMean
}

// driveState is the evolving simulation state of one drive.
type driveState struct {
	sn     string
	vendor string
	model  ModelSpec
	fw     firmware.Release
	kind   kind
	usage  usageProfile

	// failDay is the calendar day (window-relative) the drive dies;
	// -1 for drives that survive the window.
	failDay int
	// prefail is the length of the degradation ramp in days.
	prefail int

	// SMART counter state.
	hours       float64 // power-on hours
	cycles      float64 // power cycles
	unitsRead   float64 // 512,000-byte data units read
	unitsWrite  float64
	hostReads   float64
	hostWrites  float64
	busyMin     float64
	mediaErr    float64
	errLog      float64
	extraErrLog float64
	spare       float64 // percent
	unsafeShut  float64
	critWarn    float64

	// Degradation parameters.
	peakMediaPerDay float64 // media error rate at full ramp
	spareDrop       float64 // total spare percentage lost at failure
	noiseMediaRate  float64 // benign media error rate (smart-noise cohort)
	noiseSpareRate  float64 // benign daily spare loss
	weakSmart       bool    // failure with near-silent SMART counters
	// wScale and bScale attenuate a faulty drive's W/B emission: not
	// every failing drive is equally chatty on every channel, so the
	// W-only and B-only feature groups each miss some failures that the
	// other channel (or SMART) still catches.
	wScale float64
	bScale float64
	// episodes are SMART "scares" on severe-noise drives: degradation
	// ramps drawn from the same generator as real pre-failure ramps,
	// but with quiet W/B channels and no failure. They are the dominant
	// source of SMART-only false positives.
	episodes []episode

	// Burst parameters (kindBurst only).
	burstStart int
	burstLen   int

	// maxHours is the wear-out scale for bathtub sampling.
	maxHours float64
}

// maxPowerOnHours is the wear-out horizon of the fleet in power-on
// hours: the upper edge of the Fig. 2 histogram.
const maxPowerOnHours = 30000

// newDriveState initialises a drive of the given kind. failDay must be
// in [0, days) for faulty kinds and is ignored otherwise.
func newDriveState(r *rand.Rand, sn string, v *VendorSpec, k kind, failDay int, cfg *Config) *driveState {
	d := &driveState{
		sn:       sn,
		vendor:   v.Name,
		kind:     k,
		usage:    sampleUsage(r),
		failDay:  -1,
		prefail:  cfg.PrefailWindowDays,
		spare:    100,
		maxHours: maxPowerOnHours,
	}

	// Model by population share. The weight buffers below are sized for
	// any realistic catalogue and stay on the stack (weightedIndex only
	// reads them); append falls back to the heap past the cap.
	var wbuf [8]float64
	weights := wbuf[:0]
	for i := range v.Models {
		weights = append(weights, v.Models[i].Share)
	}
	d.model = v.Models[weightedIndex(r, weights)]

	// Firmware: healthy drives sample by ship share; faulty drives by
	// ship share × hazard multiplier, which is Bayes' rule for
	// P(firmware | failed) and reproduces Fig. 3's per-release failure
	// rates without per-day hazard integration.
	var fwbuf [8]float64
	fwWeights := fwbuf[:0]
	for i, n := 0, v.Firmware.Len(); i < n; i++ {
		rel := v.Firmware.At(i)
		if k.Faulty() {
			fwWeights = append(fwWeights, rel.ShipShare*rel.HazardMultiplier)
		} else {
			fwWeights = append(fwWeights, rel.ShipShare)
		}
	}
	d.fw = v.Firmware.At(weightedIndex(r, fwWeights))

	// Age initialisation. Faulty drives sample the power-on-hour age at
	// death from the bathtub curve and back-date their birth so the
	// recorded PowerOnHours at failure equals that age; healthy drives
	// get a uniform age.
	dailyHours := d.usage.expectedDailyHours()
	if k.Faulty() {
		d.failDay = failDay
		failHours := bathtubFailureHours(r, d.maxHours)
		d.hours = failHours - dailyHours*float64(failDay)
		if d.hours < 0 {
			d.hours = failHours * r.Float64() * 0.1
		}
	} else {
		ageDays := r.Float64() * 1100
		d.hours = ageDays * dailyHours
		if d.hours > d.maxHours*0.95 {
			d.hours = d.maxHours * 0.95
		}
	}

	// Derive the other counters from the initial age.
	activeDays := d.hours / math.Max(dailyHours, 0.1) * (sumProb(d.usage.onProb) / 7)
	d.cycles = activeDays * (1.2 + 0.6*r.Float64())
	gbWritten := d.hours * d.usage.writeGBPerHour
	gbRead := d.hours * d.usage.readGBPerHour
	d.unitsWrite = gbWritten * unitsPerGB
	d.unitsRead = gbRead * unitsPerGB
	d.hostWrites = d.unitsWrite * (28 + 8*r.Float64())
	d.hostReads = d.unitsRead * (30 + 8*r.Float64())
	d.busyMin = d.hours * (2 + 2*r.Float64())
	d.unsafeShut = activeDays * 0.01 * (1 + r.Float64())

	// Degradation parameters. The SMART signatures of the faulty and
	// smart-noise cohorts deliberately overlap: production SMART data
	// separates failing drives only imperfectly (the paper's S-only
	// baseline reaches ~94% TPR at ~4% FPR), while the W/B channels
	// stay clean for the noise cohort.
	ageDays := d.hours / math.Max(dailyHours, 0.1)
	switch k {
	case kindFaulty:
		d.wScale = 0.35 + 0.95*r.Float64()
		d.bScale = 0.25 + 1.05*r.Float64()
		if r.Float64() < weakSmartShare {
			// Weak-SMART failures: the controller is dying but the
			// media counters barely move — only the system-level W/B
			// channels betray these drives. They cap the TPR any
			// SMART-only model can reach.
			d.weakSmart = true
			d.peakMediaPerDay = 0.3 + 0.6*r.Float64()
			d.spareDrop = 0
		} else {
			d.peakMediaPerDay, d.spareDrop = sampleRampParams(r)
			// Real failures degrade somewhat harder than scares on
			// average — the extra margin a SMART-only model can use.
			d.peakMediaPerDay *= 1.6
		}
		// Lifetime background media errors accumulated before the window.
		d.mediaErr = float64(poisson(r, ageDays*0.004))
	case kindSmartNoise:
		if r.Float64() < severeNoiseShare {
			// Severe noise: 1–2 scare episodes whose SMART trajectory
			// is drawn from the same distribution as a real
			// pre-failure ramp.
			n := 1 + r.Intn(2)
			for i := 0; i < n; i++ {
				peak, drop := sampleRampParams(r)
				ep := episode{
					// Starts are drawn by placeEpisodes once the
					// window length is known.
					length:    cfg.PrefailWindowDays,
					peakMedia: peak,
					spareDrop: drop * 0.8,
				}
				if r.Float64() < fullStackScareShare {
					ep.wbScale = 0.25 + 0.45*r.Float64()
				}
				d.episodes = append(d.episodes, ep)
			}
			d.noiseMediaRate = 0.03 + 0.10*r.Float64()
			d.noiseSpareRate = 0.005 + 0.02*r.Float64()
		} else {
			d.noiseMediaRate = 0.01 + 0.06*r.Float64()
			d.noiseSpareRate = 0.002 + 0.01*r.Float64()
		}
		d.mediaErr = float64(poisson(r, ageDays*d.noiseMediaRate*0.6))
		d.spare = math.Max(75, 100-ageDays*d.noiseSpareRate*0.4)
	case kindBurst:
		d.burstLen = 4 + r.Intn(7)
		d.mediaErr = float64(poisson(r, ageDays*0.004))
	default:
		d.mediaErr = float64(poisson(r, ageDays*0.002))
	}
	d.extraErrLog = float64(poisson(r, ageDays*0.01))
	return d
}

// episode is one SMART scare on a severe-noise drive.
type episode struct {
	start     int
	length    int
	peakMedia float64
	spareDrop float64
	// wbScale, when positive, turns the scare "full-stack": the episode
	// also drives the W/B channels at faulty-like rates (a loose
	// connector or overheating bay mimics a dying drive on every
	// channel until it is fixed). These are the false positives even an
	// SFWB model cannot avoid.
	wbScale float64
}

// placeEpisodes assigns episode start days across the window.
func (d *driveState) placeEpisodes(r *rand.Rand, days int) {
	for i := range d.episodes {
		d.episodes[i].start = r.Intn(days)
	}
}

// sampleRampParams draws the media-error peak rate and spare loss of a
// degradation ramp; used identically for real pre-failure ramps and
// scare episodes so a SMART-only model cannot tell them apart.
func sampleRampParams(r *rand.Rand) (peakMedia, spareDrop float64) {
	peakMedia = 2 + 6*r.Float64()
	if r.Float64() < 0.10 {
		spareDrop = 0
	} else {
		spareDrop = 6 + 22*r.Float64()
	}
	return peakMedia, spareDrop
}

// weakSmartShare is the fraction of (non-sudden) failures whose SMART
// counters barely react before death.
const weakSmartShare = 0.03

// severeNoiseShare is the fraction of the smart-noise cohort with
// scare episodes.
const severeNoiseShare = 0.5

// fullStackScareShare is the fraction of scare episodes that also hit
// the W/B channels.
const fullStackScareShare = 0.12

// wbEpisodeRamp returns the strongest full-stack episode ramp active on
// day and its W/B intensity scale (0 when none).
func (d *driveState) wbEpisodeRamp(day int) (ramp, scale float64) {
	for i := range d.episodes {
		ep := &d.episodes[i]
		if ep.wbScale == 0 || day < ep.start || day >= ep.start+ep.length {
			continue
		}
		er := float64(day-ep.start+1) / float64(ep.length)
		if er*ep.wbScale > ramp*scale {
			ramp, scale = er, ep.wbScale
		}
	}
	return ramp, scale
}

// smartRamp returns the strongest active degradation ramp on day and
// its parameters: the real pre-failure ramp for faulty drives, or a
// scare episode for severe-noise drives. ok is false when no ramp is
// active.
func (d *driveState) smartRamp(day int) (ramp, peakMedia, spareDrop float64, ok bool) {
	if f := d.ramp(day); f > 0 {
		return f, d.peakMediaPerDay, d.spareDrop, true
	}
	for i := range d.episodes {
		ep := &d.episodes[i]
		if day < ep.start || day >= ep.start+ep.length {
			continue
		}
		er := float64(day-ep.start+1) / float64(ep.length)
		if er > ramp {
			ramp, peakMedia, spareDrop, ok = er, ep.peakMedia, ep.spareDrop, true
		}
	}
	return ramp, peakMedia, spareDrop, ok
}

// unitsPerGB converts gigabytes to NVMe data units (512,000 bytes).
const unitsPerGB = 1e9 / 512000

func sumProb(p [7]float64) float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// ramp returns the degradation ramp value in [0,1] on calendar day.
// Zero for drives without a precursor ramp.
func (d *driveState) ramp(day int) float64 {
	if d.kind != kindFaulty || d.failDay < 0 {
		return 0
	}
	start := d.failDay - d.prefail
	if day <= start {
		return 0
	}
	if day >= d.failDay {
		return 1
	}
	return float64(day-start) / float64(d.prefail)
}

// inBurst reports whether day falls inside a burst drive's transient
// error burst.
func (d *driveState) inBurst(day int) bool {
	return d.kind == kindBurst && day >= d.burstStart && day < d.burstStart+d.burstLen
}
