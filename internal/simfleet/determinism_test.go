package simfleet

import (
	"reflect"
	"testing"
)

// TestSimulateWorkersIdentical asserts the parallel drive fan-out is
// bit-identical to serial execution: every drive draws its trajectory
// from a private FNV-seeded RNG, so only the merge order could differ,
// and the merge replays the serial spec order.
func TestSimulateWorkersIdentical(t *testing.T) {
	cfg := TinyConfig()
	cfg.Workers = 1
	want, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8} {
		cfg := TinyConfig()
		cfg.Workers = w
		got, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got.Data.SerialNumbers(), want.Data.SerialNumbers()) {
			t.Fatalf("workers=%d: drive insertion order differs", w)
		}
		for _, sn := range want.Data.SerialNumbers() {
			ws, _ := want.Data.Series(sn)
			gs, _ := got.Data.Series(sn)
			if !reflect.DeepEqual(gs.Records, ws.Records) {
				t.Fatalf("workers=%d: drive %s telemetry differs", w, sn)
			}
		}
		if !reflect.DeepEqual(got.Truth, want.Truth) {
			t.Fatalf("workers=%d: ground truth differs", w)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("workers=%d: vendor stats differ", w)
		}
		if got.Tickets.Len() != want.Tickets.Len() {
			t.Fatalf("workers=%d: %d tickets, want %d", w, got.Tickets.Len(), want.Tickets.Len())
		}
		if !reflect.DeepEqual(got.Tickets.SerialNumbers(), want.Tickets.SerialNumbers()) {
			t.Fatalf("workers=%d: ticket order differs", w)
		}
		for _, sn := range want.Tickets.SerialNumbers() {
			if !reflect.DeepEqual(got.Tickets.Lookup(sn), want.Tickets.Lookup(sn)) {
				t.Fatalf("workers=%d: tickets for %s differ", w, sn)
			}
		}
	}
}
