package simfleet

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/smartattr"
)

// fleetForMechanisms simulates once with enough drives to observe every
// cohort.
var mechFleet *Result

func mechanisms(t *testing.T) *Result {
	t.Helper()
	if mechFleet == nil {
		cfg := DefaultConfig()
		cfg.Days = 120
		cfg.FailureScale = 0.08
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mechFleet = res
	}
	return mechFleet
}

// wbTotal sums a series' W and B activity.
func wbTotal(s *dataset.DriveSeries) (w, b float64) {
	for i := range s.Records {
		w += s.Records[i].WCounts.Total()
		b += s.Records[i].BCounts.Total()
	}
	return w, b
}

func TestSmartNoiseCohortExists(t *testing.T) {
	res := mechanisms(t)
	// The smart-noise cohort must accumulate media errors rivalling
	// faulty drives while staying quiet on W/B — the mechanism that
	// caps the SMART-only model.
	noisyQuiet := 0
	for sn, truth := range res.Truth {
		if truth.Kind != "smart-noise" {
			continue
		}
		s, ok := res.Data.Series(sn)
		if !ok || len(s.Records) == 0 {
			continue
		}
		last := &s.Records[len(s.Records)-1]
		w, b := wbTotal(s)
		if last.Smart.Get(smartattr.MediaErrors) > 10 && w+b < 3 {
			noisyQuiet++
		}
	}
	if noisyQuiet < 10 {
		t.Fatalf("only %d quiet smart-noise drives; the S-vs-SFWB contrast needs them", noisyQuiet)
	}
}

func TestFaultyDrivesHaveStrongerWB(t *testing.T) {
	res := mechanisms(t)
	var faultyMean, healthyMean float64
	var nf, nh int
	for sn, truth := range res.Truth {
		s, ok := res.Data.Series(sn)
		if !ok {
			continue
		}
		w, b := wbTotal(s)
		switch truth.Kind {
		case "faulty":
			faultyMean += w + b
			nf++
		case "healthy":
			healthyMean += w + b
			nh++
		}
	}
	if nf == 0 || nh == 0 {
		t.Skip("cohorts missing")
	}
	faultyMean /= float64(nf)
	healthyMean /= float64(nh)
	if faultyMean < 10*(healthyMean+0.1) {
		t.Fatalf("faulty W/B mean %g not clearly above healthy %g", faultyMean, healthyMean)
	}
}

func TestBurstCohortIsTransient(t *testing.T) {
	res := mechanisms(t)
	seen := 0
	for sn, truth := range res.Truth {
		if truth.Kind != "burst" {
			continue
		}
		s, ok := res.Data.Series(sn)
		if !ok {
			continue
		}
		w, _ := wbTotal(s)
		if w > 0 {
			seen++
		}
	}
	if seen < 5 {
		t.Fatalf("only %d burst drives show W activity", seen)
	}
}

func TestDriftFactor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DriftStartDay = 100
	cfg.DriftMonthlyFactor = 2
	if got := driftFactor(&cfg, 50); got != 1 {
		t.Fatalf("pre-drift factor = %g", got)
	}
	if got := driftFactor(&cfg, 100); got != 1 {
		t.Fatalf("drift-start factor = %g", got)
	}
	if got := driftFactor(&cfg, 130); got != 2 {
		t.Fatalf("one-month factor = %g, want 2", got)
	}
	cfg.DriftStartDay = -1
	if got := driftFactor(&cfg, 500); got != 1 {
		t.Fatalf("disabled drift factor = %g", got)
	}
}

func TestTemperatureStaysPhysical(t *testing.T) {
	res := mechanisms(t)
	res.Data.Each(func(s *dataset.DriveSeries) {
		for i := range s.Records {
			temp := s.Records[i].Smart.Get(smartattr.CompositeTemperature)
			if temp < 273 || temp > 400 {
				t.Fatalf("drive %s temperature %gK is unphysical", s.SerialNumber, temp)
			}
		}
	})
}

func TestSpareBounded(t *testing.T) {
	res := mechanisms(t)
	res.Data.Each(func(s *dataset.DriveSeries) {
		for i := range s.Records {
			spare := s.Records[i].Smart.Get(smartattr.AvailableSpare)
			if spare < 0 || spare > 100 {
				t.Fatalf("drive %s spare %g%% out of range", s.SerialNumber, spare)
			}
		}
	})
}
