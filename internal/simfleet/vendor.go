package simfleet

import (
	"fmt"

	"repro/internal/firmware"
)

// ModelSpec describes one drive model of a vendor.
type ModelSpec struct {
	// Name is the model designator, unique within the vendor.
	Name string
	// CapacityGB is the drive capacity.
	CapacityGB float64
	// Layers is the 3D NAND layer count (32–96 in the studied fleet).
	Layers int
	// Share is the model's fraction of the vendor population; a
	// vendor's model shares sum to 1.
	Share float64
	// EnduranceTBW is the rated endurance in terabytes written, used to
	// derive the PercentageUsed SMART attribute.
	EnduranceTBW float64
}

// VendorSpec describes one vendor population (a row of Table VI).
type VendorSpec struct {
	// Name is the vendor label ("I".."IV" in the paper).
	Name string
	// Models lists the vendor's drive models.
	Models []ModelSpec
	// Firmware is the vendor's release registry; per Observation #2,
	// drives mostly stay on the release they shipped with, and earlier
	// releases carry larger hazard multipliers.
	Firmware *firmware.Registry
	// Population is the nominal fleet size (Table VI's Total column).
	// Replacement rates are computed against this number even though
	// only a subsample of healthy drives is materialised.
	Population int
	// Failures is the nominal failure count over the full study window
	// (Table VI's Sum_failure), before Config.FailureScale.
	Failures int
}

// ReplacementRate returns the vendor's nominal replacement rate
// (failures / population), Table VI's Sum_RR.
func (v *VendorSpec) ReplacementRate() float64 {
	if v.Population == 0 {
		return 0
	}
	return float64(v.Failures) / float64(v.Population)
}

// Validate reports spec errors.
func (v *VendorSpec) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("vendor has empty name")
	}
	if v.Population <= 0 {
		return fmt.Errorf("vendor %s: population %d must be > 0", v.Name, v.Population)
	}
	if v.Failures < 0 {
		return fmt.Errorf("vendor %s: failures %d must be ≥ 0", v.Name, v.Failures)
	}
	if v.Firmware == nil {
		return fmt.Errorf("vendor %s: nil firmware registry", v.Name)
	}
	if len(v.Models) == 0 {
		return fmt.Errorf("vendor %s: no models", v.Name)
	}
	var share float64
	seen := make(map[string]bool, len(v.Models))
	for _, m := range v.Models {
		if m.Name == "" {
			return fmt.Errorf("vendor %s: model with empty name", v.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("vendor %s: duplicate model %s", v.Name, m.Name)
		}
		seen[m.Name] = true
		if m.CapacityGB <= 0 {
			return fmt.Errorf("vendor %s: model %s capacity %g must be > 0", v.Name, m.Name, m.CapacityGB)
		}
		if m.Share < 0 {
			return fmt.Errorf("vendor %s: model %s share %g must be ≥ 0", v.Name, m.Name, m.Share)
		}
		if m.EnduranceTBW <= 0 {
			return fmt.Errorf("vendor %s: model %s endurance %g must be > 0", v.Name, m.Name, m.EnduranceTBW)
		}
		share += m.Share
	}
	if share < 1-1e-6 || share > 1+1e-6 {
		return fmt.Errorf("vendor %s: model shares sum to %g, want 1", v.Name, share)
	}
	return nil
}

// DefaultVendors reproduces the fleet of Table VI: four vendors, twelve
// models (128 GB–1 TB, 32–96 layer 3D TLC), populations and failure
// counts matching the paper, and firmware release ladders matching
// Fig. 3 (vendor I has 5 releases, II has 3, III and IV have 2; earlier
// releases fail more).
func DefaultVendors() []VendorSpec {
	return []VendorSpec{
		{
			Name: "I",
			Models: []ModelSpec{
				{Name: "I-A128", CapacityGB: 128, Layers: 32, Share: 0.20, EnduranceTBW: 75},
				{Name: "I-B256", CapacityGB: 256, Layers: 64, Share: 0.35, EnduranceTBW: 150},
				{Name: "I-C512", CapacityGB: 512, Layers: 64, Share: 0.30, EnduranceTBW: 300},
				{Name: "I-D1024", CapacityGB: 1024, Layers: 96, Share: 0.15, EnduranceTBW: 600},
			},
			Firmware: firmware.MustNewRegistry("I", []firmware.Release{
				{Version: "IFW1000", Seq: 1, HazardMultiplier: 3.2, ShipShare: 0.12},
				{Version: "IFW1100", Seq: 2, HazardMultiplier: 2.4, ShipShare: 0.18},
				{Version: "IFW1200", Seq: 3, HazardMultiplier: 1.3, ShipShare: 0.25},
				{Version: "IFW1300", Seq: 4, HazardMultiplier: 0.8, ShipShare: 0.25},
				{Version: "IFW1400", Seq: 5, HazardMultiplier: 0.5, ShipShare: 0.20},
			}),
			Population: 270325,
			Failures:   1850,
		},
		{
			Name: "II",
			Models: []ModelSpec{
				{Name: "II-A256", CapacityGB: 256, Layers: 64, Share: 0.40, EnduranceTBW: 150},
				{Name: "II-B512", CapacityGB: 512, Layers: 96, Share: 0.40, EnduranceTBW: 300},
				{Name: "II-C1024", CapacityGB: 1024, Layers: 96, Share: 0.20, EnduranceTBW: 600},
			},
			Firmware: firmware.MustNewRegistry("II", []firmware.Release{
				{Version: "2.0E", Seq: 1, HazardMultiplier: 1.9, ShipShare: 0.30},
				{Version: "2.1E", Seq: 2, HazardMultiplier: 1.0, ShipShare: 0.40},
				{Version: "2.2E", Seq: 3, HazardMultiplier: 0.6, ShipShare: 0.30},
			}),
			Population: 1001278,
			Failures:   669,
		},
		{
			Name: "III",
			Models: []ModelSpec{
				{Name: "III-A128", CapacityGB: 128, Layers: 32, Share: 0.25, EnduranceTBW: 75},
				{Name: "III-B256", CapacityGB: 256, Layers: 64, Share: 0.45, EnduranceTBW: 150},
				{Name: "III-C512", CapacityGB: 512, Layers: 96, Share: 0.30, EnduranceTBW: 300},
			},
			Firmware: firmware.MustNewRegistry("III", []firmware.Release{
				{Version: "S3A00101", Seq: 1, HazardMultiplier: 1.6, ShipShare: 0.45},
				{Version: "S3A00201", Seq: 2, HazardMultiplier: 0.5, ShipShare: 0.55},
			}),
			Population: 908037,
			Failures:   463,
		},
		{
			Name: "IV",
			Models: []ModelSpec{
				{Name: "IV-A256", CapacityGB: 256, Layers: 64, Share: 0.60, EnduranceTBW: 150},
				{Name: "IV-B512", CapacityGB: 512, Layers: 96, Share: 0.40, EnduranceTBW: 300},
			},
			Firmware: firmware.MustNewRegistry("IV", []firmware.Release{
				{Version: "41.00A", Seq: 1, HazardMultiplier: 1.5, ShipShare: 0.55},
				{Version: "42.00A", Seq: 2, HazardMultiplier: 0.39, ShipShare: 0.45},
			}),
			Population: 152405,
			Failures:   172,
		},
	}
}
