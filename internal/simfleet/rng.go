package simfleet

import (
	"math"
	"math/rand"
	"sync"
)

// driveRNGSeed derives a drive's RNG seed from the run seed and its
// serial number: FNV-1a inlined (bit-identical to hash/fnv) so the hot
// path neither allocates a hasher nor copies the string to []byte.
func driveRNGSeed(seed int64, sn string) int64 {
	h := uint64(14695981039346656037) // FNV-1a 64-bit offset basis
	for i := 0; i < len(sn); i++ {
		h ^= uint64(sn[i])
		h *= 1099511628211 // FNV-1a 64-bit prime
	}
	return seed ^ int64(h)
}

// driveRNG returns a deterministic per-drive random source so that a
// drive's trajectory does not depend on how many other drives exist or
// the order they are generated in.
func driveRNG(seed int64, sn string) *rand.Rand {
	return rand.New(rand.NewSource(driveRNGSeed(seed, sn)))
}

// rngPool recycles per-drive RNGs for the frame simulation path:
// (*Rand).Seed resets a pooled generator to the exact stream a fresh
// rand.New(rand.NewSource(seed)) would produce, without the two
// allocations per drive.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation above 30,
// which is plenty for per-day event counts.
func poisson(r *rand.Rand, mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean > 30:
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	return poissonSmall(r, math.Exp(-mean))
}

// poissonSmall is Knuth's method with exp(-mean) precomputed. Callers
// with steady-state means (the background emission rates, drawn once
// per drive-day across the whole fleet) cache the exponential and skip
// the math.Exp call that dominated the simulation profile; the draw
// sequence is identical because the cached value is the same
// math.Exp(-mean) the direct path computes.
func poissonSmall(r *rand.Rand, expNegMean float64) int {
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= expNegMean {
			return k
		}
		k++
	}
}

// geometricDelay draws a non-negative integer with the given mean,
// truncated at max. A zero mean always yields zero.
func geometricDelay(r *rand.Rand, mean float64, max int) int {
	if mean <= 0 || max <= 0 {
		return 0
	}
	// Geometric on {0,1,...} with success probability p has mean (1-p)/p.
	p := 1 / (mean + 1)
	d := 0
	for r.Float64() > p && d < max {
		d++
	}
	return d
}

// weightedIndex picks an index with probability proportional to
// weights[i]. All-zero weights pick uniformly.
func weightedIndex(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// bathtubFailureHours samples the power-on-hour age at which a faulty
// drive dies, following the bathtub curve of Observation #1 / Fig. 2:
// an infant-mortality spike, a flat useful-life region, and a rising
// wear-out tail.
func bathtubFailureHours(r *rand.Rand, maxHours float64) float64 {
	switch u := r.Float64(); {
	case u < 0.30: // infant mortality: exponential near zero
		h := r.ExpFloat64() * (maxHours * 0.03)
		if h > maxHours {
			h = maxHours
		}
		return h
	case u < 0.60: // useful life: uniform low plateau
		return r.Float64() * maxHours
	default: // wear-out: density rising as h^3 toward maxHours
		return maxHours * math.Pow(r.Float64(), 1.0/4.0)
	}
}
