// Package simfleet simulates a production consumer-storage-system (CSS)
// fleet: a population of M.2 NVMe SSDs inside user machines that power
// on irregularly, emit SMART telemetry, Windows events, and blue-screen
// stop codes, and occasionally fail and get replaced through after-sales
// tickets.
//
// The simulator substitutes for the paper's proprietary 2.3-million-drive
// dataset. It is built top-down from the paper's own observations:
//
//   - failure ages follow a bathtub curve over power-on hours (Fig. 2);
//   - earlier firmware releases carry higher failure rates (Fig. 3);
//   - faulty drives ramp up WindowsEvent and BSOD activity in a window
//     before the eventual failure (Figs. 4–5), while healthy drives see
//     only background noise;
//   - telemetry is discontinuous because users do not power machines on
//     daily (Fig. 6);
//   - tickets record the initial maintenance time, which lags the real
//     failure by a user-dependent delay (the θ problem, Fig. 7).
//
// Every run is deterministic given Config.Seed.
package simfleet

import (
	"fmt"
)

// Config controls one fleet simulation.
type Config struct {
	// Seed drives all randomness. Equal configs produce equal fleets.
	Seed int64

	// Days is the length of the observation window in days.
	Days int

	// Vendors lists the drive populations to simulate. Defaults to the
	// paper's Table VI via DefaultVendors when nil.
	Vendors []VendorSpec

	// FailureScale multiplies every vendor's failure count, so
	// experiments can trade accuracy of rate estimates against runtime.
	// 1.0 reproduces the vendor spec counts.
	FailureScale float64

	// HealthyPerFaulty is how many healthy drives are materialised per
	// faulty drive. The nominal population (for replacement-rate math)
	// stays at the vendor spec's Population; only the telemetry of this
	// subsample is generated, mirroring the paper's negative
	// under-sampling.
	HealthyPerFaulty int

	// PrefailWindowDays is how many days before failure degradation
	// signals start ramping.
	PrefailWindowDays int

	// SuddenShare is the fraction of failures with no precursor signal
	// at all (controller dies outright). These bound the achievable
	// true positive rate below 100%.
	SuddenShare float64

	// SmartNoiseShare is the fraction of *healthy* drives that
	// accumulate benign SMART wear (media errors, spare depletion)
	// without failing. They are the main source of false positives for
	// SMART-only models; their W/B channels stay quiet, which is what
	// lets SFWB models reject them.
	SmartNoiseShare float64

	// BurstShare is the fraction of healthy drives that experience one
	// short transient error burst (loose cable, OS bug) during the
	// window.
	BurstShare float64

	// TicketDelayMeanDays is the mean of the geometric delay between a
	// drive's failure and the user bringing it in (IMT − failure).
	TicketDelayMeanDays float64

	// TicketDelayMaxDays truncates the ticket delay.
	TicketDelayMaxDays int

	// AbandonShare is the fraction of faulty drives whose user stops
	// using the flaky machine before it dies completely: telemetry ends
	// 1..AbandonMaxDays days before the failure, widening the gap
	// between the last tracking point and the ticket's IMT. This is the
	// data property that makes the θ labelling threshold genuinely
	// two-sided (the paper's sensitivity test); the headline fleets
	// leave it at 0.
	AbandonShare   float64
	AbandonMaxDays int

	// Workers bounds the goroutines that materialise drives; 0 selects
	// GOMAXPROCS and 1 reproduces serial generation. The per-drive RNG
	// (see driveRNG) makes every drive's trajectory independent of
	// generation order, so the output — telemetry, truth, tickets, and
	// stats — is bit-identical at any worker count.
	Workers int

	// DriftStartDay, if ≥ 0, is the day a fleet-wide OS update starts
	// raising background Windows-event rates on healthy machines
	// (covariate drift). DriftMonthlyFactor is the multiplicative rate
	// increase per 30 days after DriftStartDay. Set DriftStartDay to -1
	// to disable drift.
	DriftStartDay      int
	DriftMonthlyFactor float64
}

// DefaultConfig returns the configuration used by the repository's
// headline experiments: a 7-month window over a Table VI-proportioned
// fleet at reduced failure counts, with no OS drift (the paper's
// headline numbers come from a freshly-iterated model; drift is enabled
// explicitly by the Figs. 12/16 time-period experiment via DriftConfig).
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		Days:                210,
		Vendors:             DefaultVendors(),
		FailureScale:        0.2,
		HealthyPerFaulty:    10,
		PrefailWindowDays:   30,
		SuddenShare:         0.01,
		SmartNoiseShare:     0.15,
		BurstShare:          0.06,
		TicketDelayMeanDays: 4,
		TicketDelayMaxDays:  15,
		DriftStartDay:       -1,
		DriftMonthlyFactor:  2.2,
	}
}

// DriftConfig returns the configuration of the five-month portability
// study (Figs. 12/16): a longer window whose learning period ends
// around day 105, with fleet-wide OS drift beginning two months later.
func DriftConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 270
	cfg.DriftStartDay = 165
	cfg.DriftMonthlyFactor = 2.2
	return cfg
}

// TinyConfig returns a fast configuration for unit tests: one short
// window, few drives, no drift.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 90
	cfg.FailureScale = 0.02
	cfg.HealthyPerFaulty = 5
	cfg.DriftStartDay = -1
	return cfg
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Days < 30 {
		return fmt.Errorf("simfleet: Days %d must be ≥ 30", c.Days)
	}
	if c.FailureScale <= 0 {
		return fmt.Errorf("simfleet: FailureScale %g must be > 0", c.FailureScale)
	}
	if c.HealthyPerFaulty < 1 {
		return fmt.Errorf("simfleet: HealthyPerFaulty %d must be ≥ 1", c.HealthyPerFaulty)
	}
	if c.PrefailWindowDays < 1 {
		return fmt.Errorf("simfleet: PrefailWindowDays %d must be ≥ 1", c.PrefailWindowDays)
	}
	if c.SuddenShare < 0 || c.SuddenShare > 1 {
		return fmt.Errorf("simfleet: SuddenShare %g must be in [0,1]", c.SuddenShare)
	}
	if c.SmartNoiseShare < 0 || c.SmartNoiseShare > 1 {
		return fmt.Errorf("simfleet: SmartNoiseShare %g must be in [0,1]", c.SmartNoiseShare)
	}
	if c.BurstShare < 0 || c.BurstShare > 1 {
		return fmt.Errorf("simfleet: BurstShare %g must be in [0,1]", c.BurstShare)
	}
	if c.TicketDelayMeanDays < 0 {
		return fmt.Errorf("simfleet: TicketDelayMeanDays %g must be ≥ 0", c.TicketDelayMeanDays)
	}
	if c.TicketDelayMaxDays < 0 {
		return fmt.Errorf("simfleet: TicketDelayMaxDays %d must be ≥ 0", c.TicketDelayMaxDays)
	}
	if c.AbandonShare < 0 || c.AbandonShare > 1 {
		return fmt.Errorf("simfleet: AbandonShare %g must be in [0,1]", c.AbandonShare)
	}
	if c.AbandonShare > 0 && c.AbandonMaxDays < 1 {
		return fmt.Errorf("simfleet: AbandonMaxDays %d must be ≥ 1 when AbandonShare is set", c.AbandonMaxDays)
	}
	if c.DriftStartDay >= 0 && c.DriftMonthlyFactor < 1 {
		return fmt.Errorf("simfleet: DriftMonthlyFactor %g must be ≥ 1 when drift is enabled", c.DriftMonthlyFactor)
	}
	for i := range c.Vendors {
		if err := c.Vendors[i].Validate(); err != nil {
			return fmt.Errorf("simfleet: vendor %d: %w", i, err)
		}
	}
	return nil
}

// vendors returns the configured vendor specs, defaulting to Table VI.
func (c *Config) vendors() []VendorSpec {
	if c.Vendors != nil {
		return c.Vendors
	}
	return DefaultVendors()
}
