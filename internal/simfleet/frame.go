package simfleet

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/parallel"
	"repro/internal/smartattr"
	"repro/internal/ticket"
)

// FrameResult is Result with the telemetry in columnar frame form.
type FrameResult struct {
	// Frame is the raw (daily-count, discontinuous) telemetry arena.
	Frame *dataset.Frame
	// Tickets is the after-sales RaSRF ticket store.
	Tickets *ticket.Store
	// Truth maps serial number to ground truth.
	Truth map[string]DriveTruth
	// Stats summarises each vendor in spec order.
	Stats []VendorStats
	// Config echoes the configuration that produced the result.
	Config Config
}

// FaultyCount returns the number of faulty drives in the run.
func (res *FrameResult) FaultyCount() int {
	n := 0
	for _, t := range res.Truth {
		if t.Faulty {
			n++
		}
	}
	return n
}

// frameDriveOut is one drive's non-telemetry contribution on the frame
// path; its records land directly in the shared arena.
type frameDriveOut struct {
	rows   int
	truth  DriveTruth
	fwSeq  int
	ticket ticket.Ticket
}

// SimulateFrame is Simulate writing telemetry straight into one
// columnar arena: every drive's upper-bound row count is known from its
// spec alone (failDay+1 when faulty, the full window otherwise), so a
// serial prefix sum hands each worker a disjoint arena range and the
// per-day records are emitted in place — no per-record structs, no
// per-drive buffers, no merge copies. Unpowered days simply leave their
// slack rows untouched.
//
// The drive trajectories, truth, tickets, and stats are bit-identical
// to Simulate with the same configuration at any worker count;
// Frame.ToDataset() equals Simulate's Data field exactly.
func SimulateFrame(cfg Config) (*FrameResult, error) {
	if cfg.Vendors == nil {
		cfg.Vendors = DefaultVendors()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &FrameResult{
		Tickets: ticket.NewStore(),
		Truth:   make(map[string]DriveTruth),
		Config:  cfg,
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	causes := ticket.AllCauses()
	causeWeights := make([]float64, len(causes))
	for i, c := range causes {
		causeWeights[i] = c.Share
	}

	var specs []driveSpec
	specs, res.Stats = buildSpecs(&cfg, master)

	// Size the arena from the specs: a drive observes at most one row
	// per window day, and a faulty one stops at its failure day.
	offs := make([]int, len(specs)+1)
	for i := range specs {
		bound := cfg.Days
		if specs[i].failDay >= 0 {
			bound = specs[i].failDay + 1
		}
		offs[i+1] = offs[i] + bound
	}
	f := dataset.NewFrameArena(offs[len(specs)])

	outs, err := parallel.Map(len(specs), cfg.Workers, func(i int) (frameDriveOut, error) {
		s := specs[i]
		return simulateDriveFrame(f, offs[i], s.sn, &cfg.Vendors[s.vendor], s.kind, s.failDay, &cfg, causes, causeWeights), nil
	})
	if err != nil {
		return nil, err
	}

	// Serial merge in spec order: register each drive's row range (the
	// firmware column is stamped here — interning is serial-only) and
	// collect truth, stats, and tickets exactly as Simulate does.
	for i := range outs {
		out := &outs[i]
		if out.rows > 0 {
			start := offs[i]
			f.FillFirmware(start, start+out.rows, firmware.Version(out.truth.Firmware))
			if err := f.AddDrive(out.truth.SerialNumber, out.truth.Vendor, out.truth.Model, start, start+out.rows); err != nil {
				return nil, err
			}
		}
		res.Truth[out.truth.SerialNumber] = out.truth
		if out.truth.Faulty {
			res.Stats[specs[i].stats].FailuresByFirmwareSeq[out.fwSeq]++
			res.Tickets.Add(out.ticket)
		}
	}
	res.Frame = f
	return res, nil
}

// simulateDriveFrame is simulateDrive emitting telemetry into arena
// rows [off, off+rows). It draws only from the drive's own
// serial-number-seeded RNG (pooled and re-seeded, which reproduces a
// fresh generator's stream exactly), so concurrent drives never
// interact.
func simulateDriveFrame(f *dataset.Frame, off int, sn string, v *VendorSpec, k kind, failDay int, cfg *Config, causes []ticket.Cause, causeWeights []float64) frameDriveOut {
	r := rngPool.Get().(*rand.Rand)
	defer rngPool.Put(r)
	r.Seed(driveRNGSeed(cfg.Seed, sn))
	d := newDriveState(r, sn, v, k, failDay, cfg)
	if d.kind == kindBurst {
		d.burstStart = r.Intn(cfg.Days)
	}
	d.placeEpisodes(r, cfg.Days)

	lastDay := cfg.Days - 1
	if d.failDay >= 0 {
		lastDay = d.failDay
	}
	abandoned := false
	if d.failDay >= 0 && cfg.AbandonShare > 0 && r.Float64() < cfg.AbandonShare {
		abandoned = true
		lastDay -= 1 + r.Intn(cfg.AbandonMaxDays)
		if lastDay < 0 {
			lastDay = 0
		}
	}
	var out frameDriveOut
	var failHours float64
	for day := 0; day <= lastDay; day++ {
		powered := r.Float64() < d.usage.onProb[day%7]
		if day == d.failDay && !abandoned {
			powered = true
		}
		if !powered {
			continue
		}
		row := off + out.rows
		f.SetDay(row, int32(day))
		smart := (*smartattr.Values)(f.SmartRow(row))
		d.stepDayInto(r, day, cfg, smart, f.WRow(row), f.BRow(row))
		out.rows++
		if d.failDay >= 0 {
			failHours = smart.Get(smartattr.PowerOnHours)
		}
	}

	out.truth = DriveTruth{
		SerialNumber:     sn,
		Vendor:           v.Name,
		Model:            d.model.Name,
		Firmware:         string(d.fw.Version),
		FirmwareSeq:      d.fw.Seq,
		Faulty:           k.Faulty(),
		Sudden:           k == kindSudden,
		FailDay:          d.failDay,
		FailPowerOnHours: failHours,
		Kind:             k.String(),
	}

	if k.Faulty() {
		out.fwSeq = d.fw.Seq
		delay := geometricDelay(r, cfg.TicketDelayMeanDays, cfg.TicketDelayMaxDays)
		cause := weightedIndex(r, causeWeights)
		out.ticket = ticket.Ticket{
			SerialNumber: sn,
			IMT:          d.failDay + delay,
			Cause:        cause,
			Description:  causes[cause].Name,
		}
	}
	return out
}
