package simfleet

import (
	"math"
	"math/rand"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// Per-event emission rates. Index order matches the winevent catalogue.
// baseWRates is the healthy background rate per powered day; peakWRates
// is the additional rate at full degradation ramp (Observation #3:
// faulty drives experience far more W errors before failure).
var (
	baseWRates = []float64{
		0.0010, // W_7   bad block
		0.0008, // W_11  controller error
		0.0030, // W_15  not ready
		0.0040, // W_49  crash dump page file
		0.0010, // W_51  paging error
		0.0001, // W_52  predicted failure
		0.0003, // W_154 IO hardware error
		0.0008, // W_157 surprise removal
		0.0005, // W_161 FS error during IO
	}
	peakWRates = []float64{
		1.2, // W_7
		2.5, // W_11
		0.8, // W_15
		1.0, // W_49
		3.0, // W_51
		0.6, // W_52
		0.9, // W_154
		0.4, // W_157
		2.0, // W_161
	}
	// burstWRates is the transient-burst rate for healthy burst drives:
	// controller/paging/not-ready noise without any BSOD or spare loss.
	burstWRates = []float64{
		0.2,  // W_7
		1.5,  // W_11
		1.0,  // W_15
		0.1,  // W_49
		1.5,  // W_51
		0,    // W_52
		0.3,  // W_154
		0.4,  // W_157
		0.25, // W_161
	}
	// driftWEvents marks the events whose background rate an OS update
	// inflates fleet-wide after Config.DriftStartDay (covariate drift;
	// the mechanism behind the paper's rising FPR in Figs. 12/16).
	driftWEvents = map[winevent.ID]bool{
		winevent.CrashDumpPageFile: true,
		winevent.DiskNotReady:      true,
	}
)

// Per-code BSOD rates. Healthy machines blue-screen occasionally for
// non-storage reasons; faulty drives ramp the storage-related codes
// (Observation #4).
var (
	// baseBRate is the total healthy background BSOD rate per powered
	// day, spread uniformly over the non-storage-related codes.
	baseBRate = 0.0008
	// peakBRates is the additional per-code rate at full ramp, in
	// fixed order so emission stays deterministic for a given seed.
	peakBRates = []struct {
		code bsod.Code
		rate float64
	}{
		{bsod.PageFaultInNonpagedArea, 0.80}, // B_50
		{bsod.KernelDataInpageError, 0.60},   // B_7A
		{bsod.NTFSFileSystem, 0.40},          // B_24
		{bsod.KernelStackInpageError, 0.30},  // B_77
		{bsod.StatusCannotLoad, 0.15},        // B_C00
		{bsod.FATFileSystem, 0.10},           // B_23
		{bsod.ExFATFileSystem, 0.08},         // B_12C
		{bsod.UDFSFileSystem, 0.02},          // B_9B
	}
)

// nonStorageCodes caches the catalogue indexes of non-storage stop codes.
var nonStorageCodes = func() []int {
	var out []int
	for _, info := range bsod.All() {
		if !info.StorageRelated {
			out = append(out, info.Code.Index())
		}
	}
	return out
}()

// driftFactor returns the background-rate multiplier for the drifting
// Windows events on the given day.
func driftFactor(cfg *Config, day int) float64 {
	if cfg.DriftStartDay < 0 || day < cfg.DriftStartDay {
		return 1
	}
	months := float64(day-cfg.DriftStartDay) / 30
	return math.Pow(cfg.DriftMonthlyFactor, months)
}

// stepDay advances the drive by one powered-on day and returns the
// telemetry record observed at the end of that day.
func (d *driveState) stepDay(r *rand.Rand, day int, cfg *Config) dataset.Record {
	rec := dataset.Record{
		SerialNumber: d.sn,
		Vendor:       d.vendor,
		Model:        d.model.Name,
		Day:          day,
		Firmware:     d.fw.Version,
		WCounts:      winevent.NewCounts(),
		BCounts:      bsod.NewCounts(),
	}
	d.stepDayInto(r, day, cfg, &rec.Smart, rec.WCounts, rec.BCounts)
	return rec
}

// stepDayInto is stepDay writing the observation into caller-supplied
// vectors (arena rows on the frame path) instead of a fresh record.
// The RNG draw sequence is identical to stepDay's.
func (d *driveState) stepDayInto(r *rand.Rand, day int, cfg *Config, smart *smartattr.Values, w winevent.Counts, b bsod.Counts) {
	hours := d.usage.hoursMean * (0.6 + 0.8*r.Float64())
	// The failure ramp drives the system-level W/B channels; the SMART
	// ramp additionally covers scare episodes on severe-noise drives.
	ramp := d.ramp(day)
	sRamp, sPeak, sDrop, sActive := d.smartRamp(day)

	// Workload counters.
	d.hours += hours
	d.cycles += float64(1 + poisson(r, 0.4))
	gbW := hours * d.usage.writeGBPerHour * (0.7 + 0.6*r.Float64())
	gbR := hours * d.usage.readGBPerHour * (0.7 + 0.6*r.Float64())
	d.unitsWrite += gbW * unitsPerGB
	d.unitsRead += gbR * unitsPerGB
	d.hostWrites += gbW * unitsPerGB * (28 + 8*r.Float64())
	d.hostReads += gbR * unitsPerGB * (30 + 8*r.Float64())
	// Controller busy time rises with load, and degrading drives spend
	// extra time on retries and error handling.
	d.busyMin += hours * (2 + 2*r.Float64()) * (1 + 2*sRamp)

	// Reliability counters.
	switch {
	case sActive:
		d.mediaErr += float64(poisson(r, sPeak*math.Pow(sRamp, 1.5)))
		if sDrop > 0 {
			d.spare = math.Max(0, math.Min(d.spare, 100-sDrop*math.Pow(sRamp, 1.5)))
		}
		if sRamp > 0.9 && r.Float64() < 0.1 {
			d.critWarn = 1
		}
		if sRamp > 0.8 {
			d.unsafeShut += float64(poisson(r, 0.15))
		}
	case d.kind == kindSmartNoise:
		d.mediaErr += float64(poisson(r, d.noiseMediaRate))
		d.spare = math.Max(75, d.spare-d.noiseSpareRate*(0.5+r.Float64()))
	case d.inBurst(day):
		d.mediaErr += float64(poisson(r, 0.8))
	default:
		// Rare background media errors on perfectly healthy drives.
		d.mediaErr += float64(poisson(r, 0.0015))
	}
	if d.kind == kindSmartNoise && sActive {
		// Scare episodes ride on top of the cohort's baseline noise.
		d.mediaErr += float64(poisson(r, d.noiseMediaRate))
	}
	d.unsafeShut += float64(poisson(r, 0.012))
	// The error log accumulates media errors (roughly doubled: one
	// entry on detection, one on the retry) plus transient protocol
	// errors tracked separately so the counter stays monotonic.
	d.accumErrLogExtra(r, sRamp, day)
	d.errLog = d.mediaErr*2 + d.extraErrLog

	d.fillSmart(smart, r, hours)
	d.emitW(w, r, ramp, day, cfg)
	d.emitB(b, r, ramp, day)
}

// accumErrLogExtra grows the non-media component of the error log:
// degrading drives log command timeouts and retries beyond media
// errors; bursts log transient resets; healthy drives log the odd
// protocol hiccup.
func (d *driveState) accumErrLogExtra(r *rand.Rand, ramp float64, day int) {
	rate := errLogBaseRate + 1.5*ramp*ramp
	if d.kind == kindSmartNoise {
		// The noise cohort's protocol errors scale with its media noise,
		// keeping its error log as busy as a mildly degrading drive's.
		rate += d.noiseMediaRate * 1.5
	}
	if d.inBurst(day) {
		rate += 1.5
	}
	var n int
	if rate == errLogBaseRate {
		n = poissonSmall(r, expNegErrLogBase)
	} else {
		n = poisson(r, rate)
	}
	d.extraErrLog += float64(n)
}

// fillSmart writes the drive's SMART vector for this observation.
func (d *driveState) fillSmart(s *smartattr.Values, r *rand.Rand, hours float64) {
	s.Set(smartattr.CriticalWarning, d.critWarn)
	// Composite temperature in Kelvin: idle ~310K, plus load and noise.
	temp := 308 + hours*0.4 + 4*r.NormFloat64()
	s.Set(smartattr.CompositeTemperature, math.Max(290, temp))
	s.Set(smartattr.AvailableSpare, d.spare)
	s.Set(smartattr.AvailableSpareThreshold, 10)
	// Percentage used follows rated endurance.
	tbw := d.unitsWrite * 512000 / 1e12
	used := math.Min(255, tbw/d.model.EnduranceTBW*100)
	s.Set(smartattr.PercentageUsed, math.Floor(used))
	s.Set(smartattr.DataUnitsRead, math.Floor(d.unitsRead))
	s.Set(smartattr.DataUnitsWritten, math.Floor(d.unitsWrite))
	s.Set(smartattr.HostReadCommands, math.Floor(d.hostReads))
	s.Set(smartattr.HostWriteCommands, math.Floor(d.hostWrites))
	s.Set(smartattr.ControllerBusyTime, math.Floor(d.busyMin))
	s.Set(smartattr.PowerCycles, math.Floor(d.cycles))
	s.Set(smartattr.PowerOnHours, math.Floor(d.hours))
	s.Set(smartattr.UnsafeShutdowns, math.Floor(d.unsafeShut))
	s.Set(smartattr.MediaErrors, math.Floor(d.mediaErr))
	s.Set(smartattr.ErrorLogEntries, math.Floor(d.errLog))
	s.Set(smartattr.Capacity, d.model.CapacityGB)
}

// wCatalogue caches the Windows event catalogue: All() returns a fresh
// copy, which would otherwise be one allocation per simulated drive-day.
var wCatalogue = winevent.All()

// errLogBaseRate is the healthy background rate of non-media error-log
// entries (protocol hiccups) per powered day.
const errLogBaseRate = 0.01

// Steady-state exponentials for poissonSmall: most drive-days emit at
// the unmodified background rates, so exp(-rate) is computed once here
// instead of once per draw. Values are identical to what poisson would
// compute, keeping every drawn stream bit-exact.
var (
	expNegBaseW = func() []float64 {
		out := make([]float64, len(baseWRates))
		for i, rate := range baseWRates {
			out[i] = math.Exp(-rate)
		}
		return out
	}()
	expNegBaseB      = math.Exp(-baseBRate)
	expNegErrLogBase = math.Exp(-errLogBaseRate)
)

// driftWIdx maps catalogue position to the drift flag so the emission
// loop indexes a slice instead of hashing event IDs per drive-day.
var driftWIdx = func() []bool {
	out := make([]bool, len(wCatalogue))
	for i, info := range wCatalogue {
		out[i] = driftWEvents[info.ID]
	}
	return out
}()

// emitW draws the day's Windows event counts.
func (d *driveState) emitW(counts winevent.Counts, r *rand.Rand, ramp float64, day int, cfg *Config) {
	drift := driftFactor(cfg, day)
	epRamp, epScale := d.wbEpisodeRamp(day)
	burst := d.inBurst(day)
	for i := range wCatalogue {
		rate := baseWRates[i]
		if driftWIdx[i] {
			rate *= drift
		}
		if ramp > 0 {
			rate += peakWRates[i] * d.wScale * ramp * ramp
		}
		if epScale > 0 {
			rate += peakWRates[i] * epScale * epRamp * epRamp
		}
		if burst {
			rate += burstWRates[i]
		}
		var n int
		if rate == baseWRates[i] {
			n = poissonSmall(r, expNegBaseW[i])
		} else {
			n = poisson(r, rate)
		}
		if n > 0 {
			counts[i] += float64(n)
		}
	}
}

// emitB draws the day's BSOD counts.
func (d *driveState) emitB(counts bsod.Counts, r *rand.Rand, ramp float64, day int) {
	// Background non-storage blue screens (drivers, overclocking, RAM).
	if n := poissonSmall(r, expNegBaseB); n > 0 {
		for j := 0; j < n; j++ {
			counts[nonStorageCodes[r.Intn(len(nonStorageCodes))]]++
		}
	}
	if d.inBurst(day) {
		// A transient burst occasionally blue-screens on a storage
		// code too — the driver-level chaos reaches the pager.
		for _, pb := range peakBRates {
			if n := poisson(r, pb.rate*0.12); n > 0 {
				counts[pb.code.Index()] += float64(n)
			}
		}
	}
	if epRamp, epScale := d.wbEpisodeRamp(day); epScale > 0 {
		for _, pb := range peakBRates {
			if n := poisson(r, pb.rate*epScale*epRamp*epRamp); n > 0 {
				counts[pb.code.Index()] += float64(n)
			}
		}
	}
	if ramp <= 0 {
		return
	}
	for _, pb := range peakBRates {
		if n := poisson(r, pb.rate*d.bScale*ramp*ramp); n > 0 {
			counts[pb.code.Index()] += float64(n)
		}
	}
}
