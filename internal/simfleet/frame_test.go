package simfleet

import (
	"reflect"
	"testing"
)

// TestSimulateFrameMatchesSimulate pins the frame path's contract: the
// arena-backed simulation is bit-identical to the record path — same
// telemetry (via ToDataset), same truth, stats, and tickets.
func TestSimulateFrameMatchesSimulate(t *testing.T) {
	cfg := TinyConfig()
	want, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateFrame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := got.Frame.ToDataset()
	if !reflect.DeepEqual(data.SerialNumbers(), want.Data.SerialNumbers()) {
		t.Fatal("drive insertion order differs")
	}
	for _, sn := range want.Data.SerialNumbers() {
		ws, _ := want.Data.Series(sn)
		gs, _ := data.Series(sn)
		if !reflect.DeepEqual(gs, ws) {
			t.Fatalf("drive %s telemetry differs", sn)
		}
	}
	if !reflect.DeepEqual(got.Truth, want.Truth) {
		t.Fatal("ground truth differs")
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatal("vendor stats differ")
	}
	if got.FaultyCount() != want.FaultyCount() {
		t.Fatalf("faulty count %d, want %d", got.FaultyCount(), want.FaultyCount())
	}
	if !reflect.DeepEqual(got.Tickets.SerialNumbers(), want.Tickets.SerialNumbers()) {
		t.Fatal("ticket order differs")
	}
	for _, sn := range want.Tickets.SerialNumbers() {
		if !reflect.DeepEqual(got.Tickets.Lookup(sn), want.Tickets.Lookup(sn)) {
			t.Fatalf("tickets for %s differ", sn)
		}
	}
}

// TestSimulateFrameWorkersIdentical asserts the direct-arena fan-out is
// worker-count independent: specs size the arena before any worker
// runs, so every drive writes the same rows regardless of scheduling.
func TestSimulateFrameWorkersIdentical(t *testing.T) {
	cfg := TinyConfig()
	cfg.Workers = 1
	want, err := SimulateFrame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantData := want.Frame.ToDataset()
	for _, w := range []int{0, 2, 3, 8} {
		cfg := TinyConfig()
		cfg.Workers = w
		got, err := SimulateFrame(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		gotData := got.Frame.ToDataset()
		if !reflect.DeepEqual(gotData.SerialNumbers(), wantData.SerialNumbers()) {
			t.Fatalf("workers=%d: drive insertion order differs", w)
		}
		for _, sn := range wantData.SerialNumbers() {
			ws, _ := wantData.Series(sn)
			gs, _ := gotData.Series(sn)
			if !reflect.DeepEqual(gs, ws) {
				t.Fatalf("workers=%d: drive %s telemetry differs", w, sn)
			}
		}
		if !reflect.DeepEqual(got.Truth, want.Truth) {
			t.Fatalf("workers=%d: ground truth differs", w)
		}
	}
}
