package simfleet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/smartattr"
)

func tinyFleet(t *testing.T) *Result {
	t.Helper()
	res, err := Simulate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSerialNumberMatchesSprintf pins the hand-rolled serial formatter
// to the fmt layout it replaced: serials seed each drive's RNG, so any
// drift here would silently change every simulated fleet.
func TestSerialNumberMatchesSprintf(t *testing.T) {
	for _, vendor := range []string{"I", "S", "T", "LongVendorName"} {
		for _, tag := range []byte{'F', 'H'} {
			for _, i := range []int{0, 1, 7, 99, 123456, 999999, 1000000, -3} {
				want := fmt.Sprintf("%s-%c%06d", vendor, tag, i)
				if got := serialNumber(vendor, tag, i); got != want {
					t.Fatalf("serialNumber(%q, %q, %d) = %q, want %q", vendor, tag, i, got, want)
				}
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := tinyFleet(t)
	b := tinyFleet(t)
	if a.Data.Len() != b.Data.Len() || a.Data.Drives() != b.Data.Drives() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.Data.Drives(), a.Data.Len(), b.Data.Drives(), b.Data.Len())
	}
	for _, sn := range a.Data.SerialNumbers() {
		sa, _ := a.Data.Series(sn)
		sb, ok := b.Data.Series(sn)
		if !ok {
			t.Fatalf("drive %s missing in second run", sn)
		}
		if len(sa.Records) != len(sb.Records) {
			t.Fatalf("drive %s: %d vs %d records", sn, len(sa.Records), len(sb.Records))
		}
		for i := range sa.Records {
			ra, rb := &sa.Records[i], &sb.Records[i]
			if ra.Day != rb.Day || ra.Smart != rb.Smart {
				t.Fatalf("drive %s record %d differs", sn, i)
			}
		}
	}
	if a.Tickets.Len() != b.Tickets.Len() {
		t.Fatal("ticket counts differ")
	}
}

func TestSimulateSeedChangesFleet(t *testing.T) {
	cfg := TinyConfig()
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.Len() == b.Data.Len() {
		// Sizes colliding is possible but full equality is not; check a
		// drive's first record hours.
		snA := a.Data.SerialNumbers()[0]
		sa, _ := a.Data.Series(snA)
		sb, ok := b.Data.Series(snA)
		if ok && len(sa.Records) > 0 && len(sb.Records) > 0 &&
			sa.Records[0].Smart == sb.Records[0].Smart {
			t.Fatal("different seeds produced identical telemetry")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Days = 5 },
		func(c *Config) { c.FailureScale = 0 },
		func(c *Config) { c.HealthyPerFaulty = 0 },
		func(c *Config) { c.PrefailWindowDays = 0 },
		func(c *Config) { c.SuddenShare = 2 },
		func(c *Config) { c.SmartNoiseShare = -0.1 },
		func(c *Config) { c.BurstShare = 1.5 },
		func(c *Config) { c.TicketDelayMeanDays = -1 },
		func(c *Config) { c.DriftStartDay = 10; c.DriftMonthlyFactor = 0.5 },
	}
	for i, mutate := range bad {
		cfg := TinyConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEveryFaultyDriveHasATicket(t *testing.T) {
	res := tinyFleet(t)
	for sn, truth := range res.Truth {
		tickets := res.Tickets.Lookup(sn)
		if truth.Faulty && len(tickets) == 0 {
			t.Errorf("faulty drive %s has no ticket", sn)
		}
		if !truth.Faulty && len(tickets) != 0 {
			t.Errorf("healthy drive %s has a ticket", sn)
		}
		if truth.Faulty && len(tickets) > 0 && tickets[0].IMT < truth.FailDay {
			t.Errorf("drive %s: IMT %d before failure %d", sn, tickets[0].IMT, truth.FailDay)
		}
	}
}

func TestNoTelemetryAfterFailure(t *testing.T) {
	res := tinyFleet(t)
	for sn, truth := range res.Truth {
		if !truth.Faulty {
			continue
		}
		s, ok := res.Data.Series(sn)
		if !ok {
			continue
		}
		if s.LastDay() > truth.FailDay {
			t.Errorf("drive %s logs on day %d after failing on day %d", sn, s.LastDay(), truth.FailDay)
		}
		// The machine is on the day it dies, so the final record lands
		// exactly on the failure day.
		if s.LastDay() != truth.FailDay {
			t.Errorf("drive %s last log %d != fail day %d", sn, s.LastDay(), truth.FailDay)
		}
	}
}

func TestCountersMonotone(t *testing.T) {
	res := tinyFleet(t)
	monotone := []smartattr.ID{
		smartattr.PowerOnHours,
		smartattr.PowerCycles,
		smartattr.DataUnitsRead,
		smartattr.DataUnitsWritten,
		smartattr.MediaErrors,
		smartattr.ErrorLogEntries,
		smartattr.UnsafeShutdowns,
		smartattr.PercentageUsed,
	}
	res.Data.Each(func(s *dataset.DriveSeries) {
		for i := 1; i < len(s.Records); i++ {
			for _, id := range monotone {
				if s.Records[i].Smart.Get(id) < s.Records[i-1].Smart.Get(id) {
					t.Errorf("drive %s: %v decreases at record %d", s.SerialNumber, id, i)
					return
				}
			}
			if s.Records[i].Smart.Get(smartattr.AvailableSpare) > s.Records[i-1].Smart.Get(smartattr.AvailableSpare) {
				t.Errorf("drive %s: spare increases at record %d", s.SerialNumber, i)
				return
			}
		}
	})
}

func TestTelemetryIsDiscontinuous(t *testing.T) {
	res := tinyFleet(t)
	gaps := 0
	res.Data.Each(func(s *dataset.DriveSeries) {
		if s.MaxGap() > 1 {
			gaps++
		}
	})
	if gaps < res.Data.Drives()/2 {
		t.Fatalf("only %d of %d drives have gaps; CSS telemetry must be discontinuous", gaps, res.Data.Drives())
	}
}

func TestFirmwareFailureRatesFavourEarlierReleases(t *testing.T) {
	// Use a larger fleet for stable rates.
	cfg := DefaultConfig()
	cfg.FailureScale = 0.3
	cfg.Days = 60
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Vendor I's first release must have a higher per-capita failure
	// rate than its last.
	st := res.Stats[0]
	first := float64(st.FailuresByFirmwareSeq[1]) / st.PopulationByFirmwareSeq[1]
	last := float64(st.FailuresByFirmwareSeq[5]) / st.PopulationByFirmwareSeq[5]
	if first <= last {
		t.Fatalf("vendor I: first release rate %g ≤ last release rate %g", first, last)
	}
}

func TestBathtubShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailureScale = 0.3
	cfg.Days = 60
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var infant, mid, wear, total int
	for _, truth := range res.Truth {
		if !truth.Faulty || truth.FailPowerOnHours <= 0 {
			continue
		}
		total++
		switch h := truth.FailPowerOnHours; {
		case h < 3000:
			infant++
		case h > 24000:
			wear++
		default:
			mid++
		}
	}
	if total < 100 {
		t.Skipf("only %d aged failures", total)
	}
	infantRate := float64(infant) / 3000
	midRate := float64(mid) / 21000
	wearRate := float64(wear) / 6000
	if infantRate <= midRate {
		t.Errorf("no infant mortality spike: %g vs %g per hour", infantRate, midRate)
	}
	if wearRate <= midRate {
		t.Errorf("no wear-out rise: %g vs %g per hour", wearRate, midRate)
	}
}

func TestVendorStatsConsistent(t *testing.T) {
	res := tinyFleet(t)
	for _, st := range res.Stats {
		if st.Failures < 1 {
			t.Errorf("vendor %s has no failures", st.Name)
		}
		if st.SampledHealthy != st.Failures*res.Config.HealthyPerFaulty {
			t.Errorf("vendor %s: healthy %d != failures %d × %d",
				st.Name, st.SampledHealthy, st.Failures, res.Config.HealthyPerFaulty)
		}
		sum := 0
		for _, n := range st.FailuresByFirmwareSeq {
			sum += n
		}
		if sum != st.Failures {
			t.Errorf("vendor %s: firmware failure counts sum to %d, want %d", st.Name, sum, st.Failures)
		}
		if rr := st.ReplacementRate(); rr <= 0 || rr > 0.05 {
			t.Errorf("vendor %s: implausible replacement rate %g", st.Name, rr)
		}
	}
}

func TestFaultyDrivesShowPrefailureSignals(t *testing.T) {
	res := tinyFleet(t)
	checked, signalled := 0, 0
	for sn, truth := range res.Truth {
		if !truth.Faulty || truth.Sudden {
			continue
		}
		s, ok := res.Data.Series(sn)
		if !ok {
			continue
		}
		checked++
		var w, b float64
		for _, r := range s.Window(truth.FailDay-10, truth.FailDay) {
			w += r.WCounts.Total()
			b += r.BCounts.Total()
		}
		if w > 0 || b > 0 {
			signalled++
		}
	}
	if checked == 0 {
		t.Skip("no ramped failures")
	}
	if rate := float64(signalled) / float64(checked); rate < 0.8 {
		t.Fatalf("only %.0f%% of ramped failures show W/B precursors", rate*100)
	}
}

func TestPoissonProperties(t *testing.T) {
	r := newTestRand()
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
	// Mean of small-lambda draws approximates lambda.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(r, 0.5))
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("poisson(0.5) mean = %g", mean)
	}
	// Large-lambda path is non-negative and roughly centred.
	sum = 0
	for i := 0; i < 2000; i++ {
		v := poisson(r, 100)
		if v < 0 {
			t.Fatal("negative poisson draw")
		}
		sum += float64(v)
	}
	if mean := sum / 2000; math.Abs(mean-100) > 3 {
		t.Fatalf("poisson(100) mean = %g", mean)
	}
}

func TestGeometricDelay(t *testing.T) {
	r := newTestRand()
	if geometricDelay(r, 0, 10) != 0 {
		t.Fatal("zero mean must yield 0")
	}
	for i := 0; i < 1000; i++ {
		d := geometricDelay(r, 4, 15)
		if d < 0 || d > 15 {
			t.Fatalf("delay %d out of [0,15]", d)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	r := newTestRand()
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[weightedIndex(r, []float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
	// All-zero weights fall back to uniform without panicking.
	idx := weightedIndex(r, []float64{0, 0})
	if idx < 0 || idx > 1 {
		t.Fatalf("fallback index %d", idx)
	}
}

func TestBathtubFailureHoursInRange(t *testing.T) {
	r := newTestRand()
	for i := 0; i < 5000; i++ {
		h := bathtubFailureHours(r, maxPowerOnHours)
		if h < 0 || h > maxPowerOnHours {
			t.Fatalf("failure hours %g out of range", h)
		}
	}
}

func newTestRand() *rand.Rand { return driveRNG(42, "test-drive") }

func TestDriftConfigRaisesBackgroundWEvents(t *testing.T) {
	cfg := DriftConfig()
	cfg.FailureScale = 0.05
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy drives' W_49/W_15 daily rates after the drift start must
	// exceed the pre-drift rates.
	var preDays, postDays, preEvents, postEvents float64
	res.Data.Each(func(s *dataset.DriveSeries) {
		if res.Truth[s.SerialNumber].Faulty {
			return
		}
		for i := range s.Records {
			r := &s.Records[i]
			n := r.WCounts[2] + r.WCounts[3] // W_15 + W_49 catalogue positions
			if r.Day < cfg.DriftStartDay {
				preDays++
				preEvents += n
			} else {
				postDays++
				postEvents += n
			}
		}
	})
	if preDays == 0 || postDays == 0 {
		t.Skip("window too small")
	}
	preRate := preEvents / preDays
	postRate := postEvents / postDays
	if postRate <= preRate*1.5 {
		t.Fatalf("drift too weak: pre %g/day vs post %g/day", preRate, postRate)
	}
}

func TestTinyConfigValid(t *testing.T) {
	tiny := TinyConfig()
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.DriftStartDay >= 0 {
		t.Fatal("headline config must not drift")
	}
}

func TestAbandonmentWidensTicketGap(t *testing.T) {
	cfg := TinyConfig()
	cfg.AbandonShare = 1
	cfg.AbandonMaxDays = 10
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := 0
	for sn, truth := range res.Truth {
		if !truth.Faulty {
			continue
		}
		s, ok := res.Data.Series(sn)
		if !ok {
			continue
		}
		if s.LastDay() > truth.FailDay {
			t.Fatalf("drive %s logs after failure", sn)
		}
		if s.LastDay() < truth.FailDay {
			early++
		}
	}
	if early == 0 {
		t.Fatal("AbandonShare=1 produced no early-ending telemetry")
	}
	// The knob must be rejected without a max.
	bad := TinyConfig()
	bad.AbandonShare = 0.5
	bad.AbandonMaxDays = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("AbandonShare without AbandonMaxDays accepted")
	}
}
