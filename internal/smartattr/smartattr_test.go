package smartattr

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCatalogueComplete(t *testing.T) {
	all := All()
	if len(all) != Count {
		t.Fatalf("All() returned %d attributes, want %d", len(all), Count)
	}
	seen := make(map[string]bool)
	for i, info := range all {
		if got := int(info.ID); got != i+1 {
			t.Errorf("attribute %d has ID %d, want %d", i, got, i+1)
		}
		if info.Name == "" {
			t.Errorf("attribute %d has empty name", i+1)
		}
		if seen[info.Name] {
			t.Errorf("duplicate attribute name %q", info.Name)
		}
		seen[info.Name] = true
	}
}

func TestTableIINames(t *testing.T) {
	// Spot-check the attribute names against Table II.
	want := map[ID]string{
		CriticalWarning:    "Critical Warning",
		PowerOnHours:       "Power On Hours",
		MediaErrors:        "Error Media and Data Integrity Errors",
		Capacity:           "Capacity",
		ControllerBusyTime: "Controller Busy Time",
	}
	for id, name := range want {
		if got := Lookup(id).Name; got != name {
			t.Errorf("Lookup(%d).Name = %q, want %q", id, got, name)
		}
	}
}

func TestIDHelpers(t *testing.T) {
	if !PowerOnHours.Valid() {
		t.Error("PowerOnHours should be valid")
	}
	if ID(0).Valid() || ID(Count+1).Valid() {
		t.Error("out-of-range IDs should be invalid")
	}
	if got := PowerOnHours.Index(); got != 11 {
		t.Errorf("PowerOnHours.Index() = %d, want 11", got)
	}
	if got := PowerOnHours.Label(); got != "S_12" {
		t.Errorf("PowerOnHours.Label() = %q, want S_12", got)
	}
	if got := ID(99).String(); got != "S_invalid(99)" {
		t.Errorf("invalid String() = %q", got)
	}
}

func TestLookupPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup(0) should panic")
		}
	}()
	Lookup(0)
}

func TestIndexPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index of invalid ID should panic")
		}
	}()
	ID(17).Index()
}

func TestValuesGetSet(t *testing.T) {
	var v Values
	v.Set(MediaErrors, 42)
	if got := v.Get(MediaErrors); got != 42 {
		t.Fatalf("Get = %g, want 42", got)
	}
	if got := v.Get(PowerOnHours); got != 0 {
		t.Fatalf("unset attribute = %g, want 0", got)
	}
}

func TestExceedsThreshold(t *testing.T) {
	healthy := Values{}
	healthy.Set(AvailableSpare, 100)
	healthy.Set(CompositeTemperature, 310)
	if healthy.ExceedsThreshold() {
		t.Error("healthy values should not exceed thresholds")
	}

	cases := []struct {
		name string
		set  func(*Values)
	}{
		{"critical warning", func(v *Values) { v.Set(CriticalWarning, 1) }},
		{"low spare", func(v *Values) { v.Set(AvailableSpare, 5); v.Set(CompositeTemperature, 310) }},
		{"overtemperature", func(v *Values) { v.Set(AvailableSpare, 100); v.Set(CompositeTemperature, 400) }},
	}
	for _, tc := range cases {
		var v Values
		tc.set(&v)
		if !v.ExceedsThreshold() {
			t.Errorf("%s: should exceed threshold", tc.name)
		}
	}
}

func TestNeutralAttributesNeverAlarm(t *testing.T) {
	// Workload counters must never trigger the threshold detector no
	// matter how large they grow.
	var v Values
	v.Set(AvailableSpare, 100)
	v.Set(CompositeTemperature, 310)
	v.Set(DataUnitsWritten, 1e15)
	v.Set(PowerOnHours, 1e9)
	v.Set(HostReadCommands, 1e18)
	// Media errors and error-log entries carry no vendor threshold —
	// the classic detector misses drives that die through them.
	v.Set(MediaErrors, 1e6)
	v.Set(ErrorLogEntries, 1e6)
	if v.ExceedsThreshold() {
		t.Error("unthresholded counters should never alarm")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		id := ID(int(raw)%Count + 1)
		return id.Label() == fmt.Sprintf("S_%d", int(id)) && id.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
