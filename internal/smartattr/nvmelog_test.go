package smartattr

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseHealthLogRejectsBadSize(t *testing.T) {
	if _, err := ParseHealthLog(make([]byte, 511), 512); err == nil {
		t.Fatal("short page accepted")
	}
	if _, err := ParseHealthLog(make([]byte, 513), 512); err == nil {
		t.Fatal("long page accepted")
	}
}

func TestParseHealthLogOffsets(t *testing.T) {
	page := make([]byte, HealthLogSize)
	page[0] = 0x04                                   // critical warning: reliability degraded
	binary.LittleEndian.PutUint16(page[1:], 327)     // composite temperature
	page[3] = 98                                     // available spare
	page[4] = 10                                     // spare threshold
	page[5] = 7                                      // percentage used
	binary.LittleEndian.PutUint64(page[128:], 12345) // power-on hours
	binary.LittleEndian.PutUint64(page[160:], 42)    // media errors
	binary.LittleEndian.PutUint64(page[176:], 99)    // error log entries
	binary.LittleEndian.PutUint64(page[32:], 1<<40)  // data units read

	v, err := ParseHealthLog(page, 512)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[ID]float64{
		CriticalWarning:         4,
		CompositeTemperature:    327,
		AvailableSpare:          98,
		AvailableSpareThreshold: 10,
		PercentageUsed:          7,
		PowerOnHours:            12345,
		MediaErrors:             42,
		ErrorLogEntries:         99,
		DataUnitsRead:           float64(uint64(1) << 40),
		Capacity:                512,
	}
	for id, want := range checks {
		if got := v.Get(id); got != want {
			t.Errorf("%v = %g, want %g", id, got, want)
		}
	}
}

func TestHealthLogRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var v Values
		v.Set(CriticalWarning, float64(r.Intn(32)))
		v.Set(CompositeTemperature, float64(280+r.Intn(120)))
		v.Set(AvailableSpare, float64(r.Intn(101)))
		v.Set(AvailableSpareThreshold, float64(r.Intn(50)))
		v.Set(PercentageUsed, float64(r.Intn(120)))
		v.Set(DataUnitsRead, float64(r.Int63n(1<<50)))
		v.Set(DataUnitsWritten, float64(r.Int63n(1<<50)))
		v.Set(HostReadCommands, float64(r.Int63n(1<<50)))
		v.Set(HostWriteCommands, float64(r.Int63n(1<<50)))
		v.Set(ControllerBusyTime, float64(r.Int63n(1<<30)))
		v.Set(PowerCycles, float64(r.Int63n(100000)))
		v.Set(PowerOnHours, float64(r.Int63n(100000)))
		v.Set(UnsafeShutdowns, float64(r.Int63n(10000)))
		v.Set(MediaErrors, float64(r.Int63n(100000)))
		v.Set(ErrorLogEntries, float64(r.Int63n(100000)))
		v.Set(Capacity, 1024)

		page := MarshalHealthLog(&v)
		got, err := ParseHealthLog(page, 1024)
		if err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalHealthLogClamps(t *testing.T) {
	var v Values
	v.Set(AvailableSpare, 400)       // > 255
	v.Set(CompositeTemperature, 1e9) // > uint16
	v.Set(MediaErrors, -5)           // negative
	page := MarshalHealthLog(&v)
	if page[offAvailableSpare] != 255 {
		t.Errorf("spare clamped to %d", page[offAvailableSpare])
	}
	if binary.LittleEndian.Uint16(page[offCompositeTemp:]) != 65535 {
		t.Error("temperature not clamped")
	}
	if binary.LittleEndian.Uint64(page[offMediaErrors:]) != 0 {
		t.Error("negative counter not clamped to 0")
	}
}

func TestSimulatedDriveSurvivesLogPageRoundTrip(t *testing.T) {
	// SMART vectors produced by the simulator (integral counters,
	// bounded gauges) must survive the wire format.
	var v Values
	v.Set(CriticalWarning, 0)
	v.Set(CompositeTemperature, 311)
	v.Set(AvailableSpare, 93)
	v.Set(AvailableSpareThreshold, 10)
	v.Set(PercentageUsed, 12)
	v.Set(DataUnitsRead, 5.1234e9)
	v.Set(DataUnitsWritten, 2.75e9)
	v.Set(HostReadCommands, 1.5e11)
	v.Set(HostWriteCommands, 8e10)
	v.Set(ControllerBusyTime, 54321)
	v.Set(PowerCycles, 812)
	v.Set(PowerOnHours, 6144)
	v.Set(UnsafeShutdowns, 9)
	v.Set(MediaErrors, 37)
	v.Set(ErrorLogEntries, 91)
	v.Set(Capacity, 256)

	// Non-integral float counters truncate like a controller would.
	page := MarshalHealthLog(&v)
	got, err := ParseHealthLog(page, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(DataUnitsRead) != 5123400000 {
		t.Errorf("DataUnitsRead = %g", got.Get(DataUnitsRead))
	}
	if got.Get(PowerOnHours) != 6144 || got.Get(MediaErrors) != 37 {
		t.Error("counters corrupted")
	}
}
