// Package smartattr defines the NVMe SMART attribute catalogue used by
// consumer M.2 SSDs in this reproduction.
//
// The catalogue mirrors Table II of the paper: vendors expose 15 SMART
// features plus capacity for M.2 drives. Each attribute carries
// semantic metadata (whether it is a monotonic counter or a gauge,
// whether higher values indicate worse health, and the vendor's default
// alarm threshold used by the classic SMART-threshold failure
// detector).
package smartattr

import "fmt"

// ID identifies one of the 16 SMART attributes of Table II.
type ID int

// The 16 SMART attributes reported for consumer M.2 NVMe SSDs
// (Table II of the paper). The numbering follows the paper's ID# column.
const (
	CriticalWarning         ID = iota + 1 // S_1: critical warning flags
	CompositeTemperature                  // S_2: composite temperature (Kelvin-offset gauge)
	AvailableSpare                        // S_3: remaining spare capacity (%)
	AvailableSpareThreshold               // S_4: spare threshold below which warning is raised (%)
	PercentageUsed                        // S_5: vendor estimate of life used (%)
	DataUnitsRead                         // S_6: 512,000-byte units read
	DataUnitsWritten                      // S_7: 512,000-byte units written
	HostReadCommands                      // S_8: host read commands completed
	HostWriteCommands                     // S_9: host write commands completed
	ControllerBusyTime                    // S_10: controller busy time (minutes)
	PowerCycles                           // S_11: power on/off cycles
	PowerOnHours                          // S_12: cumulative power-on hours
	UnsafeShutdowns                       // S_13: unclean power losses
	MediaErrors                           // S_14: media and data integrity errors
	ErrorLogEntries                       // S_15: error information log entry count
	Capacity                              // S_16: drive capacity (GB)
)

// Count is the number of SMART attributes in the catalogue.
const Count = 16

// Kind describes how an attribute evolves over a drive's lifetime.
type Kind int

const (
	// Counter attributes are monotonically non-decreasing
	// (e.g. PowerOnHours, MediaErrors).
	Counter Kind = iota
	// Gauge attributes move in both directions (e.g. temperature)
	// or change slowly in one direction (e.g. AvailableSpare).
	Gauge
	// Constant attributes do not change after manufacture
	// (e.g. Capacity, AvailableSpareThreshold).
	Constant
)

// Direction states which way an attribute moves as health degrades.
type Direction int

const (
	// HigherWorse means larger values indicate worse health.
	HigherWorse Direction = iota
	// LowerWorse means smaller values indicate worse health.
	LowerWorse
	// Neutral attributes carry workload or identity information only.
	Neutral
)

// Info is the static description of one SMART attribute.
type Info struct {
	ID        ID
	Name      string
	Kind      Kind
	Direction Direction
	// Threshold is the vendor alarm threshold used by the classic
	// SMART-threshold failure detector. For HigherWorse attributes the
	// alarm fires when the value exceeds Threshold; for LowerWorse when
	// it drops below. Zero means no vendor threshold is defined.
	Threshold float64
	// Unit is a human-readable unit string for reports.
	Unit string
}

// catalogue lists the attributes in ID order (index = ID-1).
var catalogue = [Count]Info{
	{CriticalWarning, "Critical Warning", Gauge, HigherWorse, 1, "flags"},
	{CompositeTemperature, "Composite Temperature", Gauge, HigherWorse, 358, "K"},
	{AvailableSpare, "Available Spare", Gauge, LowerWorse, 10, "%"},
	{AvailableSpareThreshold, "Available Spare Threshold", Constant, Neutral, 0, "%"},
	{PercentageUsed, "Percentage Used", Counter, HigherWorse, 100, "%"},
	{DataUnitsRead, "Data Units Read", Counter, Neutral, 0, "units"},
	{DataUnitsWritten, "Data Units Written", Counter, Neutral, 0, "units"},
	{HostReadCommands, "Host Read Commands", Counter, Neutral, 0, "cmds"},
	{HostWriteCommands, "Host Write Commands", Counter, Neutral, 0, "cmds"},
	{ControllerBusyTime, "Controller Busy Time", Counter, Neutral, 0, "min"},
	// Media errors, error-log entries, and unsafe shutdowns carry no
	// vendor alarm threshold: the NVMe critical-warning machinery only
	// reacts to spare depletion, temperature, and read-only mode, which
	// is precisely why the classic detector catches 3–10% of failures
	// (Section II) — most drives die without ever tripping it.
	{PowerCycles, "Power Cycles", Counter, Neutral, 0, "cycles"},
	{PowerOnHours, "Power On Hours", Counter, Neutral, 0, "h"},
	{UnsafeShutdowns, "Unsafe Shutdowns", Counter, HigherWorse, 0, "events"},
	{MediaErrors, "Error Media and Data Integrity Errors", Counter, HigherWorse, 0, "errors"},
	{ErrorLogEntries, "Number of Error Information Log Entries", Counter, HigherWorse, 0, "entries"},
	{Capacity, "Capacity", Constant, Neutral, 0, "GB"},
}

// Lookup returns the static description of id.
// It panics if id is outside [1, Count]; attribute IDs are program
// constants, so an out-of-range ID is a programming error.
func Lookup(id ID) Info {
	if !id.Valid() {
		panic(fmt.Sprintf("smartattr: invalid attribute ID %d", int(id)))
	}
	return catalogue[id-1]
}

// All returns the full catalogue in ID order. The returned slice is a
// copy; callers may modify it freely.
func All() []Info {
	out := make([]Info, Count)
	copy(out[:], catalogue[:])
	return out
}

// Valid reports whether id names a catalogued attribute.
func (id ID) Valid() bool { return id >= 1 && id <= Count }

// Index converts the 1-based attribute ID into a 0-based vector index.
// It panics on invalid IDs.
func (id ID) Index() int {
	if !id.Valid() {
		panic(fmt.Sprintf("smartattr: invalid attribute ID %d", int(id)))
	}
	return int(id) - 1
}

// String returns the attribute's short name (e.g. "Power On Hours").
func (id ID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("S_invalid(%d)", int(id))
	}
	return catalogue[id-1].Name
}

// Label returns the paper's compact label for the attribute, e.g. "S_12".
func (id ID) Label() string {
	if !id.Valid() {
		return fmt.Sprintf("S_invalid(%d)", int(id))
	}
	return fmt.Sprintf("S_%d", int(id))
}

// Values is a dense vector of the 16 SMART attribute values for one
// observation, indexed by ID.Index().
type Values [Count]float64

// Get returns the value of attribute id.
func (v *Values) Get(id ID) float64 { return v[id.Index()] }

// Set assigns the value of attribute id.
func (v *Values) Set(id ID, x float64) { v[id.Index()] = x }

// ExceedsThreshold reports whether any attribute with a vendor threshold
// is in its alarm region. This is the classic SMART-threshold failure
// detector that ships with consumer drives (Section II of the paper:
// 3–10% TPR, ~0.1% FPR).
func (v *Values) ExceedsThreshold() bool {
	for i := range catalogue {
		info := &catalogue[i]
		if info.Threshold == 0 || info.Direction == Neutral {
			continue
		}
		switch info.Direction {
		case HigherWorse:
			if v[i] >= info.Threshold {
				return true
			}
		case LowerWorse:
			if v[i] <= info.Threshold {
				return true
			}
		}
	}
	return false
}
