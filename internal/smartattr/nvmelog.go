package smartattr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// HealthLogSize is the size of the NVMe SMART / Health Information log
// page (Log Identifier 02h).
const HealthLogSize = 512

// Byte offsets within the health log page, per the NVM Express base
// specification. The 16-byte fields are little-endian unsigned 128-bit
// integers; values beyond 2^53 lose precision in the float64 catalogue
// representation, which is irrelevant at consumer-drive magnitudes.
const (
	offCriticalWarning     = 0
	offCompositeTemp       = 1 // uint16, Kelvin
	offAvailableSpare      = 3
	offSpareThreshold      = 4
	offPercentageUsed      = 5
	offDataUnitsRead       = 32
	offDataUnitsWritten    = 48
	offHostReadCommands    = 64
	offHostWriteCommands   = 80
	offControllerBusyTime  = 96
	offPowerCycles         = 112
	offPowerOnHours        = 128
	offUnsafeShutdowns     = 144
	offMediaErrors         = 160
	offErrorInfoLogEntries = 176
)

// ParseHealthLog decodes an NVMe SMART / Health Information log page
// into the attribute catalogue's value vector. The drive capacity is
// not part of the log page (it comes from Identify Namespace), so the
// caller supplies it.
func ParseHealthLog(page []byte, capacityGB float64) (Values, error) {
	var v Values
	if len(page) != HealthLogSize {
		return v, fmt.Errorf("smartattr: health log is %d bytes, want %d", len(page), HealthLogSize)
	}
	v.Set(CriticalWarning, float64(page[offCriticalWarning]))
	v.Set(CompositeTemperature, float64(binary.LittleEndian.Uint16(page[offCompositeTemp:])))
	v.Set(AvailableSpare, float64(page[offAvailableSpare]))
	v.Set(AvailableSpareThreshold, float64(page[offSpareThreshold]))
	v.Set(PercentageUsed, float64(page[offPercentageUsed]))
	v.Set(DataUnitsRead, u128(page[offDataUnitsRead:]))
	v.Set(DataUnitsWritten, u128(page[offDataUnitsWritten:]))
	v.Set(HostReadCommands, u128(page[offHostReadCommands:]))
	v.Set(HostWriteCommands, u128(page[offHostWriteCommands:]))
	v.Set(ControllerBusyTime, u128(page[offControllerBusyTime:]))
	v.Set(PowerCycles, u128(page[offPowerCycles:]))
	v.Set(PowerOnHours, u128(page[offPowerOnHours:]))
	v.Set(UnsafeShutdowns, u128(page[offUnsafeShutdowns:]))
	v.Set(MediaErrors, u128(page[offMediaErrors:]))
	v.Set(ErrorLogEntries, u128(page[offErrorInfoLogEntries:]))
	v.Set(Capacity, capacityGB)
	return v, nil
}

// MarshalHealthLog encodes the catalogue vector back into a log page
// (capacity is dropped: it is not a log-page field). Values are clamped
// to their field ranges and truncated to integers, mirroring what a
// controller would report.
func MarshalHealthLog(v *Values) []byte {
	page := make([]byte, HealthLogSize)
	page[offCriticalWarning] = clamp8(v.Get(CriticalWarning))
	binary.LittleEndian.PutUint16(page[offCompositeTemp:], clamp16(v.Get(CompositeTemperature)))
	page[offAvailableSpare] = clamp8(v.Get(AvailableSpare))
	page[offSpareThreshold] = clamp8(v.Get(AvailableSpareThreshold))
	page[offPercentageUsed] = clamp8(v.Get(PercentageUsed))
	putU128(page[offDataUnitsRead:], v.Get(DataUnitsRead))
	putU128(page[offDataUnitsWritten:], v.Get(DataUnitsWritten))
	putU128(page[offHostReadCommands:], v.Get(HostReadCommands))
	putU128(page[offHostWriteCommands:], v.Get(HostWriteCommands))
	putU128(page[offControllerBusyTime:], v.Get(ControllerBusyTime))
	putU128(page[offPowerCycles:], v.Get(PowerCycles))
	putU128(page[offPowerOnHours:], v.Get(PowerOnHours))
	putU128(page[offUnsafeShutdowns:], v.Get(UnsafeShutdowns))
	putU128(page[offMediaErrors:], v.Get(MediaErrors))
	putU128(page[offErrorInfoLogEntries:], v.Get(ErrorLogEntries))
	return page
}

// u128 reads a little-endian unsigned 128-bit integer as float64. The
// high 64 bits are folded in at 2^64 scale; consumer counters never get
// near that, but the decode stays total.
func u128(b []byte) float64 {
	lo := binary.LittleEndian.Uint64(b)
	hi := binary.LittleEndian.Uint64(b[8:])
	return float64(lo) + float64(hi)*math.Pow(2, 64)
}

func putU128(b []byte, v float64) {
	if v < 0 {
		v = 0
	}
	// Counters at consumer magnitudes fit in 64 bits.
	binary.LittleEndian.PutUint64(b, uint64(v))
	binary.LittleEndian.PutUint64(b[8:], 0)
}

func clamp8(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func clamp16(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(v)
}
