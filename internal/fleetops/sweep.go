package fleetops

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/serve"
)

// The daily sweep is the service's recurring serving workload: score
// every vendor's fleet once per day through the incremental sharded
// engine, instead of pushing models to client agents. Each vendor keeps
// one serve.Scorer whose per-drive rolling state persists across days
// and model iterations.

// SweepStats summarises one SweepDay pass.
type SweepStats struct {
	// Records is how many input records were scored (drives with a
	// trained vendor model).
	Records int
	// Scored is how many assessments were produced (mean-filled days
	// included, dropped entries excluded).
	Scored int
	// Flagged and Alarmed count assessments with those outcomes.
	Flagged int
	Alarmed int
	// Dropped counts records of gap-policy-excluded drives.
	Dropped int
	// NoModel counts records skipped because their vendor has no
	// trained model yet.
	NoModel int
	// Quarantined counts records that newly quarantined their drive;
	// Skipped counts records consumed while their drive was already
	// quarantined.
	Quarantined int
	Skipped     int
	// Degraded counts rows scored by a vendor's fallback detector
	// because its scoring backend failed for the day.
	Degraded int
	// Retries counts transient batch failures that were retried away.
	Retries int
}

// EnsureScorer returns the vendor's sweep scorer, creating it from the
// vendor's current model if needed. opts only applies at creation.
func (s *Service) EnsureScorer(vendor string, opts serve.Options) (*serve.Scorer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vendors[vendor]
	if !ok || st.model == nil {
		return nil, fmt.Errorf("fleetops: no model for vendor %s", vendor)
	}
	if st.scorer == nil {
		sc, err := serve.New(st.model, opts)
		if err != nil {
			return nil, fmt.Errorf("fleetops: vendor %s: %w", vendor, err)
		}
		st.scorer = sc
	}
	return st.scorer, nil
}

// Scorer returns the vendor's sweep scorer, if one exists.
func (s *Service) Scorer(vendor string) (*serve.Scorer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vendors[vendor]
	if !ok || st.scorer == nil {
		return nil, false
	}
	return st.scorer, true
}

// Bootstrap catches the vendor's sweep scorer up from historical
// telemetry in one frame-native bulk pass (no scoring) — the fast path
// for starting daily sweeps mid-collection. The frame must hold raw
// daily counts; drives of other vendors are ignored.
func (s *Service) Bootstrap(f *dataset.Frame, vendor string, opts serve.Options) (serve.ReplayStats, error) {
	sc, err := s.EnsureScorer(vendor, opts)
	if err != nil {
		return serve.ReplayStats{}, err
	}
	return sc.ReplayFrame(f.FilterVendor(vendor))
}

// SweepDay scores one day of fleet telemetry: records are routed to
// their vendor's scorer (created on first sight with opts) and each
// vendor's batch runs through its sharded ObserveDay. Assessments come
// back grouped by vendor in lexicographic vendor order, input order
// within a vendor — deterministic at any worker count. Records of
// vendors without a trained model are counted in stats and skipped.
//
// Transient batch failures (ObserveDay faults fire before any state
// mutates) are retried up to Options.MaxRetries times with exponential
// backoff; corrupt records quarantine their drive inside the scorer
// rather than failing the sweep, so an error return means a vendor's
// whole batch was persistently unscorable.
func (s *Service) SweepDay(recs []dataset.Record, opts serve.Options) ([]serve.Assessment, SweepStats, error) {
	var stats SweepStats
	byVendor := make(map[string][]dataset.Record)
	for i := range recs {
		v := recs[i].Vendor
		byVendor[v] = append(byVendor[v], recs[i])
	}
	vendors := make([]string, 0, len(byVendor))
	for v := range byVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)

	var out []serve.Assessment
	for _, v := range vendors {
		batch := byVendor[v]
		sc, err := s.EnsureScorer(v, opts)
		if err != nil {
			stats.NoModel += len(batch)
			continue
		}
		var as []serve.Assessment
		var sst serve.SweepStats
		retries, err := s.retryTransient(func() error {
			var oerr error
			as, sst, oerr = sc.ObserveDay(batch)
			return oerr
		})
		stats.Retries += retries
		if err != nil {
			return nil, stats, fmt.Errorf("fleetops: vendor %s sweep: %w", v, err)
		}
		stats.Records += len(batch)
		stats.Quarantined += sst.Quarantined
		stats.Skipped += sst.Skipped
		stats.Degraded += sst.Degraded
		for i := range as {
			if as[i].Dropped || as[i].Quarantined {
				if as[i].Dropped {
					stats.Dropped++
				}
				continue
			}
			stats.Scored++
			if as[i].Flagged {
				stats.Flagged++
			}
			if as[i].Alarmed {
				stats.Alarmed++
			}
		}
		out = append(out, as...)
	}
	return out, stats, nil
}
