package fleetops

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/serve"
)

// sweepRecords collects every record of one day across all vendors.
func sweepRecords(t *testing.T, day int) []dataset.Record {
	t.Helper()
	var out []dataset.Record
	fleet(t).Data.Each(func(s *dataset.DriveSeries) {
		for i := range s.Records {
			if s.Records[i].Day == day {
				out = append(out, s.Records[i])
			}
		}
	})
	return out
}

func TestSweepDayAfterBootstrap(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	trainDay := 80
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay); err != nil {
		t.Fatal(err)
	}

	hist, err := dataset.FrameFromDataset(res.Data.Until(trainDay))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Bootstrap(hist, "I", serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Drives == 0 || stats.Records == 0 {
		t.Fatalf("empty bootstrap: %+v", stats)
	}
	if _, ok := s.Scorer("I"); !ok {
		t.Fatal("bootstrap did not create a scorer")
	}
	if _, err := s.Bootstrap(hist, "S", serve.Options{}); err == nil {
		t.Fatal("bootstrap accepted untrained vendor")
	}

	total := SweepStats{}
	for day := trainDay + 1; day <= trainDay+5; day++ {
		recs := sweepRecords(t, day)
		if len(recs) == 0 {
			continue
		}
		as, st, err := s.SweepDay(recs, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Only vendor I has a model; its records score, the rest are
		// counted and skipped.
		var wantI int
		for i := range recs {
			if recs[i].Vendor == "I" {
				wantI++
			}
		}
		if st.Records != wantI || st.NoModel != len(recs)-wantI {
			t.Fatalf("day %d: stats %+v for %d records (%d vendor I)", day, st, len(recs), wantI)
		}
		if st.Scored+st.Dropped != len(as) {
			t.Fatalf("day %d: %d assessments but scored %d + dropped %d", day, len(as), st.Scored, st.Dropped)
		}
		for i := range as {
			if !as[i].Dropped && (as[i].Day > day || as[i].Probability < 0 || as[i].Probability > 1) {
				t.Fatalf("day %d: implausible assessment %+v", day, as[i])
			}
		}
		total.Scored += st.Scored
		total.Records += st.Records
	}
	if total.Scored == 0 || total.Records == 0 {
		t.Fatal("sweep scored nothing")
	}

	// Re-training swaps the scorer's model in place; accumulated drive
	// state survives and the next day's sweep continues from it.
	sc, _ := s.Scorer("I")
	drivesBefore := len(sc.Drives())
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay+5); err != nil {
		t.Fatal(err)
	}
	sc2, _ := s.Scorer("I")
	if sc2 != sc || len(sc2.Drives()) != drivesBefore {
		t.Fatal("re-training replaced or reset the sweep scorer")
	}
	recs := sweepRecords(t, trainDay+6)
	if _, st, err := s.SweepDay(recs, serve.Options{}); err != nil || st.Records == 0 {
		t.Fatalf("post-iteration sweep: stats %+v, err %v", st, err)
	}
}
