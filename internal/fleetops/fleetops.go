// Package fleetops is the fleet-side half of the paper's Fig. 1: a
// service that owns one MFPA model per vendor, re-trains ("iterates")
// each model on a fixed cadence — the paper recommends every two to
// three months — using only the telemetry and tickets visible at that
// date, tracks evaluation history across iterations, and publishes
// modelio envelopes for the client agents to download.
package fleetops

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/modelio"
	"repro/internal/serve"
	"repro/internal/ticket"
)

// Options configures the service.
type Options struct {
	// Template is the pipeline configuration applied to every vendor
	// (Vendor is overwritten per model). Zero-valued fields take the
	// core defaults.
	Template core.Config
	// IterationDays is the re-training cadence; 0 selects 60 (the
	// paper's two months).
	IterationDays int
	// MaxRetries bounds the extra attempts made when a sweep or model
	// swap fails transiently (errors declaring Transient() bool); 0
	// selects 2, negative disables retries.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt; 0 selects 10ms.
	RetryBackoff time.Duration
}

// IterationRecord is one completed training of a vendor model.
type IterationRecord struct {
	// Day is the as-of day the model was trained at.
	Day int
	// Eval is the held-out evaluation measured at training time.
	Eval core.Evaluation
	// Threshold is the calibrated decision threshold.
	Threshold float64
	// TrainSamples is the post-undersampling training set size.
	TrainSamples int
}

// vendorState tracks one vendor's current model, history, and (once
// daily sweeps start) its incremental fleet scorer.
type vendorState struct {
	model   *core.Model
	history []IterationRecord
	scorer  *serve.Scorer
}

// Service manages per-vendor MFPA models. It is safe for concurrent
// use.
type Service struct {
	mu            sync.Mutex
	template      core.Config
	iterationDays int
	maxRetries    int
	retryBackoff  time.Duration
	vendors       map[string]*vendorState
}

// New builds a service.
func New(opts Options) (*Service, error) {
	iter := opts.IterationDays
	if iter == 0 {
		iter = 60
	}
	if iter < 1 {
		return nil, fmt.Errorf("fleetops: IterationDays %d must be ≥ 1", iter)
	}
	retries := opts.MaxRetries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff == 0 {
		backoff = 10 * time.Millisecond
	}
	tpl := opts.Template
	tpl.Vendor = ""
	if tpl.Group.Empty() {
		// Zero template: the paper's best configuration.
		tpl = core.DefaultConfig("")
	}
	if err := tpl.Validate(); err != nil {
		return nil, err
	}
	return &Service{
		template:      tpl,
		iterationDays: iter,
		maxRetries:    retries,
		retryBackoff:  backoff,
		vendors:       make(map[string]*vendorState),
	}, nil
}

// isTransient reports whether err (or anything it wraps) declares
// itself retryable via a Transient() bool method — the structural
// contract injected faults and transport errors share, so fleetops
// never needs to import their packages.
func isTransient(err error) bool {
	var te interface{ Transient() bool }
	return errors.As(err, &te) && te.Transient()
}

// retryTransient runs fn up to 1+s.maxRetries times with exponential
// backoff, retrying only while the error stays transient. It returns
// the number of retries consumed alongside fn's final error.
func (s *Service) retryTransient(fn func() error) (retries int, err error) {
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || attempt >= s.maxRetries || !isTransient(err) {
			return attempt, err
		}
		if s.retryBackoff > 0 {
			time.Sleep(s.retryBackoff << attempt)
		}
	}
}

// Train (re-)trains the vendor's model as of asOfDay: only telemetry
// records observed by then and tickets filed by then are visible, so an
// iteration never peeks at the future.
func (s *Service) Train(data *dataset.Dataset, tickets *ticket.Store, vendor string, asOfDay int) (IterationRecord, error) {
	cfg := s.template
	cfg.Vendor = vendor
	visible := data.Until(asOfDay)
	knownTickets := tickets.Until(asOfDay)
	model, report, err := core.TrainOnFleet(visible, knownTickets, cfg)
	if err != nil {
		return IterationRecord{}, fmt.Errorf("fleetops: vendor %s at day %d: %w", vendor, asOfDay, err)
	}
	rec := IterationRecord{
		Day:          asOfDay,
		Eval:         report.Eval,
		Threshold:    model.Threshold,
		TrainSamples: report.TrainSamples,
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vendors[vendor]
	if !ok {
		st = &vendorState{}
		s.vendors[vendor] = st
	}
	if st.scorer != nil {
		// The sweep scorer keeps its accumulated drive state across
		// iterations; only the model swaps (the template's group never
		// changes, so the state stays valid). Transient swap failures
		// are retried; a persistent failure leaves the previous model
		// both serving and published, so the fleet never sees a
		// half-deployed iteration.
		if _, err := s.retryTransient(func() error { return st.scorer.UpdateModel(model) }); err != nil {
			return rec, fmt.Errorf("fleetops: vendor %s: %w", vendor, err)
		}
	}
	st.model = model
	st.history = append(st.history, rec)
	return rec, nil
}

// NeedsIteration reports whether the vendor's model is due for
// re-training at today: never trained, or trained at least
// IterationDays ago.
func (s *Service) NeedsIteration(vendor string, today int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vendors[vendor]
	if !ok || len(st.history) == 0 {
		return true
	}
	last := st.history[len(st.history)-1].Day
	return today-last >= s.iterationDays
}

// Step re-trains every listed vendor that is due at today and returns
// the vendors that were re-trained.
func (s *Service) Step(data *dataset.Dataset, tickets *ticket.Store, vendors []string, today int) ([]string, error) {
	var retrained []string
	for _, v := range vendors {
		if !s.NeedsIteration(v, today) {
			continue
		}
		if _, err := s.Train(data, tickets, v, today); err != nil {
			return retrained, err
		}
		retrained = append(retrained, v)
	}
	return retrained, nil
}

// Model returns the vendor's current model, if one has been trained.
func (s *Service) Model(vendor string) (*core.Model, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vendors[vendor]
	if !ok || st.model == nil {
		return nil, false
	}
	return st.model, true
}

// Publish serialises the vendor's current model for distribution to
// client agents.
func (s *Service) Publish(vendor string) ([]byte, error) {
	m, ok := s.Model(vendor)
	if !ok {
		return nil, fmt.Errorf("fleetops: no model for vendor %s", vendor)
	}
	return modelio.Marshal(m)
}

// History returns the vendor's iteration records, oldest first.
func (s *Service) History(vendor string) []IterationRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vendors[vendor]
	if !ok {
		return nil
	}
	out := make([]IterationRecord, len(st.history))
	copy(out, st.history)
	return out
}

// Vendors returns the vendors with at least one trained model, sorted.
func (s *Service) Vendors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.vendors))
	for v := range s.vendors {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
