package fleetops

import (
	"testing"

	"repro/internal/core"
	"repro/internal/modelio"
	"repro/internal/simfleet"
)

var fleetCache *simfleet.Result

func fleet(t *testing.T) *simfleet.Result {
	t.Helper()
	if fleetCache == nil {
		cfg := simfleet.TinyConfig()
		cfg.Days = 120
		cfg.FailureScale = 0.05
		res, err := simfleet.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fleetCache = res
	}
	return fleetCache
}

func TestNewDefaults(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.NeedsIteration("I", 0) {
		t.Fatal("untrained vendor should need iteration")
	}
	if _, ok := s.Model("I"); ok {
		t.Fatal("model exists before training")
	}
	if _, err := New(Options{IterationDays: -1}); err == nil {
		t.Fatal("negative cadence accepted")
	}
}

func TestTrainAndIterate(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{IterationDays: 30})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Train(res.Data, res.Tickets, "I", 80)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Day != 80 || rec.TrainSamples == 0 {
		t.Fatalf("record = %+v", rec)
	}
	if s.NeedsIteration("I", 80) || s.NeedsIteration("I", 100) {
		t.Fatal("fresh model flagged as stale")
	}
	if !s.NeedsIteration("I", 110) {
		t.Fatal("30-day-old model not flagged")
	}

	// Step retrains exactly the due vendors.
	retrained, err := s.Step(res.Data, res.Tickets, []string{"I"}, 115)
	if err != nil {
		t.Fatal(err)
	}
	if len(retrained) != 1 || retrained[0] != "I" {
		t.Fatalf("retrained = %v", retrained)
	}
	hist := s.History("I")
	if len(hist) != 2 || hist[0].Day != 80 || hist[1].Day != 115 {
		t.Fatalf("history = %+v", hist)
	}
	if got := s.Vendors(); len(got) != 1 || got[0] != "I" {
		t.Fatalf("vendors = %v", got)
	}
}

func TestTrainSeesOnlyThePast(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// As of day 60, tickets filed later must be invisible: training at
	// 60 uses strictly fewer labelled failures than training at the end.
	early, err := s.Train(res.Data, res.Tickets, "I", 60)
	if err != nil {
		t.Fatal(err)
	}
	late, err := s.Train(res.Data, res.Tickets, "I", 119)
	if err != nil {
		t.Fatal(err)
	}
	if early.TrainSamples >= late.TrainSamples {
		t.Fatalf("early training saw %d samples, late %d — future data leaked",
			early.TrainSamples, late.TrainSamples)
	}
}

func TestPublishRoundTrip(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("I"); err == nil {
		t.Fatal("publish before training should fail")
	}
	if _, err := s.Train(res.Data, res.Tickets, "I", 119); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Publish("I")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := modelio.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	current, _ := s.Model("I")
	if restored.Threshold != current.Threshold {
		t.Fatal("published model differs from the live one")
	}
}

func TestTemplateValidation(t *testing.T) {
	bad := core.DefaultConfig("")
	bad.TrainFrac = 2
	if _, err := New(Options{Template: bad}); err == nil {
		t.Fatal("invalid template accepted")
	}
}
