package fleetops

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// TestSweepDayRetriesTransientFaults: a transient ObserveDay fault is
// retried away inside SweepDay — the sweep succeeds, counts its
// retries, and scores exactly what a fault-free sweep would.
func TestSweepDayRetriesTransientFaults(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{RetryBackoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	trainDay := 80
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay); err != nil {
		t.Fatal(err)
	}
	faults := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 11, ObserveFirst: 2})
	opts := serve.Options{Faults: serve.FaultHooks{Observe: faults.Observe}}
	if _, err := s.EnsureScorer("I", opts); err != nil {
		t.Fatal(err)
	}

	recs := sweepRecords(t, trainDay+1)
	as, st, err := s.SweepDay(recs, opts)
	if err != nil {
		t.Fatalf("sweep failed despite retries: %v", err)
	}
	if st.Retries != 2 {
		t.Fatalf("stats counted %d retries, want 2", st.Retries)
	}
	if st.Scored == 0 || len(as) == 0 {
		t.Fatalf("retried sweep scored nothing: %+v", st)
	}
	observe, _, _ := faults.Fired()
	if observe != 2 {
		t.Fatalf("injector fired %d observe faults, want 2", observe)
	}
}

// TestSweepDayGivesUpOnPersistentFault: when the fault outlasts the
// retry budget the sweep errors instead of spinning.
func TestSweepDayGivesUpOnPersistentFault(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{MaxRetries: 1, RetryBackoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	trainDay := 80
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay); err != nil {
		t.Fatal(err)
	}
	faults := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 11, ObserveFirst: 1000})
	opts := serve.Options{Faults: serve.FaultHooks{Observe: faults.Observe}}
	if _, err := s.EnsureScorer("I", opts); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SweepDay(sweepRecords(t, trainDay+1), opts); err == nil {
		t.Fatal("persistent fault did not surface")
	}
	observe, _, _ := faults.Fired()
	if observe != 2 {
		t.Fatalf("injector fired %d times, want 2 (1 try + 1 retry)", observe)
	}
}

// TestTrainRetriesModelSwap: a transient model-swap fault during
// iteration is retried; a persistent one leaves the previous model
// both serving and published.
func TestTrainRetriesModelSwap(t *testing.T) {
	res := fleet(t)
	s, err := New(Options{RetryBackoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	trainDay := 80
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay); err != nil {
		t.Fatal(err)
	}
	faults := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 13, SwapFirst: 1})
	opts := serve.Options{Faults: serve.FaultHooks{Swap: faults.Swap}}
	if _, err := s.EnsureScorer("I", opts); err != nil {
		t.Fatal(err)
	}

	// One forced swap fault: the retry inside Train clears it.
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay+10); err != nil {
		t.Fatalf("iteration failed despite swap retry: %v", err)
	}
	_, _, swaps := faults.Fired()
	if swaps != 1 {
		t.Fatalf("injector fired %d swap faults, want 1", swaps)
	}
	prev, ok := s.Model("I")
	if !ok {
		t.Fatal("model vanished")
	}

	// Persistent swap failure: Train errors and neither the published
	// model nor the history advances.
	persistent := faultinject.NewScorerFaults(faultinject.ScorerConfig{Seed: 13, SwapFirst: 1000})
	st := s.vendors["I"]
	st.scorer = nil
	if _, err := s.EnsureScorer("I", serve.Options{Faults: serve.FaultHooks{Swap: persistent.Swap}}); err != nil {
		t.Fatal(err)
	}
	histBefore := len(s.History("I"))
	if _, err := s.Train(res.Data, res.Tickets, "I", trainDay+20); err == nil {
		t.Fatal("persistent swap failure did not surface")
	}
	if got, _ := s.Model("I"); got != prev {
		t.Fatal("failed iteration replaced the published model")
	}
	if len(s.History("I")) != histBefore {
		t.Fatal("failed iteration appended to history")
	}
}
