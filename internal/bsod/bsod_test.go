package bsod

import "testing"

func TestCatalogueMatchesTableIV(t *testing.T) {
	// Table IV lists 22 stop codes.
	if got := Count(); got != 22 {
		t.Fatalf("Count() = %d, want 22", got)
	}
	// Spot-check well-known codes.
	cases := []struct {
		code Code
		name string
	}{
		{PageFaultInNonpagedArea, "PAGE_FAULT_IN_NONPAGED_AREA"},
		{KernelDataInpageError, "KERNEL_DATA_INPAGE_ERROR"},
		{NTFSFileSystem, "NTFS_FILE_SYSTEM"},
		{StatusCannotLoad, "STATUS_CANNOT_LOAD"},
	}
	for _, tc := range cases {
		info, ok := Lookup(tc.code)
		if !ok {
			t.Errorf("Lookup(%#x) failed", int(tc.code))
			continue
		}
		if info.Name != tc.name {
			t.Errorf("Lookup(%#x).Name = %q, want %q", int(tc.code), info.Name, tc.name)
		}
	}
}

func TestStorageRelatedSubset(t *testing.T) {
	storage := StorageRelated()
	if len(storage) == 0 {
		t.Fatal("no storage-related codes")
	}
	if len(storage) >= Count() {
		t.Fatal("all codes marked storage-related; healthy machines need non-storage BSODs")
	}
	// The key pre-failure signals must be storage-related.
	for _, code := range []Code{PageFaultInNonpagedArea, KernelDataInpageError, NTFSFileSystem} {
		info, _ := Lookup(code)
		if !info.StorageRelated {
			t.Errorf("%v should be storage-related", code)
		}
	}
}

func TestLabels(t *testing.T) {
	if got := PageFaultInNonpagedArea.Label(); got != "B_50" {
		t.Fatalf("Label = %q, want B_50", got)
	}
	if got := KernelDataInpageError.Label(); got != "B_7A" {
		t.Fatalf("Label = %q, want B_7A", got)
	}
	if got := Code(0x42).String(); got != "B_42" {
		t.Fatalf("unknown code String = %q, want B_42", got)
	}
	if got := NTFSFileSystem.String(); got != "NTFS_FILE_SYSTEM" {
		t.Fatalf("known code String = %q", got)
	}
}

func TestIndexDense(t *testing.T) {
	seen := make(map[int]bool)
	for _, info := range All() {
		idx := info.Code.Index()
		if idx < 0 || idx >= Count() || seen[idx] {
			t.Fatalf("bad or duplicate index %d for %v", idx, info.Code)
		}
		seen[idx] = true
	}
}

func TestIndexPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index of unknown code should panic")
		}
	}()
	Code(0xDEADBEEF).Index()
}

func TestCounts(t *testing.T) {
	c := NewCounts()
	if len(c) != Count() {
		t.Fatalf("NewCounts len = %d, want %d", len(c), Count())
	}
	c.Add(PageFaultInNonpagedArea, 1)
	c.Add(KernelDataInpageError, 2)
	if got := c.Get(KernelDataInpageError); got != 2 {
		t.Errorf("Get = %g, want 2", got)
	}
	if got := c.Total(); got != 3 {
		t.Errorf("Total = %g, want 3", got)
	}
}

func TestValid(t *testing.T) {
	if !NTFSFileSystem.Valid() {
		t.Error("NTFS code should be valid")
	}
	if Code(0x1).Valid() {
		t.Error("0x1 should be invalid")
	}
}
