// Package bsod catalogues the Windows blue-screen-of-death stop codes
// that the paper's Observation #4 links to SSD failures (Table IV).
// Damaged storage drives, bad sectors, and file-system corruption all
// surface as these codes; the fleet simulator emits them on the same
// channels the modelling layer consumes.
package bsod

import "fmt"

// Code is a Windows stop code (bug-check code).
type Code int

// Stop codes tracked by the paper (Table IV).
const (
	FATFileSystem             Code = 0x23  // FAT_FILE_SYSTEM
	NTFSFileSystem            Code = 0x24  // NTFS_FILE_SYSTEM
	CancelStateInCompletedIRP Code = 0x48  // CANCEL_STATE_IN_COMPLETED_IRP
	PageFaultInNonpagedArea   Code = 0x50  // PAGE_FAULT_IN_NONPAGED_AREA
	ProcessInitializationFail Code = 0x6B  // PROCESS1_INITIALIZATION_FAILED
	KernelStackInpageError    Code = 0x77  // KERNEL_STACK_INPAGE_ERROR
	KernelDataInpageError     Code = 0x7A  // KERNEL_DATA_INPAGE_ERROR
	NMIHardwareFailure        Code = 0x80  // NMI_HARDWARE_FAILURE
	UDFSFileSystem            Code = 0x9B  // UDFS_FILE_SYSTEM
	TimerOrDPCInvalid         Code = 0xC7  // TIMER_OR_DPC_INVALID
	SystemPTEMisuse           Code = 0xDA  // SYSTEM_PTE_MISUSE
	WorkerInvalid             Code = 0xE4  // WORKER_INVALID
	AttemptedExecuteOfNX      Code = 0xFC  // ATTEMPTED_EXECUTE_OF_NOEXECUTE_MEMORY
	FsRtlExtraCreateParameter Code = 0x10C // FSRTL_EXTRA_CREATE_PARAMETER_VIOLATION
	ExFATFileSystem           Code = 0x12C // EXFAT_FILE_SYSTEM
	RegistryFilterException   Code = 0x135 // REGISTRY_FILTER_DRIVER_EXCEPTION
	PassiveInterruptError     Code = 0x13B // PASSIVE_INTERRUPT_ERROR
	KernelThreadPriorityFloor Code = 0x157 // KERNEL_THREAD_PRIORITY_FLOOR_VIOLATION
	MicrocodeRevisionMismatch Code = 0x17E // MICROCODE_REVISION_MISMATCH
	BadObjectHeader           Code = 0x189 // BAD_OBJECT_HEADER
	IPIWatchdogTimeout        Code = 0x1DB // IPI_WATCHDOG_TIMEOUT
	StatusCannotLoad          Code = 0xC00 // STATUS_CANNOT_LOAD
)

// Info describes one catalogued stop code.
type Info struct {
	Code Code
	Name string
	// StorageRelated marks codes whose dominant root cause is the
	// storage stack (paging/inpage errors, file-system corruption);
	// these are the strongest pre-failure signals. Feature selection in
	// the paper highlights B_50 and B_7A.
	StorageRelated bool
}

var catalogue = []Info{
	{FATFileSystem, "FAT_FILE_SYSTEM", true},
	{NTFSFileSystem, "NTFS_FILE_SYSTEM", true},
	{CancelStateInCompletedIRP, "CANCEL_STATE_IN_COMPLETED_IRP", false},
	{PageFaultInNonpagedArea, "PAGE_FAULT_IN_NONPAGED_AREA", true},
	{ProcessInitializationFail, "PROCESS1_INITIALIZATION_FAILED", false},
	{KernelStackInpageError, "KERNEL_STACK_INPAGE_ERROR", true},
	{KernelDataInpageError, "KERNEL_DATA_INPAGE_ERROR", true},
	{NMIHardwareFailure, "NMI_HARDWARE_FAILURE", false},
	{UDFSFileSystem, "UDFS_FILE_SYSTEM", true},
	{TimerOrDPCInvalid, "TIMER_OR_DPC_INVALID", false},
	{SystemPTEMisuse, "SYSTEM_PTE_MISUSE", false},
	{WorkerInvalid, "WORKER_INVALID", false},
	{AttemptedExecuteOfNX, "ATTEMPTED_EXECUTE_OF_NOEXECUTE_MEMORY", false},
	{FsRtlExtraCreateParameter, "FSRTL_EXTRA_CREATE_PARAMETER_VIOLATION", false},
	{ExFATFileSystem, "EXFAT_FILE_SYSTEM", true},
	{RegistryFilterException, "REGISTRY_FILTER_DRIVER_EXCEPTION", false},
	{PassiveInterruptError, "PASSIVE_INTERRUPT_ERROR", false},
	{KernelThreadPriorityFloor, "KERNEL_THREAD_PRIORITY_FLOOR_VIOLATION", false},
	{MicrocodeRevisionMismatch, "MICROCODE_REVISION_MISMATCH", false},
	{BadObjectHeader, "BAD_OBJECT_HEADER", false},
	{IPIWatchdogTimeout, "IPI_WATCHDOG_TIMEOUT", false},
	{StatusCannotLoad, "STATUS_CANNOT_LOAD", true},
}

var indexByCode = func() map[Code]int {
	m := make(map[Code]int, len(catalogue))
	for i, info := range catalogue {
		m[info.Code] = i
	}
	return m
}()

// Count is the number of catalogued stop codes (22 from Table IV; the
// paper's Table V counts 23 BSOD features — the extra feature there is
// the total daily BSOD count, which the dataset layer derives).
func Count() int { return len(catalogue) }

// All returns the catalogue in table order. The slice is a copy.
func All() []Info {
	out := make([]Info, len(catalogue))
	copy(out, catalogue)
	return out
}

// StorageRelated returns the codes whose dominant root cause is the
// storage stack.
func StorageRelated() []Info {
	var out []Info
	for _, info := range catalogue {
		if info.StorageRelated {
			out = append(out, info)
		}
	}
	return out
}

// Lookup returns the description of code and whether it is catalogued.
func Lookup(code Code) (Info, bool) {
	i, ok := indexByCode[code]
	if !ok {
		return Info{}, false
	}
	return catalogue[i], true
}

// Index returns the dense 0-based catalogue position of code, used to
// index per-code count vectors. It panics on unknown codes: stop codes
// are program constants.
func (c Code) Index() int {
	i, ok := indexByCode[c]
	if !ok {
		panic(fmt.Sprintf("bsod: unknown stop code %#x", int(c)))
	}
	return i
}

// Valid reports whether code is catalogued.
func (c Code) Valid() bool {
	_, ok := indexByCode[c]
	return ok
}

// Label returns the paper's compact label, e.g. "B_50" for 0x50.
func (c Code) Label() string { return fmt.Sprintf("B_%X", int(c)) }

// String returns the symbolic stop-code name when catalogued, or the
// compact label otherwise.
func (c Code) String() string {
	if info, ok := Lookup(c); ok {
		return info.Name
	}
	return c.Label()
}

// Counts is a dense per-day count vector over the catalogue, indexed by
// Code.Index().
type Counts []float64

// NewCounts returns a zeroed count vector sized for the catalogue.
func NewCounts() Counts { return make(Counts, len(catalogue)) }

// Add increments the count of code by n.
func (c Counts) Add(code Code, n float64) { c[code.Index()] += n }

// Get returns the count of code.
func (c Counts) Get(code Code) float64 { return c[code.Index()] }

// Total returns the sum over all stop codes.
func (c Counts) Total() float64 {
	var t float64
	for _, v := range c {
		t += v
	}
	return t
}
