package labeling

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ticket"
)

// IdentifyFrame is Identify on the columnar data plane: the closest
// tracking point is found by binary search on the drive's day column,
// with the same earlier-wins tie rule as DriveSeries.Closest, so the
// resulting labels match Identify on the equivalent dataset exactly.
func IdentifyFrame(f *dataset.Frame, tickets *ticket.Store, theta int) (Labels, error) {
	if theta < 0 {
		return nil, fmt.Errorf("labeling: theta %d must be ≥ 0", theta)
	}
	labels := make(Labels)
	for _, sn := range tickets.SerialNumbers() {
		t, ok := tickets.First(sn)
		if !ok {
			continue
		}
		di, ok := f.DriveIndex(sn)
		if !ok {
			continue
		}
		d := f.Drive(di)
		day := closestDay(f, d, t.IMT)
		interval := t.IMT - day
		if interval < 0 {
			interval = -interval
		}
		label := Label{SerialNumber: sn, IMT: t.IMT, Interval: interval}
		if interval <= theta {
			label.FailDay = day
		} else {
			label.FailDay = t.IMT - theta
			label.Fallback = true
		}
		if label.FailDay < 0 {
			label.FailDay = 0
		}
		labels[sn] = label
	}
	return labels, nil
}

// closestDay returns the drive's observation day nearest to target
// (earlier wins ties). Frame drives always have at least one row.
func closestDay(f *dataset.Frame, d *dataset.FrameDrive, target int) int {
	lo, hi := int(d.Start), int(d.End)
	i := lo + sort.Search(hi-lo, func(k int) bool { return int(f.Day(lo+k)) >= target })
	switch {
	case i == lo:
		return int(f.Day(lo))
	case i == hi:
		return int(f.Day(hi - 1))
	}
	before, after := int(f.Day(i-1)), int(f.Day(i))
	if target-before <= after-target {
		return before
	}
	return after
}
