package labeling

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ticket"
)

// frameOf converts a test dataset to a frame, failing on error.
func frameOf(t *testing.T, d *dataset.Dataset) *dataset.Frame {
	t.Helper()
	f, err := dataset.FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestIdentifyFrameMatchesIdentify fuzzes day layouts and ticket
// placements: the binary-search labelling over the frame's day column
// must agree with the record-path linear scan, including the
// earlier-day tie break on equidistant tracking points.
func TestIdentifyFrameMatchesIdentify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		days := map[string][]int{}
		var tickets []ticket.Ticket
		drives := 1 + rng.Intn(6)
		for i := 0; i < drives; i++ {
			sn := string(rune('A' + i))
			day := rng.Intn(3)
			n := 1 + rng.Intn(15)
			for j := 0; j < n; j++ {
				days[sn] = append(days[sn], day)
				day += 1 + rng.Intn(6)
			}
			if rng.Intn(3) > 0 {
				tickets = append(tickets, ticket.Ticket{SerialNumber: sn, IMT: rng.Intn(day + 10)})
			}
		}
		data := buildData(t, days)
		store := storeWith(tickets...)
		theta := rng.Intn(10)
		want, err := Identify(data, store, theta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := IdentifyFrame(frameOf(t, data), store, theta)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (theta=%d): frame labels %+v, want %+v", trial, theta, got, want)
		}
	}
}

func TestIdentifyFrameEquidistantPrefersEarlierDay(t *testing.T) {
	// Tracking points at 10 and 14, IMT 12: both are 2 away; the
	// record path takes the earlier day.
	data := buildData(t, map[string][]int{"A": {10, 14}})
	store := storeWith(ticket.Ticket{SerialNumber: "A", IMT: 12})
	want, err := Identify(data, store, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := IdentifyFrame(frameOf(t, data), store, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got["A"].FailDay != 10 || !reflect.DeepEqual(got, want) {
		t.Fatalf("frame label %+v, record label %+v", got["A"], want["A"])
	}
}

func TestIdentifyFrameRejectsNegativeTheta(t *testing.T) {
	data := buildData(t, map[string][]int{"A": {1}})
	if _, err := IdentifyFrame(frameOf(t, data), ticket.NewStore(), -1); err == nil {
		t.Fatal("negative θ accepted")
	}
}
