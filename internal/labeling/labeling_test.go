package labeling

import (
	"testing"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/ticket"
	"repro/internal/winevent"
)

func buildData(t *testing.T, days map[string][]int) *dataset.Dataset {
	t.Helper()
	d := dataset.New()
	for sn, list := range days {
		for _, day := range list {
			r := dataset.Record{
				SerialNumber: sn,
				Vendor:       "I",
				Model:        "M",
				Day:          day,
				Firmware:     "FW",
				WCounts:      winevent.NewCounts(),
				BCounts:      bsod.NewCounts(),
			}
			if err := d.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func storeWith(tickets ...ticket.Ticket) *ticket.Store {
	s := ticket.NewStore()
	for _, tk := range tickets {
		s.Add(tk)
	}
	return s
}

func TestIdentifyClosePoint(t *testing.T) {
	// Last record on day 20; IMT on day 24 → interval 4 ≤ θ=7 → label
	// the closest tracking point (day 20).
	data := buildData(t, map[string][]int{"A": {10, 15, 20}})
	labels, err := Identify(data, storeWith(ticket.Ticket{SerialNumber: "A", IMT: 24}), 7)
	if err != nil {
		t.Fatal(err)
	}
	lbl, ok := labels["A"]
	if !ok {
		t.Fatal("drive A not labelled")
	}
	if lbl.FailDay != 20 {
		t.Fatalf("FailDay = %d, want 20", lbl.FailDay)
	}
	if lbl.Fallback {
		t.Fatal("close point should not use the fallback")
	}
	if lbl.Interval != 4 {
		t.Fatalf("Interval = %d, want 4", lbl.Interval)
	}
}

func TestIdentifyFallback(t *testing.T) {
	// Last record on day 10; IMT on day 30 → interval 20 > θ=7 →
	// fall back to IMT − θ = 23.
	data := buildData(t, map[string][]int{"A": {5, 10}})
	labels, err := Identify(data, storeWith(ticket.Ticket{SerialNumber: "A", IMT: 30}), 7)
	if err != nil {
		t.Fatal(err)
	}
	lbl := labels["A"]
	if !lbl.Fallback {
		t.Fatal("expected fallback")
	}
	if lbl.FailDay != 23 {
		t.Fatalf("FailDay = %d, want 23", lbl.FailDay)
	}
}

func TestIdentifyClampsAtZero(t *testing.T) {
	data := buildData(t, map[string][]int{"A": {50}})
	// IMT 3 with θ 7 → fallback would be negative → clamp to 0. The
	// closest record (day 50) is 47 away, so the fallback path fires.
	labels, err := Identify(data, storeWith(ticket.Ticket{SerialNumber: "A", IMT: 3}), 7)
	if err != nil {
		t.Fatal(err)
	}
	if lbl := labels["A"]; lbl.FailDay != 0 {
		t.Fatalf("FailDay = %d, want clamped 0", lbl.FailDay)
	}
}

func TestIdentifySkipsDrivesWithoutTelemetry(t *testing.T) {
	data := buildData(t, map[string][]int{"A": {1}})
	labels, err := Identify(data, storeWith(ticket.Ticket{SerialNumber: "GHOST", IMT: 5}), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 0 {
		t.Fatalf("labelled %d drives, want 0", len(labels))
	}
}

func TestIdentifyUsesEarliestTicket(t *testing.T) {
	data := buildData(t, map[string][]int{"A": {10, 20, 30}})
	labels, err := Identify(data, storeWith(
		ticket.Ticket{SerialNumber: "A", IMT: 32},
		ticket.Ticket{SerialNumber: "A", IMT: 12},
	), 7)
	if err != nil {
		t.Fatal(err)
	}
	if lbl := labels["A"]; lbl.IMT != 12 {
		t.Fatalf("IMT = %d, want earliest 12", lbl.IMT)
	}
}

func TestIdentifyRejectsNegativeTheta(t *testing.T) {
	data := buildData(t, map[string][]int{"A": {1}})
	if _, err := Identify(data, ticket.NewStore(), -1); err == nil {
		t.Fatal("negative θ accepted")
	}
}

func TestThetaZeroIsExact(t *testing.T) {
	// θ=0: only a tracking point exactly on the IMT qualifies.
	data := buildData(t, map[string][]int{"A": {10}})
	labels, err := Identify(data, storeWith(ticket.Ticket{SerialNumber: "A", IMT: 10}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lbl := labels["A"]; lbl.Fallback || lbl.FailDay != 10 {
		t.Fatalf("label = %+v", lbl)
	}
}

func TestSummarise(t *testing.T) {
	l := Labels{
		"A": {Interval: 2},
		"B": {Interval: 10, Fallback: true},
	}
	s := Summarise(l)
	if s.Labelled != 2 || s.Fallbacks != 1 || s.MeanInterval != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if empty := Summarise(Labels{}); empty.MeanInterval != 0 {
		t.Fatal("empty labels should have zero mean interval")
	}
}

func TestFaultySet(t *testing.T) {
	l := Labels{"A": {}, "B": {}}
	set := l.FaultySet()
	if !set["A"] || !set["B"] || set["C"] {
		t.Fatalf("FaultySet = %v", set)
	}
}
