// Package labeling identifies the eventual failure time of faulty
// drives (the paper's Section III-C(2), Fig. 7). Consumer users do not
// seek repair immediately, so a trouble ticket's initial maintenance
// time (IMT) lags the actual failure; MFPA labels the tracking point
// closest to the IMT when that interval is at most θ, and falls back to
// IMT − θ otherwise. The paper sets θ = 7 through a sensitivity test
// (reproduced by the theta ablation bench).
package labeling

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ticket"
)

// DefaultTheta is the paper's θ threshold in days.
const DefaultTheta = 7

// Label is the resolved failure time of one faulty drive.
type Label struct {
	SerialNumber string
	// FailDay is the labelled failure day on the telemetry axis.
	FailDay int
	// IMT is the ticket's initial maintenance time.
	IMT int
	// Interval is |IMT − nearest tracking point| before resolution.
	Interval int
	// Fallback reports that the θ fallback (IMT − θ) was used because
	// no tracking point fell within θ of the IMT.
	Fallback bool
}

// Labels maps serial numbers to resolved failure labels. Drives absent
// from the map are healthy (no RaSRF ticket).
type Labels map[string]Label

// FaultySet returns the set of labelled (faulty) serial numbers.
func (l Labels) FaultySet() map[string]bool {
	out := make(map[string]bool, len(l))
	for sn := range l {
		out[sn] = true
	}
	return out
}

// Identify resolves failure times for every ticketed drive present in
// data. Ticketed drives with no telemetry at all are skipped (they
// cannot contribute training samples); drives whose earliest ticket
// precedes all telemetry are labelled at their first tracking point.
func Identify(data *dataset.Dataset, tickets *ticket.Store, theta int) (Labels, error) {
	if theta < 0 {
		return nil, fmt.Errorf("labeling: theta %d must be ≥ 0", theta)
	}
	labels := make(Labels)
	for _, sn := range tickets.SerialNumbers() {
		t, ok := tickets.First(sn)
		if !ok {
			continue
		}
		series, ok := data.Series(sn)
		if !ok || len(series.Records) == 0 {
			continue
		}
		rec, ok := series.Closest(t.IMT)
		if !ok {
			continue
		}
		interval := t.IMT - rec.Day
		if interval < 0 {
			interval = -interval
		}
		label := Label{SerialNumber: sn, IMT: t.IMT, Interval: interval}
		if interval <= theta {
			// The tracking point closest to the IMT is the failure time.
			label.FailDay = rec.Day
		} else {
			// Fall back to IMT − θ: the drive was certainly already
			// degrading by then, and labelling any earlier would mix
			// healthy-looking data into the positive class.
			label.FailDay = t.IMT - theta
			label.Fallback = true
		}
		if label.FailDay < 0 {
			label.FailDay = 0
		}
		labels[sn] = label
	}
	return labels, nil
}

// Stats summarises a labelling pass for reports and the θ sensitivity
// experiment.
type Stats struct {
	Labelled  int
	Fallbacks int
	// MeanInterval is the average |IMT − tracking point| gap in days.
	MeanInterval float64
}

// Summarise computes labelling statistics.
func Summarise(l Labels) Stats {
	var s Stats
	var sum float64
	for _, lab := range l {
		s.Labelled++
		if lab.Fallback {
			s.Fallbacks++
		}
		sum += float64(lab.Interval)
	}
	if s.Labelled > 0 {
		s.MeanInterval = sum / float64(s.Labelled)
	}
	return s
}
