package features

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/labeling"
	"repro/internal/ml"
	"repro/internal/parallel"
)

// BuildOptions controls labelled-sample construction.
type BuildOptions struct {
	// PositiveWindowDays: records of a faulty drive within this many
	// days before (and including) the labelled failure day become
	// positive samples (the paper uses 7, 14, or 21).
	PositiveWindowDays int
	// NegativeFromFaulty, when set, also emits a faulty drive's records
	// *older* than ExclusionDays before failure as negatives. The paper
	// draws negatives from healthy drives only, so this defaults off.
	NegativeFromFaulty bool
	// ExclusionDays guards the label boundary: faulty-drive records in
	// (failDay−PositiveWindowDays−ExclusionDays, failDay−PositiveWindowDays]
	// are dropped entirely — they are too close to failure to be safe
	// negatives but too early to be confident positives.
	ExclusionDays int
	// Workers bounds the per-drive extraction goroutines; 0 selects
	// GOMAXPROCS, 1 reproduces serial extraction. Sample content and
	// order are identical at any setting.
	Workers int
}

// DefaultBuildOptions matches the paper: 7-day positive window,
// negatives from healthy drives only, 7 guard days.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{PositiveWindowDays: 7, ExclusionDays: 7}
}

// BuildSamples constructs flat per-record samples from a cumulated,
// cleaned dataset and its failure labels. Extraction fans out across
// opts.Workers goroutines (0 = GOMAXPROCS, 1 = serial); per-drive
// sample slices are concatenated in dataset order, so the output is
// identical at any worker count.
func BuildSamples(data *dataset.Dataset, labels labeling.Labels, e *Extractor, opts BuildOptions) ([]ml.Sample, error) {
	if opts.PositiveWindowDays < 1 {
		return nil, fmt.Errorf("features: PositiveWindowDays %d must be ≥ 1", opts.PositiveWindowDays)
	}
	// Register every firmware version serially before fanning out, so
	// Extract performs only reads on the shared extractor.
	e.prime(data)
	sns := data.SerialNumbers()
	perDrive, err := parallel.Map(len(sns), opts.Workers, func(i int) ([]ml.Sample, error) {
		s, _ := data.Series(sns[i])
		return buildDriveSamples(s, labels, e, &opts), nil
	})
	if err != nil {
		return nil, err
	}
	samples := concatSamples(perDrive)
	if len(samples) == 0 {
		return nil, fmt.Errorf("features: no samples produced")
	}
	return samples, nil
}

// rowLabel applies the labelling rules of BuildOptions to one record
// of a drive: the returned label is valid only when keep is true —
// dropped records are post-failure stragglers, guard-band rows, and
// (by default) the early history of faulty drives.
func rowLabel(faulty bool, failDay, day int, opts *BuildOptions) (y int8, keep bool) {
	switch {
	case !faulty:
		return 0, true
	case day > failDay:
		return 0, false
	case day > failDay-opts.PositiveWindowDays:
		return 1, true
	case day > failDay-opts.PositiveWindowDays-opts.ExclusionDays:
		return 0, false // guard band
	default:
		return 0, opts.NegativeFromFaulty
	}
}

// BuildSampleSet is BuildSamples in columnar form: it extracts the
// fleet directly into one flat feature arena and returns the shared
// ml.SampleSet that the zero-copy view pipeline — splits,
// under-sampling, CV folds, grid search, feature selection — operates
// on. Construction is two-pass: a cheap labelling pass counts each
// drive's surviving rows, then every drive extracts straight into its
// pre-computed arena segment in parallel — no per-row vector
// allocations, no per-drive chunk buffers, no concatenation copy. Row
// content and order are identical to BuildSamples at any worker count.
func BuildSampleSet(data *dataset.Dataset, labels labeling.Labels, e *Extractor, opts BuildOptions) (*ml.SampleSet, error) {
	if opts.PositiveWindowDays < 1 {
		return nil, fmt.Errorf("features: PositiveWindowDays %d must be ≥ 1", opts.PositiveWindowDays)
	}
	e.prime(data)
	width := e.Width()
	sns := data.SerialNumbers()
	counts, err := parallel.Map(len(sns), opts.Workers, func(i int) (int, error) {
		s, _ := data.Series(sns[i])
		label, faulty := labels[s.SerialNumber]
		n := 0
		for j := range s.Records {
			if _, keep := rowLabel(faulty, label.FailDay, s.Records[j].Day, &opts); keep {
				n++
			}
		}
		return n, nil
	})
	if err != nil {
		return nil, err
	}
	offs := make([]int, len(sns)+1)
	for i, c := range counts {
		offs[i+1] = offs[i] + c
	}
	total := offs[len(sns)]
	if total == 0 {
		return nil, fmt.Errorf("features: no samples produced")
	}
	x := make([]float64, total*width)
	y := make([]int8, total)
	day := make([]int32, total)
	sn := make([]string, total)
	if err := parallel.Do(len(sns), opts.Workers, func(i int) error {
		s, _ := data.Series(sns[i])
		label, faulty := labels[s.SerialNumber]
		lo, hi := offs[i], offs[i+1]
		xseg := x[lo*width : lo*width : hi*width]
		j := lo
		for k := range s.Records {
			r := &s.Records[k]
			yk, keep := rowLabel(faulty, label.FailDay, r.Day, &opts)
			if !keep {
				continue
			}
			xseg = e.ExtractInto(r, xseg)
			y[j] = yk
			day[j] = int32(r.Day)
			sn[j] = s.SerialNumber
			j++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return ml.NewSampleSet(width, x, y, day, sn)
}

// buildDriveSamples labels and extracts one drive's records.
func buildDriveSamples(s *dataset.DriveSeries, labels labeling.Labels, e *Extractor, opts *BuildOptions) []ml.Sample {
	label, faulty := labels[s.SerialNumber]
	samples := make([]ml.Sample, 0, len(s.Records))
	for i := range s.Records {
		r := &s.Records[i]
		var y int
		switch {
		case !faulty:
			y = 0
		case r.Day > label.FailDay:
			// Post-failure stragglers (possible when the labelled
			// day precedes the last log) are not trustworthy.
			continue
		case r.Day > label.FailDay-opts.PositiveWindowDays:
			y = 1
		case r.Day > label.FailDay-opts.PositiveWindowDays-opts.ExclusionDays:
			continue // guard band
		default:
			if !opts.NegativeFromFaulty {
				continue
			}
			y = 0
		}
		samples = append(samples, ml.Sample{
			X:   e.Extract(r),
			Y:   y,
			SN:  s.SerialNumber,
			Day: r.Day,
		})
	}
	return samples
}

// concatSamples flattens per-drive sample slices with one exact-sized
// allocation.
func concatSamples(perDrive [][]ml.Sample) []ml.Sample {
	total := 0
	for _, p := range perDrive {
		total += len(p)
	}
	samples := make([]ml.Sample, 0, total)
	for _, p := range perDrive {
		samples = append(samples, p...)
	}
	return samples
}

// BuildSeqSamples constructs sequence samples for the CNN_LSTM: sliding
// windows of seqLen consecutive *records* per drive, flattened
// time-major (X[t*width+f]). A window is positive when its final record
// falls in the positive window. Because consumer telemetry is
// discontinuous, the records inside a window may span far more calendar
// days than seqLen — exactly the data-quality hazard the paper blames
// for CNN_LSTM's weaker results.
func BuildSeqSamples(data *dataset.Dataset, labels labeling.Labels, e *Extractor, seqLen int, opts BuildOptions) ([]ml.Sample, error) {
	if seqLen < 1 {
		return nil, fmt.Errorf("features: seqLen %d must be ≥ 1", seqLen)
	}
	if opts.PositiveWindowDays < 1 {
		return nil, fmt.Errorf("features: PositiveWindowDays %d must be ≥ 1", opts.PositiveWindowDays)
	}
	e.prime(data)
	width := e.Width()
	sns := data.SerialNumbers()
	perDrive, err := parallel.Map(len(sns), opts.Workers, func(di int) ([]ml.Sample, error) {
		s, _ := data.Series(sns[di])
		if len(s.Records) < seqLen {
			return nil, nil
		}
		label, faulty := labels[s.SerialNumber]
		vecs := make([][]float64, len(s.Records))
		for i := range s.Records {
			vecs[i] = e.Extract(&s.Records[i])
		}
		samples := make([]ml.Sample, 0, len(s.Records)-seqLen+1)
		for end := seqLen - 1; end < len(s.Records); end++ {
			last := &s.Records[end]
			var y int
			switch {
			case !faulty:
				y = 0
			case last.Day > label.FailDay:
				continue
			case last.Day > label.FailDay-opts.PositiveWindowDays:
				y = 1
			case last.Day > label.FailDay-opts.PositiveWindowDays-opts.ExclusionDays:
				continue
			default:
				if !opts.NegativeFromFaulty {
					continue
				}
				y = 0
			}
			x := make([]float64, seqLen*width)
			for t := 0; t < seqLen; t++ {
				copy(x[t*width:(t+1)*width], vecs[end-seqLen+1+t])
			}
			samples = append(samples, ml.Sample{
				X:   x,
				Y:   y,
				SN:  s.SerialNumber,
				Day: last.Day,
			})
		}
		return samples, nil
	})
	if err != nil {
		return nil, err
	}
	samples := concatSamples(perDrive)
	if len(samples) == 0 {
		return nil, fmt.Errorf("features: no sequence samples produced")
	}
	return samples, nil
}

// PositiveSamplesAt extracts one evaluation sample per faulty drive at
// exactly lookahead days before its labelled failure (nearest record
// within ±tolerance days). Used by the Fig. 19 lookahead sweep: can the
// model already see the failure N days out?
func PositiveSamplesAt(data *dataset.Dataset, labels labeling.Labels, e *Extractor, lookahead, tolerance int) []ml.Sample {
	var samples []ml.Sample
	for sn, label := range labels {
		series, ok := data.Series(sn)
		if !ok {
			continue
		}
		target := label.FailDay - lookahead
		if target < 0 {
			continue
		}
		rec, ok := series.Closest(target)
		if !ok {
			continue
		}
		diff := rec.Day - target
		if diff < 0 {
			diff = -diff
		}
		if diff > tolerance || rec.Day > label.FailDay {
			continue
		}
		samples = append(samples, ml.Sample{
			X:   e.Extract(rec),
			Y:   1,
			SN:  sn,
			Day: rec.Day,
		})
	}
	return samples
}
