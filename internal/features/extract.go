package features

import (
	"fmt"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// Extractor turns telemetry records into dense feature vectors for one
// feature group. It owns the per-vendor firmware label encoders, so
// encoding is stable across train and test extraction.
type Extractor struct {
	group    Group
	encoders map[string]*firmware.Encoder
	names    []string
	// wevents caches the selected Windows-event IDs in table order:
	// winevent.Selected copies the catalogue on every call, which at one
	// call per record dominated batch extraction's allocations.
	wevents []winevent.ID
	// wIdx holds the selected events' positions in the full counter
	// vector, so the frame builder gathers W features straight from a
	// column row without ID lookups.
	wIdx []int
	// primedFor remembers the last dataset primed, so repeated builds
	// over the same prepared dataset skip the full firmware re-scan.
	primedFor *dataset.Dataset
	// primedForFrame is primedFor for the columnar build path.
	primedForFrame *dataset.Frame
}

// NewExtractor builds an extractor for group. registries supplies the
// per-vendor firmware release ladders used for order-preserving label
// encoding; vendors absent from the map fall back to first-seen-order
// encoding.
func NewExtractor(group Group, registries map[string]*firmware.Registry) (*Extractor, error) {
	if group.Empty() {
		return nil, fmt.Errorf("features: empty feature group")
	}
	e := &Extractor{
		group:    group,
		encoders: make(map[string]*firmware.Encoder),
	}
	for vendor, reg := range registries {
		e.encoders[vendor] = firmware.NewEncoder(reg)
	}
	e.names = buildNames(group)
	if group.WEvents {
		for _, info := range winevent.Selected() {
			e.wevents = append(e.wevents, info.ID)
			e.wIdx = append(e.wIdx, info.ID.Index())
		}
	}
	return e, nil
}

func buildNames(group Group) []string {
	var names []string
	if group.SMART {
		for id := smartattr.ID(1); id <= smartattr.Count; id++ {
			names = append(names, id.Label())
		}
	}
	if group.Firmware {
		names = append(names, "F")
	}
	if group.WEvents {
		for _, info := range winevent.Selected() {
			names = append(names, info.ID.Label())
		}
	}
	if group.BSOD {
		for _, info := range bsod.All() {
			names = append(names, info.Code.Label())
		}
		names = append(names, "B_total")
	}
	return names
}

// Group returns the extractor's feature group.
func (e *Extractor) Group() Group { return e.group }

// Width returns the feature vector length.
func (e *Extractor) Width() int { return len(e.names) }

// Names returns the feature names in vector order. The slice is shared;
// callers must not modify it.
func (e *Extractor) Names() []string { return e.names }

// encoder returns (creating if needed) the vendor's firmware encoder.
func (e *Extractor) encoder(vendor string) *firmware.Encoder {
	enc, ok := e.encoders[vendor]
	if !ok {
		enc = firmware.NewEncoder(nil)
		e.encoders[vendor] = enc
	}
	return enc
}

// prime registers every (vendor, firmware version) pair of data with
// the extractor's encoders, visiting records in dataset order. After
// priming, Extract performs only reads on the extractor, so the batch
// builders can fan extraction out across goroutines; it also fixes the
// first-seen-order codes of registry-unknown versions to dataset order
// rather than extraction order, keeping the encoding independent of
// scheduling. No-op for groups without the firmware feature.
func (e *Extractor) prime(data *dataset.Dataset) {
	if !e.group.Firmware {
		return
	}
	if e.primedFor == data {
		// Priming is idempotent; skipping the re-scan is safe as long as
		// the dataset is not mutated between builds (Prepare freezes it).
		return
	}
	data.Each(func(s *dataset.DriveSeries) {
		for i := range s.Records {
			e.encoder(s.Records[i].Vendor).Encode(s.Records[i].Firmware)
		}
	})
	e.primedFor = data
}

// primeFrame is prime for the columnar path: it registers firmware
// versions in the same drive-then-row order the dataset scan uses, so
// registry-unknown versions get identical first-seen codes. Rows with
// an unchanged interned firmware code are skipped — encoding is
// per-version, so only code changes matter.
func (e *Extractor) primeFrame(f *dataset.Frame) {
	if !e.group.Firmware {
		return
	}
	if e.primedForFrame == f {
		return
	}
	for di := 0; di < f.Drives(); di++ {
		d := f.Drive(di)
		enc := e.encoder(d.Vendor)
		last := int32(-1)
		for r := int(d.Start); r < int(d.End); r++ {
			if id := f.FirmwareID(r); id != last {
				enc.Encode(f.FirmwareByID(id))
				last = id
			}
		}
	}
	e.primedForFrame = f
}

// PrimeFrame registers every (vendor, firmware version) pair of f with
// the extractor's encoders, in the same drive-then-row order the
// offline build uses. After priming, feature extraction over the
// frame's versions performs only reads on the extractor, so serving
// paths can fan out across goroutines. No-op for groups without the
// firmware feature.
func (e *Extractor) PrimeFrame(f *dataset.Frame) { e.primeFrame(f) }

// PrimeVersion registers one (vendor, firmware version) pair, creating
// the vendor's encoder if needed. Online scorers call it serially for
// each incoming record before fanning extraction out, so the encoder
// maps are never written concurrently and registry-unknown versions get
// first-seen codes in arrival order. No-op for groups without the
// firmware feature.
func (e *Extractor) PrimeVersion(vendor string, v firmware.Version) {
	if !e.group.Firmware {
		return
	}
	e.encoder(vendor).Encode(v)
}

// appendCumRow appends the feature vector of one already-cumulated
// drive-day — SMART values, firmware version, and the running W/B
// totals held by a RollingState — to dst. It is ExtractInto without the
// Record: the serving data plane keeps cumulates in flat slices and
// never materialises records. After priming, it only reads the
// extractor.
func (e *Extractor) appendCumRow(vendor string, smart []float64, fw firmware.Version, cumW, cumB []float64, dst []float64) []float64 {
	if e.group.SMART {
		dst = append(dst, smart...)
	}
	if e.group.Firmware {
		dst = append(dst, e.encoder(vendor).Encode(fw))
	}
	if e.group.WEvents {
		for _, idx := range e.wIdx {
			dst = append(dst, cumW[idx])
		}
	}
	if e.group.BSOD {
		dst = append(dst, cumB...)
		// Same index-order summation as Counts.Total.
		tot := 0.0
		for _, v := range cumB {
			tot += v
		}
		dst = append(dst, tot)
	}
	return dst
}

// Extract builds the feature vector of r. The W and B counters are used
// as stored — run dataset.Cumulate first to follow the paper's
// accumulated-count preprocessing.
func (e *Extractor) Extract(r *dataset.Record) []float64 {
	return e.ExtractInto(r, make([]float64, 0, e.Width()))
}

// ExtractInto appends r's feature vector to dst and returns the
// extended slice — the allocation-free primitive behind the columnar
// sample arena: BuildSampleSet extracts whole drives into one chunk
// instead of one heap vector per record.
func (e *Extractor) ExtractInto(r *dataset.Record, dst []float64) []float64 {
	if e.group.SMART {
		dst = append(dst, r.Smart[:]...)
	}
	if e.group.Firmware {
		dst = append(dst, e.encoder(r.Vendor).Encode(r.Firmware))
	}
	if e.group.WEvents {
		for _, id := range e.wevents {
			dst = append(dst, r.WCounts.Get(id))
		}
	}
	if e.group.BSOD {
		dst = append(dst, r.BCounts...)
		dst = append(dst, r.BCounts.Total())
	}
	return dst
}
