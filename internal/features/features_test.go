package features

import (
	"math"
	"testing"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/labeling"
	"repro/internal/ml"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

func TestGroupNames(t *testing.T) {
	cases := map[string]Group{
		"SFWB": GroupSFWB, "SFW": GroupSFW, "SFB": GroupSFB,
		"SF": GroupSF, "S": GroupS, "W": GroupW, "B": GroupB,
	}
	for want, g := range cases {
		if got := g.String(); got != want {
			t.Errorf("group %v renders %q, want %q", g, got, want)
		}
	}
	if got := (Group{}).String(); got != "∅" {
		t.Errorf("empty group renders %q", got)
	}
	if !(Group{}).Empty() || GroupS.Empty() {
		t.Error("Empty() misbehaves")
	}
	if len(AllGroups()) != 7 {
		t.Error("AllGroups should list the seven Table V groups")
	}
}

func testRegistry() map[string]*firmware.Registry {
	return map[string]*firmware.Registry{
		"I": firmware.MustNewRegistry("I", []firmware.Release{
			{Version: "FW1", Seq: 1, HazardMultiplier: 2, ShipShare: 0.5},
			{Version: "FW2", Seq: 2, HazardMultiplier: 1, ShipShare: 0.5},
		}),
	}
}

func testRecord() *dataset.Record {
	r := &dataset.Record{
		SerialNumber: "A",
		Vendor:       "I",
		Model:        "M",
		Day:          3,
		Firmware:     "FW2",
		WCounts:      winevent.NewCounts(),
		BCounts:      bsod.NewCounts(),
	}
	r.Smart.Set(smartattr.PowerOnHours, 1234)
	r.Smart.Set(smartattr.MediaErrors, 5)
	r.WCounts.Add(winevent.PagingError, 7)
	r.BCounts.Add(bsod.PageFaultInNonpagedArea, 2)
	r.BCounts.Add(bsod.NTFSFileSystem, 1)
	return r
}

func TestExtractorWidths(t *testing.T) {
	widths := map[string]int{
		"SFWB": 16 + 1 + 5 + 23,
		"SFW":  16 + 1 + 5,
		"SFB":  16 + 1 + 23,
		"SF":   17,
		"S":    16,
		"W":    5,
		"B":    23,
	}
	for _, g := range AllGroups() {
		e, err := NewExtractor(g, testRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Width(); got != widths[g.String()] {
			t.Errorf("group %s width = %d, want %d", g, got, widths[g.String()])
		}
		if len(e.Names()) != e.Width() {
			t.Errorf("group %s: %d names for width %d", g, len(e.Names()), e.Width())
		}
		if got := len(e.Extract(testRecord())); got != e.Width() {
			t.Errorf("group %s: extracted %d values", g, got)
		}
	}
}

func TestNewExtractorRejectsEmptyGroup(t *testing.T) {
	if _, err := NewExtractor(Group{}, nil); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestExtractValues(t *testing.T) {
	e, err := NewExtractor(GroupSFWB, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	x := e.Extract(testRecord())
	names := e.Names()
	at := func(name string) float64 {
		for i, n := range names {
			if n == name {
				return x[i]
			}
		}
		t.Fatalf("feature %s missing", name)
		return 0
	}
	if got := at("S_12"); got != 1234 {
		t.Errorf("S_12 = %g, want 1234", got)
	}
	if got := at("S_14"); got != 5 {
		t.Errorf("S_14 = %g, want 5", got)
	}
	if got := at("F"); got != 2 {
		t.Errorf("F = %g, want release seq 2", got)
	}
	if got := at("W_51"); got != 7 {
		t.Errorf("W_51 = %g, want 7", got)
	}
	if got := at("B_50"); got != 2 {
		t.Errorf("B_50 = %g, want 2", got)
	}
	if got := at("B_total"); got != 3 {
		t.Errorf("B_total = %g, want 3", got)
	}
}

func TestExtractorUnknownVendorFallback(t *testing.T) {
	e, err := NewExtractor(GroupSF, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord()
	r.Vendor = "X"
	x := e.Extract(r)
	if x[16] != 1 {
		t.Fatalf("first-seen firmware code = %g, want 1", x[16])
	}
}

func TestScaler(t *testing.T) {
	samples := []ml.Sample{
		{X: []float64{1, 100}, Y: 0},
		{X: []float64{3, 300}, Y: 1},
	}
	s, err := FitScaler(samples)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Mean 0, unit variance per column.
	for col := 0; col < 2; col++ {
		var mean, varSum float64
		for _, o := range out {
			mean += o.X[col]
		}
		mean /= float64(len(out))
		for _, o := range out {
			d := o.X[col] - mean
			varSum += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Errorf("col %d mean = %g", col, mean)
		}
		if math.Abs(varSum/float64(len(out))-1) > 1e-9 {
			t.Errorf("col %d variance = %g", col, varSum/float64(len(out)))
		}
	}
	// Inputs untouched.
	if samples[0].X[0] != 1 {
		t.Fatal("Transform mutated input")
	}
	// Vector path agrees.
	v := s.TransformVec([]float64{1, 100})
	if v[0] != out[0].X[0] || v[1] != out[0].X[1] {
		t.Fatal("TransformVec disagrees with Transform")
	}
}

func TestScalerConstantColumn(t *testing.T) {
	samples := []ml.Sample{{X: []float64{5}, Y: 0}, {X: []float64{5}, Y: 1}}
	s, err := FitScaler(samples)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := s.Transform(samples)
	if math.IsNaN(out[0].X[0]) || math.IsInf(out[0].X[0], 0) {
		t.Fatal("constant column produced non-finite value")
	}
}

func TestScalerWidthMismatch(t *testing.T) {
	s, _ := FitScaler([]ml.Sample{{X: []float64{1, 2}, Y: 0}})
	if _, err := s.Transform([]ml.Sample{{X: []float64{1}, Y: 0}}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestMask(t *testing.T) {
	samples := []ml.Sample{{X: []float64{10, 20, 30}, Y: 1, SN: "a", Day: 5}}
	out := Mask(samples, []int{2, 0})
	if len(out[0].X) != 2 || out[0].X[0] != 30 || out[0].X[1] != 10 {
		t.Fatalf("Mask = %v", out[0].X)
	}
	if out[0].Y != 1 || out[0].SN != "a" || out[0].Day != 5 {
		t.Fatal("Mask dropped metadata")
	}
	if samples[0].X[0] != 10 {
		t.Fatal("Mask mutated input")
	}
}

// buildFixture builds a small labelled dataset: one faulty drive (fails
// day 20) and one healthy drive, observed daily over days 0..20.
func buildFixture(t *testing.T) (*dataset.Dataset, labeling.Labels, *Extractor) {
	t.Helper()
	d := dataset.New()
	for _, sn := range []string{"faulty", "healthy"} {
		for day := 0; day <= 20; day++ {
			r := dataset.Record{
				SerialNumber: sn, Vendor: "I", Model: "M", Day: day, Firmware: "FW1",
				WCounts: winevent.NewCounts(), BCounts: bsod.NewCounts(),
			}
			r.Smart.Set(smartattr.PowerOnHours, float64(day))
			if err := d.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	labels := labeling.Labels{"faulty": {SerialNumber: "faulty", FailDay: 20}}
	e, err := NewExtractor(GroupS, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, labels, e
}

func TestBuildSamplesLabels(t *testing.T) {
	d, labels, e := buildFixture(t)
	opts := BuildOptions{PositiveWindowDays: 7, ExclusionDays: 7}
	samples, err := BuildSamples(d, labels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg, guard int
	for _, s := range samples {
		switch {
		case s.SN == "healthy":
			if s.Y != 0 {
				t.Fatal("healthy sample labelled positive")
			}
			neg++
		case s.Y == 1:
			// Positive window: days 14..20.
			if s.Day <= 13 {
				t.Fatalf("positive at day %d outside window", s.Day)
			}
			pos++
		default:
			guard++
		}
	}
	if pos != 7 {
		t.Fatalf("positives = %d, want 7", pos)
	}
	if neg != 21 {
		t.Fatalf("negatives = %d, want 21", neg)
	}
	// Guard band drops days 7..13; earlier days dropped too because
	// NegativeFromFaulty is false.
	if guard != 0 {
		t.Fatalf("faulty drive leaked %d unlabelled samples", guard)
	}
}

func TestBuildSamplesNegativeFromFaulty(t *testing.T) {
	d, labels, e := buildFixture(t)
	opts := BuildOptions{PositiveWindowDays: 7, ExclusionDays: 7, NegativeFromFaulty: true}
	samples, err := BuildSamples(d, labels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	oldNeg := 0
	for _, s := range samples {
		if s.SN == "faulty" && s.Y == 0 {
			// days 0..6 (guard band covers 7..13)
			if s.Day > 6 {
				t.Fatalf("faulty negative at day %d inside guard band", s.Day)
			}
			oldNeg++
		}
	}
	if oldNeg != 7 {
		t.Fatalf("faulty negatives = %d, want 7", oldNeg)
	}
}

func TestBuildSamplesValidation(t *testing.T) {
	d, labels, e := buildFixture(t)
	if _, err := BuildSamples(d, labels, e, BuildOptions{}); err == nil {
		t.Fatal("zero positive window accepted")
	}
}

func TestBuildSeqSamplesShape(t *testing.T) {
	d, labels, e := buildFixture(t)
	opts := BuildOptions{PositiveWindowDays: 7, ExclusionDays: 7}
	const seqLen = 3
	samples, err := BuildSeqSamples(d, labels, e, seqLen, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := seqLen * e.Width()
	for _, s := range samples {
		if len(s.X) != want {
			t.Fatalf("sequence width = %d, want %d", len(s.X), want)
		}
	}
	// Time-major layout: the S_12 (PowerOnHours) of step t equals
	// day −(seqLen−1−t) relative to the end day.
	idx := smartattr.PowerOnHours.Index()
	for _, s := range samples {
		for step := 0; step < seqLen; step++ {
			wantHours := float64(s.Day - (seqLen - 1 - step))
			if got := s.X[step*e.Width()+idx]; got != wantHours {
				t.Fatalf("day %d step %d hours = %g, want %g", s.Day, step, got, wantHours)
			}
		}
	}
}

func TestPositiveSamplesAt(t *testing.T) {
	d, labels, e := buildFixture(t)
	// 5 days before the day-20 failure → day 15 record.
	pos := PositiveSamplesAt(d, labels, e, 5, 1)
	if len(pos) != 1 {
		t.Fatalf("probes = %d, want 1", len(pos))
	}
	if pos[0].Day != 15 || pos[0].Y != 1 {
		t.Fatalf("probe = %+v", pos[0])
	}
	// A lookahead beyond the telemetry start yields nothing.
	if got := PositiveSamplesAt(d, labels, e, 50, 1); len(got) != 0 {
		t.Fatalf("impossible lookahead produced %d probes", len(got))
	}
}

func TestParseGroup(t *testing.T) {
	for _, g := range AllGroups() {
		got, ok := ParseGroup(g.String())
		if !ok || got != g {
			t.Errorf("ParseGroup(%q) = %v, %v", g.String(), got, ok)
		}
	}
	if _, ok := ParseGroup("XYZ"); ok {
		t.Error("ParseGroup accepted garbage")
	}
}
