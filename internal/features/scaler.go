package features

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// Scaler is a per-feature z-score transform fitted on training data.
// SMART counters span ten orders of magnitude (PowerOnHours vs
// CriticalWarning), so margin- and distance-based models need this;
// tree models are scale-invariant and can skip it.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler estimates per-feature mean and standard deviation.
func FitScaler(samples []ml.Sample) (*Scaler, error) {
	if err := ml.ValidateSamples(samples, false); err != nil {
		return nil, err
	}
	width := len(samples[0].X)
	s := &Scaler{Mean: make([]float64, width), Std: make([]float64, width)}
	n := float64(len(samples))
	for i := range samples {
		for j, v := range samples[i].X {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for i := range samples {
		for j, v := range samples[i].X {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns scaled copies of samples; inputs are not mutated.
func (s *Scaler) Transform(samples []ml.Sample) ([]ml.Sample, error) {
	out := make([]ml.Sample, len(samples))
	for i := range samples {
		if len(samples[i].X) != len(s.Mean) {
			return nil, fmt.Errorf("features: sample width %d, scaler width %d", len(samples[i].X), len(s.Mean))
		}
		out[i] = samples[i]
		x := make([]float64, len(samples[i].X))
		for j, v := range samples[i].X {
			x[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i].X = x
	}
	return out, nil
}

// TransformVec scales a single vector.
func (s *Scaler) TransformVec(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// Mask restricts samples to the feature indexes in keep, in order —
// the projection primitive used by sequential forward selection.
func Mask(samples []ml.Sample, keep []int) []ml.Sample {
	out := make([]ml.Sample, len(samples))
	for i := range samples {
		out[i] = samples[i]
		x := make([]float64, len(keep))
		for j, idx := range keep {
			x[j] = samples[i].X[idx]
		}
		out[i].X = x
	}
	return out
}
