package features

import (
	"fmt"
	"testing"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/labeling"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// benchFleet mirrors fleetFixture for benchmarks: drives observed
// daily, a third of them labelled faulty, three firmware versions.
func benchFleet(b *testing.B, drives, days int) (*dataset.Dataset, labeling.Labels) {
	b.Helper()
	d := dataset.New()
	labels := labeling.Labels{}
	for dr := 0; dr < drives; dr++ {
		sn := fmt.Sprintf("D%03d", dr)
		fw := firmware.Version(fmt.Sprintf("FW%d", dr%3))
		for day := 0; day < days; day++ {
			r := dataset.Record{
				SerialNumber: sn, Vendor: "I", Model: "M", Day: day,
				Firmware: fw,
				WCounts:  winevent.NewCounts(), BCounts: bsod.NewCounts(),
			}
			r.Smart.Set(smartattr.PowerOnHours, float64(dr*100+day))
			r.WCounts.Add(winevent.PagingError, float64(day%2))
			if err := d.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		if dr%3 == 0 {
			labels[sn] = labeling.Label{SerialNumber: sn, FailDay: days - 1}
		}
	}
	return d, labels
}

// BenchmarkBuildSamplesWorkers compares the serial per-drive extraction
// loop against the full fan-out.
func BenchmarkBuildSamplesWorkers(b *testing.B) {
	d, labels := benchFleet(b, 150, 90)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := DefaultBuildOptions()
			opts.Workers = bc.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := NewExtractor(GroupSFWB, nil)
				if err != nil {
					b.Fatal(err)
				}
				samples, err := BuildSamples(d, labels, e, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(samples) == 0 {
					b.Fatal("no samples")
				}
			}
		})
	}
}
