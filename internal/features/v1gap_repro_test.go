package features

import (
	"testing"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// Reproduction: v1 agent state reconstructed via RollingFromSnapshot
// (cumulates only, no PrevW/PrevB/PrevSmart), then a record with a
// fillable gap under an active gap policy.
func TestV1SnapshotThenFillGap(t *testing.T) {
	nw, nb := winevent.Count(), bsod.Count()
	cw := make([]float64, nw)
	cb := make([]float64, nb)
	st, err := RollingFromSnapshot(RollingSnapshot{LastDay: 0, Observed: 1, Rows: 1, CumW: cw, CumB: cb})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{
		SerialNumber: "SN1", Vendor: "I", Day: 3,
		Smart:    [smartattr.Count]float64{},
		WCounts:  make(winevent.Counts, nw),
		BCounts:  make(bsod.Counts, nb),
		Firmware: "fw1",
	}
	policy := dataset.GapPolicy{DropGap: 10, FillGap: 3}
	_, _, err = st.Advance(e, policy, &rec, make([]float64, 0, e.Width()), nil)
	if err == nil {
		t.Fatal("fillable gap after a v1 restore must error: the previous record needed for the mean fill is missing")
	}
	t.Log(err)
}
