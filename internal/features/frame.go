package features

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/labeling"
	"repro/internal/ml"
	"repro/internal/parallel"
)

// BuildSampleSetFrame is BuildSampleSet reading straight from the
// columnar frame — the final stage of the fused pipeline. Labelling
// walks the day column, feature extraction copies or gathers column
// rows into the sample arena, and firmware encoding is looked up only
// when a drive's interned code changes. Row content and order are
// bit-identical to BuildSampleSet on the equivalent dataset at any
// worker count.
func BuildSampleSetFrame(f *dataset.Frame, labels labeling.Labels, e *Extractor, opts BuildOptions) (*ml.SampleSet, error) {
	if opts.PositiveWindowDays < 1 {
		return nil, fmt.Errorf("features: PositiveWindowDays %d must be ≥ 1", opts.PositiveWindowDays)
	}
	e.primeFrame(f)
	width := e.Width()
	counts, err := parallel.Map(f.Drives(), opts.Workers, func(i int) (int, error) {
		d := f.Drive(i)
		label, faulty := labels[d.SerialNumber]
		n := 0
		for r := int(d.Start); r < int(d.End); r++ {
			if _, keep := rowLabel(faulty, label.FailDay, int(f.Day(r)), &opts); keep {
				n++
			}
		}
		return n, nil
	})
	if err != nil {
		return nil, err
	}
	offs := make([]int, f.Drives()+1)
	for i, c := range counts {
		offs[i+1] = offs[i] + c
	}
	total := offs[f.Drives()]
	if total == 0 {
		return nil, fmt.Errorf("features: no samples produced")
	}
	x := make([]float64, total*width)
	y := make([]int8, total)
	day := make([]int32, total)
	sn := make([]string, total)
	g := e.group
	if err := parallel.Do(f.Drives(), opts.Workers, func(i int) error {
		d := f.Drive(i)
		label, faulty := labels[d.SerialNumber]
		var enc func(id int32) float64
		if g.Firmware {
			venc := e.encoder(d.Vendor)
			lastID, lastCode := int32(-1), 0.0
			enc = func(id int32) float64 {
				if id != lastID {
					lastCode = venc.Encode(f.FirmwareByID(id))
					lastID = id
				}
				return lastCode
			}
		}
		j := offs[i]
		for r := int(d.Start); r < int(d.End); r++ {
			rd := int(f.Day(r))
			yk, keep := rowLabel(faulty, label.FailDay, rd, &opts)
			if !keep {
				continue
			}
			row := x[j*width : (j+1)*width]
			k := 0
			if g.SMART {
				k += copy(row[k:], f.SmartRow(r))
			}
			if g.Firmware {
				row[k] = enc(f.FirmwareID(r))
				k++
			}
			if g.WEvents {
				w := f.WRow(r)
				for _, idx := range e.wIdx {
					row[k] = w[idx]
					k++
				}
			}
			if g.BSOD {
				b := f.BRow(r)
				k += copy(row[k:], b)
				// Same index-order summation as Counts.Total.
				tot := 0.0
				for _, v := range b {
					tot += v
				}
				row[k] = tot
			}
			y[j] = yk
			day[j] = int32(rd)
			sn[j] = d.SerialNumber
			j++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return ml.NewSampleSet(width, x, y, day, sn)
}
