// Package features implements MFPA's feature engineering: the SFWB
// feature-group sets of Table V, vector extraction from telemetry
// records, per-vendor firmware label encoding, standardisation, and the
// construction of labelled training samples (flat and sequence-shaped).
package features

import "strings"

// Group selects which feature families a model sees (Table V).
type Group struct {
	SMART    bool // S: the 16 SMART attributes of Table II
	Firmware bool // F: the label-encoded firmware version
	WEvents  bool // W: the 5 selected WindowsEvent counters
	BSOD     bool // B: the 22 stop-code counters plus the total (23)
}

// The seven feature groups evaluated by the paper (Table V).
var (
	GroupSFWB = Group{SMART: true, Firmware: true, WEvents: true, BSOD: true}
	GroupSFW  = Group{SMART: true, Firmware: true, WEvents: true}
	GroupSFB  = Group{SMART: true, Firmware: true, BSOD: true}
	GroupSF   = Group{SMART: true, Firmware: true}
	GroupS    = Group{SMART: true}
	GroupW    = Group{WEvents: true}
	GroupB    = Group{BSOD: true}
)

// AllGroups returns the paper's seven groups in Table V order.
func AllGroups() []Group {
	return []Group{GroupSFWB, GroupSFW, GroupSFB, GroupSF, GroupS, GroupW, GroupB}
}

// String names the group as in Table V (e.g. "SFWB", "SF", "B").
func (g Group) String() string {
	var b strings.Builder
	if g.SMART {
		b.WriteByte('S')
	}
	if g.Firmware {
		b.WriteByte('F')
	}
	if g.WEvents {
		b.WriteByte('W')
	}
	if g.BSOD {
		b.WriteByte('B')
	}
	if b.Len() == 0 {
		return "∅"
	}
	return b.String()
}

// Empty reports whether the group selects no features.
func (g Group) Empty() bool {
	return !g.SMART && !g.Firmware && !g.WEvents && !g.BSOD
}

// ParseGroup resolves a Table V group name ("SFWB", "SF", "B", …).
func ParseGroup(name string) (Group, bool) {
	for _, g := range AllGroups() {
		if g.String() == name {
			return g, true
		}
	}
	return Group{}, false
}
