package features

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/smartattr"
)

// This file is the incremental half of the feature pipeline: a
// per-drive RollingState that replays the offline preprocessing —
// discontinuity optimisation (mean-fill short gaps, drop drives with
// long ones) followed by the cumulative W/B transform and feature
// extraction — one observation at a time, in O(1) amortised work per
// drive-day. Advance is pinned bit-identical (math.Float64bits) to the
// feature rows BuildSampleSetFrame produces for the same drive-day:
//
//   - mean-fill uses the same element-wise (a+b)/2 of the two adjacent
//     raw daily observations, with the firmware version carried from
//     the earlier record, and the same synthetic record repeated for
//     every filled day;
//   - the running cumulates add each daily vector exactly once, in day
//     order — the same additions, in the same order, as the offline
//     sequential Cumulate sweep (IEEE-754 addition is commutative, so
//     cum += daily reproduces the offline cur += prev bits);
//   - extraction is ExtractInto's field order over the cumulated view.
//
// The offline path drops a drive retroactively when any gap reaches
// DropGap; the online path can only drop it from the moment the gap is
// observed. Rows emitted before the drop are exactly the rows the
// offline pipeline would have produced had the series ended there.

// EmittedRow describes one feature row produced by Advance: the day it
// represents and whether it was synthesised by mean-fill rather than
// observed.
type EmittedRow struct {
	Day          int32
	Interpolated bool
}

// RollingWindow is the trailing-day capacity of the state's diagnostic
// ring buffers (daily W/B event totals and the MediaErrors attribute).
const RollingWindow = 8

// RollingState is one drive's incremental preprocessing state: the
// running W/B cumulates the model's features are built from, the
// previous raw daily observation (the left endpoint of a future
// mean-fill), last-seen/gap tracking, and fixed-size ring buffers of
// recent daily aggregates for diagnostics. The zero-allocating Advance
// methods make it cheap enough to keep one per drive for fleet-scale
// daily scoring.
//
// A RollingState is not safe for concurrent use; the serving layer
// shards drives so each state is only ever touched by one goroutine.
type RollingState struct {
	lastDay  int
	observed int // raw observations consumed
	rows     int // feature rows emitted (fills included)
	dropped  bool

	// Running cumulates over the (filled) series, full catalogue width.
	cumW, cumB []float64

	// Previous raw daily observation.
	prevSmart smartattr.Values
	prevFW    firmware.Version
	prevW     []float64
	prevB     []float64

	// Scratch for the synthetic mean record of a fill (computed once
	// per gap, applied to each filled day).
	fillSmart smartattr.Values
	fillW     []float64
	fillB     []float64

	// Diagnostic ring buffers over the last RollingWindow emitted days.
	ringDay   [RollingWindow]int32
	ringW     [RollingWindow]float64 // daily W event total
	ringB     [RollingWindow]float64 // daily B event total
	ringMedia [RollingWindow]float64 // MediaErrors attribute value
	ringLen   int
	ringPos   int // next write position
}

// NewRollingState returns an empty per-drive state.
func NewRollingState() *RollingState { return &RollingState{lastDay: -1} }

// LastDay returns the day of the most recent observation, -1 before the
// first.
func (st *RollingState) LastDay() int { return st.lastDay }

// Observed returns the number of raw observations consumed.
func (st *RollingState) Observed() int { return st.observed }

// Rows returns the number of feature rows emitted (mean-filled days
// included).
func (st *RollingState) Rows() int { return st.rows }

// Dropped reports that a gap of DropGap days or more was observed, so
// the offline pipeline would exclude this drive; once set, Advance
// consumes records without emitting rows.
func (st *RollingState) Dropped() bool { return st.dropped }

// CumW returns the running W cumulate (full catalogue width). The slice
// aliases state; callers must not modify it.
func (st *RollingState) CumW() []float64 { return st.cumW }

// CumB returns the running B cumulate. Aliases state.
func (st *RollingState) CumB() []float64 { return st.cumB }

// WindowStats summarises the trailing RollingWindow emitted days.
type WindowStats struct {
	// Days is how many emitted days the window holds (≤ RollingWindow).
	Days int
	// FirstDay and LastDay bound the window.
	FirstDay, LastDay int
	// WPerDay and BPerDay are the mean daily W/B event totals.
	WPerDay, BPerDay float64
	// MediaErrGrowth is the MediaErrors attribute change across the
	// window.
	MediaErrGrowth float64
}

// Window returns the trailing-window aggregates maintained by the ring
// buffers — the cheap per-drive health context (recent event rates,
// media-error growth) that alarms and CLIs report next to the model
// score.
func (st *RollingState) Window() WindowStats {
	var ws WindowStats
	n := st.ringLen
	if n == 0 {
		return ws
	}
	oldest := (st.ringPos - n + RollingWindow) % RollingWindow
	newest := (st.ringPos - 1 + RollingWindow) % RollingWindow
	var wSum, bSum float64
	for k := 0; k < n; k++ {
		i := (oldest + k) % RollingWindow
		wSum += st.ringW[i]
		bSum += st.ringB[i]
	}
	ws.Days = n
	ws.FirstDay = int(st.ringDay[oldest])
	ws.LastDay = int(st.ringDay[newest])
	ws.WPerDay = wSum / float64(n)
	ws.BPerDay = bSum / float64(n)
	ws.MediaErrGrowth = st.ringMedia[newest] - st.ringMedia[oldest]
	return ws
}

// Advance consumes one raw (daily-count) telemetry record, updates the
// rolling cumulates, and appends the resulting feature rows to x (each
// e.Width() long, mean-filled days first) with matching entries in
// meta. It returns the extended slices. A nil x skips extraction and
// only advances state — the bulk catch-up fast path. Records must
// arrive in strictly increasing day order.
//
// policy is the discontinuity optimisation: the zero value disables it
// (every record emits exactly one row — the pure-cumulate behaviour of
// the original client agent); any other value must satisfy
// policy.Validate and reproduces the offline CleanDiscontinuity
// semantics, including marking the drive Dropped (after which no rows
// are emitted).
func (st *RollingState) Advance(e *Extractor, policy dataset.GapPolicy, rec *dataset.Record, x []float64, meta []EmittedRow) ([]float64, []EmittedRow, error) {
	return st.advance(e, policy, rec.SerialNumber, rec.Vendor, rec.Day,
		rec.Smart[:], rec.Firmware, rec.WCounts, rec.BCounts, x, meta)
}

// AdvanceRow is Advance reading straight from columnar storage — the
// frame-native form behind Scorer.ReplayFrame. smart, w and b alias the
// caller's columns and are only read.
func (st *RollingState) AdvanceRow(e *Extractor, policy dataset.GapPolicy, sn, vendor string, day int,
	smart []float64, fw firmware.Version, w, b []float64, x []float64, meta []EmittedRow) ([]float64, []EmittedRow, error) {
	return st.advance(e, policy, sn, vendor, day, smart, fw, w, b, x, meta)
}

func (st *RollingState) advance(e *Extractor, policy dataset.GapPolicy, sn, vendor string, day int,
	smart []float64, fw firmware.Version, w, b []float64, x []float64, meta []EmittedRow) ([]float64, []EmittedRow, error) {
	if policy != (dataset.GapPolicy{}) {
		if err := policy.Validate(); err != nil {
			return x, meta, err
		}
	}
	if len(smart) != smartattr.Count {
		return x, meta, fmt.Errorf("features: drive %s: %d SMART values, want %d", sn, len(smart), smartattr.Count)
	}
	if st.observed > 0 && day <= st.lastDay {
		return x, meta, fmt.Errorf("features: drive %s: day %d does not follow day %d", sn, day, st.lastDay)
	}
	if st.dropped {
		// The offline pipeline has already excluded this drive; keep
		// tracking arrival order but emit nothing.
		st.lastDay = day
		st.observed++
		return x, meta, nil
	}

	if st.observed == 0 {
		st.cumW = append(st.cumW[:0], w...)
		st.cumB = append(st.cumB[:0], b...)
	} else {
		if len(w) != len(st.cumW) || len(b) != len(st.cumB) {
			return x, meta, fmt.Errorf("features: drive %s: count widths changed (%d/%d, want %d/%d)",
				sn, len(w), len(b), len(st.cumW), len(st.cumB))
		}
		gap := day - st.lastDay
		if policy.DropGap > 0 && gap >= policy.DropGap {
			st.dropped = true
			st.lastDay = day
			st.observed++
			return x, meta, nil
		}
		if gap >= 2 && gap <= policy.FillGap {
			// Mean-filling needs the previous raw record. A v1
			// snapshot restores cumulates only (v1 predates gap
			// policies), so a fillable gap right after such a restart
			// cannot reproduce the offline fill — refuse rather than
			// fabricate rows the offline pipeline would not emit.
			if len(st.prevW) != len(w) || len(st.prevB) != len(b) {
				return x, meta, fmt.Errorf("features: drive %s: cannot mean-fill %d-day gap: state has no previous record (v1 snapshot)", sn, gap-1)
			}
			// Synthesise the offline meanRecord once; it is identical
			// for every day of the gap.
			for i := range st.fillSmart {
				st.fillSmart[i] = (st.prevSmart[i] + smart[i]) / 2
			}
			st.fillW = growTo(st.fillW, len(w))
			st.fillB = growTo(st.fillB, len(b))
			for i := range w {
				st.fillW[i] = (st.prevW[i] + w[i]) / 2
			}
			for i := range b {
				st.fillB[i] = (st.prevB[i] + b[i]) / 2
			}
			for d := st.lastDay + 1; d < day; d++ {
				for i := range st.cumW {
					st.cumW[i] += st.fillW[i]
				}
				for i := range st.cumB {
					st.cumB[i] += st.fillB[i]
				}
				// Firmware cannot change while the machine is off: the
				// filled day carries the earlier record's version.
				x, meta = st.emit(e, vendor, d, st.fillSmart[:], st.prevFW, st.fillW, st.fillB, true, x, meta)
			}
		}
		for i, v := range w {
			st.cumW[i] += v
		}
		for i, v := range b {
			st.cumB[i] += v
		}
	}
	x, meta = st.emit(e, vendor, day, smart, fw, w, b, false, x, meta)

	copy(st.prevSmart[:], smart)
	st.prevFW = fw
	st.prevW = append(st.prevW[:0], w...)
	st.prevB = append(st.prevB[:0], b...)
	st.lastDay = day
	st.observed++
	return x, meta, nil
}

// growTo resizes s to n elements, reusing its backing array when it is
// large enough (contents are overwritten by the caller).
func growTo(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// emit appends one feature row (unless x is nil) plus its metadata, and
// pushes the day's aggregates into the diagnostic rings. dailyW/dailyB
// are the day's raw counts (the synthetic means for filled days).
func (st *RollingState) emit(e *Extractor, vendor string, day int, smart []float64, fw firmware.Version,
	dailyW, dailyB []float64, interp bool, x []float64, meta []EmittedRow) ([]float64, []EmittedRow) {
	if x != nil {
		x = e.appendCumRow(vendor, smart, fw, st.cumW, st.cumB, x)
	}
	meta = append(meta, EmittedRow{Day: int32(day), Interpolated: interp})
	st.rows++

	var wTot, bTot float64
	for _, v := range dailyW {
		wTot += v
	}
	for _, v := range dailyB {
		bTot += v
	}
	st.ringDay[st.ringPos] = int32(day)
	st.ringW[st.ringPos] = wTot
	st.ringB[st.ringPos] = bTot
	st.ringMedia[st.ringPos] = smart[smartattr.MediaErrors.Index()]
	st.ringPos = (st.ringPos + 1) % RollingWindow
	if st.ringLen < RollingWindow {
		st.ringLen++
	}
	return x, meta
}

// RollingSnapshot is the serialisable form of a RollingState, used by
// the agent's persisted state (consumer machines reboot constantly).
// Ring entries are ordered oldest to newest.
type RollingSnapshot struct {
	LastDay      int       `json:"last_day"`
	Observed     int       `json:"observed"`
	Rows         int       `json:"rows"`
	Dropped      bool      `json:"dropped,omitempty"`
	CumW         []float64 `json:"cum_w"`
	CumB         []float64 `json:"cum_b"`
	PrevSmart    []float64 `json:"prev_smart,omitempty"`
	PrevFirmware string    `json:"prev_firmware,omitempty"`
	PrevW        []float64 `json:"prev_w,omitempty"`
	PrevB        []float64 `json:"prev_b,omitempty"`
	RingDays     []int32   `json:"ring_days,omitempty"`
	RingW        []float64 `json:"ring_w,omitempty"`
	RingB        []float64 `json:"ring_b,omitempty"`
	RingMedia    []float64 `json:"ring_media,omitempty"`
}

// Snapshot captures the state for persistence.
func (st *RollingState) Snapshot() RollingSnapshot {
	s := RollingSnapshot{
		LastDay:      st.lastDay,
		Observed:     st.observed,
		Rows:         st.rows,
		Dropped:      st.dropped,
		CumW:         append([]float64(nil), st.cumW...),
		CumB:         append([]float64(nil), st.cumB...),
		PrevFirmware: string(st.prevFW),
		PrevW:        append([]float64(nil), st.prevW...),
		PrevB:        append([]float64(nil), st.prevB...),
	}
	if st.observed > 0 {
		s.PrevSmart = append([]float64(nil), st.prevSmart[:]...)
	}
	for k := 0; k < st.ringLen; k++ {
		i := (st.ringPos - st.ringLen + k + RollingWindow) % RollingWindow
		s.RingDays = append(s.RingDays, st.ringDay[i])
		s.RingW = append(s.RingW, st.ringW[i])
		s.RingB = append(s.RingB, st.ringB[i])
		s.RingMedia = append(s.RingMedia, st.ringMedia[i])
	}
	return s
}

// RollingFromSnapshot reconstructs a RollingState.
func RollingFromSnapshot(s RollingSnapshot) (*RollingState, error) {
	if s.Observed < 0 || s.Rows < 0 || s.LastDay < -1 {
		return nil, fmt.Errorf("features: rolling snapshot is corrupt")
	}
	if s.Observed > 0 && s.LastDay < 0 {
		return nil, fmt.Errorf("features: rolling snapshot has observations but no last day")
	}
	if len(s.PrevSmart) != 0 && len(s.PrevSmart) != smartattr.Count {
		return nil, fmt.Errorf("features: rolling snapshot has %d SMART values, want %d", len(s.PrevSmart), smartattr.Count)
	}
	n := len(s.RingDays)
	if n > RollingWindow || len(s.RingW) != n || len(s.RingB) != n || len(s.RingMedia) != n {
		return nil, fmt.Errorf("features: rolling snapshot ring buffers are inconsistent")
	}
	st := &RollingState{
		lastDay:  s.LastDay,
		observed: s.Observed,
		rows:     s.Rows,
		dropped:  s.Dropped,
		cumW:     append([]float64(nil), s.CumW...),
		cumB:     append([]float64(nil), s.CumB...),
		prevFW:   firmware.Version(s.PrevFirmware),
		prevW:    append([]float64(nil), s.PrevW...),
		prevB:    append([]float64(nil), s.PrevB...),
	}
	copy(st.prevSmart[:], s.PrevSmart)
	for k := 0; k < n; k++ {
		st.ringDay[k] = s.RingDays[k]
		st.ringW[k] = s.RingW[k]
		st.ringB[k] = s.RingB[k]
		st.ringMedia[k] = s.RingMedia[k]
	}
	st.ringLen = n
	st.ringPos = n % RollingWindow
	return st, nil
}
