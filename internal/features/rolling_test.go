package features

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/labeling"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// randomRawFleet synthesises a raw (daily-count) dataset with the
// discontinuity structure the rolling state must reproduce: mostly
// one-day steps, fillable 2-3 day gaps, unfillable holes, occasional
// drop-sized gaps, and mid-series firmware upgrades.
func randomRawFleet(t *testing.T, seed int64, drives int) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	vendors := []string{"I", "II", "III", "IV"}
	d := dataset.New()
	for i := 0; i < drives; i++ {
		sn := fmt.Sprintf("S%d-%03d", seed, i)
		vendor := vendors[r.Intn(len(vendors))]
		fw := firmware.Version(fmt.Sprintf("%s-1.%d", vendor, r.Intn(3)))
		day := r.Intn(3)
		n := 15 + r.Intn(25)
		for k := 0; k < n; k++ {
			rec := dataset.Record{
				SerialNumber: sn,
				Vendor:       vendor,
				Model:        "M0",
				Day:          day,
				Firmware:     fw,
				WCounts:      winevent.NewCounts(),
				BCounts:      bsod.NewCounts(),
			}
			for j := range rec.Smart {
				rec.Smart[j] = float64(r.Intn(1000)) + r.Float64()
			}
			for j := range rec.WCounts {
				if r.Intn(3) == 0 {
					rec.WCounts[j] = float64(r.Intn(5))
				}
			}
			for j := range rec.BCounts {
				if r.Intn(6) == 0 {
					rec.BCounts[j] = float64(r.Intn(3))
				}
			}
			if err := d.Append(rec); err != nil {
				t.Fatal(err)
			}
			if r.Intn(10) == 0 {
				fw = firmware.Version(fmt.Sprintf("%s-2.%d", vendor, r.Intn(3)))
			}
			switch p := r.Float64(); {
			case p < 0.70:
				day++
			case p < 0.85:
				day += 2 + r.Intn(2) // fillable
			case p < 0.96:
				day += 4 + r.Intn(6) // hole, survives
			default:
				day += 10 + r.Intn(3) // drop-sized
			}
		}
	}
	return d
}

type refRow struct {
	day    int
	interp bool
	x      []float64
}

// offlineRows runs the full offline preprocessing — clean, cumulate,
// extract — and returns each surviving drive's feature rows.
func offlineRows(t *testing.T, raw *dataset.Dataset, policy dataset.GapPolicy, e *Extractor, workers int) map[string][]refRow {
	t.Helper()
	cleaned, _, err := dataset.CleanDiscontinuityWorkers(raw, policy, workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.Cumulate(cleaned); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]refRow)
	cleaned.Each(func(s *dataset.DriveSeries) {
		rows := make([]refRow, 0, len(s.Records))
		for i := range s.Records {
			rec := &s.Records[i]
			rows = append(rows, refRow{day: rec.Day, interp: rec.Interpolated, x: e.Extract(rec)})
		}
		out[s.SerialNumber] = rows
	})
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestRollingAdvanceMatchesOfflinePipeline is the incremental-vs-
// offline equivalence property: over varied seeds (and offline worker
// counts), Advance over each drive's raw records emits exactly the
// feature rows the CleanDiscontinuity→Cumulate→Extract pipeline
// produces, bit-identical via math.Float64bits, and agrees on which
// drives the gap policy drops.
func TestRollingAdvanceMatchesOfflinePipeline(t *testing.T) {
	policy := dataset.DefaultGapPolicy()
	for seed := int64(1); seed <= 6; seed++ {
		raw := randomRawFleet(t, seed, 12)
		ext, err := NewExtractor(GroupSFWB, nil)
		if err != nil {
			t.Fatal(err)
		}
		// One extractor for both paths, primed on the raw dataset:
		// after priming, extraction is read-only, and the first-seen
		// firmware codes cannot depend on which path runs first.
		ext.prime(raw)
		workers := int(seed%2) + 1 // 1 or 2; offline output is pinned anyway
		offline := offlineRows(t, raw, policy, ext, workers)

		checked := 0
		raw.Each(func(s *dataset.DriveSeries) {
			st := NewRollingState()
			x := make([]float64, 0, ext.Width()*4)
			var meta []EmittedRow
			var got []refRow
			for i := range s.Records {
				var err error
				x, meta, err = st.Advance(ext, policy, &s.Records[i], x[:0], meta[:0])
				if err != nil {
					t.Fatalf("seed %d drive %s: %v", seed, s.SerialNumber, err)
				}
				for k := range meta {
					row := append([]float64(nil), x[k*ext.Width():(k+1)*ext.Width()]...)
					got = append(got, refRow{day: int(meta[k].Day), interp: meta[k].Interpolated, x: row})
				}
			}
			want, survived := offline[s.SerialNumber]
			if st.Dropped() != !survived {
				t.Fatalf("seed %d drive %s: online dropped=%v, offline survived=%v (max gap %d)",
					seed, s.SerialNumber, st.Dropped(), survived, s.MaxGap())
			}
			if !survived {
				return // offline has no rows to compare against
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d drive %s: %d online rows, %d offline", seed, s.SerialNumber, len(got), len(want))
			}
			for i := range want {
				if got[i].day != want[i].day || got[i].interp != want[i].interp {
					t.Fatalf("seed %d drive %s row %d: got day %d interp %v, want day %d interp %v",
						seed, s.SerialNumber, i, got[i].day, got[i].interp, want[i].day, want[i].interp)
				}
				if !bitsEqual(got[i].x, want[i].x) {
					t.Fatalf("seed %d drive %s row %d (day %d): feature bits diverge", seed, s.SerialNumber, i, got[i].day)
				}
			}
			checked++
		})
		if checked == 0 {
			t.Fatalf("seed %d: every drive dropped; generator too aggressive", seed)
		}
	}
}

// TestRollingAdvanceRowMatchesBuildSampleSetFrame pins the frame-native
// AdvanceRow against the columnar offline build: the same drive-days,
// in the same order, with bit-identical vectors.
func TestRollingAdvanceRowMatchesBuildSampleSetFrame(t *testing.T) {
	policy := dataset.DefaultGapPolicy()
	raw := randomRawFleet(t, 7, 10)
	rawFrame, err := dataset.FrameFromDataset(raw)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext.PrimeFrame(rawFrame)

	// Offline fused path: clean+cumulate in record form, then the
	// columnar sample build over all rows (empty labels keep every row
	// as a negative).
	cleaned, _, err := dataset.CleanDiscontinuity(raw, policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.Cumulate(cleaned); err != nil {
		t.Fatal(err)
	}
	cleanedFrame, err := dataset.FrameFromDataset(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBuildOptions()
	set, err := BuildSampleSetFrame(cleanedFrame, labeling.Labels{}, ext, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Online: AdvanceRow over the raw frame, drive-major like the
	// offline build, skipping drives the policy drops.
	var onlineRows [][]float64
	var onlineSN []string
	var onlineDay []int32
	x := make([]float64, 0, ext.Width()*4)
	var meta []EmittedRow
	for di := 0; di < rawFrame.Drives(); di++ {
		d := rawFrame.Drive(di)
		st := NewRollingState()
		var driveRows [][]float64
		var driveDays []int32
		for r := int(d.Start); r < int(d.End); r++ {
			var err error
			x, meta, err = st.AdvanceRow(ext, policy, d.SerialNumber, d.Vendor, int(rawFrame.Day(r)),
				rawFrame.SmartRow(r), rawFrame.FirmwareAt(r), rawFrame.WRow(r), rawFrame.BRow(r), x[:0], meta[:0])
			if err != nil {
				t.Fatal(err)
			}
			for k := range meta {
				driveRows = append(driveRows, append([]float64(nil), x[k*ext.Width():(k+1)*ext.Width()]...))
				driveDays = append(driveDays, meta[k].Day)
			}
		}
		if st.Dropped() {
			continue
		}
		for i := range driveRows {
			onlineRows = append(onlineRows, driveRows[i])
			onlineSN = append(onlineSN, d.SerialNumber)
			onlineDay = append(onlineDay, driveDays[i])
		}
	}

	if set.Len() != len(onlineRows) {
		t.Fatalf("offline %d rows, online %d", set.Len(), len(onlineRows))
	}
	for i := 0; i < set.Len(); i++ {
		if set.SN(i) != onlineSN[i] || set.Day(i) != int(onlineDay[i]) {
			t.Fatalf("row %d: offline (%s, %d), online (%s, %d)", i, set.SN(i), set.Day(i), onlineSN[i], onlineDay[i])
		}
		if !bitsEqual(set.Row(i), onlineRows[i]) {
			t.Fatalf("row %d (%s day %d): feature bits diverge", i, set.SN(i), set.Day(i))
		}
	}
}

// TestRollingZeroPolicyIsPureCumulate pins the zero gap policy to the
// original agent semantics: one row per record, cumulates matching
// dataset.Cumulate with gaps ignored.
func TestRollingZeroPolicyIsPureCumulate(t *testing.T) {
	raw := randomRawFleet(t, 11, 6)
	cum := raw.Clone()
	if err := dataset.Cumulate(cum); err != nil {
		t.Fatal(err)
	}
	ext, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext.prime(raw)
	raw.Each(func(s *dataset.DriveSeries) {
		ref, _ := cum.Series(s.SerialNumber)
		st := NewRollingState()
		x := make([]float64, 0, ext.Width())
		var meta []EmittedRow
		for i := range s.Records {
			var err error
			x, meta, err = st.Advance(ext, dataset.GapPolicy{}, &s.Records[i], x[:0], meta[:0])
			if err != nil {
				t.Fatal(err)
			}
			if len(meta) != 1 || meta[0].Interpolated {
				t.Fatalf("drive %s record %d: zero policy emitted %d rows", s.SerialNumber, i, len(meta))
			}
			want := ext.Extract(&ref.Records[i])
			if !bitsEqual(x, want) {
				t.Fatalf("drive %s record %d: pure-cumulate bits diverge", s.SerialNumber, i)
			}
		}
		if st.Dropped() {
			t.Fatalf("drive %s: zero policy dropped a drive", s.SerialNumber)
		}
	})
}

// TestRollingSnapshotRoundTrip: persisting mid-stream (including right
// before a mean-filled gap, which needs the previous raw observation)
// and restoring must continue bit-identically to the uninterrupted
// state, through JSON like the agent's state file.
func TestRollingSnapshotRoundTrip(t *testing.T) {
	policy := dataset.DefaultGapPolicy()
	raw := randomRawFleet(t, 13, 8)
	ext, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext.prime(raw)
	raw.Each(func(s *dataset.DriveSeries) {
		for _, cut := range []int{1, len(s.Records) / 2} {
			if cut >= len(s.Records) {
				continue
			}
			orig := NewRollingState()
			x := make([]float64, 0, ext.Width()*4)
			var meta []EmittedRow
			for i := 0; i < cut; i++ {
				x, meta, err = orig.Advance(ext, policy, &s.Records[i], x[:0], meta[:0])
				if err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(orig.Snapshot()); err != nil {
				t.Fatal(err)
			}
			var snap RollingSnapshot
			if err := json.NewDecoder(&buf).Decode(&snap); err != nil {
				t.Fatal(err)
			}
			restored, err := RollingFromSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			x2 := make([]float64, 0, ext.Width()*4)
			var meta2 []EmittedRow
			for i := cut; i < len(s.Records); i++ {
				x, meta, err = orig.Advance(ext, policy, &s.Records[i], x[:0], meta[:0])
				if err != nil {
					t.Fatal(err)
				}
				x2, meta2, err = restored.Advance(ext, policy, &s.Records[i], x2[:0], meta2[:0])
				if err != nil {
					t.Fatal(err)
				}
				if len(meta) != len(meta2) {
					t.Fatalf("drive %s cut %d record %d: row counts diverge after restore", s.SerialNumber, cut, i)
				}
				if !bitsEqual(x, x2) {
					t.Fatalf("drive %s cut %d record %d: bits diverge after restore", s.SerialNumber, cut, i)
				}
			}
			if orig.Dropped() != restored.Dropped() || orig.Rows() != restored.Rows() {
				t.Fatalf("drive %s cut %d: state diverges after restore", s.SerialNumber, cut)
			}
			ow, rw := orig.Window(), restored.Window()
			if ow != rw {
				t.Fatalf("drive %s cut %d: window stats diverge: %+v vs %+v", s.SerialNumber, cut, ow, rw)
			}
		}
	})
}

// TestRollingWindowStats checks the ring-buffer aggregates directly.
func TestRollingWindowStats(t *testing.T) {
	ext, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := NewRollingState()
	x := make([]float64, 0, ext.Width())
	var meta []EmittedRow
	days := RollingWindow + 3
	for day := 0; day < days; day++ {
		rec := dataset.Record{
			SerialNumber: "W-1", Vendor: "I", Model: "M0", Day: day,
			Firmware: "fw", WCounts: winevent.NewCounts(), BCounts: bsod.NewCounts(),
		}
		rec.WCounts[0] = float64(day) // daily W total = day
		rec.BCounts[1] = 2            // daily B total = 2
		rec.Smart.Set(smartattr.MediaErrors, float64(10*day))
		x, meta, err = st.Advance(ext, dataset.GapPolicy{}, &rec, x[:0], meta[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	ws := st.Window()
	if ws.Days != RollingWindow {
		t.Fatalf("window holds %d days, want %d", ws.Days, RollingWindow)
	}
	first := days - RollingWindow
	if ws.FirstDay != first || ws.LastDay != days-1 {
		t.Fatalf("window spans [%d, %d], want [%d, %d]", ws.FirstDay, ws.LastDay, first, days-1)
	}
	wantW := 0.0
	for d := first; d < days; d++ {
		wantW += float64(d)
	}
	wantW /= RollingWindow
	if ws.WPerDay != wantW || ws.BPerDay != 2 {
		t.Fatalf("rates W=%g B=%g, want W=%g B=2", ws.WPerDay, ws.BPerDay, wantW)
	}
	if want := float64(10 * (days - 1 - first)); ws.MediaErrGrowth != want {
		t.Fatalf("media growth %g, want %g", ws.MediaErrGrowth, want)
	}
}

// TestRollingAdvanceRejectsOutOfOrder pins the ordering contract.
func TestRollingAdvanceRejectsOutOfOrder(t *testing.T) {
	ext, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := NewRollingState()
	rec := dataset.Record{
		SerialNumber: "O-1", Vendor: "I", Model: "M0", Day: 5,
		Firmware: "fw", WCounts: winevent.NewCounts(), BCounts: bsod.NewCounts(),
	}
	x := make([]float64, 0, ext.Width())
	var meta []EmittedRow
	if x, meta, err = st.Advance(ext, dataset.GapPolicy{}, &rec, x, meta); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Advance(ext, dataset.GapPolicy{}, &rec, x[:0], meta[:0]); err == nil {
		t.Fatal("same-day record accepted")
	}
	rec.Day = 4
	if _, _, err := st.Advance(ext, dataset.GapPolicy{}, &rec, x[:0], meta[:0]); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}
