package features

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// requireSetsEqualBits asserts two sample sets agree exactly, down to
// the bit pattern of every feature value.
func requireSetsEqualBits(t *testing.T, want, got *ml.SampleSet) {
	t.Helper()
	if want.Len() != got.Len() || want.Width() != got.Width() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Len(), got.Width(), want.Len(), want.Width())
	}
	wx, gx := want.Arena(), got.Arena()
	for i := range wx {
		if math.Float64bits(wx[i]) != math.Float64bits(gx[i]) {
			t.Fatalf("arena[%d]: %x, want %x (row %d col %d)",
				i, math.Float64bits(gx[i]), math.Float64bits(wx[i]), i/want.Width(), i%want.Width())
		}
	}
	for i := 0; i < want.Len(); i++ {
		if want.Y(i) != got.Y(i) || want.Day(i) != got.Day(i) || want.SN(i) != got.SN(i) {
			t.Fatalf("row %d: y/day/sn = %d/%d/%s, want %d/%d/%s",
				i, got.Y(i), got.Day(i), got.SN(i), want.Y(i), want.Day(i), want.SN(i))
		}
	}
}

// TestBuildSampleSetFrameMatchesRecordPath pins the frame extractor to
// the record path for every feature group, including the first-seen
// firmware encoding that priming fixes in dataset order.
func TestBuildSampleSetFrameMatchesRecordPath(t *testing.T) {
	d, labels, _ := fleetFixture(t, 25)
	f, err := dataset.FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBuildOptions()
	for _, g := range AllGroups() {
		recExt, err := NewExtractor(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BuildSampleSet(d, labels, recExt, opts)
		if err != nil {
			t.Fatal(err)
		}
		frameExt, err := NewExtractor(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BuildSampleSetFrame(f, labels, frameExt, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSetsEqualBits(t, want, got)
	}
}

// TestBuildSampleSetFrameWorkersIdentical asserts the counted two-pass
// frame extraction is worker-count independent.
func TestBuildSampleSetFrameWorkersIdentical(t *testing.T) {
	d, labels, _ := fleetFixture(t, 30)
	f, err := dataset.FrameFromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBuildOptions()
	opts.Workers = 1
	serialExt, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildSampleSetFrame(f, labels, serialExt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8} {
		e, err := NewExtractor(GroupSFWB, nil)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = w
		got, err := BuildSampleSetFrame(f, labels, e, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		requireSetsEqualBits(t, want, got)
	}
}
