package features

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/labeling"
	"repro/internal/smartattr"
	"repro/internal/winevent"
)

// fleetFixture builds a many-drive labelled dataset with several
// firmware versions and no registry, so the extractor's first-seen
// firmware encoding (the one mutable extraction path) is exercised.
func fleetFixture(t *testing.T, drives int) (*dataset.Dataset, labeling.Labels, *Extractor) {
	t.Helper()
	d := dataset.New()
	labels := labeling.Labels{}
	for dr := 0; dr < drives; dr++ {
		sn := fmt.Sprintf("D%03d", dr)
		fw := firmware.Version(fmt.Sprintf("FW%d", dr%3))
		for day := 0; day <= 30; day++ {
			r := dataset.Record{
				SerialNumber: sn, Vendor: "I", Model: "M", Day: day,
				Firmware: fw,
				WCounts:  winevent.NewCounts(), BCounts: bsod.NewCounts(),
			}
			r.Smart.Set(smartattr.PowerOnHours, float64(dr*100+day))
			r.WCounts.Add(winevent.PagingError, float64(day%2))
			if err := d.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if dr%3 == 0 {
			labels[sn] = labeling.Label{SerialNumber: sn, FailDay: 25 + dr%5}
		}
	}
	e, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, labels, e
}

// TestBuildSamplesWorkersIdentical asserts the per-drive extraction
// fan-out is bit-identical to serial, including the first-seen
// firmware codes that the priming pass fixes in dataset order.
func TestBuildSamplesWorkersIdentical(t *testing.T) {
	d, labels, _ := fleetFixture(t, 30)
	opts := DefaultBuildOptions()
	opts.Workers = 1
	serialExt, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildSamples(d, labels, serialExt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8} {
		e, err := NewExtractor(GroupSFWB, nil)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = w
		got, err := BuildSamples(d, labels, e, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: samples differ from serial build", w)
		}
	}
}

// TestBuildSeqSamplesWorkersIdentical is the sequence-shaped variant.
func TestBuildSeqSamplesWorkersIdentical(t *testing.T) {
	d, labels, _ := fleetFixture(t, 20)
	opts := DefaultBuildOptions()
	opts.Workers = 1
	serialExt, err := NewExtractor(GroupSFWB, nil)
	if err != nil {
		t.Fatal(err)
	}
	const seqLen = 4
	want, err := BuildSeqSamples(d, labels, serialExt, seqLen, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		e, err := NewExtractor(GroupSFWB, nil)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = w
		got, err := BuildSeqSamples(d, labels, e, seqLen, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sequence samples differ from serial build", w)
		}
	}
}
