package agent

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// vendorDayBatches groups the test fleet's vendor-I raw records into
// day-major batches, the ObserveDay feed shape.
func vendorDayBatches(t *testing.T) [][]dataset.Record {
	t.Helper()
	fleet, _ := setup(t)
	byDay := make(map[int][]dataset.Record)
	var days []int
	fleet.Data.Each(func(s *dataset.DriveSeries) {
		if s.Vendor != "I" {
			return
		}
		for i := range s.Records {
			d := s.Records[i].Day
			if len(byDay[d]) == 0 {
				days = append(days, d)
			}
			byDay[d] = append(byDay[d], s.Records[i])
		}
	})
	sort.Ints(days)
	out := make([][]dataset.Record, 0, len(days))
	for _, d := range days {
		out = append(out, byDay[d])
	}
	return out
}

func sameAssessment(a, b Assessment) bool {
	return a.SerialNumber == b.SerialNumber && a.Day == b.Day &&
		a.Flagged == b.Flagged && a.Alarmed == b.Alarmed &&
		a.Interpolated == b.Interpolated && a.Dropped == b.Dropped &&
		a.ConsecutiveFlags == b.ConsecutiveFlags &&
		math.Float64bits(a.Probability) == math.Float64bits(b.Probability)
}

// TestObserveDayMatchesObserve pins the batched path to the per-record
// path bit-for-bit, under both the legacy pure-cumulate mode and the
// pipeline gap policy. Observe returns only the record's own day, so
// the batched output is compared after dropping interpolated rows.
func TestObserveDayMatchesObserve(t *testing.T) {
	_, model := setup(t)
	batches := vendorDayBatches(t)
	for _, policy := range []dataset.GapPolicy{{}, dataset.DefaultGapPolicy()} {
		serial, err := New(model, Options{GapPolicy: policy})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(model, Options{GapPolicy: policy, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range batches {
			var want []Assessment
			for _, rec := range batch {
				as, err := serial.Observe(rec)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, as)
			}
			all, err := batched.ObserveDay(batch)
			if err != nil {
				t.Fatal(err)
			}
			var got []Assessment
			for _, as := range all {
				if !as.Interpolated {
					got = append(got, as)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("policy %+v day %d: %d batched record assessments, %d serial", policy, batch[0].Day, len(got), len(want))
			}
			for i := range got {
				if !sameAssessment(got[i], want[i]) {
					t.Fatalf("policy %+v: record %s day %d: batched %+v vs serial %+v", policy, want[i].SerialNumber, want[i].Day, got[i], want[i])
				}
			}
		}
	}
}

// TestStateRoundTripWithGapPolicy saves an agent mid-stream under the
// fill/drop policy and checks the restored agent continues
// bit-identically — including across a gap that straddles the save
// point, which needs the previous raw record from the v2 snapshot.
func TestStateRoundTripWithGapPolicy(t *testing.T) {
	_, model := setup(t)
	batches := vendorDayBatches(t)
	cut := len(batches) / 2

	mk := func() *Agent {
		a, err := New(model, Options{GapPolicy: dataset.DefaultGapPolicy()})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	run := func(a *Agent, bs [][]dataset.Record) []Assessment {
		var out []Assessment
		for _, b := range bs {
			as, err := a.ObserveDay(b)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, as...)
		}
		return out
	}

	straight := mk()
	run(straight, batches[:cut])
	want := run(straight, batches[cut:])

	saved := mk()
	run(saved, batches[:cut])
	var buf bytes.Buffer
	if err := saved.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	got := run(restored, batches[cut:])

	if len(got) != len(want) {
		t.Fatalf("restored run: %d assessments, uninterrupted %d", len(got), len(want))
	}
	interpolated := false
	for i := range got {
		if !sameAssessment(got[i], want[i]) {
			t.Fatalf("assessment %d: restored %+v vs uninterrupted %+v", i, got[i], want[i])
		}
		interpolated = interpolated || got[i].Interpolated
	}
	if !interpolated {
		t.Fatal("fixture tail produced no mean-filled rows; restart-under-fill untested")
	}
}
