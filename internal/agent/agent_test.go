package agent

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/simfleet"
)

// trainedSetup simulates a fleet and trains the standard model once for
// the whole test binary.
var (
	cachedFleet *simfleet.Result
	cachedModel *core.Model
)

func setup(t *testing.T) (*simfleet.Result, *core.Model) {
	t.Helper()
	if cachedFleet == nil {
		cfg := simfleet.TinyConfig()
		cfg.FailureScale = 0.04
		fleet, err := simfleet.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, core.DefaultConfig("I"))
		if err != nil {
			t.Fatal(err)
		}
		cachedFleet, cachedModel = fleet, model
	}
	return cachedFleet, cachedModel
}

// streamDrive feeds a drive's raw records through an agent and returns
// the last assessment.
func streamDrive(t *testing.T, a *Agent, fleet *simfleet.Result, sn string) (last Assessment, alarmedAt int) {
	t.Helper()
	series, ok := fleet.Data.Series(sn)
	if !ok {
		t.Fatalf("drive %s missing", sn)
	}
	alarmedAt = -1
	for i := range series.Records {
		as, err := a.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		if as.Alarmed && alarmedAt == -1 {
			alarmedAt = as.Day
		}
		last = as
	}
	return last, alarmedAt
}

// pickDrives returns one ramped faulty and one plain healthy vendor-I
// drive.
func pickDrives(t *testing.T, fleet *simfleet.Result) (faulty, healthy string) {
	t.Helper()
	for sn, truth := range fleet.Truth {
		if truth.Vendor != "I" {
			continue
		}
		if truth.Kind == "faulty" && faulty == "" {
			faulty = sn
		}
		if truth.Kind == "healthy" && healthy == "" {
			healthy = sn
		}
	}
	if faulty == "" || healthy == "" {
		t.Skip("fleet lacks required drive kinds")
	}
	return faulty, healthy
}

func TestAgentAlarmsOnFailingDrive(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Alarm on most ramped faulty drives, before or at failure.
	alarms, checked := 0, 0
	for sn, truth := range fleet.Truth {
		if truth.Vendor != "I" || truth.Kind != "faulty" {
			continue
		}
		checked++
		_, alarmedAt := streamDrive(t, a, fleet, sn)
		if alarmedAt >= 0 {
			alarms++
			if alarmedAt > truth.FailDay {
				t.Errorf("drive %s alarmed after failure day", sn)
			}
		}
	}
	if checked == 0 {
		t.Skip("no ramped faulty vendor-I drives")
	}
	if rate := float64(alarms) / float64(checked); rate < 0.7 {
		t.Fatalf("agent alarmed on only %.0f%% of failing drives", rate*100)
	}
}

func TestAgentQuietOnHealthyDrives(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alarms, checked := 0, 0
	for sn, truth := range fleet.Truth {
		if truth.Vendor != "I" || truth.Kind != "healthy" {
			continue
		}
		checked++
		if _, alarmedAt := streamDrive(t, a, fleet, sn); alarmedAt >= 0 {
			alarms++
		}
		if checked >= 120 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no healthy drives")
	}
	if rate := float64(alarms) / float64(checked); rate > 0.08 {
		t.Fatalf("agent alarmed on %.0f%% of healthy drives", rate*100)
	}
}

func TestAgentCumulationMatchesPipeline(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)

	// Pipeline-side cumulation.
	d := dataset.New()
	for i := range series.Records {
		if err := d.Append(series.Records[i].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := dataset.Cumulate(d); err != nil {
		t.Fatal(err)
	}
	cumSeries, _ := d.Series(faulty)

	// Agent-side: observe raw records, compare internal accumulation by
	// scoring — identical cumulated vectors give identical scores.
	for i := range series.Records {
		as, err := a.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		ext := a.extractor.Extract(&cumSeries.Records[i])
		want := model.Predict(ext)
		if as.Probability != want {
			t.Fatalf("record %d: agent score %g, pipeline score %g", i, as.Probability, want)
		}
	}
}

func TestAgentRejectsOutOfOrder(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	if _, err := a.Observe(series.Records[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Observe(series.Records[0]); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}

func TestAgentHysteresis(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{AlarmAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	sawFlagBeforeAlarm := false
	for i := range series.Records {
		as, err := a.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		if as.Alarmed && as.ConsecutiveFlags < 3 && as.Flagged {
			// Alarm may only latch at ≥3 consecutive flags.
			t.Fatalf("alarm latched at %d consecutive flags", as.ConsecutiveFlags)
		}
		if as.Flagged && !as.Alarmed {
			sawFlagBeforeAlarm = true
		}
	}
	_ = sawFlagBeforeAlarm // informational; ramp may be steep enough to skip it
}

func TestAgentModelUpdate(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Retrain with a different seed and push.
	cfg := core.DefaultConfig("I")
	cfg.Seed = 9
	next, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UpdateModel(next); err != nil {
		t.Fatal(err)
	}
	if a.Threshold() != next.Threshold {
		t.Fatal("threshold did not follow the pushed model")
	}
	// Group mismatch must be rejected.
	bad := core.DefaultConfig("I")
	bad.Group = features.GroupS
	wrong, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UpdateModel(wrong); err == nil {
		t.Fatal("group change accepted")
	}
}

func TestAgentResetDrive(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := pickDrives(t, fleet)
	streamDrive(t, a, fleet, faulty)
	if len(a.Drives()) != 1 {
		t.Fatalf("drives = %v", a.Drives())
	}
	if !a.ResetDrive(faulty) {
		t.Fatal("ResetDrive failed")
	}
	if a.ResetDrive(faulty) {
		t.Fatal("second ResetDrive succeeded")
	}
	if a.Alarmed(faulty) {
		t.Fatal("alarm survived reset")
	}
}

func TestAgentRejectsSequenceModels(t *testing.T) {
	_, model := setup(t)
	seq := *model
	seq.Config.Algorithm = core.AlgoCNNLSTM
	if _, err := New(&seq, Options{}); err == nil {
		t.Fatal("sequence model accepted")
	}
}

func TestAgentExplainsFlags(t *testing.T) {
	fleet, model := setup(t)
	a, err := New(model, Options{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	sawFactors := false
	for i := range series.Records {
		as, err := a.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		if as.Flagged {
			if len(as.TopFactors) == 0 {
				t.Fatal("flagged assessment lacks factors despite Explain")
			}
			if len(as.TopFactors) > 3 {
				t.Fatalf("%d factors, want ≤ 3", len(as.TopFactors))
			}
			for i := 1; i < len(as.TopFactors); i++ {
				if as.TopFactors[i].Contribution > as.TopFactors[i-1].Contribution {
					t.Fatal("factors not sorted by contribution")
				}
			}
			for _, f := range as.TopFactors {
				if f.Feature == "" || f.Contribution <= 0 {
					t.Fatalf("bad factor %+v", f)
				}
			}
			sawFactors = true
		} else if as.TopFactors != nil {
			t.Fatal("unflagged assessment carries factors")
		}
	}
	if !sawFactors {
		t.Skip("drive never flagged")
	}
}
