package agent

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/dataset"
	"repro/internal/faultinject"
)

// TestStateFileCheckpointCrashSafe: SaveStateFile is the power-loss
// path — a checkpoint killed mid-write must leave the previous file
// intact, and LoadStateFile of the survivor must restore the agent.
func TestStateFileCheckpointCrashSafe(t *testing.T) {
	fleet, model := setup(t)

	// Accumulate the whole vendor fleet so the checkpoint comfortably
	// exceeds the injector's short-write window (≤ 4 KiB).
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Data.Each(func(s *dataset.DriveSeries) {
		if s.Vendor != "I" {
			return
		}
		for i := range s.Records {
			if _, err := a.Observe(s.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
	})
	path := filepath.Join(t.TempDir(), "agent.state")
	if err := a.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(good) <= 4096 {
		t.Fatalf("checkpoint only %d bytes; too small to outrun the injector", len(good))
	}

	// Kill subsequent checkpoints mid-write and at the publish step;
	// the good checkpoint must survive both.
	io := faultinject.NewIOFaults(faultinject.IOConfig{Seed: 3, ShortWriteP: 1})
	restore := atomicio.SetHooks(io.Hooks())
	err = a.SaveStateFile(path)
	restore()
	if err == nil {
		t.Fatal("killed checkpoint reported success")
	}
	io = faultinject.NewIOFaults(faultinject.IOConfig{Seed: 3, RenameFailP: 1})
	restore = atomicio.SetHooks(io.Hooks())
	if err := a.SaveStateFile(path); err == nil {
		restore()
		t.Fatal("blocked publish reported success")
	}
	restore()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, good) {
		t.Fatal("crashed checkpoints disturbed the good state file")
	}

	restored, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadStateFile(path); err != nil {
		t.Fatal(err)
	}
	var orig, back bytes.Buffer
	if err := a.SaveState(&orig); err != nil {
		t.Fatal(err)
	}
	if err := restored.SaveState(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), back.Bytes()) {
		t.Fatal("restored agent state differs from the saved one")
	}
}

func TestStateSurvivesRestart(t *testing.T) {
	fleet, model := setup(t)
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	if len(series.Records) < 4 {
		t.Skip("series too short")
	}
	half := len(series.Records) / 2

	// Continuous agent: the ground truth.
	cont, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var contLast Assessment
	for i := range series.Records {
		contLast, err = cont.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	// Restarted agent: observe half, save, restore into a new agent,
	// observe the rest.
	first, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		if _, err := first.Observe(series.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := first.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	second, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	var restLast Assessment
	for i := half; i < len(series.Records); i++ {
		restLast, err = second.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	if restLast.Probability != contLast.Probability {
		t.Fatalf("restart changed the score: %g vs %g", restLast.Probability, contLast.Probability)
	}
	if restLast.Alarmed != contLast.Alarmed || restLast.ConsecutiveFlags != contLast.ConsecutiveFlags {
		t.Fatalf("restart changed alarm state: %+v vs %+v", restLast, contLast)
	}
}

func TestLoadStateRejectsBadInput(t *testing.T) {
	_, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LoadState(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":9,"group":"SFWB","drives":{}}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"S","drives":{}}`)); err == nil {
		t.Error("wrong group accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"SFWB","drives":{"":{}}}`)); err == nil {
		t.Error("empty serial accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"SFWB","drives":{"A":{"last_day":-5}}}`)); err == nil {
		t.Error("corrupt drive state accepted")
	}
}

func TestLoadStateOnlyAtStartup(t *testing.T) {
	fleet, model := setup(t)
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Observe(series.Records[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"SFWB","drives":{}}`)); err == nil {
		t.Fatal("mid-stream restore accepted")
	}
}
