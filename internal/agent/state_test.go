package agent

import (
	"bytes"
	"strings"
	"testing"
)

func TestStateSurvivesRestart(t *testing.T) {
	fleet, model := setup(t)
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	if len(series.Records) < 4 {
		t.Skip("series too short")
	}
	half := len(series.Records) / 2

	// Continuous agent: the ground truth.
	cont, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var contLast Assessment
	for i := range series.Records {
		contLast, err = cont.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	// Restarted agent: observe half, save, restore into a new agent,
	// observe the rest.
	first, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		if _, err := first.Observe(series.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := first.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	second, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	var restLast Assessment
	for i := half; i < len(series.Records); i++ {
		restLast, err = second.Observe(series.Records[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	if restLast.Probability != contLast.Probability {
		t.Fatalf("restart changed the score: %g vs %g", restLast.Probability, contLast.Probability)
	}
	if restLast.Alarmed != contLast.Alarmed || restLast.ConsecutiveFlags != contLast.ConsecutiveFlags {
		t.Fatalf("restart changed alarm state: %+v vs %+v", restLast, contLast)
	}
}

func TestLoadStateRejectsBadInput(t *testing.T) {
	_, model := setup(t)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LoadState(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":9,"group":"SFWB","drives":{}}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"S","drives":{}}`)); err == nil {
		t.Error("wrong group accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"SFWB","drives":{"":{}}}`)); err == nil {
		t.Error("empty serial accepted")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"SFWB","drives":{"A":{"last_day":-5}}}`)); err == nil {
		t.Error("corrupt drive state accepted")
	}
}

func TestLoadStateOnlyAtStartup(t *testing.T) {
	fleet, model := setup(t)
	faulty, _ := pickDrives(t, fleet)
	series, _ := fleet.Data.Series(faulty)
	a, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Observe(series.Records[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"group":"SFWB","drives":{}}`)); err == nil {
		t.Fatal("mid-stream restore accepted")
	}
}
