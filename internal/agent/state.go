package agent

import (
	"encoding/json"
	"fmt"
	"io"
)

// Consumer machines reboot constantly, so the agent's per-drive
// accumulation must survive process restarts: SaveState serialises the
// cumulative counters, flag runs, and alarm latches; LoadState restores
// them into a freshly constructed agent (the model itself travels
// separately, via modelio).

// stateVersion guards the state layout.
const stateVersion = 1

// persistedState is the on-disk form of the agent's drive map.
type persistedState struct {
	Version int                       `json:"version"`
	Group   string                    `json:"group"`
	Drives  map[string]persistedDrive `json:"drives"`
}

// persistedDrive mirrors driveState.
type persistedDrive struct {
	LastDay     int       `json:"last_day"`
	CumW        []float64 `json:"cum_w"`
	CumB        []float64 `json:"cum_b"`
	Consecutive int       `json:"consecutive"`
	Alarmed     bool      `json:"alarmed"`
	Observed    int       `json:"observed"`
}

// SaveState writes the agent's accumulated per-drive state to w.
func (a *Agent) SaveState(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := persistedState{
		Version: stateVersion,
		Group:   a.model.Config.Group.String(),
		Drives:  make(map[string]persistedDrive, len(a.drives)),
	}
	for sn, st := range a.drives {
		out.Drives[sn] = persistedDrive{
			LastDay:     st.lastDay,
			CumW:        st.cumW,
			CumB:        st.cumB,
			Consecutive: st.consecutive,
			Alarmed:     st.alarmed,
			Observed:    st.observed,
		}
	}
	return json.NewEncoder(w).Encode(&out)
}

// LoadState restores per-drive state saved by SaveState. The feature
// group must match the current model's, and the agent must not have
// observed anything yet (restore happens at startup).
func (a *Agent) LoadState(r io.Reader) error {
	var in persistedState
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("agent: decode state: %w", err)
	}
	if in.Version != stateVersion {
		return fmt.Errorf("agent: state version %d, want %d", in.Version, stateVersion)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if in.Group != a.model.Config.Group.String() {
		return fmt.Errorf("agent: state was saved for group %s, agent runs %s", in.Group, a.model.Config.Group)
	}
	if len(a.drives) != 0 {
		return fmt.Errorf("agent: cannot restore state after observations began")
	}
	for sn, pd := range in.Drives {
		if sn == "" {
			return fmt.Errorf("agent: state contains empty serial number")
		}
		if pd.LastDay < -1 || pd.Consecutive < 0 || pd.Observed < 0 {
			return fmt.Errorf("agent: state for %s is corrupt", sn)
		}
		a.drives[sn] = &driveState{
			lastDay:     pd.LastDay,
			cumW:        append([]float64(nil), pd.CumW...),
			cumB:        append([]float64(nil), pd.CumB...),
			consecutive: pd.Consecutive,
			alarmed:     pd.Alarmed,
			observed:    pd.Observed,
		}
	}
	return nil
}
