package agent

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/atomicio"
	"repro/internal/features"
)

// Consumer machines reboot constantly, so the agent's per-drive
// accumulation must survive process restarts: SaveState serialises the
// rolling feature state, flag runs, and alarm latches; LoadState
// restores them into a freshly constructed agent (the model itself
// travels separately, via modelio).

// stateVersion guards the state layout. Version 2 carries the full
// rolling state (the previous raw daily observation, gap tracking, and
// diagnostic rings) so a restart mid-gap mean-fills identically to an
// uninterrupted run; version 1 held only the cumulates and is still
// accepted (it predates gap policies, so nothing is lost).
const stateVersion = 2

// persistedState is the on-disk form of the agent's drive map.
type persistedState struct {
	Version int                       `json:"version"`
	Group   string                    `json:"group"`
	Drives  map[string]persistedDrive `json:"drives"`
}

// persistedDrive mirrors driveState. The version-1 fields (LastDay,
// CumW, CumB, Observed) remain readable for old state files.
type persistedDrive struct {
	Rolling     *features.RollingSnapshot `json:"rolling,omitempty"`
	Consecutive int                       `json:"consecutive"`
	Alarmed     bool                      `json:"alarmed"`

	LastDay  int       `json:"last_day,omitempty"`
	CumW     []float64 `json:"cum_w,omitempty"`
	CumB     []float64 `json:"cum_b,omitempty"`
	Observed int       `json:"observed,omitempty"`
}

// SaveState writes the agent's accumulated per-drive state to w.
func (a *Agent) SaveState(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := persistedState{
		Version: stateVersion,
		Group:   a.model.Config.Group.String(),
		Drives:  make(map[string]persistedDrive, len(a.drives)),
	}
	for sn, st := range a.drives {
		snap := st.roll.Snapshot()
		out.Drives[sn] = persistedDrive{
			Rolling:     &snap,
			Consecutive: st.consecutive,
			Alarmed:     st.alarmed,
		}
	}
	return json.NewEncoder(w).Encode(&out)
}

// SaveStateFile atomically checkpoints the agent's state to path:
// staged in a same-directory temp file, fsynced, and renamed into
// place, so the machine powering off mid-save — the normal consumer
// failure mode — leaves the previous checkpoint intact.
func (a *Agent) SaveStateFile(path string) error {
	return atomicio.WriteFile(path, a.SaveState)
}

// LoadStateFile restores state from a SaveStateFile checkpoint.
func (a *Agent) LoadStateFile(path string) error {
	f, err := atomicio.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return a.LoadState(f)
}

// LoadState restores per-drive state saved by SaveState. The feature
// group must match the current model's, and the agent must not have
// observed anything yet (restore happens at startup).
func (a *Agent) LoadState(r io.Reader) error {
	var in persistedState
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("agent: decode state: %w", err)
	}
	if in.Version != stateVersion && in.Version != 1 {
		return fmt.Errorf("agent: state version %d, want %d", in.Version, stateVersion)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if in.Group != a.model.Config.Group.String() {
		return fmt.Errorf("agent: state was saved for group %s, agent runs %s", in.Group, a.model.Config.Group)
	}
	if len(a.drives) != 0 {
		return fmt.Errorf("agent: cannot restore state after observations began")
	}
	for sn, pd := range in.Drives {
		if sn == "" {
			return fmt.Errorf("agent: state contains empty serial number")
		}
		if pd.Consecutive < 0 {
			return fmt.Errorf("agent: state for %s is corrupt", sn)
		}
		snap := pd.Rolling
		if snap == nil {
			// Version-1 layout: reconstruct the rolling state from the
			// cumulates alone. The previous raw observation is unknown,
			// which only a gap policy's mean-fill would need — and v1
			// agents could not run one.
			if pd.LastDay < -1 || pd.Observed < 0 {
				return fmt.Errorf("agent: state for %s is corrupt", sn)
			}
			snap = &features.RollingSnapshot{
				LastDay:  pd.LastDay,
				Observed: pd.Observed,
				Rows:     pd.Observed,
				CumW:     pd.CumW,
				CumB:     pd.CumB,
			}
		}
		roll, err := features.RollingFromSnapshot(*snap)
		if err != nil {
			return fmt.Errorf("agent: state for %s: %w", sn, err)
		}
		a.drives[sn] = &driveState{
			roll:        roll,
			consecutive: pd.Consecutive,
			alarmed:     pd.Alarmed,
		}
	}
	return nil
}
