// Package agent implements the client-side deployment of MFPA that the
// paper's overhead discussion targets: a lightweight monitor that runs
// on the user's machine, ingests each day's telemetry record for the
// local drive(s), maintains the cumulative counters the model expects,
// scores in microseconds, and raises a backup/replace alarm with
// hysteresis so a single noisy day does not trigger data migration.
// Models arrive through modelio envelopes and can be swapped live when
// the server pushes a re-iterated model (the paper: every two months).
//
// Per-drive accumulation is a features.RollingState — the same
// incremental engine the fleet-side serve.Scorer shards across workers
// — so the agent can optionally run the full discontinuity
// optimisation (Options.GapPolicy) and batch a day's records through
// ObserveDay.
package agent

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/ml"
)

// Options configures an agent.
type Options struct {
	// AlarmAfter is how many consecutive flagged observations raise the
	// alarm; 0 selects 2. Higher values trade detection latency for
	// fewer spurious migrations.
	AlarmAfter int
	// Registries supplies per-vendor firmware ladders for label
	// encoding; nil falls back to first-seen-order encoding (fine for a
	// single-machine agent).
	Registries map[string]*firmware.Registry
	// Explain attaches the top contributing features to flagged
	// assessments when the deployed model supports decision-path
	// attribution (the random forest does). Costs one extra tree walk
	// per flagged observation.
	Explain bool
	// GapPolicy applies the pipeline's discontinuity optimisation
	// online: short gaps are mean-filled (each filled day is scored)
	// and drives with a DropGap-sized gap stop being scored, exactly as
	// the training pipeline would exclude them. The zero value keeps
	// the agent's original pure-cumulate behaviour: every record scores
	// as-is, gaps ignored.
	GapPolicy dataset.GapPolicy
	// Workers bounds the batch-scoring goroutines of ObserveDay
	// (0 = GOMAXPROCS, 1 = serial). Observe is always serial.
	Workers int
}

// Factor is one feature's contribution to a flagged prediction.
type Factor struct {
	Feature      string
	Contribution float64
}

// explainer is satisfied by models with faithful per-prediction
// attribution (forest.Model).
type explainer interface {
	Explain(x []float64) (contributions []float64, bias float64)
}

// Agent scores a machine's drive telemetry stream against a deployed
// model. It is safe for concurrent use.
type Agent struct {
	mu         sync.Mutex
	model      *core.Model
	extractor  *features.Extractor
	alarmAfter int
	registries map[string]*firmware.Registry
	explain    bool
	policy     dataset.GapPolicy
	workers    int
	drives     map[string]*driveState

	// Reusable scratch (guarded by mu): the per-observation feature
	// rows, row metadata, explanation candidates, and ObserveDay's
	// row-pointer/score batch. Observe used to allocate a fresh vector
	// and []Factor per call; at one call per drive-day fleet-wide that
	// dominated the agent's allocation profile.
	scratchX    []float64
	scratchMeta []features.EmittedRow
	factorBuf   []Factor
	dayPlans    []dayPlan
	dayXs       [][]float64
	dayScores   []float64
}

// driveState is one drive's incremental preprocessing state plus alarm
// hysteresis.
type driveState struct {
	roll        *features.RollingState
	consecutive int
	alarmed     bool
}

// dayPlan locates one ObserveDay record's rows in the batch arena.
type dayPlan struct {
	rowOff int32
	rows   int32
}

// Assessment is the outcome of one observation.
type Assessment struct {
	SerialNumber string
	Day          int
	// Probability is the model's P(faulty) for this record.
	Probability float64
	// Flagged reports Probability ≥ the model's calibrated threshold.
	Flagged bool
	// Interpolated marks assessments of mean-filled days (only
	// produced when Options.GapPolicy is set).
	Interpolated bool
	// ConsecutiveFlags counts the current run of flagged observations.
	ConsecutiveFlags int
	// Alarmed reports that the hysteresis criterion has been met (and
	// latches until ResetDrive).
	Alarmed bool
	// Dropped reports the gap policy excluded the drive; no probability
	// is attached.
	Dropped bool
	// TopFactors lists the strongest positive feature contributions
	// when Options.Explain is set, the observation is flagged, and the
	// model supports attribution; nil otherwise.
	TopFactors []Factor
}

// New builds an agent around a deployed model.
func New(model *core.Model, opts Options) (*Agent, error) {
	if model == nil || model.Classifier == nil {
		return nil, fmt.Errorf("agent: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return nil, fmt.Errorf("agent: sequence models (%s) are not supported client-side; deploy a flat model", model.Config.Algorithm)
	}
	alarmAfter := opts.AlarmAfter
	if alarmAfter == 0 {
		alarmAfter = 2
	}
	if alarmAfter < 1 {
		return nil, fmt.Errorf("agent: AlarmAfter %d must be ≥ 1", alarmAfter)
	}
	if opts.GapPolicy != (dataset.GapPolicy{}) {
		if err := opts.GapPolicy.Validate(); err != nil {
			return nil, err
		}
	}
	ext, err := features.NewExtractor(model.Config.Group, opts.Registries)
	if err != nil {
		return nil, err
	}
	if model.Width != 0 && ext.Width() != model.Width {
		return nil, fmt.Errorf("agent: model width %d does not match group %s width %d",
			model.Width, model.Config.Group, ext.Width())
	}
	return &Agent{
		model:      model,
		extractor:  ext,
		alarmAfter: alarmAfter,
		registries: opts.Registries,
		explain:    opts.Explain,
		policy:     opts.GapPolicy,
		workers:    opts.Workers,
		drives:     make(map[string]*driveState),
		// Non-nil from the start: a nil x tells Advance to skip
		// extraction (the bulk catch-up path), which is never what the
		// scoring paths want.
		scratchX: make([]float64, 0, ext.Width()*4),
	}, nil
}

// state returns (creating if needed) the drive's state.
func (a *Agent) state(sn string) *driveState {
	st, ok := a.drives[sn]
	if !ok {
		st = &driveState{roll: features.NewRollingState()}
		a.drives[sn] = st
	}
	return st
}

// assess applies threshold + hysteresis to one scored row and fills an
// assessment. Caller holds a.mu.
func (a *Agent) assess(st *driveState, sn string, row features.EmittedRow, x []float64, p float64) Assessment {
	flagged := p >= a.model.Threshold
	if flagged {
		st.consecutive++
	} else {
		st.consecutive = 0
	}
	if st.consecutive >= a.alarmAfter {
		st.alarmed = true
	}
	as := Assessment{
		SerialNumber:     sn,
		Day:              int(row.Day),
		Probability:      p,
		Flagged:          flagged,
		Interpolated:     row.Interpolated,
		ConsecutiveFlags: st.consecutive,
		Alarmed:          st.alarmed,
	}
	if flagged && a.explain {
		as.TopFactors = a.topFactors(x)
	}
	return as
}

// Observe ingests one day's raw (daily-count) telemetry record and
// returns the health assessment for that day. Records for a drive must
// arrive in chronological order. When a gap policy is active, mean-
// filled days are scored too (they advance the hysteresis) and a
// record of a dropped drive returns a Dropped assessment.
func (a *Agent) Observe(rec dataset.Record) (Assessment, error) {
	if err := rec.Validate(); err != nil {
		return Assessment{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	st := a.state(rec.SerialNumber)
	x, meta, err := st.roll.Advance(a.extractor, a.policy, &rec, a.scratchX[:0], a.scratchMeta[:0])
	a.scratchX, a.scratchMeta = x, meta
	if err != nil {
		return Assessment{}, err
	}
	if len(meta) == 0 {
		return Assessment{SerialNumber: rec.SerialNumber, Day: rec.Day, Dropped: true}, nil
	}
	width := a.extractor.Width()
	var as Assessment
	for k := range meta {
		row := x[k*width : (k+1)*width]
		as = a.assess(st, rec.SerialNumber, meta[k], row, a.model.Predict(row))
	}
	return as, nil // the record's own day is always the last row
}

// ObserveDay ingests a batch of records — typically every local drive's
// record for one day — in a single pass: all feature rows accumulate
// into one arena and score through the ml.ScoreBatch fast path in one
// call. It returns one assessment per emitted row (mean-filled days
// precede their record's day) plus one Dropped entry per excluded
// record, in input-record order — a superset of what per-record Observe
// calls would return. Scores are identical to Observe's.
func (a *Agent) ObserveDay(recs []dataset.Record) ([]Assessment, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	if cap(a.dayPlans) < len(recs) {
		a.dayPlans = make([]dayPlan, len(recs))
	}
	a.dayPlans = a.dayPlans[:len(recs)]
	x, meta := a.scratchX[:0], a.scratchMeta[:0]
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return nil, err
		}
		st := a.state(recs[i].SerialNumber)
		before := len(meta)
		var err error
		x, meta, err = st.roll.Advance(a.extractor, a.policy, &recs[i], x, meta)
		a.scratchX, a.scratchMeta = x, meta
		if err != nil {
			return nil, err
		}
		a.dayPlans[i] = dayPlan{rowOff: int32(before), rows: int32(len(meta) - before)}
	}
	a.scratchX, a.scratchMeta = x, meta

	width := a.extractor.Width()
	rows := len(meta)
	a.dayXs = a.dayXs[:0]
	for r := 0; r < rows; r++ {
		a.dayXs = append(a.dayXs, x[r*width:(r+1)*width:(r+1)*width])
	}
	if cap(a.dayScores) < rows {
		a.dayScores = make([]float64, rows)
	}
	a.dayScores = a.dayScores[:rows]
	ml.ScoreBatch(a.model.Classifier, a.dayXs, a.dayScores, a.workers)

	entries := 0
	for i := range recs {
		if a.dayPlans[i].rows == 0 {
			entries++
		} else {
			entries += int(a.dayPlans[i].rows)
		}
	}
	out := make([]Assessment, 0, entries)
	for i := range recs {
		p := a.dayPlans[i]
		if p.rows == 0 {
			out = append(out, Assessment{SerialNumber: recs[i].SerialNumber, Day: recs[i].Day, Dropped: true})
			continue
		}
		st := a.drives[recs[i].SerialNumber]
		for k := int32(0); k < p.rows; k++ {
			r := int(p.rowOff + k)
			out = append(out, a.assess(st, recs[i].SerialNumber, meta[r], a.dayXs[r], a.dayScores[r]))
		}
	}
	return out, nil
}

// topFactors returns the three strongest positive contributions when
// the model supports attribution. The candidate slice is pooled on the
// agent; only the returned top-3 escape.
func (a *Agent) topFactors(x []float64) []Factor {
	exp, ok := a.model.Classifier.(explainer)
	if !ok {
		return nil
	}
	contrib, _ := exp.Explain(x)
	names := a.extractor.Names()
	if len(contrib) != len(names) {
		return nil
	}
	factors := a.factorBuf[:0]
	for i, c := range contrib {
		if c > 0 {
			factors = append(factors, Factor{Feature: names[i], Contribution: c})
		}
	}
	a.factorBuf = factors
	sort.Slice(factors, func(i, j int) bool { return factors[i].Contribution > factors[j].Contribution })
	if len(factors) > 3 {
		factors = factors[:3]
	}
	out := make([]Factor, len(factors))
	copy(out, factors)
	return out
}

// Window returns a drive's trailing-window diagnostics (recent daily
// W/B event rates, media-error growth).
func (a *Agent) Window(sn string) (features.WindowStats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.drives[sn]
	if !ok {
		return features.WindowStats{}, false
	}
	return st.roll.Window(), true
}

// UpdateModel swaps in a newly pushed model. The feature group must
// match so the accumulated per-drive state stays valid.
func (a *Agent) UpdateModel(model *core.Model) error {
	if model == nil || model.Classifier == nil {
		return fmt.Errorf("agent: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return fmt.Errorf("agent: sequence models are not supported client-side")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if model.Config.Group != a.model.Config.Group {
		return fmt.Errorf("agent: pushed model uses group %s, agent runs %s",
			model.Config.Group, a.model.Config.Group)
	}
	ext, err := features.NewExtractor(model.Config.Group, a.registries)
	if err != nil {
		return err
	}
	a.model = model
	a.extractor = ext
	return nil
}

// Threshold returns the active model's decision threshold.
func (a *Agent) Threshold() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.model.Threshold
}

// Drives lists the serial numbers observed so far, sorted.
func (a *Agent) Drives() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.drives))
	for sn := range a.drives {
		out = append(out, sn)
	}
	sort.Strings(out)
	return out
}

// Alarmed reports whether a drive's alarm has latched.
func (a *Agent) Alarmed(sn string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.drives[sn]
	return ok && st.alarmed
}

// ResetDrive clears a drive's accumulated state (e.g. after the drive
// was replaced). It reports whether the drive was known.
func (a *Agent) ResetDrive(sn string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.drives[sn]; !ok {
		return false
	}
	delete(a.drives, sn)
	return true
}
