// Package agent implements the client-side deployment of MFPA that the
// paper's overhead discussion targets: a lightweight monitor that runs
// on the user's machine, ingests each day's telemetry record for the
// local drive(s), maintains the cumulative counters the model expects,
// scores in microseconds, and raises a backup/replace alarm with
// hysteresis so a single noisy day does not trigger data migration.
// Models arrive through modelio envelopes and can be swapped live when
// the server pushes a re-iterated model (the paper: every two months).
package agent

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
)

// Options configures an agent.
type Options struct {
	// AlarmAfter is how many consecutive flagged observations raise the
	// alarm; 0 selects 2. Higher values trade detection latency for
	// fewer spurious migrations.
	AlarmAfter int
	// Registries supplies per-vendor firmware ladders for label
	// encoding; nil falls back to first-seen-order encoding (fine for a
	// single-machine agent).
	Registries map[string]*firmware.Registry
	// Explain attaches the top contributing features to flagged
	// assessments when the deployed model supports decision-path
	// attribution (the random forest does). Costs one extra tree walk
	// per flagged observation.
	Explain bool
}

// Factor is one feature's contribution to a flagged prediction.
type Factor struct {
	Feature      string
	Contribution float64
}

// explainer is satisfied by models with faithful per-prediction
// attribution (forest.Model).
type explainer interface {
	Explain(x []float64) (contributions []float64, bias float64)
}

// Agent scores a machine's drive telemetry stream against a deployed
// model. It is safe for concurrent use.
type Agent struct {
	mu         sync.Mutex
	model      *core.Model
	extractor  *features.Extractor
	alarmAfter int
	registries map[string]*firmware.Registry
	explain    bool
	drives     map[string]*driveState
}

// driveState is the per-drive accumulation the pipeline's Cumulate
// stage performs fleet-side.
type driveState struct {
	lastDay     int
	cumW        []float64
	cumB        []float64
	consecutive int
	alarmed     bool
	observed    int
}

// Assessment is the outcome of one observation.
type Assessment struct {
	SerialNumber string
	Day          int
	// Probability is the model's P(faulty) for this record.
	Probability float64
	// Flagged reports Probability ≥ the model's calibrated threshold.
	Flagged bool
	// ConsecutiveFlags counts the current run of flagged observations.
	ConsecutiveFlags int
	// Alarmed reports that the hysteresis criterion has been met (and
	// latches until ResetDrive).
	Alarmed bool
	// TopFactors lists the strongest positive feature contributions
	// when Options.Explain is set, the observation is flagged, and the
	// model supports attribution; nil otherwise.
	TopFactors []Factor
}

// New builds an agent around a deployed model.
func New(model *core.Model, opts Options) (*Agent, error) {
	if model == nil || model.Classifier == nil {
		return nil, fmt.Errorf("agent: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return nil, fmt.Errorf("agent: sequence models (%s) are not supported client-side; deploy a flat model", model.Config.Algorithm)
	}
	alarmAfter := opts.AlarmAfter
	if alarmAfter == 0 {
		alarmAfter = 2
	}
	if alarmAfter < 1 {
		return nil, fmt.Errorf("agent: AlarmAfter %d must be ≥ 1", alarmAfter)
	}
	ext, err := features.NewExtractor(model.Config.Group, opts.Registries)
	if err != nil {
		return nil, err
	}
	if model.Width != 0 && ext.Width() != model.Width {
		return nil, fmt.Errorf("agent: model width %d does not match group %s width %d",
			model.Width, model.Config.Group, ext.Width())
	}
	return &Agent{
		model:      model,
		extractor:  ext,
		alarmAfter: alarmAfter,
		registries: opts.Registries,
		explain:    opts.Explain,
		drives:     make(map[string]*driveState),
	}, nil
}

// Observe ingests one day's raw (daily-count) telemetry record and
// returns the health assessment. Records for a drive must arrive in
// chronological order.
func (a *Agent) Observe(rec dataset.Record) (Assessment, error) {
	if err := rec.Validate(); err != nil {
		return Assessment{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	st, ok := a.drives[rec.SerialNumber]
	if !ok {
		st = &driveState{
			lastDay: -1,
			cumW:    make([]float64, len(rec.WCounts)),
			cumB:    make([]float64, len(rec.BCounts)),
		}
		a.drives[rec.SerialNumber] = st
	}
	if rec.Day <= st.lastDay {
		return Assessment{}, fmt.Errorf("agent: drive %s: day %d arrives after day %d", rec.SerialNumber, rec.Day, st.lastDay)
	}
	st.lastDay = rec.Day
	st.observed++

	// Accumulate W/B exactly as the training pipeline's Cumulate stage
	// does, then score the cumulated view of the record.
	for i, v := range rec.WCounts {
		st.cumW[i] += v
	}
	for i, v := range rec.BCounts {
		st.cumB[i] += v
	}
	scored := rec.Clone()
	copy(scored.WCounts, st.cumW)
	copy(scored.BCounts, st.cumB)

	x := a.extractor.Extract(&scored)
	p := a.model.Predict(x)
	flagged := p >= a.model.Threshold
	if flagged {
		st.consecutive++
	} else {
		st.consecutive = 0
	}
	if st.consecutive >= a.alarmAfter {
		st.alarmed = true
	}
	as := Assessment{
		SerialNumber:     rec.SerialNumber,
		Day:              rec.Day,
		Probability:      p,
		Flagged:          flagged,
		ConsecutiveFlags: st.consecutive,
		Alarmed:          st.alarmed,
	}
	if flagged && a.explain {
		as.TopFactors = a.topFactors(x)
	}
	return as, nil
}

// topFactors returns the three strongest positive contributions when
// the model supports attribution.
func (a *Agent) topFactors(x []float64) []Factor {
	exp, ok := a.model.Classifier.(explainer)
	if !ok {
		return nil
	}
	contrib, _ := exp.Explain(x)
	names := a.extractor.Names()
	if len(contrib) != len(names) {
		return nil
	}
	factors := make([]Factor, 0, len(contrib))
	for i, c := range contrib {
		if c > 0 {
			factors = append(factors, Factor{Feature: names[i], Contribution: c})
		}
	}
	sort.Slice(factors, func(i, j int) bool { return factors[i].Contribution > factors[j].Contribution })
	if len(factors) > 3 {
		factors = factors[:3]
	}
	return factors
}

// UpdateModel swaps in a newly pushed model. The feature group must
// match so the accumulated per-drive state stays valid.
func (a *Agent) UpdateModel(model *core.Model) error {
	if model == nil || model.Classifier == nil {
		return fmt.Errorf("agent: nil model")
	}
	if model.Config.Algorithm.Sequential() {
		return fmt.Errorf("agent: sequence models are not supported client-side")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if model.Config.Group != a.model.Config.Group {
		return fmt.Errorf("agent: pushed model uses group %s, agent runs %s",
			model.Config.Group, a.model.Config.Group)
	}
	ext, err := features.NewExtractor(model.Config.Group, a.registries)
	if err != nil {
		return err
	}
	a.model = model
	a.extractor = ext
	return nil
}

// Threshold returns the active model's decision threshold.
func (a *Agent) Threshold() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.model.Threshold
}

// Drives lists the serial numbers observed so far, sorted.
func (a *Agent) Drives() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.drives))
	for sn := range a.drives {
		out = append(out, sn)
	}
	sort.Strings(out)
	return out
}

// Alarmed reports whether a drive's alarm has latched.
func (a *Agent) Alarmed(sn string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.drives[sn]
	return ok && st.alarmed
}

// ResetDrive clears a drive's accumulated state (e.g. after the drive
// was replaced). It reports whether the drive was known.
func (a *Agent) ResetDrive(sn string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.drives[sn]; !ok {
		return false
	}
	delete(a.drives, sn)
	return true
}
