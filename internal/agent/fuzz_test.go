package agent

import (
	"bytes"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
)

// fuzzModel is the cheapest valid flat model: the SMART-threshold
// baseline classifier under the default configuration. Fuzzing
// exercises the state decoder, not the classifier, so no training is
// needed.
func fuzzModel(tb testing.TB) *core.Model {
	tb.Helper()
	return &core.Model{
		Config:     core.DefaultConfig("I"),
		Classifier: baselines.ThresholdDetector{},
		Threshold:  0.5,
	}
}

// FuzzLoadState pins the recovery contract of the state-v2 decoder: a
// state file is adversarial input (torn by a crash, hand-edited, or
// bit-flipped on a dying disk), so arbitrary bytes must produce an
// error — never a panic — and a successful load must round-trip back
// through SaveState.
func FuzzLoadState(f *testing.F) {
	// A genuine checkpoint as the seed the mutator works from.
	a, err := New(fuzzModel(f), Options{})
	if err != nil {
		f.Fatal(err)
	}
	var genuine bytes.Buffer
	if err := a.SaveState(&genuine); err != nil {
		f.Fatal(err)
	}
	f.Add(genuine.Bytes())
	f.Add([]byte(`{"version":2,"group":"SFWB","drives":{}}`))
	f.Add([]byte(`{"version":2,"group":"SFWB","drives":{"D1":{"rolling":{"last_day":3},"consecutive":1}}}`))
	f.Add([]byte(`{"version":1,"group":"SFWB","drives":{"D1":{"last_day":2,"observed":3}}}`))
	f.Add(genuine.Bytes()[:genuine.Len()/2]) // torn checkpoint
	f.Add([]byte(`{"version":2,"group":"SFWB","drives":{"":{}}}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := New(fuzzModel(t), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.LoadState(bytes.NewReader(data)); err != nil {
			return // rejected cleanly — the only acceptable failure mode
		}
		// Accepted states must save again without error.
		if err := a.SaveState(bytes.NewBuffer(nil)); err != nil {
			t.Fatalf("accepted state cannot be re-saved: %v", err)
		}
	})
}
