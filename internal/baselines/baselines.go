// Package baselines implements the comparison points of the paper's
// Fig. 18: the vendor SMART-threshold detector that ships with consumer
// drives, and simplified re-implementations of the published SSD
// failure predictors [19]–[22], each restricted to the feature families
// its original paper used. All of them run on the same prepared
// samples as MFPA, so differences reflect features and algorithms, not
// data handling.
package baselines

import (
	"fmt"
	"sync"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/forest"
	"repro/internal/ml/nn"
	"repro/internal/ml/svm"
	"repro/internal/smartattr"
)

// ThresholdDetector is the classic vendor SMART-threshold alarm
// (Section II: 3–10% TPR at ~0.1% FPR): it flags a sample when any
// thresholded SMART attribute is in its alarm region. It implements
// ml.Classifier over feature vectors whose leading 16 entries are the
// SMART attributes (any group with SMART set).
type ThresholdDetector struct{}

// PredictProba implements ml.Classifier: 1 when any vendor threshold is
// exceeded, else 0.
func (ThresholdDetector) PredictProba(x []float64) float64 {
	if len(x) < smartattr.Count {
		return 0
	}
	var v smartattr.Values
	copy(v[:], x[:smartattr.Count])
	if v.ExceedsThreshold() {
		return 1
	}
	return 0
}

// Baseline couples a named feature group with a trainer, mirroring one
// related-work system.
type Baseline struct {
	// Name identifies the system in reports.
	Name string
	// Citation is the related-work reference the baseline approximates.
	Citation string
	// Group is the feature family the original system used.
	Group features.Group
	// NewTrainer constructs the algorithm the original system used.
	NewTrainer func(seed int64) ml.Trainer
}

// All returns the Fig. 18 comparison set. MFPA itself (RF on SFWB) is
// supplied by the core package; these are the others.
func All() []Baseline {
	return []Baseline{
		{
			Name:     "ErrorLog-RF",
			Citation: "Jacob et al., SC'19 — SSD failures in the field (error-log features)",
			// The SC'19 models consume drive error logs only; our
			// closest projection is the SMART error/reliability subset,
			// which the Mask below selects from the S group.
			Group:      features.GroupS,
			NewTrainer: func(seed int64) ml.Trainer { return &errorLogRF{seed: seed} },
		},
		{
			Name:       "SMART-Bayes",
			Citation:   "Chakraborttii et al., SoCC'20 — interpretable SMART-based prediction",
			Group:      features.GroupS,
			NewTrainer: func(seed int64) ml.Trainer { return &bayes.Trainer{} },
		},
		{
			Name:     "SMART-SVM",
			Citation: "Zhang et al., TPDS'20 — transfer-learning minority prediction (SVM family)",
			Group:    features.GroupS,
			NewTrainer: func(seed int64) ml.Trainer {
				return &svm.Trainer{Lambda: 1e-4, Epochs: 30, Seed: seed, Standardize: true, ClassWeight: 2}
			},
		},
		{
			Name:     "SMART-LSTM",
			Citation: "Pinciroli et al., TDSC'21 — lifespan/failure prediction (recurrent family)",
			Group:    features.GroupS,
			NewTrainer: func(seed int64) ml.Trainer {
				return &nn.CNNLSTMTrainer{
					SeqLen:   1,
					Features: 16,
					Filters:  8,
					Kernel:   1,
					Hidden:   16,
					Epochs:   20,
					Seed:     seed,
				}
			},
		},
	}
}

// errorLogRF is a random forest restricted to the reliability/error
// subset of SMART (media errors, error-log entries, critical warning,
// spare, unsafe shutdowns), approximating an error-log-only model.
type errorLogRF struct {
	seed int64
}

// errorLogFeatures are the S-group indexes retained by the model.
var errorLogFeatures = []int{
	smartattr.CriticalWarning.Index(),
	smartattr.AvailableSpare.Index(),
	smartattr.UnsafeShutdowns.Index(),
	smartattr.MediaErrors.Index(),
	smartattr.ErrorLogEntries.Index(),
}

// Name implements ml.Trainer.
func (t *errorLogRF) Name() string { return "ErrorLog-RF" }

// Train implements ml.Trainer.
func (t *errorLogRF) Train(samples []ml.Sample) (ml.Classifier, error) {
	if err := ml.ValidateSamples(samples, true); err != nil {
		return nil, err
	}
	if len(samples[0].X) < smartattr.Count {
		return nil, fmt.Errorf("baselines: error-log model needs the SMART block, width %d", len(samples[0].X))
	}
	inner := &forest.Trainer{Trees: 100, MaxDepth: 10, Seed: t.seed}
	clf, err := inner.Train(features.Mask(samples, errorLogFeatures))
	if err != nil {
		return nil, err
	}
	return newMaskedClassifier(clf, errorLogFeatures), nil
}

// maskedClassifier projects inputs onto a precomputed feature subset
// before delegating. It implements both ml.Classifier and
// ml.BatchClassifier, so masked baselines ride the inner model's
// flattened batch kernel instead of paying a projection allocation per
// scored row.
type maskedClassifier struct {
	inner ml.Classifier
	keep  []int
	// scratch recycles per-row projection buffers. Prediction must stay
	// safe for concurrent use (ml.ScoreBatch fans rows across
	// goroutines), so the buffer is pooled rather than shared.
	scratch sync.Pool
}

func newMaskedClassifier(inner ml.Classifier, keep []int) *maskedClassifier {
	return &maskedClassifier{inner: inner, keep: keep}
}

// PredictProba implements ml.Classifier.
func (m *maskedClassifier) PredictProba(x []float64) float64 {
	bp, _ := m.scratch.Get().(*[]float64)
	if bp == nil {
		buf := make([]float64, len(m.keep))
		bp = &buf
	}
	sub := *bp
	for i, idx := range m.keep {
		sub[i] = x[idx]
	}
	p := m.inner.PredictProba(sub)
	m.scratch.Put(bp)
	return p
}

// PredictProbaBatch implements ml.BatchClassifier: every row is
// projected into one contiguous matrix, then the inner model scores it
// through its fastest path. Scores are identical to per-row
// PredictProba at any worker count.
func (m *maskedClassifier) PredictProbaBatch(xs [][]float64, out []float64, workers int) {
	k := len(m.keep)
	backing := make([]float64, len(xs)*k)
	sub := make([][]float64, len(xs))
	for r, x := range xs {
		row := backing[r*k : (r+1)*k : (r+1)*k]
		for i, idx := range m.keep {
			row[i] = x[idx]
		}
		sub[r] = row
	}
	ml.ScoreBatch(m.inner, sub, out, workers)
}
