package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/smartattr"
)

func smartVector(healthy bool) []float64 {
	x := make([]float64, smartattr.Count)
	x[smartattr.AvailableSpare.Index()] = 100
	x[smartattr.CompositeTemperature.Index()] = 310
	if !healthy {
		x[smartattr.MediaErrors.Index()] = 50
	}
	return x
}

func TestThresholdDetector(t *testing.T) {
	var d ThresholdDetector
	if got := d.PredictProba(smartVector(true)); got != 0 {
		t.Fatalf("healthy vector scored %g", got)
	}
	// Media errors carry no vendor threshold, so even a degraded drive
	// escapes the classic detector until its critical warning fires —
	// the Section II 3–10% TPR behaviour.
	if got := d.PredictProba(smartVector(false)); got != 0 {
		t.Fatalf("media errors alone scored %g, want 0", got)
	}
	alarmed := smartVector(false)
	alarmed[smartattr.CriticalWarning.Index()] = 1
	if got := d.PredictProba(alarmed); got != 1 {
		t.Fatalf("critical warning scored %g, want 1", got)
	}
	lowSpare := smartVector(true)
	lowSpare[smartattr.AvailableSpare.Index()] = 4
	if got := d.PredictProba(lowSpare); got != 1 {
		t.Fatalf("depleted spare scored %g, want 1", got)
	}
	if got := d.PredictProba([]float64{1, 2}); got != 0 {
		t.Fatalf("short vector scored %g, want 0", got)
	}
}

func TestAllBaselinesTrainAndScore(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var samples []ml.Sample
	for i := 0; i < 120; i++ {
		healthy := i%2 == 0
		x := smartVector(healthy)
		x[smartattr.MediaErrors.Index()] += r.Float64()
		x[smartattr.PowerOnHours.Index()] = 1000 + 10*r.Float64()
		y := 1
		if healthy {
			y = 0
		}
		samples = append(samples, ml.Sample{X: x, Y: y, Day: i, SN: "sn"})
	}
	for _, b := range All() {
		if b.Name == "" || b.Citation == "" {
			t.Errorf("baseline missing metadata: %+v", b)
		}
		clf, err := b.NewTrainer(1).Train(samples)
		if err != nil {
			t.Errorf("baseline %s: %v", b.Name, err)
			continue
		}
		correct := 0
		for _, s := range samples {
			if ml.Predict(clf, s.X) == s.Y {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(samples)); acc < 0.9 {
			t.Errorf("baseline %s training accuracy %g on separable data", b.Name, acc)
		}
	}
}

func TestErrorLogRFRejectsNarrowVectors(t *testing.T) {
	samples := []ml.Sample{
		{X: []float64{1, 2}, Y: 0},
		{X: []float64{3, 4}, Y: 1},
	}
	if _, err := (&errorLogRF{}).Train(samples); err == nil {
		t.Fatal("narrow vectors accepted")
	}
}

func TestMaskedClassifierProjection(t *testing.T) {
	inner := probe{}
	mc := &maskedClassifier{inner: inner, keep: []int{2}}
	if got := mc.PredictProba([]float64{0, 0, 0.7}); got != 0.7 {
		t.Fatalf("projection = %g, want 0.7", got)
	}
}

// probe echoes its first input as the probability.
type probe struct{}

func (probe) PredictProba(x []float64) float64 { return x[0] }

func TestMaskedClassifierBatchMatchesPerRow(t *testing.T) {
	mc := newMaskedClassifier(probe{}, []int{2, 0})
	xs := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = mc.PredictProba(x)
	}
	for _, workers := range []int{1, 0} {
		out := make([]float64, len(xs))
		mc.PredictProbaBatch(xs, out, workers)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d row %d: batch %v != per-row %v", workers, i, out[i], want[i])
			}
		}
	}
	var _ ml.BatchClassifier = mc
}

func TestMaskedClassifierConcurrentScoring(t *testing.T) {
	// The pooled scratch buffer must keep prediction safe for the
	// concurrent fan-out ml.BatchScores performs.
	mc := newMaskedClassifier(probe{}, []int{1})
	samples := make([]ml.Sample, 500)
	for i := range samples {
		samples[i] = ml.Sample{X: []float64{0, float64(i), 0}}
	}
	scores := ml.BatchScores(mc, samples, 0)
	for i := range scores {
		if scores[i] != float64(i) {
			t.Fatalf("row %d: %v", i, scores[i])
		}
	}
}
