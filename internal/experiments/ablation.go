package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/metrics"
	"repro/internal/sampling"
	"repro/internal/simfleet"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Setting string
	TPR     float64
	FPR     float64
	AUC     float64
	Note    string
}

// AblationResult is a generic ablation table.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// String renders the sweep.
func (r *AblationResult) String() string {
	t := newTable(r.Title, "Setting", "TPR", "FPR", "AUC", "Note")
	for _, row := range r.Rows {
		t.addRow(row.Setting, f4(row.TPR), f4(row.FPR), f4(row.AUC), row.Note)
	}
	return t.String()
}

// Row returns the metrics of one setting, if present.
func (r *AblationResult) Row(setting string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Setting == setting {
			return row, true
		}
	}
	return AblationRow{}, false
}

// runVariant trains one pipeline variant and converts it to a row.
func (c *Context) runVariant(setting string, mutate func(*core.Config)) (AblationRow, error) {
	return c.runVariantOn(c.Fleet, setting, mutate)
}

// runVariantOn trains one pipeline variant against an explicit fleet.
func (c *Context) runVariantOn(fleet *simfleet.Result, setting string, mutate func(*core.Config)) (AblationRow, error) {
	cfg := c.PipelineConfig(primaryVendor, features.GroupSFWB)
	mutate(&cfg)
	_, rep, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("experiments: variant %s: %w", setting, err)
	}
	return AblationRow{Setting: setting, TPR: rep.Eval.TPR(), FPR: rep.Eval.FPR(), AUC: rep.Eval.AUC}, nil
}

// thetaFleet simulates (once) a fleet with heavy ticket delays and
// machine abandonment, so the θ sensitivity test actually bites: with a
// mean failure→repair lag of nine days and half the users walking away
// from flaky machines early, a small θ leaves many failures
// unlabellable (starving the positive class) while a large θ back-dates
// labels into barely-degraded territory (polluting it).
func (c *Context) thetaFleet() (*simfleet.Result, error) {
	if c.slowTicketFleet != nil {
		return c.slowTicketFleet, nil
	}
	cfg := c.Cfg
	cfg.TicketDelayMeanDays = 9
	cfg.TicketDelayMaxDays = 30
	cfg.AbandonShare = 0.5
	cfg.AbandonMaxDays = 15
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		return nil, err
	}
	c.slowTicketFleet = fleet
	return fleet, nil
}

// AblationTheta sweeps the failure-time threshold θ (the paper sets 7
// via a sensitivity test: too high raises FPR, too low starves TPR) on
// the heavy-delay fleet where labelling noise matters.
func (c *Context) AblationTheta() (*AblationResult, error) {
	fleet, err := c.thetaFleet()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation: failure-time threshold θ (delays mean 9d, 50% early abandonment)"}
	for _, theta := range []int{1, 3, 5, 7, 10, 14, 21} {
		row, err := c.runVariantOn(fleet, fmt.Sprintf("θ=%d", theta), func(cfg *core.Config) { cfg.Theta = theta })
		if err != nil {
			return nil, err
		}
		if theta == 7 {
			row.Note = "paper's choice"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationGapPolicy compares the paper's discontinuity optimisation
// against no cleaning and against a stricter drop rule.
func (c *Context) AblationGapPolicy() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: discontinuity optimisation (drop/fill policy)"}
	variants := []struct {
		name   string
		mutate func(*core.Config)
		note   string
	}{
		{"drop≥10,fill≤3", func(cfg *core.Config) {}, "paper's policy"},
		{"no cleaning", func(cfg *core.Config) { cfg.SkipClean = true }, ""},
		{"drop≥6,fill≤3", func(cfg *core.Config) { cfg.GapPolicy = dataset.GapPolicy{DropGap: 6, FillGap: 3} }, "stricter drop"},
		{"drop≥10,fill≤1", func(cfg *core.Config) { cfg.GapPolicy = dataset.GapPolicy{DropGap: 10, FillGap: 1} }, "no mean fill"},
	}
	for _, v := range variants {
		row, err := c.runVariant(v.name, v.mutate)
		if err != nil {
			return nil, err
		}
		row.Note = v.note
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationSegmentation compares timepoint-based segmentation with the
// conventional shuffled split the paper argues against. The shuffled
// split trains on future data, so its numbers are optimistically
// biased — the ablation quantifies the bias.
func (c *Context) AblationSegmentation() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: sample segmentation (Fig 8a)"}
	row, err := c.runVariant("timepoint-based", func(cfg *core.Config) {})
	if err != nil {
		return nil, err
	}
	row.Note = "paper's method; honest forward evaluation"
	res.Rows = append(res.Rows, row)

	row, err = c.runVariant("random split", func(cfg *core.Config) { cfg.RandomSegmentation = true })
	if err != nil {
		return nil, err
	}
	row.Note = "leaks future data into training"
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AblationCrossValidation compares how well time-series CV and
// conventional k-fold CV *estimate* the model's true held-out AUC. The
// paper's point: k-fold validates on the past, so its estimate is
// optimistic; TS-CV's estimate tracks reality.
func (c *Context) AblationCrossValidation() (*AblationResult, error) {
	train, test, p, err := c.Split(primaryVendor, features.GroupSFWB)
	if err != nil {
		return nil, err
	}
	trainUS, err := sampling.UnderSample(train, p.Config.NegativeRatio, p.Config.Seed)
	if err != nil {
		return nil, err
	}
	trainer := &forest.Trainer{Trees: 60, MaxDepth: 12, Seed: p.Config.Seed}

	// Ground truth: train on the full window, evaluate forward.
	clf, err := trainer.Train(trainUS)
	if err != nil {
		return nil, err
	}
	trueAUC := metrics.AUCScore(clf, test)

	meanAUC := func(folds []sampling.Fold) (float64, error) {
		var sum float64
		n := 0
		for _, fold := range folds {
			neg, pos := ml.ClassCounts(fold.Train)
			negV, posV := ml.ClassCounts(fold.Val)
			if neg == 0 || pos == 0 || negV == 0 || posV == 0 {
				continue
			}
			cl, err := trainer.Train(fold.Train)
			if err != nil {
				return 0, err
			}
			sum += metrics.AUCScore(cl, fold.Val)
			n++
		}
		if n == 0 {
			return math.NaN(), nil
		}
		return sum / float64(n), nil
	}

	tsFolds, err := sampling.TimeSeriesCV(trainUS, 3)
	if err != nil {
		return nil, err
	}
	tsAUC, err := meanAUC(tsFolds)
	if err != nil {
		return nil, err
	}
	kFolds, err := sampling.KFoldCV(trainUS, 4, p.Config.Seed)
	if err != nil {
		return nil, err
	}
	kAUC, err := meanAUC(kFolds)
	if err != nil {
		return nil, err
	}

	res := &AblationResult{Title: "Ablation: cross-validation scheme (Fig 8b) — estimated vs true AUC"}
	res.Rows = append(res.Rows,
		AblationRow{Setting: "true forward AUC", AUC: trueAUC, Note: "train window → test window"},
		AblationRow{Setting: "time-series CV estimate", AUC: tsAUC,
			Note: fmt.Sprintf("bias %+0.4f", tsAUC-trueAUC)},
		AblationRow{Setting: "k-fold CV estimate", AUC: kAUC,
			Note: fmt.Sprintf("bias %+0.4f (validates on the past)", kAUC-trueAUC)},
	)
	return res, nil
}

// AblationSampling sweeps the under-sampling ratio (the paper uses 3:1
// or 5:1).
func (c *Context) AblationSampling() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: negative under-sampling ratio"}
	for _, ratio := range []float64{1, 3, 5, 10} {
		row, err := c.runVariant(fmt.Sprintf("%g:1", ratio), func(cfg *core.Config) { cfg.NegativeRatio = ratio })
		if err != nil {
			return nil, err
		}
		if ratio == 3 {
			row.Note = "paper's default"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationCumulative compares cumulative W/B counters against raw daily
// counts (the paper accumulates because daily counts are too sparse to
// show trends).
func (c *Context) AblationCumulative() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: cumulative vs daily W/B counters"}
	row, err := c.runVariant("cumulative", func(cfg *core.Config) {})
	if err != nil {
		return nil, err
	}
	row.Note = "paper's preprocessing"
	res.Rows = append(res.Rows, row)

	row, err = c.runVariant("daily counts", func(cfg *core.Config) { cfg.SkipCumulate = true })
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AblationPositiveWindow sweeps the positive sample window (7/14/21
// days, the choices the paper lists).
func (c *Context) AblationPositiveWindow() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: positive sample window"}
	for _, days := range []int{7, 14, 21} {
		row, err := c.runVariant(fmt.Sprintf("%dd", days), func(cfg *core.Config) { cfg.PositiveWindowDays = days })
		if err != nil {
			return nil, err
		}
		if days == 7 {
			row.Note = "paper's default"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
