package experiments

import (
	"fmt"

	"repro/internal/bsod"
	"repro/internal/features"
	"repro/internal/smartattr"
	"repro/internal/ticket"
	"repro/internal/winevent"
)

// TableIResult reproduces Table I: the RaSRF failure taxonomy with the
// paper's published shares next to the shares observed in this run's
// ticket stream.
type TableIResult struct {
	Rows []TableIRow
	// DriveLevelShare and SystemLevelShare are the observed level
	// totals (paper: 31.62% / 68.38%).
	DriveLevelShare  float64
	SystemLevelShare float64
	Tickets          int
}

// TableIRow is one cause row.
type TableIRow struct {
	Level    ticket.Level
	Category ticket.Category
	Cause    string
	// PaperShare is Table I's published percentage (as a fraction).
	PaperShare float64
	// ObservedShare is this run's fraction of tickets.
	ObservedShare float64
	Count         int
}

// TableI tallies the simulated ticket stream against the RaSRF
// taxonomy.
func (c *Context) TableI() (*TableIResult, error) {
	counts := c.Fleet.Tickets.CountByCause()
	total := c.Fleet.Tickets.Len()
	if total == 0 {
		return nil, fmt.Errorf("experiments: no tickets in fleet")
	}
	res := &TableIResult{Tickets: total}
	for i, cause := range ticket.AllCauses() {
		share := float64(counts[i]) / float64(total)
		res.Rows = append(res.Rows, TableIRow{
			Level:         cause.Level,
			Category:      cause.Category,
			Cause:         cause.Name,
			PaperShare:    cause.Share,
			ObservedShare: share,
			Count:         counts[i],
		})
		switch cause.Level {
		case ticket.DriveLevel:
			res.DriveLevelShare += share
		case ticket.SystemLevel:
			res.SystemLevelShare += share
		}
	}
	return res, nil
}

// String renders the table.
func (r *TableIResult) String() string {
	t := newTable("Table I: RaSRF — Replaced as SSD_Related Failures",
		"Level", "Category", "Cause", "Paper", "Observed", "N")
	for _, row := range r.Rows {
		t.addRow(row.Level.String(), row.Category.String(), row.Cause,
			pct(row.PaperShare), pct(row.ObservedShare), fmt.Sprint(row.Count))
	}
	t.addRow("", "", "Drive level total", "31.62%", pct(r.DriveLevelShare), "")
	t.addRow("", "", "System level total", "68.38%", pct(r.SystemLevelShare), "")
	return t.String()
}

// TableIIResult reproduces Table II: the SMART attribute catalogue.
type TableIIResult struct {
	Attributes []smartattr.Info
}

// TableII returns the catalogue.
func (c *Context) TableII() (*TableIIResult, error) {
	return &TableIIResult{Attributes: smartattr.All()}, nil
}

// String renders the catalogue.
func (r *TableIIResult) String() string {
	t := newTable("Table II: SMART attributes", "ID", "Attribute", "Kind", "Unit")
	kinds := map[smartattr.Kind]string{
		smartattr.Counter:  "counter",
		smartattr.Gauge:    "gauge",
		smartattr.Constant: "constant",
	}
	for _, info := range r.Attributes {
		t.addRow(info.ID.Label(), info.Name, kinds[info.Kind], info.Unit)
	}
	return t.String()
}

// TableVResult reproduces Table V: the feature-group definitions with
// realised feature counts.
type TableVResult struct {
	Rows []TableVRow
}

// TableVRow is one feature-group row.
type TableVRow struct {
	Group    features.Group
	SMART    int
	Firmware int
	WEvents  int
	BSOD     int
	Width    int
}

// TableV derives the group widths from the catalogues.
func (c *Context) TableV() (*TableVResult, error) {
	res := &TableVResult{}
	for _, g := range features.AllGroups() {
		row := TableVRow{Group: g}
		if g.SMART {
			row.SMART = smartattr.Count
		}
		if g.Firmware {
			row.Firmware = 1
		}
		if g.WEvents {
			row.WEvents = winevent.SelectedCount()
		}
		if g.BSOD {
			row.BSOD = bsod.Count() + 1 // +1: derived B_total
		}
		row.Width = row.SMART + row.Firmware + row.WEvents + row.BSOD
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table.
func (r *TableVResult) String() string {
	t := newTable("Table V: Feature Groups",
		"Group", "SMART", "Firmware", "WindowsEvent", "BlueScreenofDeath", "Width")
	na := func(n int) string {
		if n == 0 {
			return "NaN"
		}
		return fmt.Sprint(n)
	}
	for _, row := range r.Rows {
		t.addRow(row.Group.String(), na(row.SMART), na(row.Firmware),
			na(row.WEvents), na(row.BSOD), fmt.Sprint(row.Width))
	}
	return t.String()
}

// TableVIResult reproduces Table VI: the per-vendor dataset summary.
type TableVIResult struct {
	Rows []TableVIRow
}

// TableVIRow is one vendor row.
type TableVIRow struct {
	Vendor string
	// Population is the nominal fleet size; PaperRR the published
	// replacement rate; Failures the materialised faulty drives in this
	// run; SampledHealthy the healthy subsample.
	Population     int
	PaperFailures  int
	PaperRR        float64
	Failures       int
	SampledHealthy int
	Records        int
}

// TableVI summarises the simulated fleet.
func (c *Context) TableVI() (*TableVIResult, error) {
	res := &TableVIResult{}
	recordsByVendor := make(map[string]int)
	for _, sn := range c.Fleet.Data.SerialNumbers() {
		s, _ := c.Fleet.Data.Series(sn)
		recordsByVendor[s.Vendor] += len(s.Records)
	}
	for _, st := range c.Fleet.Stats {
		res.Rows = append(res.Rows, TableVIRow{
			Vendor:         st.Name,
			Population:     st.Population,
			PaperFailures:  st.NominalFailures,
			PaperRR:        st.ReplacementRate(),
			Failures:       st.Failures,
			SampledHealthy: st.SampledHealthy,
			Records:        recordsByVendor[st.Name],
		})
	}
	return res, nil
}

// String renders the table.
func (r *TableVIResult) String() string {
	t := newTable("Table VI: Dataset (M.2 2280, NVMe, 3D TLC)",
		"Vendor", "Population", "Paper failures", "Paper RR", "Sim failures", "Sim healthy", "Records")
	for _, row := range r.Rows {
		t.addRow(row.Vendor, fmt.Sprint(row.Population), fmt.Sprint(row.PaperFailures),
			fmt.Sprintf("%.4f", row.PaperRR), fmt.Sprint(row.Failures),
			fmt.Sprint(row.SampledHealthy), fmt.Sprint(row.Records))
	}
	return t.String()
}
