package experiments

import (
	"fmt"
	"sort"
)

// Registry lists every experiment by the paper artefact it regenerates.
// cmd/mfpareport iterates it; tests assert it stays complete.
func Registry() []Runner {
	wrap := func(name, desc string, run func(c *Context) (fmt.Stringer, error)) Runner {
		return Runner{Name: name, Description: desc, Run: run}
	}
	return []Runner{
		wrap("table1", "RaSRF failure taxonomy shares", func(c *Context) (fmt.Stringer, error) { return c.TableI() }),
		wrap("table2", "SMART attribute catalogue", func(c *Context) (fmt.Stringer, error) { return c.TableII() }),
		wrap("table5", "Feature group definitions", func(c *Context) (fmt.Stringer, error) { return c.TableV() }),
		wrap("table6", "Dataset summary per vendor", func(c *Context) (fmt.Stringer, error) { return c.TableVI() }),
		wrap("fig2", "Failure distribution over power-on hours (bathtub)", func(c *Context) (fmt.Stringer, error) { return c.Fig2() }),
		wrap("fig3", "Failure rate per firmware version", func(c *Context) (fmt.Stringer, error) { return c.Fig3() }),
		wrap("fig4", "Cumulative W_161: faulty vs healthy", func(c *Context) (fmt.Stringer, error) { return c.Fig4() }),
		wrap("fig5", "Cumulative B_50: faulty vs healthy", func(c *Context) (fmt.Stringer, error) { return c.Fig5() }),
		wrap("fig6", "Telemetry discontinuity structure", func(c *Context) (fmt.Stringer, error) { return c.Fig6() }),
		wrap("fig9", "MFPA across feature groups (+Fig13)", func(c *Context) (fmt.Stringer, error) { return c.Fig9() }),
		wrap("fig10", "MFPA across ML algorithms (+Fig14)", func(c *Context) (fmt.Stringer, error) { return c.Fig10() }),
		wrap("fig11", "MFPA across vendors (+Fig15)", func(c *Context) (fmt.Stringer, error) { return c.Fig11() }),
		wrap("fig12", "Five months without iteration (+Fig16)", func(c *Context) (fmt.Stringer, error) { return c.Fig12() }),
		wrap("fig17", "Sequential forward feature selection", func(c *Context) (fmt.Stringer, error) { return c.Fig17() }),
		wrap("fig18", "MFPA vs state-of-the-art baselines", func(c *Context) (fmt.Stringer, error) { return c.Fig18() }),
		wrap("fig19", "TPR vs lookahead window", func(c *Context) (fmt.Stringer, error) { return c.Fig19() }),
		wrap("fig20", "Per-stage overhead", func(c *Context) (fmt.Stringer, error) { return c.Fig20() }),
		wrap("gridsearch", "Hyper-parameter grid search over TS-CV", func(c *Context) (fmt.Stringer, error) { return c.GridSearch() }),
		wrap("importance", "RF feature importance over the SFWB pool", func(c *Context) (fmt.Stringer, error) { return c.Importance() }),
		wrap("channels", "Leave-one-channel-out collection-cost study", func(c *Context) (fmt.Stringer, error) { return c.Channels() }),
		wrap("seeds", "Across-seed stability of per-vendor models", func(c *Context) (fmt.Stringer, error) { return c.Seeds() }),
		wrap("costs", "Cost-sensitive operating points", func(c *Context) (fmt.Stringer, error) { return c.CostStudy() }),
		wrap("theta", "Ablation: θ sensitivity", func(c *Context) (fmt.Stringer, error) { return c.AblationTheta() }),
		wrap("gaps", "Ablation: discontinuity policy", func(c *Context) (fmt.Stringer, error) { return c.AblationGapPolicy() }),
		wrap("segmentation", "Ablation: timepoint vs random split", func(c *Context) (fmt.Stringer, error) { return c.AblationSegmentation() }),
		wrap("crossval", "Ablation: TS-CV vs k-fold estimate bias", func(c *Context) (fmt.Stringer, error) { return c.AblationCrossValidation() }),
		wrap("ratio", "Ablation: under-sampling ratio", func(c *Context) (fmt.Stringer, error) { return c.AblationSampling() }),
		wrap("cumulative", "Ablation: cumulative vs daily counters", func(c *Context) (fmt.Stringer, error) { return c.AblationCumulative() }),
		wrap("poswindow", "Ablation: positive window 7/14/21", func(c *Context) (fmt.Stringer, error) { return c.AblationPositiveWindow() }),
	}
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// Names returns all experiment names, sorted.
func Names() []string {
	rs := Registry()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}
