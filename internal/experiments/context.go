// Package experiments regenerates every table and figure of the
// paper's evaluation from the simulated fleet: the RaSRF taxonomy
// (Table I), the dataset summary (Table VI), the observation figures
// (Figs. 2–6), the model studies (Figs. 9–19), and the overhead
// breakdown (Fig. 20), plus the ablation studies DESIGN.md calls out.
//
// Each experiment returns a typed result whose String method renders
// the same rows/series the paper reports, so `mfpareport` and the
// benchmark harness print directly comparable output.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/ml"
	"repro/internal/sampling"
	"repro/internal/simfleet"
)

// Context owns the simulated fleets and caches the expensive shared
// stages (preparation, sample building, splits) across experiments.
type Context struct {
	// Cfg is the fleet configuration of the headline experiments.
	Cfg simfleet.Config
	// Fleet is the simulated population.
	Fleet *simfleet.Result

	// Registries maps vendor name to its firmware ladder, for
	// order-preserving label encoding.
	Registries map[string]*firmware.Registry

	// Workers bounds the fan-out of every parallelised stage the
	// experiments drive — pipeline preparation, grid search, feature
	// selection — following the repository convention (0 = GOMAXPROCS,
	// 1 = serial). It is seeded from the fleet config's Workers field
	// and never changes results, only wall-clock time.
	Workers int

	driftFleet      *simfleet.Result
	slowTicketFleet *simfleet.Result

	// frame is the fleet telemetry in columnar form, converted lazily;
	// Prepared runs the fused frame pipeline on it.
	frame *dataset.Frame

	prepCache   map[string]*core.Prepared
	sampleCache map[string][]ml.Sample
	setCache    map[string]*ml.SampleSet
}

// NewContext simulates the default experiment fleet. failureScale
// trades statistical resolution for runtime (the report uses 0.2, unit
// tests far less); seed fixes the fleet.
func NewContext(failureScale float64, seed int64) (*Context, error) {
	cfg := simfleet.DefaultConfig()
	cfg.FailureScale = failureScale
	cfg.Seed = seed
	return NewContextWith(cfg)
}

// NewContextWith simulates a fleet from an explicit configuration.
func NewContextWith(cfg simfleet.Config) (*Context, error) {
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		return nil, err
	}
	c := &Context{
		Cfg:         cfg,
		Fleet:       fleet,
		Registries:  make(map[string]*firmware.Registry),
		Workers:     cfg.Workers,
		prepCache:   make(map[string]*core.Prepared),
		sampleCache: make(map[string][]ml.Sample),
		setCache:    make(map[string]*ml.SampleSet),
	}
	for _, v := range fleet.Config.Vendors {
		c.Registries[v.Name] = v.Firmware
	}
	return c, nil
}

// PipelineConfig returns the paper's best pipeline configuration for
// one vendor, wired to this context's firmware registries.
func (c *Context) PipelineConfig(vendor string, group features.Group) core.Config {
	cfg := core.DefaultConfig(vendor)
	cfg.Group = group
	cfg.Registries = c.Registries
	cfg.Seed = c.Cfg.Seed
	cfg.Workers = c.Workers
	return cfg
}

// Prepared returns (caching) the prepared pipeline for a vendor. All
// feature groups share one preparation because cleaning and labelling
// are group-independent; only extraction differs, and extractors are
// cheap. The cache key includes the group because Prepared embeds its
// extractor.
func (c *Context) Prepared(vendor string, group features.Group) (*core.Prepared, error) {
	key := vendor + "/" + group.String()
	if p, ok := c.prepCache[key]; ok {
		return p, nil
	}
	f, err := c.FleetFrame()
	if err != nil {
		return nil, err
	}
	p, err := core.PrepareFrame(f, c.Fleet.Tickets, c.PipelineConfig(vendor, group))
	if err != nil {
		return nil, err
	}
	c.prepCache[key] = p
	return p, nil
}

// FleetFrame returns (converting once) the fleet telemetry as a
// columnar frame — the input of the fused preprocessing pipeline.
func (c *Context) FleetFrame() (*dataset.Frame, error) {
	if c.frame != nil {
		return c.frame, nil
	}
	f, err := dataset.FrameFromDataset(c.Fleet.Data)
	if err != nil {
		return nil, err
	}
	c.frame = f
	return f, nil
}

// Samples returns (caching) the flat samples of a vendor/group pair.
func (c *Context) Samples(vendor string, group features.Group) ([]ml.Sample, *core.Prepared, error) {
	key := vendor + "/" + group.String()
	p, err := c.Prepared(vendor, group)
	if err != nil {
		return nil, nil, err
	}
	if s, ok := c.sampleCache[key]; ok {
		return s, p, nil
	}
	s, err := p.BuildSamples()
	if err != nil {
		return nil, nil, err
	}
	c.sampleCache[key] = s
	return s, p, nil
}

// Split returns the chronological train/test split of a vendor/group.
func (c *Context) Split(vendor string, group features.Group) (train, test []ml.Sample, p *core.Prepared, err error) {
	samples, p, err := c.Samples(vendor, group)
	if err != nil {
		return nil, nil, nil, err
	}
	train, test = sampling.SplitFraction(samples, p.Config.TrainFrac)
	return train, test, p, nil
}

// SampleSet returns (caching) the columnar sample set of a vendor/group
// pair. The set — and its lazily built binned matrix — is shared by
// every view-path experiment, so binning happens at most once per
// vendor/group for the whole report run.
func (c *Context) SampleSet(vendor string, group features.Group) (*ml.SampleSet, *core.Prepared, error) {
	key := vendor + "/" + group.String()
	p, err := c.Prepared(vendor, group)
	if err != nil {
		return nil, nil, err
	}
	if s, ok := c.setCache[key]; ok {
		return s, p, nil
	}
	s, err := p.BuildSampleSet()
	if err != nil {
		return nil, nil, err
	}
	c.setCache[key] = s
	return s, p, nil
}

// SplitSet returns the chronological train/test split of a vendor/group
// as zero-copy views of the shared sample set.
func (c *Context) SplitSet(vendor string, group features.Group) (train, test ml.View, p *core.Prepared, err error) {
	set, p, err := c.SampleSet(vendor, group)
	if err != nil {
		return ml.View{}, ml.View{}, nil, err
	}
	train, test = sampling.SplitFractionView(set.All(), p.Config.TrainFrac)
	return train, test, p, nil
}

// DriftFleet simulates (once) the longer drifting fleet of the
// Figs. 12/16 time-period study.
func (c *Context) DriftFleet() (*simfleet.Result, error) {
	if c.driftFleet != nil {
		return c.driftFleet, nil
	}
	cfg := simfleet.DriftConfig()
	cfg.FailureScale = c.Cfg.FailureScale
	cfg.Seed = c.Cfg.Seed
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		return nil, err
	}
	c.driftFleet = fleet
	return fleet, nil
}

// VendorNames returns the simulated vendor names in spec order.
func (c *Context) VendorNames() []string {
	names := make([]string, 0, len(c.Fleet.Stats))
	for _, s := range c.Fleet.Stats {
		names = append(names, s.Name)
	}
	return names
}

// primaryVendor is the vendor used by the single-vendor studies; the
// paper uses vendor I (most failures, best-resolved metrics).
const primaryVendor = "I"

// Runner is a named experiment producing printable output.
type Runner struct {
	Name        string
	Description string
	Run         func(c *Context) (fmt.Stringer, error)
}
