package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml/forest"
	"repro/internal/ml/search"
	"repro/internal/sampling"
)

// Fig17Result reproduces Fig. 17: the sequential-forward-selection
// trajectory over the SFWB pool. The paper: TPR climbs 0.926 → 0.9818
// and FPR falls 0.023 → 0.0056 as features are added; W_11, W_49,
// W_51, W_161, B_50, B_7A and the SMART error counters matter, while
// Available Spare Threshold is useless.
type Fig17Result struct {
	Steps []search.SFSStep
	// Selected is the final subset in selection order.
	Selected []string
}

// Fig17 runs SFS with the RF trainer on vendor I's SFWB samples. It
// rides the view path: every candidate subset is a column sub-view of
// the once-binned shared arena, so no per-subset masked copies of
// train and test are made.
func (c *Context) Fig17() (*Fig17Result, error) {
	train, test, p, err := c.SplitSet(primaryVendor, features.GroupSFWB)
	if err != nil {
		return nil, err
	}
	train, err = sampling.UnderSampleView(train, p.Config.NegativeRatio, p.Config.Seed)
	if err != nil {
		return nil, err
	}
	// A lighter forest keeps the O(width²) SFS affordable. Candidates
	// already fan out across c.Workers goroutines, so each forest grows
	// serially to avoid oversubscription.
	trainer := &forest.Trainer{Trees: 30, MaxDepth: 10, Seed: p.Config.Seed, Parallelism: 1}
	res, err := search.ForwardSelectSet(trainer, train, test, p.Extractor.Names(), 10, 1e-4, c.Workers)
	if err != nil {
		return nil, err
	}
	return &Fig17Result{Steps: res.Steps, Selected: res.Names}, nil
}

// String renders the trajectory.
func (r *Fig17Result) String() string {
	t := newTable("Fig 17: Sequential forward selection (RF, SFWB pool, vendor I)",
		"Step", "Added feature", "TPR", "FPR", "AUC")
	for i, s := range r.Steps {
		t.addRow(fmt.Sprint(i+1), s.FeatureName, f4(s.TPR), f4(s.FPR), f4(s.AUC))
	}
	return t.String()
}

// Fig18Result reproduces Fig. 18: MFPA against the state-of-the-art
// baselines [19]–[22] plus the vendor SMART-threshold detector, all on
// the same vendor-I split.
type Fig18Result struct {
	Rows []MetricRow
}

// Fig18 evaluates every baseline and MFPA on identical data handling.
func (c *Context) Fig18() (*Fig18Result, error) {
	res := &Fig18Result{}

	// MFPA (RF on SFWB with the full pipeline).
	cfg := c.PipelineConfig(primaryVendor, features.GroupSFWB)
	p, err := core.Prepare(c.Fleet.Data, c.Fleet.Tickets, cfg)
	if err != nil {
		return nil, err
	}
	m, rep, err := core.Train(p)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, metricRow("MFPA (SFWB+RF)", rep, m))

	// The vendor threshold detector needs no training; evaluate on the
	// S-group test records.
	_, testS, _, err := c.Split(primaryVendor, features.GroupS)
	if err != nil {
		return nil, err
	}
	thrEval := core.EvaluateSamples(baselines.ThresholdDetector{}, testS)
	res.Rows = append(res.Rows, MetricRow{
		Name:      "SMART-threshold",
		TPR:       thrEval.TPR(),
		FPR:       thrEval.FPR(),
		ACC:       thrEval.Accuracy(),
		AUC:       thrEval.AUC,
		PDR:       thrEval.PDR(),
		DriveTPR:  thrEval.DriveConfusion.TPR(),
		DriveFPR:  thrEval.DriveConfusion.FPR(),
		Threshold: 0.5,
	})

	// The learned baselines share MFPA's preprocessing but keep their
	// original feature families and algorithms.
	for _, b := range baselines.All() {
		train, test, pb, err := c.Split(primaryVendor, b.Group)
		if err != nil {
			return nil, err
		}
		trainUS, err := sampling.UnderSample(train, pb.Config.NegativeRatio, pb.Config.Seed)
		if err != nil {
			return nil, err
		}
		clf, err := b.NewTrainer(pb.Config.Seed).Train(trainUS)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", b.Name, err)
		}
		ev := core.EvaluateSamples(clf, test)
		res.Rows = append(res.Rows, MetricRow{
			Name:      b.Name,
			TPR:       ev.TPR(),
			FPR:       ev.FPR(),
			ACC:       ev.Accuracy(),
			AUC:       ev.AUC,
			PDR:       ev.PDR(),
			DriveTPR:  ev.DriveConfusion.TPR(),
			DriveFPR:  ev.DriveConfusion.FPR(),
			Threshold: 0.5,
		})
	}
	return res, nil
}

// Row returns one system's metrics, if present.
func (r *Fig18Result) Row(name string) (MetricRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return MetricRow{}, false
}

// String renders the comparison.
func (r *Fig18Result) String() string {
	return renderMetricRows("Fig 18: MFPA vs state-of-the-art baselines (vendor I)", "System", r.Rows)
}

// Fig19Result reproduces Fig. 19: TPR as a function of the lookahead
// window N — how far in advance the model still sees the failure. The
// paper: ≈89% at N=5 days, degrading to ≈55.66% at N=20.
type Fig19Result struct {
	// Lookahead[i] days maps to TPR[i].
	Lookahead []int
	TPR       []float64
	Samples   []int
}

// Fig19 trains the standard model and probes positives at increasing
// distance from failure.
func (c *Context) Fig19() (*Fig19Result, error) {
	cfg := c.PipelineConfig(primaryVendor, features.GroupSFWB)
	p, err := core.Prepare(c.Fleet.Data, c.Fleet.Tickets, cfg)
	if err != nil {
		return nil, err
	}
	m, _, err := core.Train(p)
	if err != nil {
		return nil, err
	}
	res := &Fig19Result{}
	for n := 1; n <= 21; n += 2 {
		pos := features.PositiveSamplesAt(p.Data, p.Labels, p.Extractor, n, 1)
		// Only failures after the learning window are fair probes.
		var test []float64
		flagged := 0
		for i := range pos {
			if lbl, ok := p.Labels[pos[i].SN]; !ok || lbl.FailDay <= m.TrainEndDay {
				continue
			}
			score := m.Predict(pos[i].X)
			test = append(test, score)
			if score >= m.Threshold {
				flagged++
			}
		}
		tpr := 0.0
		if len(test) > 0 {
			tpr = float64(flagged) / float64(len(test))
		}
		res.Lookahead = append(res.Lookahead, n)
		res.TPR = append(res.TPR, tpr)
		res.Samples = append(res.Samples, len(test))
	}
	return res, nil
}

// TPRAt returns the measured TPR at the lookahead closest to n days.
func (r *Fig19Result) TPRAt(n int) float64 {
	best, bestDiff := 0.0, 1<<30
	for i, l := range r.Lookahead {
		d := l - n
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestDiff = d
			best = r.TPR[i]
		}
	}
	return best
}

// String renders the decay curve.
func (r *Fig19Result) String() string {
	t := newTable("Fig 19: TPR vs lookahead window N (SFWB+RF, vendor I)",
		"N (days)", "TPR", "Probes")
	for i := range r.Lookahead {
		t.addRow(fmt.Sprint(r.Lookahead[i]), f4(r.TPR[i]), fmt.Sprint(r.Samples[i]))
	}
	return t.String()
}
