package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/features"
)

// Fig20Result reproduces Fig. 20: the overhead of each MFPA stage —
// data items processed, execution time, and approximate working-set
// size — plus the per-record prediction latency that makes client-side
// deployment feasible (the paper reports microsecond-level prediction).
type Fig20Result struct {
	Stages []StageOverhead
	// PredictionsPerSecond is the single-threaded prediction throughput
	// of the trained model.
	PredictionsPerSecond float64
	// PredictLatency is the mean per-record prediction latency.
	PredictLatency time.Duration
}

// StageOverhead is one pipeline stage's cost.
type StageOverhead struct {
	Stage string
	Items int
	Time  time.Duration
	// Bytes approximates the stage's working set.
	Bytes int64
}

// recordBytes approximates one telemetry record's in-memory size:
// 16 SMART + 9 W + 22 B float64s, day/flags, and string headers.
const recordBytes = (16+9+22)*8 + 64

// sampleBytes approximates one extracted sample (width-45 SFWB vector).
const sampleBytes = 45*8 + 48

// Fig20 instruments a full pipeline run on vendor I.
func (c *Context) Fig20() (*Fig20Result, error) {
	cfg := c.PipelineConfig(primaryVendor, features.GroupSFWB)
	p, err := core.Prepare(c.Fleet.Data, c.Fleet.Tickets, cfg)
	if err != nil {
		return nil, err
	}
	m, rep, err := core.Train(p)
	if err != nil {
		return nil, err
	}
	res := &Fig20Result{
		Stages: []StageOverhead{
			{
				Stage: "Feature engineering (clean+cumulate)",
				Items: p.RecordCount,
				Time:  p.CleanTime,
				Bytes: int64(p.RecordCount) * recordBytes,
			},
			{
				Stage: "Failure-time identification",
				Items: p.LabelStats.Labelled,
				Time:  p.LabelTime,
				Bytes: int64(p.LabelStats.Labelled) * 64,
			},
			{
				Stage: "Sample construction",
				Items: rep.TrainSamples + rep.TestSamples,
				Time:  rep.SampleTime,
				Bytes: int64(rep.TrainSamples+rep.TestSamples) * sampleBytes,
			},
			{
				Stage: "Model training (incl. calibration)",
				Items: rep.TrainSamples,
				Time:  rep.TrainTime,
				Bytes: int64(rep.TrainSamples) * sampleBytes,
			},
			{
				Stage: "Prediction (held-out)",
				Items: rep.TestSamples,
				Time:  rep.EvalTime,
				Bytes: int64(rep.TestSamples) * sampleBytes,
			},
		},
	}

	// Measure raw prediction throughput on a real feature vector.
	samples, err := p.BuildSamples()
	if err != nil {
		return nil, err
	}
	const probes = 20000
	start := time.Now()
	for i := 0; i < probes; i++ {
		m.Predict(samples[i%len(samples)].X)
	}
	elapsed := time.Since(start)
	res.PredictionsPerSecond = probes / elapsed.Seconds()
	res.PredictLatency = elapsed / probes
	return res, nil
}

// String renders the overhead table.
func (r *Fig20Result) String() string {
	t := newTable("Fig 20: MFPA overhead by stage (vendor I)",
		"Stage", "Items", "Time", "Approx bytes")
	for _, s := range r.Stages {
		t.addRow(s.Stage, fmt.Sprint(s.Items), s.Time.Round(time.Microsecond).String(), fmt.Sprint(s.Bytes))
	}
	t.addRow("Per-record prediction", "1", r.PredictLatency.Round(time.Nanosecond).String(),
		fmt.Sprintf("(%.0f predictions/s)", r.PredictionsPerSecond))
	return t.String()
}
