package experiments

import (
	"fmt"
	"strings"
)

// textTable accumulates rows and renders an aligned plain-text table —
// the output format of every experiment result.
type textTable struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *textTable {
	return &textTable{title: title, header: header}
}

func (t *textTable) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// pct formats a fraction as a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// f4 formats a float with four decimals; NaN renders as "-".
func f4(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}
