package experiments

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/gbdt"
	"repro/internal/ml/search"
	"repro/internal/sampling"
)

// GridSearchResult reproduces the paper's Section III-C(4): grid search
// over hyper-parameters driven by time-series cross-validation, for the
// two tree ensembles (the paper names maximum tree depth and max
// features for RF explicitly).
type GridSearchResult struct {
	RF   []search.Candidate
	GBDT []search.Candidate
	// BestRF and BestGBDT are the winning grid points.
	BestRF   search.Candidate
	BestGBDT search.Candidate
}

// GridSearch sweeps the RF and GBDT grids on vendor I's training
// window. Both sweeps run on zero-copy views of the shared sample set:
// the training window is binned once and every (combination, fold)
// pair trains on row-masked views of that one binned matrix.
func (c *Context) GridSearch() (*GridSearchResult, error) {
	train, _, p, err := c.SplitSet(primaryVendor, features.GroupSFWB)
	if err != nil {
		return nil, err
	}
	train, err = sampling.UnderSampleView(train, p.Config.NegativeRatio, p.Config.Seed)
	if err != nil {
		return nil, err
	}
	seed := p.Config.Seed

	rfFactory := func(params map[string]float64) ml.Trainer {
		return &forest.Trainer{
			Trees:       40,
			MaxDepth:    int(params["max_depth"]),
			MaxFeatures: int(params["max_features"]),
			Seed:        seed,
		}
	}
	rfGrid := search.Grid{
		"max_depth":    {6, 12, 18},
		"max_features": {-1, 12}, // -1 = √width
	}
	rfCandidates, rfBest, err := search.GridSearchSet(rfFactory, rfGrid, train, p.Config.CVFolds, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: RF grid: %w", err)
	}

	gbdtFactory := func(params map[string]float64) ml.Trainer {
		return &gbdt.Trainer{
			Rounds:       60,
			LearningRate: params["learning_rate"],
			MaxDepth:     int(params["max_depth"]),
			Seed:         seed,
		}
	}
	gbdtGrid := search.Grid{
		"learning_rate": {0.05, 0.2},
		"max_depth":     {3, 5},
	}
	gbdtCandidates, gbdtBest, err := search.GridSearchSet(gbdtFactory, gbdtGrid, train, p.Config.CVFolds, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: GBDT grid: %w", err)
	}

	return &GridSearchResult{
		RF:       rfCandidates,
		GBDT:     gbdtCandidates,
		BestRF:   rfBest,
		BestGBDT: gbdtBest,
	}, nil
}

// String renders both sweeps, best first.
func (r *GridSearchResult) String() string {
	t := newTable("Grid search with time-series CV (vendor I, SFWB)",
		"Model", "Parameters", "Mean val AUC")
	for _, cand := range r.RF {
		t.addRow("RF", fmt.Sprintf("%v", cand.Params), f4(cand.Score))
	}
	for _, cand := range r.GBDT {
		t.addRow("GBDT", fmt.Sprintf("%v", cand.Params), f4(cand.Score))
	}
	return t.String()
}
