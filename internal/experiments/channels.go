package experiments

import (
	"repro/internal/core"
	"repro/internal/features"
)

// ChannelsResult extends the Table V study with leave-one-channel-out
// groups: each SFWB collection channel has a real client-side cost
// (BSOD parsing needs crash-dump access, WindowsEvent collection needs
// an Event Log subscription), so the operational question is what each
// channel is worth. Rows are the full set plus the four drop-one
// variants.
type ChannelsResult struct {
	Rows []MetricRow
}

// Channels trains RF on vendor I for the full SFWB set and each
// leave-one-out variant.
func (c *Context) Channels() (*ChannelsResult, error) {
	variants := []struct {
		name  string
		group features.Group
	}{
		{"SFWB (all channels)", features.GroupSFWB},
		{"drop F  (=SWB)", features.Group{SMART: true, WEvents: true, BSOD: true}},
		{"drop W  (=SFB)", features.GroupSFB},
		{"drop B  (=SFW)", features.GroupSFW},
		{"drop S  (=FWB)", features.Group{Firmware: true, WEvents: true, BSOD: true}},
	}
	res := &ChannelsResult{}
	for _, v := range variants {
		row, err := c.runVariant(v.name, func(cfg *core.Config) { cfg.Group = v.group })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MetricRow{
			Name: row.Setting,
			TPR:  row.TPR,
			FPR:  row.FPR,
			AUC:  row.AUC,
		})
	}
	return res, nil
}

// String renders the study.
func (r *ChannelsResult) String() string {
	t := newTable("Channel-drop study: cost of not collecting each SFWB channel (RF, vendor I)",
		"Channels", "TPR", "FPR", "AUC")
	for _, row := range r.Rows {
		t.addRow(row.Name, f4(row.TPR), f4(row.FPR), f4(row.AUC))
	}
	return t.String()
}
