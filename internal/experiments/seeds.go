package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/simfleet"
)

// SeedsResult quantifies the across-seed stability of the per-vendor
// models: the paper's Fig. 11 observation that vendor IV "works not
// well as it has the fewest faulty SSDs" is fundamentally a variance
// statement, and this experiment measures it directly by re-simulating
// and re-training under several seeds.
type SeedsResult struct {
	Seeds []int64
	// TPRByVendor[vendor] holds one TPR per seed, in Seeds order.
	TPRByVendor map[string][]float64
	Vendors     []string
}

// Seeds runs the SFWB+RF pipeline for the largest and smallest vendors
// across three fleets that differ only by seed.
func (c *Context) Seeds() (*SeedsResult, error) {
	res := &SeedsResult{
		Seeds:       []int64{c.Cfg.Seed, c.Cfg.Seed + 1, c.Cfg.Seed + 2},
		TPRByVendor: make(map[string][]float64),
		Vendors:     []string{"I", "IV"},
	}
	for _, seed := range res.Seeds {
		cfg := c.Cfg
		cfg.Seed = seed
		// A reduced fleet keeps three simulations affordable while
		// preserving the vendor-size contrast.
		if cfg.FailureScale > 0.1 {
			cfg.FailureScale = 0.1
		}
		fleet, err := simfleet.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		for _, vendor := range res.Vendors {
			pc := core.DefaultConfig(vendor)
			pc.Group = features.GroupSFWB
			pc.Registries = c.Registries
			pc.Seed = seed
			_, rep, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, pc)
			if err != nil {
				return nil, fmt.Errorf("experiments: seed %d vendor %s: %w", seed, vendor, err)
			}
			res.TPRByVendor[vendor] = append(res.TPRByVendor[vendor], rep.Eval.TPR())
		}
	}
	return res, nil
}

// Range returns max−min TPR across seeds for a vendor.
func (r *SeedsResult) Range(vendor string) float64 {
	vals := r.TPRByVendor[vendor]
	if len(vals) == 0 {
		return 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// String renders the stability study.
func (r *SeedsResult) String() string {
	t := newTable("Seed stability: per-vendor TPR across re-simulated fleets",
		"Vendor", "TPR per seed", "Range")
	for _, vendor := range r.Vendors {
		var cells string
		for i, v := range r.TPRByVendor[vendor] {
			if i > 0 {
				cells += "  "
			}
			cells += f4(v)
		}
		t.addRow(vendor, cells, f4(r.Range(vendor)))
	}
	return t.String()
}
