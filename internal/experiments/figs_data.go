package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/winevent"
)

// Fig2Result reproduces Fig. 2: the distribution of failures over
// power-on-hour age — the bathtub curve of Observation #1.
type Fig2Result struct {
	// BucketHours is the histogram bucket width.
	BucketHours float64
	// Counts[i] is the number of failures with age in
	// [i*BucketHours, (i+1)*BucketHours).
	Counts []int
	Total  int
}

// Fig2 histograms the ground-truth failure ages.
func (c *Context) Fig2() (*Fig2Result, error) {
	const buckets = 15
	res := &Fig2Result{BucketHours: 30000.0 / buckets, Counts: make([]int, buckets)}
	for _, truth := range c.Fleet.Truth {
		if !truth.Faulty || truth.FailPowerOnHours <= 0 {
			continue
		}
		b := int(truth.FailPowerOnHours / res.BucketHours)
		if b >= buckets {
			b = buckets - 1
		}
		res.Counts[b]++
		res.Total++
	}
	if res.Total == 0 {
		return nil, fmt.Errorf("experiments: no failures with recorded age")
	}
	return res, nil
}

// String renders the histogram with a text sparkline.
func (r *Fig2Result) String() string {
	t := newTable("Fig 2: Failure distribution over power-on hours (bathtub)",
		"Hours", "Failures", "")
	max := 1
	for _, n := range r.Counts {
		if n > max {
			max = n
		}
	}
	for i, n := range r.Counts {
		bar := strings.Repeat("#", n*40/max)
		t.addRow(fmt.Sprintf("%6.0f-%6.0f", float64(i)*r.BucketHours, float64(i+1)*r.BucketHours),
			fmt.Sprint(n), bar)
	}
	return t.String()
}

// InfantShare returns the fraction of failures in the first two
// buckets — the infant-mortality spike of the bathtub.
func (r *Fig2Result) InfantShare() float64 {
	if r.Total == 0 || len(r.Counts) < 2 {
		return 0
	}
	return float64(r.Counts[0]+r.Counts[1]) / float64(r.Total)
}

// WearOutShare returns the fraction of failures in the last third of
// the age range — the wear-out tail.
func (r *Fig2Result) WearOutShare() float64 {
	if r.Total == 0 {
		return 0
	}
	n := 0
	for i := len(r.Counts) * 2 / 3; i < len(r.Counts); i++ {
		n += r.Counts[i]
	}
	return float64(n) / float64(r.Total)
}

// Fig3Result reproduces Fig. 3: the failure rate of each firmware
// version per vendor (Observation #2: earlier versions fail more).
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3Row is one (vendor, firmware release) pair.
type Fig3Row struct {
	Vendor string
	// Label is the paper-style release label, e.g. "I_F_2".
	Label string
	Seq   int
	// FailureRate is failures on the release divided by the nominal
	// population running it.
	FailureRate float64
	Failures    int
}

// Fig3 computes per-release replacement rates.
func (c *Context) Fig3() (*Fig3Result, error) {
	res := &Fig3Result{}
	for _, st := range c.Fleet.Stats {
		reg := c.Registries[st.Name]
		if reg == nil {
			return nil, fmt.Errorf("experiments: no firmware registry for vendor %s", st.Name)
		}
		// Scale materialised failures back to the nominal failure count
		// so rates are comparable with Table VI.
		scale := float64(st.NominalFailures) / float64(max(st.Failures, 1))
		seqs := make([]int, 0, len(st.FailuresByFirmwareSeq))
		for seq := range st.PopulationByFirmwareSeq {
			seqs = append(seqs, seq)
		}
		sort.Ints(seqs)
		for _, seq := range seqs {
			pop := st.PopulationByFirmwareSeq[seq]
			fails := st.FailuresByFirmwareSeq[seq]
			rate := 0.0
			if pop > 0 {
				rate = float64(fails) * scale / pop
			}
			res.Rows = append(res.Rows, Fig3Row{
				Vendor:      st.Name,
				Label:       reg.Label(seq),
				Seq:         seq,
				FailureRate: rate,
				Failures:    fails,
			})
		}
	}
	return res, nil
}

// String renders the rates.
func (r *Fig3Result) String() string {
	t := newTable("Fig 3: Failure rate by firmware version (earlier → higher)",
		"Vendor", "Release", "Failures", "Failure rate")
	for _, row := range r.Rows {
		t.addRow(row.Vendor, row.Label, fmt.Sprint(row.Failures), fmt.Sprintf("%.5f", row.FailureRate))
	}
	return t.String()
}

// MonotoneViolations counts, per vendor, adjacent release pairs where
// the later release has a *higher* failure rate (the paper observes
// zero: "the earlier the firmware version, the higher the failure
// rate").
func (r *Fig3Result) MonotoneViolations() int {
	violations := 0
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Vendor == r.Rows[i-1].Vendor && r.Rows[i].FailureRate > r.Rows[i-1].FailureRate {
			violations++
		}
	}
	return violations
}

// CumSeries is one drive's cumulative event trajectory for the
// Figs. 4/5 comparison plots.
type CumSeries struct {
	SerialNumber string
	Faulty       bool
	// Values are the cumulative counts at each observation, aligned so
	// the last point is the failure (faulty) or the window end
	// (healthy); only the final Tail points are kept.
	Values []float64
}

// Fig45Result reproduces Figs. 4 and 5: cumulative W_161 (or B_50)
// trajectories of sample faulty drives (F1–F4) versus healthy drives
// (N1–N4) before failure/window end.
type Fig45Result struct {
	Metric  string
	Faulty  []CumSeries
	Healthy []CumSeries
}

// Fig4 extracts cumulative W_161 trajectories.
func (c *Context) Fig4() (*Fig45Result, error) {
	return c.cumulativeStudy("W_161", func(r *dataset.Record) float64 {
		return r.WCounts.Get(winevent.FileSystemIOError)
	})
}

// Fig5 extracts cumulative B_50 trajectories.
func (c *Context) Fig5() (*Fig45Result, error) {
	return c.cumulativeStudy("B_50", func(r *dataset.Record) float64 {
		return r.BCounts.Get(bsod.PageFaultInNonpagedArea)
	})
}

func (c *Context) cumulativeStudy(metric string, get func(*dataset.Record) float64) (*Fig45Result, error) {
	const tail = 15
	const perClass = 4
	res := &Fig45Result{Metric: metric}

	// Deterministic pick: first qualifying drives in S/N order.
	sns := c.Fleet.Data.SerialNumbers()
	sort.Strings(sns)
	for _, sn := range sns {
		truth := c.Fleet.Truth[sn]
		if truth.Vendor != primaryVendor {
			continue
		}
		series, _ := c.Fleet.Data.Series(sn)
		if series == nil || len(series.Records) < tail {
			continue
		}
		var cum float64
		values := make([]float64, 0, len(series.Records))
		for i := range series.Records {
			cum += get(&series.Records[i])
			values = append(values, cum)
		}
		cs := CumSeries{SerialNumber: sn, Faulty: truth.Faulty, Values: values[len(values)-tail:]}
		if truth.Faulty && len(res.Faulty) < perClass && cum > 0 {
			res.Faulty = append(res.Faulty, cs)
		}
		if !truth.Faulty && len(res.Healthy) < perClass {
			res.Healthy = append(res.Healthy, cs)
		}
		if len(res.Faulty) == perClass && len(res.Healthy) == perClass {
			break
		}
	}
	if len(res.Faulty) == 0 {
		return nil, fmt.Errorf("experiments: no faulty drives with %s activity", metric)
	}
	return res, nil
}

// String renders both trajectory families.
func (r *Fig45Result) String() string {
	title := "Fig 4: Cumulative " + r.Metric + " before failure (faulty F* vs healthy N*)"
	if r.Metric == "B_50" {
		title = "Fig 5: Cumulative " + r.Metric + " before failure (faulty F* vs healthy N*)"
	}
	t := newTable(title, "Drive", "Class", "Trajectory (last points)")
	render := func(prefix string, list []CumSeries, class string) {
		for i, cs := range list {
			var parts []string
			for _, v := range cs.Values {
				parts = append(parts, fmt.Sprintf("%.1f", v))
			}
			t.addRow(fmt.Sprintf("%s%d", prefix, i+1), class, strings.Join(parts, " "))
		}
	}
	render("F", r.Faulty, "faulty")
	render("N", r.Healthy, "healthy")
	return t.String()
}

// FinalGapRatio returns mean(final faulty cumulative) /
// max(mean(final healthy cumulative), 1): how much more W/B activity
// faulty drives accumulate (the separation the figures show).
func (r *Fig45Result) FinalGapRatio() float64 {
	mean := func(list []CumSeries) float64 {
		if len(list) == 0 {
			return 0
		}
		var s float64
		for _, cs := range list {
			s += cs.Values[len(cs.Values)-1]
		}
		return s / float64(len(list))
	}
	h := mean(r.Healthy)
	if h < 1 {
		h = 1
	}
	return mean(r.Faulty) / h
}

// Fig6Result reproduces Fig. 6: the discontinuity structure of CSS
// telemetry — the histogram of intervals between consecutive
// observations.
type Fig6Result struct {
	// GapHistogram[g] counts consecutive-record intervals of g days
	// (index capped at MaxGap).
	GapHistogram []int
	MaxGap       int
	// DropCandidates is the number of drives the ≥ 10-day rule removes.
	DropCandidates int
	Drives         int
}

// Fig6 analyses the raw (pre-cleaning) fleet telemetry.
func (c *Context) Fig6() (*Fig6Result, error) {
	const maxGap = 15
	res := &Fig6Result{
		GapHistogram: dataset.GapHistogram(c.Fleet.Data, maxGap),
		MaxGap:       maxGap,
		Drives:       c.Fleet.Data.Drives(),
	}
	policy := dataset.DefaultGapPolicy()
	c.Fleet.Data.Each(func(s *dataset.DriveSeries) {
		if s.MaxGap() >= policy.DropGap {
			res.DropCandidates++
		}
	})
	return res, nil
}

// String renders the gap histogram.
func (r *Fig6Result) String() string {
	t := newTable("Fig 6: Telemetry discontinuity (interval between consecutive logs)",
		"Interval (days)", "Count", "")
	max := 1
	for _, n := range r.GapHistogram[1:] {
		if n > max {
			max = n
		}
	}
	for g := 1; g < len(r.GapHistogram); g++ {
		label := fmt.Sprint(g)
		if g == r.MaxGap {
			label = fmt.Sprintf("%d+", g)
		}
		t.addRow(label, fmt.Sprint(r.GapHistogram[g]), strings.Repeat("#", r.GapHistogram[g]*40/max))
	}
	t.addRow("drives dropped by ≥10d rule", fmt.Sprintf("%d of %d", r.DropCandidates, r.Drives), "")
	return t.String()
}
