package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/sampling"
)

// MetricRow is one evaluated configuration with the paper's headline
// metrics (Figs. 9–11, 13–16, 18 all share this shape).
type MetricRow struct {
	Name string
	TPR  float64
	FPR  float64
	ACC  float64
	AUC  float64
	PDR  float64
	// DriveTPR/DriveFPR aggregate per drive (majority vote).
	DriveTPR float64
	DriveFPR float64
	// Threshold is the calibrated decision threshold used.
	Threshold float64
}

func metricRow(name string, rep *core.TrainReport, m *core.Model) MetricRow {
	return MetricRow{
		Name:      name,
		TPR:       rep.Eval.TPR(),
		FPR:       rep.Eval.FPR(),
		ACC:       rep.Eval.Accuracy(),
		AUC:       rep.Eval.AUC,
		PDR:       rep.Eval.PDR(),
		DriveTPR:  rep.Eval.DriveConfusion.TPR(),
		DriveFPR:  rep.Eval.DriveConfusion.FPR(),
		Threshold: m.Threshold,
	}
}

func renderMetricRows(title, nameHeader string, rows []MetricRow) string {
	t := newTable(title, nameHeader, "TPR", "FPR", "ACC", "AUC", "PDR", "driveTPR", "driveFPR")
	for _, r := range rows {
		t.addRow(r.Name, f4(r.TPR), f4(r.FPR), f4(r.ACC), f4(r.AUC), f4(r.PDR), f4(r.DriveTPR), f4(r.DriveFPR))
	}
	return t.String()
}

// Fig9Result reproduces Figs. 9/13: MFPA across the seven feature
// groups of Table V (RF, vendor I). The paper's headline: SFWB best at
// 98.18% TPR / 0.56% FPR; S (the SMART baseline) trails on both axes.
type Fig9Result struct {
	Rows []MetricRow
}

// Fig9 trains one RF per feature group on vendor I.
func (c *Context) Fig9() (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, g := range features.AllGroups() {
		cfg := c.PipelineConfig(primaryVendor, g)
		p, err := core.Prepare(c.Fleet.Data, c.Fleet.Tickets, cfg)
		if err != nil {
			return nil, err
		}
		m, rep, err := core.Train(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: group %s: %w", g, err)
		}
		res.Rows = append(res.Rows, metricRow(g.String(), rep, m))
	}
	return res, nil
}

// Row returns the metrics of one group, if present.
func (r *Fig9Result) Row(group string) (MetricRow, bool) {
	for _, row := range r.Rows {
		if row.Name == group {
			return row, true
		}
	}
	return MetricRow{}, false
}

// String renders the comparison.
func (r *Fig9Result) String() string {
	return renderMetricRows("Fig 9+13: MFPA across feature groups (RF, vendor I)", "Group", r.Rows)
}

// Fig10Result reproduces Figs. 10/14: MFPA (SFWB, vendor I) across the
// five ML algorithms. The paper: RF best; CNN_LSTM degraded by data
// discontinuity.
type Fig10Result struct {
	Rows []MetricRow
}

// Fig10 trains each algorithm on the SFWB samples of vendor I.
func (c *Context) Fig10() (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, algo := range core.Algorithms() {
		cfg := c.PipelineConfig(primaryVendor, features.GroupSFWB)
		cfg.Algorithm = algo
		p, err := core.Prepare(c.Fleet.Data, c.Fleet.Tickets, cfg)
		if err != nil {
			return nil, err
		}
		m, rep, err := core.Train(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: algorithm %s: %w", algo, err)
		}
		res.Rows = append(res.Rows, metricRow(string(algo), rep, m))
	}
	return res, nil
}

// Row returns the metrics of one algorithm, if present.
func (r *Fig10Result) Row(algo string) (MetricRow, bool) {
	for _, row := range r.Rows {
		if row.Name == algo {
			return row, true
		}
	}
	return MetricRow{}, false
}

// String renders the comparison.
func (r *Fig10Result) String() string {
	return renderMetricRows("Fig 10+14: MFPA across ML algorithms (SFWB, vendor I)", "Algorithm", r.Rows)
}

// Fig11Result reproduces Figs. 11/15: SFWB-based MFPA per vendor. The
// paper: effective for vendors I–III (AUC ≈ 98.8 / 96.9 / 97.4), weak
// for IV (too few faulty drives).
type Fig11Result struct {
	Rows []MetricRow
	// Failures per vendor, for the "vendor IV has too few failures"
	// explanation.
	Failures map[string]int
}

// Fig11 trains one per-vendor model.
func (c *Context) Fig11() (*Fig11Result, error) {
	res := &Fig11Result{Failures: make(map[string]int)}
	for _, st := range c.Fleet.Stats {
		res.Failures[st.Name] = st.Failures
		cfg := c.PipelineConfig(st.Name, features.GroupSFWB)
		p, err := core.Prepare(c.Fleet.Data, c.Fleet.Tickets, cfg)
		if err != nil {
			return nil, err
		}
		m, rep, err := core.Train(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: vendor %s: %w", st.Name, err)
		}
		res.Rows = append(res.Rows, metricRow(st.Name, rep, m))
	}
	return res, nil
}

// Row returns one vendor's metrics, if present.
func (r *Fig11Result) Row(vendor string) (MetricRow, bool) {
	for _, row := range r.Rows {
		if row.Name == vendor {
			return row, true
		}
	}
	return MetricRow{}, false
}

// String renders the comparison.
func (r *Fig11Result) String() string {
	t := newTable("Fig 11+15: MFPA across vendors (SFWB, RF)",
		"Vendor", "Failures", "TPR", "FPR", "AUC", "driveTPR", "driveFPR")
	for _, row := range r.Rows {
		t.addRow(row.Name, fmt.Sprint(r.Failures[row.Name]), f4(row.TPR), f4(row.FPR),
			f4(row.AUC), f4(row.DriveTPR), f4(row.DriveFPR))
	}
	return t.String()
}

// Fig12Result reproduces Figs. 12/16: continuous prediction for five
// months without iteration on a fleet whose background Windows-event
// rates drift. The paper: TPR stays stable while FPR rises by month
// 2–3, motivating re-iteration every 2–3 months. IterMonths extends the
// figure with that recommendation applied — the model retrained at each
// month boundary — to show iteration actually repairs the FPR.
type Fig12Result struct {
	Months []core.MonthlyEvaluation
	// IterMonths is the same walk-forward with monthly re-training.
	IterMonths []core.MonthlyEvaluation
	// TrainEndDay is when the learning window closed.
	TrainEndDay int
	// DriftStartDay is when the OS update began shifting the fleet.
	DriftStartDay int
}

// Fig12 trains once on the drifting fleet's learning window and walks
// forward five months, then repeats the walk with monthly iteration.
func (c *Context) Fig12() (*Fig12Result, error) {
	fleet, err := c.DriftFleet()
	if err != nil {
		return nil, err
	}
	cfg := c.PipelineConfig(primaryVendor, features.GroupSFWB)
	// Close the learning window around day 105 of the 270-day window,
	// leaving five clean months of walk-forward evaluation.
	cfg.TrainFrac = 0.4
	p, err := core.Prepare(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		return nil, err
	}
	samples, err := p.BuildSamples()
	if err != nil {
		return nil, err
	}
	_, test := sampling.SplitFraction(samples, cfg.TrainFrac)
	m, _, err := core.Train(p, test)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		TrainEndDay:   m.TrainEndDay,
		DriftStartDay: fleet.Config.DriftStartDay,
	}
	// Walk-forward selects by day internally, so passing the full
	// sample set (not just the test split) keeps month boundaries exact.
	res.Months = m.WalkForward(samples, 30, 5)

	// Extension: apply the paper's recommendation — retrain at each
	// month boundary on everything observed so far (strictly past-only
	// data), keeping the original calibrated threshold so the series
	// differ only by model freshness.
	for _, mo := range res.Months {
		var trainNow []ml.Sample
		var window []ml.Sample
		for i := range samples {
			switch {
			case samples[i].Day < mo.FromDay:
				trainNow = append(trainNow, samples[i])
			case samples[i].Day <= mo.ToDay:
				window = append(window, samples[i])
			}
		}
		if len(window) == 0 {
			continue
		}
		trainUS, err := sampling.UnderSample(trainNow, p.Config.NegativeRatio, p.Config.Seed)
		if err != nil {
			return nil, err
		}
		clf, err := (&forest.Trainer{Trees: 100, MaxDepth: 12, Seed: p.Config.Seed}).Train(trainUS)
		if err != nil {
			return nil, err
		}
		neg, pos := ml.ClassCounts(window)
		res.IterMonths = append(res.IterMonths, core.MonthlyEvaluation{
			Month:    mo.Month,
			FromDay:  mo.FromDay,
			ToDay:    mo.ToDay,
			Eval:     core.EvaluateSamplesAt(clf, window, m.Threshold),
			Positive: pos,
			Negative: neg,
		})
	}
	return res, nil
}

// String renders both monthly series.
func (r *Fig12Result) String() string {
	t := newTable(fmt.Sprintf("Fig 12+16: 5-month prediction (train ends day %d, drift from day %d)",
		r.TrainEndDay, r.DriftStartDay),
		"Month", "Days", "Pos", "Neg", "TPR", "FPR", "AUC", "iterTPR", "iterFPR")
	iter := make(map[int]core.MonthlyEvaluation, len(r.IterMonths))
	for _, mo := range r.IterMonths {
		iter[mo.Month] = mo
	}
	for _, mo := range r.Months {
		iTPR, iFPR := "-", "-"
		if im, ok := iter[mo.Month]; ok {
			iTPR, iFPR = f4(im.Eval.TPR()), f4(im.Eval.FPR())
		}
		t.addRow(fmt.Sprint(mo.Month), fmt.Sprintf("%d-%d", mo.FromDay, mo.ToDay),
			fmt.Sprint(mo.Positive), fmt.Sprint(mo.Negative),
			f4(mo.Eval.TPR()), f4(mo.Eval.FPR()), f4(mo.Eval.AUC), iTPR, iFPR)
	}
	return t.String()
}

// FPRRise returns lastMonthFPR − firstMonthFPR, the drift-induced
// degradation the paper reports.
func (r *Fig12Result) FPRRise() float64 {
	if len(r.Months) < 2 {
		return 0
	}
	first := r.Months[0].Eval.FPR()
	last := r.Months[len(r.Months)-1].Eval.FPR()
	return last - first
}
