package experiments

import (
	"fmt"
	"sort"

	"repro/internal/features"
	"repro/internal/ml/forest"
	"repro/internal/sampling"
)

// ImportanceResult complements Fig. 17: the random forest's
// mean-decrease-in-impurity feature importance over the SFWB pool. The
// paper's feature-selection discussion says Available Spare Threshold,
// Media/Data-Integrity errors, power cycles, W_11, W_49, W_51, W_161,
// B_50, and B_7A deserve special attention (and that Available Spare
// Threshold does not) — importance ranks make the same point without a
// greedy search.
type ImportanceResult struct {
	// Ranked pairs, most important first.
	Names  []string
	Scores []float64
}

// Importance trains the standard forest on vendor I and ranks features.
func (c *Context) Importance() (*ImportanceResult, error) {
	train, _, p, err := c.Split(primaryVendor, features.GroupSFWB)
	if err != nil {
		return nil, err
	}
	train, err = sampling.UnderSample(train, p.Config.NegativeRatio, p.Config.Seed)
	if err != nil {
		return nil, err
	}
	clf, err := (&forest.Trainer{Trees: 100, MaxDepth: 12, Seed: p.Config.Seed}).Train(train)
	if err != nil {
		return nil, err
	}
	imp := clf.(*forest.Model).FeatureImportance()
	names := p.Extractor.Names()
	if len(imp) != len(names) {
		return nil, fmt.Errorf("experiments: %d importances for %d features", len(imp), len(names))
	}
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })

	res := &ImportanceResult{}
	for _, i := range order {
		res.Names = append(res.Names, names[i])
		res.Scores = append(res.Scores, imp[i])
	}
	return res, nil
}

// Rank returns the 0-based rank of a feature, or -1 when absent.
func (r *ImportanceResult) Rank(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Score returns a feature's normalised importance (0 when absent).
func (r *ImportanceResult) Score(name string) float64 {
	if i := r.Rank(name); i >= 0 {
		return r.Scores[i]
	}
	return 0
}

// String renders the top of the ranking.
func (r *ImportanceResult) String() string {
	t := newTable("RF feature importance (mean decrease in impurity, vendor I, SFWB)",
		"Rank", "Feature", "Importance")
	for i := range r.Names {
		if i >= 15 && r.Scores[i] < 0.005 {
			t.addRow("…", fmt.Sprintf("(%d more below 0.5%%)", len(r.Names)-i), "")
			break
		}
		t.addRow(fmt.Sprint(i+1), r.Names[i], f4(r.Scores[i]))
	}
	return t.String()
}
