package experiments

import (
	"fmt"

	"repro/internal/svgplot"
)

// Figurer is implemented by experiment results that can render
// themselves as SVG figures; mfpareport's -svg flag writes them out.
type Figurer interface {
	// Figures returns file-name (without extension) → SVG bytes.
	Figures() (map[string][]byte, error)
}

// Figures renders Fig 2 as the bathtub histogram.
func (r *Fig2Result) Figures() (map[string][]byte, error) {
	labels := make([]string, len(r.Counts))
	values := make([]float64, len(r.Counts))
	for i, n := range r.Counts {
		labels[i] = fmt.Sprintf("%.0fk", float64(i)*r.BucketHours/1000)
		values[i] = float64(n)
	}
	chart := &svgplot.BarChart{
		Title:  "Fig 2: Failure distribution over power-on hours",
		XLabel: "Power-on hours",
		YLabel: "Failures",
		Labels: labels,
		Groups: []svgplot.Series{{Name: "failures", Y: values}},
	}
	return renderOne("fig2_bathtub", chart.Render)
}

// Figures renders Fig 3 as per-release failure-rate bars.
func (r *Fig3Result) Figures() (map[string][]byte, error) {
	labels := make([]string, len(r.Rows))
	values := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = row.Label
		values[i] = row.FailureRate
	}
	chart := &svgplot.BarChart{
		Title:  "Fig 3: Failure rate by firmware version",
		XLabel: "Release",
		YLabel: "Failure rate",
		Labels: labels,
		Groups: []svgplot.Series{{Name: "rate", Y: values}},
	}
	return renderOne("fig3_firmware", chart.Render)
}

// Figures renders Figs 4/5 as cumulative trajectories.
func (r *Fig45Result) Figures() (map[string][]byte, error) {
	var series []svgplot.Series
	add := func(prefix string, list []CumSeries) {
		for i, cs := range list {
			xs := make([]float64, len(cs.Values))
			for j := range xs {
				xs[j] = float64(j - len(cs.Values) + 1) // align ends at 0
			}
			series = append(series, svgplot.Series{
				Name: fmt.Sprintf("%s%d", prefix, i+1),
				X:    xs,
				Y:    cs.Values,
			})
		}
	}
	add("F", r.Faulty)
	add("N", r.Healthy)
	name := "fig4_w161"
	title := "Fig 4: Cumulative W_161 before failure"
	if r.Metric == "B_50" {
		name = "fig5_b50"
		title = "Fig 5: Cumulative B_50 before failure"
	}
	chart := &svgplot.LineChart{
		Title:  title,
		XLabel: "Observations before failure/window end",
		YLabel: "Cumulative " + r.Metric,
		Series: series,
	}
	return renderOne(name, chart.Render)
}

// metricBars renders a metric-row set as TPR/FPR bar groups.
func metricBars(name, title string, rows []MetricRow) (map[string][]byte, error) {
	labels := make([]string, len(rows))
	tpr := make([]float64, len(rows))
	fpr := make([]float64, len(rows))
	for i, row := range rows {
		labels[i] = row.Name
		tpr[i] = row.TPR
		fpr[i] = row.FPR
	}
	chart := &svgplot.BarChart{
		Title:  title,
		XLabel: "Configuration",
		YLabel: "Rate",
		Labels: labels,
		Groups: []svgplot.Series{
			{Name: "TPR", Y: tpr},
			{Name: "FPR", Y: fpr},
		},
	}
	return renderOne(name, chart.Render)
}

// Figures renders Fig 9 as grouped TPR/FPR bars.
func (r *Fig9Result) Figures() (map[string][]byte, error) {
	return metricBars("fig9_groups", "Fig 9: MFPA across feature groups", r.Rows)
}

// Figures renders Fig 10 as grouped TPR/FPR bars.
func (r *Fig10Result) Figures() (map[string][]byte, error) {
	return metricBars("fig10_algorithms", "Fig 10: MFPA across ML algorithms", r.Rows)
}

// Figures renders Fig 11 as grouped TPR/FPR bars.
func (r *Fig11Result) Figures() (map[string][]byte, error) {
	return metricBars("fig11_vendors", "Fig 11: MFPA across vendors", r.Rows)
}

// Figures renders Fig 12 as the monthly TPR/FPR lines, with and
// without iteration.
func (r *Fig12Result) Figures() (map[string][]byte, error) {
	var months, tpr, fpr []float64
	for _, mo := range r.Months {
		months = append(months, float64(mo.Month))
		tpr = append(tpr, mo.Eval.TPR())
		fpr = append(fpr, mo.Eval.FPR())
	}
	series := []svgplot.Series{
		{Name: "TPR (no iteration)", X: months, Y: tpr},
		{Name: "FPR (no iteration)", X: months, Y: fpr},
	}
	if len(r.IterMonths) > 0 {
		var im, ifpr []float64
		for _, mo := range r.IterMonths {
			im = append(im, float64(mo.Month))
			ifpr = append(ifpr, mo.Eval.FPR())
		}
		series = append(series, svgplot.Series{Name: "FPR (monthly iteration)", X: im, Y: ifpr})
	}
	chart := &svgplot.LineChart{
		Title:  "Fig 12: Five months without iteration",
		XLabel: "Month after training",
		YLabel: "Rate",
		Series: series,
	}
	return renderOne("fig12_months", chart.Render)
}

// Figures renders Fig 17's selection trajectory.
func (r *Fig17Result) Figures() (map[string][]byte, error) {
	var xs, tpr, fpr, auc []float64
	for i, s := range r.Steps {
		xs = append(xs, float64(i+1))
		tpr = append(tpr, s.TPR)
		fpr = append(fpr, s.FPR)
		auc = append(auc, s.AUC)
	}
	chart := &svgplot.LineChart{
		Title:  "Fig 17: Sequential forward selection",
		XLabel: "Features selected",
		YLabel: "Rate",
		Series: []svgplot.Series{
			{Name: "TPR", X: xs, Y: tpr},
			{Name: "FPR", X: xs, Y: fpr},
			{Name: "AUC", X: xs, Y: auc},
		},
	}
	return renderOne("fig17_sfs", chart.Render)
}

// Figures renders Fig 18 as grouped TPR/FPR bars.
func (r *Fig18Result) Figures() (map[string][]byte, error) {
	return metricBars("fig18_sota", "Fig 18: MFPA vs state-of-the-art", r.Rows)
}

// Figures renders Fig 19's lookahead decay.
func (r *Fig19Result) Figures() (map[string][]byte, error) {
	xs := make([]float64, len(r.Lookahead))
	for i, n := range r.Lookahead {
		xs[i] = float64(n)
	}
	chart := &svgplot.LineChart{
		Title:  "Fig 19: TPR vs lookahead window",
		XLabel: "Lookahead N (days)",
		YLabel: "TPR",
		Series: []svgplot.Series{{Name: "TPR", X: xs, Y: r.TPR}},
		YMin:   0, YMax: 1,
	}
	return renderOne("fig19_lookahead", chart.Render)
}

func renderOne(name string, render func() ([]byte, error)) (map[string][]byte, error) {
	data, err := render()
	if err != nil {
		return nil, err
	}
	return map[string][]byte{name: data}, nil
}
